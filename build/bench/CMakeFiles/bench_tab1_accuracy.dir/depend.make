# Empty dependencies file for bench_tab1_accuracy.
# This may be replaced when dependencies are built.
