file(REMOVE_RECURSE
  "CMakeFiles/bench_tab1_accuracy.dir/bench_tab1_accuracy.cc.o"
  "CMakeFiles/bench_tab1_accuracy.dir/bench_tab1_accuracy.cc.o.d"
  "bench_tab1_accuracy"
  "bench_tab1_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab1_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
