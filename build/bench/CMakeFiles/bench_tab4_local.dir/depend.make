# Empty dependencies file for bench_tab4_local.
# This may be replaced when dependencies are built.
