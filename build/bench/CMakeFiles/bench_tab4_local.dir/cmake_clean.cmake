file(REMOVE_RECURSE
  "CMakeFiles/bench_tab4_local.dir/bench_tab4_local.cc.o"
  "CMakeFiles/bench_tab4_local.dir/bench_tab4_local.cc.o.d"
  "bench_tab4_local"
  "bench_tab4_local.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab4_local.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
