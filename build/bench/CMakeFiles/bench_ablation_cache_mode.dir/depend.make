# Empty dependencies file for bench_ablation_cache_mode.
# This may be replaced when dependencies are built.
