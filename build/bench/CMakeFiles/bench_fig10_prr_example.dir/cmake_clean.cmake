file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_prr_example.dir/bench_fig10_prr_example.cc.o"
  "CMakeFiles/bench_fig10_prr_example.dir/bench_fig10_prr_example.cc.o.d"
  "bench_fig10_prr_example"
  "bench_fig10_prr_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_prr_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
