# Empty compiler generated dependencies file for bench_fig10_prr_example.
# This may be replaced when dependencies are built.
