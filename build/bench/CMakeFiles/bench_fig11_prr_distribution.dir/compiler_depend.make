# Empty compiler generated dependencies file for bench_fig11_prr_distribution.
# This may be replaced when dependencies are built.
