file(REMOVE_RECURSE
  "CMakeFiles/bench_tab2_qerror.dir/bench_tab2_qerror.cc.o"
  "CMakeFiles/bench_tab2_qerror.dir/bench_tab2_qerror.cc.o.d"
  "bench_tab2_qerror"
  "bench_tab2_qerror.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab2_qerror.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
