# Empty compiler generated dependencies file for bench_tab2_qerror.
# This may be replaced when dependencies are built.
