file(REMOVE_RECURSE
  "CMakeFiles/bench_tab6_global_uncertain.dir/bench_tab6_global_uncertain.cc.o"
  "CMakeFiles/bench_tab6_global_uncertain.dir/bench_tab6_global_uncertain.cc.o.d"
  "bench_tab6_global_uncertain"
  "bench_tab6_global_uncertain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab6_global_uncertain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
