# Empty compiler generated dependencies file for bench_tab6_global_uncertain.
# This may be replaced when dependencies are built.
