# Empty compiler generated dependencies file for bench_fig7_per_instance.
# This may be replaced when dependencies are built.
