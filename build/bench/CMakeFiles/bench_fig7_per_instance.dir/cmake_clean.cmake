file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_per_instance.dir/bench_fig7_per_instance.cc.o"
  "CMakeFiles/bench_fig7_per_instance.dir/bench_fig7_per_instance.cc.o.d"
  "bench_fig7_per_instance"
  "bench_fig7_per_instance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_per_instance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
