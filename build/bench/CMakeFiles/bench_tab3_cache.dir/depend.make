# Empty dependencies file for bench_tab3_cache.
# This may be replaced when dependencies are built.
