file(REMOVE_RECURSE
  "CMakeFiles/bench_tab3_cache.dir/bench_tab3_cache.cc.o"
  "CMakeFiles/bench_tab3_cache.dir/bench_tab3_cache.cc.o.d"
  "bench_tab3_cache"
  "bench_tab3_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab3_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
