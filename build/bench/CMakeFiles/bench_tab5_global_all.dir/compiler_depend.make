# Empty compiler generated dependencies file for bench_tab5_global_all.
# This may be replaced when dependencies are built.
