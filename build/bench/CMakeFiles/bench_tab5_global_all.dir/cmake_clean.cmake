file(REMOVE_RECURSE
  "CMakeFiles/bench_tab5_global_all.dir/bench_tab5_global_all.cc.o"
  "CMakeFiles/bench_tab5_global_all.dir/bench_tab5_global_all.cc.o.d"
  "bench_tab5_global_all"
  "bench_tab5_global_all.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab5_global_all.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
