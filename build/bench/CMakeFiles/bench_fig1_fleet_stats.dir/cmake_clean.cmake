file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_fleet_stats.dir/bench_fig1_fleet_stats.cc.o"
  "CMakeFiles/bench_fig1_fleet_stats.dir/bench_fig1_fleet_stats.cc.o.d"
  "bench_fig1_fleet_stats"
  "bench_fig1_fleet_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_fleet_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
