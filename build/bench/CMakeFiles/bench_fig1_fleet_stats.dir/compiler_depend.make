# Empty compiler generated dependencies file for bench_fig1_fleet_stats.
# This may be replaced when dependencies are built.
