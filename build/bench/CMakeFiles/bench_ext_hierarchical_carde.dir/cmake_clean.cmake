file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_hierarchical_carde.dir/bench_ext_hierarchical_carde.cc.o"
  "CMakeFiles/bench_ext_hierarchical_carde.dir/bench_ext_hierarchical_carde.cc.o.d"
  "bench_ext_hierarchical_carde"
  "bench_ext_hierarchical_carde.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_hierarchical_carde.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
