# Empty dependencies file for bench_ext_hierarchical_carde.
# This may be replaced when dependencies are built.
