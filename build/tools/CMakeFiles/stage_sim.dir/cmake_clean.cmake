file(REMOVE_RECURSE
  "CMakeFiles/stage_sim.dir/stage_sim.cc.o"
  "CMakeFiles/stage_sim.dir/stage_sim.cc.o.d"
  "stage_sim"
  "stage_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stage_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
