# Empty dependencies file for stage_sim.
# This may be replaced when dependencies are built.
