# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/plan_test[1]_include.cmake")
include("/root/repo/build/tests/gbt_test[1]_include.cmake")
include("/root/repo/build/tests/nn_test[1]_include.cmake")
include("/root/repo/build/tests/cache_test[1]_include.cmake")
include("/root/repo/build/tests/carde_test[1]_include.cmake")
include("/root/repo/build/tests/local_test[1]_include.cmake")
include("/root/repo/build/tests/global_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/fleet_test[1]_include.cmake")
include("/root/repo/build/tests/wlm_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/mview_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
add_test(stage_sim_usage "/root/repo/build/tools/stage_sim")
set_tests_properties(stage_sim_usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;27;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(stage_sim_trace "/root/repo/build/tools/stage_sim" "trace" "--instances=1" "--queries=100")
set_tests_properties(stage_sim_trace PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;29;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(stage_sim_trace_csv "/root/repo/build/tools/stage_sim" "trace" "--instances=1" "--queries=50" "--csv")
set_tests_properties(stage_sim_trace_csv PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;31;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(stage_sim_unknown_flag "/root/repo/build/tools/stage_sim" "trace" "--no_such_flag=1")
set_tests_properties(stage_sim_unknown_flag PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;33;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(stage_sim_checkpoint_roundtrip "sh" "-c" "/root/repo/build/tools/stage_sim train-global --instances=2 --queries=150 --out=sim_smoke_global.bin && /root/repo/build/tools/stage_sim replay --instances=1 --queries=300 --rounds=40 --members=4 --global=sim_smoke_global.bin")
set_tests_properties(stage_sim_checkpoint_roundtrip PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;36;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(stage_sim_wlm "/root/repo/build/tools/stage_sim" "wlm" "--instances=1" "--queries=400" "--rounds=40" "--members=4" "--utilization=0.6")
set_tests_properties(stage_sim_wlm PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;38;add_test;/root/repo/tests/CMakeLists.txt;0;")
