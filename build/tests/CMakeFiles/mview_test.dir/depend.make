# Empty dependencies file for mview_test.
# This may be replaced when dependencies are built.
