file(REMOVE_RECURSE
  "CMakeFiles/mview_test.dir/mview_test.cc.o"
  "CMakeFiles/mview_test.dir/mview_test.cc.o.d"
  "mview_test"
  "mview_test.pdb"
  "mview_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mview_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
