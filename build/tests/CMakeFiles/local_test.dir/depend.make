# Empty dependencies file for local_test.
# This may be replaced when dependencies are built.
