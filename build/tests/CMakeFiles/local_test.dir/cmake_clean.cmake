file(REMOVE_RECURSE
  "CMakeFiles/local_test.dir/local_test.cc.o"
  "CMakeFiles/local_test.dir/local_test.cc.o.d"
  "local_test"
  "local_test.pdb"
  "local_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/local_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
