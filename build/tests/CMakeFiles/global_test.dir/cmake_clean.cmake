file(REMOVE_RECURSE
  "CMakeFiles/global_test.dir/global_test.cc.o"
  "CMakeFiles/global_test.dir/global_test.cc.o.d"
  "global_test"
  "global_test.pdb"
  "global_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/global_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
