# Empty dependencies file for gbt_test.
# This may be replaced when dependencies are built.
