file(REMOVE_RECURSE
  "CMakeFiles/gbt_test.dir/gbt_test.cc.o"
  "CMakeFiles/gbt_test.dir/gbt_test.cc.o.d"
  "gbt_test"
  "gbt_test.pdb"
  "gbt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gbt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
