file(REMOVE_RECURSE
  "CMakeFiles/carde_test.dir/carde_test.cc.o"
  "CMakeFiles/carde_test.dir/carde_test.cc.o.d"
  "carde_test"
  "carde_test.pdb"
  "carde_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/carde_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
