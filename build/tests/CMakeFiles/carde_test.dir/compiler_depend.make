# Empty compiler generated dependencies file for carde_test.
# This may be replaced when dependencies are built.
