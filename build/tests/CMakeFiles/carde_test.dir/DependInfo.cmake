
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/carde_test.cc" "tests/CMakeFiles/carde_test.dir/carde_test.cc.o" "gcc" "tests/CMakeFiles/carde_test.dir/carde_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stage/carde/CMakeFiles/stage_carde.dir/DependInfo.cmake"
  "/root/repo/build/src/stage/core/CMakeFiles/stage_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stage/cache/CMakeFiles/stage_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/stage/local/CMakeFiles/stage_local.dir/DependInfo.cmake"
  "/root/repo/build/src/stage/gbt/CMakeFiles/stage_gbt.dir/DependInfo.cmake"
  "/root/repo/build/src/stage/wlm/CMakeFiles/stage_wlm.dir/DependInfo.cmake"
  "/root/repo/build/src/stage/metrics/CMakeFiles/stage_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/stage/mview/CMakeFiles/stage_mview.dir/DependInfo.cmake"
  "/root/repo/build/src/stage/global/CMakeFiles/stage_global.dir/DependInfo.cmake"
  "/root/repo/build/src/stage/nn/CMakeFiles/stage_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/stage/fleet/CMakeFiles/stage_fleet.dir/DependInfo.cmake"
  "/root/repo/build/src/stage/plan/CMakeFiles/stage_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/stage/common/CMakeFiles/stage_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
