# Empty dependencies file for what_if.
# This may be replaced when dependencies are built.
