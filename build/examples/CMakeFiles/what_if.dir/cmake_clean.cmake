file(REMOVE_RECURSE
  "CMakeFiles/what_if.dir/what_if.cpp.o"
  "CMakeFiles/what_if.dir/what_if.cpp.o.d"
  "what_if"
  "what_if.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/what_if.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
