# Empty compiler generated dependencies file for wlm_scheduling.
# This may be replaced when dependencies are built.
