file(REMOVE_RECURSE
  "CMakeFiles/wlm_scheduling.dir/wlm_scheduling.cpp.o"
  "CMakeFiles/wlm_scheduling.dir/wlm_scheduling.cpp.o.d"
  "wlm_scheduling"
  "wlm_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wlm_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
