# Empty compiler generated dependencies file for cold_start.
# This may be replaced when dependencies are built.
