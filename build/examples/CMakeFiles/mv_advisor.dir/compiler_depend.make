# Empty compiler generated dependencies file for mv_advisor.
# This may be replaced when dependencies are built.
