file(REMOVE_RECURSE
  "CMakeFiles/mv_advisor.dir/mv_advisor.cpp.o"
  "CMakeFiles/mv_advisor.dir/mv_advisor.cpp.o.d"
  "mv_advisor"
  "mv_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mv_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
