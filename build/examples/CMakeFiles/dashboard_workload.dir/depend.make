# Empty dependencies file for dashboard_workload.
# This may be replaced when dependencies are built.
