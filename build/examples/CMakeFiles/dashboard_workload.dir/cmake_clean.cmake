file(REMOVE_RECURSE
  "CMakeFiles/dashboard_workload.dir/dashboard_workload.cpp.o"
  "CMakeFiles/dashboard_workload.dir/dashboard_workload.cpp.o.d"
  "dashboard_workload"
  "dashboard_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dashboard_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
