# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("stage/common")
subdirs("stage/plan")
subdirs("stage/gbt")
subdirs("stage/nn")
subdirs("stage/cache")
subdirs("stage/carde")
subdirs("stage/local")
subdirs("stage/global")
subdirs("stage/core")
subdirs("stage/fleet")
subdirs("stage/wlm")
subdirs("stage/metrics")
subdirs("stage/mview")
