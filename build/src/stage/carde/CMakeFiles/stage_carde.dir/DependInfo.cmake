
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stage/carde/estimator.cc" "src/stage/carde/CMakeFiles/stage_carde.dir/estimator.cc.o" "gcc" "src/stage/carde/CMakeFiles/stage_carde.dir/estimator.cc.o.d"
  "/root/repo/src/stage/carde/learned.cc" "src/stage/carde/CMakeFiles/stage_carde.dir/learned.cc.o" "gcc" "src/stage/carde/CMakeFiles/stage_carde.dir/learned.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stage/common/CMakeFiles/stage_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stage/plan/CMakeFiles/stage_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/stage/gbt/CMakeFiles/stage_gbt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
