file(REMOVE_RECURSE
  "CMakeFiles/stage_carde.dir/estimator.cc.o"
  "CMakeFiles/stage_carde.dir/estimator.cc.o.d"
  "CMakeFiles/stage_carde.dir/learned.cc.o"
  "CMakeFiles/stage_carde.dir/learned.cc.o.d"
  "libstage_carde.a"
  "libstage_carde.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stage_carde.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
