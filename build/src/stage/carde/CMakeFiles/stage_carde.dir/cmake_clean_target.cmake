file(REMOVE_RECURSE
  "libstage_carde.a"
)
