# Empty compiler generated dependencies file for stage_carde.
# This may be replaced when dependencies are built.
