# Empty compiler generated dependencies file for stage_wlm.
# This may be replaced when dependencies are built.
