file(REMOVE_RECURSE
  "CMakeFiles/stage_wlm.dir/trace_util.cc.o"
  "CMakeFiles/stage_wlm.dir/trace_util.cc.o.d"
  "CMakeFiles/stage_wlm.dir/workload_manager.cc.o"
  "CMakeFiles/stage_wlm.dir/workload_manager.cc.o.d"
  "libstage_wlm.a"
  "libstage_wlm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stage_wlm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
