file(REMOVE_RECURSE
  "libstage_wlm.a"
)
