
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stage/common/flags.cc" "src/stage/common/CMakeFiles/stage_common.dir/flags.cc.o" "gcc" "src/stage/common/CMakeFiles/stage_common.dir/flags.cc.o.d"
  "/root/repo/src/stage/common/p2_quantile.cc" "src/stage/common/CMakeFiles/stage_common.dir/p2_quantile.cc.o" "gcc" "src/stage/common/CMakeFiles/stage_common.dir/p2_quantile.cc.o.d"
  "/root/repo/src/stage/common/rng.cc" "src/stage/common/CMakeFiles/stage_common.dir/rng.cc.o" "gcc" "src/stage/common/CMakeFiles/stage_common.dir/rng.cc.o.d"
  "/root/repo/src/stage/common/serialize.cc" "src/stage/common/CMakeFiles/stage_common.dir/serialize.cc.o" "gcc" "src/stage/common/CMakeFiles/stage_common.dir/serialize.cc.o.d"
  "/root/repo/src/stage/common/stats.cc" "src/stage/common/CMakeFiles/stage_common.dir/stats.cc.o" "gcc" "src/stage/common/CMakeFiles/stage_common.dir/stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
