# Empty compiler generated dependencies file for stage_common.
# This may be replaced when dependencies are built.
