file(REMOVE_RECURSE
  "CMakeFiles/stage_common.dir/flags.cc.o"
  "CMakeFiles/stage_common.dir/flags.cc.o.d"
  "CMakeFiles/stage_common.dir/p2_quantile.cc.o"
  "CMakeFiles/stage_common.dir/p2_quantile.cc.o.d"
  "CMakeFiles/stage_common.dir/rng.cc.o"
  "CMakeFiles/stage_common.dir/rng.cc.o.d"
  "CMakeFiles/stage_common.dir/serialize.cc.o"
  "CMakeFiles/stage_common.dir/serialize.cc.o.d"
  "CMakeFiles/stage_common.dir/stats.cc.o"
  "CMakeFiles/stage_common.dir/stats.cc.o.d"
  "libstage_common.a"
  "libstage_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stage_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
