file(REMOVE_RECURSE
  "libstage_common.a"
)
