# Empty dependencies file for stage_fleet.
# This may be replaced when dependencies are built.
