file(REMOVE_RECURSE
  "CMakeFiles/stage_fleet.dir/fleet.cc.o"
  "CMakeFiles/stage_fleet.dir/fleet.cc.o.d"
  "CMakeFiles/stage_fleet.dir/ground_truth.cc.o"
  "CMakeFiles/stage_fleet.dir/ground_truth.cc.o.d"
  "CMakeFiles/stage_fleet.dir/instance.cc.o"
  "CMakeFiles/stage_fleet.dir/instance.cc.o.d"
  "CMakeFiles/stage_fleet.dir/workload.cc.o"
  "CMakeFiles/stage_fleet.dir/workload.cc.o.d"
  "libstage_fleet.a"
  "libstage_fleet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stage_fleet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
