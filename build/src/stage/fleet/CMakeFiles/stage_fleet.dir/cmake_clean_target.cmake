file(REMOVE_RECURSE
  "libstage_fleet.a"
)
