# CMake generated Testfile for 
# Source directory: /root/repo/src/stage/mview
# Build directory: /root/repo/build/src/stage/mview
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
