# Empty compiler generated dependencies file for stage_mview.
# This may be replaced when dependencies are built.
