file(REMOVE_RECURSE
  "CMakeFiles/stage_mview.dir/advisor.cc.o"
  "CMakeFiles/stage_mview.dir/advisor.cc.o.d"
  "libstage_mview.a"
  "libstage_mview.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stage_mview.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
