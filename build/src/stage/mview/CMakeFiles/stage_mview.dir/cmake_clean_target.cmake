file(REMOVE_RECURSE
  "libstage_mview.a"
)
