# CMake generated Testfile for 
# Source directory: /root/repo/src/stage/gbt
# Build directory: /root/repo/build/src/stage/gbt
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
