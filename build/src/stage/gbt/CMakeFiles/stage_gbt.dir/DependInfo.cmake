
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stage/gbt/dataset.cc" "src/stage/gbt/CMakeFiles/stage_gbt.dir/dataset.cc.o" "gcc" "src/stage/gbt/CMakeFiles/stage_gbt.dir/dataset.cc.o.d"
  "/root/repo/src/stage/gbt/ensemble.cc" "src/stage/gbt/CMakeFiles/stage_gbt.dir/ensemble.cc.o" "gcc" "src/stage/gbt/CMakeFiles/stage_gbt.dir/ensemble.cc.o.d"
  "/root/repo/src/stage/gbt/gbdt.cc" "src/stage/gbt/CMakeFiles/stage_gbt.dir/gbdt.cc.o" "gcc" "src/stage/gbt/CMakeFiles/stage_gbt.dir/gbdt.cc.o.d"
  "/root/repo/src/stage/gbt/loss.cc" "src/stage/gbt/CMakeFiles/stage_gbt.dir/loss.cc.o" "gcc" "src/stage/gbt/CMakeFiles/stage_gbt.dir/loss.cc.o.d"
  "/root/repo/src/stage/gbt/quantizer.cc" "src/stage/gbt/CMakeFiles/stage_gbt.dir/quantizer.cc.o" "gcc" "src/stage/gbt/CMakeFiles/stage_gbt.dir/quantizer.cc.o.d"
  "/root/repo/src/stage/gbt/tree.cc" "src/stage/gbt/CMakeFiles/stage_gbt.dir/tree.cc.o" "gcc" "src/stage/gbt/CMakeFiles/stage_gbt.dir/tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stage/common/CMakeFiles/stage_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
