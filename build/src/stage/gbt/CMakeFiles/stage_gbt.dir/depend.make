# Empty dependencies file for stage_gbt.
# This may be replaced when dependencies are built.
