file(REMOVE_RECURSE
  "CMakeFiles/stage_gbt.dir/dataset.cc.o"
  "CMakeFiles/stage_gbt.dir/dataset.cc.o.d"
  "CMakeFiles/stage_gbt.dir/ensemble.cc.o"
  "CMakeFiles/stage_gbt.dir/ensemble.cc.o.d"
  "CMakeFiles/stage_gbt.dir/gbdt.cc.o"
  "CMakeFiles/stage_gbt.dir/gbdt.cc.o.d"
  "CMakeFiles/stage_gbt.dir/loss.cc.o"
  "CMakeFiles/stage_gbt.dir/loss.cc.o.d"
  "CMakeFiles/stage_gbt.dir/quantizer.cc.o"
  "CMakeFiles/stage_gbt.dir/quantizer.cc.o.d"
  "CMakeFiles/stage_gbt.dir/tree.cc.o"
  "CMakeFiles/stage_gbt.dir/tree.cc.o.d"
  "libstage_gbt.a"
  "libstage_gbt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stage_gbt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
