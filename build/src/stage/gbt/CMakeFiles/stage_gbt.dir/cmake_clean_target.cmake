file(REMOVE_RECURSE
  "libstage_gbt.a"
)
