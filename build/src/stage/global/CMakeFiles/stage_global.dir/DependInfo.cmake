
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stage/global/global_model.cc" "src/stage/global/CMakeFiles/stage_global.dir/global_model.cc.o" "gcc" "src/stage/global/CMakeFiles/stage_global.dir/global_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stage/common/CMakeFiles/stage_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stage/plan/CMakeFiles/stage_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/stage/nn/CMakeFiles/stage_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/stage/fleet/CMakeFiles/stage_fleet.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
