file(REMOVE_RECURSE
  "libstage_global.a"
)
