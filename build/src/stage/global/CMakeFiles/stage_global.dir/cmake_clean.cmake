file(REMOVE_RECURSE
  "CMakeFiles/stage_global.dir/global_model.cc.o"
  "CMakeFiles/stage_global.dir/global_model.cc.o.d"
  "libstage_global.a"
  "libstage_global.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stage_global.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
