# Empty compiler generated dependencies file for stage_global.
# This may be replaced when dependencies are built.
