# Empty dependencies file for stage_cache.
# This may be replaced when dependencies are built.
