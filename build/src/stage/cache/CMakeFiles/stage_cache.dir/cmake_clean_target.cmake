file(REMOVE_RECURSE
  "libstage_cache.a"
)
