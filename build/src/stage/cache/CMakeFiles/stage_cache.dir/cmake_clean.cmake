file(REMOVE_RECURSE
  "CMakeFiles/stage_cache.dir/exec_time_cache.cc.o"
  "CMakeFiles/stage_cache.dir/exec_time_cache.cc.o.d"
  "libstage_cache.a"
  "libstage_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stage_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
