file(REMOVE_RECURSE
  "CMakeFiles/stage_nn.dir/linear.cc.o"
  "CMakeFiles/stage_nn.dir/linear.cc.o.d"
  "CMakeFiles/stage_nn.dir/mlp.cc.o"
  "CMakeFiles/stage_nn.dir/mlp.cc.o.d"
  "CMakeFiles/stage_nn.dir/param.cc.o"
  "CMakeFiles/stage_nn.dir/param.cc.o.d"
  "CMakeFiles/stage_nn.dir/tree_gcn.cc.o"
  "CMakeFiles/stage_nn.dir/tree_gcn.cc.o.d"
  "libstage_nn.a"
  "libstage_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stage_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
