file(REMOVE_RECURSE
  "libstage_nn.a"
)
