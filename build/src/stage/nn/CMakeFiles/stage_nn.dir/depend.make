# Empty dependencies file for stage_nn.
# This may be replaced when dependencies are built.
