# Empty compiler generated dependencies file for stage_nn.
# This may be replaced when dependencies are built.
