
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stage/nn/linear.cc" "src/stage/nn/CMakeFiles/stage_nn.dir/linear.cc.o" "gcc" "src/stage/nn/CMakeFiles/stage_nn.dir/linear.cc.o.d"
  "/root/repo/src/stage/nn/mlp.cc" "src/stage/nn/CMakeFiles/stage_nn.dir/mlp.cc.o" "gcc" "src/stage/nn/CMakeFiles/stage_nn.dir/mlp.cc.o.d"
  "/root/repo/src/stage/nn/param.cc" "src/stage/nn/CMakeFiles/stage_nn.dir/param.cc.o" "gcc" "src/stage/nn/CMakeFiles/stage_nn.dir/param.cc.o.d"
  "/root/repo/src/stage/nn/tree_gcn.cc" "src/stage/nn/CMakeFiles/stage_nn.dir/tree_gcn.cc.o" "gcc" "src/stage/nn/CMakeFiles/stage_nn.dir/tree_gcn.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stage/common/CMakeFiles/stage_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
