file(REMOVE_RECURSE
  "libstage_metrics.a"
)
