file(REMOVE_RECURSE
  "CMakeFiles/stage_metrics.dir/error_metrics.cc.o"
  "CMakeFiles/stage_metrics.dir/error_metrics.cc.o.d"
  "CMakeFiles/stage_metrics.dir/prr.cc.o"
  "CMakeFiles/stage_metrics.dir/prr.cc.o.d"
  "CMakeFiles/stage_metrics.dir/report.cc.o"
  "CMakeFiles/stage_metrics.dir/report.cc.o.d"
  "libstage_metrics.a"
  "libstage_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stage_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
