
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stage/metrics/error_metrics.cc" "src/stage/metrics/CMakeFiles/stage_metrics.dir/error_metrics.cc.o" "gcc" "src/stage/metrics/CMakeFiles/stage_metrics.dir/error_metrics.cc.o.d"
  "/root/repo/src/stage/metrics/prr.cc" "src/stage/metrics/CMakeFiles/stage_metrics.dir/prr.cc.o" "gcc" "src/stage/metrics/CMakeFiles/stage_metrics.dir/prr.cc.o.d"
  "/root/repo/src/stage/metrics/report.cc" "src/stage/metrics/CMakeFiles/stage_metrics.dir/report.cc.o" "gcc" "src/stage/metrics/CMakeFiles/stage_metrics.dir/report.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stage/common/CMakeFiles/stage_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
