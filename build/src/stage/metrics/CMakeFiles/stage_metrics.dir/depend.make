# Empty dependencies file for stage_metrics.
# This may be replaced when dependencies are built.
