file(REMOVE_RECURSE
  "CMakeFiles/stage_plan.dir/featurizer.cc.o"
  "CMakeFiles/stage_plan.dir/featurizer.cc.o.d"
  "CMakeFiles/stage_plan.dir/generator.cc.o"
  "CMakeFiles/stage_plan.dir/generator.cc.o.d"
  "CMakeFiles/stage_plan.dir/operator_type.cc.o"
  "CMakeFiles/stage_plan.dir/operator_type.cc.o.d"
  "CMakeFiles/stage_plan.dir/plan.cc.o"
  "CMakeFiles/stage_plan.dir/plan.cc.o.d"
  "libstage_plan.a"
  "libstage_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stage_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
