
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stage/plan/featurizer.cc" "src/stage/plan/CMakeFiles/stage_plan.dir/featurizer.cc.o" "gcc" "src/stage/plan/CMakeFiles/stage_plan.dir/featurizer.cc.o.d"
  "/root/repo/src/stage/plan/generator.cc" "src/stage/plan/CMakeFiles/stage_plan.dir/generator.cc.o" "gcc" "src/stage/plan/CMakeFiles/stage_plan.dir/generator.cc.o.d"
  "/root/repo/src/stage/plan/operator_type.cc" "src/stage/plan/CMakeFiles/stage_plan.dir/operator_type.cc.o" "gcc" "src/stage/plan/CMakeFiles/stage_plan.dir/operator_type.cc.o.d"
  "/root/repo/src/stage/plan/plan.cc" "src/stage/plan/CMakeFiles/stage_plan.dir/plan.cc.o" "gcc" "src/stage/plan/CMakeFiles/stage_plan.dir/plan.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stage/common/CMakeFiles/stage_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
