# Empty compiler generated dependencies file for stage_plan.
# This may be replaced when dependencies are built.
