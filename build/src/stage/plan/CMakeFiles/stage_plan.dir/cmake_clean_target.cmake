file(REMOVE_RECURSE
  "libstage_plan.a"
)
