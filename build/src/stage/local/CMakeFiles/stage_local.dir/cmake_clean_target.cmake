file(REMOVE_RECURSE
  "libstage_local.a"
)
