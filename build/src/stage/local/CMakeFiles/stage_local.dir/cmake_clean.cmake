file(REMOVE_RECURSE
  "CMakeFiles/stage_local.dir/local_model.cc.o"
  "CMakeFiles/stage_local.dir/local_model.cc.o.d"
  "CMakeFiles/stage_local.dir/training_pool.cc.o"
  "CMakeFiles/stage_local.dir/training_pool.cc.o.d"
  "libstage_local.a"
  "libstage_local.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stage_local.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
