# Empty dependencies file for stage_local.
# This may be replaced when dependencies are built.
