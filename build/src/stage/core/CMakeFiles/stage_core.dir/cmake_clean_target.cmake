file(REMOVE_RECURSE
  "libstage_core.a"
)
