# Empty dependencies file for stage_core.
# This may be replaced when dependencies are built.
