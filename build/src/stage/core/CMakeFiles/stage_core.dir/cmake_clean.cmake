file(REMOVE_RECURSE
  "CMakeFiles/stage_core.dir/autowlm.cc.o"
  "CMakeFiles/stage_core.dir/autowlm.cc.o.d"
  "CMakeFiles/stage_core.dir/predictor.cc.o"
  "CMakeFiles/stage_core.dir/predictor.cc.o.d"
  "CMakeFiles/stage_core.dir/replay.cc.o"
  "CMakeFiles/stage_core.dir/replay.cc.o.d"
  "CMakeFiles/stage_core.dir/stage_predictor.cc.o"
  "CMakeFiles/stage_core.dir/stage_predictor.cc.o.d"
  "libstage_core.a"
  "libstage_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stage_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
