
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stage/core/autowlm.cc" "src/stage/core/CMakeFiles/stage_core.dir/autowlm.cc.o" "gcc" "src/stage/core/CMakeFiles/stage_core.dir/autowlm.cc.o.d"
  "/root/repo/src/stage/core/predictor.cc" "src/stage/core/CMakeFiles/stage_core.dir/predictor.cc.o" "gcc" "src/stage/core/CMakeFiles/stage_core.dir/predictor.cc.o.d"
  "/root/repo/src/stage/core/replay.cc" "src/stage/core/CMakeFiles/stage_core.dir/replay.cc.o" "gcc" "src/stage/core/CMakeFiles/stage_core.dir/replay.cc.o.d"
  "/root/repo/src/stage/core/stage_predictor.cc" "src/stage/core/CMakeFiles/stage_core.dir/stage_predictor.cc.o" "gcc" "src/stage/core/CMakeFiles/stage_core.dir/stage_predictor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stage/common/CMakeFiles/stage_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stage/plan/CMakeFiles/stage_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/stage/gbt/CMakeFiles/stage_gbt.dir/DependInfo.cmake"
  "/root/repo/build/src/stage/cache/CMakeFiles/stage_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/stage/local/CMakeFiles/stage_local.dir/DependInfo.cmake"
  "/root/repo/build/src/stage/global/CMakeFiles/stage_global.dir/DependInfo.cmake"
  "/root/repo/build/src/stage/fleet/CMakeFiles/stage_fleet.dir/DependInfo.cmake"
  "/root/repo/build/src/stage/nn/CMakeFiles/stage_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
