// Materialized-view advisor: the paper's flagship non-critical downstream
// task (§2.1). The advisor rewrites recurring templates "as if" their join
// prefix were materialized, prices the hypothetical plans with the global
// model (the only stage that can score never-executed plans), and ranks
// candidate views by predicted daily benefit. Ground truth then verifies
// which recommendations were real.
//
//   ./build/examples/mv_advisor
#include <algorithm>
#include <cstdio>
#include <map>

#include "stage/fleet/fleet.h"
#include "stage/fleet/ground_truth.h"
#include "stage/global/global_model.h"
#include "stage/metrics/report.h"
#include "stage/mview/advisor.h"

using namespace stage;

int main() {
  // A BI customer whose dashboards hammer a handful of join templates.
  fleet::FleetConfig fleet_config;
  fleet_config.num_instances = 1;
  fleet_config.workload.num_queries = 1500;
  fleet_config.workload.num_templates = 30;
  fleet_config.seed = 77;
  fleet::FleetGenerator generator(fleet_config);
  const fleet::InstanceTrace instance = generator.MakeInstanceTrace(0);

  // Train the global model on this customer's history (in production it
  // would be the fleet-trained model).
  std::vector<global::GlobalExample> examples;
  for (const auto& event : instance.trace) {
    examples.push_back(global::MakeGlobalExample(
        event.plan, instance.config, event.concurrent_queries,
        event.exec_seconds));
  }
  global::GlobalModelConfig model_config;
  model_config.epochs = 6;
  std::printf("training the global model on %zu executions...\n\n",
              examples.size());
  const global::GlobalModel model =
      global::GlobalModel::Train(examples, model_config);

  // Recover the recurring templates and their daily frequency from the
  // trace; rebuild specs by sampling the same generator pool.
  const plan::PlanGenerator plan_generator(instance.config.schema,
                                           fleet_config.generator);
  Rng rng(fleet_config.seed);
  std::map<uint64_t, double> frequency;
  for (const auto& event : instance.trace) {
    if (event.template_id != 0) frequency[event.template_id] += 1.0;
  }
  // Candidate templates: draw specs the same way the workload did and take
  // the multi-join ones (the advisor only considers joins).
  std::vector<plan::PlanSpec> templates;
  std::vector<double> executions_per_day;
  Rng template_rng(1234);
  for (int t = 0; t < 12; ++t) {
    const plan::PlanSpec spec = plan_generator.RandomSpec(template_rng);
    if (spec.scans.size() < 2) continue;
    templates.push_back(spec);
    executions_per_day.push_back(50.0 / (t + 1));  // Zipf-ish frequency.
  }

  const auto recommendations =
      mview::RecommendViews(templates, executions_per_day, plan_generator,
                            model, instance.config, mview::AdvisorConfig{});

  const fleet::GroundTruthModel truth;
  metrics::TextTable table;
  table.SetHeader({"rank", "joins folded", "exec/day",
                   "predicted saving/exec (s)", "TRUE saving/exec (s)",
                   "predicted benefit (s/day)"});
  int rank = 1;
  int verified = 0;
  for (const auto& recommendation : recommendations) {
    if (rank > 8) break;
    // Verify against the hidden ground truth.
    const auto rewritten = mview::MaterializePrefix(
        recommendation.view, plan_generator,
        static_cast<int32_t>(plan_generator.schema().size()));
    std::vector<plan::TableDef> extended = plan_generator.schema();
    extended.push_back(rewritten->view_table);
    const plan::PlanGenerator extended_generator(std::move(extended),
                                                 plan_generator.config());
    const double true_before = truth.ExpectedExecSeconds(
        plan_generator.Instantiate(recommendation.view.source),
        instance.config, 0);
    const double true_after = truth.ExpectedExecSeconds(
        extended_generator.Instantiate(rewritten->rewritten),
        instance.config, 0);
    const double true_saving = true_before - true_after;
    verified += true_saving > 0.0 ? 1 : 0;

    table.AddRow(
        {std::to_string(rank++),
         std::to_string(recommendation.view.prefix_scans - 1),
         metrics::FormatValue(recommendation.executions_per_day),
         metrics::FormatValue(recommendation.predicted_seconds_before -
                              recommendation.predicted_seconds_after),
         metrics::FormatValue(true_saving),
         metrics::FormatValue(
             recommendation.predicted_daily_benefit_seconds)});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("%d of %d shown recommendations have a real (ground-truth) "
              "saving\n",
              verified, rank - 1);
  return 0;
}
