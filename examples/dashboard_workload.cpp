// Dashboard workload: the repetition-heavy scenario from the paper's
// introduction. A BI instance refreshes the same reports all day; the
// exec-time cache serves most of the traffic at near-zero cost, and the
// alpha-blend keeps predictions fresh while table data grows under stale
// statistics.
//
//   ./build/examples/dashboard_workload
#include <cstdio>

#include "stage/core/autowlm.h"
#include "stage/core/replay.h"
#include "stage/core/stage_predictor.h"
#include "stage/fleet/fleet.h"
#include "stage/metrics/error_metrics.h"
#include "stage/metrics/report.h"

using namespace stage;

int main() {
  // A dashboarding customer: 90% of queries are exact repeats of a small
  // report pool, tables grow 5% per day, and ANALYZE never runs.
  fleet::FleetConfig fleet_config;
  fleet_config.num_instances = 1;
  fleet_config.seed = 21;
  fleet_config.unique_fraction_mean = 0.1;
  fleet_config.unique_fraction_sigma = 0.0;
  fleet_config.data_growth_probability = 1.0;
  fleet_config.max_daily_growth = 0.05;
  fleet_config.workload.num_queries = 2000;
  fleet_config.workload.num_templates = 40;
  fleet::FleetGenerator generator(fleet_config);
  const fleet::InstanceTrace instance = generator.MakeInstanceTrace(0);

  double repeats = 0;
  for (const auto& event : instance.trace) {
    repeats += event.kind == fleet::QueryEvent::Kind::kRepeat ? 1 : 0;
  }
  std::printf("dashboard instance: %.0f%% of %zu queries are exact "
              "repeats\n\n",
              100.0 * repeats / instance.trace.size(), instance.trace.size());

  core::StagePredictorConfig stage_config;
  stage_config.local.ensemble.member.num_rounds = 60;
  core::StagePredictor stage(stage_config, {.instance = &instance.config});
  core::AutoWlmConfig autowlm_config;
  autowlm_config.gbdt.num_rounds = 100;
  core::AutoWlmPredictor autowlm(autowlm_config);

  const auto stage_result = core::ReplayTrace(instance.trace, stage);
  const auto autowlm_result = core::ReplayTrace(instance.trace, autowlm);

  const auto actual = stage_result.Actuals();
  const auto stage_q =
      metrics::Summarize(metrics::QErrors(actual, stage_result.Predictions()));
  const auto autowlm_q = metrics::Summarize(
      metrics::QErrors(actual, autowlm_result.Predictions()));

  metrics::TextTable table;
  table.SetHeader({"predictor", "P50 Q-error", "P90 Q-error", "served by"});
  char stage_served[64];
  std::snprintf(stage_served, sizeof(stage_served), "cache %.0f%% local %.0f%%",
                100.0 *
                    stage.predictions_from(core::PredictionSource::kCache) /
                    instance.trace.size(),
                100.0 *
                    stage.predictions_from(core::PredictionSource::kLocal) /
                    instance.trace.size());
  table.AddRow({"Stage", metrics::FormatValue(stage_q.p50),
                metrics::FormatValue(stage_q.p90), stage_served});
  table.AddRow({"AutoWLM", metrics::FormatValue(autowlm_q.p50),
                metrics::FormatValue(autowlm_q.p90), "one XGBoost model"});
  std::printf("%s\n", table.Render().c_str());

  // Freshness under drift: compare the cache's blended prediction for the
  // hottest template early vs late in the trace.
  std::printf("cache freshness under 5%%/day data growth:\n");
  const auto& cache = stage.exec_time_cache();
  for (const auto& event : instance.trace) {
    if (event.template_id == 1) {
      const auto* entry = cache.Lookup(
          plan::HashFeatures(plan::FlattenPlan(event.plan)));
      if (entry != nullptr) {
        std::printf("  hottest report: %zu observations, running mean "
                    "%.2fs, last %.2fs -> blended prediction %.2fs\n",
                    entry->stats.count(), entry->stats.mean(),
                    entry->last_exec_time,
                    0.8 * entry->stats.mean() + 0.2 * entry->last_exec_time);
      }
      break;
    }
  }
  return 0;
}
