// Quickstart: build a tiny synthetic instance, run the Stage predictor on
// its query stream, and inspect predictions, attribution, and accuracy.
//
//   ./build/examples/quickstart
#include <cstdio>

#include "stage/core/replay.h"
#include "stage/core/stage_predictor.h"
#include "stage/fleet/fleet.h"
#include "stage/metrics/error_metrics.h"

using namespace stage;

int main() {
  // 1. A synthetic Redshift-like instance with a 1,000-query trace.
  fleet::FleetConfig fleet_config;
  fleet_config.num_instances = 1;
  fleet_config.workload.num_queries = 1000;
  fleet_config.seed = 7;
  fleet::FleetGenerator generator(fleet_config);
  const fleet::InstanceTrace instance = generator.MakeInstanceTrace(0);
  std::printf("instance: %s x%d nodes, %zu tables, %zu queries\n\n",
              std::string(fleet::NodeTypeName(instance.config.node_type))
                  .c_str(),
              instance.config.num_nodes, instance.config.schema.size(),
              instance.trace.size());

  // 2. A Stage predictor in the deployed configuration (cache + local
  //    Bayesian ensemble; no global model).
  core::StagePredictorConfig config;
  config.local.ensemble.num_members = 10;
  config.local.ensemble.member.num_rounds = 60;
  core::StagePredictor predictor(config, {.instance = &instance.config});

  // 3. Drive it query by query: Predict before execution, Observe after.
  //    (core::ReplayTrace wraps exactly this loop.)
  for (size_t i = 0; i < instance.trace.size(); ++i) {
    const fleet::QueryEvent& event = instance.trace[i];
    const core::QueryContext context = core::MakeQueryContext(
        event.plan, event.concurrent_queries,
        static_cast<uint64_t>(event.arrival_ms));
    const core::Prediction prediction = predictor.Predict(context);
    if (i % 200 == 0) {
      std::printf("query %4zu: predicted %8.2fs (%s%s), actual %8.2fs\n", i,
                  prediction.seconds,
                  std::string(core::PredictionSourceName(prediction.source))
                      .c_str(),
                  prediction.uncertainty_log_std >= 0 ? ", with uncertainty"
                                                      : "",
                  event.exec_seconds);
    }
    predictor.Observe(context, event.exec_seconds);
  }

  // 4. Where did predictions come from, and how good were they?
  std::printf("\nattribution: cache=%llu local=%llu default=%llu\n",
              static_cast<unsigned long long>(
                  predictor.predictions_from(core::PredictionSource::kCache)),
              static_cast<unsigned long long>(
                  predictor.predictions_from(core::PredictionSource::kLocal)),
              static_cast<unsigned long long>(predictor.predictions_from(
                  core::PredictionSource::kDefault)));
  std::printf("cache: %zu entries, %llu hits, %llu evictions\n",
              predictor.exec_time_cache().size(),
              static_cast<unsigned long long>(
                  predictor.exec_time_cache().hits()),
              static_cast<unsigned long long>(
                  predictor.exec_time_cache().evictions()));

  // A one-line accuracy summary via the replay helper on a fresh predictor.
  core::StagePredictor fresh(config, {.instance = &instance.config});
  const core::ReplayResult result = core::ReplayTrace(instance.trace, fresh);
  const auto summary = metrics::Summarize(
      metrics::AbsoluteErrors(result.Actuals(), result.Predictions()));
  std::printf("replayed accuracy: MAE=%.2fs P50-AE=%.2fs P90-AE=%.2fs\n",
              summary.mean, summary.p50, summary.p90);
  return 0;
}
