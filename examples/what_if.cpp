// "What-if" hypothetical reasoning (§6.1): because the global model is
// instance-independent, it can predict query performance under
// configurations the customer has never run — e.g. "what if the cluster
// doubled its nodes?". This example asks that question for a set of
// queries and checks the answer against the hidden ground truth.
//
//   ./build/examples/what_if
#include <algorithm>
#include <cstdio>

#include "stage/fleet/fleet.h"
#include "stage/fleet/ground_truth.h"
#include "stage/global/global_model.h"
#include "stage/metrics/error_metrics.h"
#include "stage/metrics/report.h"

using namespace stage;

int main() {
  // Train the global model across a fleet with DIVERSE cluster sizes, so
  // "more nodes -> faster" is in its training distribution.
  fleet::FleetConfig train_config;
  train_config.num_instances = 12;
  train_config.workload.num_queries = 1000;
  train_config.seed = 99;
  fleet::FleetGenerator train_generator(train_config);
  std::vector<global::GlobalExample> examples;
  for (const auto& instance : train_generator.GenerateFleet()) {
    for (const auto& event : instance.trace) {
      examples.push_back(global::MakeGlobalExample(
          event.plan, instance.config, event.concurrent_queries,
          event.exec_seconds));
    }
  }
  global::GlobalModelConfig global_config;
  global_config.epochs = 8;
  std::printf("training the global model on %zu queries from %d "
              "instances...\n\n",
              examples.size(), train_config.num_instances);
  const global::GlobalModel global_model =
      global::GlobalModel::Train(examples, global_config);

  // The customer: a 4-node cluster considering a resize.
  fleet::FleetConfig customer_config;
  customer_config.num_instances = 1;
  customer_config.workload.num_queries = 400;
  customer_config.seed = 4242;
  fleet::FleetGenerator customer_generator(customer_config);
  fleet::InstanceTrace customer = customer_generator.MakeInstanceTrace(0);
  customer.config.num_nodes = 4;
  customer.config.memory_gb =
      fleet::NodeTypeMemoryGb(customer.config.node_type) * 4;

  const fleet::GroundTruthModel truth;
  std::printf("what-if: resize %s from 4 nodes, averaged over the 30 "
              "longest queries\n\n",
              std::string(fleet::NodeTypeName(customer.config.node_type))
                  .c_str());

  // Pick the 30 longest queries — the ones a resize decision cares about.
  std::vector<size_t> longest;
  for (size_t i = 0; i < customer.trace.size(); ++i) longest.push_back(i);
  std::sort(longest.begin(), longest.end(), [&](size_t a, size_t b) {
    return customer.trace[a].exec_seconds > customer.trace[b].exec_seconds;
  });
  longest.resize(30);

  metrics::TextTable table;
  table.SetHeader({"hypothetical nodes", "predicted speedup",
                   "true speedup", "predicted avg (s)", "true avg (s)"});
  double base_predicted = 0.0;
  double base_true = 0.0;
  for (int nodes : {4, 8, 16, 32}) {
    fleet::InstanceConfig hypothetical = customer.config;
    hypothetical.num_nodes = nodes;
    hypothetical.memory_gb =
        fleet::NodeTypeMemoryGb(hypothetical.node_type) * nodes;

    double predicted_total = 0.0;
    double true_total = 0.0;
    for (size_t index : longest) {
      const auto& event = customer.trace[index];
      predicted_total += global_model.PredictSeconds(
          event.plan, hypothetical, event.concurrent_queries);
      true_total += truth.ExpectedExecSeconds(event.plan, hypothetical,
                                              event.concurrent_queries);
    }
    const double predicted_avg = predicted_total / longest.size();
    const double true_avg = true_total / longest.size();
    if (nodes == 4) {
      base_predicted = predicted_avg;
      base_true = true_avg;
    }
    char predicted_speedup[32];
    char true_speedup[32];
    std::snprintf(predicted_speedup, sizeof(predicted_speedup), "%.2fx",
                  base_predicted / predicted_avg);
    std::snprintf(true_speedup, sizeof(true_speedup), "%.2fx",
                  base_true / true_avg);
    table.AddRow({std::to_string(nodes), predicted_speedup, true_speedup,
                  metrics::FormatValue(predicted_avg),
                  metrics::FormatValue(true_avg)});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("(the model has never seen this customer; absolute levels "
              "carry the usual zero-shot bias, but the resize *trend* is "
              "what a scaling advisor consumes)\n");
  return 0;
}
