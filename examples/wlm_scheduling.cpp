// Workload-manager scheduling: shows how prediction accuracy turns into
// end-to-end latency. Replays one contended instance through the WLM
// simulator under three predictors and shows a head-of-line-blocking event
// caused by a misprediction.
//
//   ./build/examples/wlm_scheduling
#include <algorithm>
#include <cstdio>

#include "stage/core/autowlm.h"
#include "stage/core/replay.h"
#include "stage/core/stage_predictor.h"
#include "stage/fleet/fleet.h"
#include "stage/metrics/report.h"
#include "stage/wlm/trace_util.h"
#include "stage/wlm/workload_manager.h"

using namespace stage;

int main() {
  fleet::FleetConfig fleet_config;
  fleet_config.num_instances = 1;
  fleet_config.workload.num_queries = 2000;
  fleet_config.seed = 33;
  fleet::FleetGenerator generator(fleet_config);
  const fleet::InstanceTrace instance = generator.MakeInstanceTrace(0);

  // Predict every query in arrival order.
  core::StagePredictorConfig stage_config;
  stage_config.local.ensemble.member.num_rounds = 60;
  core::StagePredictor stage(stage_config, {.instance = &instance.config});
  core::AutoWlmPredictor autowlm{core::AutoWlmConfig{}};
  const auto stage_result = core::ReplayTrace(instance.trace, stage);
  const auto autowlm_result = core::ReplayTrace(instance.trace, autowlm);

  // Compress the timeline until the cluster is ~65% utilized, then
  // schedule with each predictor's estimates.
  wlm::WlmConfig wlm_config;
  wlm_config.short_slots = 2;
  wlm_config.long_slots = 3;
  const int slots = wlm_config.short_slots + wlm_config.long_slots;
  const auto trace =
      wlm::CompressToUtilization(instance.trace, slots, 0.65);
  std::printf("trace utilization: %.2f on %d slots\n\n",
              wlm::TraceUtilization(trace, slots), slots);

  const auto optimal = stage_result.Actuals();
  const auto stage_wlm =
      wlm::SimulateWlm(trace, stage_result.Predictions(), wlm_config);
  const auto autowlm_wlm =
      wlm::SimulateWlm(trace, autowlm_result.Predictions(), wlm_config);
  const auto optimal_wlm = wlm::SimulateWlm(trace, optimal, wlm_config);

  metrics::TextTable table;
  table.SetHeader({"predictor", "avg latency (s)", "median", "p90",
                   "short-queue admissions"});
  const auto add = [&](const char* name, const wlm::WlmResult& result) {
    table.AddRow({name, metrics::FormatValue(result.AverageLatency()),
                  metrics::FormatValue(result.LatencyQuantile(0.5)),
                  metrics::FormatValue(result.LatencyQuantile(0.9)),
                  std::to_string(result.short_queue_admissions)});
  };
  add("AutoWLM", autowlm_wlm);
  add("Stage", stage_wlm);
  add("Optimal (oracle)", optimal_wlm);
  std::printf("%s\n", table.Render().c_str());

  // Show the worst head-of-line-blocking victim under AutoWLM that Stage
  // avoided: a query whose wait shrank the most.
  size_t worst = 0;
  double worst_delta = 0.0;
  for (size_t i = 0; i < trace.size(); ++i) {
    const double delta =
        autowlm_wlm.wait_seconds[i] - stage_wlm.wait_seconds[i];
    if (delta > worst_delta) {
      worst_delta = delta;
      worst = i;
    }
  }
  std::printf("biggest rescue: query %zu (true exec %.2fs)\n", worst,
              trace[worst].exec_seconds);
  std::printf("  AutoWLM predicted %8.2fs -> waited %8.1fs\n",
              autowlm_result.records[worst].predicted_seconds,
              autowlm_wlm.wait_seconds[worst]);
  std::printf("  Stage   predicted %8.2fs -> waited %8.1fs\n",
              stage_result.records[worst].predicted_seconds,
              stage_wlm.wait_seconds[worst]);
  return 0;
}
