// Cold start: a brand-new instance has no executed queries, so the local
// model has nothing to train on — the paper's motivating failure mode for
// AutoWLM. The fleet-trained global model covers the gap: it predicts
// queries on an instance it has never seen.
//
//   ./build/examples/cold_start
#include <cstdio>

#include "stage/core/autowlm.h"
#include "stage/core/replay.h"
#include "stage/core/stage_predictor.h"
#include "stage/fleet/fleet.h"
#include "stage/global/global_model.h"
#include "stage/metrics/error_metrics.h"
#include "stage/metrics/report.h"

using namespace stage;

int main() {
  // 1. Train a global model on a small fleet of OTHER customers.
  fleet::FleetConfig train_config;
  train_config.num_instances = 8;
  train_config.workload.num_queries = 800;
  train_config.seed = 55;
  fleet::FleetGenerator train_generator(train_config);
  std::vector<global::GlobalExample> examples;
  for (const auto& instance : train_generator.GenerateFleet()) {
    for (const auto& event : instance.trace) {
      examples.push_back(global::MakeGlobalExample(
          event.plan, instance.config, event.concurrent_queries,
          event.exec_seconds));
    }
  }
  global::GlobalModelConfig global_config;
  global_config.epochs = 6;
  std::printf("training the global model on %zu queries from %d other "
              "instances...\n",
              examples.size(), train_config.num_instances);
  const global::GlobalModel global_model =
      global::GlobalModel::Train(examples, global_config);

  // 2. A brand-new instance from a different seed: zero executed queries.
  fleet::FleetConfig new_config;
  new_config.num_instances = 1;
  new_config.workload.num_queries = 600;
  new_config.seed = 9001;
  fleet::FleetGenerator new_generator(new_config);
  const fleet::InstanceTrace fresh = new_generator.MakeInstanceTrace(0);

  // Only evaluate the cold window: the first 300 queries. A production
  // instance needs far more than a handful of executions before a usable
  // local model exists; model both predictors as requiring 150.
  const std::vector<fleet::QueryEvent> cold_window(fresh.trace.begin(),
                                                   fresh.trace.begin() + 300);

  core::StagePredictorConfig stage_config;
  stage_config.min_train_size = 150;
  core::StagePredictor with_global(stage_config,
                                   {&global_model, &fresh.config});
  core::StagePredictor without_global(stage_config,
                                      {.instance = &fresh.config});
  core::AutoWlmConfig autowlm_config;
  autowlm_config.min_train_size = 150;
  core::AutoWlmPredictor autowlm(autowlm_config);

  const auto with_result = core::ReplayTrace(cold_window, with_global);
  const auto without_result = core::ReplayTrace(cold_window, without_global);
  const auto autowlm_result = core::ReplayTrace(cold_window, autowlm);

  const auto actual = with_result.Actuals();
  metrics::TextTable table;
  table.SetHeader(
      {"predictor on a cold instance", "P50 Q-error", "P90 Q-error"});
  const auto add = [&](const char* name, const core::ReplayResult& result) {
    const auto summary =
        metrics::Summarize(metrics::QErrors(actual, result.Predictions()));
    table.AddRow({name, metrics::FormatValue(summary.p50),
                  metrics::FormatValue(summary.p90)});
  };
  add("Stage + global model", with_result);
  add("Stage without global (cache+local only)", without_result);
  add("AutoWLM", autowlm_result);
  std::printf("\n%s\n", table.Render().c_str());

  std::printf("global model served %llu of the first %zu queries "
              "(cold-start coverage)\n",
              static_cast<unsigned long long>(with_global.predictions_from(
                  core::PredictionSource::kGlobal)),
              cold_window.size());
  return 0;
}
