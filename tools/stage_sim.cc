// stage_sim: command-line driver for the Stage predictor simulation.
//
// Subcommands:
//   trace         Generate a synthetic instance trace and print a summary
//                 (or per-query CSV with --csv).
//   train-global  Train the fleet-level global model and checkpoint it.
//   replay        Replay instances with Stage + AutoWLM, print accuracy
//                 tables (optionally loading a global checkpoint).
//   wlm           End-to-end closed-loop workload-manager comparison: the
//                 predictor runs inside the queue simulation (Predict at
//                 admission, Observe at completion), per --policy.
//   serve         Drive the concurrent PredictionService: one writer
//                 replays the trace while N reader threads predict; prints
//                 attribution, cache stats, and per-source latency/QPS.
//   stats         Replay a trace through an instrumented PredictionService
//                 and dump the full metrics registry (Prometheus text, or
//                 JSON with --json). With --out the periodic checkpointer
//                 runs too, so its snapshot metrics show up in the dump.
//   snapshot      Replay the first --stop_after events of a trace through
//                 a PredictionService and publish a crash-safe snapshot
//                 (CRC-checked, atomic-rename) of the full predictor state.
//   fleet-serve   Serve every instance of the generated fleet as a
//                 FleetService tenant: N threads replay the traces under an
//                 optional resident-bytes budget (--budget_mb), printing
//                 throughput, eviction/cold-activation counters, and the
//                 activation latency table; --out saves the indexed fleet
//                 snapshot.
//   serve --restore_from=FILE --skip=K resumes a suspended replay from a
//                 snapshot: the service comes up warm (cache, pool, local
//                 model) and the writer continues at event K.
//   serve-net     Run the epoll prediction server (FleetService behind a
//                 socket) for --duration_s seconds, one tenant per
//                 instance; publishes the bound port via --port_file and
//                 prints serving stats on shutdown.
//   loadgen       Drive a serve-net endpoint with pipelined predict
//                 requests over N connections; prints qps and latency
//                 percentiles.
//
// Examples:
//   stage_sim trace --instances=2 --queries=500
//   stage_sim train-global --instances=12 --queries=1000 --out=global.bin
//   stage_sim replay --instances=4 --queries=2000 --global=global.bin
//   stage_sim wlm --instances=4 --queries=2000 --utilization=0.75
//   stage_sim serve --queries=2000 --threads=8 --shards=8
//   stage_sim snapshot --queries=2000 --stop_after=1000 --out=snap.bin
//   stage_sim serve --queries=2000 --shards=1 --sync
//       --restore_from=snap.bin --skip=1000
//   stage_sim stats --queries=2000 --shards=4
//   stage_sim serve --queries=2000 --metrics_out=metrics.prom
//   stage_sim serve-net --port=7433 --workers=2 --window_us=200 &
//   stage_sim loadgen --port=7433 --connections=16 --requests=500
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "stage/calib/calibration.h"
#include "stage/calib/conformal.h"
#include "stage/ckpt/checkpoint.h"
#include "stage/common/flags.h"
#include "stage/common/stats.h"
#include "stage/core/autowlm.h"
#include "stage/core/replay.h"
#include "stage/core/stage_predictor.h"
#include "stage/fleet/fleet.h"
#include "stage/fleet_serve/fleet_service.h"
#include "stage/global/global_model.h"
#include "stage/metrics/error_metrics.h"
#include "stage/metrics/report.h"
#include "stage/net/loadgen.h"
#include "stage/net/server.h"
#include "stage/obs/metrics.h"
#include "stage/serve/prediction_service.h"
#include "stage/wlm/policy.h"
#include "stage/wlm/trace_util.h"
#include "stage/wlm/workload_manager.h"

using namespace stage;

namespace {

const std::vector<std::string> kKnownFlags = {
    "instances", "queries",  "seed",        "csv",  "out",
    "global",    "members",  "rounds",      "help", "utilization",
    "short_slots", "long_slots", "threads", "shards", "sync",
    "stop_after", "restore_from", "skip", "metrics_out", "json",
    "budget_mb", "policy", "slo_factor", "window", "anchor",
    "host", "port", "port_file", "workers", "window_us", "max_batch",
    "queue_bound", "max_conns", "duration_s", "connections", "pipeline",
    "requests", "tenants", "concurrent"};

void PrintUsage() {
  std::printf(
      "usage: stage_sim "
      "<trace|train-global|replay|wlm|serve|snapshot|stats|calibrate|"
      "fleet-serve|serve-net|loadgen> [flags]\n"
      "  common flags: --instances=N --queries=N --seed=N\n"
      "  trace:        --csv (per-query CSV to stdout)\n"
      "  train-global: --out=FILE (checkpoint path, default global.bin)\n"
      "  replay:       --global=FILE --members=K --rounds=R --csv\n"
      "                --metrics_out=FILE (dump the metrics registry after "
      "the replay)\n"
      "  wlm:          --global=FILE --utilization=U --short_slots=N "
      "--long_slots=N\n"
      "                --policy=oracle|stage|autowlm|open_loop (default: "
      "compare all)\n"
      "                --slo_factor=K (deadline = K x true exec-time; <=0 "
      "disables)\n"
      "                --metrics_out=FILE (per-policy wlm_<policy>_* "
      "queue metrics)\n"
      "  serve:        --global=FILE --threads=N --shards=N --sync "
      "(inline retrain)\n"
      "                --restore_from=FILE --skip=K (resume a snapshotted "
      "replay;\n"
      "                 --shards must match the snapshotting run)\n"
      "                --metrics_out=FILE (dump the metrics registry after "
      "the run)\n"
      "  snapshot:     --stop_after=K --out=FILE --shards=N (replay K "
      "events,\n"
      "                 write a crash-safe full-state snapshot)\n"
      "  stats:        replay through an instrumented service, dump the\n"
      "                full registry to stdout (--json for the JSON dump;\n"
      "                --out=FILE also runs the periodic checkpointer)\n"
      "  calibrate:    replay and score prediction-interval coverage at\n"
      "                50/80/90/95%% before and after the online conformal\n"
      "                recalibrator (prequential shadow scoring);\n"
      "                --global=FILE --members=K --rounds=R --window=N\n"
      "                (residual window capacity) --anchor=P (anchor\n"
      "                confidence, default 0.9) --out=FILE (JSON report)\n"
      "  fleet-serve:  one tenant per instance through FleetService;\n"
      "                --threads=N --shards=N --budget_mb=M (resident-bytes\n"
      "                budget, 0 = unbounded) --sync (inline retrain)\n"
      "                --out=FILE (indexed fleet snapshot after the replay)\n"
      "  serve-net:    epoll prediction server: FleetService behind a\n"
      "                socket, one tenant per instance; --port=N (0 binds\n"
      "                an ephemeral port) --port_file=FILE (publish the\n"
      "                bound port) --workers=N --window_us=N (0 disables\n"
      "                micro-batching) --max_batch=N --queue_bound=N\n"
      "                --max_conns=N --duration_s=S --global=FILE\n"
      "                --metrics_out=FILE\n"
      "  loadgen:      pipelined predict load against a serve-net\n"
      "                endpoint: --port=N (required) --host=A\n"
      "                --connections=N --pipeline=N --requests=N (per\n"
      "                connection) --tenants=N --concurrent=N; plans come\n"
      "                from the generated trace (--queries/--seed)\n"
      "  --metrics_out=FILE writes Prometheus text exposition, or the JSON\n"
      "  dump when FILE ends in .json\n");
}

// Writes the registry to `path`: Prometheus text exposition by default, the
// JSON dump when the path ends in ".json".
bool DumpMetrics(const obs::MetricsRegistry& registry,
                 const std::string& path) {
  const bool json =
      path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0;
  std::ofstream out(path, std::ios::trunc);
  if (!out || !(out << (json ? registry.RenderJson()
                             : registry.RenderText()))) {
    std::fprintf(stderr, "error: cannot write metrics to %s\n", path.c_str());
    return false;
  }
  std::fprintf(stderr, "[stage_sim] metrics written to %s (%s)\n",
               path.c_str(), json ? "json" : "text exposition");
  return true;
}

fleet::FleetConfig FleetFromFlags(const Flags& flags) {
  fleet::FleetConfig config;
  config.num_instances = static_cast<int>(flags.GetInt("instances", 4));
  config.workload.num_queries =
      static_cast<int>(flags.GetInt("queries", 2000));
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 2024));
  return config;
}

core::StagePredictorConfig StageConfigFromFlags(const Flags& flags) {
  core::StagePredictorConfig config;
  config.local.ensemble.num_members =
      static_cast<int>(flags.GetInt("members", 10));
  config.local.ensemble.member.num_rounds =
      static_cast<int>(flags.GetInt("rounds", 100));
  return config;
}

int RunTrace(const Flags& flags) {
  fleet::FleetGenerator generator(FleetFromFlags(flags));
  const bool csv = flags.GetBool("csv", false);
  if (csv) {
    std::printf("instance,arrival_ms,exec_seconds,kind,template_id,"
                "concurrent,nodes,depth\n");
  }
  for (int i = 0; i < generator.config().num_instances; ++i) {
    const fleet::InstanceTrace instance = generator.MakeInstanceTrace(i);
    if (csv) {
      for (const auto& event : instance.trace) {
        std::printf("%d,%lld,%.6f,%d,%llu,%d,%d,%d\n", i,
                    static_cast<long long>(event.arrival_ms),
                    event.exec_seconds, static_cast<int>(event.kind),
                    static_cast<unsigned long long>(event.template_id),
                    event.concurrent_queries, event.plan.node_count(),
                    event.plan.Depth());
      }
      continue;
    }
    double repeats = 0;
    std::vector<double> latencies;
    for (const auto& event : instance.trace) {
      repeats += event.kind == fleet::QueryEvent::Kind::kRepeat ? 1 : 0;
      latencies.push_back(event.exec_seconds);
    }
    std::printf(
        "instance %d: %s x%d, %zu tables, %zu queries, %.0f%% repeats, "
        "p50 exec %.2fs, p99 %.1fs\n",
        i, std::string(fleet::NodeTypeName(instance.config.node_type)).c_str(),
        instance.config.num_nodes, instance.config.schema.size(),
        instance.trace.size(), 100.0 * repeats / instance.trace.size(),
        Quantile(latencies, 0.5), Quantile(latencies, 0.99));
  }
  return 0;
}

int RunTrainGlobal(const Flags& flags) {
  fleet::FleetConfig config = FleetFromFlags(flags);
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 777));
  fleet::FleetGenerator generator(config);
  std::vector<global::GlobalExample> examples;
  for (const auto& instance : generator.GenerateFleet()) {
    for (const auto& event : instance.trace) {
      examples.push_back(global::MakeGlobalExample(
          event.plan, instance.config, event.concurrent_queries,
          event.exec_seconds));
    }
  }
  std::printf("training on %zu examples from %d instances...\n",
              examples.size(), config.num_instances);
  global::GlobalModelConfig model_config;
  double val_mae = 0.0;
  const global::GlobalModel model =
      global::GlobalModel::Train(examples, model_config, &val_mae);
  std::printf("validation MAE (log space): %.4f\n", val_mae);

  const std::string path = flags.GetString("out", "global.bin");
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "error: cannot open %s for writing\n", path.c_str());
    return 1;
  }
  model.Save(out);
  std::printf("checkpoint written to %s (%zu parameter bytes)\n",
              path.c_str(), model.MemoryBytes());
  return 0;
}

bool MaybeLoadGlobal(const Flags& flags, global::GlobalModel* model,
                     bool* loaded) {
  *loaded = false;
  const std::string path = flags.GetString("global", "");
  if (path.empty()) return true;
  std::ifstream in(path, std::ios::binary);
  if (!in || !model->Load(in)) {
    std::fprintf(stderr, "error: failed to load global model from %s\n",
                 path.c_str());
    return false;
  }
  *loaded = true;
  return true;
}

int RunReplay(const Flags& flags) {
  global::GlobalModel global_model;
  bool use_global = false;
  if (!MaybeLoadGlobal(flags, &global_model, &use_global)) return 1;

  fleet::FleetGenerator generator(FleetFromFlags(flags));
  const bool csv = flags.GetBool("csv", false);
  if (csv) {
    std::printf("instance,query,actual,stage_pred,stage_source,autowlm_pred\n");
  }
  const std::string metrics_out = flags.GetString("metrics_out", "");
  obs::MetricsRegistry registry;

  std::vector<double> actual;
  std::vector<double> stage_pred;
  std::vector<double> autowlm_pred;
  for (int i = 0; i < generator.config().num_instances; ++i) {
    const fleet::InstanceTrace instance = generator.MakeInstanceTrace(i);
    core::StagePredictorOptions options;
    options.global_model = use_global ? &global_model : nullptr;
    options.instance = &instance.config;
    // Sequential per-instance predictors can share one registry: owned
    // counters accumulate across instances, and each predictor's component
    // callbacks unregister at destruction before the next one registers.
    if (!metrics_out.empty()) options.metrics = &registry;
    core::StagePredictor stage(StageConfigFromFlags(flags), options);
    core::AutoWlmPredictor autowlm{core::AutoWlmConfig{}};
    const auto stage_result = core::ReplayTrace(instance.trace, stage);
    const auto autowlm_result = core::ReplayTrace(instance.trace, autowlm);
    // Dump while the last predictor is alive so its component state (cache
    // fill, pool size) is still sampled by the render-time callbacks.
    if (!metrics_out.empty() && i + 1 == generator.config().num_instances &&
        !DumpMetrics(registry, metrics_out)) {
      return 1;
    }
    for (size_t q = 0; q < stage_result.records.size(); ++q) {
      actual.push_back(stage_result.records[q].actual_seconds);
      stage_pred.push_back(stage_result.records[q].predicted_seconds);
      autowlm_pred.push_back(autowlm_result.records[q].predicted_seconds);
      if (csv) {
        std::printf(
            "%d,%zu,%.6f,%.6f,%s,%.6f\n", i, q, actual.back(),
            stage_pred.back(),
            std::string(core::PredictionSourceName(
                            stage_result.records[q].source))
                .c_str(),
            autowlm_pred.back());
      }
    }
    std::fprintf(stderr, "[stage_sim] instance %d replayed\n", i);
  }
  if (csv) return 0;

  const auto stage_summary = metrics::SummarizeByBucket(
      actual, metrics::AbsoluteErrors(actual, stage_pred));
  const auto autowlm_summary = metrics::SummarizeByBucket(
      actual, metrics::AbsoluteErrors(actual, autowlm_pred));
  metrics::TextTable table;
  table.SetHeader({"Bucket", "# Queries", "Stage MAE", "P50", "P90",
                   "AutoWLM MAE", "P50", "P90"});
  const auto add = [&](const std::string& name,
                       const metrics::ErrorSummary& a,
                       const metrics::ErrorSummary& b) {
    table.AddRow({name, std::to_string(a.count), metrics::FormatValue(a.mean),
                  metrics::FormatValue(a.p50), metrics::FormatValue(a.p90),
                  metrics::FormatValue(b.mean), metrics::FormatValue(b.p50),
                  metrics::FormatValue(b.p90)});
  };
  add("Overall", stage_summary.overall, autowlm_summary.overall);
  for (int b = 0; b < metrics::kNumExecTimeBuckets; ++b) {
    add(metrics::BucketName(b), stage_summary.bucket[b],
        autowlm_summary.bucket[b]);
  }
  std::printf("%s", table.Render().c_str());
  std::printf("global model: %s\n", use_global ? "loaded" : "not used");
  return 0;
}

// Interval-calibration report (§4.8): replays every instance with the
// flag-off predictor, scores each local prediction against the observed
// exec-time twice — raw sigma ("pre") and sigma rescaled by a shadow
// conformal recalibrator ("post") — prequentially, so "post" only ever
// uses a scale fit on strictly earlier completions of the same stream.
int RunCalibrate(const Flags& flags) {
  global::GlobalModel global_model;
  bool use_global = false;
  if (!MaybeLoadGlobal(flags, &global_model, &use_global)) return 1;

  calib::ConformalConfig conformal;
  conformal.window_capacity =
      static_cast<size_t>(flags.GetInt("window", 512));
  conformal.anchor_confidence = flags.GetDouble("anchor", 0.9);
  if (const std::string error = conformal.Validate(); !error.empty()) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }

  fleet::FleetGenerator generator(FleetFromFlags(flags));
  calib::CalibrationHarness pre_harness;
  calib::CalibrationHarness post_harness;
  double final_scale = 1.0;
  for (int i = 0; i < generator.config().num_instances; ++i) {
    const fleet::InstanceTrace instance = generator.MakeInstanceTrace(i);
    core::StagePredictorOptions options;
    options.global_model = use_global ? &global_model : nullptr;
    options.instance = &instance.config;
    core::StagePredictor predictor(StageConfigFromFlags(flags), options);
    calib::ConformalRecalibrator shadow(conformal);
    for (const fleet::QueryEvent& event : instance.trace) {
      const core::QueryContext context = core::MakeQueryContext(
          event.plan, event.concurrent_queries,
          static_cast<uint64_t>(event.arrival_ms));
      obs::PredictionTrace trace;
      predictor.PredictTraced(context, &trace);
      if (calib::UsableLogStd(trace.uncertainty_log_std)) {
        const int source = static_cast<int>(trace.stage);
        pre_harness.Add({trace.predicted_seconds, trace.uncertainty_log_std,
                         event.exec_seconds, source});
        post_harness.Add({trace.predicted_seconds,
                          trace.uncertainty_log_std * shadow.scale(),
                          event.exec_seconds, source});
        shadow.Observe(calib::NormalizedResidual(trace.predicted_seconds,
                                                 trace.uncertainty_log_std,
                                                 event.exec_seconds));
      }
      predictor.Observe(context, event.exec_seconds);
    }
    final_scale = shadow.scale();
    std::fprintf(stderr, "[stage_sim] instance %d calibrated "
                         "(shadow scale %.3f)\n",
                 i, final_scale);
  }

  const calib::CalibrationReport pre = pre_harness.Report();
  const calib::CalibrationReport post = post_harness.Report();
  metrics::TextTable table;
  table.SetHeader({"Nominal", "Pre coverage", "Post coverage"});
  for (size_t i = 0; i < pre.levels.size(); ++i) {
    char nominal[16];
    std::snprintf(nominal, sizeof(nominal), "%.0f%%", 100.0 * pre.levels[i]);
    table.AddRow({nominal, metrics::FormatValue(pre.observed[i]),
                  metrics::FormatValue(post.observed[i])});
  }
  std::printf("%s", table.Render().c_str());
  std::printf("scored %llu predictions (%llu excluded: no usable sigma)\n"
              "ECE %.4f -> %.4f, coverage@90 error %.4f -> %.4f, final "
              "shadow scale %.3f\n",
              static_cast<unsigned long long>(pre.usable),
              static_cast<unsigned long long>(pre.excluded), pre.ece,
              post.ece, pre.CoverageErrorAt(0.9), post.CoverageErrorAt(0.9),
              final_scale);

  const std::string out_path = flags.GetString("out", "");
  if (!out_path.empty()) {
    std::ofstream out(out_path, std::ios::trunc);
    if (!out || !(out << "{\n\"pre\": " << pre.ToJson() << ",\n\"post\": "
                      << post.ToJson() << ",\n\"final_scale\": "
                      << final_scale << "\n}\n")) {
      std::fprintf(stderr, "error: cannot write report to %s\n",
                   out_path.c_str());
      return 1;
    }
    std::fprintf(stderr, "[stage_sim] calibration report written to %s\n",
                 out_path.c_str());
  }
  return 0;
}

// Closed-loop WLM comparison: every policy drives the queue simulator with
// a live predictor (Predict at admission, Observe at completion), except
// `open_loop` which replays the pre-closed-loop pipeline for comparison.
int RunWlm(const Flags& flags) {
  global::GlobalModel global_model;
  bool use_global = false;
  if (!MaybeLoadGlobal(flags, &global_model, &use_global)) return 1;

  fleet::FleetGenerator generator(FleetFromFlags(flags));
  wlm::PolicyRunConfig policy_config;
  policy_config.loop.wlm.short_slots =
      static_cast<int>(flags.GetInt("short_slots", 2));
  policy_config.loop.wlm.long_slots =
      static_cast<int>(flags.GetInt("long_slots", 3));
  policy_config.loop.slo_factor = flags.GetDouble("slo_factor", 10.0);
  policy_config.stage = StageConfigFromFlags(flags);
  policy_config.global_model = use_global ? &global_model : nullptr;
  const double utilization = flags.GetDouble("utilization", 0.75);
  const int total_slots = policy_config.loop.wlm.short_slots +
                          policy_config.loop.wlm.long_slots;

  // --policy=NAME runs one policy; default compares all of them, AutoWLM
  // first so the improvement column reads against the baseline.
  std::vector<wlm::WlmPolicy> policies;
  const std::string policy_name = flags.GetString("policy", "");
  if (policy_name.empty()) {
    policies = {wlm::WlmPolicy::kAutoWlm, wlm::WlmPolicy::kStage,
                wlm::WlmPolicy::kOpenLoop, wlm::WlmPolicy::kOracle};
  } else {
    wlm::WlmPolicy policy;
    if (!wlm::ParseWlmPolicy(policy_name, &policy)) {
      std::fprintf(stderr,
                   "error: unknown --policy=%s "
                   "(oracle|stage|autowlm|open_loop)\n",
                   policy_name.c_str());
      return 1;
    }
    policies = {policy};
  }

  const std::string metrics_out = flags.GetString("metrics_out", "");
  obs::MetricsRegistry registry;

  struct PolicyOutcome {
    std::vector<double> latencies;
    uint64_t slo_violations = 0;
    uint64_t offloads = 0;
  };
  std::vector<PolicyOutcome> outcomes(policies.size());
  for (int i = 0; i < generator.config().num_instances; ++i) {
    const fleet::InstanceTrace instance = generator.MakeInstanceTrace(i);
    const auto trace =
        wlm::CompressToUtilization(instance.trace, total_slots, utilization);
    policy_config.instance = &instance.config;
    for (size_t p = 0; p < policies.size(); ++p) {
      if (!metrics_out.empty()) {
        policy_config.loop.metrics = &registry;
        policy_config.loop.metrics_prefix =
            "wlm_" + std::string(wlm::WlmPolicyName(policies[p])) + "_";
      }
      const wlm::ClosedLoopResult result =
          wlm::RunWlmPolicy(trace, policies[p], policy_config);
      outcomes[p].latencies.insert(outcomes[p].latencies.end(),
                                   result.wlm.latency_seconds.begin(),
                                   result.wlm.latency_seconds.end());
      outcomes[p].slo_violations += result.slo_violations;
      outcomes[p].offloads +=
          static_cast<uint64_t>(result.wlm.scaling_offloads);
    }
    std::fprintf(stderr, "[stage_sim] instance %d simulated\n", i);
  }
  if (!metrics_out.empty() && !DumpMetrics(registry, metrics_out)) return 1;

  metrics::TextTable table;
  table.SetHeader({"Policy", "avg (s)", "impr.", "median (s)", "p99 (s)",
                   "SLO miss", "offloads"});
  const double base = Mean(outcomes[0].latencies);
  for (size_t p = 0; p < policies.size(); ++p) {
    const PolicyOutcome& outcome = outcomes[p];
    const double avg = Mean(outcome.latencies);
    const double miss =
        outcome.latencies.empty()
            ? 0.0
            : static_cast<double>(outcome.slo_violations) /
                  static_cast<double>(outcome.latencies.size());
    table.AddRow({std::string(wlm::WlmPolicyName(policies[p])),
                  metrics::FormatValue(avg),
                  metrics::FormatPercent(1.0 - avg / base),
                  metrics::FormatValue(Quantile(outcome.latencies, 0.5)),
                  metrics::FormatValue(Quantile(outcome.latencies, 0.99)),
                  metrics::FormatPercent(miss),
                  std::to_string(outcome.offloads)});
  }
  std::printf("%s", table.Render().c_str());
  std::printf("slo_factor: %.1f (deadline = factor x true exec-time)\n",
              policy_config.loop.slo_factor);
  return 0;
}

int RunSnapshot(const Flags& flags) {
  global::GlobalModel global_model;
  bool use_global = false;
  if (!MaybeLoadGlobal(flags, &global_model, &use_global)) return 1;

  fleet::FleetGenerator generator(FleetFromFlags(flags));
  const fleet::InstanceTrace instance = generator.MakeInstanceTrace(0);

  serve::PredictionServiceConfig config;
  config.predictor = StageConfigFromFlags(flags);
  config.cache_shards = static_cast<size_t>(flags.GetInt("shards", 1));
  // Suspend/resume is a deterministic-replay workflow: retrain inline so
  // the snapshot captures the exact state after --stop_after events.
  config.async_retrain = false;
  serve::PredictionService service(
      config, {use_global ? &global_model : nullptr, &instance.config});

  size_t stop_after = static_cast<size_t>(
      flags.GetInt("stop_after", static_cast<int64_t>(instance.trace.size())));
  if (stop_after > instance.trace.size()) stop_after = instance.trace.size();
  for (size_t i = 0; i < stop_after; ++i) {
    const fleet::QueryEvent& event = instance.trace[i];
    const core::QueryContext context = core::MakeQueryContext(
        event.plan, event.concurrent_queries,
        static_cast<uint64_t>(event.arrival_ms));
    service.Predict(context);
    service.Observe(context, event.exec_seconds);
  }

  const std::string path = flags.GetString("out", "stage_snapshot.bin");
  std::string error;
  if (!ckpt::SaveServiceSnapshot(service, path, &error)) {
    std::fprintf(stderr, "error: snapshot failed: %s\n", error.c_str());
    return 1;
  }
  std::printf(
      "replayed %zu/%zu events; snapshot published to %s\n"
      "state: cache %zu entries (%zu shards), pool %zu, trainings %d\n"
      "resume: stage_sim serve --restore_from=%s --skip=%zu --shards=%zu "
      "--sync [same --instances/--queries/--seed/--rounds/--members]\n",
      stop_after, instance.trace.size(), path.c_str(),
      service.exec_time_cache().size(),
      service.exec_time_cache().num_shards(), service.pool_size(),
      service.trainings(), path.c_str(), stop_after,
      service.exec_time_cache().num_shards());
  return 0;
}

int RunServe(const Flags& flags) {
  global::GlobalModel global_model;
  bool use_global = false;
  if (!MaybeLoadGlobal(flags, &global_model, &use_global)) return 1;

  fleet::FleetGenerator generator(FleetFromFlags(flags));
  const fleet::InstanceTrace instance = generator.MakeInstanceTrace(0);
  std::vector<core::QueryContext> contexts;
  contexts.reserve(instance.trace.size());
  for (const fleet::QueryEvent& event : instance.trace) {
    contexts.push_back(core::MakeQueryContext(
        event.plan, event.concurrent_queries,
        static_cast<uint64_t>(event.arrival_ms)));
  }

  serve::PredictionServiceConfig config;
  config.predictor = StageConfigFromFlags(flags);
  config.cache_shards = static_cast<size_t>(flags.GetInt("shards", 8));
  config.async_retrain = !flags.GetBool("sync", false);
  const std::string metrics_out = flags.GetString("metrics_out", "");
  obs::MetricsRegistry registry;
  core::StagePredictorOptions options;
  options.global_model = use_global ? &global_model : nullptr;
  options.instance = &instance.config;
  if (!metrics_out.empty()) options.metrics = &registry;
  serve::PredictionService service(config, options);

  // Warm restart: restore a snapshotted replay and continue at --skip.
  const std::string restore_from = flags.GetString("restore_from", "");
  size_t skip = static_cast<size_t>(flags.GetInt("skip", 0));
  if (!restore_from.empty()) {
    std::string error;
    if (!ckpt::LoadServiceSnapshot(&service, restore_from, &error)) {
      std::fprintf(stderr,
                   "error: restore from %s failed: %s (flags must match the "
                   "snapshotting run, e.g. --shards)\n",
                   restore_from.c_str(), error.c_str());
      return 1;
    }
    std::printf("restored %s: cache %zu entries, pool %zu, trainings %d\n",
                restore_from.c_str(), service.exec_time_cache().size(),
                service.pool_size(), service.trainings());
  }
  if (skip > contexts.size()) skip = contexts.size();

  // One writer replays the production flow (predict, execute, observe);
  // N reader threads model concurrent sessions asking for predictions.
  const int num_readers = static_cast<int>(flags.GetInt("threads", 4));
  std::atomic<bool> writer_done{false};
  std::atomic<uint64_t> reader_predictions{0};
  const auto start = std::chrono::steady_clock::now();

  std::vector<std::thread> readers;
  readers.reserve(static_cast<size_t>(num_readers));
  for (int r = 0; r < num_readers; ++r) {
    readers.emplace_back([&, r] {
      uint64_t made = 0;
      size_t at = static_cast<size_t>(r) * 131;
      // Floor of one pass over the trace: on few-core machines the writer
      // can finish before a reader is ever scheduled.
      while (!writer_done.load(std::memory_order_relaxed) ||
             made < contexts.size()) {
        service.Predict(contexts[at % contexts.size()]);
        at += 127;
        ++made;
      }
      reader_predictions.fetch_add(made);
    });
  }
  for (size_t i = skip; i < contexts.size(); ++i) {
    service.Predict(contexts[i]);
    service.Observe(contexts[i], instance.trace[i].exec_seconds);
  }
  writer_done.store(true);
  for (std::thread& reader : readers) reader.join();
  service.WaitForRetrain();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  std::printf("replayed %zu queries + %llu concurrent reads in %.2fs "
              "(%.0f predictions/s, %d reader threads, %zu cache shards, "
              "%s retrain)\n",
              contexts.size() - skip,
              static_cast<unsigned long long>(reader_predictions.load()),
              elapsed,
              metrics::LatencyRecorder::Qps(service.total_predictions(),
                                            elapsed),
              num_readers, service.exec_time_cache().num_shards(),
              config.async_retrain ? "async" : "inline");
  std::printf("trainings: %d, cache hits: %llu, misses: %llu, evictions: "
              "%llu, pool: %zu, resident: %zu bytes\n",
              service.trainings(),
              static_cast<unsigned long long>(service.exec_time_cache().hits()),
              static_cast<unsigned long long>(
                  service.exec_time_cache().misses()),
              static_cast<unsigned long long>(
                  service.exec_time_cache().evictions()),
              service.pool_size(), service.LocalMemoryBytes());
  std::printf("%s", service.predict_latency()
                        .RenderTable(serve::PredictionService::
                                         PredictLatencySlotNames(),
                                     elapsed)
                        .c_str());
  if (!metrics_out.empty() && !DumpMetrics(registry, metrics_out)) return 1;
  return 0;
}

// stats: the observability one-stop. Replays one instance trace through a
// fully instrumented PredictionService (plus, with --out, the periodic
// checkpointer) and dumps every metric in the registry.
int RunStats(const Flags& flags) {
  global::GlobalModel global_model;
  bool use_global = false;
  if (!MaybeLoadGlobal(flags, &global_model, &use_global)) return 1;

  fleet::FleetGenerator generator(FleetFromFlags(flags));
  const fleet::InstanceTrace instance = generator.MakeInstanceTrace(0);

  obs::MetricsRegistry registry;
  serve::PredictionServiceConfig config;
  config.predictor = StageConfigFromFlags(flags);
  config.cache_shards = static_cast<size_t>(flags.GetInt("shards", 4));
  config.async_retrain = !flags.GetBool("sync", false);
  core::StagePredictorOptions options;
  options.global_model = use_global ? &global_model : nullptr;
  options.instance = &instance.config;
  options.metrics = &registry;
  serve::PredictionService service(config, options);

  std::unique_ptr<ckpt::PeriodicCheckpointer> checkpointer;
  const std::string snapshot_path = flags.GetString("out", "");
  if (!snapshot_path.empty()) {
    ckpt::PeriodicCheckpointer::Options ckpt_options;
    ckpt_options.path = snapshot_path;
    ckpt_options.interval = std::chrono::milliseconds(250);
    ckpt_options.metrics = &registry;
    checkpointer =
        std::make_unique<ckpt::PeriodicCheckpointer>(service, ckpt_options);
  }

  for (size_t i = 0; i < instance.trace.size(); ++i) {
    const fleet::QueryEvent& event = instance.trace[i];
    const core::QueryContext context = core::MakeQueryContext(
        event.plan, event.concurrent_queries,
        static_cast<uint64_t>(event.arrival_ms));
    service.Predict(context);
    service.Observe(context, event.exec_seconds);
  }
  service.WaitForRetrain();
  if (checkpointer != nullptr) {
    std::string error;
    if (!checkpointer->TriggerNow(&error)) {
      std::fprintf(stderr, "warning: final snapshot failed: %s\n",
                   error.c_str());
    }
    checkpointer->Stop();
  }

  const std::string metrics_out = flags.GetString("metrics_out", "");
  if (!metrics_out.empty() && !DumpMetrics(registry, metrics_out)) return 1;
  std::printf("%s", flags.GetBool("json", false)
                        ? registry.RenderJson().c_str()
                        : registry.RenderText().c_str());
  return 0;
}

// Multi-tenant serving demo: every instance of the generated fleet becomes
// a FleetService tenant; N threads replay the tenants' traces concurrently
// under an optional resident-bytes budget, then the registry's eviction /
// cold-activation counters and activation latency table are printed.
int RunFleetServe(const Flags& flags) {
  fleet::FleetConfig fleet_config = FleetFromFlags(flags);
  fleet_config.workload.num_queries =
      static_cast<int>(flags.GetInt("queries", 500));
  fleet::FleetGenerator generator(fleet_config);
  const size_t num_tenants = static_cast<size_t>(fleet_config.num_instances);
  std::vector<fleet::InstanceTrace> instances;
  instances.reserve(num_tenants);
  for (size_t t = 0; t < num_tenants; ++t) {
    instances.push_back(generator.MakeInstanceTrace(static_cast<int>(t)));
  }

  obs::MetricsRegistry registry;
  fleet_serve::FleetServiceConfig config;
  config.stack.predictor = StageConfigFromFlags(flags);
  config.stack.cache_shards = static_cast<size_t>(flags.GetInt("shards", 4));
  config.async_retrain = !flags.GetBool("sync", false);
  config.resident_bytes_budget =
      static_cast<size_t>(flags.GetInt("budget_mb", 0)) * 1024 * 1024;
  fleet_serve::FleetService service(config, {.metrics = &registry});
  for (size_t t = 0; t < num_tenants; ++t) {
    service.RegisterTenant(t, {.instance = &instances[t].config});
  }

  const size_t num_threads = std::min<size_t>(
      num_tenants, static_cast<size_t>(flags.GetInt("threads", 4)));
  std::atomic<uint64_t> predictions{0};
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  workers.reserve(num_threads);
  for (size_t w = 0; w < num_threads; ++w) {
    workers.emplace_back([&, w] {
      uint64_t made = 0;
      for (size_t t = w; t < num_tenants; t += num_threads) {
        for (const fleet::QueryEvent& event : instances[t].trace) {
          const core::QueryContext context = core::MakeQueryContext(
              event.plan, event.concurrent_queries,
              static_cast<uint64_t>(event.arrival_ms));
          service.Predict(t, context);
          service.Observe(t, context, event.exec_seconds);
          ++made;
        }
      }
      predictions.fetch_add(made, std::memory_order_relaxed);
    });
  }
  for (std::thread& worker : workers) worker.join();
  service.WaitForRetrain();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  std::printf("fleet-serve: %zu tenants, %zu threads, %llu predictions in "
              "%.2fs (%.0f/s)\n",
              num_tenants, num_threads,
              static_cast<unsigned long long>(predictions.load()), elapsed,
              static_cast<double>(predictions.load()) / elapsed);
  std::printf("warm %zu/%zu, resident %.1f MiB, evictions %llu, "
              "cold activations %llu\n",
              service.WarmCount(), service.TenantCount(),
              static_cast<double>(service.ResidentBytes()) / (1024 * 1024),
              static_cast<unsigned long long>(service.evictions()),
              static_cast<unsigned long long>(service.cold_activations()));
  std::printf("\n== Activation latency by source ==\n%s",
              service.activation_latency()
                  .RenderTable({"parked", "file", "fresh"}, elapsed)
                  .c_str());

  const std::string snapshot_out = flags.GetString("out", "");
  if (!snapshot_out.empty()) {
    std::string error;
    if (!service.SaveSnapshot(snapshot_out, &error)) {
      std::fprintf(stderr, "error: fleet snapshot failed: %s\n",
                   error.c_str());
      return 1;
    }
    std::fprintf(stderr, "[stage_sim] fleet snapshot written to %s\n",
                 snapshot_out.c_str());
  }
  const std::string metrics_out = flags.GetString("metrics_out", "");
  if (!metrics_out.empty() && !DumpMetrics(registry, metrics_out)) return 1;
  return 0;
}

int RunServeNet(const Flags& flags) {
  global::GlobalModel global_model;
  bool use_global = false;
  if (!MaybeLoadGlobal(flags, &global_model, &use_global)) return 1;

  fleet::FleetConfig fleet_config = FleetFromFlags(flags);
  fleet_config.workload.num_queries =
      static_cast<int>(flags.GetInt("queries", 200));
  fleet::FleetGenerator generator(fleet_config);
  const size_t num_tenants = static_cast<size_t>(fleet_config.num_instances);
  std::vector<fleet::InstanceTrace> instances;
  instances.reserve(num_tenants);
  for (size_t t = 0; t < num_tenants; ++t) {
    instances.push_back(generator.MakeInstanceTrace(static_cast<int>(t)));
  }

  obs::MetricsRegistry registry;
  fleet_serve::FleetServiceConfig fleet_service_config;
  fleet_service_config.stack.predictor = StageConfigFromFlags(flags);
  fleet_service_config.stack.cache_shards =
      static_cast<size_t>(flags.GetInt("shards", 4));
  fleet_service_config.async_retrain = !flags.GetBool("sync", false);
  fleet_serve::FleetService service(fleet_service_config,
                                    {.metrics = &registry});
  for (size_t t = 0; t < num_tenants; ++t) {
    service.RegisterTenant(
        t, {.global_model = use_global ? &global_model : nullptr,
            .instance = &instances[t].config});
  }

  net::ServerConfig server_config;
  server_config.host = flags.GetString("host", "127.0.0.1");
  server_config.port = static_cast<int>(flags.GetInt("port", 0));
  server_config.num_workers = static_cast<int>(flags.GetInt("workers", 2));
  server_config.batch_window_us = flags.GetInt("window_us", 200);
  server_config.max_batch = flags.GetInt("max_batch", 64);
  server_config.queue_bound = flags.GetInt("queue_bound", 1024);
  server_config.max_connections = flags.GetInt("max_conns", 256);
  {
    const std::string problem = server_config.Validate();
    if (!problem.empty()) {
      std::fprintf(stderr, "error: %s\n", problem.c_str());
      return 1;
    }
  }
  net::Server server(&service, server_config, {.metrics = &registry});
  std::printf("serve-net: listening on %s:%d (%zu tenants, %d workers, "
              "window %lldus, global model %s)\n",
              server_config.host.c_str(), server.port(), num_tenants,
              server_config.num_workers,
              static_cast<long long>(server_config.batch_window_us),
              use_global ? "loaded" : "absent");
  std::fflush(stdout);

  // Publish the bound port last so a script polling the file knows the
  // server is accepting by the time the file is readable.
  const std::string port_file = flags.GetString("port_file", "");
  if (!port_file.empty()) {
    std::ofstream out(port_file, std::ios::trunc);
    if (!out || !(out << server.port() << "\n")) {
      std::fprintf(stderr, "error: cannot write port file %s\n",
                   port_file.c_str());
      return 1;
    }
  }

  const int64_t duration_s = flags.GetInt("duration_s", 5);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(duration_s);
  while (std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  server.Shutdown();

  const net::ServerStats stats = server.Stats();
  uint64_t errors = 0;
  for (const uint64_t count : stats.errors_by_code) errors += count;
  std::printf("serve-net: %llu connections (%llu rejected), %llu frames "
              "in, %llu predictions (%llu batched, %llu inline), %llu "
              "observes, %llu errors\n",
              static_cast<unsigned long long>(stats.connections_accepted),
              static_cast<unsigned long long>(stats.connections_rejected),
              static_cast<unsigned long long>(stats.frames_in),
              static_cast<unsigned long long>(stats.predictions_batched +
                                              stats.predictions_inline),
              static_cast<unsigned long long>(stats.predictions_batched),
              static_cast<unsigned long long>(stats.predictions_inline),
              static_cast<unsigned long long>(stats.observes),
              static_cast<unsigned long long>(errors));
  const obs::Histogram::Snapshot batches = server.batch_size_histogram();
  if (batches.count > 0) {
    std::printf("serve-net: %llu batch flushes, mean batch %.1f, final "
                "effective window %llu us\n",
                static_cast<unsigned long long>(batches.count),
                batches.sum / static_cast<double>(batches.count),
                static_cast<unsigned long long>(stats.effective_window_us));
  }
  const std::string metrics_out = flags.GetString("metrics_out", "");
  if (!metrics_out.empty() && !DumpMetrics(registry, metrics_out)) return 1;
  return 0;
}

int RunLoadgenCmd(const Flags& flags) {
  net::LoadgenConfig config;
  config.host = flags.GetString("host", "127.0.0.1");
  config.port = static_cast<int>(flags.GetInt("port", 0));
  config.connections = static_cast<int>(flags.GetInt("connections", 16));
  config.pipeline = static_cast<int>(flags.GetInt("pipeline", 8));
  config.requests_per_connection = flags.GetInt("requests", 500);
  config.tenants = static_cast<int>(flags.GetInt("tenants", 1));
  config.concurrent_queries = static_cast<int>(flags.GetInt("concurrent", 8));
  {
    const std::string problem = config.Validate();
    if (!problem.empty()) {
      std::fprintf(stderr, "error: %s\n", problem.c_str());
      return 1;
    }
  }

  // The plan pool: same generator the server uses, so plans look like the
  // tenant's own workload (any plan is valid for any registered tenant).
  fleet::FleetConfig fleet_config = FleetFromFlags(flags);
  fleet_config.workload.num_queries =
      static_cast<int>(flags.GetInt("queries", 200));
  fleet::FleetGenerator generator(fleet_config);
  const fleet::InstanceTrace instance = generator.MakeInstanceTrace(0);
  std::vector<plan::Plan> plans;
  plans.reserve(instance.trace.size());
  for (const auto& event : instance.trace) plans.push_back(event.plan);

  net::LoadgenResult result;
  std::string error;
  if (!RunLoadgen(config, plans, &result, &error)) {
    std::fprintf(stderr, "error: loadgen failed: %s\n", error.c_str());
    return 1;
  }
  std::printf("loadgen: %llu completed, %llu errors in %.2fs (%.0f qps)\n",
              static_cast<unsigned long long>(result.completed),
              static_cast<unsigned long long>(result.errors),
              result.elapsed_seconds, result.qps);
  std::printf("loadgen: latency mean %.3fms p50 %.3fms p99 %.3fms\n",
              result.mean_ms, result.p50_ms, result.p99_ms);
  std::printf("loadgen: sources");
  for (size_t s = 0; s < result.source_counts.size(); ++s) {
    const std::string_view name = core::PredictionSourceName(
        static_cast<core::PredictionSource>(s));
    std::printf(" %.*s=%llu", static_cast<int>(name.size()), name.data(),
                static_cast<unsigned long long>(result.source_counts[s]));
  }
  std::printf("\n");
  const uint64_t expected = static_cast<uint64_t>(config.connections) *
                            static_cast<uint64_t>(
                                config.requests_per_connection);
  if (result.completed + result.errors != expected) {
    std::fprintf(stderr, "error: %llu of %llu requests unanswered\n",
                 static_cast<unsigned long long>(expected - result.completed -
                                                 result.errors),
                 static_cast<unsigned long long>(expected));
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  std::string error;
  if (!Flags::Parse(argc, argv, kKnownFlags, &flags, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    PrintUsage();
    return 1;
  }
  if (flags.positional().empty() || flags.GetBool("help", false)) {
    PrintUsage();
    return flags.positional().empty() ? 1 : 0;
  }
  const std::string& command = flags.positional().front();
  if (command == "trace") return RunTrace(flags);
  if (command == "train-global") return RunTrainGlobal(flags);
  if (command == "replay") return RunReplay(flags);
  if (command == "wlm") return RunWlm(flags);
  if (command == "serve") return RunServe(flags);
  if (command == "snapshot") return RunSnapshot(flags);
  if (command == "stats") return RunStats(flags);
  if (command == "calibrate") return RunCalibrate(flags);
  if (command == "fleet-serve") return RunFleetServe(flags);
  if (command == "serve-net") return RunServeNet(flags);
  if (command == "loadgen") return RunLoadgenCmd(flags);
  std::fprintf(stderr, "error: unknown command '%s'\n", command.c_str());
  PrintUsage();
  return 1;
}
