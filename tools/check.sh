#!/usr/bin/env bash
# Full verification gate: Release build + ASan + TSan, ctest on each, plus
# an explicit run of the checkpoint corruption fault-injection suite under
# ASan (truncations and bit flips must fail loads cleanly — no crash, no
# OOM, no half-trained model), the pinned golden routing replay, and a
# structural check of the stage_sim stats Prometheus exposition. Run from
# anywhere; builds live next to the source tree as
# build-check-{release,asan,tsan}.
#
# Usage: tools/check.sh [--fast]
#   --fast  Release build + tests only (skip the sanitizer builds).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"
fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

build_and_test() {
  local name="$1" sanitize="$2"
  local build_dir="${repo_root}/build-check-${name}"
  echo "=== [${name}] configure (STAGE_SANITIZE='${sanitize}') ==="
  cmake -B "${build_dir}" -S "${repo_root}" \
    -DCMAKE_BUILD_TYPE=Release -DSTAGE_SANITIZE="${sanitize}" > /dev/null
  echo "=== [${name}] build ==="
  cmake --build "${build_dir}" -j "${jobs}"
  echo "=== [${name}] ctest ==="
  (cd "${build_dir}" && ctest --output-on-failure -j "${jobs}")
}

build_and_test release ""

echo "=== [release] GBT hot-path bench smoke (STAGE_BENCH_FAST=1) ==="
(cd "${repo_root}/build-check-release/bench" && \
  STAGE_BENCH_FAST=1 ./bench_gbt_hot_path)
bench_json="${repo_root}/build-check-release/bench/BENCH_gbt_hot_path.json"
if command -v python3 > /dev/null 2>&1; then
  python3 -m json.tool "${bench_json}" > /dev/null
else
  # No python3: at least require the closing speedup fields to be present.
  grep -q '"speedup"' "${bench_json}"
fi
echo "=== bench JSON OK: ${bench_json} ==="

echo "=== [release] global-model hot-path bench smoke (STAGE_BENCH_FAST=1) ==="
(cd "${repo_root}/build-check-release/bench" && \
  STAGE_BENCH_FAST=1 ./bench_global_hot_path)
global_bench_json="${repo_root}/build-check-release/bench/BENCH_global_hot_path.json"
if command -v python3 > /dev/null 2>&1; then
  python3 -m json.tool "${global_bench_json}" > /dev/null
else
  grep -q '"speedup"' "${global_bench_json}"
fi
echo "=== bench JSON OK: ${global_bench_json} ==="

echo "=== [release] fleet serving bench smoke (STAGE_BENCH_FAST=1) ==="
(cd "${repo_root}/build-check-release/bench" && \
  STAGE_BENCH_FAST=1 ./bench_fleet_serve)
fleet_bench_json="${repo_root}/build-check-release/bench/BENCH_fleet_serve.json"
if command -v python3 > /dev/null 2>&1; then
  python3 -m json.tool "${fleet_bench_json}" > /dev/null
else
  grep -q '"predictions_per_sec"' "${fleet_bench_json}"
fi
echo "=== bench JSON OK: ${fleet_bench_json} ==="

echo "=== [release] closed-loop WLM bench smoke (STAGE_BENCH_FAST=1) ==="
(cd "${repo_root}/build-check-release/bench" && \
  STAGE_BENCH_FAST=1 ./bench_wlm_closed_loop)
wlm_bench_json="${repo_root}/build-check-release/bench/BENCH_wlm_closed_loop.json"
if command -v python3 > /dev/null 2>&1; then
  python3 -m json.tool "${wlm_bench_json}" > /dev/null
else
  grep -q '"p99_queueing_s"' "${wlm_bench_json}"
fi
echo "=== bench JSON OK: ${wlm_bench_json} ==="

echo "=== [release] calibration bench smoke (STAGE_BENCH_FAST=1) ==="
(cd "${repo_root}/build-check-release/bench" && \
  STAGE_BENCH_FAST=1 ./bench_calibration)
calib_bench_json="${repo_root}/build-check-release/bench/BENCH_calibration.json"
if command -v python3 > /dev/null 2>&1; then
  python3 -m json.tool "${calib_bench_json}" > /dev/null
else
  grep -q '"calibrated_coverage_better"' "${calib_bench_json}"
fi
# The coverage gate is the §4.8 acceptance bar: post-recalibration 90%
# coverage error must beat pre.
grep -q '"calibrated_coverage_better": true' "${calib_bench_json}"
echo "=== bench JSON OK: ${calib_bench_json} ==="

echo "=== [release] network serving bench smoke (STAGE_BENCH_FAST=1) ==="
(cd "${repo_root}/build-check-release/bench" && \
  STAGE_BENCH_FAST=1 ./bench_net_serve)
net_bench_json="${repo_root}/build-check-release/bench/BENCH_net_serve.json"
if command -v python3 > /dev/null 2>&1; then
  python3 -m json.tool "${net_bench_json}" > /dev/null
else
  grep -q '"qps_speedup"' "${net_bench_json}"
fi
# ROADMAP item 3 acceptance bar: adaptive micro-batching must be >= 2x the
# batching-disabled baseline at equal-or-better p99, 16+ connections.
grep -q '"pass": true' "${net_bench_json}"
echo "=== bench JSON OK: ${net_bench_json} ==="

# Observability gate (also in --fast): the pinned golden routing replay
# must match, and the CLI's Prometheus exposition must actually look like
# one (obs_test validates the renderer structurally; this catches the CLI
# wiring).
echo "=== [release] golden routing replay ==="
"${repo_root}/build-check-release/tests/golden_routing_test"
echo "=== [release] stage_sim stats exposition smoke ==="
stats_out="$("${repo_root}/build-check-release/tools/stage_sim" stats \
  --instances=1 --queries=300 --rounds=20 --members=2 --sync 2>/dev/null)"
grep -q '^# TYPE stage_predictions_total counter$' <<< "${stats_out}"
grep -q '^stage_cache_hits_total ' <<< "${stats_out}"
grep -q '^stage_predict_latency_ns_bucket{stage="cache",le="250"} ' \
  <<< "${stats_out}"
echo "=== stats exposition OK ==="

if [[ "${fast}" -eq 0 ]]; then
  build_and_test asan address
  echo "=== [asan] checkpoint corruption fault-injection suite ==="
  "${repo_root}/build-check-asan/tests/ckpt_test" \
    --gtest_filter='CorruptionSuite*'
  echo "=== [asan] calibration suite + snapshot fuzz (new ckpt kind) ==="
  "${repo_root}/build-check-asan/tests/calib_test"
  "${repo_root}/build-check-asan/tests/snapshot_fuzz_test" \
    --gtest_filter='SnapshotFuzzTest.Recalibrator*'
  echo "=== [asan] fleet serving suite ==="
  "${repo_root}/build-check-asan/tests/fleet_serve_test"
  echo "=== [asan] wire-protocol fuzz suite (truncation/bit-flip/length lies) ==="
  "${repo_root}/build-check-asan/tests/net_fuzz_test"
  echo "=== [asan] closed-loop WLM suite ==="
  "${repo_root}/build-check-asan/tests/wlm_test"
  "${repo_root}/build-check-asan/tests/wlm_closed_loop_test"
  build_and_test tsan thread
  # The registry-churn stress test is the fleet's TSan acceptance gate:
  # tenant threads predicting/observing while an evictor parks and
  # reactivates their stacks.
  echo "=== [tsan] fleet serving concurrency gate ==="
  "${repo_root}/build-check-tsan/tests/fleet_serve_test" \
    --gtest_filter='FleetServiceTest.ConcurrentDisjointTenantsWithEvictorChurn'
  # Readers predicting (lock-free scale loads) while the recalibrator
  # observes completions: the §4.8 concurrency acceptance gate.
  echo "=== [tsan] calibration concurrency gate ==="
  "${repo_root}/build-check-tsan/tests/calib_test" \
    --gtest_filter='CalibConcurrencyTest.ReadersPredictWhileRecalibratorObserves'
  # Multi-connection blast + graceful shutdown over real sockets: the
  # network edge's TSan acceptance gate (workers, batcher thread, listener
  # and client threads all racing).
  echo "=== [tsan] network serving concurrency gate ==="
  "${repo_root}/build-check-tsan/tests/net_test" \
    --gtest_filter='NetStressTest.*'
fi

echo "=== all checks passed ==="
