#include "stage/carde/estimator.h"

#include "stage/common/macros.h"

namespace stage::carde {

CardinalityEstimate OptimizerCardinalityEstimator::Estimate(
    const plan::Plan& plan) {
  STAGE_CHECK(!plan.empty());
  CardinalityEstimate estimate;
  estimate.rows = plan.node(plan.root()).estimated_cardinality;
  estimate.inference_seconds = 0.0;  // Comes free with planning.
  return estimate;
}

SamplingCardinalityEstimator::SamplingCardinalityEstimator(
    const SamplingEstimatorConfig& config)
    : config_(config), rng_(config.seed) {
  STAGE_CHECK(config.relative_error_sigma >= 0.0);
  STAGE_CHECK(config.seconds_per_scan > 0.0);
}

CardinalityEstimate SamplingCardinalityEstimator::Estimate(
    const plan::Plan& plan) {
  STAGE_CHECK(!plan.empty());
  int scans = 0;
  for (const plan::PlanNode& node : plan.nodes()) {
    scans += plan::ReadsBaseTable(node.op) ? 1 : 0;
  }
  CardinalityEstimate estimate;
  estimate.rows = plan.node(plan.root()).actual_cardinality *
                  rng_.NextLogNormal(0.0, config_.relative_error_sigma);
  estimate.log_std = config_.relative_error_sigma;
  estimate.inference_seconds =
      config_.seconds_per_scan * static_cast<double>(scans);
  return estimate;
}

}  // namespace stage::carde
