#ifndef STAGE_CARDE_ESTIMATOR_H_
#define STAGE_CARDE_ESTIMATOR_H_

#include <cstdint>

#include "stage/common/rng.h"
#include "stage/plan/plan.h"

namespace stage::carde {

// §6.2 of the paper proposes generalizing the Stage idea beyond exec-time
// prediction: "a hierarchy of several cardinality estimators with
// different accuracy/overhead trade-offs could enable practical
// integration of ML-based solutions". This module implements that
// hierarchy against the same synthetic substrate: estimators predict a
// plan's TRUE root output cardinality (plan.actual_cardinality), which
// differs from the optimizer's estimate by the hidden estimation errors.

struct CardinalityEstimate {
  double rows = 0.0;
  // Log-space standard deviation of the estimate when the estimator can
  // quantify its own uncertainty; negative when unavailable.
  double log_std = -1.0;
  // Simulated inference cost of producing this estimate (seconds). The
  // optimizer's estimate is free, a learned model costs microseconds, and
  // a sampling pass costs milliseconds — the §6.2 trade-off axis.
  double inference_seconds = 0.0;
};

class CardinalityEstimator {
 public:
  virtual ~CardinalityEstimator() = default;
  virtual CardinalityEstimate Estimate(const plan::Plan& plan) = 0;
};

// Level 0: the traditional optimizer's estimate (independence assumptions
// baked into the synthetic plans). Free, no uncertainty, and wrong by
// exactly the hidden cardinality-error factors.
class OptimizerCardinalityEstimator final : public CardinalityEstimator {
 public:
  CardinalityEstimate Estimate(const plan::Plan& plan) override;
};

// Level 2: a sampling-based estimator — accurate but expensive. Simulated
// as the true cardinality perturbed by a small sampling error, at a
// milliseconds-scale cost proportional to the number of scans.
struct SamplingEstimatorConfig {
  double relative_error_sigma = 0.1;   // Log-space sampling noise.
  double seconds_per_scan = 5e-3;      // Cost of sampling one base table.
  uint64_t seed = 11;
};

class SamplingCardinalityEstimator final : public CardinalityEstimator {
 public:
  explicit SamplingCardinalityEstimator(const SamplingEstimatorConfig& config);
  CardinalityEstimate Estimate(const plan::Plan& plan) override;

 private:
  SamplingEstimatorConfig config_;
  Rng rng_;
};

}  // namespace stage::carde

#endif  // STAGE_CARDE_ESTIMATOR_H_
