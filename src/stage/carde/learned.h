#ifndef STAGE_CARDE_LEARNED_H_
#define STAGE_CARDE_LEARNED_H_

#include "stage/carde/estimator.h"
#include "stage/gbt/dataset.h"
#include "stage/gbt/ensemble.h"

namespace stage::carde {

// Level 1: a learned cardinality estimator with uncertainty — the same
// Bayesian GBT ensemble recipe as the exec-time local model, trained on
// (flattened plan vector -> observed true root cardinality) pairs
// collected after queries execute.
struct LearnedCardinalityConfig {
  gbt::EnsembleConfig ensemble;
  // Simulated deployment inference cost (the paper quotes ms-scale
  // inference for learned cardinality estimators [20]; a GBT ensemble is
  // at the cheap end of that range).
  double inference_seconds = 5e-5;
};

class LearnedCardinalityEstimator final : public CardinalityEstimator {
 public:
  explicit LearnedCardinalityEstimator(const LearnedCardinalityConfig& config);

  // Records a post-execution observation of a plan's true cardinality.
  void Observe(const plan::Plan& plan, double actual_rows);

  // (Re)trains on everything observed so far. No-op when empty.
  void Train();

  bool trained() const { return trained_; }

  // Requires trained().
  CardinalityEstimate Estimate(const plan::Plan& plan) override;

 private:
  LearnedCardinalityConfig config_;
  gbt::Dataset data_;
  gbt::BayesianGbtEnsemble ensemble_;
  bool trained_ = false;
};

// The §6.2 hierarchy: try the cheap learned estimator first; when its
// uncertainty exceeds the threshold, escalate to the expensive sampling
// estimator (and to the optimizer estimate if nothing is trained yet).
// Accounts the simulated inference cost of whatever path ran.
struct HierarchicalCardinalityConfig {
  double uncertainty_log_std_threshold = 0.8;
};

class HierarchicalCardinalityEstimator final : public CardinalityEstimator {
 public:
  // Both estimators are borrowed and must outlive this object.
  HierarchicalCardinalityEstimator(const HierarchicalCardinalityConfig& config,
                                   LearnedCardinalityEstimator* learned,
                                   CardinalityEstimator* expensive);

  CardinalityEstimate Estimate(const plan::Plan& plan) override;

  uint64_t learned_served() const { return learned_served_; }
  uint64_t escalations() const { return escalations_; }

 private:
  HierarchicalCardinalityConfig config_;
  LearnedCardinalityEstimator* learned_;
  CardinalityEstimator* expensive_;
  OptimizerCardinalityEstimator optimizer_;
  uint64_t learned_served_ = 0;
  uint64_t escalations_ = 0;
};

}  // namespace stage::carde

#endif  // STAGE_CARDE_LEARNED_H_
