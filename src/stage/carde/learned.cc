#include "stage/carde/learned.h"

#include <algorithm>
#include <cmath>

#include "stage/common/macros.h"
#include "stage/plan/featurizer.h"

namespace stage::carde {

LearnedCardinalityEstimator::LearnedCardinalityEstimator(
    const LearnedCardinalityConfig& config)
    : config_(config), data_(plan::kPlanFeatureDim) {}

void LearnedCardinalityEstimator::Observe(const plan::Plan& plan,
                                          double actual_rows) {
  STAGE_CHECK(actual_rows >= 0.0);
  const plan::PlanFeatures features = plan::FlattenPlan(plan);
  data_.AddRow(features.data(), std::log1p(actual_rows));
}

void LearnedCardinalityEstimator::Train() {
  if (data_.empty()) return;
  ensemble_ = gbt::BayesianGbtEnsemble::Train(data_, config_.ensemble);
  trained_ = true;
}

CardinalityEstimate LearnedCardinalityEstimator::Estimate(
    const plan::Plan& plan) {
  STAGE_CHECK(trained_);
  const plan::PlanFeatures features = plan::FlattenPlan(plan);
  const auto prediction = ensemble_.Predict(features.data());
  CardinalityEstimate estimate;
  estimate.rows =
      std::max(0.0, std::expm1(std::clamp(prediction.mean, 0.0, 26.0)));
  estimate.log_std =
      std::sqrt(std::max(0.0, prediction.model_variance +
                                  prediction.data_variance));
  estimate.inference_seconds = config_.inference_seconds;
  return estimate;
}

HierarchicalCardinalityEstimator::HierarchicalCardinalityEstimator(
    const HierarchicalCardinalityConfig& config,
    LearnedCardinalityEstimator* learned, CardinalityEstimator* expensive)
    : config_(config), learned_(learned), expensive_(expensive) {
  STAGE_CHECK(learned != nullptr);
  STAGE_CHECK(expensive != nullptr);
}

CardinalityEstimate HierarchicalCardinalityEstimator::Estimate(
    const plan::Plan& plan) {
  if (!learned_->trained()) {
    // Cold start: the optimizer's estimate is all we have for free.
    return optimizer_.Estimate(plan);
  }
  CardinalityEstimate estimate = learned_->Estimate(plan);
  if (estimate.log_std < config_.uncertainty_log_std_threshold) {
    ++learned_served_;
    return estimate;
  }
  ++escalations_;
  CardinalityEstimate expensive = expensive_->Estimate(plan);
  // The cheap attempt's cost was still paid.
  expensive.inference_seconds += estimate.inference_seconds;
  return expensive;
}

}  // namespace stage::carde
