#include "stage/serve/sharded_cache.h"

#include <utility>

#include "stage/common/macros.h"
#include "stage/common/serialize.h"

namespace stage::serve {

ShardedExecTimeCache::ShardedExecTimeCache(
    const ShardedExecTimeCacheConfig& config) {
  STAGE_CHECK(config.num_shards > 0);
  STAGE_CHECK(config.cache.capacity > 0);
  shard_config_ = config.cache;
  shard_config_.capacity = (config.cache.capacity + config.num_shards - 1) /
                           config.num_shards;
  shards_.reserve(config.num_shards);
  for (size_t i = 0; i < config.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(shard_config_));
  }
}

std::optional<double> ShardedExecTimeCache::Predict(uint64_t key) const {
  const Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  return shard.cache.Predict(key);
}

bool ShardedExecTimeCache::Contains(uint64_t key) const {
  const Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  return shard.cache.Contains(key);
}

bool ShardedExecTimeCache::Observe(uint64_t key, double exec_time,
                                   uint64_t tick) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const bool was_cached = shard.cache.Contains(key);
  shard.cache.Observe(key, exec_time, tick);
  return was_cached;
}

size_t ShardedExecTimeCache::shard_capacity() const {
  return shards_.front()->cache.capacity();
}

size_t ShardedExecTimeCache::total_capacity() const {
  return shards_.size() * shard_capacity();
}

uint64_t ShardedExecTimeCache::hits() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->cache.hits();
  return total;
}

uint64_t ShardedExecTimeCache::misses() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->cache.misses();
  return total;
}

uint64_t ShardedExecTimeCache::evictions() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->cache.evictions();
  }
  return total;
}

ShardedExecTimeCache::ShardStats ShardedExecTimeCache::shard_stats(
    size_t shard_index) const {
  STAGE_CHECK(shard_index < shards_.size());
  const Shard& shard = *shards_[shard_index];
  std::lock_guard<std::mutex> lock(shard.mutex);
  ShardStats stats;
  stats.hits = shard.cache.hits();
  stats.misses = shard.cache.misses();
  stats.evictions = shard.cache.evictions();
  stats.entries = shard.cache.size();
  return stats;
}

size_t ShardedExecTimeCache::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->cache.size();
  }
  return total;
}

namespace {
constexpr uint32_t kShardedMagic = 0x53534843;  // "SSHC".
constexpr uint32_t kShardedVersion = 1;
}  // namespace

void ShardedExecTimeCache::Save(std::ostream& out) const {
  WriteHeader(out, kShardedMagic, kShardedVersion);
  WritePod<uint64_t>(out, shards_.size());
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->cache.Save(out);
  }
}

bool ShardedExecTimeCache::Load(std::istream& in) {
  if (!ReadHeader(in, kShardedMagic, kShardedVersion)) return false;
  uint64_t num_shards = 0;
  if (!ReadPod(in, &num_shards) || num_shards != shards_.size()) return false;
  std::vector<std::unique_ptr<Shard>> staged;
  staged.reserve(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    staged.push_back(std::make_unique<Shard>(shard_config_));
    if (!staged.back()->cache.Load(in)) return false;
  }
  shards_ = std::move(staged);
  return true;
}

size_t ShardedExecTimeCache::MemoryBytes() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->cache.MemoryBytes();
  }
  return total;
}

}  // namespace stage::serve
