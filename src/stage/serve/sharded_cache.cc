#include "stage/serve/sharded_cache.h"

#include "stage/common/macros.h"

namespace stage::serve {

ShardedExecTimeCache::ShardedExecTimeCache(
    const ShardedExecTimeCacheConfig& config) {
  STAGE_CHECK(config.num_shards > 0);
  STAGE_CHECK(config.cache.capacity > 0);
  cache::ExecTimeCacheConfig shard_config = config.cache;
  shard_config.capacity = (config.cache.capacity + config.num_shards - 1) /
                          config.num_shards;
  shards_.reserve(config.num_shards);
  for (size_t i = 0; i < config.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(shard_config));
  }
}

std::optional<double> ShardedExecTimeCache::Predict(uint64_t key) const {
  const Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  return shard.cache.Predict(key);
}

bool ShardedExecTimeCache::Contains(uint64_t key) const {
  const Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  return shard.cache.Contains(key);
}

bool ShardedExecTimeCache::Observe(uint64_t key, double exec_time,
                                   uint64_t tick) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const bool was_cached = shard.cache.Contains(key);
  shard.cache.Observe(key, exec_time, tick);
  return was_cached;
}

size_t ShardedExecTimeCache::shard_capacity() const {
  return shards_.front()->cache.capacity();
}

uint64_t ShardedExecTimeCache::hits() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->cache.hits();
  return total;
}

uint64_t ShardedExecTimeCache::misses() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->cache.misses();
  return total;
}

uint64_t ShardedExecTimeCache::evictions() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->cache.evictions();
  }
  return total;
}

size_t ShardedExecTimeCache::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->cache.size();
  }
  return total;
}

size_t ShardedExecTimeCache::MemoryBytes() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->cache.MemoryBytes();
  }
  return total;
}

}  // namespace stage::serve
