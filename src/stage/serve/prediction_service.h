#ifndef STAGE_SERVE_PREDICTION_SERVICE_H_
#define STAGE_SERVE_PREDICTION_SERVICE_H_

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "stage/core/predictor.h"
#include "stage/core/stage_predictor.h"
#include "stage/fleet_serve/fleet_service.h"
#include "stage/fleet_serve/tenant_stack.h"
#include "stage/local/local_model.h"
#include "stage/metrics/latency_recorder.h"
#include "stage/obs/trace.h"
#include "stage/serve/sharded_cache.h"

namespace stage::serve {

struct PredictionServiceConfig {
  core::StagePredictorConfig predictor;

  // Shards of the exec-time cache front. 1 shard reproduces the
  // single-threaded predictor bit-for-bit (same eviction order); more
  // shards let concurrent lookups proceed without serializing.
  size_t cache_shards = 8;

  // When true (production), retraining runs on a worker thread from a
  // snapshot of the training pool and the fresh model is swapped in
  // atomically — Predict and Observe never block on Train. When false
  // (deterministic replay / tests), Observe trains inline exactly like
  // StagePredictor::Observe.
  bool async_retrain = true;

  // Empty when usable, else a description of the first problem.
  std::string Validate() const;
};

// Thread-safe single-tenant serving layer over the Stage predictor (the
// paper's AutoWLM integration path, §4.5): many sessions predict
// concurrently while the local model refreshes in the background.
//
// Since the fleet_serve redesign this class is a thin facade over a
// one-entry FleetService: the predictor guts live in
// fleet_serve::TenantStack, owned by the fleet registry under tenant id 0
// and pinned warm for the service's lifetime (so the facade's read path
// delegates straight to the stack — no registry lock, no eviction).
// Observe routes through the fleet so retrains run on its worker with the
// same coalescing semantics the dedicated worker used to have. Behaviour,
// metric names, checkpoint bytes, and the bit-for-bit replay contract are
// unchanged; multi-tenant callers should use fleet_serve::FleetService
// directly.
//
// With cache_shards == 1 and async_retrain == false, a single-threaded
// replay through this service is bit-for-bit identical (predictions and
// attribution counters) to the same replay through StagePredictor.
class PredictionService final : public core::ExecTimePredictor {
 public:
  explicit PredictionService(const PredictionServiceConfig& config,
                             const core::StagePredictorOptions& options = {});
  ~PredictionService() override;

  PredictionService(const PredictionService&) = delete;
  PredictionService& operator=(const PredictionService&) = delete;

  core::Prediction Predict(const core::QueryContext& query) const override;
  std::vector<core::Prediction> PredictBatch(
      std::span<const core::QueryContext> queries) const override;
  void Observe(const core::QueryContext& query, double exec_seconds) override;
  std::string_view name() const override { return "StageServe"; }

  // Predict with the routing decision recorded into `trace` (same contract
  // as StagePredictor::PredictTraced, plus the cache shard the key mapped
  // to). `trace` may be null, degrading to Predict.
  core::Prediction PredictTraced(const core::QueryContext& query,
                                 obs::PredictionTrace* trace) const;

  // Blocks until no retraining is pending or in flight. Test/shutdown sync
  // point; never needed on the serving path.
  void WaitForRetrain();

  // Snapshots the full predictor state — sharded cache, training pool,
  // retrain cadence, and the current local-model snapshot — into `out`.
  // Stalls writers (not readers) for one consistent Observe boundary.
  // Returns false on a write failure (symmetric with LoadCheckpoint —
  // check the status; a bad stream is no longer silent). Typically wrapped
  // in the crash-safe file envelope of stage/ckpt.
  bool SaveCheckpoint(std::ostream& out) const;

  // Restores a SaveCheckpoint stream into this service. The service config
  // must match the writer's (same cache_shards; shard membership is
  // key % num_shards). Call before serving starts — Load must not race
  // Predict/Observe. Returns false on a malformed or mismatched stream;
  // discard the service in that case. Telemetry (attribution counters,
  // latency recorder, cache hit/miss counters) deliberately restarts at
  // zero: counters describe a process lifetime, not predictor state.
  bool LoadCheckpoint(std::istream& in);

  // Attribution counters (same semantics as StagePredictor's).
  uint64_t predictions_from(core::PredictionSource source) const {
    return stack_->predictions_from(source);
  }
  uint64_t total_predictions() const { return stack_->total_predictions(); }

  // Completed local-model trainings.
  int trainings() const { return stack_->trainings(); }

  // Current §4.8 conformal sigma correction (1.0 when
  // predictor.calibrate_uncertainty is off or the window hasn't filled).
  double conformal_scale() const { return stack_->conformal_scale(); }
  // The tenant stack's recalibrator, or nullptr when calibration is off.
  const calib::ConformalRecalibrator* recalibrator() const {
    return stack_->recalibrator();
  }

  // Current local-model snapshot (nullptr before the first training). The
  // returned pointer stays valid across later swaps.
  std::shared_ptr<const local::LocalModel> local_model_snapshot() const {
    return stack_->local_model_snapshot();
  }

  const ShardedExecTimeCache& exec_time_cache() const {
    return stack_->exec_time_cache();
  }
  size_t pool_size() const { return stack_->pool_size(); }

  // Per-source read-path latency/QPS, one slot per PredictionSource.
  const metrics::LatencyRecorder& predict_latency() const {
    return stack_->predict_latency();
  }
  // Slot kNumPredictionSources-aligned names for RenderTable.
  static std::vector<std::string> PredictLatencySlotNames();

  size_t LocalMemoryBytes() const { return stack_->LocalMemoryBytes(); }

  // The underlying one-entry fleet (escape hatch for callers migrating to
  // the tenant-keyed API; the facade's stack is tenant kTenantId).
  static constexpr fleet_serve::TenantId kTenantId = 0;
  fleet_serve::FleetService& fleet() { return fleet_; }

 private:
  fleet_serve::FleetService fleet_;
  // The tenant-0 stack, pinned warm for the service's lifetime: reads
  // bypass the registry entirely.
  std::shared_ptr<fleet_serve::TenantStack> stack_;
};

}  // namespace stage::serve

#endif  // STAGE_SERVE_PREDICTION_SERVICE_H_
