#ifndef STAGE_SERVE_PREDICTION_SERVICE_H_
#define STAGE_SERVE_PREDICTION_SERVICE_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "stage/core/predictor.h"
#include "stage/core/stage_predictor.h"
#include "stage/local/local_model.h"
#include "stage/local/training_pool.h"
#include "stage/metrics/latency_recorder.h"
#include "stage/obs/metrics.h"
#include "stage/obs/trace.h"
#include "stage/serve/sharded_cache.h"

namespace stage::serve {

struct PredictionServiceConfig {
  core::StagePredictorConfig predictor;

  // Shards of the exec-time cache front. 1 shard reproduces the
  // single-threaded predictor bit-for-bit (same eviction order); more
  // shards let concurrent lookups proceed without serializing.
  size_t cache_shards = 8;

  // When true (production), retraining runs on a dedicated worker thread
  // from a snapshot of the training pool and the fresh model is swapped in
  // atomically — Predict and Observe never block on Train. When false
  // (deterministic replay / tests), Observe trains inline exactly like
  // StagePredictor::Observe.
  bool async_retrain = true;

  // Empty when usable, else a description of the first problem.
  std::string Validate() const;
};

// Thread-safe serving layer over the Stage predictor (the paper's AutoWLM
// integration path, §4.5): many sessions predict concurrently while the
// local model refreshes in the background.
//
// Concurrency design:
//  * Read path (Predict / PredictBatch, const): one sharded-cache lookup
//    (per-shard mutex, sub-microsecond critical section), an atomic
//    shared_ptr load of the current local-model snapshot, then the shared
//    §4.1 routing function. Never blocks on training. Large batches fan
//    the per-query routing out across ThreadPool::Shared(); every lane
//    writes its own output slot, so results match the sequential loop.
//  * Write path (Observe): serialized by an internal mutex (multiple
//    writer sessions are safe), updates the cache shard and training pool,
//    and — at the §4.3 cadence — either signals the retrain worker (async)
//    or trains inline (deterministic mode).
//  * Retrain worker: copies the pool under its lock, trains a fresh
//    LocalModel off-thread, then publishes it with a double-buffered
//    std::shared_ptr swap; in-flight Predicts finish on the old snapshot,
//    which is freed when the last reader drops it. Requests arriving while
//    a training runs coalesce into one follow-up run.
//
// With cache_shards == 1 and async_retrain == false, a single-threaded
// replay through this service is bit-for-bit identical (predictions and
// attribution counters) to the same replay through StagePredictor.
class PredictionService final : public core::ExecTimePredictor {
 public:
  explicit PredictionService(const PredictionServiceConfig& config,
                             const core::StagePredictorOptions& options = {});
  ~PredictionService() override;

  PredictionService(const PredictionService&) = delete;
  PredictionService& operator=(const PredictionService&) = delete;

  core::Prediction Predict(const core::QueryContext& query) const override;
  std::vector<core::Prediction> PredictBatch(
      std::span<const core::QueryContext> queries) const override;
  void Observe(const core::QueryContext& query, double exec_seconds) override;
  std::string_view name() const override { return "StageServe"; }

  // Predict with the routing decision recorded into `trace` (same contract
  // as StagePredictor::PredictTraced, plus the cache shard the key mapped
  // to). `trace` may be null, degrading to Predict.
  core::Prediction PredictTraced(const core::QueryContext& query,
                                 obs::PredictionTrace* trace) const;

  // Blocks until no retraining is pending or in flight. Test/shutdown sync
  // point; never needed on the serving path.
  void WaitForRetrain();

  // Snapshots the full predictor state — sharded cache, training pool,
  // retrain cadence, and the current local-model snapshot — into `out`.
  // Holds observe_mutex_ (stalling writers, not readers) so the cache and
  // pool are captured at one consistent Observe boundary; the read path
  // only ever contends on the one shard currently being serialized.
  // Typically wrapped in the crash-safe file envelope of stage/ckpt.
  void SaveCheckpoint(std::ostream& out) const;

  // Restores a SaveCheckpoint stream into this service. The service config
  // must match the writer's (same cache_shards; shard membership is
  // key % num_shards). Call before serving starts — Load must not race
  // Predict/Observe. Returns false on a malformed or mismatched stream;
  // discard the service in that case. Telemetry (attribution counters,
  // latency recorder, cache hit/miss counters) deliberately restarts at
  // zero: counters describe a process lifetime, not predictor state.
  bool LoadCheckpoint(std::istream& in);

  // Attribution counters (same semantics as StagePredictor's).
  uint64_t predictions_from(core::PredictionSource source) const {
    return source_counts_[static_cast<int>(source)].load(
        std::memory_order_relaxed);
  }
  uint64_t total_predictions() const;

  // Completed local-model trainings.
  int trainings() const { return trainings_.load(std::memory_order_relaxed); }

  // Current local-model snapshot (nullptr before the first training). The
  // returned pointer stays valid across later swaps.
  std::shared_ptr<const local::LocalModel> local_model_snapshot() const;

  const ShardedExecTimeCache& exec_time_cache() const { return cache_; }
  size_t pool_size() const;

  // Per-source read-path latency/QPS, one slot per PredictionSource.
  const metrics::LatencyRecorder& predict_latency() const {
    return predict_latency_;
  }
  // Slot kNumPredictionSources-aligned names for RenderTable.
  static std::vector<std::string> PredictLatencySlotNames();

  size_t LocalMemoryBytes() const;

 private:
  core::Prediction PredictImpl(const core::QueryContext& query,
                               obs::PredictionTrace* trace) const;
  void RegisterMetrics();
  void RetrainLoop();
  void TrainOnce();
  void PublishModel(std::shared_ptr<const local::LocalModel> fresh);

  PredictionServiceConfig config_;
  core::StagePredictorOptions options_;  // Borrowed pointers, nullable.

  ShardedExecTimeCache cache_;

  // Write-path state: the pool and retrain bookkeeping, guarded by
  // pool_mutex_ (observe_mutex_ additionally serializes whole Observes so
  // multiple writer sessions keep StagePredictor's sequential semantics).
  // Mutable so the const SaveCheckpoint can pause writers while it runs.
  mutable std::mutex observe_mutex_;
  mutable std::mutex pool_mutex_;
  local::TrainingPool pool_;
  size_t observed_since_train_ = 0;
  bool first_train_requested_ = false;

  // Double-buffered model snapshot: the trainer publishes a fresh model by
  // swapping this pointer; in-flight readers keep the previous buffer alive
  // through their own shared_ptr until they finish with it. model_mutex_
  // guards only the O(1) copy/swap — it is never held while training — so
  // Predict can stall behind a pointer copy at worst, never behind Train.
  // (Deliberately not std::atomic<std::shared_ptr>: libstdc++ implements
  // that with a lock bit ThreadSanitizer cannot see, and the stress test
  // must run TSan-clean.)
  mutable std::mutex model_mutex_;
  std::shared_ptr<const local::LocalModel> model_;
  std::atomic<int> trainings_{0};

  // Retrain worker plumbing.
  std::thread worker_;
  std::mutex work_mutex_;
  std::condition_variable work_cv_;   // Wakes the worker.
  std::condition_variable idle_cv_;   // Wakes WaitForRetrain.
  bool retrain_requested_ = false;
  bool training_in_flight_ = false;
  bool stopping_ = false;

  mutable std::array<std::atomic<uint64_t>, core::kNumPredictionSources>
      source_counts_{};
  mutable metrics::LatencyRecorder predict_latency_{
      core::kNumPredictionSources};
  // Hot-path metric handles, resolved against options_.metrics when set
  // (null members otherwise). The per-stage latency histograms come from
  // predict_latency_, exposed via registry callbacks, so the RoutingMetricSet
  // is created without its own latency family.
  obs::RoutingMetricSet routing_metrics_;
};

}  // namespace stage::serve

#endif  // STAGE_SERVE_PREDICTION_SERVICE_H_
