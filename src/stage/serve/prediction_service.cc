#include "stage/serve/prediction_service.h"

#include <utility>

namespace stage::serve {

std::string PredictionServiceConfig::Validate() const {
  if (cache_shards == 0) return "cache_shards must be positive";
  return predictor.Validate();
}

namespace {

fleet_serve::FleetServiceConfig FleetConfigFor(
    const PredictionServiceConfig& config) {
  fleet_serve::FleetServiceConfig fleet;
  fleet.stack.predictor = config.predictor;
  fleet.stack.cache_shards = config.cache_shards;
  fleet.resident_bytes_budget = 0;  // A facade tenant is never evicted.
  fleet.async_retrain = config.async_retrain;
  // One worker reproduces the old dedicated retrain thread exactly:
  // serialized trainings, repeat requests coalescing into one follow-up.
  fleet.max_concurrent_trainings = 1;
  return fleet;
}

}  // namespace

PredictionService::PredictionService(const PredictionServiceConfig& config,
                                     const core::StagePredictorOptions& options)
    : fleet_(FleetConfigFor(config)) {
  // The tenant carries the caller's options (global model, instance,
  // metrics) so the stack registers the same per-service metric families
  // under the same prefix the pre-fleet service did. The fleet itself runs
  // without fleet-level metrics — one pinned tenant has no evictions or
  // cold activations to report.
  fleet_.RegisterTenant(kTenantId, options);
  stack_ = fleet_.PinTenant(kTenantId);
}

PredictionService::~PredictionService() = default;

core::Prediction PredictionService::Predict(
    const core::QueryContext& query) const {
  return stack_->Predict(query);
}

std::vector<core::Prediction> PredictionService::PredictBatch(
    std::span<const core::QueryContext> queries) const {
  return stack_->PredictBatch(queries);
}

core::Prediction PredictionService::PredictTraced(
    const core::QueryContext& query, obs::PredictionTrace* trace) const {
  return stack_->PredictTraced(query, trace);
}

void PredictionService::Observe(const core::QueryContext& query,
                                double exec_seconds) {
  fleet_.Observe(kTenantId, query, exec_seconds);
}

void PredictionService::WaitForRetrain() { fleet_.WaitForRetrain(); }

bool PredictionService::SaveCheckpoint(std::ostream& out) const {
  return stack_->SaveState(out);
}

bool PredictionService::LoadCheckpoint(std::istream& in) {
  return stack_->LoadState(in);
}

std::vector<std::string> PredictionService::PredictLatencySlotNames() {
  return fleet_serve::TenantStack::PredictLatencySlotNames();
}

}  // namespace stage::serve
