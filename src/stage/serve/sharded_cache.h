#ifndef STAGE_SERVE_SHARDED_CACHE_H_
#define STAGE_SERVE_SHARDED_CACHE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "stage/cache/exec_time_cache.h"

namespace stage::serve {

struct ShardedExecTimeCacheConfig {
  // Per-entry behaviour of every shard. `cache.capacity` is the TOTAL
  // capacity across shards; each shard gets ceil(capacity / num_shards).
  cache::ExecTimeCacheConfig cache;
  size_t num_shards = 8;
};

// Concurrency front for the §4.2 exec-time cache: N independent
// ExecTimeCache shards, each behind its own mutex, keyed by
// `feature_hash % num_shards`. Concurrent lookups on different shards never
// serialize; a lookup racing an observation on the same shard takes the
// shard lock for the (sub-microsecond) map operation. Aggregate counters
// (hits/misses/evictions/size) are preserved as sums over shards, so the
// serving layer reports the same cache telemetry as the single-threaded
// predictor. With num_shards == 1 the behaviour — including eviction order
// — is bit-for-bit identical to a bare ExecTimeCache.
class ShardedExecTimeCache {
 public:
  explicit ShardedExecTimeCache(const ShardedExecTimeCacheConfig& config);

  // Thread-safe cache lookup; counts a hit or miss exactly once.
  std::optional<double> Predict(uint64_t key) const;

  bool Contains(uint64_t key) const;

  // Records an observed execution. Returns true when the key was already
  // cached *before* this observation (the §4.3 pool-deduplication signal),
  // checked and updated under one shard lock so callers need no separate
  // Contains round trip.
  bool Observe(uint64_t key, double exec_time, uint64_t tick);

  size_t num_shards() const { return shards_.size(); }
  size_t shard_capacity() const;

  // Aggregates over all shards. Counter reads are lock-free; size and
  // memory walk the shards under their locks.
  uint64_t hits() const;
  uint64_t misses() const;
  uint64_t evictions() const;
  size_t size() const;
  size_t MemoryBytes() const;

 private:
  struct Shard {
    explicit Shard(const cache::ExecTimeCacheConfig& config) : cache(config) {}
    mutable std::mutex mutex;
    cache::ExecTimeCache cache;
  };

  const Shard& ShardFor(uint64_t key) const {
    return *shards_[key % shards_.size()];
  }
  Shard& ShardFor(uint64_t key) { return *shards_[key % shards_.size()]; }

  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace stage::serve

#endif  // STAGE_SERVE_SHARDED_CACHE_H_
