#ifndef STAGE_SERVE_SHARDED_CACHE_H_
#define STAGE_SERVE_SHARDED_CACHE_H_

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "stage/cache/exec_time_cache.h"

namespace stage::serve {

struct ShardedExecTimeCacheConfig {
  // Per-entry behaviour of every shard. `cache.capacity` is the TOTAL
  // capacity across shards; each shard gets ceil(capacity / num_shards).
  //
  // Divergence from the paper's single 2,000-entry cache (§4.2, §5.1):
  // ceil-division can over-provision by up to num_shards-1 entries in
  // aggregate (e.g. 2000 over 3 shards -> 3 x 667 = 2001), and because each
  // shard evicts independently over its own key subset, a skewed key
  // distribution can evict from a hot shard while cold shards sit below
  // capacity — earlier than one global least-recently-updated cache would.
  // total_capacity() reports the effective aggregate cap so callers can
  // account for both effects; num_shards == 1 restores the paper exactly.
  cache::ExecTimeCacheConfig cache;
  size_t num_shards = 8;
};

// Concurrency front for the §4.2 exec-time cache: N independent
// ExecTimeCache shards, each behind its own mutex, keyed by
// `feature_hash % num_shards`. Concurrent lookups on different shards never
// serialize; a lookup racing an observation on the same shard takes the
// shard lock for the (sub-microsecond) map operation. Aggregate counters
// (hits/misses/evictions/size) are preserved as sums over shards, so the
// serving layer reports the same cache telemetry as the single-threaded
// predictor. With num_shards == 1 the behaviour — including eviction order
// — is bit-for-bit identical to a bare ExecTimeCache.
class ShardedExecTimeCache {
 public:
  explicit ShardedExecTimeCache(const ShardedExecTimeCacheConfig& config);

  // Thread-safe cache lookup; counts a hit or miss exactly once.
  std::optional<double> Predict(uint64_t key) const;

  bool Contains(uint64_t key) const;

  // Records an observed execution. Returns true when the key was already
  // cached *before* this observation (the §4.3 pool-deduplication signal),
  // checked and updated under one shard lock so callers need no separate
  // Contains round trip.
  bool Observe(uint64_t key, double exec_time, uint64_t tick);

  size_t num_shards() const { return shards_.size(); }
  size_t shard_capacity() const;
  // Effective aggregate capacity: num_shards * shard_capacity. Can exceed
  // the configured `cache.capacity` by up to num_shards - 1 entries (see
  // the config comment on the sharding divergence).
  size_t total_capacity() const;

  // Aggregates over all shards. Counter reads are lock-free; size and
  // memory walk the shards under their locks.
  uint64_t hits() const;
  uint64_t misses() const;
  uint64_t evictions() const;
  size_t size() const;
  size_t MemoryBytes() const;

  // Consistent point-in-time view of one shard's telemetry, taken under
  // that shard's lock (per-shard metrics exposition).
  struct ShardStats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    size_t entries = 0;
  };
  ShardStats shard_stats(size_t shard_index) const;

  // Checkpointing. Save serializes shard-by-shard, holding only one shard
  // lock at a time, so concurrent lookups on other shards never stall.
  // Load requires the same shard count (shard membership is key %
  // num_shards; re-sharding a snapshot would silently reorder evictions),
  // stages a fresh shard set, and commits only on full success. Load must
  // not race with readers or writers — restore before serving starts.
  void Save(std::ostream& out) const;
  bool Load(std::istream& in);

 private:
  struct Shard {
    explicit Shard(const cache::ExecTimeCacheConfig& config) : cache(config) {}
    mutable std::mutex mutex;
    cache::ExecTimeCache cache;
  };

  const Shard& ShardFor(uint64_t key) const {
    return *shards_[key % shards_.size()];
  }
  Shard& ShardFor(uint64_t key) { return *shards_[key % shards_.size()]; }

  cache::ExecTimeCacheConfig shard_config_;  // Per-shard (divided) capacity.
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace stage::serve

#endif  // STAGE_SERVE_SHARDED_CACHE_H_
