#ifndef STAGE_CORE_STAGE_PREDICTOR_H_
#define STAGE_CORE_STAGE_PREDICTOR_H_

#include <array>
#include <cstdint>

#include "stage/cache/exec_time_cache.h"
#include "stage/core/predictor.h"
#include "stage/fleet/instance.h"
#include "stage/global/global_model.h"
#include "stage/local/local_model.h"
#include "stage/local/training_pool.h"

namespace stage::core {

// All knobs of the hierarchical Stage predictor (§4).
struct StagePredictorConfig {
  cache::ExecTimeCacheConfig cache;
  local::TrainingPoolConfig pool;
  local::LocalModelConfig local;

  // Local-model (re)training cadence.
  size_t retrain_interval = 400;
  size_t min_train_size = 30;

  // Routing (§4.1): return the local prediction when it says the query is
  // short-running OR when it is confident; otherwise escalate to the
  // global model. The uncertainty threshold is on the log-space standard
  // deviation (a multiplicative error bar: 1.0 ~= within ~2.7x).
  double short_running_seconds = 5.0;
  double uncertainty_log_std_threshold = 1.0;

  // Ablation switch: never consult the global model even if provided.
  bool use_global = true;
};

// The Stage predictor (§4): exec-time cache -> local Bayesian-ensemble
// model -> fleet-trained global GCN. The global model and the instance
// description (needed for its system features) are optional: with either
// absent the predictor degrades to cache + local, which is the
// configuration Redshift actually deployed (§5.2).
class StagePredictor final : public ExecTimePredictor {
 public:
  // `global_model` and `instance` may be null; both are borrowed and must
  // outlive the predictor.
  StagePredictor(const StagePredictorConfig& config,
                 const global::GlobalModel* global_model,
                 const fleet::InstanceConfig* instance);

  Prediction Predict(const QueryContext& query) override;
  void Observe(const QueryContext& query, double exec_seconds) override;
  std::string_view name() const override { return "Stage"; }

  // Attribution counters: how many predictions each stage served.
  uint64_t predictions_from(PredictionSource source) const {
    return source_counts_[static_cast<int>(source)];
  }
  uint64_t total_predictions() const;

  const cache::ExecTimeCache& exec_time_cache() const { return cache_; }
  const local::TrainingPool& training_pool() const { return pool_; }
  const local::LocalModel& local_model() const { return local_; }

  // Memory footprint of the locally resident components (the paper excludes
  // the global model, which deploys as a shared serverless function).
  size_t LocalMemoryBytes() const;

 private:
  StagePredictorConfig config_;
  cache::ExecTimeCache cache_;
  local::TrainingPool pool_;
  local::LocalModel local_;
  const global::GlobalModel* global_model_;  // Borrowed, nullable.
  const fleet::InstanceConfig* instance_;    // Borrowed, nullable.
  size_t observed_since_train_ = 0;
  std::array<uint64_t, 5> source_counts_{};
};

}  // namespace stage::core

#endif  // STAGE_CORE_STAGE_PREDICTOR_H_
