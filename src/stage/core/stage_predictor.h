#ifndef STAGE_CORE_STAGE_PREDICTOR_H_
#define STAGE_CORE_STAGE_PREDICTOR_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>

#include "stage/cache/exec_time_cache.h"
#include "stage/calib/conformal.h"
#include "stage/core/predictor.h"
#include "stage/fleet/instance.h"
#include "stage/global/global_model.h"
#include "stage/local/local_model.h"
#include "stage/local/training_pool.h"
#include "stage/obs/metrics.h"
#include "stage/obs/trace.h"

namespace stage::core {

// All knobs of the hierarchical Stage predictor (§4).
struct StagePredictorConfig {
  cache::ExecTimeCacheConfig cache;
  local::TrainingPoolConfig pool;
  local::LocalModelConfig local;

  // Local-model (re)training cadence.
  size_t retrain_interval = 400;
  size_t min_train_size = 30;

  // Routing (§4.1): return the local prediction when it says the query is
  // short-running OR when it is confident; otherwise escalate to the
  // global model. The uncertainty threshold is on the log-space standard
  // deviation (a multiplicative error bar: 1.0 ~= within ~2.7x).
  double short_running_seconds = 5.0;
  double uncertainty_log_std_threshold = 1.0;

  // Ablation switch: never consult the global model even if provided.
  bool use_global = true;

  // §4.8 calibration: when set, an online conformal recalibrator rescales
  // the local ensemble's log_std before the confidence check above (and in
  // the reported uncertainty), driven by normalized residuals observed on
  // completions. Off by default — the flag-off path is bit-for-bit legacy
  // routing, pinned by tests/golden/routing_v1.txt.
  bool calibrate_uncertainty = false;
  calib::ConformalConfig conformal;

  // Returns an empty string when the config is usable; otherwise a
  // description of the first problem found. StagePredictor (and the serving
  // layer on top of it) refuse to construct from an invalid config.
  std::string Validate() const;
};

// Non-owning collaborators of a StagePredictor. Both pointers may be null
// (the predictor degrades to cache + local, which is the configuration
// Redshift actually deployed, §5.2); when set they are borrowed and must
// outlive the predictor.
struct StagePredictorOptions {
  const global::GlobalModel* global_model = nullptr;
  const fleet::InstanceConfig* instance = nullptr;
  // Optional observability sink. When set, the predictor resolves its
  // hot-path metrics (escalations, uncertainty, per-stage latency) against
  // it and registers render-time callbacks for its component state (cache
  // hits/misses/evictions, pool size, attribution counters); it must
  // outlive the predictor, which unregisters its callbacks on destruction.
  obs::MetricsRegistry* metrics = nullptr;
  // Metric name prefix; distinct predictors sharing one registry must use
  // distinct prefixes.
  std::string metrics_prefix = "stage_";
};

// The §4.1 routing policy as a pure function, shared by StagePredictor and
// stage::serve::PredictionService so the two cannot drift: cache hit ->
// cached value; trained local model -> local unless it is uncertain about a
// long-running query and a global model is usable; otherwise global (cold
// start) or the cold-start default. `cached_seconds` is the already-made
// cache lookup; `local` may be null or untrained. When `trace` is non-null
// the routing decision (stage reached, thresholds crossed, uncertainty) is
// recorded into it; the latency fields are the caller's job.
// `uncertainty_scale` multiplies the local model's log_std before the
// confidence check and in the reported uncertainty (the §4.8 conformal
// correction); 1.0 — the default, and the only value the flag-off path
// ever passes — is bit-for-bit identity.
Prediction RouteHierarchical(const StagePredictorConfig& config,
                             const QueryContext& query,
                             std::optional<double> cached_seconds,
                             const local::LocalModel* local,
                             const global::GlobalModel* global_model,
                             const fleet::InstanceConfig* instance,
                             obs::PredictionTrace* trace = nullptr,
                             double uncertainty_scale = 1.0);

// Deferred variant for batch paths: identical routing decisions, but when
// the query escalates to the global model it returns with out.source ==
// kGlobal, out.seconds NOT yet computed, and *needs_global = true instead
// of running the (relatively expensive) GCN inline per query. The caller
// collects every such query, runs ONE GlobalModel::PredictBatch over them,
// writes each prediction's seconds, and calls CompleteTrace on any trace it
// passed. RouteHierarchical is a thin wrapper over this function, so the
// two can never drift; the batched fill is bit-for-bit identical to the
// inline call (GlobalModel::PredictBatch's contract).
Prediction RouteHierarchicalDeferred(const StagePredictorConfig& config,
                                     const QueryContext& query,
                                     std::optional<double> cached_seconds,
                                     const local::LocalModel* local,
                                     const global::GlobalModel* global_model,
                                     const fleet::InstanceConfig* instance,
                                     bool* needs_global,
                                     obs::PredictionTrace* trace = nullptr,
                                     double uncertainty_scale = 1.0);

// Mirrors a final routing outcome into `trace` (no-op when null). Batch
// callers use it to finish the trace of a deferred-global query once the
// batched prediction has filled in its seconds.
void CompleteTrace(obs::PredictionTrace* trace, const Prediction& out);

// The Stage predictor (§4): exec-time cache -> local Bayesian-ensemble
// model -> fleet-trained global GCN.
//
// Thread-safety: Predict is const and only touches mutable state through
// atomics (see ExecTimePredictor's contract), so concurrent Predict calls
// are safe. Observe mutates the cache, pool, and (inline, every
// retrain_interval misses) retrains the local model; it must not run
// concurrently with anything. stage::serve::PredictionService provides the
// concurrent, non-blocking-retrain variant.
class StagePredictor final : public ExecTimePredictor {
 public:
  explicit StagePredictor(const StagePredictorConfig& config,
                          const StagePredictorOptions& options = {});
  ~StagePredictor() override;

  Prediction Predict(const QueryContext& query) const override;
  void Observe(const QueryContext& query, double exec_seconds) override;
  std::string_view name() const override { return "Stage"; }

  // Batch prediction with the global-model fan-out batched: routing runs
  // per query (cache + local model), every escalated query is collected,
  // and ONE GlobalModel::PredictBatch computes their seconds in a single
  // level-order pass. Results are bit-for-bit identical to calling Predict
  // once per query, in order (the base-class contract); only the wall
  // clock changes. Traced latency for escalated queries attributes an
  // equal share of the batched global pass to each.
  std::vector<Prediction> PredictBatch(
      std::span<const QueryContext> queries) const override;

  // Predict with the routing decision recorded into `trace` (stage reached,
  // thresholds crossed, uncertainty, per-stage latency in ns). The traced
  // path takes two extra clock reads; predictions are bit-for-bit identical
  // to Predict. `trace` may be null, degrading to Predict.
  Prediction PredictTraced(const QueryContext& query,
                           obs::PredictionTrace* trace) const;

  // Attribution counters: how many predictions each stage served.
  uint64_t predictions_from(PredictionSource source) const {
    return source_counts_[static_cast<int>(source)].load(
        std::memory_order_relaxed);
  }
  uint64_t total_predictions() const;

  const cache::ExecTimeCache& exec_time_cache() const { return cache_; }
  const local::TrainingPool& training_pool() const { return pool_; }
  const local::LocalModel& local_model() const { return local_; }

  // Current §4.8 conformal sigma correction: 1.0 when calibration is off
  // (or the window hasn't filled to conformal.min_window yet).
  double conformal_scale() const {
    return recalibrator_ != nullptr ? recalibrator_->scale() : 1.0;
  }
  // The recalibrator, or nullptr when calibrate_uncertainty is off.
  const calib::ConformalRecalibrator* recalibrator() const {
    return recalibrator_.get();
  }

  // Memory footprint of the locally resident components (the paper excludes
  // the global model, which deploys as a shared serverless function).
  size_t LocalMemoryBytes() const;

  // Full-state checkpointing: exec-time cache, training pool, local model
  // (when trained), and the retrain cadence counter. A predictor restored
  // from a snapshot continues the replay bit-for-bit — same predictions,
  // same routing, same future retrains — as one that never stopped.
  // Attribution counters are telemetry and restart at zero. Load is
  // transactional per component and returns false on a malformed stream;
  // the global model is borrowed (StagePredictorOptions), never persisted.
  void Save(std::ostream& out) const;
  bool Load(std::istream& in);

 private:
  Prediction PredictImpl(const QueryContext& query,
                         obs::PredictionTrace* trace) const;
  void RegisterMetrics();

  StagePredictorConfig config_;
  cache::ExecTimeCache cache_;
  local::TrainingPool pool_;
  local::LocalModel local_;
  // Non-null iff config_.calibrate_uncertainty: fed a normalized residual
  // per Observe, read (one atomic load) per Predict.
  std::unique_ptr<calib::ConformalRecalibrator> recalibrator_;
  StagePredictorOptions options_;  // Borrowed pointers, nullable.
  obs::RoutingMetricSet routing_metrics_;  // Null members when no registry.
  size_t observed_since_train_ = 0;
  // Mutable + atomic: the const read path attributes each prediction.
  mutable std::array<std::atomic<uint64_t>, kNumPredictionSources>
      source_counts_{};
};

}  // namespace stage::core

#endif  // STAGE_CORE_STAGE_PREDICTOR_H_
