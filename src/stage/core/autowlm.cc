#include "stage/core/autowlm.h"

#include <algorithm>
#include <cmath>

#include "stage/common/macros.h"
#include "stage/gbt/loss.h"

namespace stage::core {

AutoWlmPredictor::AutoWlmPredictor(const AutoWlmConfig& config)
    : config_(config) {
  STAGE_CHECK(config.pool_capacity > 0);
  STAGE_CHECK(config.retrain_interval > 0);
}

Prediction AutoWlmPredictor::Predict(const QueryContext& query) const {
  Prediction out;
  if (!trained_) {
    out.seconds = kColdStartDefaultSeconds;
    out.source = PredictionSource::kDefault;
    return out;
  }
  // PredictScalar runs on the model's compiled FlatForest: one branchless
  // descent per tree over contiguous arrays, no per-call allocation.
  const double raw = model_.PredictScalar(query.features.data());
  out.seconds = config_.log_target
                    ? std::max(0.0, std::expm1(std::clamp(raw, 0.0, 14.0)))
                    : std::max(0.0, raw);
  out.source = PredictionSource::kBaseline;
  return out;
}

void AutoWlmPredictor::Observe(const QueryContext& query,
                               double exec_seconds) {
  STAGE_CHECK(exec_seconds >= 0.0);
  pool_.emplace_back(query.features, exec_seconds);
  if (pool_.size() > config_.pool_capacity) pool_.pop_front();
  ++observed_since_train_;
  MaybeRetrain();
}

void AutoWlmPredictor::MaybeRetrain() {
  if (pool_.size() < config_.min_train_size) return;
  if (trained_ && observed_since_train_ < config_.retrain_interval) return;

  gbt::Dataset data(plan::kPlanFeatureDim);
  data.Reserve(pool_.size());
  for (const auto& [features, seconds] : pool_) {
    const double label =
        config_.log_target ? std::log1p(seconds) : seconds;
    data.AddRow(features.data(), label);
  }
  const auto loss = gbt::MakeAbsoluteLoss();
  model_ = gbt::GbdtModel::Train(data, *loss, config_.gbdt);
  trained_ = true;
  ++trainings_;
  observed_since_train_ = 0;
}

}  // namespace stage::core
