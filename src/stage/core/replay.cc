#include "stage/core/replay.h"

namespace stage::core {

std::vector<double> ReplayResult::Actuals() const {
  std::vector<double> out;
  out.reserve(records.size());
  for (const ReplayRecord& record : records) {
    out.push_back(record.actual_seconds);
  }
  return out;
}

std::vector<double> ReplayResult::Predictions() const {
  std::vector<double> out;
  out.reserve(records.size());
  for (const ReplayRecord& record : records) {
    out.push_back(record.predicted_seconds);
  }
  return out;
}

std::vector<double> ReplayResult::ActualsWhere(PredictionSource source) const {
  std::vector<double> out;
  for (const ReplayRecord& record : records) {
    if (record.source == source) out.push_back(record.actual_seconds);
  }
  return out;
}

std::vector<double> ReplayResult::PredictionsWhere(
    PredictionSource source) const {
  std::vector<double> out;
  for (const ReplayRecord& record : records) {
    if (record.source == source) out.push_back(record.predicted_seconds);
  }
  return out;
}

ReplayResult ReplayTrace(const std::vector<fleet::QueryEvent>& trace,
                         ExecTimePredictor& predictor) {
  ReplayResult result;
  result.records.reserve(trace.size());
  for (const fleet::QueryEvent& event : trace) {
    const QueryContext context =
        MakeQueryContext(event.plan, event.concurrent_queries,
                         static_cast<uint64_t>(event.arrival_ms));
    const Prediction prediction = predictor.Predict(context);
    predictor.Observe(context, event.exec_seconds);

    ReplayRecord record;
    record.actual_seconds = event.exec_seconds;
    record.predicted_seconds = prediction.seconds;
    record.source = prediction.source;
    record.uncertainty_log_std = prediction.uncertainty_log_std;
    record.kind = event.kind;
    result.records.push_back(record);
  }
  return result;
}

}  // namespace stage::core
