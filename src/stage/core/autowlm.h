#ifndef STAGE_CORE_AUTOWLM_H_
#define STAGE_CORE_AUTOWLM_H_

#include <deque>

#include "stage/core/predictor.h"
#include "stage/gbt/gbdt.h"

namespace stage::core {

// The prior Redshift predictor ([50], §2.1) used as the paper's baseline:
// a single lightweight GBT model over the flattened plan vector, trained
// with absolute error on each instance's executed queries. Its training
// pool is a plain FIFO — no cache deduplication, no duration buckets —
// which is exactly the set of §4.3 pathologies the Stage pool fixes.
struct AutoWlmConfig {
  gbt::GbdtConfig gbdt;  // Same hyper-parameters as one local-model member.
  size_t pool_capacity = 2000;
  size_t retrain_interval = 400;  // Observations between retrains.
  size_t min_train_size = 30;
  // The production AutoWLM trains absolute error on raw seconds (§5.1's
  // baseline "is trained with the mean absolute error" on the evaluation
  // metric); sign-gradient boosting on raw seconds is coarse (~lr-sized
  // steps) and cannot reach the 1000s+ tail — both visible in the paper's
  // Tables 1-3. Set true for a strictly stronger log-space variant.
  bool log_target = false;
};

class AutoWlmPredictor final : public ExecTimePredictor {
 public:
  explicit AutoWlmPredictor(const AutoWlmConfig& config);

  Prediction Predict(const QueryContext& query) const override;
  void Observe(const QueryContext& query, double exec_seconds) override;
  std::string_view name() const override { return "AutoWLM"; }

  bool trained() const { return trained_; }
  int trainings() const { return trainings_; }
  size_t MemoryBytes() const { return model_.MemoryBytes(); }

 private:
  void MaybeRetrain();

  AutoWlmConfig config_;
  std::deque<std::pair<plan::PlanFeatures, double>> pool_;
  gbt::GbdtModel model_;
  bool trained_ = false;
  int trainings_ = 0;
  size_t observed_since_train_ = 0;
};

}  // namespace stage::core

#endif  // STAGE_CORE_AUTOWLM_H_
