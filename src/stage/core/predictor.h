#ifndef STAGE_CORE_PREDICTOR_H_
#define STAGE_CORE_PREDICTOR_H_

#include <cstdint>
#include <string_view>

#include "stage/plan/featurizer.h"
#include "stage/plan/plan.h"

namespace stage::core {

// Everything a predictor may see about one query at prediction time: the
// physical plan, its flattened feature vector and hash, the observable
// system load, and a monotone logical timestamp.
struct QueryContext {
  const plan::Plan* plan = nullptr;
  plan::PlanFeatures features{};
  uint64_t feature_hash = 0;
  int concurrent_queries = 0;
  uint64_t tick = 0;  // e.g. arrival time in ms; drives cache eviction.
};

// Featurizes + hashes a plan into a context.
QueryContext MakeQueryContext(const plan::Plan& plan, int concurrent_queries,
                              uint64_t tick);

// Which component produced a prediction (for attribution in the ablation
// tables and Fig. 9).
enum class PredictionSource : uint8_t {
  kCache = 0,
  kLocal,
  kGlobal,
  kBaseline,   // Non-hierarchical predictors (AutoWLM).
  kDefault,    // Cold start, nothing trained yet.
};

std::string_view PredictionSourceName(PredictionSource source);

struct Prediction {
  double seconds = 0.0;
  PredictionSource source = PredictionSource::kDefault;
  // Predicted log-space standard deviation when the source provides one
  // (local model); negative when unavailable.
  double uncertainty_log_std = -1.0;
};

// The interface of every exec-time predictor in this library. The contract
// mirrors deployment: Predict is called before execution, Observe after it
// with the measured exec-time (which feeds caches/training pools).
class ExecTimePredictor {
 public:
  virtual ~ExecTimePredictor() = default;

  virtual Prediction Predict(const QueryContext& query) = 0;
  virtual void Observe(const QueryContext& query, double exec_seconds) = 0;
  virtual std::string_view name() const = 0;
};

// Prediction returned before any model has trained.
inline constexpr double kColdStartDefaultSeconds = 1.0;

}  // namespace stage::core

#endif  // STAGE_CORE_PREDICTOR_H_
