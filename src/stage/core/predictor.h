#ifndef STAGE_CORE_PREDICTOR_H_
#define STAGE_CORE_PREDICTOR_H_

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "stage/plan/featurizer.h"
#include "stage/plan/plan.h"

namespace stage::core {

// Everything a predictor may see about one query at prediction time: the
// physical plan, its flattened feature vector and hash, the observable
// system load, and a monotone logical timestamp.
struct QueryContext {
  const plan::Plan* plan = nullptr;
  plan::PlanFeatures features{};
  uint64_t feature_hash = 0;
  int concurrent_queries = 0;
  uint64_t tick = 0;  // e.g. arrival time in ms; drives cache eviction.
};

// Featurizes + hashes a plan into a context.
QueryContext MakeQueryContext(const plan::Plan& plan, int concurrent_queries,
                              uint64_t tick);

// Which component produced a prediction (for attribution in the ablation
// tables and Fig. 9).
enum class PredictionSource : uint8_t {
  kCache = 0,
  kLocal,
  kGlobal,
  kBaseline,   // Non-hierarchical predictors (AutoWLM).
  kDefault,    // Cold start, nothing trained yet.
};

// Number of PredictionSource values; sizes attribution-counter arrays.
inline constexpr int kNumPredictionSources = 5;

std::string_view PredictionSourceName(PredictionSource source);

struct Prediction {
  double seconds = 0.0;
  PredictionSource source = PredictionSource::kDefault;
  // Predicted log-space standard deviation when the source provides one
  // (local model); negative when unavailable.
  double uncertainty_log_std = -1.0;
};

// The interface of every exec-time predictor in this library. The contract
// mirrors deployment: Predict is called before execution, Observe after it
// with the measured exec-time (which feeds caches/training pools).
//
// Thread-safety contract. The interface is split into a const read path
// (Predict / PredictBatch) and a mutating write path (Observe):
//
//  * Predict / PredictBatch are `const` and must not mutate any state that
//    affects future predictions. Implementations may update bookkeeping
//    counters (hit/miss, attribution) from the read path, but only through
//    atomics, so concurrent Predict calls never race with *each other*.
//  * Observe mutates model state (caches, training pools, retraining) and
//    is NOT safe to run concurrently with Predict or another Observe on the
//    bare implementations in this library (StagePredictor, AutoWlm). A
//    caller that needs reads racing writes must either serialize externally
//    or use stage::serve::PredictionService, which layers per-shard cache
//    locks and an atomically swapped model snapshot on top of this
//    interface to make Predict wait-free with respect to Observe/retrain.
class ExecTimePredictor {
 public:
  virtual ~ExecTimePredictor() = default;

  virtual Prediction Predict(const QueryContext& query) const = 0;

  // Batched read path. The default override is a plain loop over Predict;
  // implementations with cheaper amortized lookups (shard-lock batching,
  // vectorized ensembles) may specialize it. Must be semantically
  // equivalent to calling Predict once per query, in order.
  virtual std::vector<Prediction> PredictBatch(
      std::span<const QueryContext> queries) const {
    std::vector<Prediction> out;
    out.reserve(queries.size());
    for (const QueryContext& query : queries) out.push_back(Predict(query));
    return out;
  }

  virtual void Observe(const QueryContext& query, double exec_seconds) = 0;
  virtual std::string_view name() const = 0;
};

// Prediction returned before any model has trained.
inline constexpr double kColdStartDefaultSeconds = 1.0;

}  // namespace stage::core

#endif  // STAGE_CORE_PREDICTOR_H_
