#ifndef STAGE_CORE_REPLAY_H_
#define STAGE_CORE_REPLAY_H_

#include <vector>

#include "stage/core/predictor.h"
#include "stage/fleet/workload.h"

namespace stage::core {

// One replayed query: the prediction made before (simulated) execution and
// the logged truth.
struct ReplayRecord {
  double actual_seconds = 0.0;
  double predicted_seconds = 0.0;
  PredictionSource source = PredictionSource::kDefault;
  double uncertainty_log_std = -1.0;
  fleet::QueryEvent::Kind kind = fleet::QueryEvent::Kind::kAdHoc;
};

struct ReplayResult {
  std::vector<ReplayRecord> records;

  std::vector<double> Actuals() const;
  std::vector<double> Predictions() const;
  // Subset selectors for the ablation tables.
  std::vector<double> ActualsWhere(PredictionSource source) const;
  std::vector<double> PredictionsWhere(PredictionSource source) const;
};

// Replays a trace in arrival order against a predictor, exactly as the
// paper evaluates (§5.1): predict before execution, then reveal the logged
// exec-time to the predictor.
ReplayResult ReplayTrace(const std::vector<fleet::QueryEvent>& trace,
                         ExecTimePredictor& predictor);

}  // namespace stage::core

#endif  // STAGE_CORE_REPLAY_H_
