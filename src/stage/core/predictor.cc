#include "stage/core/predictor.h"

#include "stage/common/macros.h"

namespace stage::core {

QueryContext MakeQueryContext(const plan::Plan& plan, int concurrent_queries,
                              uint64_t tick) {
  QueryContext context;
  context.plan = &plan;
  context.features = plan::FlattenPlan(plan);
  context.feature_hash = plan::HashFeatures(context.features);
  context.concurrent_queries = concurrent_queries;
  context.tick = tick;
  return context;
}

std::string_view PredictionSourceName(PredictionSource source) {
  switch (source) {
    case PredictionSource::kCache: return "cache";
    case PredictionSource::kLocal: return "local";
    case PredictionSource::kGlobal: return "global";
    case PredictionSource::kBaseline: return "baseline";
    case PredictionSource::kDefault: return "default";
  }
  STAGE_CHECK_MSG(false, "invalid PredictionSource");
  return "";
}

}  // namespace stage::core
