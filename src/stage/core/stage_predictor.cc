#include "stage/core/stage_predictor.h"

#include "stage/common/macros.h"
#include "stage/common/serialize.h"

namespace stage::core {

std::string StagePredictorConfig::Validate() const {
  if (cache.capacity == 0) return "cache.capacity must be positive";
  if (cache.alpha < 0.0 || cache.alpha > 1.0) {
    return "cache.alpha must be in [0, 1]";
  }
  if (pool.capacity == 0 && !pool.unbounded) {
    return "pool.capacity must be positive (or pool.unbounded set)";
  }
  if (pool.bucket_bounds_seconds[0] > pool.bucket_bounds_seconds[1]) {
    return "pool.bucket_bounds_seconds must be non-decreasing";
  }
  for (double fraction : pool.bucket_fractions) {
    if (fraction < 0.0) return "pool.bucket_fractions must be non-negative";
  }
  if (local.ensemble.num_members <= 0) {
    return "local.ensemble.num_members must be positive";
  }
  if (retrain_interval == 0) return "retrain_interval must be positive";
  if (min_train_size == 0) return "min_train_size must be positive";
  if (short_running_seconds < 0.0) {
    return "short_running_seconds must be non-negative";
  }
  if (uncertainty_log_std_threshold < 0.0) {
    return "uncertainty_log_std_threshold must be non-negative";
  }
  return "";
}

Prediction RouteHierarchical(const StagePredictorConfig& config,
                             const QueryContext& query,
                             std::optional<double> cached_seconds,
                             const local::LocalModel* local,
                             const global::GlobalModel* global_model,
                             const fleet::InstanceConfig* instance) {
  Prediction out;

  // Stage 1: exec-time cache.
  if (cached_seconds) {
    out.seconds = *cached_seconds;
    out.source = PredictionSource::kCache;
    return out;
  }

  const bool global_available = config.use_global && global_model != nullptr &&
                                global_model->trained() &&
                                instance != nullptr && query.plan != nullptr;

  // Stage 2: instance-optimized local model.
  if (local != nullptr && local->trained()) {
    const local::LocalModel::Output local_out = local->Predict(query.features);
    out.seconds = local_out.exec_seconds;
    out.uncertainty_log_std = local_out.log_std();
    out.source = PredictionSource::kLocal;

    const bool short_running =
        local_out.exec_seconds < config.short_running_seconds;
    const bool confident =
        local_out.log_std() < config.uncertainty_log_std_threshold;
    if (short_running || confident || !global_available) {
      return out;
    }
    // Stage 3: the local model is uncertain about a long-running query.
    out.seconds = global_model->PredictSeconds(*query.plan, *instance,
                                               query.concurrent_queries);
    out.source = PredictionSource::kGlobal;
    return out;
  }

  // Cold start: no local model yet. The transferable global model covers
  // new instances until enough local training data accumulates.
  if (global_available) {
    out.seconds = global_model->PredictSeconds(*query.plan, *instance,
                                               query.concurrent_queries);
    out.source = PredictionSource::kGlobal;
    return out;
  }
  out.seconds = kColdStartDefaultSeconds;
  out.source = PredictionSource::kDefault;
  return out;
}

StagePredictor::StagePredictor(const StagePredictorConfig& config,
                               const StagePredictorOptions& options)
    : config_(config),
      cache_(config.cache),
      pool_(config.pool),
      local_(config.local),
      options_(options) {
  const std::string error = config.Validate();
  STAGE_CHECK_MSG(error.empty(), error.c_str());
}

Prediction StagePredictor::Predict(const QueryContext& query) const {
  const Prediction out =
      RouteHierarchical(config_, query, cache_.Predict(query.feature_hash),
                        &local_, options_.global_model, options_.instance);
  source_counts_[static_cast<int>(out.source)].fetch_add(
      1, std::memory_order_relaxed);
  return out;
}

void StagePredictor::Observe(const QueryContext& query, double exec_seconds) {
  STAGE_CHECK(exec_seconds >= 0.0);
  // Pool deduplication via the cache (§4.3): repeats are the cache's job;
  // only cache misses diversify the local model's training set.
  const bool was_cached = cache_.Contains(query.feature_hash);
  cache_.Observe(query.feature_hash, exec_seconds, query.tick);
  if (!was_cached) {
    pool_.Add(query.features, exec_seconds);
    ++observed_since_train_;
  }

  const bool first_training =
      !local_.trained() && pool_.size() >= config_.min_train_size;
  const bool scheduled_training =
      local_.trained() && observed_since_train_ >= config_.retrain_interval &&
      pool_.size() >= config_.min_train_size;
  if (first_training || scheduled_training) {
    local_.Train(pool_);
    observed_since_train_ = 0;
  }
}

uint64_t StagePredictor::total_predictions() const {
  uint64_t total = 0;
  for (const auto& count : source_counts_) {
    total += count.load(std::memory_order_relaxed);
  }
  return total;
}

size_t StagePredictor::LocalMemoryBytes() const {
  return cache_.MemoryBytes() + local_.MemoryBytes();
}

namespace {
constexpr uint32_t kPredictorMagic = 0x53505244;  // "SPRD".
constexpr uint32_t kPredictorVersion = 1;
}  // namespace

void StagePredictor::Save(std::ostream& out) const {
  WriteHeader(out, kPredictorMagic, kPredictorVersion);
  cache_.Save(out);
  pool_.Save(out);
  WritePod<uint64_t>(out, observed_since_train_);
  WritePod<uint8_t>(out, local_.trained() ? 1 : 0);
  if (local_.trained()) local_.Save(out);
}

bool StagePredictor::Load(std::istream& in) {
  if (!ReadHeader(in, kPredictorMagic, kPredictorVersion)) return false;
  // Each component's Load is itself transactional, but the predictor is
  // restored component-by-component: on failure, discard the predictor
  // rather than serving from a partially restored one.
  if (!cache_.Load(in)) return false;
  if (!pool_.Load(in)) return false;
  uint64_t observed_since_train = 0;
  if (!ReadPod(in, &observed_since_train)) return false;
  uint8_t has_local = 0;
  if (!ReadPod(in, &has_local)) return false;
  if (has_local != 0 && !local_.Load(in)) return false;
  observed_since_train_ = static_cast<size_t>(observed_since_train);
  return true;
}

}  // namespace stage::core
