#include "stage/core/stage_predictor.h"

#include "stage/common/macros.h"

namespace stage::core {

StagePredictor::StagePredictor(const StagePredictorConfig& config,
                               const global::GlobalModel* global_model,
                               const fleet::InstanceConfig* instance)
    : config_(config),
      cache_(config.cache),
      pool_(config.pool),
      local_(config.local),
      global_model_(global_model),
      instance_(instance) {
  STAGE_CHECK(config.retrain_interval > 0);
}

Prediction StagePredictor::Predict(const QueryContext& query) {
  Prediction out;
  const auto finish = [&](Prediction prediction) {
    ++source_counts_[static_cast<int>(prediction.source)];
    return prediction;
  };

  // Stage 1: exec-time cache.
  if (const auto cached = cache_.Predict(query.feature_hash)) {
    out.seconds = *cached;
    out.source = PredictionSource::kCache;
    return finish(out);
  }

  const bool global_available = config_.use_global &&
                                global_model_ != nullptr &&
                                global_model_->trained() &&
                                instance_ != nullptr && query.plan != nullptr;

  // Stage 2: instance-optimized local model.
  if (local_.trained()) {
    const local::LocalModel::Output local_out = local_.Predict(query.features);
    out.seconds = local_out.exec_seconds;
    out.uncertainty_log_std = local_out.log_std();
    out.source = PredictionSource::kLocal;

    const bool short_running =
        local_out.exec_seconds < config_.short_running_seconds;
    const bool confident =
        local_out.log_std() < config_.uncertainty_log_std_threshold;
    if (short_running || confident || !global_available) {
      return finish(out);
    }
    // Stage 3: the local model is uncertain about a long-running query.
    out.seconds = global_model_->PredictSeconds(*query.plan, *instance_,
                                                query.concurrent_queries);
    out.source = PredictionSource::kGlobal;
    return finish(out);
  }

  // Cold start: no local model yet. The transferable global model covers
  // new instances until enough local training data accumulates.
  if (global_available) {
    out.seconds = global_model_->PredictSeconds(*query.plan, *instance_,
                                                query.concurrent_queries);
    out.source = PredictionSource::kGlobal;
    return finish(out);
  }
  out.seconds = kColdStartDefaultSeconds;
  out.source = PredictionSource::kDefault;
  return finish(out);
}

void StagePredictor::Observe(const QueryContext& query, double exec_seconds) {
  STAGE_CHECK(exec_seconds >= 0.0);
  // Pool deduplication via the cache (§4.3): repeats are the cache's job;
  // only cache misses diversify the local model's training set.
  const bool was_cached = cache_.Contains(query.feature_hash);
  cache_.Observe(query.feature_hash, exec_seconds, query.tick);
  if (!was_cached) {
    pool_.Add(query.features, exec_seconds);
    ++observed_since_train_;
  }

  const bool first_training =
      !local_.trained() && pool_.size() >= config_.min_train_size;
  const bool scheduled_training =
      local_.trained() && observed_since_train_ >= config_.retrain_interval &&
      pool_.size() >= config_.min_train_size;
  if (first_training || scheduled_training) {
    local_.Train(pool_);
    observed_since_train_ = 0;
  }
}

uint64_t StagePredictor::total_predictions() const {
  uint64_t total = 0;
  for (uint64_t count : source_counts_) total += count;
  return total;
}

size_t StagePredictor::LocalMemoryBytes() const {
  return cache_.MemoryBytes() + local_.MemoryBytes();
}

}  // namespace stage::core
