#include "stage/core/stage_predictor.h"

#include <chrono>
#include <cmath>

#include "stage/calib/calibration.h"
#include "stage/common/macros.h"
#include "stage/common/serialize.h"

namespace stage::core {

// The obs layer restates PredictionSource as obs::TraceStage (obs sits
// below core); the two must stay numerically identical.
static_assert(obs::kNumTraceStages == kNumPredictionSources);
static_assert(static_cast<int>(obs::TraceStage::kCache) ==
              static_cast<int>(PredictionSource::kCache));
static_assert(static_cast<int>(obs::TraceStage::kLocal) ==
              static_cast<int>(PredictionSource::kLocal));
static_assert(static_cast<int>(obs::TraceStage::kGlobal) ==
              static_cast<int>(PredictionSource::kGlobal));
static_assert(static_cast<int>(obs::TraceStage::kBaseline) ==
              static_cast<int>(PredictionSource::kBaseline));
static_assert(static_cast<int>(obs::TraceStage::kDefault) ==
              static_cast<int>(PredictionSource::kDefault));

std::string StagePredictorConfig::Validate() const {
  if (cache.capacity == 0) return "cache.capacity must be positive";
  if (cache.alpha < 0.0 || cache.alpha > 1.0) {
    return "cache.alpha must be in [0, 1]";
  }
  if (pool.capacity == 0 && !pool.unbounded) {
    return "pool.capacity must be positive (or pool.unbounded set)";
  }
  if (pool.bucket_bounds_seconds[0] > pool.bucket_bounds_seconds[1]) {
    return "pool.bucket_bounds_seconds must be non-decreasing";
  }
  for (double fraction : pool.bucket_fractions) {
    if (fraction < 0.0) return "pool.bucket_fractions must be non-negative";
  }
  if (local.ensemble.num_members <= 0) {
    return "local.ensemble.num_members must be positive";
  }
  if (retrain_interval == 0) return "retrain_interval must be positive";
  if (min_train_size == 0) return "min_train_size must be positive";
  // isfinite first: NaN compares false against every threshold, so a bare
  // `< 0.0` check silently accepts it — and a NaN threshold makes every
  // routing confidence check false.
  if (!std::isfinite(short_running_seconds) || short_running_seconds < 0.0) {
    return "short_running_seconds must be finite and non-negative";
  }
  if (!std::isfinite(uncertainty_log_std_threshold) ||
      uncertainty_log_std_threshold < 0.0) {
    return "uncertainty_log_std_threshold must be finite and non-negative";
  }
  const std::string conformal_error = conformal.Validate();
  if (!conformal_error.empty()) return conformal_error;
  return "";
}

void CompleteTrace(obs::PredictionTrace* trace, const Prediction& out) {
  if (trace == nullptr) return;
  trace->stage = static_cast<obs::TraceStage>(out.source);
  trace->predicted_seconds = out.seconds;
  trace->uncertainty_log_std = out.uncertainty_log_std;
}

Prediction RouteHierarchicalDeferred(const StagePredictorConfig& config,
                                     const QueryContext& query,
                                     std::optional<double> cached_seconds,
                                     const local::LocalModel* local,
                                     const global::GlobalModel* global_model,
                                     const fleet::InstanceConfig* instance,
                                     bool* needs_global,
                                     obs::PredictionTrace* trace,
                                     double uncertainty_scale) {
  *needs_global = false;
  Prediction out;
  if (trace != nullptr) {
    trace->short_running_threshold = config.short_running_seconds;
    trace->uncertainty_threshold = config.uncertainty_log_std_threshold;
  }

  // Stage 1: exec-time cache.
  if (cached_seconds) {
    out.seconds = *cached_seconds;
    out.source = PredictionSource::kCache;
    if (trace != nullptr) trace->cache_hit = true;
    CompleteTrace(trace, out);
    return out;
  }

  const bool global_available = config.use_global && global_model != nullptr &&
                                global_model->trained() &&
                                instance != nullptr && query.plan != nullptr;
  if (trace != nullptr) trace->global_available = global_available;

  // Stage 2: instance-optimized local model.
  if (local != nullptr && local->trained()) {
    const local::LocalModel::Output local_out = local->Predict(query.features);
    // The conformal correction (§4.8). Identity when uncertainty_scale is
    // 1.0: IEEE multiplication by 1.0 is exact, so the flag-off path stays
    // bit-for-bit legacy.
    const double log_std = local_out.log_std() * uncertainty_scale;
    out.seconds = local_out.exec_seconds;
    out.uncertainty_log_std = log_std;
    out.source = PredictionSource::kLocal;

    const bool short_running =
        local_out.exec_seconds < config.short_running_seconds;
    const bool confident = log_std < config.uncertainty_log_std_threshold;
    if (trace != nullptr) {
      trace->local_trained = true;
      trace->short_running = short_running;
      trace->confident = confident;
    }
    if (short_running || confident || !global_available) {
      CompleteTrace(trace, out);
      return out;
    }
    // Stage 3: the local model is uncertain about a long-running query.
    // Seconds deferred to the caller's GlobalModel call; trace finishes
    // once they are known.
    out.source = PredictionSource::kGlobal;
    *needs_global = true;
    if (trace != nullptr) trace->escalated = true;
    return out;
  }

  // Cold start: no local model yet. The transferable global model covers
  // new instances until enough local training data accumulates.
  if (global_available) {
    out.source = PredictionSource::kGlobal;
    *needs_global = true;
    return out;
  }
  out.seconds = kColdStartDefaultSeconds;
  out.source = PredictionSource::kDefault;
  CompleteTrace(trace, out);
  return out;
}

Prediction RouteHierarchical(const StagePredictorConfig& config,
                             const QueryContext& query,
                             std::optional<double> cached_seconds,
                             const local::LocalModel* local,
                             const global::GlobalModel* global_model,
                             const fleet::InstanceConfig* instance,
                             obs::PredictionTrace* trace,
                             double uncertainty_scale) {
  bool needs_global = false;
  Prediction out = RouteHierarchicalDeferred(config, query, cached_seconds,
                                             local, global_model, instance,
                                             &needs_global, trace,
                                             uncertainty_scale);
  if (needs_global) {
    out.seconds = global_model->PredictSeconds(*query.plan, *instance,
                                               query.concurrent_queries);
    CompleteTrace(trace, out);
  }
  return out;
}

StagePredictor::StagePredictor(const StagePredictorConfig& config,
                               const StagePredictorOptions& options)
    : config_(config),
      cache_(config.cache),
      pool_(config.pool),
      local_(config.local),
      options_(options) {
  const std::string error = config.Validate();
  STAGE_CHECK_MSG(error.empty(), error.c_str());
  if (config_.calibrate_uncertainty) {
    recalibrator_ =
        std::make_unique<calib::ConformalRecalibrator>(config_.conformal);
  }
  if (options_.metrics != nullptr) RegisterMetrics();
}

StagePredictor::~StagePredictor() {
  if (options_.metrics != nullptr) options_.metrics->UnregisterAll(this);
}

void StagePredictor::RegisterMetrics() {
  obs::MetricsRegistry* registry = options_.metrics;
  const std::string& prefix = options_.metrics_prefix;
  routing_metrics_ =
      obs::RoutingMetricSet::Create(registry, prefix, /*with_latency=*/true);
  for (int i = 0; i < kNumPredictionSources; ++i) {
    const auto source = static_cast<PredictionSource>(i);
    registry->RegisterCounterCallback(
        this,
        prefix + "predictions_total{source=\"" +
            std::string(PredictionSourceName(source)) + "\"}",
        [this, i] {
          return source_counts_[i].load(std::memory_order_relaxed);
        });
  }
  registry->RegisterCounterCallback(this, prefix + "cache_hits_total",
                                    [this] { return cache_.hits(); });
  registry->RegisterCounterCallback(this, prefix + "cache_misses_total",
                                    [this] { return cache_.misses(); });
  registry->RegisterCounterCallback(this, prefix + "cache_evictions_total",
                                    [this] { return cache_.evictions(); });
  registry->RegisterGaugeCallback(
      this, prefix + "cache_entries",
      [this] { return static_cast<double>(cache_.size()); });
  registry->RegisterGaugeCallback(
      this, prefix + "resident_memory_bytes",
      [this] { return static_cast<double>(LocalMemoryBytes()); });
  registry->RegisterGaugeCallback(
      this, prefix + "pool_entries",
      [this] { return static_cast<double>(pool_.size()); });
  registry->RegisterCounterCallback(
      this, prefix + "local_trainings_total",
      [this] { return static_cast<uint64_t>(local_.trainings()); });
  if (recalibrator_ != nullptr) {
    registry->RegisterGaugeCallback(this, prefix + "conformal_scale", [this] {
      return recalibrator_->scale();
    });
    registry->RegisterGaugeCallback(
        this, prefix + "conformal_window_size", [this] {
          return static_cast<double>(recalibrator_->window_size());
        });
    registry->RegisterCounterCallback(
        this, prefix + "conformal_observations_total",
        [this] { return recalibrator_->observations(); });
  }
}

Prediction StagePredictor::PredictImpl(const QueryContext& query,
                                       obs::PredictionTrace* trace) const {
  Prediction out;
  const double scale = conformal_scale();
  if (trace == nullptr) {
    out = RouteHierarchical(config_, query, cache_.Predict(query.feature_hash),
                            &local_, options_.global_model, options_.instance,
                            nullptr, scale);
  } else {
    const auto start = std::chrono::steady_clock::now();
    const std::optional<double> cached = cache_.Predict(query.feature_hash);
    const auto after_cache = std::chrono::steady_clock::now();
    out = RouteHierarchical(config_, query, cached, &local_,
                            options_.global_model, options_.instance, trace,
                            scale);
    const auto end = std::chrono::steady_clock::now();
    trace->cache_nanos = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(after_cache -
                                                             start)
            .count());
    trace->route_nanos = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - after_cache)
            .count());
    trace->total_nanos = trace->cache_nanos + trace->route_nanos;
  }
  source_counts_[static_cast<int>(out.source)].fetch_add(
      1, std::memory_order_relaxed);
  return out;
}

Prediction StagePredictor::Predict(const QueryContext& query) const {
  if (!routing_metrics_.enabled()) return PredictImpl(query, nullptr);
  obs::PredictionTrace trace;
  const Prediction out = PredictImpl(query, &trace);
  routing_metrics_.Record(trace);
  return out;
}

Prediction StagePredictor::PredictTraced(const QueryContext& query,
                                         obs::PredictionTrace* trace) const {
  if (trace == nullptr) return Predict(query);
  const Prediction out = PredictImpl(query, trace);
  if (routing_metrics_.enabled()) routing_metrics_.Record(*trace);
  return out;
}

std::vector<Prediction> StagePredictor::PredictBatch(
    std::span<const QueryContext> queries) const {
  std::vector<Prediction> out(queries.size());
  if (queries.empty()) return out;
  const bool traced = routing_metrics_.enabled();
  std::vector<obs::PredictionTrace> traces(traced ? queries.size() : 0);
  // One scale load amortized across the batch: Observe never runs
  // concurrently with Predict on the bare predictor, so the scale cannot
  // move mid-batch anyway.
  const double scale = conformal_scale();

  // Phase 1: cache + local routing per query; escalated queries defer
  // their seconds instead of running the GCN inline.
  std::vector<size_t> escalated;
  std::vector<global::GlobalQuery> global_queries;
  for (size_t i = 0; i < queries.size(); ++i) {
    const QueryContext& query = queries[i];
    bool needs_global = false;
    if (!traced) {
      out[i] = RouteHierarchicalDeferred(
          config_, query, cache_.Predict(query.feature_hash), &local_,
          options_.global_model, options_.instance, &needs_global, nullptr,
          scale);
    } else {
      obs::PredictionTrace& trace = traces[i];
      const auto start = std::chrono::steady_clock::now();
      const std::optional<double> cached = cache_.Predict(query.feature_hash);
      const auto after_cache = std::chrono::steady_clock::now();
      out[i] = RouteHierarchicalDeferred(config_, query, cached, &local_,
                                         options_.global_model,
                                         options_.instance, &needs_global,
                                         &trace, scale);
      const auto end = std::chrono::steady_clock::now();
      trace.cache_nanos = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(after_cache -
                                                               start)
              .count());
      trace.route_nanos = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(end -
                                                               after_cache)
              .count());
      trace.total_nanos = trace.cache_nanos + trace.route_nanos;
    }
    if (needs_global) {
      escalated.push_back(i);
      global_queries.push_back({query.plan, query.concurrent_queries});
    }
  }

  // Phase 2: ONE batched global pass over every escalated query —
  // bit-identical to per-query PredictSeconds (PredictBatch's contract).
  if (!escalated.empty()) {
    std::vector<double> seconds(escalated.size());
    const auto start = std::chrono::steady_clock::now();
    options_.global_model->PredictBatch(global_queries, *options_.instance,
                                        seconds);
    const auto end = std::chrono::steady_clock::now();
    // Latency attribution: each escalated query carries an equal share of
    // the batched pass (the per-query split inside one GEMM is unknowable).
    const uint64_t share =
        static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
                .count()) /
        escalated.size();
    for (size_t j = 0; j < escalated.size(); ++j) {
      const size_t i = escalated[j];
      out[i].seconds = seconds[j];
      if (traced) {
        traces[i].route_nanos += share;
        traces[i].total_nanos += share;
        CompleteTrace(&traces[i], out[i]);
      }
    }
  }

  for (size_t i = 0; i < queries.size(); ++i) {
    source_counts_[static_cast<int>(out[i].source)].fetch_add(
        1, std::memory_order_relaxed);
    if (traced) routing_metrics_.Record(traces[i]);
  }
  return out;
}

void StagePredictor::Observe(const QueryContext& query, double exec_seconds) {
  STAGE_CHECK(exec_seconds >= 0.0);
  // §4.8: score the *current* local model on the completed query and feed
  // the normalized residual to the recalibrator — before the cache/pool
  // mutations below, so the residual reflects the model that actually
  // predicted this query. Sentinel residuals (untrained model handled by
  // the trained() guard; unusable sigma by NormalizedResidual's NaN) are
  // ignored by Observe.
  if (recalibrator_ != nullptr && local_.trained()) {
    const local::LocalModel::Output out = local_.Predict(query.features);
    recalibrator_->Observe(calib::NormalizedResidual(
        out.exec_seconds, out.log_std(), exec_seconds));
  }
  // Pool deduplication via the cache (§4.3): repeats are the cache's job;
  // only cache misses diversify the local model's training set.
  const bool was_cached = cache_.Contains(query.feature_hash);
  cache_.Observe(query.feature_hash, exec_seconds, query.tick);
  if (!was_cached) {
    pool_.Add(query.features, exec_seconds);
    ++observed_since_train_;
  }

  const bool first_training =
      !local_.trained() && pool_.size() >= config_.min_train_size;
  const bool scheduled_training =
      local_.trained() && observed_since_train_ >= config_.retrain_interval &&
      pool_.size() >= config_.min_train_size;
  if (first_training || scheduled_training) {
    local_.Train(pool_);
    observed_since_train_ = 0;
  }
}

uint64_t StagePredictor::total_predictions() const {
  uint64_t total = 0;
  for (const auto& count : source_counts_) {
    total += count.load(std::memory_order_relaxed);
  }
  return total;
}

size_t StagePredictor::LocalMemoryBytes() const {
  return cache_.MemoryBytes() + local_.MemoryBytes();
}

namespace {
constexpr uint32_t kPredictorMagic = 0x53505244;  // "SPRD".
constexpr uint32_t kPredictorVersion = 1;
}  // namespace

void StagePredictor::Save(std::ostream& out) const {
  WriteHeader(out, kPredictorMagic, kPredictorVersion);
  cache_.Save(out);
  pool_.Save(out);
  WritePod<uint64_t>(out, observed_since_train_);
  WritePod<uint8_t>(out, local_.trained() ? 1 : 0);
  if (local_.trained()) local_.Save(out);
  // Appended only when calibration is on: the flag-off stream stays
  // byte-identical to the legacy format (and old snapshots keep loading
  // into flag-off predictors).
  if (recalibrator_ != nullptr) recalibrator_->Save(out);
}

bool StagePredictor::Load(std::istream& in) {
  if (!ReadHeader(in, kPredictorMagic, kPredictorVersion)) return false;
  // Each component's Load is itself transactional, but the predictor is
  // restored component-by-component: on failure, discard the predictor
  // rather than serving from a partially restored one.
  if (!cache_.Load(in)) return false;
  if (!pool_.Load(in)) return false;
  uint64_t observed_since_train = 0;
  if (!ReadPod(in, &observed_since_train)) return false;
  uint8_t has_local = 0;
  if (!ReadPod(in, &has_local)) return false;
  if (has_local != 0 && !local_.Load(in)) return false;
  if (recalibrator_ != nullptr && !recalibrator_->Load(in)) return false;
  observed_since_train_ = static_cast<size_t>(observed_since_train);
  return true;
}

}  // namespace stage::core
