#include "stage/common/framing.h"

#include <optional>

#include "stage/common/crc32.h"
#include "stage/common/serialize.h"

namespace stage {

std::string_view FrameStatusName(FrameStatus status) {
  switch (status) {
    case FrameStatus::kOk:
      return "ok";
    case FrameStatus::kNeedMore:
      return "need-more";
    case FrameStatus::kTruncatedHeader:
      return "truncated-header";
    case FrameStatus::kBadMagic:
      return "bad-magic";
    case FrameStatus::kBadVersion:
      return "bad-version";
    case FrameStatus::kTooLarge:
      return "too-large";
    case FrameStatus::kTruncatedPayload:
      return "truncated-payload";
    case FrameStatus::kCrcMismatch:
      return "crc-mismatch";
  }
  return "unknown";
}

void WriteFrame(std::ostream& out, uint32_t magic, uint32_t version,
                uint32_t type, std::string_view payload) {
  WritePod(out, magic);
  WritePod(out, version);
  WritePod(out, type);
  WritePod<uint64_t>(out, payload.size());
  WritePod(out, Crc32(payload));
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
}

FrameStatus ReadFrameHeader(std::istream& in, uint32_t magic,
                            uint32_t version, FrameHeader* header) {
  if (!ReadPod(in, &header->magic) || !ReadPod(in, &header->version) ||
      !ReadPod(in, &header->type) || !ReadPod(in, &header->payload_size) ||
      !ReadPod(in, &header->payload_crc)) {
    return FrameStatus::kTruncatedHeader;
  }
  if (header->magic != magic) return FrameStatus::kBadMagic;
  if (header->version != version) return FrameStatus::kBadVersion;
  return FrameStatus::kOk;
}

FrameStatus ReadFramePayload(std::istream& in, const FrameHeader& header,
                             std::string* payload) {
  // Reject the declared size against the actual stream length before
  // allocating, so a corrupt size field cannot trigger a huge allocation.
  const std::optional<uint64_t> remaining = RemainingBytes(in);
  if (remaining && header.payload_size > *remaining) {
    return FrameStatus::kTruncatedPayload;
  }
  std::string bytes(header.payload_size, '\0');
  in.read(bytes.data(), static_cast<std::streamsize>(header.payload_size));
  if (!in) return FrameStatus::kTruncatedPayload;
  if (Crc32(bytes) != header.payload_crc) return FrameStatus::kCrcMismatch;
  *payload = std::move(bytes);
  return FrameStatus::kOk;
}

void AppendFrame(std::string* out, uint32_t magic, uint32_t version,
                 uint32_t type, std::string_view payload) {
  AppendPod(out, magic);
  AppendPod(out, version);
  AppendPod(out, type);
  AppendPod<uint64_t>(out, payload.size());
  AppendPod(out, Crc32(payload));
  out->append(payload.data(), payload.size());
}

FrameStatus DecodeFrame(std::string_view buffer, uint32_t magic,
                        uint32_t version, uint64_t max_payload,
                        FrameHeader* header, std::string_view* payload,
                        size_t* frame_bytes) {
  if (buffer.size() < kFrameHeaderBytes) return FrameStatus::kNeedMore;
  ByteReader reader(buffer);
  // Reads from a >= 24-byte buffer cannot fail.
  (void)reader.Read(&header->magic);
  (void)reader.Read(&header->version);
  (void)reader.Read(&header->type);
  (void)reader.Read(&header->payload_size);
  (void)reader.Read(&header->payload_crc);
  // Magic/version/size sanity comes before waiting for payload bytes: a
  // garbage header must fail immediately, not stall the connection waiting
  // for a "payload" that will never arrive.
  if (header->magic != magic) return FrameStatus::kBadMagic;
  if (header->version != version) return FrameStatus::kBadVersion;
  if (header->payload_size > max_payload) return FrameStatus::kTooLarge;
  if (reader.remaining() < header->payload_size) return FrameStatus::kNeedMore;
  std::string_view bytes;
  (void)reader.ReadBytes(header->payload_size, &bytes);
  if (Crc32(bytes) != header->payload_crc) return FrameStatus::kCrcMismatch;
  *payload = bytes;
  *frame_bytes = kFrameHeaderBytes + static_cast<size_t>(header->payload_size);
  return FrameStatus::kOk;
}

}  // namespace stage
