#ifndef STAGE_COMMON_SERIALIZE_H_
#define STAGE_COMMON_SERIALIZE_H_

#include <cstdint>
#include <istream>
#include <optional>
#include <ostream>
#include <string>
#include <type_traits>
#include <vector>

namespace stage {

// Minimal binary (de)serialization helpers for model checkpoints. The
// format is raw little-endian PODs behind a per-model magic+version header;
// files are not portable across architectures with different endianness,
// which is fine for the "train the global model offline, ship it to every
// instance" deployment the paper describes (§4.4).

template <typename T>
void WritePod(std::ostream& out, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::istream& in, T* value) {
  static_assert(std::is_trivially_copyable_v<T>);
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

template <typename T>
void WriteVector(std::ostream& out, const std::vector<T>& values) {
  static_assert(std::is_trivially_copyable_v<T>);
  WritePod<uint64_t>(out, values.size());
  if (!values.empty()) {
    out.write(reinterpret_cast<const char*>(values.data()),
              static_cast<std::streamsize>(values.size() * sizeof(T)));
  }
}

// Bytes left between the current read position and the end of a seekable
// stream; nullopt when the stream cannot be probed (unseekable or already
// failed). Used to reject corrupt size fields before allocating.
std::optional<uint64_t> RemainingBytes(std::istream& in);

template <typename T>
bool ReadVector(std::istream& in, std::vector<T>* values,
                uint64_t max_elements = (1ull << 32)) {
  static_assert(std::is_trivially_copyable_v<T>);
  uint64_t size = 0;
  if (!ReadPod(in, &size) || size > max_elements) return false;
  if (size > 0) {
    // A corrupt size field must fail here, not via a multi-GB resize that
    // only errors after the read comes up short.
    const std::optional<uint64_t> remaining = RemainingBytes(in);
    if (remaining && size > *remaining / sizeof(T)) return false;
  }
  values->resize(size);
  if (size > 0) {
    in.read(reinterpret_cast<char*>(values->data()),
            static_cast<std::streamsize>(size * sizeof(T)));
  }
  return static_cast<bool>(in);
}

// Writes/checks a 4-byte magic plus a version number.
void WriteHeader(std::ostream& out, uint32_t magic, uint32_t version);
bool ReadHeader(std::istream& in, uint32_t magic, uint32_t expected_version);

// Like ReadHeader, but accepts any version and returns it through
// `version_out`, so callers can keep loading older checkpoint formats.
bool ReadHeaderVersion(std::istream& in, uint32_t magic,
                       uint32_t* version_out);

}  // namespace stage

#endif  // STAGE_COMMON_SERIALIZE_H_
