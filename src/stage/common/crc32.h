#ifndef STAGE_COMMON_CRC32_H_
#define STAGE_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace stage {

// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), the checksum the
// checkpoint envelope uses to detect torn or bit-rotted snapshot payloads
// (src/stage/ckpt). Incremental use: feed the previous return value back in
// as `seed` to extend a running checksum.
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

inline uint32_t Crc32(std::string_view bytes, uint32_t seed = 0) {
  return Crc32(bytes.data(), bytes.size(), seed);
}

}  // namespace stage

#endif  // STAGE_COMMON_CRC32_H_
