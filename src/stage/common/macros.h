#ifndef STAGE_COMMON_MACROS_H_
#define STAGE_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

// Invariant checking for library internals. STAGE_CHECK is always on (the
// predictor sits on a simulated critical path, but correctness of the
// reproduction matters more than the last few percent of speed); use
// STAGE_DCHECK for hot-loop checks that should vanish in release builds.
#define STAGE_CHECK(cond)                                                  \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "STAGE_CHECK failed at %s:%d: %s\n", __FILE__,  \
                   __LINE__, #cond);                                       \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#define STAGE_CHECK_MSG(cond, msg)                                         \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "STAGE_CHECK failed at %s:%d: %s (%s)\n",       \
                   __FILE__, __LINE__, #cond, msg);                        \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#ifdef NDEBUG
#define STAGE_DCHECK(cond) \
  do {                     \
  } while (0)
#else
#define STAGE_DCHECK(cond) STAGE_CHECK(cond)
#endif

#endif  // STAGE_COMMON_MACROS_H_
