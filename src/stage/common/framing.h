#ifndef STAGE_COMMON_FRAMING_H_
#define STAGE_COMMON_FRAMING_H_

#include <cstdint>
#include <cstring>
#include <istream>
#include <ostream>
#include <string>
#include <string_view>
#include <type_traits>

namespace stage {

// One serialization vocabulary for every length-prefixed, CRC-checked
// envelope in the system (the ROADMAP refactor note): the `ckpt` snapshot
// envelope ("SSNP") and the network wire protocol ("SNET") are both
// instances of this 24-byte frame:
//
//   u32 magic     format family ("SSNP", "SNET", ...)
//   u32 version   envelope format version within the family
//   u32 type      family-specific discriminator (SnapshotKind, MessageType)
//   u64 payload_size
//   u32 payload_crc32
//   payload bytes
//
// The CRC covers the payload bytes, so truncation (size mismatch) and bit
// rot (checksum mismatch) are both detected before any payload parser runs.
// Stream readers (checkpoint files) and buffer decoders (socket receive
// buffers) share the header layout byte for byte.
struct FrameHeader {
  uint32_t magic = 0;
  uint32_t version = 0;
  uint32_t type = 0;
  uint64_t payload_size = 0;
  uint32_t payload_crc = 0;
};

inline constexpr size_t kFrameHeaderBytes =
    sizeof(uint32_t) * 4 + sizeof(uint64_t);  // 24.

// Structured result of header/payload verification, mapped to caller
// vocabulary ("snapshot header truncated", protocol error frames) at the
// edges. kNeedMore is a buffer-decoder-only status: the frame is not fully
// buffered yet and the caller should read more bytes.
enum class FrameStatus {
  kOk = 0,
  kNeedMore,
  kTruncatedHeader,
  kBadMagic,
  kBadVersion,
  kTooLarge,
  kTruncatedPayload,
  kCrcMismatch,
};

std::string_view FrameStatusName(FrameStatus status);

// ---- Stream side (checkpoint files) -----------------------------------

// Writes one complete frame. The byte layout is pinned by ckpt_test's
// envelope-bytes regression test — changing it invalidates every snapshot
// on disk.
void WriteFrame(std::ostream& out, uint32_t magic, uint32_t version,
                uint32_t type, std::string_view payload);

// Reads and validates the 24-byte header (magic, then version). The
// family-specific `type` is NOT checked here — callers inspect
// header->type between the two calls so e.g. a snapshot kind mismatch can
// be reported before the payload is touched.
FrameStatus ReadFrameHeader(std::istream& in, uint32_t magic,
                            uint32_t version, FrameHeader* header);

// Reads the payload declared by a validated header and checks its CRC.
// The declared size is rejected against the actual remaining stream length
// before allocating, so a corrupt size field cannot trigger a huge
// allocation.
FrameStatus ReadFramePayload(std::istream& in, const FrameHeader& header,
                             std::string* payload);

// ---- Buffer side (socket receive buffers) -----------------------------

// Appends one complete frame to `out` (allocation amortizes into the
// caller's reused buffer).
void AppendFrame(std::string* out, uint32_t magic, uint32_t version,
                 uint32_t type, std::string_view payload);

// Attempts to decode one frame from the front of `buffer`.
//  * kOk: fills header/payload (a view INTO `buffer`) and `frame_bytes`
//    (header + payload — what the caller consumes).
//  * kNeedMore: not enough bytes buffered yet; read more and retry.
//  * anything else: the stream is unsynchronized or corrupt; the
//    connection-level caller should reply with an error and close.
// `max_payload` bounds the declared payload size (kTooLarge beyond it) so
// a hostile length field cannot make the receiver buffer gigabytes.
FrameStatus DecodeFrame(std::string_view buffer, uint32_t magic,
                        uint32_t version, uint64_t max_payload,
                        FrameHeader* header, std::string_view* payload,
                        size_t* frame_bytes);

// ---- Flat-buffer POD helpers ------------------------------------------
// The buffer-side analogue of WritePod/ReadPod in serialize.h: payload
// builders append into a reused std::string, parsers walk a string_view
// cursor. Little-endian raw PODs, same portability contract as
// serialize.h.

template <typename T>
void AppendPod(std::string* out, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

// Bounds-checked forward cursor over a byte buffer. Every Read* returns
// false on underflow and leaves the cursor unspecified (parsers bail out
// on the first failure).
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  template <typename T>
  bool Read(T* value) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (data_.size() - pos_ < sizeof(T)) return false;
    std::memcpy(value, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  bool ReadBytes(size_t n, std::string_view* out) {
    if (data_.size() - pos_ < n) return false;
    *out = data_.substr(pos_, n);
    pos_ += n;
    return true;
  }

  size_t remaining() const { return data_.size() - pos_; }
  bool empty() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace stage

#endif  // STAGE_COMMON_FRAMING_H_
