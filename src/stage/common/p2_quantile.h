#ifndef STAGE_COMMON_P2_QUANTILE_H_
#define STAGE_COMMON_P2_QUANTILE_H_

#include <array>
#include <cstddef>
#include <iosfwd>

namespace stage {

// Streaming single-quantile estimator (Jain & Chlamtac's P-square
// algorithm): tracks the q-quantile of a stream in O(1) space with five
// markers and parabolic interpolation. The exec-time cache uses this to
// offer median (or any quantile) predictions per cached query without
// storing latency histories — the design freedom §4.2 calls out ("we can
// compute any summary statistic we want from the history").
class P2Quantile {
 public:
  // q in (0, 1); 0.5 tracks the median.
  explicit P2Quantile(double q = 0.5);

  void Add(double value);

  // Current estimate. Exact for the first 5 observations; approximate
  // (typically within a fraction of a percentile) afterwards. Returns 0
  // when empty.
  double Value() const;

  size_t count() const { return count_; }

  // Exact-state checkpointing of all five markers, so a restored sketch
  // produces the same estimates (and the same future updates) bit-for-bit.
  void Save(std::ostream& out) const;
  bool Load(std::istream& in);

 private:
  double quantile_;
  size_t count_ = 0;
  // Marker heights, positions, and desired positions (5 markers).
  std::array<double, 5> heights_{};
  std::array<double, 5> positions_{};
  std::array<double, 5> desired_{};
  std::array<double, 5> desired_increments_{};
};

}  // namespace stage

#endif  // STAGE_COMMON_P2_QUANTILE_H_
