#include "stage/common/p2_quantile.h"

#include <algorithm>
#include <cmath>

#include "stage/common/macros.h"
#include "stage/common/serialize.h"

namespace stage {

P2Quantile::P2Quantile(double q) : quantile_(q) {
  STAGE_CHECK(q > 0.0 && q < 1.0);
  positions_ = {1, 2, 3, 4, 5};
  desired_ = {1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0};
  desired_increments_ = {0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0};
}

void P2Quantile::Add(double value) {
  if (count_ < 5) {
    heights_[count_++] = value;
    if (count_ == 5) {
      std::sort(heights_.begin(), heights_.end());
    }
    return;
  }
  ++count_;

  // Find the cell k containing the new observation and clamp extremes.
  int k;
  if (value < heights_[0]) {
    heights_[0] = value;
    k = 0;
  } else if (value >= heights_[4]) {
    heights_[4] = std::max(heights_[4], value);
    k = 3;
  } else {
    k = 0;
    while (k < 3 && value >= heights_[k + 1]) ++k;
  }

  for (int i = k + 1; i < 5; ++i) positions_[i] += 1.0;
  for (int i = 0; i < 5; ++i) desired_[i] += desired_increments_[i];

  // Adjust the three interior markers toward their desired positions.
  for (int i = 1; i <= 3; ++i) {
    const double delta = desired_[i] - positions_[i];
    const double step_up = positions_[i + 1] - positions_[i];
    const double step_down = positions_[i - 1] - positions_[i];
    if ((delta >= 1.0 && step_up > 1.0) || (delta <= -1.0 && step_down < -1.0)) {
      const double direction = delta >= 0 ? 1.0 : -1.0;
      // Piecewise-parabolic (P2) prediction of the new height.
      const double p_prev = positions_[i - 1];
      const double p_cur = positions_[i];
      const double p_next = positions_[i + 1];
      const double h_prev = heights_[i - 1];
      const double h_cur = heights_[i];
      const double h_next = heights_[i + 1];
      double candidate =
          h_cur + direction / (p_next - p_prev) *
                      ((p_cur - p_prev + direction) * (h_next - h_cur) /
                           (p_next - p_cur) +
                       (p_next - p_cur - direction) * (h_cur - h_prev) /
                           (p_cur - p_prev));
      if (candidate <= h_prev || candidate >= h_next) {
        // Parabolic step left the bracket: fall back to linear.
        candidate = direction > 0
                        ? h_cur + (h_next - h_cur) / (p_next - p_cur)
                        : h_cur - (h_prev - h_cur) / (p_prev - p_cur);
      }
      heights_[i] = candidate;
      positions_[i] += direction;
    }
  }
}

double P2Quantile::Value() const {
  if (count_ == 0) return 0.0;
  if (count_ < 5) {
    // Exact small-sample quantile over the buffered values.
    std::array<double, 5> sorted = heights_;
    std::sort(sorted.begin(), sorted.begin() + count_);
    const double pos = quantile_ * static_cast<double>(count_ - 1);
    const size_t lo = static_cast<size_t>(pos);
    const size_t hi = std::min(lo + 1, count_ - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
  }
  return heights_[2];
}

void P2Quantile::Save(std::ostream& out) const {
  WritePod(out, quantile_);
  WritePod<uint64_t>(out, count_);
  for (double h : heights_) WritePod(out, h);
  for (double p : positions_) WritePod(out, p);
  for (double d : desired_) WritePod(out, d);
  for (double d : desired_increments_) WritePod(out, d);
}

bool P2Quantile::Load(std::istream& in) {
  double quantile = 0.0;
  uint64_t count = 0;
  std::array<double, 5> heights{};
  std::array<double, 5> positions{};
  std::array<double, 5> desired{};
  std::array<double, 5> increments{};
  if (!ReadPod(in, &quantile) || !ReadPod(in, &count)) return false;
  for (double& h : heights) {
    if (!ReadPod(in, &h)) return false;
  }
  for (double& p : positions) {
    if (!ReadPod(in, &p)) return false;
  }
  for (double& d : desired) {
    if (!ReadPod(in, &d)) return false;
  }
  for (double& d : increments) {
    if (!ReadPod(in, &d)) return false;
  }
  if (!(quantile > 0.0 && quantile < 1.0)) return false;
  for (double h : heights) {
    if (!std::isfinite(h)) return false;
  }
  quantile_ = quantile;
  count_ = static_cast<size_t>(count);
  heights_ = heights;
  positions_ = positions;
  desired_ = desired;
  desired_increments_ = increments;
  return true;
}

}  // namespace stage
