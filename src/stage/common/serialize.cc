#include "stage/common/serialize.h"

namespace stage {

std::optional<uint64_t> RemainingBytes(std::istream& in) {
  if (!in) return std::nullopt;
  const std::istream::pos_type current = in.tellg();
  if (current == std::istream::pos_type(-1)) return std::nullopt;
  in.seekg(0, std::ios::end);
  const std::istream::pos_type end = in.tellg();
  in.seekg(current);
  if (end == std::istream::pos_type(-1) || !in || end < current) {
    return std::nullopt;
  }
  return static_cast<uint64_t>(end - current);
}

void WriteHeader(std::ostream& out, uint32_t magic, uint32_t version) {
  WritePod(out, magic);
  WritePod(out, version);
}

bool ReadHeader(std::istream& in, uint32_t magic, uint32_t expected_version) {
  uint32_t file_magic = 0;
  uint32_t file_version = 0;
  if (!ReadPod(in, &file_magic) || !ReadPod(in, &file_version)) return false;
  return file_magic == magic && file_version == expected_version;
}

bool ReadHeaderVersion(std::istream& in, uint32_t magic,
                       uint32_t* version_out) {
  uint32_t file_magic = 0;
  if (!ReadPod(in, &file_magic) || !ReadPod(in, version_out)) return false;
  return file_magic == magic;
}

}  // namespace stage
