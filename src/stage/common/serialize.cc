#include "stage/common/serialize.h"

namespace stage {

void WriteHeader(std::ostream& out, uint32_t magic, uint32_t version) {
  WritePod(out, magic);
  WritePod(out, version);
}

bool ReadHeader(std::istream& in, uint32_t magic, uint32_t expected_version) {
  uint32_t file_magic = 0;
  uint32_t file_version = 0;
  if (!ReadPod(in, &file_magic) || !ReadPod(in, &file_version)) return false;
  return file_magic == magic && file_version == expected_version;
}

}  // namespace stage
