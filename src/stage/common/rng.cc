#include "stage/common/rng.h"

#include <cmath>
#include <numbers>

#include "stage/common/macros.h"

namespace stage {

namespace {

// SplitMix64, used to expand the single user seed into xoshiro state.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

uint64_t Rng::NextBelow(uint64_t n) {
  STAGE_CHECK(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - n) % n;
  for (;;) {
    const uint64_t r = NextUint64();
    if (r >= threshold) return r % n;
  }
}

double Rng::NextUniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller: two uniforms -> two independent standard normals.
  double u1 = NextDouble();
  while (u1 <= 1e-300) u1 = NextDouble();
  const double u2 = NextDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_gaussian_ = radius * std::sin(theta);
  has_cached_gaussian_ = true;
  return radius * std::cos(theta);
}

double Rng::NextGaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

double Rng::NextLogNormal(double mu, double sigma) {
  return std::exp(NextGaussian(mu, sigma));
}

double Rng::NextExponential(double rate) {
  STAGE_CHECK(rate > 0.0);
  double u = NextDouble();
  while (u <= 1e-300) u = NextDouble();
  return -std::log(u) / rate;
}

int Rng::NextPoisson(double lambda) {
  STAGE_CHECK(lambda >= 0.0);
  if (lambda == 0.0) return 0;
  if (lambda < 30.0) {
    // Knuth's method.
    const double limit = std::exp(-lambda);
    double product = NextDouble();
    int count = 0;
    while (product > limit) {
      ++count;
      product *= NextDouble();
    }
    return count;
  }
  // Normal approximation for large lambda.
  const double value = NextGaussian(lambda, std::sqrt(lambda));
  return value < 0.0 ? 0 : static_cast<int>(value + 0.5);
}

bool Rng::NextBernoulli(double p) { return NextDouble() < p; }

size_t Rng::NextWeighted(const std::vector<double>& weights) {
  STAGE_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    STAGE_CHECK(w >= 0.0);
    total += w;
  }
  STAGE_CHECK(total > 0.0);
  double target = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;  // Floating-point slack: fall back to the last.
}

double Rng::NextPareto(double x_m, double alpha) {
  STAGE_CHECK(x_m > 0.0 && alpha > 0.0);
  double u = NextDouble();
  while (u <= 1e-300) u = NextDouble();
  return x_m / std::pow(u, 1.0 / alpha);
}

std::vector<size_t> Rng::Permutation(size_t n) {
  std::vector<size_t> indices(n);
  for (size_t i = 0; i < n; ++i) indices[i] = i;
  for (size_t i = n; i > 1; --i) {
    const size_t j = NextBelow(i);
    std::swap(indices[i - 1], indices[j]);
  }
  return indices;
}

}  // namespace stage
