#include "stage/common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <utility>

#include "stage/common/macros.h"

namespace stage {

ThreadPool::ThreadPool(size_t num_threads) {
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      // Drain the queue even when stopping: ParallelFor callers may still
      // be waiting on queued lanes.
      if (tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    tasks_run_.fetch_add(1, std::memory_order_relaxed);
    task();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    STAGE_CHECK_MSG(!stopping_, "Submit on a stopping ThreadPool");
    tasks_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  // The caller is one lane; extra lanes beyond n-1 could never claim an
  // index.
  const size_t helpers = std::min(num_threads(), n - 1);
  if (helpers == 0) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // Completion is tracked per item, not per helper: a queued helper lane
  // that never gets scheduled (every worker busy) cannot stall the caller,
  // because the caller and the lanes that did start claim all n indices
  // between them. Stragglers find the counter exhausted, never touch `fn`,
  // and only drop their reference to the shared state.
  struct ForState {
    std::atomic<size_t> next{0};
    std::atomic<size_t> completed{0};
    std::mutex mutex;
    std::condition_variable done;
  };
  auto state = std::make_shared<ForState>();
  const auto* fn_ptr = &fn;  // Only dereferenced while the caller waits.
  const auto run_lane = [state, fn_ptr, n] {
    size_t i;
    while ((i = state->next.fetch_add(1, std::memory_order_relaxed)) < n) {
      (*fn_ptr)(i);
      if (state->completed.fetch_add(1) + 1 == n) {
        std::lock_guard<std::mutex> lock(state->mutex);
        state->done.notify_all();
      }
    }
  };
  for (size_t h = 0; h < helpers; ++h) Submit(run_lane);
  run_lane();
  std::unique_lock<std::mutex> lock(state->mutex);
  state->done.wait(lock, [&] { return state->completed.load() == n; });
}

size_t ThreadPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tasks_.size();
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool pool(std::max(1u, std::thread::hardware_concurrency()));
  return pool;
}

}  // namespace stage
