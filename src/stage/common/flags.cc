#include "stage/common/flags.h"

#include <algorithm>
#include <cstdlib>

namespace stage {

bool Flags::Parse(int argc, const char* const* argv,
                  const std::vector<std::string>& known, Flags* flags,
                  std::string* error) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      flags->positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const size_t eq = body.find('=');
    const std::string name = eq == std::string::npos ? body : body.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? "true" : body.substr(eq + 1);
    if (std::find(known.begin(), known.end(), name) == known.end()) {
      if (error != nullptr) *error = "unknown flag: --" + name;
      return false;
    }
    flags->values_[name] = value;
  }
  return true;
}

bool Flags::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string Flags::GetString(const std::string& name,
                             const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

int64_t Flags::GetInt(const std::string& name, int64_t fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : std::strtoll(it->second.c_str(),
                                                       nullptr, 10);
}

double Flags::GetDouble(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback
                             : std::strtod(it->second.c_str(), nullptr);
}

bool Flags::GetBool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return it->second != "false" && it->second != "0";
}

}  // namespace stage
