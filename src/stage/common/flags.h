#ifndef STAGE_COMMON_FLAGS_H_
#define STAGE_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace stage {

// Minimal command-line parsing for the CLI tools: positional arguments
// plus `--key=value` / `--switch` flags. Unknown flags are an error so
// typos fail loudly.
class Flags {
 public:
  // Parses argv. `known` lists every accepted flag name (without "--").
  // Returns false (and fills *error) on unknown or malformed flags.
  static bool Parse(int argc, const char* const* argv,
                    const std::vector<std::string>& known, Flags* flags,
                    std::string* error);

  const std::vector<std::string>& positional() const { return positional_; }

  bool Has(const std::string& name) const;
  std::string GetString(const std::string& name,
                        const std::string& fallback) const;
  int64_t GetInt(const std::string& name, int64_t fallback) const;
  double GetDouble(const std::string& name, double fallback) const;
  bool GetBool(const std::string& name, bool fallback) const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace stage

#endif  // STAGE_COMMON_FLAGS_H_
