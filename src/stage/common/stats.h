#ifndef STAGE_COMMON_STATS_H_
#define STAGE_COMMON_STATS_H_

#include <cstddef>
#include <iosfwd>
#include <vector>

namespace stage {

// Numerically stable running mean/variance (Welford's algorithm, [58] in the
// paper). The exec-time cache stores one of these per entry instead of the
// full history of observed latencies (§4.2, Optimization 2).
class Welford {
 public:
  Welford() = default;

  // Incorporates one observation.
  void Add(double value);

  // Number of observations so far.
  size_t count() const { return count_; }

  // Mean of observations; 0 when empty.
  double mean() const { return mean_; }

  // Population variance (divides by n); 0 when fewer than 2 observations.
  double variance() const;

  // Sample variance (divides by n-1); 0 when fewer than 2 observations.
  double sample_variance() const;

  // Exact-state checkpointing (count, mean, M2), so a restored exec-time
  // cache entry continues the same running statistics bit-for-bit.
  void Save(std::ostream& out) const;
  bool Load(std::istream& in);

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

// Returns the q-quantile (q in [0, 1]) of `values` using linear
// interpolation between order statistics. Copies and sorts internally;
// for repeated quantiles of one dataset prefer SortedQuantile.
// Requires a non-empty input.
double Quantile(const std::vector<double>& values, double q);

// Quantile of an already ascending-sorted vector; no copy.
double SortedQuantile(const std::vector<double>& sorted, double q);

// Arithmetic mean. Requires a non-empty input.
double Mean(const std::vector<double>& values);

// Inverse CDF of the standard normal distribution (Acklam's rational
// approximation, |relative error| < 1.15e-9). Requires p in (0, 1).
// Used to turn the local model's (mean, variance) into the confidence
// intervals Redshift's downstream tasks need (paper §2.1, §3).
double NormalQuantile(double p);

}  // namespace stage

#endif  // STAGE_COMMON_STATS_H_
