#ifndef STAGE_COMMON_THREAD_POOL_H_
#define STAGE_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace stage {

// A bounded, reusable worker pool. One process-wide instance (Shared())
// backs both ensemble training and batch inference, replacing the ad-hoc
// per-member std::thread spawns that could oversubscribe the machine when
// several ensembles trained at once.
//
// Thread-safety: Submit and ParallelFor may be called concurrently from any
// thread, including from inside a pool task. Tasks must not throw.
class ThreadPool {
 public:
  // Spawns `num_threads` workers (0 makes ParallelFor run inline).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  // Telemetry: tasks a worker has started executing (lifetime counter; does
  // not include lanes run inline by a ParallelFor caller) and the current
  // backlog of queued-but-unstarted tasks.
  uint64_t tasks_run() const {
    return tasks_run_.load(std::memory_order_relaxed);
  }
  size_t queue_depth() const;

  // Enqueues a fire-and-forget task.
  void Submit(std::function<void()> task);

  // Runs fn(0) .. fn(n-1), returning once every call has finished. Indices
  // are claimed dynamically from a shared counter. The calling thread
  // participates in the work, so ParallelFor makes progress (and cannot
  // deadlock) even when every worker is busy — including when it is called
  // from inside a pool task with all workers occupied.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  // Process-wide pool, sized to the hardware concurrency (at least 1
  // worker). Callers that need a specific width (determinism tests, width
  // sweeps) construct their own pool instead.
  static ThreadPool& Shared();

 private:
  void WorkerLoop();

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> tasks_;
  bool stopping_ = false;
  std::atomic<uint64_t> tasks_run_{0};
  std::vector<std::thread> workers_;
};

}  // namespace stage

#endif  // STAGE_COMMON_THREAD_POOL_H_
