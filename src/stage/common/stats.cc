#include "stage/common/stats.h"

#include <algorithm>
#include <cmath>

#include "stage/common/macros.h"
#include "stage/common/serialize.h"

namespace stage {

void Welford::Add(double value) {
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double Welford::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double Welford::sample_variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

void Welford::Save(std::ostream& out) const {
  WritePod<uint64_t>(out, count_);
  WritePod(out, mean_);
  WritePod(out, m2_);
}

bool Welford::Load(std::istream& in) {
  uint64_t count = 0;
  double mean = 0.0;
  double m2 = 0.0;
  if (!ReadPod(in, &count) || !ReadPod(in, &mean) || !ReadPod(in, &m2)) {
    return false;
  }
  if (!std::isfinite(mean) || !std::isfinite(m2) || m2 < 0.0) return false;
  count_ = static_cast<size_t>(count);
  mean_ = mean;
  m2_ = m2;
  return true;
}

double SortedQuantile(const std::vector<double>& sorted, double q) {
  STAGE_CHECK(!sorted.empty());
  STAGE_CHECK(q >= 0.0 && q <= 1.0);
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double Quantile(const std::vector<double>& values, double q) {
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  return SortedQuantile(sorted, q);
}

double NormalQuantile(double p) {
  STAGE_CHECK(p > 0.0 && p < 1.0);
  // Peter Acklam's inverse-normal-CDF approximation.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  double q, r;
  if (p < p_low) {
    q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= 1.0 - p_low) {
    q = p - 0.5;
    r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
            a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r +
            1.0);
  }
  q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
           c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

double Mean(const std::vector<double>& values) {
  STAGE_CHECK(!values.empty());
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

}  // namespace stage
