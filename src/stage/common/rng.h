#ifndef STAGE_COMMON_RNG_H_
#define STAGE_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace stage {

// Deterministic, fast pseudo-random number generator (xoshiro256++).
// Every stochastic component in the library takes an explicit seed so that
// experiments are exactly reproducible run-to-run.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform 64-bit value.
  uint64_t NextUint64();

  // Uniform in [0, 1).
  double NextDouble();

  // Uniform integer in [0, n). Requires n > 0.
  uint64_t NextBelow(uint64_t n);

  // Uniform in [lo, hi).
  double NextUniform(double lo, double hi);

  // Standard normal via Box-Muller.
  double NextGaussian();

  // Gaussian with the given mean and standard deviation.
  double NextGaussian(double mean, double stddev);

  // Log-normal: exp(N(mu, sigma^2)).
  double NextLogNormal(double mu, double sigma);

  // Exponential with the given rate (mean 1/rate). Requires rate > 0.
  double NextExponential(double rate);

  // Poisson-distributed count (Knuth for small lambda, normal approx above).
  int NextPoisson(double lambda);

  // True with probability p.
  bool NextBernoulli(double p);

  // Samples an index in [0, weights.size()) proportionally to weights.
  // Requires a non-empty vector with non-negative weights summing > 0.
  size_t NextWeighted(const std::vector<double>& weights);

  // Pareto-distributed value with scale x_m > 0 and shape alpha > 0.
  // Heavy-tailed; used for query latency ground truth.
  double NextPareto(double x_m, double alpha);

  // Fisher-Yates shuffle of indices [0, n).
  std::vector<size_t> Permutation(size_t n);

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace stage

#endif  // STAGE_COMMON_RNG_H_
