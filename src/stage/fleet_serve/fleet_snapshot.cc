#include "stage/fleet_serve/fleet_snapshot.h"

#include <cstdio>
#include <sstream>

#include "stage/common/crc32.h"
#include "stage/common/serialize.h"

namespace stage::fleet_serve {

namespace {

constexpr uint32_t kFleetMagic = 0x53464c54;  // "SFLT".
constexpr uint32_t kFleetVersion = 1;

// Fixed sizes written field-by-field (the structs are not written raw, so
// padding can never leak into the format).
constexpr uint64_t kHeaderBytes = 4 * 4 + 8;           // magic..count + crc.
constexpr uint64_t kIndexEntryBytes = 8 + 8 + 8 + 4;   // id, offset, size, crc.

void SetError(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
}

void WriteIndexEntry(std::ostream& out, const FleetSnapshotEntry& entry) {
  WritePod<uint64_t>(out, entry.tenant_id);
  WritePod<uint64_t>(out, entry.offset);
  WritePod<uint64_t>(out, entry.size);
  WritePod<uint32_t>(out, entry.payload_crc);
}

bool ReadIndexEntry(std::istream& in, FleetSnapshotEntry* entry) {
  return ReadPod(in, &entry->tenant_id) && ReadPod(in, &entry->offset) &&
         ReadPod(in, &entry->size) && ReadPod(in, &entry->payload_crc);
}

}  // namespace

bool WriteFleetSnapshotFile(
    const std::string& path,
    const std::vector<std::pair<TenantId, std::string>>& payloads,
    std::string* error) {
  // Lay the index out first: payload offsets are fully determined by the
  // (fixed-size) header + index lengths and the running payload sizes.
  std::vector<FleetSnapshotEntry> entries;
  entries.reserve(payloads.size());
  uint64_t offset = kHeaderBytes + payloads.size() * kIndexEntryBytes;
  for (const auto& [tenant, payload] : payloads) {
    FleetSnapshotEntry entry;
    entry.tenant_id = tenant;
    entry.offset = offset;
    entry.size = payload.size();
    entry.payload_crc = Crc32(payload);
    entries.push_back(entry);
    offset += sizeof(uint64_t) + payload.size();  // Length prefix + bytes.
  }
  std::ostringstream index_stream;
  for (const FleetSnapshotEntry& entry : entries) {
    WriteIndexEntry(index_stream, entry);
  }
  const std::string index_bytes = index_stream.str();

  const std::string tmp_path = path + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      SetError(error, "cannot open " + tmp_path + " for writing");
      return false;
    }
    WritePod(out, kFleetMagic);
    WritePod(out, kFleetVersion);
    WritePod(out, static_cast<uint32_t>(ckpt::SnapshotKind::kFleetService));
    WritePod<uint64_t>(out, payloads.size());
    WritePod(out, Crc32(index_bytes));
    out.write(index_bytes.data(),
              static_cast<std::streamsize>(index_bytes.size()));
    for (const auto& [tenant, payload] : payloads) {
      WritePod<uint64_t>(out, payload.size());
      out.write(payload.data(),
                static_cast<std::streamsize>(payload.size()));
    }
    out.flush();
    if (!out) {
      SetError(error, "write to " + tmp_path + " failed");
      std::remove(tmp_path.c_str());
      return false;
    }
  }
  // Atomic publication: readers see the old complete snapshot or the new
  // complete one, never a torn file.
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    SetError(error, "rename " + tmp_path + " -> " + path + " failed");
    std::remove(tmp_path.c_str());
    return false;
  }
  return true;
}

bool FleetSnapshotReader::Open(const std::string& path, std::string* error) {
  entries_.clear();
  file_.close();
  file_.clear();
  file_.open(path, std::ios::binary);
  if (!file_) {
    SetError(error, "cannot open " + path);
    return false;
  }
  uint32_t magic = 0;
  uint32_t version = 0;
  uint32_t kind = 0;
  uint64_t count = 0;
  uint32_t index_crc = 0;
  if (!ReadPod(file_, &magic) || !ReadPod(file_, &version) ||
      !ReadPod(file_, &kind) || !ReadPod(file_, &count) ||
      !ReadPod(file_, &index_crc)) {
    SetError(error, "fleet snapshot header truncated");
    file_.close();
    return false;
  }
  if (magic != kFleetMagic) {
    SetError(error, "not a fleet snapshot (bad magic)");
    file_.close();
    return false;
  }
  if (version != kFleetVersion) {
    SetError(error, "unsupported fleet snapshot version");
    file_.close();
    return false;
  }
  if (kind != static_cast<uint32_t>(ckpt::SnapshotKind::kFleetService)) {
    SetError(error,
             std::string("fleet snapshot kind mismatch: expected ") +
                 std::string(ckpt::SnapshotKindName(
                     ckpt::SnapshotKind::kFleetService)));
    file_.close();
    return false;
  }
  // Bound the index size against the file before allocating.
  const std::optional<uint64_t> remaining = RemainingBytes(file_);
  if (remaining && count > *remaining / kIndexEntryBytes) {
    SetError(error, "fleet snapshot index truncated");
    file_.close();
    return false;
  }
  std::string index_bytes(count * kIndexEntryBytes, '\0');
  file_.read(index_bytes.data(),
             static_cast<std::streamsize>(index_bytes.size()));
  if (!file_) {
    SetError(error, "fleet snapshot index truncated");
    file_.close();
    return false;
  }
  if (Crc32(index_bytes) != index_crc) {
    SetError(error, "fleet snapshot index checksum mismatch");
    file_.close();
    return false;
  }
  std::istringstream index_stream(index_bytes);
  entries_.resize(count);
  for (FleetSnapshotEntry& entry : entries_) {
    if (!ReadIndexEntry(index_stream, &entry)) {
      SetError(error, "fleet snapshot index unparsable");
      entries_.clear();
      file_.close();
      return false;
    }
  }
  return true;
}

bool FleetSnapshotReader::Contains(TenantId tenant) const {
  for (const FleetSnapshotEntry& entry : entries_) {
    if (entry.tenant_id == tenant) return true;
  }
  return false;
}

bool FleetSnapshotReader::ReadTenant(TenantId tenant, std::string* payload,
                                     std::string* error) {
  if (!file_.is_open()) {
    SetError(error, "fleet snapshot not open");
    return false;
  }
  const FleetSnapshotEntry* entry = nullptr;
  for (const FleetSnapshotEntry& candidate : entries_) {
    if (candidate.tenant_id == tenant) {
      entry = &candidate;
      break;
    }
  }
  if (entry == nullptr) {
    SetError(error,
             "tenant " + std::to_string(tenant) + " not in fleet snapshot");
    return false;
  }
  file_.clear();
  file_.seekg(static_cast<std::streamoff>(entry->offset));
  uint64_t prefixed_size = 0;
  if (!ReadPod(file_, &prefixed_size)) {
    SetError(error, "fleet snapshot payload prefix truncated");
    return false;
  }
  if (prefixed_size != entry->size) {
    SetError(error, "fleet snapshot payload length prefix disagrees with "
                    "index");
    return false;
  }
  std::string bytes(entry->size, '\0');
  file_.read(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!file_) {
    SetError(error, "fleet snapshot payload truncated");
    return false;
  }
  if (Crc32(bytes) != entry->payload_crc) {
    SetError(error, "fleet snapshot payload checksum mismatch");
    return false;
  }
  *payload = std::move(bytes);
  return true;
}

}  // namespace stage::fleet_serve
