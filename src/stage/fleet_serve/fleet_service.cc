#include "stage/fleet_serve/fleet_service.h"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <utility>

#include "stage/common/macros.h"

namespace stage::fleet_serve {

namespace {

uint64_t ElapsedNanos(std::chrono::steady_clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

void SetError(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
}

const FleetServiceConfig& Validated(const FleetServiceConfig& config) {
  const std::string error = config.Validate();
  STAGE_CHECK_MSG(error.empty(), error.c_str());
  return config;
}

}  // namespace

std::string FleetServiceConfig::Validate() const {
  if (async_retrain && max_concurrent_trainings == 0) {
    return "max_concurrent_trainings must be positive with async_retrain";
  }
  return stack.Validate();
}

FleetService::FleetService(const FleetServiceConfig& config,
                           const FleetServiceOptions& options)
    : config_(Validated(config)),
      options_(options),
      budget_(config.resident_bytes_budget) {
  if (options_.metrics != nullptr) RegisterFleetMetrics();
  if (config_.async_retrain) {
    train_workers_.reserve(config_.max_concurrent_trainings);
    for (size_t i = 0; i < config_.max_concurrent_trainings; ++i) {
      train_workers_.emplace_back([this] { TrainWorkerLoop(); });
    }
  }
}

FleetService::~FleetService() {
  {
    std::lock_guard<std::mutex> lock(train_mutex_);
    stopping_ = true;
  }
  train_cv_.notify_all();
  for (std::thread& worker : train_workers_) worker.join();
  // Drop every render-time callback before registry state dies: fleet-level
  // tags, then each tenant's owner tag. (TenantStacks unregister their own
  // per-stack families in their destructors.)
  if (options_.metrics != nullptr) {
    options_.metrics->UnregisterAll(this);
    for (const auto& [id, entry] : tenants_) {
      options_.metrics->UnregisterAll(entry.get());
    }
  }
}

void FleetService::RegisterFleetMetrics() {
  obs::MetricsRegistry* registry = options_.metrics;
  const std::string& prefix = options_.metrics_prefix;
  registry->RegisterCounterCallback(this, prefix + "fleet_evictions_total",
                                    [this] { return evictions(); });
  registry->RegisterCounterCallback(
      this, prefix + "fleet_cold_activations_total",
      [this] { return cold_activations(); });
  registry->RegisterGaugeCallback(
      this, prefix + "fleet_resident_bytes",
      [this] { return static_cast<double>(ResidentBytes()); });
  registry->RegisterGaugeCallback(
      this, prefix + "fleet_warm_tenants",
      [this] { return static_cast<double>(WarmCount()); });
  registry->RegisterGaugeCallback(
      this, prefix + "fleet_tenants",
      [this] { return static_cast<double>(TenantCount()); });
  const std::array<std::pair<size_t, const char*>, 3> slots = {{
      {kActivationFromParked, "parked"},
      {kActivationFromFile, "file"},
      {kActivationFresh, "fresh"},
  }};
  for (const auto& [slot, label] : slots) {
    registry->RegisterHistogramCallback(
        this,
        prefix + "fleet_activation_latency_ns{source=\"" +
            std::string(label) + "\"}",
        [this, slot = slot] {
          return activation_latency_.histogram_snapshot(slot);
        });
  }
}

void FleetService::RegisterTenantMetrics(Entry& entry) {
  // Called during the activation transition, OUTSIDE registry_mutex_ (the
  // obs registry lock must stay a leaf). The callbacks read only entry
  // atomics, and the entry outlives the service, so a scrape can never
  // race dead state; UnregisterAll(&entry) at eviction removes the tag.
  obs::MetricsRegistry* registry = options_.metrics;
  if (registry == nullptr) return;
  const std::string label =
      "{tenant=\"" + std::to_string(entry.id) + "\"}";
  const std::string& prefix = options_.metrics_prefix;
  registry->RegisterCounterCallback(
      &entry, prefix + "tenant_predictions_total" + label, [&entry] {
        return entry.predictions.load(std::memory_order_relaxed);
      });
  registry->RegisterGaugeCallback(
      &entry, prefix + "tenant_resident_bytes" + label, [&entry] {
        return static_cast<double>(
            entry.resident_bytes.load(std::memory_order_relaxed));
      });
  registry->RegisterCounterCallback(
      &entry, prefix + "tenant_cold_activations_total" + label, [&entry] {
        return entry.tenant_cold_activations.load(std::memory_order_relaxed);
      });
}

void FleetService::RegisterTenant(TenantId tenant,
                                  const core::StagePredictorOptions& options,
                                  const TenantStackConfig* config_override) {
  auto entry = std::make_unique<Entry>();
  entry->id = tenant;
  entry->config = config_override != nullptr ? *config_override : config_.stack;
  const std::string error = entry->config.Validate();
  STAGE_CHECK_MSG(error.empty(), error.c_str());
  entry->options = options;
  std::unique_lock<std::shared_mutex> lock(registry_mutex_);
  const bool inserted = tenants_.emplace(tenant, std::move(entry)).second;
  STAGE_CHECK_MSG(inserted, "tenant already registered");
  tenant_count_.fetch_add(1, std::memory_order_relaxed);
}

bool FleetService::IsRegistered(TenantId tenant) const {
  std::shared_lock<std::shared_mutex> lock(registry_mutex_);
  return tenants_.find(tenant) != tenants_.end();
}

std::vector<TenantId> FleetService::TenantIds() const {
  std::shared_lock<std::shared_mutex> lock(registry_mutex_);
  std::vector<TenantId> ids;
  ids.reserve(tenants_.size());
  for (const auto& [id, entry] : tenants_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

bool FleetService::IsWarm(TenantId tenant) const {
  std::shared_lock<std::shared_mutex> lock(registry_mutex_);
  const Entry* entry = FindEntryLocked(tenant);
  return entry != nullptr && entry->stack != nullptr;
}

FleetService::Entry* FleetService::FindEntryLocked(TenantId tenant) const {
  const auto it = tenants_.find(tenant);
  return it == tenants_.end() ? nullptr : it->second.get();
}

FleetService::OpGuard FleetService::AcquireWarm(TenantId tenant,
                                                bool* cold_activated) {
  {
    // Warm fast path: a shared lock, a pointer copy, an op pin, and an
    // LRU-tick store. `stack` non-null under any flavor of the lock means
    // no transition is touching the entry (transitions null the pointer
    // and set the flag in one exclusive critical section).
    std::shared_lock<std::shared_mutex> lock(registry_mutex_);
    Entry* entry = FindEntryLocked(tenant);
    STAGE_CHECK_MSG(entry != nullptr, "unknown tenant");
    if (entry->stack != nullptr) {
      entry->active_ops.fetch_add(1, std::memory_order_acquire);
      entry->last_used_tick.store(
          lru_clock_.fetch_add(1, std::memory_order_relaxed) + 1,
          std::memory_order_relaxed);
      return OpGuard(entry->stack, entry);
    }
  }
  // Cold path: wait out any in-flight transition, then either ride a
  // concurrent activation's result or own the activation ourselves.
  std::unique_lock<std::shared_mutex> lock(registry_mutex_);
  Entry* entry = FindEntryLocked(tenant);
  STAGE_CHECK_MSG(entry != nullptr, "unknown tenant");
  while (entry->transitioning) transition_cv_.wait(lock);
  std::shared_ptr<TenantStack> stack = entry->stack;
  if (stack == nullptr) {
    stack = ActivateLocked(lock, *entry);
    if (cold_activated != nullptr) *cold_activated = true;
  }
  entry->active_ops.fetch_add(1, std::memory_order_acquire);
  entry->last_used_tick.store(
      lru_clock_.fetch_add(1, std::memory_order_relaxed) + 1,
      std::memory_order_relaxed);
  return OpGuard(std::move(stack), entry);
}

FleetService::OpGuard FleetService::TryAcquireWarm(TenantId tenant) {
  std::shared_lock<std::shared_mutex> lock(registry_mutex_);
  Entry* entry = FindEntryLocked(tenant);
  if (entry == nullptr || entry->stack == nullptr) return OpGuard();
  entry->active_ops.fetch_add(1, std::memory_order_acquire);
  entry->last_used_tick.store(
      lru_clock_.fetch_add(1, std::memory_order_relaxed) + 1,
      std::memory_order_relaxed);
  return OpGuard(entry->stack, entry);
}

std::shared_ptr<TenantStack> FleetService::ActivateLocked(
    std::unique_lock<std::shared_mutex>& lock, Entry& entry) {
  STAGE_CHECK(!entry.transitioning && entry.stack == nullptr);
  entry.transitioning = true;
  lock.unlock();
  // The transition flag makes this thread the exclusive owner of the
  // entry's parked fields until it clears the flag.
  const auto start = std::chrono::steady_clock::now();
  auto stack = std::make_shared<TenantStack>(entry.config, entry.options);
  size_t latency_slot = kActivationFresh;
  if (entry.has_parked) {
    std::istringstream in(entry.parked_state);
    std::string error;
    const bool ok = stack->LoadState(in, &error);
    STAGE_CHECK_MSG(ok, error.c_str());
    stack->SeedSourceCounts(entry.parked_counts);
    std::string().swap(entry.parked_state);  // Free the parked bytes.
    entry.has_parked = false;
    latency_slot = kActivationFromParked;
  } else {
    std::lock_guard<std::mutex> snapshot_lock(snapshot_mutex_);
    if (has_snapshot_ && snapshot_.Contains(entry.id)) {
      // The whole point of the indexed layout: ONE tenant's payload is
      // seeked and read; the rest of the fleet file is never touched.
      std::string payload;
      std::string error;
      bool ok = snapshot_.ReadTenant(entry.id, &payload, &error);
      STAGE_CHECK_MSG(ok, error.c_str());
      std::istringstream in(payload);
      ok = stack->LoadState(in, &error);
      STAGE_CHECK_MSG(ok, error.c_str());
      latency_slot = kActivationFromFile;
    }
  }
  const size_t fresh_bytes = stack->ApproxResidentBytes();
  activation_latency_.Record(latency_slot, ElapsedNanos(start));
  cold_activations_.fetch_add(1, std::memory_order_relaxed);
  entry.tenant_cold_activations.fetch_add(1, std::memory_order_relaxed);
  RegisterTenantMetrics(entry);
  lock.lock();
  entry.stack = stack;
  entry.transitioning = false;
  warm_count_.fetch_add(1, std::memory_order_relaxed);
  AccountResidentBytes(entry, fresh_bytes);
  transition_cv_.notify_all();
  return stack;
}

bool FleetService::EvictLocked(std::unique_lock<std::shared_mutex>& lock,
                               Entry& entry, std::string* error) {
  if (entry.stack == nullptr) {
    SetError(error, "tenant is not warm");
    return false;
  }
  if (entry.pinned) {
    SetError(error, "tenant is pinned");
    return false;
  }
  if (entry.active_ops.load(std::memory_order_acquire) != 0) {
    SetError(error, "tenant has operations in flight");
    return false;
  }
  // Detach under the exclusive lock: from here no new op can pin the
  // stack (AcquireWarm sees a cold entry and waits on the transition), and
  // active_ops == 0 says no old op still holds it — this thread owns the
  // only reference that matters.
  entry.transitioning = true;
  std::shared_ptr<TenantStack> stack = std::move(entry.stack);
  entry.stack = nullptr;
  lock.unlock();

  std::ostringstream out;
  std::string save_error;
  const bool saved = stack->SaveState(out, &save_error);
  STAGE_CHECK_MSG(saved, save_error.c_str());
  const auto counts = stack->SourceCounts();
  stack.reset();  // Free the live stack before re-entering the lock.
  // Drop the tenant's owner-tagged callbacks while we exclusively own the
  // transition (obs registry lock stays a leaf; see RegisterTenantMetrics).
  if (options_.metrics != nullptr) options_.metrics->UnregisterAll(&entry);

  lock.lock();
  entry.parked_state = std::move(out).str();
  entry.parked_counts = counts;
  entry.has_parked = true;
  entry.transitioning = false;
  warm_count_.fetch_sub(1, std::memory_order_relaxed);
  AccountResidentBytes(entry, 0);
  evictions_.fetch_add(1, std::memory_order_relaxed);
  transition_cv_.notify_all();
  return true;
}

void FleetService::EnforceBudgetLocked(
    std::unique_lock<std::shared_mutex>& lock, size_t budget) {
  while (budget != 0 &&
         resident_bytes_.load(std::memory_order_relaxed) > budget) {
    // LRU victim: the least recently used warm entry that is idle,
    // unpinned, and not mid-transition. Rescan each round — EvictLocked
    // drops the lock, so the candidate set can shift underneath us.
    Entry* victim = nullptr;
    uint64_t victim_tick = 0;
    for (const auto& [id, entry] : tenants_) {
      if (entry->stack == nullptr || entry->pinned || entry->transitioning) {
        continue;
      }
      if (entry->active_ops.load(std::memory_order_acquire) != 0) continue;
      const uint64_t tick =
          entry->last_used_tick.load(std::memory_order_relaxed);
      if (victim == nullptr || tick < victim_tick) {
        victim = entry.get();
        victim_tick = tick;
      }
    }
    if (victim == nullptr) return;  // Everything left is busy or pinned.
    if (!EvictLocked(lock, *victim, nullptr)) return;
  }
}

void FleetService::MaybeEnforceBudget() {
  const size_t budget = budget_.load(std::memory_order_relaxed);
  if (budget == 0 ||
      resident_bytes_.load(std::memory_order_relaxed) <= budget) {
    return;
  }
  std::unique_lock<std::shared_mutex> lock(registry_mutex_);
  EnforceBudgetLocked(lock, budget_.load(std::memory_order_relaxed));
}

void FleetService::AccountResidentBytes(Entry& entry, size_t fresh_bytes) {
  const size_t old_bytes =
      entry.resident_bytes.exchange(fresh_bytes, std::memory_order_relaxed);
  // Unsigned wraparound makes the delta add correct in both directions.
  resident_bytes_.fetch_add(fresh_bytes - old_bytes,
                            std::memory_order_relaxed);
}

core::Prediction FleetService::Predict(TenantId tenant,
                                       const core::QueryContext& query,
                                       bool* cold_activated) {
  core::Prediction out;
  {
    OpGuard guard = AcquireWarm(tenant, cold_activated);
    out = guard.stack->Predict(query);
    guard.entry->predictions.fetch_add(1, std::memory_order_relaxed);
  }
  MaybeEnforceBudget();
  return out;
}

std::vector<core::Prediction> FleetService::PredictBatch(
    TenantId tenant, std::span<const core::QueryContext> queries,
    bool* cold_activated) {
  std::vector<core::Prediction> out;
  {
    OpGuard guard = AcquireWarm(tenant, cold_activated);
    out = guard.stack->PredictBatch(queries);
    guard.entry->predictions.fetch_add(queries.size(),
                                       std::memory_order_relaxed);
  }
  MaybeEnforceBudget();
  return out;
}

core::Prediction FleetService::PredictTraced(TenantId tenant,
                                             const core::QueryContext& query,
                                             obs::PredictionTrace* trace,
                                             bool* cold_activated) {
  core::Prediction out;
  {
    OpGuard guard = AcquireWarm(tenant, cold_activated);
    out = guard.stack->PredictTraced(query, trace);
    guard.entry->predictions.fetch_add(1, std::memory_order_relaxed);
  }
  MaybeEnforceBudget();
  return out;
}

void FleetService::Observe(TenantId tenant, const core::QueryContext& query,
                           double exec_seconds) {
  {
    OpGuard guard = AcquireWarm(tenant, nullptr);
    const bool wants_retrain = guard.stack->Observe(
        query, exec_seconds, /*inline_retrain=*/!config_.async_retrain);
    AccountResidentBytes(*guard.entry, guard.stack->ApproxResidentBytes());
    if (wants_retrain) ScheduleRetrain(tenant);
  }
  MaybeEnforceBudget();
}

std::shared_ptr<TenantStack> FleetService::PinTenant(TenantId tenant) {
  OpGuard guard = AcquireWarm(tenant, nullptr);
  {
    std::unique_lock<std::shared_mutex> lock(registry_mutex_);
    guard.entry->pinned = true;
  }
  return guard.stack;
}

bool FleetService::EvictTenant(TenantId tenant, std::string* error) {
  std::unique_lock<std::shared_mutex> lock(registry_mutex_);
  Entry* entry = FindEntryLocked(tenant);
  if (entry == nullptr) {
    SetError(error, "unknown tenant");
    return false;
  }
  while (entry->transitioning) transition_cv_.wait(lock);
  return EvictLocked(lock, *entry, error);
}

bool FleetService::AttachSnapshot(const std::string& path,
                                  std::string* error) {
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  if (!snapshot_.Open(path, error)) return false;
  has_snapshot_ = true;
  return true;
}

bool FleetService::SaveSnapshot(const std::string& path, std::string* error) {
  std::unique_lock<std::shared_mutex> lock(registry_mutex_);
  // Wait out in-flight transitions so every tenant is cleanly warm or
  // cleanly parked for the duration of the cut (the exclusive lock then
  // blocks new transitions; in-flight ops on warm stacks are fine — each
  // stack's SaveState pins its own consistent Observe boundary).
  for (bool any = true; any;) {
    any = false;
    for (const auto& [id, entry] : tenants_) {
      if (entry->transitioning) {
        any = true;
        transition_cv_.wait(lock);
        break;
      }
    }
  }
  std::vector<std::pair<TenantId, std::string>> payloads;
  payloads.reserve(tenants_.size());
  std::vector<TenantId> ids;
  ids.reserve(tenants_.size());
  for (const auto& [id, entry] : tenants_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  for (const TenantId id : ids) {
    Entry* entry = FindEntryLocked(id);
    if (entry->stack != nullptr) {
      std::ostringstream out;
      if (!entry->stack->SaveState(out, error)) return false;
      payloads.emplace_back(id, std::move(out).str());
    } else if (entry->has_parked) {
      payloads.emplace_back(id, entry->parked_state);
    } else {
      std::lock_guard<std::mutex> snapshot_lock(snapshot_mutex_);
      if (has_snapshot_ && snapshot_.Contains(id)) {
        std::string payload;
        if (!snapshot_.ReadTenant(id, &payload, error)) return false;
        payloads.emplace_back(id, std::move(payload));
      }
      // Never-activated tenants without snapshot state stay out of the
      // file: they cold-activate fresh, which is what they are.
    }
  }
  return WriteFleetSnapshotFile(path, payloads, error);
}

void FleetService::ScheduleRetrain(TenantId tenant) {
  bool notify = false;
  {
    std::lock_guard<std::mutex> lock(train_mutex_);
    if (train_running_.count(tenant) != 0) {
      // Coalesce into exactly one follow-up run after the current one.
      train_rerequested_.insert(tenant);
    } else if (train_queued_.insert(tenant).second) {
      train_queue_.push_back(tenant);
      notify = true;
    }
  }
  if (notify) train_cv_.notify_one();
}

void FleetService::TrainWorkerLoop() {
  std::unique_lock<std::mutex> lock(train_mutex_);
  while (true) {
    train_cv_.wait(lock,
                   [this] { return stopping_ || !train_queue_.empty(); });
    if (stopping_) return;
    const TenantId tenant = train_queue_.front();
    train_queue_.pop_front();
    train_queued_.erase(tenant);
    train_running_.insert(tenant);
    ++trainings_in_flight_;
    lock.unlock();
    {
      // A tenant evicted between scheduling and execution stays parked:
      // waking it just to train would defeat the eviction. Its cadence
      // re-requests naturally once it is warm and observing again.
      OpGuard guard = TryAcquireWarm(tenant);
      if (guard.stack != nullptr) {
        guard.stack->TrainOnce();
        AccountResidentBytes(*guard.entry,
                             guard.stack->ApproxResidentBytes());
      }
    }
    MaybeEnforceBudget();
    lock.lock();
    train_running_.erase(tenant);
    --trainings_in_flight_;
    if (train_rerequested_.erase(tenant) != 0) {
      if (train_queued_.insert(tenant).second) {
        train_queue_.push_back(tenant);
        train_cv_.notify_one();
      }
    }
    train_idle_cv_.notify_all();
  }
}

void FleetService::WaitForRetrain() {
  if (!config_.async_retrain) return;
  std::unique_lock<std::mutex> lock(train_mutex_);
  train_idle_cv_.wait(lock, [this] {
    return train_queue_.empty() && trainings_in_flight_ == 0;
  });
}

void FleetService::SetResidentBytesBudget(size_t budget) {
  budget_.store(budget, std::memory_order_relaxed);
  config_.resident_bytes_budget = budget;
  MaybeEnforceBudget();
}

std::array<uint64_t, core::kNumPredictionSources> FleetService::SourceCounts(
    TenantId tenant) const {
  std::unique_lock<std::shared_mutex> lock(registry_mutex_);
  Entry* entry = FindEntryLocked(tenant);
  STAGE_CHECK_MSG(entry != nullptr, "unknown tenant");
  while (entry->transitioning) transition_cv_.wait(lock);
  if (entry->stack != nullptr) return entry->stack->SourceCounts();
  if (entry->has_parked) return entry->parked_counts;
  return {};
}

uint64_t FleetService::TotalPredictions(TenantId tenant) const {
  const auto counts = SourceCounts(tenant);
  uint64_t total = 0;
  for (const uint64_t count : counts) total += count;
  return total;
}

}  // namespace stage::fleet_serve
