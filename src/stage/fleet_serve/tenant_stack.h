#ifndef STAGE_FLEET_SERVE_TENANT_STACK_H_
#define STAGE_FLEET_SERVE_TENANT_STACK_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "stage/calib/conformal.h"
#include "stage/core/predictor.h"
#include "stage/core/stage_predictor.h"
#include "stage/local/local_model.h"
#include "stage/local/training_pool.h"
#include "stage/metrics/latency_recorder.h"
#include "stage/obs/metrics.h"
#include "stage/obs/trace.h"
#include "stage/serve/sharded_cache.h"

namespace stage::fleet_serve {

// Per-tenant knobs: one instance's predictor stack shape. (The retrain
// execution mode — inline vs background — is a fleet-level policy and lives
// in FleetServiceConfig / PredictionServiceConfig, not here.)
struct TenantStackConfig {
  core::StagePredictorConfig predictor;

  // Shards of the exec-time cache front. 1 shard reproduces the
  // single-threaded predictor bit-for-bit (same eviction order); more
  // shards let concurrent lookups proceed without serializing.
  size_t cache_shards = 8;

  // Empty when usable, else a description of the first problem.
  std::string Validate() const;
};

// One tenant's complete predictor stack: sharded exec-time cache, training
// pool, double-buffered local-model snapshot, retrain cadence, and
// attribution/latency telemetry. This is the former PredictionService with
// its thread ripped out: the stack never owns a worker — it *reports* when
// the §4.3 cadence wants a retrain and leaves scheduling to its owner
// (FleetService's fairness-capped executor, or an inline call for
// deterministic replay).
//
// Concurrency contract (unchanged from the old service):
//  * Predict / PredictBatch / PredictTraced are const, never block on
//    training, and are safe against each other and against Observe.
//  * Observe is serialized internally (multiple writer sessions are safe).
//  * SaveState pauses writers (not readers) for a consistent cut; LoadState
//    must not race anything — restore before serving starts.
class TenantStack {
 public:
  // `options` collaborators are borrowed and must outlive the stack. When
  // options.metrics is set the full per-stack metric families register
  // under options.metrics_prefix (and unregister in the destructor).
  explicit TenantStack(const TenantStackConfig& config,
                       const core::StagePredictorOptions& options = {});
  ~TenantStack();

  TenantStack(const TenantStack&) = delete;
  TenantStack& operator=(const TenantStack&) = delete;

  core::Prediction Predict(const core::QueryContext& query) const;
  std::vector<core::Prediction> PredictBatch(
      std::span<const core::QueryContext> queries) const;

  // Predict with the routing decision recorded into `trace` (same contract
  // as StagePredictor::PredictTraced, plus the cache shard the key mapped
  // to). `trace` may be null, degrading to Predict.
  core::Prediction PredictTraced(const core::QueryContext& query,
                                 obs::PredictionTrace* trace) const;

  // Records an executed query into the cache (and, on a miss, the pool).
  // When the §4.3 cadence asks for a (re)training: with `inline_retrain`
  // the training runs inside this call — deterministic-replay mode,
  // bit-for-bit StagePredictor::Observe — and false is returned; otherwise
  // the call returns true and the caller owns scheduling TrainOnce().
  bool Observe(const core::QueryContext& query, double exec_seconds,
               bool inline_retrain);

  // Snapshots the pool, trains a fresh model, and publishes it with the
  // double-buffered swap. Safe to run concurrently with Predict/Observe;
  // at most one TrainOnce may run at a time per stack.
  void TrainOnce();

  // Symmetric, status-returning checkpoint contract. SaveState pins one
  // consistent Observe boundary (writers stall, readers do not) and writes
  // the same "SSRV" stream the old PredictionService::SaveCheckpoint
  // produced, so existing kPredictionService snapshots stay loadable.
  // Both return false — filling `error` when non-null — without partially
  // applied state. Telemetry (attribution counters, latency recorder,
  // cache hit/miss counters) deliberately restarts at zero on LoadState:
  // counters describe a serving lifetime, not predictor state. (Fleet
  // eviction preserves them separately via SourceCounts/SeedSourceCounts.)
  bool SaveState(std::ostream& out, std::string* error = nullptr) const;
  bool LoadState(std::istream& in, std::string* error = nullptr);

  // Approximate bytes of resident state (sharded cache + pool + current
  // local model + fixed overhead): the registry's eviction currency. Takes
  // the shard locks briefly; cheap enough for the Observe path.
  size_t ApproxResidentBytes() const;

  // Attribution counters (same semantics as StagePredictor's).
  uint64_t predictions_from(core::PredictionSource source) const {
    return source_counts_[static_cast<int>(source)].load(
        std::memory_order_relaxed);
  }
  uint64_t total_predictions() const;
  std::array<uint64_t, core::kNumPredictionSources> SourceCounts() const;
  // Re-seeds the attribution counters (cold activation of a previously
  // evicted tenant restores its in-process counts). Not thread-safe with
  // concurrent Predicts — call before the stack starts serving.
  void SeedSourceCounts(
      const std::array<uint64_t, core::kNumPredictionSources>& counts);

  // Completed local-model trainings.
  int trainings() const { return trainings_.load(std::memory_order_relaxed); }

  // Current §4.8 conformal sigma correction: 1.0 when
  // predictor.calibrate_uncertainty is off or the window hasn't filled.
  // Lock-free (one atomic load), safe against concurrent Observes.
  double conformal_scale() const {
    return recalibrator_ != nullptr ? recalibrator_->scale() : 1.0;
  }
  // The recalibrator, or nullptr when calibration is off.
  const calib::ConformalRecalibrator* recalibrator() const {
    return recalibrator_.get();
  }

  // Current local-model snapshot (nullptr before the first training). The
  // returned pointer stays valid across later swaps.
  std::shared_ptr<const local::LocalModel> local_model_snapshot() const;

  const serve::ShardedExecTimeCache& exec_time_cache() const { return cache_; }
  size_t pool_size() const;

  // Per-source read-path latency/QPS, one slot per PredictionSource.
  const metrics::LatencyRecorder& predict_latency() const {
    return predict_latency_;
  }
  // Slot kNumPredictionSources-aligned names for RenderTable.
  static std::vector<std::string> PredictLatencySlotNames();

  size_t LocalMemoryBytes() const;

 private:
  core::Prediction PredictImpl(const core::QueryContext& query,
                               obs::PredictionTrace* trace) const;
  void RegisterMetrics();
  void PublishModel(std::shared_ptr<const local::LocalModel> fresh);

  TenantStackConfig config_;
  core::StagePredictorOptions options_;  // Borrowed pointers, nullable.

  serve::ShardedExecTimeCache cache_;

  // Write-path state: the pool and retrain bookkeeping, guarded by
  // pool_mutex_ (observe_mutex_ additionally serializes whole Observes so
  // multiple writer sessions keep StagePredictor's sequential semantics).
  // Mutable so the const SaveState can pause writers while it runs.
  mutable std::mutex observe_mutex_;
  mutable std::mutex pool_mutex_;
  local::TrainingPool pool_;
  size_t observed_since_train_ = 0;
  bool first_train_requested_ = false;

  // §4.8 recalibrator, non-null iff predictor.calibrate_uncertainty. The
  // window is mutated only under observe_mutex_; the published scale is an
  // atomic the read path loads lock-free.
  std::unique_ptr<calib::ConformalRecalibrator> recalibrator_;

  // Double-buffered model snapshot: the trainer publishes a fresh model by
  // swapping this pointer; in-flight readers keep the previous buffer alive
  // through their own shared_ptr until they finish with it. model_mutex_
  // guards only the O(1) copy/swap — it is never held while training — so
  // Predict can stall behind a pointer copy at worst, never behind Train.
  // (Deliberately not std::atomic<std::shared_ptr>: libstdc++ implements
  // that with a lock bit ThreadSanitizer cannot see, and the stress tests
  // must run TSan-clean.)
  mutable std::mutex model_mutex_;
  std::shared_ptr<const local::LocalModel> model_;
  std::atomic<int> trainings_{0};

  mutable std::array<std::atomic<uint64_t>, core::kNumPredictionSources>
      source_counts_{};
  mutable metrics::LatencyRecorder predict_latency_{
      core::kNumPredictionSources};
  // Hot-path metric handles, resolved against options_.metrics when set
  // (null members otherwise).
  obs::RoutingMetricSet routing_metrics_;
};

}  // namespace stage::fleet_serve

#endif  // STAGE_FLEET_SERVE_TENANT_STACK_H_
