#ifndef STAGE_FLEET_SERVE_FLEET_SNAPSHOT_H_
#define STAGE_FLEET_SERVE_FLEET_SNAPSHOT_H_

#include <cstdint>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "stage/ckpt/snapshot_file.h"

namespace stage::fleet_serve {

// Fleet tenants are keyed by the same integer ids stage/fleet assigns to
// synthesized instances.
using TenantId = uint64_t;

// The indexed multi-tenant snapshot ("SFLT"): a fleet checkpoint whose
// per-tenant payloads are length-prefixed at offsets recorded in a
// CRC-checked index, so cold activation of one tenant is a header read, an
// index probe, and ONE seek+read of that tenant's payload — never a
// whole-fleet deserialize. Layout:
//
//   u32 magic   "SFLT"
//   u32 version (currently 1)
//   u32 kind    (SnapshotKind::kFleetService — the shared ckpt registry)
//   u64 tenant_count
//   u32 index_crc32            (over the index entry bytes)
//   tenant_count × { u64 tenant_id, u64 offset, u64 size, u32 payload_crc32 }
//   per-tenant payloads, each:  u64 size  +  size bytes
//
// `offset` addresses the payload's length prefix from the start of the
// file; `size`/`payload_crc32` describe the payload bytes (a TenantStack
// "SSRV" stream), so the prefix and the index cross-check each other.
// Files are published tmp-then-rename, same crash-safety contract as
// ckpt::WriteSnapshotFile.

struct FleetSnapshotEntry {
  TenantId tenant_id = 0;
  uint64_t offset = 0;
  uint64_t size = 0;
  uint32_t payload_crc = 0;
};

// Writes a complete fleet snapshot. `payloads` are (tenant, SSRV-stream
// bytes) pairs; index order follows input order. Returns false (filling
// `error` when non-null) without publishing on any failure.
bool WriteFleetSnapshotFile(
    const std::string& path,
    const std::vector<std::pair<TenantId, std::string>>& payloads,
    std::string* error = nullptr);

// Random-access reader over a published fleet snapshot. Construction via
// Open reads and verifies ONLY the header and index (O(tenants) index
// bytes, no payloads); ReadTenant then seeks and reads one payload.
class FleetSnapshotReader {
 public:
  // Opens and verifies the header + index. Returns false on any structural
  // problem (bad magic/version/kind, index checksum mismatch, truncation).
  bool Open(const std::string& path, std::string* error = nullptr);

  bool is_open() const { return file_.is_open(); }
  const std::vector<FleetSnapshotEntry>& entries() const { return entries_; }

  // True when the index lists `tenant`.
  bool Contains(TenantId tenant) const;

  // Seeks to `tenant`'s payload and reads exactly it, verifying the length
  // prefix and CRC against the index. Returns false for unknown tenants or
  // corrupt payloads. Not thread-safe (one seek cursor); FleetService
  // serializes activations per snapshot reader.
  bool ReadTenant(TenantId tenant, std::string* payload,
                  std::string* error = nullptr);

 private:
  std::ifstream file_;
  std::vector<FleetSnapshotEntry> entries_;
};

}  // namespace stage::fleet_serve

#endif  // STAGE_FLEET_SERVE_FLEET_SNAPSHOT_H_
