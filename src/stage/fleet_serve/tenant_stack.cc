#include "stage/fleet_serve/tenant_stack.h"

#include <chrono>
#include <utility>

#include "stage/calib/calibration.h"
#include "stage/common/macros.h"
#include "stage/common/serialize.h"
#include "stage/common/thread_pool.h"

namespace stage::fleet_serve {

namespace {

uint64_t ElapsedNanos(std::chrono::steady_clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

void SetError(std::string* error, const char* message) {
  if (error != nullptr) *error = message;
}

// Validates before any member construction (config_ initializes first), so
// a bad config reports Validate()'s message instead of tripping an internal
// check deep inside a member constructor.
const TenantStackConfig& Validated(const TenantStackConfig& config) {
  const std::string error = config.Validate();
  STAGE_CHECK_MSG(error.empty(), error.c_str());
  return config;
}

}  // namespace

std::string TenantStackConfig::Validate() const {
  if (cache_shards == 0) return "cache_shards must be positive";
  return predictor.Validate();
}

TenantStack::TenantStack(const TenantStackConfig& config,
                         const core::StagePredictorOptions& options)
    : config_(Validated(config)),
      options_(options),
      cache_(serve::ShardedExecTimeCacheConfig{config.predictor.cache,
                                               config.cache_shards}),
      pool_(config.predictor.pool) {
  if (config_.predictor.calibrate_uncertainty) {
    recalibrator_ = std::make_unique<calib::ConformalRecalibrator>(
        config_.predictor.conformal);
  }
  if (options_.metrics != nullptr) RegisterMetrics();
}

TenantStack::~TenantStack() {
  // Drop render-time callbacks before any member state dies: a scrape
  // racing destruction must never read a dead cache or pool.
  if (options_.metrics != nullptr) options_.metrics->UnregisterAll(this);
}

void TenantStack::RegisterMetrics() {
  obs::MetricsRegistry* registry = options_.metrics;
  const std::string& prefix = options_.metrics_prefix;
  // Escalations + uncertainty come from the hot-path metric set; per-stage
  // latency is already measured by predict_latency_, exposed below as
  // histogram callbacks (with_latency=false avoids a duplicate family).
  routing_metrics_ =
      obs::RoutingMetricSet::Create(registry, prefix, /*with_latency=*/false);
  for (int i = 0; i < core::kNumPredictionSources; ++i) {
    const auto source = static_cast<core::PredictionSource>(i);
    const std::string label =
        "{stage=\"" + std::string(core::PredictionSourceName(source)) + "\"}";
    registry->RegisterCounterCallback(
        this, prefix + "predictions_total" + label, [this, i] {
          return source_counts_[i].load(std::memory_order_relaxed);
        });
    registry->RegisterHistogramCallback(
        this, prefix + "predict_latency_ns" + label, [this, i] {
          return predict_latency_.histogram_snapshot(static_cast<size_t>(i));
        });
  }
  registry->RegisterCounterCallback(this, prefix + "cache_hits_total",
                                    [this] { return cache_.hits(); });
  registry->RegisterCounterCallback(this, prefix + "cache_misses_total",
                                    [this] { return cache_.misses(); });
  registry->RegisterCounterCallback(this, prefix + "cache_evictions_total",
                                    [this] { return cache_.evictions(); });
  for (size_t shard = 0; shard < cache_.num_shards(); ++shard) {
    const std::string label = "{shard=\"" + std::to_string(shard) + "\"}";
    registry->RegisterCounterCallback(
        this, prefix + "cache_shard_hits_total" + label,
        [this, shard] { return cache_.shard_stats(shard).hits; });
    registry->RegisterCounterCallback(
        this, prefix + "cache_shard_misses_total" + label,
        [this, shard] { return cache_.shard_stats(shard).misses; });
    registry->RegisterCounterCallback(
        this, prefix + "cache_shard_evictions_total" + label,
        [this, shard] { return cache_.shard_stats(shard).evictions; });
    registry->RegisterGaugeCallback(
        this, prefix + "cache_shard_entries" + label, [this, shard] {
          return static_cast<double>(cache_.shard_stats(shard).entries);
        });
  }
  registry->RegisterGaugeCallback(
      this, prefix + "cache_entries",
      [this] { return static_cast<double>(cache_.size()); });
  registry->RegisterGaugeCallback(
      this, prefix + "pool_entries",
      [this] { return static_cast<double>(pool_size()); });
  registry->RegisterGaugeCallback(
      this, prefix + "resident_memory_bytes",
      [this] { return static_cast<double>(LocalMemoryBytes()); });
  registry->RegisterCounterCallback(
      this, prefix + "local_trainings_total",
      [this] { return static_cast<uint64_t>(trainings()); });
  if (recalibrator_ != nullptr) {
    // Atomic reads only: a scrape must stay TSan-clean against a
    // concurrent Observe mutating the window.
    registry->RegisterGaugeCallback(this, prefix + "conformal_scale", [this] {
      return recalibrator_->scale();
    });
    registry->RegisterGaugeCallback(
        this, prefix + "conformal_window_size", [this] {
          return static_cast<double>(recalibrator_->window_size());
        });
    registry->RegisterCounterCallback(
        this, prefix + "conformal_observations_total",
        [this] { return recalibrator_->observations(); });
  }
  registry->RegisterGaugeCallback(
      this, prefix + "threadpool_queue_depth", [] {
        return static_cast<double>(ThreadPool::Shared().queue_depth());
      });
  registry->RegisterCounterCallback(
      this, prefix + "threadpool_tasks_total",
      [] { return ThreadPool::Shared().tasks_run(); });
}

core::Prediction TenantStack::PredictImpl(const core::QueryContext& query,
                                          obs::PredictionTrace* trace) const {
  const auto start = std::chrono::steady_clock::now();
  // Take the model snapshot before the cache lookup: a snapshot held for
  // the whole routing decision can never be freed mid-predict, and the
  // routing function sees one consistent model.
  const std::shared_ptr<const local::LocalModel> local =
      local_model_snapshot();
  const core::Prediction out = core::RouteHierarchical(
      config_.predictor, query, cache_.Predict(query.feature_hash),
      local.get(), options_.global_model, options_.instance, trace,
      conformal_scale());
  source_counts_[static_cast<int>(out.source)].fetch_add(
      1, std::memory_order_relaxed);
  const uint64_t nanos = ElapsedNanos(start);
  predict_latency_.Record(static_cast<size_t>(out.source), nanos);
  if (trace != nullptr) {
    trace->cache_shard =
        static_cast<uint32_t>(query.feature_hash % cache_.num_shards());
    trace->total_nanos = nanos;
  }
  return out;
}

core::Prediction TenantStack::Predict(const core::QueryContext& query) const {
  if (!routing_metrics_.enabled()) return PredictImpl(query, nullptr);
  obs::PredictionTrace trace;
  const core::Prediction out = PredictImpl(query, &trace);
  routing_metrics_.Record(trace);
  return out;
}

core::Prediction TenantStack::PredictTraced(const core::QueryContext& query,
                                            obs::PredictionTrace* trace) const {
  if (trace == nullptr) return Predict(query);
  const core::Prediction out = PredictImpl(query, trace);
  if (routing_metrics_.enabled()) routing_metrics_.Record(*trace);
  return out;
}

namespace {

// Batches at least this large fan out across the shared thread pool; the
// per-query routing work (cache shard lookup + flat-forest walk) is too
// small to amortize task handoff below it.
constexpr size_t kParallelBatchThreshold = 64;

}  // namespace

std::vector<core::Prediction> TenantStack::PredictBatch(
    std::span<const core::QueryContext> queries) const {
  // One model snapshot amortized across the batch; cache lookups still go
  // through the shard locks individually so a batch never starves writers.
  const std::shared_ptr<const local::LocalModel> local =
      local_model_snapshot();
  std::vector<core::Prediction> out(queries.size());
  if (queries.empty()) return out;
  const bool traced = routing_metrics_.enabled();
  std::vector<obs::PredictionTrace> traces(traced ? queries.size() : 0);
  std::vector<uint64_t> phase1_nanos(queries.size(), 0);
  // uint8_t, not bool: lanes write neighboring elements concurrently.
  std::vector<uint8_t> needs_global(queries.size(), 0);

  // One scale load for the whole batch: every lane routes under the same
  // conformal correction even if an Observe refreshes it mid-batch.
  const double scale = conformal_scale();

  // Phase 1: cache + local routing. Escalated queries defer their seconds
  // to ONE batched global pass below instead of running the GCN inline.
  const auto route_one = [&](size_t i) {
    const core::QueryContext& query = queries[i];
    const auto query_start = std::chrono::steady_clock::now();
    bool escalate = false;
    out[i] = core::RouteHierarchicalDeferred(
        config_.predictor, query, cache_.Predict(query.feature_hash),
        local.get(), options_.global_model, options_.instance, &escalate,
        traced ? &traces[i] : nullptr, scale);
    needs_global[i] = escalate ? 1 : 0;
    phase1_nanos[i] = ElapsedNanos(query_start);
  };
  if (queries.size() >= kParallelBatchThreshold) {
    // Safe to fan out: cache_.Predict only touches per-shard locks and
    // atomic counters, the model snapshot is immutable, and each lane
    // writes only its own slots, so results match the sequential loop
    // exactly.
    ThreadPool::Shared().ParallelFor(queries.size(), route_one);
  } else {
    for (size_t i = 0; i < queries.size(); ++i) route_one(i);
  }

  // Phase 2: one level-order batched global pass over every escalation —
  // bit-identical to per-query PredictSeconds (GlobalModel's contract).
  std::vector<size_t> escalated;
  for (size_t i = 0; i < queries.size(); ++i) {
    if (needs_global[i] != 0) escalated.push_back(i);
  }
  uint64_t global_share = 0;
  if (!escalated.empty()) {
    std::vector<global::GlobalQuery> global_queries;
    global_queries.reserve(escalated.size());
    for (size_t i : escalated) {
      global_queries.push_back({queries[i].plan,
                                queries[i].concurrent_queries});
    }
    std::vector<double> seconds(escalated.size());
    const auto global_start = std::chrono::steady_clock::now();
    options_.global_model->PredictBatch(
        global_queries, *options_.instance, seconds,
        escalated.size() > 1 ? &ThreadPool::Shared() : nullptr);
    // Each escalated query carries an equal share of the batched pass (the
    // per-query split inside one GEMM is unknowable).
    global_share = ElapsedNanos(global_start) / escalated.size();
    for (size_t j = 0; j < escalated.size(); ++j) {
      out[escalated[j]].seconds = seconds[j];
    }
  }

  // Counters, latency, and trace emission, in index order.
  for (size_t i = 0; i < queries.size(); ++i) {
    source_counts_[static_cast<int>(out[i].source)].fetch_add(
        1, std::memory_order_relaxed);
    const uint64_t nanos =
        phase1_nanos[i] + (needs_global[i] != 0 ? global_share : 0);
    predict_latency_.Record(static_cast<size_t>(out[i].source), nanos);
    if (traced) {
      traces[i].total_nanos = nanos;
      if (needs_global[i] != 0) core::CompleteTrace(&traces[i], out[i]);
      routing_metrics_.Record(traces[i]);
    }
  }
  return out;
}

bool TenantStack::Observe(const core::QueryContext& query, double exec_seconds,
                          bool inline_retrain) {
  STAGE_CHECK(exec_seconds >= 0.0);
  std::lock_guard<std::mutex> observe_lock(observe_mutex_);

  // §4.8: feed the recalibrator the current model's normalized residual on
  // this completion — before the cache/pool mutations, matching
  // StagePredictor::Observe's ordering exactly so sync replay stays
  // bit-for-bit predictor-equivalent.
  if (recalibrator_ != nullptr) {
    const std::shared_ptr<const local::LocalModel> model =
        local_model_snapshot();
    if (model != nullptr && model->trained()) {
      const local::LocalModel::Output out = model->Predict(query.features);
      recalibrator_->Observe(calib::NormalizedResidual(
          out.exec_seconds, out.log_std(), exec_seconds));
    }
  }

  // §4.3 pool deduplication: only cache misses diversify the pool. The
  // was-cached check and the observation happen under one shard lock.
  const bool was_cached =
      cache_.Observe(query.feature_hash, exec_seconds, query.tick);

  bool request_retrain = false;
  {
    std::lock_guard<std::mutex> pool_lock(pool_mutex_);
    if (!was_cached) {
      pool_.Add(query.features, exec_seconds);
      ++observed_since_train_;
    }
    // Mirrors StagePredictor::Observe's cadence, with "a training has been
    // kicked off" standing in for "the local model is trained" so the async
    // first training is requested exactly once.
    const bool first_training =
        !first_train_requested_ &&
        pool_.size() >= config_.predictor.min_train_size;
    const bool scheduled_training =
        first_train_requested_ &&
        observed_since_train_ >= config_.predictor.retrain_interval &&
        pool_.size() >= config_.predictor.min_train_size;
    if (first_training || scheduled_training) {
      request_retrain = true;
      first_train_requested_ = true;
      observed_since_train_ = 0;
    }
  }
  if (!request_retrain) return false;
  if (inline_retrain) {
    TrainOnce();
    return false;
  }
  return true;
}

void TenantStack::TrainOnce() {
  // Snapshot the pool so training never holds the write-path lock.
  local::TrainingPool snapshot = [this] {
    std::lock_guard<std::mutex> lock(pool_mutex_);
    return pool_;
  }();
  auto fresh = std::make_shared<local::LocalModel>(config_.predictor.local);
  fresh->Train(snapshot);
  if (!fresh->trained()) return;  // Empty snapshot: nothing to publish.
  PublishModel(std::move(fresh));
  trainings_.fetch_add(1, std::memory_order_relaxed);
}

void TenantStack::PublishModel(std::shared_ptr<const local::LocalModel> fresh) {
  // Double-buffer swap: readers holding the old snapshot finish on it (and
  // free it with the last reference); new Predicts see the fresh model.
  std::lock_guard<std::mutex> lock(model_mutex_);
  model_ = std::move(fresh);
}

std::shared_ptr<const local::LocalModel> TenantStack::local_model_snapshot()
    const {
  std::lock_guard<std::mutex> lock(model_mutex_);
  return model_;
}

namespace {
// Byte-compatible with the pre-fleet PredictionService checkpoint stream:
// existing kPredictionService snapshots load unchanged, and the facade's
// SaveCheckpoint keeps producing the exact bytes it always did.
constexpr uint32_t kServiceMagic = 0x53535256;  // "SSRV".
constexpr uint32_t kServiceVersion = 1;
}  // namespace

bool TenantStack::SaveState(std::ostream& out, std::string* error) const {
  // Pausing Observe (not Predict) pins one consistent cut: every
  // observation is either fully in the snapshot (cache AND pool) or fully
  // after it. A concurrent training may still publish a model mid-snapshot;
  // the single shared_ptr load below keeps the captured model coherent.
  std::lock_guard<std::mutex> observe_lock(observe_mutex_);
  WriteHeader(out, kServiceMagic, kServiceVersion);
  cache_.Save(out);
  {
    std::lock_guard<std::mutex> pool_lock(pool_mutex_);
    pool_.Save(out);
    WritePod<uint64_t>(out, observed_since_train_);
    WritePod<uint8_t>(out, first_train_requested_ ? 1 : 0);
  }
  const std::shared_ptr<const local::LocalModel> model =
      local_model_snapshot();
  WritePod<uint8_t>(out, model ? 1 : 0);
  if (model) model->Save(out);
  WritePod<int32_t>(out, trainings_.load(std::memory_order_relaxed));
  // Appended only when calibration is on, so flag-off stacks keep
  // producing the exact legacy kPredictionService byte stream.
  if (recalibrator_ != nullptr) recalibrator_->Save(out);
  if (!out) {
    SetError(error, "tenant stack state write failed");
    return false;
  }
  return true;
}

bool TenantStack::LoadState(std::istream& in, std::string* error) {
  std::lock_guard<std::mutex> observe_lock(observe_mutex_);
  if (!ReadHeader(in, kServiceMagic, kServiceVersion)) {
    SetError(error, "bad tenant stack header");
    return false;
  }
  if (!cache_.Load(in)) {
    SetError(error, "malformed exec-time cache payload");
    return false;
  }
  {
    std::lock_guard<std::mutex> pool_lock(pool_mutex_);
    local::TrainingPool pool(config_.predictor.pool);
    if (!pool.Load(in)) {
      SetError(error, "malformed training pool payload");
      return false;
    }
    uint64_t observed_since_train = 0;
    uint8_t first_train_requested = 0;
    if (!ReadPod(in, &observed_since_train) ||
        !ReadPod(in, &first_train_requested)) {
      SetError(error, "truncated retrain cadence state");
      return false;
    }
    pool_ = std::move(pool);
    observed_since_train_ = static_cast<size_t>(observed_since_train);
    first_train_requested_ = first_train_requested != 0;
  }
  uint8_t has_model = 0;
  if (!ReadPod(in, &has_model)) {
    SetError(error, "truncated local model flag");
    return false;
  }
  if (has_model != 0) {
    auto model = std::make_shared<local::LocalModel>(config_.predictor.local);
    if (!model->Load(in)) {
      SetError(error, "malformed local model payload");
      return false;
    }
    PublishModel(std::move(model));
  } else {
    PublishModel(nullptr);
  }
  int32_t trainings = 0;
  if (!ReadPod(in, &trainings)) {
    SetError(error, "truncated trainings counter");
    return false;
  }
  if (recalibrator_ != nullptr && !recalibrator_->Load(in)) {
    SetError(error, "malformed conformal recalibrator payload");
    return false;
  }
  trainings_.store(trainings, std::memory_order_relaxed);
  return true;
}

size_t TenantStack::ApproxResidentBytes() const {
  const std::shared_ptr<const local::LocalModel> local =
      local_model_snapshot();
  size_t pool_bytes = 0;
  {
    std::lock_guard<std::mutex> lock(pool_mutex_);
    pool_bytes = pool_.MemoryBytes();
  }
  // The fixed tail covers the stack object itself plus per-shard cache
  // bookkeeping not counted by MemoryBytes.
  return cache_.MemoryBytes() + pool_bytes +
         (local ? local->MemoryBytes() : 0) + sizeof(TenantStack);
}

uint64_t TenantStack::total_predictions() const {
  uint64_t total = 0;
  for (const auto& count : source_counts_) {
    total += count.load(std::memory_order_relaxed);
  }
  return total;
}

std::array<uint64_t, core::kNumPredictionSources> TenantStack::SourceCounts()
    const {
  std::array<uint64_t, core::kNumPredictionSources> counts{};
  for (int i = 0; i < core::kNumPredictionSources; ++i) {
    counts[static_cast<size_t>(i)] =
        source_counts_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

void TenantStack::SeedSourceCounts(
    const std::array<uint64_t, core::kNumPredictionSources>& counts) {
  for (int i = 0; i < core::kNumPredictionSources; ++i) {
    source_counts_[i].store(counts[static_cast<size_t>(i)],
                            std::memory_order_relaxed);
  }
}

size_t TenantStack::pool_size() const {
  std::lock_guard<std::mutex> lock(pool_mutex_);
  return pool_.size();
}

std::vector<std::string> TenantStack::PredictLatencySlotNames() {
  std::vector<std::string> names;
  names.reserve(core::kNumPredictionSources);
  for (int i = 0; i < core::kNumPredictionSources; ++i) {
    names.emplace_back(core::PredictionSourceName(
        static_cast<core::PredictionSource>(i)));
  }
  return names;
}

size_t TenantStack::LocalMemoryBytes() const {
  const std::shared_ptr<const local::LocalModel> local =
      local_model_snapshot();
  return cache_.MemoryBytes() + (local ? local->MemoryBytes() : 0);
}

}  // namespace stage::fleet_serve
