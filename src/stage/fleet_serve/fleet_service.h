#ifndef STAGE_FLEET_SERVE_FLEET_SERVICE_H_
#define STAGE_FLEET_SERVE_FLEET_SERVICE_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "stage/core/predictor.h"
#include "stage/core/stage_predictor.h"
#include "stage/fleet_serve/fleet_snapshot.h"
#include "stage/fleet_serve/tenant_stack.h"
#include "stage/metrics/latency_recorder.h"
#include "stage/obs/metrics.h"
#include "stage/obs/trace.h"

namespace stage::fleet_serve {

struct FleetServiceConfig {
  // Default stack shape for every tenant (RegisterTenant can override).
  TenantStackConfig stack;

  // Resident-bytes budget across all warm stacks; 0 means unbounded. When
  // an activation or observation pushes the fleet over budget, the least
  // recently used idle, unpinned stacks are evicted — serialized to parked
  // in-memory state — until the fleet fits again. Adjustable at runtime
  // via SetResidentBytesBudget.
  size_t resident_bytes_budget = 0;

  // When true (production), tenant retrains run on the fleet's bounded
  // worker pool and Observe never blocks on training. When false
  // (deterministic replay / tests), Observe trains inline exactly like
  // StagePredictor::Observe.
  bool async_retrain = true;

  // Fairness cap: at most this many tenant trainings run concurrently, and
  // a tenant holds at most ONE slot at a time (repeat requests coalesce
  // into a single follow-up run). A flooding tenant therefore cannot
  // monopolize ThreadPool::Shared() — other tenants' trainings interleave
  // FIFO through the remaining slots.
  size_t max_concurrent_trainings = 2;

  // Empty when usable, else a description of the first problem.
  std::string Validate() const;
};

// Fleet-level observability knobs. Per-tenant stack metrics (the full
// per-stack families) come from the per-tenant StagePredictorOptions passed
// to RegisterTenant; this registry carries the REGISTRY's own telemetry:
// evictions, cold activations, activation latency, resident bytes, and
// per-tenant owner-tagged prediction counts (registered at activation,
// UnregisterAll-ed at eviction, so an evicted tenant leaks no callbacks).
struct FleetServiceOptions {
  obs::MetricsRegistry* metrics = nullptr;
  std::string metrics_prefix = "stage_";
};

// The tenant-keyed serving API (ROADMAP item 1): one process serves many
// instances' predictor stacks out of a memory-bounded registry. The paper
// operates Stage this way — per-instance models, fleet-scale pipeline
// (§2/§6) — and this service is the registry-ification of the former
// single-tenant PredictionService, which survives as a one-entry facade.
//
// Tenant lifecycle:
//
//   RegisterTenant ─► cold ──(first op / PinTenant)──► warm
//        ▲                                              │
//        │            park (serialize + UnregisterAll)  │ LRU eviction,
//        └── parked ◄───────────────────────────────────┘ budget pressure
//              │
//              └──(next op: LoadState + SeedSourceCounts)──► warm again
//
// Cold activation sources, in order: parked in-process state (eviction
// round-trip, attribution counters preserved), an attached indexed fleet
// snapshot (one seek+read of that tenant's payload — never a whole-fleet
// deserialize), else a fresh empty stack.
//
// Concurrency design:
//  * The registry is a shared_mutex-guarded map of stable entries. Warm
//    ops take the lock shared — a pointer copy, an LRU-tick store, and an
//    active-op pin — then run on the stack outside the lock.
//  * Activation and eviction are entry "transitions": marked under the
//    exclusive lock, executed (serialize / deserialize) outside it, and
//    completed under the lock again with waiters notified. An entry never
//    transitions while ops are pinned on it.
//  * Retrains run on an owned worker pool of max_concurrent_trainings
//    threads over a FIFO of tenant ids with per-tenant coalescing.
class FleetService {
 public:
  explicit FleetService(const FleetServiceConfig& config,
                        const FleetServiceOptions& options = {});
  ~FleetService();

  FleetService(const FleetService&) = delete;
  FleetService& operator=(const FleetService&) = delete;

  // Adds a cold tenant. `options` are the tenant's predictor collaborators
  // (global model, instance hardware, optional per-stack metrics) and must
  // outlive the service; `config_override` replaces the fleet default
  // stack shape when non-null. Registering an existing id is fatal.
  void RegisterTenant(TenantId tenant,
                      const core::StagePredictorOptions& options = {},
                      const TenantStackConfig* config_override = nullptr);

  bool IsRegistered(TenantId tenant) const;
  std::vector<TenantId> TenantIds() const;

  // The serving API. Unknown tenants are fatal (registration is the
  // admission decision; prediction is the hot path). All four activate a
  // cold tenant on demand; `cold_activated`, when non-null, reports
  // whether THIS call paid a cold activation (bench warm/cold split).
  core::Prediction Predict(TenantId tenant, const core::QueryContext& query,
                           bool* cold_activated = nullptr);
  std::vector<core::Prediction> PredictBatch(
      TenantId tenant, std::span<const core::QueryContext> queries,
      bool* cold_activated = nullptr);
  core::Prediction PredictTraced(TenantId tenant,
                                 const core::QueryContext& query,
                                 obs::PredictionTrace* trace,
                                 bool* cold_activated = nullptr);
  void Observe(TenantId tenant, const core::QueryContext& query,
               double exec_seconds);

  // Activates `tenant` and pins it warm for the service's lifetime: the
  // returned stack stays valid and the evictor skips the tenant. This is
  // the single-tenant facade's fast path — it delegates reads straight to
  // the pinned stack, bypassing the registry lock entirely.
  std::shared_ptr<TenantStack> PinTenant(TenantId tenant);

  // Explicit eviction (tests / admin). Fails — returning false and filling
  // `error` — when the tenant is cold, pinned, or has ops in flight.
  bool EvictTenant(TenantId tenant, std::string* error = nullptr);

  // Attaches an indexed fleet snapshot as the cold-activation source for
  // tenants without parked state. Verifies the header + index only.
  bool AttachSnapshot(const std::string& path, std::string* error = nullptr);

  // Writes every tenant with state (warm stacks serialized in place,
  // parked payloads as-is, attached-snapshot payloads passed through) into
  // an indexed fleet snapshot at `path`. Tenants that never served stay
  // out of the file — they activate fresh. Symmetric, status-returning
  // contract with AttachSnapshot/LoadState.
  bool SaveSnapshot(const std::string& path, std::string* error = nullptr);

  // Blocks until no retraining is queued or in flight (all tenants).
  // Test/shutdown sync point; never needed on the serving path.
  void WaitForRetrain();

  // Runtime budget adjustment; shrinking below current residency evicts
  // immediately (LRU order). 0 = unbounded.
  void SetResidentBytesBudget(size_t budget);

  // Registry observability.
  size_t ResidentBytes() const {
    return resident_bytes_.load(std::memory_order_relaxed);
  }
  size_t WarmCount() const {
    return warm_count_.load(std::memory_order_relaxed);
  }
  size_t TenantCount() const {
    return tenant_count_.load(std::memory_order_relaxed);
  }
  bool IsWarm(TenantId tenant) const;
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  uint64_t cold_activations() const {
    return cold_activations_.load(std::memory_order_relaxed);
  }
  // Activation latency histogram slots (parked vs snapshot-file sources).
  static constexpr size_t kActivationFromParked = 0;
  static constexpr size_t kActivationFromFile = 1;
  static constexpr size_t kActivationFresh = 2;
  const metrics::LatencyRecorder& activation_latency() const {
    return activation_latency_;
  }

  // Per-tenant attribution counters: live from the warm stack, else the
  // parked values (bit-for-bit preserved across evict/activate cycles).
  std::array<uint64_t, core::kNumPredictionSources> SourceCounts(
      TenantId tenant) const;
  uint64_t TotalPredictions(TenantId tenant) const;

 private:
  struct Entry {
    TenantId id = 0;
    TenantStackConfig config;
    core::StagePredictorOptions options;  // Borrowed pointers, nullable.

    // Warm state; null while cold. Guarded by registry_mutex_.
    std::shared_ptr<TenantStack> stack;
    // True while an activation or eviction runs outside the lock; waiters
    // block on transition_cv_ until it clears. Guarded by registry_mutex_.
    bool transitioning = false;
    bool pinned = false;  // PinTenant: evictor must skip. Guarded as above.

    // Parked state from the last eviction (empty when none). Guarded by
    // registry_mutex_ plus the transitioning flag (the transition owner
    // touches these outside the lock while everyone else waits).
    std::string parked_state;
    std::array<uint64_t, core::kNumPredictionSources> parked_counts{};
    bool has_parked = false;

    // Ops currently executing on the warm stack. Incremented only under
    // the registry lock (shared suffices) while `stack` is non-null, so an
    // evictor holding the exclusive lock and observing zero knows no op
    // can appear until it releases.
    std::atomic<int> active_ops{0};
    // LRU clock value of the most recent op.
    std::atomic<uint64_t> last_used_tick{0};

    // Fleet-side accounting (atomics: sampled by metric callbacks).
    std::atomic<size_t> resident_bytes{0};
    std::atomic<uint64_t> predictions{0};
    std::atomic<uint64_t> tenant_cold_activations{0};
  };

  // RAII op pin: holds the stack alive and decrements active_ops on exit.
  struct OpGuard {
    std::shared_ptr<TenantStack> stack;
    Entry* entry = nullptr;
    OpGuard() = default;
    OpGuard(std::shared_ptr<TenantStack> s, Entry* e)
        : stack(std::move(s)), entry(e) {}
    OpGuard(OpGuard&& other) noexcept
        : stack(std::move(other.stack)), entry(other.entry) {
      other.entry = nullptr;
    }
    OpGuard& operator=(OpGuard&&) = delete;
    ~OpGuard() {
      if (entry != nullptr) {
        entry->active_ops.fetch_sub(1, std::memory_order_release);
      }
    }
  };

  // Map lookup; any flavor of registry_mutex_ must be held. Null when the
  // tenant is unknown (entries are never erased, so the pointer is stable
  // after the lock drops).
  Entry* FindEntryLocked(TenantId tenant) const;
  // Returns a pinned warm stack for `tenant`, activating it if cold.
  OpGuard AcquireWarm(TenantId tenant, bool* cold_activated);
  // Like AcquireWarm but returns an empty guard instead of activating a
  // cold tenant (the retrain worker has no business waking evicted state).
  OpGuard TryAcquireWarm(TenantId tenant);
  // Builds + loads a stack for `entry` (caller owns the transition).
  std::shared_ptr<TenantStack> ActivateLocked(
      std::unique_lock<std::shared_mutex>& lock, Entry& entry);
  // Evicts LRU idle stacks until resident bytes fit `budget`. Requires the
  // exclusive lock; releases/reacquires it around serialization.
  void EnforceBudgetLocked(std::unique_lock<std::shared_mutex>& lock,
                           size_t budget);
  // Parks one warm entry. Requires the exclusive lock (released around the
  // serialize); the entry must be idle, unpinned, not transitioning.
  bool EvictLocked(std::unique_lock<std::shared_mutex>& lock, Entry& entry,
                   std::string* error);
  void AccountResidentBytes(Entry& entry, size_t fresh_bytes);
  void MaybeEnforceBudget();
  void RegisterFleetMetrics();
  void RegisterTenantMetrics(Entry& entry);

  // Retrain worker pool.
  void ScheduleRetrain(TenantId tenant);
  void TrainWorkerLoop();

  FleetServiceConfig config_;
  FleetServiceOptions options_;

  mutable std::shared_mutex registry_mutex_;
  mutable std::condition_variable_any transition_cv_;
  std::unordered_map<TenantId, std::unique_ptr<Entry>> tenants_;

  std::atomic<size_t> budget_;  // 0 = unbounded.
  // Atomic mirrors of registry state, readable from metric callbacks
  // without registry_mutex_ (a render-time callback taking it would invert
  // lock order against registration, which runs during entry transitions).
  std::atomic<size_t> warm_count_{0};
  std::atomic<size_t> tenant_count_{0};
  std::atomic<size_t> resident_bytes_{0};
  std::atomic<uint64_t> lru_clock_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> cold_activations_{0};
  metrics::LatencyRecorder activation_latency_{3};

  // Attached cold-activation source. snapshot_mutex_ guards the reader's
  // single seek cursor.
  mutable std::mutex snapshot_mutex_;
  FleetSnapshotReader snapshot_;
  bool has_snapshot_ = false;

  // Retrain pool plumbing. Per-tenant coalescing: a tenant is in at most
  // one of queued/running; a request landing while it runs sets the
  // rerequest flag, producing exactly one follow-up run (the old
  // PredictionService worker's semantics, fleet-wide).
  std::mutex train_mutex_;
  std::condition_variable train_cv_;   // Wakes workers.
  std::condition_variable train_idle_cv_;  // Wakes WaitForRetrain.
  std::deque<TenantId> train_queue_;
  std::unordered_set<TenantId> train_queued_;
  std::unordered_set<TenantId> train_running_;
  std::unordered_set<TenantId> train_rerequested_;
  size_t trainings_in_flight_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> train_workers_;
};

}  // namespace stage::fleet_serve

#endif  // STAGE_FLEET_SERVE_FLEET_SERVICE_H_
