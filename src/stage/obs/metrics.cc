#include "stage/obs/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <sstream>

#include "stage/common/macros.h"

namespace stage::obs {

namespace {

// Relaxed fetch-add for atomic<double> via CAS (libstdc++'s native
// floating fetch_add is C++20 but this spelling is portable and TSan-visible).
void AtomicAdd(std::atomic<double>* target, double delta) {
  double seen = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(seen, seen + delta,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>* target, double value) {
  double seen = target->load(std::memory_order_relaxed);
  while (value > seen && !target->compare_exchange_weak(
                             seen, value, std::memory_order_relaxed)) {
  }
}

// "name{a=\"b\"}" -> {"name", "a=\"b\""}; "name" -> {"name", ""}.
void SplitName(const std::string& name, std::string* family,
               std::string* labels) {
  const size_t brace = name.find('{');
  if (brace == std::string::npos) {
    *family = name;
    labels->clear();
    return;
  }
  *family = name.substr(0, brace);
  const size_t close = name.rfind('}');
  STAGE_CHECK_MSG(close != std::string::npos && close > brace,
                  "metric name has an unterminated label block");
  *labels = name.substr(brace + 1, close - brace - 1);
}

std::string FormatNumber(double value) {
  char buffer[64];
  if (std::isfinite(value) && value == std::floor(value) &&
      std::fabs(value) < 1e15) {
    std::snprintf(buffer, sizeof(buffer), "%lld",
                  static_cast<long long>(value));
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  }
  return buffer;
}

std::string SampleName(const std::string& family, const std::string& labels) {
  if (labels.empty()) return family;
  return family + "{" + labels + "}";
}

std::string BucketSampleName(const std::string& family,
                             const std::string& labels,
                             const std::string& le) {
  std::string merged = labels.empty() ? "" : labels + ",";
  merged += "le=\"" + le + "\"";
  return family + "_bucket{" + merged + "}";
}

std::string JsonEscape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Histogram.

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      buckets_(new std::atomic<uint64_t>[bounds_.size() + 1]) {
  STAGE_CHECK_MSG(!bounds_.empty(), "Histogram needs at least one bound");
  for (size_t i = 1; i < bounds_.size(); ++i) {
    STAGE_CHECK_MSG(bounds_[i - 1] < bounds_[i],
                    "Histogram bounds must be strictly increasing");
  }
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::Record(double value) {
  // Prometheus `le` semantics: a value equal to a bound belongs to that
  // bound's bucket (first bound >= value), hence lower_bound.
  const size_t bucket = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(&sum_, value);
  AtomicMax(&max_, value);
}

Histogram::Snapshot Histogram::TakeSnapshot() const {
  Snapshot snapshot;
  snapshot.bounds = bounds_;
  snapshot.buckets.resize(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    snapshot.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    snapshot.count += snapshot.buckets[i];
  }
  snapshot.sum = sum_.load(std::memory_order_relaxed);
  snapshot.max = max_.load(std::memory_order_relaxed);
  return snapshot;
}

uint64_t Histogram::count() const {
  uint64_t total = 0;
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    total += buckets_[i].load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::Snapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const double rank = q * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    const uint64_t in_bucket = buckets[i];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= rank) {
      if (i == bounds.size()) return max;  // Overflow bucket.
      const double lower = i == 0 ? 0.0 : bounds[i - 1];
      const double upper = bounds[i];
      const double within =
          (rank - static_cast<double>(cumulative)) /
          static_cast<double>(in_bucket);
      return lower + (upper - lower) * std::min(1.0, std::max(0.0, within));
    }
    cumulative += in_bucket;
  }
  return max;
}

std::vector<double> Histogram::LatencyBucketsNanos() {
  return {250,    500,    1e3,   2.5e3, 5e3,   1e4,   2.5e4, 5e4,  1e5,
          2.5e5,  5e5,    1e6,   2.5e6, 5e6,   1e7,   2.5e7, 5e7,  1e8,
          2.5e8,  5e8,    1e9};
}

std::vector<double> Histogram::UncertaintyBuckets() {
  return {0.05, 0.1, 0.15, 0.2, 0.3, 0.4, 0.5, 0.75, 1.0,
          1.25, 1.5, 2.0,  2.5, 3.0, 4.0};
}

// ---------------------------------------------------------------------------
// MetricsRegistry.

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    STAGE_CHECK_MSG(it->second.type == Type::kCounter && it->second.counter,
                    name.c_str());
    return *it->second.counter;
  }
  Entry entry;
  entry.type = Type::kCounter;
  entry.counter = std::make_unique<Counter>();
  Counter& out = *entry.counter;
  entries_.emplace(name, std::move(entry));
  return out;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    STAGE_CHECK_MSG(it->second.type == Type::kGauge && it->second.gauge,
                    name.c_str());
    return *it->second.gauge;
  }
  Entry entry;
  entry.type = Type::kGauge;
  entry.gauge = std::make_unique<Gauge>();
  Gauge& out = *entry.gauge;
  entries_.emplace(name, std::move(entry));
  return out;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> upper_bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    STAGE_CHECK_MSG(
        it->second.type == Type::kHistogram && it->second.histogram,
        name.c_str());
    return *it->second.histogram;
  }
  Entry entry;
  entry.type = Type::kHistogram;
  entry.histogram = std::make_unique<Histogram>(std::move(upper_bounds));
  Histogram& out = *entry.histogram;
  entries_.emplace(name, std::move(entry));
  return out;
}

void MetricsRegistry::RegisterCounterCallback(const void* owner,
                                              const std::string& name,
                                              std::function<uint64_t()> fn) {
  STAGE_CHECK(owner != nullptr && fn != nullptr);
  std::lock_guard<std::mutex> lock(mutex_);
  Entry entry;
  entry.type = Type::kCounter;
  entry.owner = owner;
  entry.counter_fn = std::move(fn);
  const bool inserted = entries_.emplace(name, std::move(entry)).second;
  STAGE_CHECK_MSG(inserted, name.c_str());
}

void MetricsRegistry::RegisterGaugeCallback(const void* owner,
                                            const std::string& name,
                                            std::function<double()> fn) {
  STAGE_CHECK(owner != nullptr && fn != nullptr);
  std::lock_guard<std::mutex> lock(mutex_);
  Entry entry;
  entry.type = Type::kGauge;
  entry.owner = owner;
  entry.gauge_fn = std::move(fn);
  const bool inserted = entries_.emplace(name, std::move(entry)).second;
  STAGE_CHECK_MSG(inserted, name.c_str());
}

void MetricsRegistry::RegisterHistogramCallback(
    const void* owner, const std::string& name,
    std::function<Histogram::Snapshot()> fn) {
  STAGE_CHECK(owner != nullptr && fn != nullptr);
  std::lock_guard<std::mutex> lock(mutex_);
  Entry entry;
  entry.type = Type::kHistogram;
  entry.owner = owner;
  entry.histogram_fn = std::move(fn);
  const bool inserted = entries_.emplace(name, std::move(entry)).second;
  STAGE_CHECK_MSG(inserted, name.c_str());
}

void MetricsRegistry::UnregisterAll(const void* owner) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.owner == owner) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

std::string MetricsRegistry::RenderText() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  std::map<std::string, bool> family_emitted;
  for (const auto& [name, entry] : entries_) {
    std::string family;
    std::string labels;
    SplitName(name, &family, &labels);
    if (!family_emitted[family]) {
      const char* type = entry.type == Type::kCounter    ? "counter"
                         : entry.type == Type::kGauge    ? "gauge"
                                                         : "histogram";
      out << "# TYPE " << family << " " << type << "\n";
      family_emitted[family] = true;
    }
    switch (entry.type) {
      case Type::kCounter: {
        const uint64_t value =
            entry.counter ? entry.counter->value() : entry.counter_fn();
        out << SampleName(family, labels) << " " << value << "\n";
        break;
      }
      case Type::kGauge: {
        const double value =
            entry.gauge ? entry.gauge->value() : entry.gauge_fn();
        out << SampleName(family, labels) << " " << FormatNumber(value)
            << "\n";
        break;
      }
      case Type::kHistogram: {
        const Histogram::Snapshot snapshot = entry.histogram
                                                 ? entry.histogram->TakeSnapshot()
                                                 : entry.histogram_fn();
        uint64_t cumulative = 0;
        for (size_t i = 0; i < snapshot.buckets.size(); ++i) {
          cumulative += snapshot.buckets[i];
          const std::string le = i < snapshot.bounds.size()
                                     ? FormatNumber(snapshot.bounds[i])
                                     : "+Inf";
          out << BucketSampleName(family, labels, le) << " " << cumulative
              << "\n";
        }
        out << SampleName(family + "_sum", labels) << " "
            << FormatNumber(snapshot.sum) << "\n";
        out << SampleName(family + "_count", labels) << " " << snapshot.count
            << "\n";
        break;
      }
    }
  }
  return out.str();
}

std::string MetricsRegistry::RenderJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  out << "{";
  bool first = true;
  for (const auto& [name, entry] : entries_) {
    if (!first) out << ",";
    first = false;
    out << "\"" << JsonEscape(name) << "\":";
    switch (entry.type) {
      case Type::kCounter:
        out << (entry.counter ? entry.counter->value() : entry.counter_fn());
        break;
      case Type::kGauge:
        out << FormatNumber(entry.gauge ? entry.gauge->value()
                                        : entry.gauge_fn());
        break;
      case Type::kHistogram: {
        const Histogram::Snapshot snapshot = entry.histogram
                                                 ? entry.histogram->TakeSnapshot()
                                                 : entry.histogram_fn();
        out << "{\"count\":" << snapshot.count
            << ",\"sum\":" << FormatNumber(snapshot.sum)
            << ",\"max\":" << FormatNumber(snapshot.max) << ",\"buckets\":[";
        for (size_t i = 0; i < snapshot.buckets.size(); ++i) {
          if (i > 0) out << ",";
          out << "{\"le\":";
          if (i < snapshot.bounds.size()) {
            out << FormatNumber(snapshot.bounds[i]);
          } else {
            out << "\"+Inf\"";
          }
          out << ",\"count\":" << snapshot.buckets[i] << "}";
        }
        out << "]}";
        break;
      }
    }
  }
  out << "}\n";
  return out.str();
}

// ---------------------------------------------------------------------------
// ValidateTextExposition.

namespace {

struct HistogramSeries {
  std::vector<std::pair<double, double>> buckets;  // (le, cumulative).
  bool has_inf = false;
  double inf_value = 0.0;
  bool has_count = false;
  double count_value = 0.0;
  bool has_sum = false;
};

bool ParseSampleLine(const std::string& line, std::string* name,
                     double* value) {
  const size_t space = line.rfind(' ');
  if (space == std::string::npos || space == 0 || space + 1 >= line.size()) {
    return false;
  }
  *name = line.substr(0, space);
  const std::string value_text = line.substr(space + 1);
  char* end = nullptr;
  *value = std::strtod(value_text.c_str(), &end);
  return end != nullptr && *end == '\0';
}

// Splits "family{a=\"b\",le=\"1\"}" into base family, the labels WITHOUT
// the le pair (the series key), and the le value (+Inf -> infinity).
bool ExtractLe(const std::string& labels, std::string* rest, double* le) {
  const size_t at = labels.find("le=\"");
  if (at == std::string::npos) return false;
  const size_t value_start = at + 4;
  const size_t value_end = labels.find('"', value_start);
  if (value_end == std::string::npos) return false;
  const std::string le_text = labels.substr(value_start, value_end - value_start);
  if (le_text == "+Inf") {
    *le = std::numeric_limits<double>::infinity();
  } else {
    char* end = nullptr;
    *le = std::strtod(le_text.c_str(), &end);
    if (end == nullptr || *end != '\0') return false;
  }
  // Series key: labels minus the le pair (and a neighbouring comma).
  size_t cut_begin = at;
  size_t cut_end = value_end + 1;
  if (cut_begin > 0 && labels[cut_begin - 1] == ',') {
    --cut_begin;
  } else if (cut_end < labels.size() && labels[cut_end] == ',') {
    ++cut_end;
  }
  *rest = labels.substr(0, cut_begin) + labels.substr(cut_end);
  return true;
}

}  // namespace

bool ValidateTextExposition(std::string_view text, std::string* error) {
  const auto fail = [&](const std::string& message) {
    if (error != nullptr) *error = message;
    return false;
  };

  std::map<std::string, std::string> family_type;
  std::map<std::string, HistogramSeries> series;  // key: family + "\0" + labels.
  std::istringstream in{std::string(text)};
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream comment(line);
      std::string hash, keyword, family, type;
      comment >> hash >> keyword >> family >> type;
      if (keyword == "TYPE") {
        if (type != "counter" && type != "gauge" && type != "histogram") {
          return fail("unknown TYPE '" + type + "' for " + family);
        }
        if (family_type.count(family) != 0) {
          return fail("duplicate TYPE line for " + family);
        }
        family_type[family] = type;
      }
      continue;
    }

    std::string name;
    double value = 0.0;
    if (!ParseSampleLine(line, &name, &value)) {
      return fail("unparseable sample line: " + line);
    }
    if (!std::isfinite(value)) return fail("non-finite value: " + line);

    std::string family, labels;
    SplitName(name, &family, &labels);

    // Histogram component samples reference family minus the suffix.
    std::string base = family;
    std::string suffix;
    for (const char* candidate : {"_bucket", "_sum", "_count"}) {
      const std::string c(candidate);
      if (family.size() > c.size() &&
          family.compare(family.size() - c.size(), c.size(), c) == 0) {
        const std::string stripped = family.substr(0, family.size() - c.size());
        auto it = family_type.find(stripped);
        if (it != family_type.end() && it->second == "histogram") {
          base = stripped;
          suffix = c;
          break;
        }
      }
    }

    auto type_it = family_type.find(base);
    if (type_it == family_type.end()) {
      return fail("sample without a TYPE line: " + name);
    }
    const std::string& type = type_it->second;

    if (type == "counter") {
      if (value < 0.0) return fail("negative counter: " + line);
      continue;
    }
    if (type == "gauge") continue;

    // Histogram bookkeeping.
    if (suffix == "_bucket") {
      std::string rest;
      double le = 0.0;
      if (!ExtractLe(labels, &rest, &le)) {
        return fail("histogram bucket without le label: " + line);
      }
      if (value < 0.0) return fail("negative bucket count: " + line);
      HistogramSeries& s = series[base + '\0' + rest];
      if (!s.buckets.empty()) {
        if (le <= s.buckets.back().first) {
          return fail("histogram le bounds not increasing: " + line);
        }
        if (value < s.buckets.back().second) {
          return fail("histogram bucket counts not cumulative: " + line);
        }
      }
      s.buckets.emplace_back(le, value);
      if (std::isinf(le)) {
        s.has_inf = true;
        s.inf_value = value;
      }
    } else if (suffix == "_count") {
      if (value < 0.0) return fail("negative histogram count: " + line);
      HistogramSeries& s = series[base + '\0' + labels];
      s.has_count = true;
      s.count_value = value;
    } else if (suffix == "_sum") {
      series[base + '\0' + labels].has_sum = true;
    } else {
      return fail("bare sample for histogram family: " + line);
    }
  }

  for (const auto& [key, s] : series) {
    const std::string name = key.substr(0, key.find('\0'));
    if (!s.has_inf) return fail("histogram missing +Inf bucket: " + name);
    if (!s.has_count) return fail("histogram missing _count: " + name);
    if (!s.has_sum) return fail("histogram missing _sum: " + name);
    if (s.inf_value != s.count_value) {
      return fail("histogram +Inf bucket != _count: " + name);
    }
  }
  return true;
}

}  // namespace stage::obs
