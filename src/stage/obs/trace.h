#ifndef STAGE_OBS_TRACE_H_
#define STAGE_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "stage/obs/metrics.h"

namespace stage::obs {

// Which stage of the §4.1 hierarchy served a prediction. Values mirror
// core::PredictionSource numerically (static_asserted in
// core/stage_predictor.cc); obs sits below core in the dependency graph,
// so the enum is restated here rather than included.
enum class TraceStage : uint8_t {
  kCache = 0,
  kLocal = 1,
  kGlobal = 2,
  kBaseline = 3,
  kDefault = 4,
};

inline constexpr int kNumTraceStages = 5;

std::string_view TraceStageName(TraceStage stage);

// The routing decision of one prediction as first-class data: which stage
// answered, why the router stopped there (which §4.1 thresholds were
// crossed), the uncertainty it saw, and where the time went. Filled by
// core::RouteHierarchical and the predictors layered on it; consumed by
// golden routing tests, trace dumps, and the metrics layer. Plain POD on
// the stack — tracing allocates nothing.
struct PredictionTrace {
  TraceStage stage = TraceStage::kDefault;

  // Routing decision record.
  bool cache_hit = false;        // Stage 1 answered.
  bool local_trained = false;    // A local model existed at predict time.
  bool global_available = false; // A usable global model existed.
  bool short_running = false;    // Local predicted < short_running_seconds.
  bool confident = false;        // log_std < uncertainty threshold.
  bool escalated = false;        // Local handed off to global (stage 3).

  // Prediction values.
  double predicted_seconds = 0.0;
  double uncertainty_log_std = -1.0;  // Negative when unavailable.

  // The thresholds the decision was made against (config at predict time).
  double short_running_threshold = 0.0;
  double uncertainty_threshold = 0.0;

  // Placement / cost. Latencies are only filled on the traced call paths
  // (PredictTraced); they stay zero on the plain hot path.
  uint32_t cache_shard = 0;   // Shard probed (0 for the unsharded cache).
  uint64_t cache_nanos = 0;   // Stage-1 lookup.
  uint64_t route_nanos = 0;   // Stages 2-3 (model inference + routing).
  uint64_t total_nanos = 0;
};

// Stable one-line serialization of the *deterministic* trace fields (stage,
// decision record, values, thresholds, shard — never latencies), used by
// the golden routing test to pin per-query routing across refactors.
// Doubles are rendered with round-trip precision, so any numeric drift in
// routing inputs changes the line.
std::string FormatTraceLine(uint64_t query_index,
                            const PredictionTrace& trace);

// The hot-path metric bundle shared by StagePredictor and the serving
// layer: resolved once against a registry at construction, then updated
// with relaxed atomics per prediction. When `registry` is null every
// pointer stays null and enabled() is false — the predictor runs exactly
// as before.
struct RoutingMetricSet {
  Counter* escalations = nullptr;          // <prefix>escalations_total.
  Histogram* uncertainty = nullptr;        // <prefix>local_uncertainty_log_std.
  // Per-stage prediction latency, only resolved when `with_latency` (the
  // serving layer exposes its LatencyRecorder instead).
  Histogram* latency[kNumTraceStages] = {};

  bool enabled() const { return escalations != nullptr; }

  static RoutingMetricSet Create(MetricsRegistry* registry,
                                 const std::string& prefix,
                                 bool with_latency);

  // Records the per-prediction signals (escalation, uncertainty, latency
  // when measured). Call only when enabled().
  void Record(const PredictionTrace& trace) const;
};

}  // namespace stage::obs

#endif  // STAGE_OBS_TRACE_H_
