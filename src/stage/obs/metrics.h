#ifndef STAGE_OBS_METRICS_H_
#define STAGE_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace stage::obs {

// Process-observability primitives for the serving path (the §4.1 claim —
// "most queries short-circuit at the cache or local model" — is only
// operable if hit rates, routing decisions, and per-stage latency are
// visible in a running service). Everything here is lock-cheap by design:
//
//  * Counter / Gauge / Histogram updates are a handful of relaxed atomic
//    RMWs — no locks, no allocation — so they are safe on the prediction
//    hot path.
//  * MetricsRegistry takes a mutex only to register metrics (startup) and
//    to render (scrape time); handles returned by Get* are stable for the
//    registry's lifetime, so steady-state writers never touch the lock.

// Monotonically increasing event count.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Last-written instantaneous value.
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Fixed-bucket histogram: upper bounds are set at construction and an
// implicit +Inf overflow bucket catches the tail. Record is one bucket
// fetch_add plus a sum/max update; no per-record allocation. Quantiles are
// estimated by linear interpolation inside the containing bucket, so
// bucket bounds should bracket the range of interest (see the
// LatencyBucketsNanos / UncertaintyBuckets presets).
class Histogram {
 public:
  // `upper_bounds` must be non-empty and strictly increasing.
  explicit Histogram(std::vector<double> upper_bounds);

  void Record(double value);

  // A coherent-enough copy of the histogram state (buckets are read
  // individually with relaxed loads; `count` is defined as their sum so a
  // snapshot is always internally consistent: cumulative bucket counts end
  // exactly at `count`).
  struct Snapshot {
    std::vector<double> bounds;     // Finite upper bounds, ascending.
    std::vector<uint64_t> buckets;  // Per-bucket counts; bounds.size() + 1
                                    // entries, last is the +Inf bucket.
    uint64_t count = 0;             // Sum of buckets.
    double sum = 0.0;
    double max = 0.0;               // Largest recorded value; 0 when empty.

    // Interpolated quantile, q in [0, 1]. Values landing in the overflow
    // bucket report `max`. Interpolation assumes non-negative values (the
    // first bucket's lower edge is taken as 0).
    double Quantile(double q) const;
  };
  Snapshot TakeSnapshot() const;

  uint64_t count() const;
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  size_t num_buckets() const { return bounds_.size() + 1; }
  const std::vector<double>& bounds() const { return bounds_; }

  // Preset bounds: serving-path latency, 250ns .. 1s (exponential-ish).
  static std::vector<double> LatencyBucketsNanos();
  // Preset bounds: local-model log-space uncertainty (§4.1 routing signal).
  static std::vector<double> UncertaintyBuckets();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  // bounds_.size() + 1.
  std::atomic<double> sum_{0.0};
  std::atomic<double> max_{0.0};
};

// A process-wide named metric registry with Prometheus-style text
// exposition and a JSON dump.
//
// Two metric flavours coexist:
//  * Owned metrics (GetCounter/GetGauge/GetHistogram): the registry
//    allocates them; the returned reference is stable for the registry's
//    lifetime and callers update it lock-free.
//  * Callback metrics (Register*Callback): sampled at render time. These
//    wire pre-existing component counters (cache hit atomics, pool sizes,
//    thread-pool depth) into the exposition without double-counting on the
//    hot path. Callbacks are tagged with an `owner` so a component can
//    UnregisterAll(this) in its destructor before its state dies.
//
// Naming: a metric name may carry Prometheus labels inline, e.g.
// "stage_predictions_total{source=\"cache\"}". The text renderer groups
// label variants under one `# TYPE` family line and merges histogram `le`
// labels into an existing label set.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Creates (or returns the existing) owned metric under `name`. It is a
  // fatal error to reuse a name with a different metric type; GetHistogram
  // on an existing name ignores `upper_bounds`.
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name,
                          std::vector<double> upper_bounds);

  // Render-time sampled metrics. The name must be unused.
  void RegisterCounterCallback(const void* owner, const std::string& name,
                               std::function<uint64_t()> fn);
  void RegisterGaugeCallback(const void* owner, const std::string& name,
                             std::function<double()> fn);
  void RegisterHistogramCallback(const void* owner, const std::string& name,
                                 std::function<Histogram::Snapshot()> fn);
  // Drops every callback registered with `owner`. Owned metrics persist.
  void UnregisterAll(const void* owner);

  // Prometheus text exposition format: `# TYPE` per family, counter/gauge
  // sample lines, histogram `_bucket{le=...}` lines with *cumulative*
  // counts plus `_sum` and `_count`.
  std::string RenderText() const;
  // The same content as a single JSON object keyed by metric name.
  std::string RenderJson() const;

  size_t size() const;

  // The process-wide default registry (what `stage_sim` exposes).
  static MetricsRegistry& Default();

 private:
  enum class Type { kCounter, kGauge, kHistogram };
  struct Entry {
    Type type;
    const void* owner = nullptr;  // Null for owned metrics.
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::function<uint64_t()> counter_fn;
    std::function<double()> gauge_fn;
    std::function<Histogram::Snapshot()> histogram_fn;
  };

  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;
};

// Structural validator for RenderText output (used by tests and the
// tools/check.sh gate): every sample line must parse, counter samples must
// be non-negative and finite, histogram `le` bounds must be strictly
// increasing per series, cumulative bucket counts must be non-decreasing,
// and the `+Inf` bucket must equal the series' `_count`. Returns false and
// fills `error` with the first violation.
bool ValidateTextExposition(std::string_view text, std::string* error);

}  // namespace stage::obs

#endif  // STAGE_OBS_METRICS_H_
