#include "stage/obs/trace.h"

#include <cstdio>

#include "stage/common/macros.h"

namespace stage::obs {

std::string_view TraceStageName(TraceStage stage) {
  switch (stage) {
    case TraceStage::kCache:
      return "cache";
    case TraceStage::kLocal:
      return "local";
    case TraceStage::kGlobal:
      return "global";
    case TraceStage::kBaseline:
      return "baseline";
    case TraceStage::kDefault:
      return "default";
  }
  return "unknown";
}

std::string FormatTraceLine(uint64_t query_index,
                            const PredictionTrace& trace) {
  char buffer[320];
  std::snprintf(
      buffer, sizeof(buffer),
      "q=%llu stage=%s hit=%d trained=%d global=%d short=%d conf=%d esc=%d "
      "shard=%u pred=%.17g unc=%.17g thr_short=%.17g thr_unc=%.17g",
      static_cast<unsigned long long>(query_index),
      std::string(TraceStageName(trace.stage)).c_str(),
      trace.cache_hit ? 1 : 0, trace.local_trained ? 1 : 0,
      trace.global_available ? 1 : 0, trace.short_running ? 1 : 0,
      trace.confident ? 1 : 0, trace.escalated ? 1 : 0, trace.cache_shard,
      trace.predicted_seconds, trace.uncertainty_log_std,
      trace.short_running_threshold, trace.uncertainty_threshold);
  return buffer;
}

RoutingMetricSet RoutingMetricSet::Create(MetricsRegistry* registry,
                                          const std::string& prefix,
                                          bool with_latency) {
  RoutingMetricSet set;
  if (registry == nullptr) return set;
  set.escalations = &registry->GetCounter(prefix + "escalations_total");
  set.uncertainty = &registry->GetHistogram(
      prefix + "local_uncertainty_log_std", Histogram::UncertaintyBuckets());
  if (with_latency) {
    for (int i = 0; i < kNumTraceStages; ++i) {
      const std::string name =
          prefix + "predict_latency_ns{stage=\"" +
          std::string(TraceStageName(static_cast<TraceStage>(i))) + "\"}";
      set.latency[i] =
          &registry->GetHistogram(name, Histogram::LatencyBucketsNanos());
    }
  }
  return set;
}

void RoutingMetricSet::Record(const PredictionTrace& trace) const {
  STAGE_DCHECK(enabled());
  if (trace.escalated) escalations->Increment();
  if (trace.uncertainty_log_std >= 0.0) {
    uncertainty->Record(trace.uncertainty_log_std);
  }
  const int stage = static_cast<int>(trace.stage);
  if (trace.total_nanos > 0 && stage < kNumTraceStages &&
      latency[stage] != nullptr) {
    latency[stage]->Record(static_cast<double>(trace.total_nanos));
  }
}

}  // namespace stage::obs
