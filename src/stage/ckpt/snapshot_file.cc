#include "stage/ckpt/snapshot_file.h"

#include <cstdio>
#include <fstream>

#include "stage/common/crc32.h"
#include "stage/common/serialize.h"

namespace stage::ckpt {

namespace {

constexpr uint32_t kEnvelopeMagic = 0x53534e50;  // "SSNP".
constexpr uint32_t kEnvelopeVersion = 1;

void SetError(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
}

}  // namespace

std::string_view SnapshotKindName(SnapshotKind kind) {
  switch (kind) {
    case SnapshotKind::kLocalModel:
      return "local-model";
    case SnapshotKind::kExecTimeCache:
      return "exec-time-cache";
    case SnapshotKind::kTrainingPool:
      return "training-pool";
    case SnapshotKind::kStagePredictor:
      return "stage-predictor";
    case SnapshotKind::kPredictionService:
      return "prediction-service";
    case SnapshotKind::kFleetService:
      return "fleet-service";
    case SnapshotKind::kConformalRecalibrator:
      return "conformal-recalibrator";
  }
  return "unknown";
}

std::optional<SnapshotKind> SnapshotKindFromName(std::string_view name) {
  for (const SnapshotKind kind : kAllSnapshotKinds) {
    if (SnapshotKindName(kind) == name) return kind;
  }
  return std::nullopt;
}

void WriteSnapshotStream(std::ostream& out, SnapshotKind kind,
                         std::string_view payload) {
  WritePod(out, kEnvelopeMagic);
  WritePod(out, kEnvelopeVersion);
  WritePod(out, static_cast<uint32_t>(kind));
  WritePod<uint64_t>(out, payload.size());
  WritePod(out, Crc32(payload));
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
}

bool ReadSnapshotStream(std::istream& in, SnapshotKind kind,
                        std::string* payload, std::string* error) {
  uint32_t magic = 0;
  uint32_t version = 0;
  uint32_t file_kind = 0;
  uint64_t payload_size = 0;
  uint32_t payload_crc = 0;
  if (!ReadPod(in, &magic) || !ReadPod(in, &version) ||
      !ReadPod(in, &file_kind) || !ReadPod(in, &payload_size) ||
      !ReadPod(in, &payload_crc)) {
    SetError(error, "snapshot header truncated");
    return false;
  }
  if (magic != kEnvelopeMagic) {
    SetError(error, "not a snapshot file (bad magic)");
    return false;
  }
  if (version != kEnvelopeVersion) {
    SetError(error, "unsupported snapshot envelope version");
    return false;
  }
  if (file_kind != static_cast<uint32_t>(kind)) {
    SetError(error, std::string("snapshot kind mismatch: expected ") +
                        std::string(SnapshotKindName(kind)));
    return false;
  }
  // Reject the declared size against the actual stream length before
  // allocating, so a corrupt size field cannot trigger a huge allocation.
  const std::optional<uint64_t> remaining = RemainingBytes(in);
  if (remaining && payload_size > *remaining) {
    SetError(error, "snapshot payload truncated");
    return false;
  }
  std::string bytes(payload_size, '\0');
  in.read(bytes.data(), static_cast<std::streamsize>(payload_size));
  if (!in) {
    SetError(error, "snapshot payload truncated");
    return false;
  }
  if (Crc32(bytes) != payload_crc) {
    SetError(error, "snapshot payload checksum mismatch");
    return false;
  }
  *payload = std::move(bytes);
  return true;
}

bool WriteSnapshotFile(const std::string& path, SnapshotKind kind,
                       std::string_view payload, std::string* error) {
  const std::string tmp_path = path + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      SetError(error, "cannot open " + tmp_path + " for writing");
      return false;
    }
    WriteSnapshotStream(out, kind, payload);
    out.flush();
    if (!out) {
      SetError(error, "write to " + tmp_path + " failed");
      std::remove(tmp_path.c_str());
      return false;
    }
  }
  // The atomic publication step: readers only ever see the old complete
  // snapshot or the new complete snapshot, never a torn one.
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    SetError(error, "rename " + tmp_path + " -> " + path + " failed");
    std::remove(tmp_path.c_str());
    return false;
  }
  return true;
}

bool ReadSnapshotFile(const std::string& path, SnapshotKind kind,
                      std::string* payload, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    SetError(error, "cannot open " + path);
    return false;
  }
  return ReadSnapshotStream(in, kind, payload, error);
}

}  // namespace stage::ckpt
