#include "stage/ckpt/snapshot_file.h"

#include <cstdio>
#include <fstream>

#include "stage/common/framing.h"

namespace stage::ckpt {

namespace {

constexpr uint32_t kEnvelopeMagic = 0x53534e50;  // "SSNP".
constexpr uint32_t kEnvelopeVersion = 1;

void SetError(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
}

}  // namespace

std::string_view SnapshotKindName(SnapshotKind kind) {
  switch (kind) {
    case SnapshotKind::kLocalModel:
      return "local-model";
    case SnapshotKind::kExecTimeCache:
      return "exec-time-cache";
    case SnapshotKind::kTrainingPool:
      return "training-pool";
    case SnapshotKind::kStagePredictor:
      return "stage-predictor";
    case SnapshotKind::kPredictionService:
      return "prediction-service";
    case SnapshotKind::kFleetService:
      return "fleet-service";
    case SnapshotKind::kConformalRecalibrator:
      return "conformal-recalibrator";
  }
  return "unknown";
}

std::optional<SnapshotKind> SnapshotKindFromName(std::string_view name) {
  for (const SnapshotKind kind : kAllSnapshotKinds) {
    if (SnapshotKindName(kind) == name) return kind;
  }
  return std::nullopt;
}

void WriteSnapshotStream(std::ostream& out, SnapshotKind kind,
                         std::string_view payload) {
  // The snapshot envelope is one instance of the shared frame vocabulary
  // (stage/common/framing.h); the byte layout is pinned by ckpt_test's
  // envelope-bytes regression test.
  WriteFrame(out, kEnvelopeMagic, kEnvelopeVersion,
             static_cast<uint32_t>(kind), payload);
}

bool ReadSnapshotStream(std::istream& in, SnapshotKind kind,
                        std::string* payload, std::string* error) {
  FrameHeader header;
  switch (ReadFrameHeader(in, kEnvelopeMagic, kEnvelopeVersion, &header)) {
    case FrameStatus::kOk:
      break;
    case FrameStatus::kBadMagic:
      SetError(error, "not a snapshot file (bad magic)");
      return false;
    case FrameStatus::kBadVersion:
      SetError(error, "unsupported snapshot envelope version");
      return false;
    default:
      SetError(error, "snapshot header truncated");
      return false;
  }
  // The kind check sits between header and payload so a mismatched file is
  // reported as such before any payload byte is read.
  if (header.type != static_cast<uint32_t>(kind)) {
    SetError(error, std::string("snapshot kind mismatch: expected ") +
                        std::string(SnapshotKindName(kind)));
    return false;
  }
  switch (ReadFramePayload(in, header, payload)) {
    case FrameStatus::kOk:
      return true;
    case FrameStatus::kCrcMismatch:
      SetError(error, "snapshot payload checksum mismatch");
      return false;
    default:
      SetError(error, "snapshot payload truncated");
      return false;
  }
}

bool WriteSnapshotFile(const std::string& path, SnapshotKind kind,
                       std::string_view payload, std::string* error) {
  const std::string tmp_path = path + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      SetError(error, "cannot open " + tmp_path + " for writing");
      return false;
    }
    WriteSnapshotStream(out, kind, payload);
    out.flush();
    if (!out) {
      SetError(error, "write to " + tmp_path + " failed");
      std::remove(tmp_path.c_str());
      return false;
    }
  }
  // The atomic publication step: readers only ever see the old complete
  // snapshot or the new complete snapshot, never a torn one.
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    SetError(error, "rename " + tmp_path + " -> " + path + " failed");
    std::remove(tmp_path.c_str());
    return false;
  }
  return true;
}

bool ReadSnapshotFile(const std::string& path, SnapshotKind kind,
                      std::string* payload, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    SetError(error, "cannot open " + path);
    return false;
  }
  return ReadSnapshotStream(in, kind, payload, error);
}

}  // namespace stage::ckpt
