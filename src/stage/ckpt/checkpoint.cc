#include "stage/ckpt/checkpoint.h"

#include <filesystem>
#include <sstream>
#include <system_error>
#include <type_traits>
#include <utility>

namespace stage::ckpt {

namespace {

void SetError(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
}

// `save` either returns void (legacy Save(ostream&) writers) or bool (the
// status-returning SaveCheckpoint/SaveState contract); a false status fails
// the wrap before any file is touched.
template <typename SaveFn>
bool SaveWrapped(const std::string& path, SnapshotKind kind, SaveFn&& save,
                 std::string* error) {
  std::ostringstream payload;
  if constexpr (std::is_same_v<decltype(save(payload)), bool>) {
    if (!save(payload)) {
      SetError(error, "serialization failed");
      return false;
    }
  } else {
    save(payload);
  }
  if (!payload) {
    SetError(error, "serialization failed");
    return false;
  }
  return WriteSnapshotFile(path, kind, payload.view(), error);
}

template <typename LoadFn>
bool LoadWrapped(const std::string& path, SnapshotKind kind, LoadFn&& load,
                 std::string* error) {
  std::string payload;
  if (!ReadSnapshotFile(path, kind, &payload, error)) return false;
  std::istringstream in(std::move(payload));
  if (!load(in)) {
    SetError(error, std::string(SnapshotKindName(kind)) +
                        " snapshot payload is malformed");
    return false;
  }
  return true;
}

}  // namespace

bool SaveServiceSnapshot(const serve::PredictionService& service,
                         const std::string& path, std::string* error) {
  return SaveWrapped(
      path, SnapshotKind::kPredictionService,
      [&](std::ostream& out) { return service.SaveCheckpoint(out); }, error);
}

bool LoadServiceSnapshot(serve::PredictionService* service,
                         const std::string& path, std::string* error) {
  return LoadWrapped(
      path, SnapshotKind::kPredictionService,
      [&](std::istream& in) { return service->LoadCheckpoint(in); }, error);
}

bool SavePredictorSnapshot(const core::StagePredictor& predictor,
                           const std::string& path, std::string* error) {
  return SaveWrapped(
      path, SnapshotKind::kStagePredictor,
      [&](std::ostream& out) { predictor.Save(out); }, error);
}

bool LoadPredictorSnapshot(core::StagePredictor* predictor,
                           const std::string& path, std::string* error) {
  return LoadWrapped(
      path, SnapshotKind::kStagePredictor,
      [&](std::istream& in) { return predictor->Load(in); }, error);
}

bool SaveLocalModelSnapshot(const local::LocalModel& model,
                            const std::string& path, std::string* error) {
  return SaveWrapped(
      path, SnapshotKind::kLocalModel,
      [&](std::ostream& out) { model.Save(out); }, error);
}

bool LoadLocalModelSnapshot(local::LocalModel* model, const std::string& path,
                            std::string* error) {
  return LoadWrapped(
      path, SnapshotKind::kLocalModel,
      [&](std::istream& in) { return model->Load(in); }, error);
}

bool SaveRecalibratorSnapshot(const calib::ConformalRecalibrator& recalibrator,
                              const std::string& path, std::string* error) {
  return SaveWrapped(
      path, SnapshotKind::kConformalRecalibrator,
      [&](std::ostream& out) { recalibrator.Save(out); }, error);
}

bool LoadRecalibratorSnapshot(calib::ConformalRecalibrator* recalibrator,
                              const std::string& path, std::string* error) {
  return LoadWrapped(
      path, SnapshotKind::kConformalRecalibrator,
      [&](std::istream& in) { return recalibrator->Load(in); }, error);
}

PeriodicCheckpointer::PeriodicCheckpointer(
    const serve::PredictionService& service, Options options)
    : service_(service), options_(std::move(options)) {
  if (options_.metrics != nullptr) RegisterMetrics();
  if (options_.checkpoint_on_start) TriggerNow();
  worker_ = std::thread([this] { Loop(); });
}

PeriodicCheckpointer::~PeriodicCheckpointer() {
  Stop();
  // After Stop no snapshot is in flight, so the callbacks reading our
  // counters can be dropped safely.
  if (options_.metrics != nullptr) options_.metrics->UnregisterAll(this);
}

void PeriodicCheckpointer::RegisterMetrics() {
  obs::MetricsRegistry* registry = options_.metrics;
  const std::string& prefix = options_.metrics_prefix;
  registry->RegisterCounterCallback(
      this, prefix + "snapshots_total{result=\"ok\"}",
      [this] { return completed(); });
  registry->RegisterCounterCallback(
      this, prefix + "snapshots_total{result=\"fail\"}",
      [this] { return failed(); });
  registry->RegisterCounterCallback(this, prefix + "bytes_written_total",
                                    [this] { return bytes_written(); });
  registry->RegisterGaugeCallback(
      this, prefix + "last_snapshot_bytes",
      [this] { return static_cast<double>(last_snapshot_bytes()); });
  write_duration_ns_ = &registry->GetHistogram(
      prefix + "write_duration_ns", obs::Histogram::LatencyBucketsNanos());
}

void PeriodicCheckpointer::Stop() {
  {
    std::lock_guard<std::mutex> lock(stop_mutex_);
    if (stopping_ && !worker_.joinable()) return;
    stopping_ = true;
  }
  stop_cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

bool PeriodicCheckpointer::TriggerNow(std::string* error) {
  std::string local_error;
  if (WriteOnce(&local_error)) {
    completed_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  failed_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(error_mutex_);
    last_error_ = local_error;
  }
  SetError(error, std::move(local_error));
  return false;
}

std::string PeriodicCheckpointer::last_error() const {
  std::lock_guard<std::mutex> lock(error_mutex_);
  return last_error_;
}

void PeriodicCheckpointer::Loop() {
  std::unique_lock<std::mutex> lock(stop_mutex_);
  while (!stopping_) {
    if (stop_cv_.wait_for(lock, options_.interval,
                          [this] { return stopping_; })) {
      return;
    }
    lock.unlock();
    TriggerNow();
    lock.lock();
  }
}

bool PeriodicCheckpointer::WriteOnce(std::string* error) {
  const auto start = std::chrono::steady_clock::now();
  const bool ok = SaveServiceSnapshot(service_, options_.path, error);
  if (write_duration_ns_ != nullptr) {
    write_duration_ns_->Record(static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count()));
  }
  if (ok) {
    std::error_code ec;
    const auto size = std::filesystem::file_size(options_.path, ec);
    if (!ec) {
      last_snapshot_bytes_.store(size, std::memory_order_relaxed);
      bytes_written_.fetch_add(size, std::memory_order_relaxed);
    }
  }
  return ok;
}

}  // namespace stage::ckpt
