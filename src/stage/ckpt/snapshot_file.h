#ifndef STAGE_CKPT_SNAPSHOT_FILE_H_
#define STAGE_CKPT_SNAPSHOT_FILE_H_

#include <array>
#include <cstdint>
#include <istream>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>

namespace stage::ckpt {

// What a snapshot file contains; written into the envelope header so a
// reader can never mistake, say, a bare local-model checkpoint for a full
// service snapshot. This is the single kind registry shared by the
// whole-payload envelope below and the indexed fleet envelope
// (stage/fleet_serve/fleet_snapshot.h): every on-disk format names its
// content through this enum, never through ad-hoc strings at call sites.
enum class SnapshotKind : uint32_t {
  kLocalModel = 1,
  kExecTimeCache = 2,
  kTrainingPool = 3,
  kStagePredictor = 4,
  kPredictionService = 5,
  // Multi-tenant fleet snapshot: an index of per-tenant payloads at known
  // offsets (each payload is a kPredictionService-format stream), so cold
  // activation can seek and deserialize one tenant without reading the
  // whole file.
  kFleetService = 6,
  // §4.8 online conformal recalibrator: the sliding residual window plus
  // its published sigma scale, so warm restart preserves calibration
  // bit-for-bit. (Predictor/service snapshots embed the same stream when
  // calibration is on; this kind covers the standalone file.)
  kConformalRecalibrator = 7,
};

// Every enumerator, for registry round-trip tests and tooling that has to
// enumerate the vocabulary. Keep in sync with the enum.
inline constexpr std::array<SnapshotKind, 7> kAllSnapshotKinds = {
    SnapshotKind::kLocalModel,        SnapshotKind::kExecTimeCache,
    SnapshotKind::kTrainingPool,      SnapshotKind::kStagePredictor,
    SnapshotKind::kPredictionService, SnapshotKind::kFleetService,
    SnapshotKind::kConformalRecalibrator,
};

std::string_view SnapshotKindName(SnapshotKind kind);

// Inverse of SnapshotKindName; nullopt for unrecognized names. Names and
// kinds round-trip exactly (pinned by ckpt_test's registry test).
std::optional<SnapshotKind> SnapshotKindFromName(std::string_view name);

// The versioned, CRC-checked envelope around every checkpoint payload:
//
//   u32 magic   "SSNP"
//   u32 version (envelope format, currently 1)
//   u32 kind    (SnapshotKind)
//   u64 payload_size
//   u32 payload_crc32
//   payload bytes
//
// The CRC covers the payload bytes, so truncation (size mismatch) and bit
// rot (checksum mismatch) are both detected before any payload parser runs.
void WriteSnapshotStream(std::ostream& out, SnapshotKind kind,
                         std::string_view payload);

// Reads and verifies an envelope of the expected kind; on success `payload`
// holds the verified bytes. On failure returns false and, when `error` is
// non-null, a one-line description of the first problem.
bool ReadSnapshotStream(std::istream& in, SnapshotKind kind,
                        std::string* payload, std::string* error = nullptr);

// Crash-safe file publication: writes the envelope to `path + ".tmp"`,
// flushes, and atomically renames over `path`. A writer killed mid-write
// leaves at most a stale *.tmp behind — the previously published snapshot
// at `path` is never touched until the new one is fully on disk.
bool WriteSnapshotFile(const std::string& path, SnapshotKind kind,
                       std::string_view payload, std::string* error = nullptr);

// Reads and verifies a published snapshot file (never the *.tmp).
bool ReadSnapshotFile(const std::string& path, SnapshotKind kind,
                      std::string* payload, std::string* error = nullptr);

}  // namespace stage::ckpt

#endif  // STAGE_CKPT_SNAPSHOT_FILE_H_
