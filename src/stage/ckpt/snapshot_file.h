#ifndef STAGE_CKPT_SNAPSHOT_FILE_H_
#define STAGE_CKPT_SNAPSHOT_FILE_H_

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <string_view>

namespace stage::ckpt {

// What a snapshot file contains; written into the envelope header so a
// reader can never mistake, say, a bare local-model checkpoint for a full
// service snapshot.
enum class SnapshotKind : uint32_t {
  kLocalModel = 1,
  kExecTimeCache = 2,
  kTrainingPool = 3,
  kStagePredictor = 4,
  kPredictionService = 5,
};

std::string_view SnapshotKindName(SnapshotKind kind);

// The versioned, CRC-checked envelope around every checkpoint payload:
//
//   u32 magic   "SSNP"
//   u32 version (envelope format, currently 1)
//   u32 kind    (SnapshotKind)
//   u64 payload_size
//   u32 payload_crc32
//   payload bytes
//
// The CRC covers the payload bytes, so truncation (size mismatch) and bit
// rot (checksum mismatch) are both detected before any payload parser runs.
void WriteSnapshotStream(std::ostream& out, SnapshotKind kind,
                         std::string_view payload);

// Reads and verifies an envelope of the expected kind; on success `payload`
// holds the verified bytes. On failure returns false and, when `error` is
// non-null, a one-line description of the first problem.
bool ReadSnapshotStream(std::istream& in, SnapshotKind kind,
                        std::string* payload, std::string* error = nullptr);

// Crash-safe file publication: writes the envelope to `path + ".tmp"`,
// flushes, and atomically renames over `path`. A writer killed mid-write
// leaves at most a stale *.tmp behind — the previously published snapshot
// at `path` is never touched until the new one is fully on disk.
bool WriteSnapshotFile(const std::string& path, SnapshotKind kind,
                       std::string_view payload, std::string* error = nullptr);

// Reads and verifies a published snapshot file (never the *.tmp).
bool ReadSnapshotFile(const std::string& path, SnapshotKind kind,
                      std::string* payload, std::string* error = nullptr);

}  // namespace stage::ckpt

#endif  // STAGE_CKPT_SNAPSHOT_FILE_H_
