#ifndef STAGE_CKPT_CHECKPOINT_H_
#define STAGE_CKPT_CHECKPOINT_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "stage/calib/conformal.h"
#include "stage/ckpt/snapshot_file.h"
#include "stage/core/stage_predictor.h"
#include "stage/local/local_model.h"
#include "stage/obs/metrics.h"
#include "stage/serve/prediction_service.h"

namespace stage::ckpt {

// Crash-safe snapshot/warm-restart entry points (the deployment story of
// paper §4.4 extended to the whole predictor: "train once, ship the
// checkpoint to every instance" only works if the checkpoint is complete
// and restarts are warm). Each helper serializes the object's SaveCheckpoint
// / Save stream into the CRC-checked envelope and publishes it with the
// write-tmp-then-rename protocol of snapshot_file.h.

// Full PredictionService state (sharded cache, pool, cadence, local model).
bool SaveServiceSnapshot(const serve::PredictionService& service,
                         const std::string& path,
                         std::string* error = nullptr);
bool LoadServiceSnapshot(serve::PredictionService* service,
                         const std::string& path,
                         std::string* error = nullptr);

// Single-threaded StagePredictor state (cache, pool, cadence, local model).
bool SavePredictorSnapshot(const core::StagePredictor& predictor,
                           const std::string& path,
                           std::string* error = nullptr);
bool LoadPredictorSnapshot(core::StagePredictor* predictor,
                           const std::string& path,
                           std::string* error = nullptr);

// Bare local model (the §4.3 ensemble, including the MAE member).
bool SaveLocalModelSnapshot(const local::LocalModel& model,
                            const std::string& path,
                            std::string* error = nullptr);
bool LoadLocalModelSnapshot(local::LocalModel* model, const std::string& path,
                            std::string* error = nullptr);

// Bare §4.8 conformal recalibrator (sliding residual window + published
// scale). The target's window_capacity must match the writer's; Load is
// transactional (false on mismatch/corruption, target untouched).
bool SaveRecalibratorSnapshot(const calib::ConformalRecalibrator& recalibrator,
                              const std::string& path,
                              std::string* error = nullptr);
bool LoadRecalibratorSnapshot(calib::ConformalRecalibrator* recalibrator,
                              const std::string& path,
                              std::string* error = nullptr);

// Background checkpointer: snapshots a PredictionService to `path` every
// `interval`, on a dedicated thread, using the atomic-rename protocol — a
// crash at any instant leaves the last published snapshot loadable. The
// service's SaveCheckpoint pauses writers (never readers) for the duration
// of the state serialization, so periodic checkpointing does not stall the
// prediction path. The service must outlive the checkpointer.
class PeriodicCheckpointer {
 public:
  struct Options {
    std::string path;
    std::chrono::milliseconds interval{60000};
    // When true, write one snapshot immediately on construction.
    bool checkpoint_on_start = false;
    // Optional observability sink: snapshots written/failed, bytes
    // published, and write duration are exposed under `metrics_prefix`.
    // Must outlive the checkpointer (callbacks unregister on destruction).
    obs::MetricsRegistry* metrics = nullptr;
    std::string metrics_prefix = "stage_ckpt_";
  };

  PeriodicCheckpointer(const serve::PredictionService& service,
                       Options options);
  ~PeriodicCheckpointer();

  PeriodicCheckpointer(const PeriodicCheckpointer&) = delete;
  PeriodicCheckpointer& operator=(const PeriodicCheckpointer&) = delete;

  // Writes one snapshot synchronously on the calling thread (safe to race
  // the background thread; the rename publication serializes in the
  // filesystem). Returns false and fills `error` on failure.
  bool TriggerNow(std::string* error = nullptr);

  // Stops the background thread after at most one more in-flight snapshot.
  // Idempotent; also called by the destructor.
  void Stop();

  uint64_t completed() const {
    return completed_.load(std::memory_order_relaxed);
  }
  uint64_t failed() const { return failed_.load(std::memory_order_relaxed); }
  // Last failure message; empty when every snapshot so far succeeded.
  std::string last_error() const;

  // Bytes published across all successful snapshots, and the size of the
  // most recent one (0 before the first success).
  uint64_t bytes_written() const {
    return bytes_written_.load(std::memory_order_relaxed);
  }
  uint64_t last_snapshot_bytes() const {
    return last_snapshot_bytes_.load(std::memory_order_relaxed);
  }

 private:
  void Loop();
  void RegisterMetrics();
  bool WriteOnce(std::string* error);

  const serve::PredictionService& service_;
  const Options options_;
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> failed_{0};
  std::atomic<uint64_t> bytes_written_{0};
  std::atomic<uint64_t> last_snapshot_bytes_{0};
  obs::Histogram* write_duration_ns_ = nullptr;  // Owned by the registry.
  mutable std::mutex error_mutex_;
  std::string last_error_;
  std::mutex stop_mutex_;
  std::condition_variable stop_cv_;
  bool stopping_ = false;
  std::thread worker_;
};

}  // namespace stage::ckpt

#endif  // STAGE_CKPT_CHECKPOINT_H_
