#ifndef STAGE_PLAN_FEATURIZER_H_
#define STAGE_PLAN_FEATURIZER_H_

#include <array>
#include <cstdint>
#include <vector>

#include "stage/plan/plan.h"

namespace stage::plan {

// Width of the flattened plan vector used by the exec-time cache, the local
// model, and the AutoWLM baseline (the paper's 33-dimensional vector, §4.1).
inline constexpr int kPlanFeatureDim = 33;

using PlanFeatures = std::array<float, kPlanFeatureDim>;

// Flattens a physical plan tree into the 33-dimensional vector of §4.2:
// per operator group, the summed estimated cost and cardinality (log1p
// compressed), plus plan-shape summaries and the query-type one-hot.
//
// Layout:
//   [0 .. 25]  13 operator groups x (log1p sum cost, log1p sum cardinality)
//   [26]       node count
//   [27]       tree depth
//   [28]       log1p(max tuple width)
//   [29 .. 32] query-type one-hot (SELECT / INSERT / UPDATE / DELETE)
PlanFeatures FlattenPlan(const Plan& plan);

// 64-bit hash of a feature vector; the exec-time cache key (§4.2,
// Optimization 1: store the hash instead of the full vector).
uint64_t HashFeatures(const PlanFeatures& features);

// ---- Global-model (tree GCN) featurization, §4.4 ----------------------

// Per-node feature width: 90-slot operator one-hot, log1p(cost),
// log1p(cardinality), log1p(width), S3-format one-hot, log1p(table rows).
inline constexpr int kNodeFeatureDim =
    kOperatorOneHotSlots + 3 + static_cast<int>(S3Format::kNumFormats) + 1;

// Writes node features for every plan node, row-major
// [node_count x kNodeFeatureDim], in plan-node order.
std::vector<float> NodeFeatures(const Plan& plan);

// Same, into a caller-owned buffer (resized to fit; capacity is reused, so
// repeated featurization on the serving path allocates nothing once warm).
void NodeFeaturesInto(const Plan& plan, std::vector<float>* out);

}  // namespace stage::plan

#endif  // STAGE_PLAN_FEATURIZER_H_
