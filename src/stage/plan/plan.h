#ifndef STAGE_PLAN_PLAN_H_
#define STAGE_PLAN_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "stage/plan/operator_type.h"

namespace stage::plan {

// One node of a physical execution plan tree, carrying the optimizer's
// estimates — the same information the Stage predictor reads from Redshift's
// STL_EXPLAIN logs (§4.4).
struct PlanNode {
  OperatorType op = OperatorType::kUnknown;
  // Optimizer cost estimate (arbitrary cost units, like Redshift's).
  double estimated_cost = 0.0;
  // Optimizer output-cardinality estimate (rows).
  double estimated_cardinality = 0.0;
  // Estimated output tuple width in bytes.
  double tuple_width = 0.0;
  // Base-table storage format; kNotBaseTable unless ReadsBaseTable(op).
  S3Format s3_format = S3Format::kNotBaseTable;
  // Row count of the base table read (0 unless ReadsBaseTable(op)).
  double table_rows = 0.0;
  // Identifier of the base table read (-1 unless ReadsBaseTable(op)); used
  // by the fleet's hidden ground-truth model, never by the predictors.
  int32_t table_id = -1;
  // TRUE output cardinality, known only after execution. Only the fleet's
  // hidden ground-truth latency model may read this; featurizers must use
  // estimated_cardinality. The gap between the two models Redshift's
  // cardinality-estimation error, one of the noise sources the paper cites
  // for the 33-dim vector (§4.3).
  double actual_cardinality = 0.0;
  // Indices of child nodes within Plan::nodes. Children always have larger
  // indices than their parent (nodes are stored in pre-order).
  std::vector<int32_t> children;
};

// A physical execution plan: a tree of PlanNodes rooted at nodes[0].
class Plan {
 public:
  Plan() = default;
  Plan(QueryType query_type, std::vector<PlanNode> nodes);

  QueryType query_type() const { return query_type_; }
  const std::vector<PlanNode>& nodes() const { return nodes_; }
  const PlanNode& node(int32_t index) const { return nodes_[index]; }
  int32_t root() const { return 0; }
  bool empty() const { return nodes_.empty(); }
  int node_count() const { return static_cast<int>(nodes_.size()); }

  // Longest root-to-leaf path length (1 for a single node, 0 when empty).
  int Depth() const;

  // Sum of estimated_cost over all nodes.
  double TotalEstimatedCost() const;

  // True iff nodes form a tree rooted at 0 with pre-order child indices.
  bool IsValidTree() const;

  // Indices in bottom-up order (every node appears after all its children);
  // the order the tree-GCN uses for message passing.
  std::vector<int32_t> BottomUpOrder() const;

  // Multi-line EXPLAIN-style rendering for debugging and examples.
  std::string ToString() const;

 private:
  QueryType query_type_ = QueryType::kSelect;
  std::vector<PlanNode> nodes_;
};

}  // namespace stage::plan

#endif  // STAGE_PLAN_PLAN_H_
