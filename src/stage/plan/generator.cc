#include "stage/plan/generator.h"

#include <algorithm>
#include <cmath>

#include "stage/common/macros.h"

namespace stage::plan {

namespace {

// Per-operator cost constants (arbitrary optimizer cost units). The exact
// values only shape the synthetic estimates; what matters is that cost
// correlates with work, like a real optimizer's output.
constexpr double kScanLocalCostPerRow = 0.001;
constexpr double kScanS3CostPerRow = 0.004;
constexpr double kScanOutputCostPerRow = 0.002;
constexpr double kHashCostPerRow = 0.004;
constexpr double kJoinCostPerRow = 0.003;
constexpr double kDistJoinFactor = 1.5;
constexpr double kNetworkCostPerRow = 0.005;
constexpr double kAggCostPerRow = 0.004;
constexpr double kSortCostFactor = 0.0008;
constexpr double kWindowCostPerRow = 0.006;
constexpr double kDmlCostPerRow = 0.01;

struct SubtreeInfo {
  int32_t root = -1;
  double est_card = 0.0;
  double actual_card = 0.0;
  double width = 0.0;
};

class PlanBuilder {
 public:
  PlanBuilder(const std::vector<TableDef>& schema, double actual_row_scale)
      : schema_(schema), actual_row_scale_(actual_row_scale) {}

  // Emits a node and returns its index; children are linked afterwards so
  // the vector stays in pre-order (parents before children).
  int32_t Emit(PlanNode node) {
    nodes_.push_back(std::move(node));
    return static_cast<int32_t>(nodes_.size() - 1);
  }

  void Link(int32_t parent, int32_t child) {
    nodes_[parent].children.push_back(child);
  }

  PlanNode& node(int32_t index) { return nodes_[index]; }

  std::vector<PlanNode> Take() { return std::move(nodes_); }

  SubtreeInfo BuildScan(const PlanSpec::ScanSpec& scan) {
    const TableDef& table = schema_[scan.table_index];
    PlanNode node;
    node.op = table.format == S3Format::kLocal ? OperatorType::kSeqScanLocal
                                               : OperatorType::kSeqScanS3;
    node.estimated_cardinality = table.rows * scan.selectivity;
    node.actual_cardinality =
        node.estimated_cardinality * scan.cardinality_error * actual_row_scale_;
    node.tuple_width = table.width * 0.7;  // Projection trims columns.
    node.s3_format = table.format;
    node.table_rows = table.rows;
    node.table_id = table.id;
    const double per_row = table.format == S3Format::kLocal
                               ? kScanLocalCostPerRow
                               : kScanS3CostPerRow;
    node.estimated_cost = table.rows * per_row +
                          node.estimated_cardinality * kScanOutputCostPerRow;
    const int32_t index = Emit(node);
    return {index, node.estimated_cardinality, node.actual_cardinality,
            node.tuple_width};
  }

  // Left-deep join tree over spec.scans[0..k]. Emits the join node first
  // (pre-order), then the probe subtree, then the build side.
  SubtreeInfo BuildJoinTree(const PlanSpec& spec, size_t k) {
    if (k == 0) return BuildScan(spec.scans[0]);
    const size_t join_index = k - 1;
    const auto strategy = spec.join_strategy[join_index];
    using Strategy = PlanSpec::JoinStrategy;

    // Optionally spool the join output (Materialize sits above the join).
    int32_t materialize_node = -1;
    if (spec.join_materialized[join_index]) {
      PlanNode materialize;
      materialize.op = OperatorType::kMaterialize;
      materialize_node = Emit(materialize);
    }

    PlanNode join;
    switch (strategy) {
      case Strategy::kHashLocal: join.op = OperatorType::kHashJoinLocal; break;
      case Strategy::kHashDistribute:
      case Strategy::kHashBroadcast:
        join.op = OperatorType::kHashJoinDist;
        break;
      case Strategy::kMerge: join.op = OperatorType::kMergeJoin; break;
    }
    const int32_t join_node = Emit(join);
    if (materialize_node >= 0) Link(materialize_node, join_node);

    const SubtreeInfo probe = BuildJoinTree(spec, k - 1);
    Link(join_node, probe.root);

    // Build side: [Network] -> Hash -> Scan (merge joins sort instead).
    const SubtreeInfo scan = [&] {
      if (strategy == Strategy::kMerge) {
        // Merge join: sorted scan on the build side, no hash.
        PlanNode sort;
        sort.op = OperatorType::kSort;
        const int32_t sort_node = Emit(sort);
        Link(join_node, sort_node);
        const SubtreeInfo inner = BuildScan(spec.scans[k]);
        Link(sort_node, inner.root);
        PlanNode& sn = node(sort_node);
        sn.estimated_cardinality = inner.est_card;
        sn.actual_cardinality = inner.actual_card;
        sn.tuple_width = inner.width;
        sn.estimated_cost =
            inner.est_card * std::log2(inner.est_card + 2.0) * kSortCostFactor;
        return SubtreeInfo{sort_node, inner.est_card, inner.actual_card,
                           inner.width};
      }
      if (strategy == Strategy::kHashLocal) {
        return BuildHashOverScan(spec.scans[k], join_node);
      }
      PlanNode network;
      network.op = strategy == Strategy::kHashBroadcast
                       ? OperatorType::kNetworkBroadcast
                       : OperatorType::kNetworkDistribute;
      const int32_t network_node = Emit(network);
      Link(join_node, network_node);
      const SubtreeInfo hashed = BuildHashOverScan(spec.scans[k], network_node);
      node(network_node).estimated_cardinality = hashed.est_card;
      node(network_node).actual_cardinality = hashed.actual_card;
      node(network_node).tuple_width = hashed.width;
      node(network_node).estimated_cost = hashed.est_card * kNetworkCostPerRow;
      return SubtreeInfo{network_node, hashed.est_card, hashed.actual_card,
                         hashed.width};
    }();

    const double sel = spec.join_selectivity[join_index];
    const double est_out = std::max(probe.est_card, scan.est_card) * sel;
    const double actual_out = std::max(probe.actual_card, scan.actual_card) *
                              sel * spec.join_cardinality_error[join_index];
    PlanNode& jn = node(join_node);
    jn.estimated_cardinality = est_out;
    jn.actual_cardinality = actual_out;
    jn.tuple_width = std::min(probe.width + scan.width, 4000.0);
    const double dist_factor =
        strategy == Strategy::kHashLocal || strategy == Strategy::kMerge
            ? 1.0
            : kDistJoinFactor;
    jn.estimated_cost =
        (probe.est_card + scan.est_card) * kJoinCostPerRow * dist_factor;

    SubtreeInfo result{join_node, est_out, actual_out, jn.tuple_width};
    if (materialize_node >= 0) {
      PlanNode& mn = node(materialize_node);
      mn.estimated_cardinality = est_out;
      mn.actual_cardinality = actual_out;
      mn.tuple_width = jn.tuple_width;
      mn.estimated_cost = est_out * kHashCostPerRow;
      result.root = materialize_node;
    }
    return result;
  }

  SubtreeInfo BuildHashOverScan(const PlanSpec::ScanSpec& scan_spec,
                                int32_t parent) {
    PlanNode hash;
    hash.op = OperatorType::kHash;
    const int32_t hash_node = Emit(hash);
    Link(parent, hash_node);
    const SubtreeInfo scan = BuildScan(scan_spec);
    Link(hash_node, scan.root);
    PlanNode& hn = node(hash_node);
    hn.estimated_cardinality = scan.est_card;
    hn.actual_cardinality = scan.actual_card;
    hn.tuple_width = scan.width;
    hn.estimated_cost = scan.est_card * kHashCostPerRow;
    return {hash_node, scan.est_card, scan.actual_card, scan.width};
  }

 private:
  const std::vector<TableDef>& schema_;
  const double actual_row_scale_;
  std::vector<PlanNode> nodes_;
};

}  // namespace

PlanGenerator::PlanGenerator(std::vector<TableDef> schema,
                             GeneratorConfig config)
    : schema_(std::move(schema)), config_(config) {
  STAGE_CHECK(!schema_.empty());
  for (const TableDef& table : schema_) {
    STAGE_CHECK(table.rows > 0 && table.width > 0);
    STAGE_CHECK(table.format != S3Format::kNotBaseTable);
  }
}

PlanSpec PlanGenerator::RandomSpec(Rng& rng) const {
  PlanSpec spec;

  int joins = 0;
  while (joins < config_.max_joins &&
         rng.NextBernoulli(config_.join_count_decay)) {
    ++joins;
  }

  const double log_min_sel = std::log10(config_.min_selectivity);
  for (int i = 0; i <= joins; ++i) {
    PlanSpec::ScanSpec scan;
    scan.table_index = static_cast<int32_t>(rng.NextBelow(schema_.size()));
    // Log-uniform selectivity: most filters are highly selective.
    scan.selectivity = std::pow(10.0, rng.NextUniform(log_min_sel, 0.0));
    scan.cardinality_error =
        rng.NextLogNormal(0.0, config_.cardinality_error_sigma);
    spec.scans.push_back(scan);
  }
  for (int i = 0; i < joins; ++i) {
    spec.join_selectivity.push_back(rng.NextUniform(0.05, 1.2));
    spec.join_cardinality_error.push_back(
        rng.NextLogNormal(0.0, config_.cardinality_error_sigma));
    constexpr PlanSpec::JoinStrategy kStrategies[] = {
        PlanSpec::JoinStrategy::kHashLocal,
        PlanSpec::JoinStrategy::kHashDistribute,
        PlanSpec::JoinStrategy::kHashBroadcast,
        PlanSpec::JoinStrategy::kMerge,
    };
    spec.join_strategy.push_back(
        kStrategies[rng.NextWeighted({0.5, 0.3, 0.12, 0.08})]);
    spec.join_materialized.push_back(rng.NextBernoulli(0.08));
  }

  if (rng.NextBernoulli(config_.prob_dml)) {
    constexpr QueryType kDmlTypes[] = {QueryType::kInsert, QueryType::kUpdate,
                                       QueryType::kDelete};
    spec.query_type = kDmlTypes[rng.NextBelow(3)];
    return spec;  // DML plans keep a bare join tree under the DML root.
  }

  spec.has_aggregate = rng.NextBernoulli(config_.prob_aggregate);
  spec.aggregate_fraction = std::pow(10.0, rng.NextUniform(-4.0, -0.3));
  spec.has_sort = rng.NextBernoulli(config_.prob_sort);
  spec.has_window = rng.NextBernoulli(config_.prob_window);
  spec.has_limit = rng.NextBernoulli(config_.prob_limit);
  spec.limit_rows = std::pow(10.0, rng.NextUniform(1.0, 4.0));
  return spec;
}

PlanSpec PlanGenerator::JitterParams(const PlanSpec& spec, Rng& rng,
                                     double jitter_sigma) const {
  PlanSpec jittered = spec;
  for (auto& scan : jittered.scans) {
    scan.selectivity = std::clamp(
        scan.selectivity * rng.NextLogNormal(0.0, jitter_sigma),
        config_.min_selectivity, 1.0);
  }
  for (auto& sel : jittered.join_selectivity) {
    sel = std::clamp(sel * rng.NextLogNormal(0.0, jitter_sigma * 0.5), 0.01,
                     1.5);
  }
  return jittered;
}

PlanSpec PlanGenerator::MutateTemplate(const PlanSpec& spec, Rng& rng,
                                       double jitter_sigma) const {
  PlanSpec mutated = JitterParams(spec, rng, jitter_sigma);
  for (auto& scan : mutated.scans) {
    scan.cardinality_error =
        rng.NextLogNormal(0.0, config_.cardinality_error_sigma);
  }
  for (auto& error : mutated.join_cardinality_error) {
    error = rng.NextLogNormal(0.0, config_.cardinality_error_sigma);
  }
  return mutated;
}

Plan PlanGenerator::Instantiate(const PlanSpec& spec,
                                double actual_row_scale) const {
  STAGE_CHECK(actual_row_scale > 0.0);
  STAGE_CHECK(!spec.scans.empty());
  STAGE_CHECK(spec.join_selectivity.size() == spec.scans.size() - 1);
  STAGE_CHECK(spec.join_cardinality_error.size() == spec.scans.size() - 1);
  STAGE_CHECK(spec.join_strategy.size() == spec.scans.size() - 1);
  STAGE_CHECK(spec.join_materialized.size() == spec.scans.size() - 1);
  for (const auto& scan : spec.scans) {
    STAGE_CHECK(scan.table_index >= 0 &&
                scan.table_index < static_cast<int32_t>(schema_.size()));
  }

  PlanBuilder builder(schema_, actual_row_scale);

  // Emit the pipeline above the join tree top-down so the node vector stays
  // in pre-order: Root -> [Limit] -> [Sort] -> [Window] -> [Agg] -> joins.
  struct Pending {
    int32_t index;
    OperatorType op;
  };
  std::vector<Pending> pipeline;
  int32_t parent = -1;
  auto emit_chain = [&](OperatorType op) {
    PlanNode node;
    node.op = op;
    const int32_t index = builder.Emit(node);
    if (parent >= 0) builder.Link(parent, index);
    pipeline.push_back({index, op});
    parent = index;
  };

  const bool is_dml = spec.query_type != QueryType::kSelect;
  if (is_dml) {
    switch (spec.query_type) {
      case QueryType::kInsert: emit_chain(OperatorType::kInsert); break;
      case QueryType::kUpdate: emit_chain(OperatorType::kUpdate); break;
      case QueryType::kDelete: emit_chain(OperatorType::kDelete); break;
      default: STAGE_CHECK_MSG(false, "unexpected DML type");
    }
  } else {
    emit_chain(OperatorType::kNetworkReturn);
    if (spec.has_limit) emit_chain(OperatorType::kLimit);
    if (spec.has_sort) {
      emit_chain(spec.has_limit ? OperatorType::kTopSort
                                : OperatorType::kSort);
    }
    if (spec.has_window) emit_chain(OperatorType::kWindow);
    if (spec.has_aggregate) emit_chain(OperatorType::kHashAggregate);
  }

  const SubtreeInfo joins = builder.BuildJoinTree(spec, spec.scans.size() - 1);
  builder.Link(parent, joins.root);

  // Fill in the pipeline estimates bottom-up.
  double est = joins.est_card;
  double actual = joins.actual_card;
  double width = joins.width;
  for (auto it = pipeline.rbegin(); it != pipeline.rend(); ++it) {
    PlanNode& node = builder.node(it->index);
    double cost = 0.0;
    switch (it->op) {
      case OperatorType::kHashAggregate:
        cost = est * kAggCostPerRow;
        est *= spec.aggregate_fraction;
        actual *= spec.aggregate_fraction;
        width *= 0.8;
        break;
      case OperatorType::kWindow:
        cost = est * kWindowCostPerRow;
        width += 16.0;
        break;
      case OperatorType::kSort:
      case OperatorType::kTopSort:
        cost = est * std::log2(est + 2.0) * kSortCostFactor;
        break;
      case OperatorType::kLimit:
        est = std::min(est, spec.limit_rows);
        actual = std::min(actual, spec.limit_rows);
        cost = est * 1e-4;
        break;
      case OperatorType::kNetworkReturn:
        cost = est * kNetworkCostPerRow;
        break;
      case OperatorType::kInsert:
      case OperatorType::kUpdate:
      case OperatorType::kDelete:
        cost = est * kDmlCostPerRow;
        break;
      default:
        STAGE_CHECK_MSG(false, "unexpected pipeline operator");
    }
    node.estimated_cost = cost;
    node.estimated_cardinality = est;
    node.actual_cardinality = actual;
    node.tuple_width = width;
    if (it->op == OperatorType::kInsert || it->op == OperatorType::kUpdate ||
        it->op == OperatorType::kDelete) {
      // DML nodes write the first scanned table.
      const TableDef& table = schema_[spec.scans[0].table_index];
      node.table_id = table.id;
      node.table_rows = table.rows;
      node.s3_format = table.format;
    }
  }

  return Plan(spec.query_type, builder.Take());
}

}  // namespace stage::plan
