#include "stage/plan/plan.h"

#include <algorithm>
#include <sstream>
#include <vector>

#include "stage/common/macros.h"

namespace stage::plan {

Plan::Plan(QueryType query_type, std::vector<PlanNode> nodes)
    : query_type_(query_type), nodes_(std::move(nodes)) {
  STAGE_CHECK_MSG(IsValidTree(), "PlanNode vector does not form a tree");
}

int Plan::Depth() const {
  if (nodes_.empty()) return 0;
  // Pre-order storage: a node's depth is known before its children's.
  // Thread-local scratch: Depth() sits on the allocation-free predict hot
  // path (global::SystemFeaturesInto calls it per query).
  thread_local std::vector<int> depth;
  depth.assign(nodes_.size(), 1);
  int max_depth = 1;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    for (int32_t child : nodes_[i].children) {
      depth[child] = depth[i] + 1;
      max_depth = std::max(max_depth, depth[child]);
    }
  }
  return max_depth;
}

double Plan::TotalEstimatedCost() const {
  double total = 0.0;
  for (const PlanNode& node : nodes_) total += node.estimated_cost;
  return total;
}

bool Plan::IsValidTree() const {
  if (nodes_.empty()) return false;
  std::vector<int> parent_count(nodes_.size(), 0);
  for (size_t i = 0; i < nodes_.size(); ++i) {
    for (int32_t child : nodes_[i].children) {
      if (child <= static_cast<int32_t>(i) ||
          child >= static_cast<int32_t>(nodes_.size())) {
        return false;  // Children must come after their parent (pre-order).
      }
      if (++parent_count[child] > 1) return false;
    }
  }
  // Every node except the root must have exactly one parent.
  for (size_t i = 1; i < nodes_.size(); ++i) {
    if (parent_count[i] != 1) return false;
  }
  return parent_count[0] == 0;
}

std::vector<int32_t> Plan::BottomUpOrder() const {
  // Pre-order guarantees children have larger indices than parents, so a
  // simple descending index order is a valid bottom-up traversal.
  std::vector<int32_t> order(nodes_.size());
  for (size_t i = 0; i < nodes_.size(); ++i) {
    order[i] = static_cast<int32_t>(nodes_.size() - 1 - i);
  }
  return order;
}

std::string Plan::ToString() const {
  std::ostringstream out;
  out << QueryTypeName(query_type_) << " plan (" << nodes_.size()
      << " nodes)\n";
  // Depth-first walk with indentation.
  struct Frame {
    int32_t node;
    int depth;
  };
  std::vector<Frame> stack = {{0, 0}};
  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();
    const PlanNode& node = nodes_[frame.node];
    for (int i = 0; i < frame.depth; ++i) out << "  ";
    out << "-> " << OperatorTypeName(node.op)
        << " (cost=" << node.estimated_cost
        << " rows=" << node.estimated_cardinality
        << " width=" << node.tuple_width;
    if (ReadsBaseTable(node.op)) {
      out << " format=" << S3FormatName(node.s3_format)
          << " table_rows=" << node.table_rows;
    }
    out << ")\n";
    // Push children in reverse so the left child prints first.
    for (auto it = node.children.rbegin(); it != node.children.rend(); ++it) {
      stack.push_back({*it, frame.depth + 1});
    }
  }
  return out.str();
}

}  // namespace stage::plan
