#ifndef STAGE_PLAN_OPERATOR_TYPE_H_
#define STAGE_PLAN_OPERATOR_TYPE_H_

#include <cstdint>
#include <string_view>

namespace stage::plan {

// Physical operator types. Redshift has 90 unique operator types (§4.4); we
// model a representative subset but keep the one-hot space at 90 slots so the
// global-model featurization is dimensionally faithful.
enum class OperatorType : uint8_t {
  kSeqScanLocal = 0,    // Scan of a locally stored (Redshift-managed) table.
  kSeqScanS3,           // Spectrum scan of an external S3 table.
  kIndexScan,           // (Rare) index-assisted scan.
  kHashJoinLocal,       // Hash join, co-located.
  kHashJoinDist,        // Distributed hash join (needs redistribution).
  kMergeJoin,
  kNestedLoopJoin,
  kHash,                // Hash build side.
  kAggregate,           // Plain (scalar) aggregate.
  kHashAggregate,       // Grouped aggregate via hashing.
  kGroupAggregate,      // Grouped aggregate over sorted input.
  kSort,
  kTopSort,             // Sort bounded by LIMIT.
  kMaterialize,
  kNetworkDistribute,   // Redistribute rows across slices.
  kNetworkBroadcast,    // Broadcast rows to all slices.
  kNetworkReturn,       // Return rows to the leader node.
  kWindow,
  kUnique,
  kLimit,
  kAppend,              // UNION ALL style concatenation.
  kSubqueryScan,
  kResult,              // Leader-side result projection.
  kProject,             // Expression evaluation / projection.
  kInsert,
  kDelete,
  kUpdate,
  kCopy,                // Bulk load.
  kVacuum,
  kUnknown,             // Catch-all for the long tail of operators.
  kNumOperators,
};

// Size of the operator one-hot block in the global model's node features.
// Matches the 90 unique operator types reported for Redshift even though we
// only instantiate kNumOperators of them.
inline constexpr int kOperatorOneHotSlots = 90;

// Coarse operator groups used by the 33-dimensional flattened plan vector:
// the paper "collects operator nodes of the same type and sums up their
// estimated cost and cardinality" (§4.2); grouping the 90 raw types into 13
// families keeps the vector at its published width.
enum class OperatorGroup : uint8_t {
  kLocalScan = 0,
  kS3Scan,
  kHashJoin,
  kMergeJoin,
  kNestedLoop,
  kHashBuild,
  kAggregate,
  kSort,
  kNetwork,
  kMaterialize,
  kWindow,
  kDml,
  kOther,
  kNumGroups,
};

// SQL statement type; part of the flattened feature vector (§4.2).
enum class QueryType : uint8_t {
  kSelect = 0,
  kInsert,
  kUpdate,
  kDelete,
  kNumQueryTypes,
};

// Storage format of the base table a scan reads ("Null" when the operator
// does not directly read a base table, §4.4).
enum class S3Format : uint8_t {
  kNotBaseTable = 0,
  kLocal,
  kParquet,
  kOpenCsv,
  kText,
  kNumFormats,
};

// Maps each concrete operator to its coarse group.
OperatorGroup GroupOf(OperatorType type);

// Human-readable names (for EXPLAIN-style dumps and bench output).
std::string_view OperatorTypeName(OperatorType type);
std::string_view QueryTypeName(QueryType type);
std::string_view S3FormatName(S3Format format);

// True for operators that read a base table directly (scans / DML targets).
bool ReadsBaseTable(OperatorType type);

}  // namespace stage::plan

#endif  // STAGE_PLAN_OPERATOR_TYPE_H_
