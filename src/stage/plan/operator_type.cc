#include "stage/plan/operator_type.h"

#include "stage/common/macros.h"

namespace stage::plan {

OperatorGroup GroupOf(OperatorType type) {
  switch (type) {
    case OperatorType::kSeqScanLocal:
    case OperatorType::kIndexScan:
      return OperatorGroup::kLocalScan;
    case OperatorType::kSeqScanS3:
      return OperatorGroup::kS3Scan;
    case OperatorType::kHashJoinLocal:
    case OperatorType::kHashJoinDist:
      return OperatorGroup::kHashJoin;
    case OperatorType::kMergeJoin:
      return OperatorGroup::kMergeJoin;
    case OperatorType::kNestedLoopJoin:
      return OperatorGroup::kNestedLoop;
    case OperatorType::kHash:
      return OperatorGroup::kHashBuild;
    case OperatorType::kAggregate:
    case OperatorType::kHashAggregate:
    case OperatorType::kGroupAggregate:
      return OperatorGroup::kAggregate;
    case OperatorType::kSort:
    case OperatorType::kTopSort:
      return OperatorGroup::kSort;
    case OperatorType::kNetworkDistribute:
    case OperatorType::kNetworkBroadcast:
    case OperatorType::kNetworkReturn:
      return OperatorGroup::kNetwork;
    case OperatorType::kMaterialize:
      return OperatorGroup::kMaterialize;
    case OperatorType::kWindow:
      return OperatorGroup::kWindow;
    case OperatorType::kInsert:
    case OperatorType::kDelete:
    case OperatorType::kUpdate:
    case OperatorType::kCopy:
    case OperatorType::kVacuum:
      return OperatorGroup::kDml;
    case OperatorType::kUnique:
    case OperatorType::kLimit:
    case OperatorType::kAppend:
    case OperatorType::kSubqueryScan:
    case OperatorType::kResult:
    case OperatorType::kProject:
    case OperatorType::kUnknown:
      return OperatorGroup::kOther;
    case OperatorType::kNumOperators:
      break;
  }
  STAGE_CHECK_MSG(false, "invalid OperatorType");
  return OperatorGroup::kOther;
}

std::string_view OperatorTypeName(OperatorType type) {
  switch (type) {
    case OperatorType::kSeqScanLocal: return "SeqScan";
    case OperatorType::kSeqScanS3: return "S3 SeqScan";
    case OperatorType::kIndexScan: return "IndexScan";
    case OperatorType::kHashJoinLocal: return "HashJoin";
    case OperatorType::kHashJoinDist: return "DistHashJoin";
    case OperatorType::kMergeJoin: return "MergeJoin";
    case OperatorType::kNestedLoopJoin: return "NestedLoop";
    case OperatorType::kHash: return "Hash";
    case OperatorType::kAggregate: return "Aggregate";
    case OperatorType::kHashAggregate: return "HashAggregate";
    case OperatorType::kGroupAggregate: return "GroupAggregate";
    case OperatorType::kSort: return "Sort";
    case OperatorType::kTopSort: return "TopSort";
    case OperatorType::kMaterialize: return "Materialize";
    case OperatorType::kNetworkDistribute: return "Network(Distribute)";
    case OperatorType::kNetworkBroadcast: return "Network(Broadcast)";
    case OperatorType::kNetworkReturn: return "Network(Return)";
    case OperatorType::kWindow: return "Window";
    case OperatorType::kUnique: return "Unique";
    case OperatorType::kLimit: return "Limit";
    case OperatorType::kAppend: return "Append";
    case OperatorType::kSubqueryScan: return "SubqueryScan";
    case OperatorType::kResult: return "Result";
    case OperatorType::kProject: return "Project";
    case OperatorType::kInsert: return "Insert";
    case OperatorType::kDelete: return "Delete";
    case OperatorType::kUpdate: return "Update";
    case OperatorType::kCopy: return "Copy";
    case OperatorType::kVacuum: return "Vacuum";
    case OperatorType::kUnknown: return "Unknown";
    case OperatorType::kNumOperators: break;
  }
  STAGE_CHECK_MSG(false, "invalid OperatorType");
  return "";
}

std::string_view QueryTypeName(QueryType type) {
  switch (type) {
    case QueryType::kSelect: return "SELECT";
    case QueryType::kInsert: return "INSERT";
    case QueryType::kUpdate: return "UPDATE";
    case QueryType::kDelete: return "DELETE";
    case QueryType::kNumQueryTypes: break;
  }
  STAGE_CHECK_MSG(false, "invalid QueryType");
  return "";
}

std::string_view S3FormatName(S3Format format) {
  switch (format) {
    case S3Format::kNotBaseTable: return "Null";
    case S3Format::kLocal: return "Local";
    case S3Format::kParquet: return "Parquet";
    case S3Format::kOpenCsv: return "OpenCSV";
    case S3Format::kText: return "Text";
    case S3Format::kNumFormats: break;
  }
  STAGE_CHECK_MSG(false, "invalid S3Format");
  return "";
}

bool ReadsBaseTable(OperatorType type) {
  switch (type) {
    case OperatorType::kSeqScanLocal:
    case OperatorType::kSeqScanS3:
    case OperatorType::kIndexScan:
    case OperatorType::kInsert:
    case OperatorType::kDelete:
    case OperatorType::kUpdate:
    case OperatorType::kCopy:
      return true;
    default:
      return false;
  }
}

}  // namespace stage::plan
