#include "stage/plan/featurizer.h"

#include <cmath>
#include <cstring>

#include "stage/common/macros.h"

namespace stage::plan {

namespace {

float Log1p(double v) { return static_cast<float>(std::log1p(v < 0 ? 0 : v)); }

}  // namespace

PlanFeatures FlattenPlan(const Plan& plan) {
  STAGE_CHECK(!plan.empty());
  constexpr int kNumGroups = static_cast<int>(OperatorGroup::kNumGroups);
  static_assert(kPlanFeatureDim ==
                    2 * kNumGroups + 3 +
                        static_cast<int>(QueryType::kNumQueryTypes),
                "feature layout must add up to 33");

  double group_cost[kNumGroups] = {};
  double group_card[kNumGroups] = {};
  double max_width = 0.0;
  for (const PlanNode& node : plan.nodes()) {
    const int group = static_cast<int>(GroupOf(node.op));
    group_cost[group] += node.estimated_cost;
    group_card[group] += node.estimated_cardinality;
    if (node.tuple_width > max_width) max_width = node.tuple_width;
  }

  PlanFeatures features{};
  for (int g = 0; g < kNumGroups; ++g) {
    features[2 * g] = Log1p(group_cost[g]);
    features[2 * g + 1] = Log1p(group_card[g]);
  }
  features[2 * kNumGroups] = static_cast<float>(plan.node_count());
  features[2 * kNumGroups + 1] = static_cast<float>(plan.Depth());
  features[2 * kNumGroups + 2] = Log1p(max_width);
  features[2 * kNumGroups + 3 + static_cast<int>(plan.query_type())] = 1.0f;
  return features;
}

uint64_t HashFeatures(const PlanFeatures& features) {
  // FNV-1a over the raw float bytes. Identical plans produce bit-identical
  // feature vectors (the generator and optimizer estimates are
  // deterministic), so byte hashing is exact. The paper observed zero
  // collisions across the top-200 fleet instances with this scheme.
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (float f : features) {
    uint32_t bits;
    std::memcpy(&bits, &f, sizeof(bits));
    for (int shift = 0; shift < 32; shift += 8) {
      hash ^= (bits >> shift) & 0xffu;
      hash *= 0x100000001b3ULL;
    }
  }
  return hash;
}

std::vector<float> NodeFeatures(const Plan& plan) {
  std::vector<float> features;
  NodeFeaturesInto(plan, &features);
  return features;
}

void NodeFeaturesInto(const Plan& plan, std::vector<float>* out) {
  STAGE_CHECK(!plan.empty());
  constexpr int kFormatSlots = static_cast<int>(S3Format::kNumFormats);
  std::vector<float>& features = *out;
  features.assign(
      static_cast<size_t>(plan.node_count()) * kNodeFeatureDim, 0.0f);
  for (int i = 0; i < plan.node_count(); ++i) {
    const PlanNode& node = plan.node(i);
    float* row = features.data() + static_cast<size_t>(i) * kNodeFeatureDim;
    const int op_slot = static_cast<int>(node.op);
    STAGE_DCHECK(op_slot < kOperatorOneHotSlots);
    row[op_slot] = 1.0f;
    row[kOperatorOneHotSlots + 0] = Log1p(node.estimated_cost);
    row[kOperatorOneHotSlots + 1] = Log1p(node.estimated_cardinality);
    row[kOperatorOneHotSlots + 2] = Log1p(node.tuple_width);
    row[kOperatorOneHotSlots + 3 + static_cast<int>(node.s3_format)] = 1.0f;
    row[kOperatorOneHotSlots + 3 + kFormatSlots] = Log1p(node.table_rows);
  }
}

}  // namespace stage::plan
