#ifndef STAGE_PLAN_GENERATOR_H_
#define STAGE_PLAN_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "stage/common/rng.h"
#include "stage/plan/plan.h"

namespace stage::plan {

// A base table in an instance's (synthetic) schema.
struct TableDef {
  int32_t id = 0;
  double rows = 0.0;         // Row count.
  double width = 0.0;        // Average tuple width in bytes.
  S3Format format = S3Format::kLocal;
};

// A declarative description of a query: which tables it touches, its
// selectivities, and its shape. A spec plays the role of a SQL *template*:
// instantiating the same spec twice yields bit-identical plans (an exactly
// repeated query, which hits the exec-time cache), while JitterParams
// produces a parameter variant (same SQL shape, different literals) that
// misses the cache but should be handled by the "fuzzy cache" local model.
struct PlanSpec {
  QueryType query_type = QueryType::kSelect;

  struct ScanSpec {
    int32_t table_index = 0;    // Index into the schema vector.
    double selectivity = 1.0;   // Fraction of rows surviving the scan filter.
    // Multiplicative error of the optimizer's cardinality estimate for this
    // scan: actual = estimated * cardinality_error.
    double cardinality_error = 1.0;
  };
  std::vector<ScanSpec> scans;  // Left-deep join order; >= 1 entry.

  // How join i moves and matches its build side.
  enum class JoinStrategy : uint8_t {
    kHashLocal = 0,   // Co-located hash join.
    kHashDistribute,  // Build side redistributed across slices.
    kHashBroadcast,   // Build side broadcast to all slices.
    kMerge,           // Merge join over sorted inputs.
  };

  // Per-join selectivity relative to max(left, right) input cardinality and
  // its estimation error; size == scans.size() - 1.
  std::vector<double> join_selectivity;
  std::vector<double> join_cardinality_error;
  std::vector<JoinStrategy> join_strategy;
  // Whether join i's output is materialized (spooled for reuse).
  std::vector<bool> join_materialized;

  bool has_aggregate = false;
  double aggregate_fraction = 0.1;   // Output groups / input rows.
  bool has_sort = false;
  bool has_window = false;
  bool has_limit = false;
  double limit_rows = 100.0;
};

// Tunables for random spec generation.
struct GeneratorConfig {
  int max_joins = 5;
  double join_count_decay = 0.55;    // P(adding one more join).
  double prob_aggregate = 0.55;
  double prob_sort = 0.35;
  double prob_window = 0.08;
  double prob_limit = 0.3;
  double prob_dml = 0.06;            // INSERT / UPDATE / DELETE roots.
  double min_selectivity = 1e-4;
  // Log-space std-dev of the optimizer's cardinality estimation error;
  // compounds through joins as in real systems.
  double cardinality_error_sigma = 0.9;
};

// Generates random PlanSpecs over a schema and deterministically expands
// specs into physical plan trees with optimizer estimates.
class PlanGenerator {
 public:
  PlanGenerator(std::vector<TableDef> schema, GeneratorConfig config);

  const std::vector<TableDef>& schema() const { return schema_; }
  const GeneratorConfig& config() const { return config_; }

  // Draws a random query spec (template).
  PlanSpec RandomSpec(Rng& rng) const;

  // Returns a parameter variant of `spec`: same structure and tables, with
  // selectivities scaled by log-normal jitter (different literal values).
  // The hidden cardinality errors are preserved: the same query with other
  // literals keeps the optimizer's estimation bias.
  PlanSpec JitterParams(const PlanSpec& spec, Rng& rng,
                        double jitter_sigma = 0.5) const;

  // Returns a *different query* derived from the same structural archetype:
  // selectivities are mildly jittered AND the hidden cardinality-error
  // factors are redrawn. The resulting template has a flattened feature
  // vector close to the original's but genuinely different runtime
  // behavior — the feature-space collisions that make the 33-dim vector
  // lossy in practice (§4.3) and that only an exact-match cache resolves.
  PlanSpec MutateTemplate(const PlanSpec& spec, Rng& rng,
                          double jitter_sigma = 0.3) const;

  // Deterministically expands a spec into a physical plan with estimates
  // (and hidden actual cardinalities). Pure function of its arguments.
  //
  // `actual_row_scale` models data drift with stale statistics (§4.2): the
  // optimizer's estimates (and therefore the feature vector and cache key)
  // are computed from the cataloged table sizes, while the hidden actual
  // cardinalities are scaled by this factor (e.g. 1.1 after the table grew
  // 10% without an ANALYZE).
  Plan Instantiate(const PlanSpec& spec, double actual_row_scale = 1.0) const;

 private:
  std::vector<TableDef> schema_;
  GeneratorConfig config_;
};

}  // namespace stage::plan

#endif  // STAGE_PLAN_GENERATOR_H_
