#include "stage/nn/gemm.h"

#include <algorithm>

#include "stage/common/macros.h"

namespace stage::nn {

namespace {

// Arena chunks are at least this large so tiny allocations (per-layer mask
// buffers, single-row activations) coalesce instead of fragmenting.
constexpr size_t kMinChunkFloats = 4096;

// Rows processed per block: the fan-out unit for pool parallelism. The
// value never affects results (see gemm.h).
constexpr int kRowBlock = 64;

// Output columns accumulated per register block in the forward kernel.
constexpr int kOutBlock = 16;

// One forward row: y = x * wt + bias with wt pre-transposed [in x out].
//
// Why this is fast where the naive loop is not: the naive per-output dot
// product walks a W row with a single serial float chain the compiler must
// not reassociate. Here a block of kOutBlock output accumulators lives in
// registers; each k-step broadcasts x[k] and adds x[k] * wt[k][o..] — SIMD
// across the independent output columns (contiguous in wt) while each
// individual acc[o] still starts at the bias and sums k in the naive
// order. No row packing is needed, so the kernel has no warm-up cost and
// stays fast even for one-row (single plan) calls.
void ForwardRow(int out_dim, int in_dim, const float* x, const float* wt,
                const float* bias, float* y) {
  int o0 = 0;
  for (; o0 + kOutBlock <= out_dim; o0 += kOutBlock) {
    float acc[kOutBlock];
    if (bias != nullptr) {
      for (int j = 0; j < kOutBlock; ++j) acc[j] = bias[o0 + j];
    } else {
      for (int j = 0; j < kOutBlock; ++j) acc[j] = 0.0f;
    }
    const float* wk = wt + o0;
    for (int k = 0; k < in_dim; ++k, wk += out_dim) {
      const float xk = x[k];
      for (int j = 0; j < kOutBlock; ++j) acc[j] += xk * wk[j];
    }
    for (int j = 0; j < kOutBlock; ++j) y[o0 + j] = acc[j];
  }
  if (o0 < out_dim) {
    const int tail = out_dim - o0;
    float acc[kOutBlock];
    for (int j = 0; j < tail; ++j) {
      acc[j] = bias != nullptr ? bias[o0 + j] : 0.0f;
    }
    const float* wk = wt + o0;
    for (int k = 0; k < in_dim; ++k, wk += out_dim) {
      const float xk = x[k];
      for (int j = 0; j < tail; ++j) acc[j] += xk * wk[j];
    }
    for (int j = 0; j < tail; ++j) y[o0 + j] = acc[j];
  }
}

// One input-gradient row block: dx rows [row0, ...) += dy * W. For a fixed
// o the update is a saxpy of the contiguous weight row into the contiguous
// dx row — SIMD across in_dim — and o ascends in the outer loop, so each
// dx element accumulates its o-terms in the naive order.
void GradInputBlock(int block_rows, int out_dim, int in_dim, const float* dy,
                    const float* w, float* dx) {
  for (int o = 0; o < out_dim; ++o) {
    const float* wo = w + static_cast<size_t>(o) * in_dim;
    for (int r = 0; r < block_rows; ++r) {
      const float g = dy[static_cast<size_t>(r) * out_dim + o];
      if (g == 0.0f) continue;  // ReLU/dropout zeros are common; skip like
                                // the naive backward does.
      float* dxr = dx + static_cast<size_t>(r) * in_dim;
      for (int i = 0; i < in_dim; ++i) dxr[i] += g * wo[i];
    }
  }
}

// Parameter gradients for output slots [o0, o1): each dw row and db entry
// is owned entirely by this call, accumulating batch rows in ascending
// order with the naive g == 0 skip. The inner saxpy (contiguous x row into
// contiguous dw row) is the SIMD axis.
void GradParamsRange(int o0, int o1, int rows, int out_dim, int in_dim,
                     const float* x, const float* dy, float* dw, float* db) {
  for (int o = o0; o < o1; ++o) {
    float* dwo = dw + static_cast<size_t>(o) * in_dim;
    for (int r = 0; r < rows; ++r) {
      const float g = dy[static_cast<size_t>(r) * out_dim + o];
      if (g == 0.0f) continue;
      db[o] += g;
      const float* xr = x + static_cast<size_t>(r) * in_dim;
      for (int i = 0; i < in_dim; ++i) dwo[i] += g * xr[i];
    }
  }
}

// Runs `fn(block)` for every row block, fanning out on the pool when it is
// worth it. Blocks touch disjoint output rows, so scheduling never affects
// results.
template <typename Fn>
void ForEachRowBlock(int rows, ThreadPool* pool, Fn&& fn) {
  const int blocks = (rows + kRowBlock - 1) / kRowBlock;
  if (pool != nullptr && blocks > 1) {
    pool->ParallelFor(static_cast<size_t>(blocks),
                      [&fn](size_t block) { fn(static_cast<int>(block)); });
  } else {
    for (int block = 0; block < blocks; ++block) fn(block);
  }
}

}  // namespace

float* Arena::Alloc(size_t n) {
  if (n == 0) return nullptr;
  while (chunk_index_ < chunks_.size() &&
         chunks_[chunk_index_].size() - used_ < n) {
    ++chunk_index_;
    used_ = 0;
  }
  if (chunk_index_ == chunks_.size()) {
    chunks_.emplace_back(std::max(n, kMinChunkFloats));
    used_ = 0;
  }
  float* out = chunks_[chunk_index_].data() + used_;
  used_ += n;
  return out;
}

float* Arena::AllocZeroed(size_t n) {
  float* out = Alloc(n);
  std::fill(out, out + n, 0.0f);
  return out;
}

void Arena::Reset() {
  chunk_index_ = 0;
  used_ = 0;
}

size_t Arena::CapacityFloats() const {
  size_t total = 0;
  for (const std::vector<float>& chunk : chunks_) total += chunk.size();
  return total;
}

void GemmBias(int rows, int out_dim, int in_dim, const float* x,
              const float* wt, const float* bias, float* y,
              ThreadPool* pool) {
  STAGE_DCHECK(rows >= 0 && out_dim > 0 && in_dim > 0);
  ForEachRowBlock(rows, pool, [&](int block) {
    const int row0 = block * kRowBlock;
    const int block_rows = std::min(kRowBlock, rows - row0);
    for (int r = 0; r < block_rows; ++r) {
      ForwardRow(out_dim, in_dim,
                 x + static_cast<size_t>(row0 + r) * in_dim, wt, bias,
                 y + static_cast<size_t>(row0 + r) * out_dim);
    }
  });
}

void GemmGradInput(int rows, int out_dim, int in_dim, const float* dy,
                   const float* w, float* dx, ThreadPool* pool) {
  STAGE_DCHECK(rows >= 0 && out_dim > 0 && in_dim > 0);
  ForEachRowBlock(rows, pool, [&](int block) {
    const int row0 = block * kRowBlock;
    const int block_rows = std::min(kRowBlock, rows - row0);
    GradInputBlock(block_rows, out_dim, in_dim,
                   dy + static_cast<size_t>(row0) * out_dim, w,
                   dx + static_cast<size_t>(row0) * in_dim);
  });
}

void GemmGradParams(int rows, int out_dim, int in_dim, const float* x,
                    const float* dy, float* dw, float* db, ThreadPool* pool) {
  STAGE_DCHECK(rows >= 0 && out_dim > 0 && in_dim > 0);
  // Fan out over output slots (disjoint dw rows / db entries). Layers here
  // are narrow (out_dim <= 64), so tasks take small slot groups — each one
  // still owns its dw rows outright, it just re-streams the shared x/dy.
  constexpr int kSlotBlock = 8;
  const int blocks = (out_dim + kSlotBlock - 1) / kSlotBlock;
  const auto run = [&](int block) {
    const int o0 = block * kSlotBlock;
    const int o1 = std::min(out_dim, o0 + kSlotBlock);
    GradParamsRange(o0, o1, rows, out_dim, in_dim, x, dy, dw, db);
  };
  if (pool != nullptr && blocks > 1) {
    pool->ParallelFor(static_cast<size_t>(blocks),
                      [&run](size_t block) { run(static_cast<int>(block)); });
  } else {
    for (int block = 0; block < blocks; ++block) run(block);
  }
}

}  // namespace stage::nn
