#include "stage/nn/gemm.h"

#include <algorithm>

#if defined(__x86_64__)
#include <immintrin.h>
#endif

#include "stage/common/macros.h"

namespace stage::nn {

namespace {

// Arena chunks are at least this large so tiny allocations (per-layer mask
// buffers, single-row activations) coalesce instead of fragmenting.
constexpr size_t kMinChunkFloats = 4096;

// Rows processed per block: the fan-out unit for pool parallelism. The
// value never affects results (see gemm.h).
constexpr int kRowBlock = 64;

// Output columns accumulated per register block in the forward kernel.
constexpr int kOutBlock = 16;

// One forward row: y = x * wt + bias with wt pre-transposed [in x out].
//
// Why this is fast where the naive loop is not: the naive per-output dot
// product walks a W row with a single serial float chain the compiler must
// not reassociate. Here a block of kOutBlock output accumulators lives in
// registers; each k-step broadcasts x[k] and adds x[k] * wt[k][o..] — SIMD
// across the independent output columns (contiguous in wt) while each
// individual acc[o] still starts at the bias and sums k in the naive
// order. No row packing is needed, so the kernel has no warm-up cost and
// stays fast even for one-row (single plan) calls.
void ForwardRow(int out_dim, int in_dim, const float* x, const float* wt,
                const float* bias, float* y) {
  int o0 = 0;
  for (; o0 + kOutBlock <= out_dim; o0 += kOutBlock) {
    float acc[kOutBlock];
    if (bias != nullptr) {
      for (int j = 0; j < kOutBlock; ++j) acc[j] = bias[o0 + j];
    } else {
      for (int j = 0; j < kOutBlock; ++j) acc[j] = 0.0f;
    }
    const float* wk = wt + o0;
    for (int k = 0; k < in_dim; ++k, wk += out_dim) {
      const float xk = x[k];
      for (int j = 0; j < kOutBlock; ++j) acc[j] += xk * wk[j];
    }
    for (int j = 0; j < kOutBlock; ++j) y[o0 + j] = acc[j];
  }
  if (o0 < out_dim) {
    const int tail = out_dim - o0;
    float acc[kOutBlock];
    for (int j = 0; j < tail; ++j) {
      acc[j] = bias != nullptr ? bias[o0 + j] : 0.0f;
    }
    const float* wk = wt + o0;
    for (int k = 0; k < in_dim; ++k, wk += out_dim) {
      const float xk = x[k];
      for (int j = 0; j < tail; ++j) acc[j] += xk * wk[j];
    }
    for (int j = 0; j < tail; ++j) y[o0 + j] = acc[j];
  }
}

// Rows per forward tile. ForwardRow streams the whole [in x out] weight
// panel from cache once PER ROW, so a large batch pays the panel's memory
// traffic `rows` times and each k-step's adds sit on one dependency chain
// per output lane. A tile of kRowTile rows loads each weight vector once,
// shares it across the tile (panel traffic / kRowTile), and gives the FPU
// kRowTile independent accumulator chains per lane. Every acc[r][j] still
// starts at the bias and adds x_r[k] * wt[k][j] in ascending k — the float
// sequence per output element is exactly ForwardRow's, so tiled and
// row-at-a-time calls stay bit-identical (the gemm.h contract).
constexpr int kRowTile = 4;

#if defined(__x86_64__)
// The tile kernel is compiled for AVX2 and selected at runtime: the
// baseline SSE2 build cannot hold a 4-row tile's accumulators (4 rows x 16
// columns = 16 XMM registers before weights and broadcasts), but the YMM
// file fits them in 8 registers with room to spare. The function's target
// set is avx2 WITHOUT fma, so the compiler is not allowed to contract the
// separate vmulps/vaddps below into fused multiply-adds — every lane
// performs exactly the scalar two-op sequence, keeping outputs
// bit-identical to ForwardRow on every machine, AVX2 or not.
__attribute__((target("avx2"))) void ForwardTile4Avx2(int out_dim, int in_dim,
                                                      const float* x,
                                                      const float* wt,
                                                      const float* bias,
                                                      float* y) {
  const float* x0 = x;
  const float* x1 = x + in_dim;
  const float* x2 = x1 + in_dim;
  const float* x3 = x2 + in_dim;
  float* y0 = y;
  float* y1 = y + out_dim;
  float* y2 = y1 + out_dim;
  float* y3 = y2 + out_dim;
  int o0 = 0;
  for (; o0 + 16 <= out_dim; o0 += 16) {
    const __m256 b0 = bias != nullptr ? _mm256_loadu_ps(bias + o0)
                                      : _mm256_setzero_ps();
    const __m256 b1 = bias != nullptr ? _mm256_loadu_ps(bias + o0 + 8)
                                      : _mm256_setzero_ps();
    __m256 a00 = b0, a01 = b1;
    __m256 a10 = b0, a11 = b1;
    __m256 a20 = b0, a21 = b1;
    __m256 a30 = b0, a31 = b1;
    const float* wk = wt + o0;
    for (int k = 0; k < in_dim; ++k, wk += out_dim) {
      const __m256 w0 = _mm256_loadu_ps(wk);
      const __m256 w1 = _mm256_loadu_ps(wk + 8);
      const __m256 f0 = _mm256_broadcast_ss(x0 + k);
      a00 = _mm256_add_ps(a00, _mm256_mul_ps(f0, w0));
      a01 = _mm256_add_ps(a01, _mm256_mul_ps(f0, w1));
      const __m256 f1 = _mm256_broadcast_ss(x1 + k);
      a10 = _mm256_add_ps(a10, _mm256_mul_ps(f1, w0));
      a11 = _mm256_add_ps(a11, _mm256_mul_ps(f1, w1));
      const __m256 f2 = _mm256_broadcast_ss(x2 + k);
      a20 = _mm256_add_ps(a20, _mm256_mul_ps(f2, w0));
      a21 = _mm256_add_ps(a21, _mm256_mul_ps(f2, w1));
      const __m256 f3 = _mm256_broadcast_ss(x3 + k);
      a30 = _mm256_add_ps(a30, _mm256_mul_ps(f3, w0));
      a31 = _mm256_add_ps(a31, _mm256_mul_ps(f3, w1));
    }
    _mm256_storeu_ps(y0 + o0, a00);
    _mm256_storeu_ps(y0 + o0 + 8, a01);
    _mm256_storeu_ps(y1 + o0, a10);
    _mm256_storeu_ps(y1 + o0 + 8, a11);
    _mm256_storeu_ps(y2 + o0, a20);
    _mm256_storeu_ps(y2 + o0 + 8, a21);
    _mm256_storeu_ps(y3 + o0, a30);
    _mm256_storeu_ps(y3 + o0 + 8, a31);
  }
  // Column tail: scalar, the same bias-first ascending-k order per element.
  for (; o0 < out_dim; ++o0) {
    const float b = bias != nullptr ? bias[o0] : 0.0f;
    float a0 = b, a1 = b, a2 = b, a3 = b;
    const float* wk = wt + o0;
    for (int k = 0; k < in_dim; ++k, wk += out_dim) {
      const float w = *wk;
      a0 += x0[k] * w;
      a1 += x1[k] * w;
      a2 += x2[k] * w;
      a3 += x3[k] * w;
    }
    y0[o0] = a0;
    y1[o0] = a1;
    y2[o0] = a2;
    y3[o0] = a3;
  }
}
#endif  // defined(__x86_64__)

// Whether the row-tiled forward kernel is usable on this machine. Checked
// once; without AVX2 the per-row kernel is already the best this file has
// (a 4-row tile does not fit the XMM file and measures slower than
// ForwardRow when the compiler spills it).
bool UseForwardTile() {
#if defined(__x86_64__)
  static const bool avx2 = __builtin_cpu_supports("avx2");
  return avx2;
#else
  return false;
#endif
}

// One input-gradient row block: dx rows [row0, ...) += dy * W. For a fixed
// o the update is a saxpy of the contiguous weight row into the contiguous
// dx row — SIMD across in_dim — and o ascends in the outer loop, so each
// dx element accumulates its o-terms in the naive order.
void GradInputBlock(int block_rows, int out_dim, int in_dim, const float* dy,
                    const float* w, float* dx) {
  for (int o = 0; o < out_dim; ++o) {
    const float* wo = w + static_cast<size_t>(o) * in_dim;
    for (int r = 0; r < block_rows; ++r) {
      const float g = dy[static_cast<size_t>(r) * out_dim + o];
      if (g == 0.0f) continue;  // ReLU/dropout zeros are common; skip like
                                // the naive backward does.
      float* dxr = dx + static_cast<size_t>(r) * in_dim;
      for (int i = 0; i < in_dim; ++i) dxr[i] += g * wo[i];
    }
  }
}

// Parameter gradients for output slots [o0, o1): each dw row and db entry
// is owned entirely by this call, accumulating batch rows in ascending
// order with the naive g == 0 skip. The inner saxpy (contiguous x row into
// contiguous dw row) is the SIMD axis.
void GradParamsRange(int o0, int o1, int rows, int out_dim, int in_dim,
                     const float* x, const float* dy, float* dw, float* db) {
  for (int o = o0; o < o1; ++o) {
    float* dwo = dw + static_cast<size_t>(o) * in_dim;
    for (int r = 0; r < rows; ++r) {
      const float g = dy[static_cast<size_t>(r) * out_dim + o];
      if (g == 0.0f) continue;
      db[o] += g;
      const float* xr = x + static_cast<size_t>(r) * in_dim;
      for (int i = 0; i < in_dim; ++i) dwo[i] += g * xr[i];
    }
  }
}

// Runs `fn(block)` for every row block, fanning out on the pool when it is
// worth it. Blocks touch disjoint output rows, so scheduling never affects
// results.
template <typename Fn>
void ForEachRowBlock(int rows, ThreadPool* pool, Fn&& fn) {
  const int blocks = (rows + kRowBlock - 1) / kRowBlock;
  if (pool != nullptr && blocks > 1) {
    pool->ParallelFor(static_cast<size_t>(blocks),
                      [&fn](size_t block) { fn(static_cast<int>(block)); });
  } else {
    for (int block = 0; block < blocks; ++block) fn(block);
  }
}

}  // namespace

float* Arena::Alloc(size_t n) {
  if (n == 0) return nullptr;
  while (chunk_index_ < chunks_.size() &&
         chunks_[chunk_index_].size() - used_ < n) {
    ++chunk_index_;
    used_ = 0;
  }
  if (chunk_index_ == chunks_.size()) {
    chunks_.emplace_back(std::max(n, kMinChunkFloats));
    used_ = 0;
  }
  float* out = chunks_[chunk_index_].data() + used_;
  used_ += n;
  return out;
}

float* Arena::AllocZeroed(size_t n) {
  float* out = Alloc(n);
  std::fill(out, out + n, 0.0f);
  return out;
}

void Arena::Reset() {
  chunk_index_ = 0;
  used_ = 0;
}

size_t Arena::CapacityFloats() const {
  size_t total = 0;
  for (const std::vector<float>& chunk : chunks_) total += chunk.size();
  return total;
}

void GemmBias(int rows, int out_dim, int in_dim, const float* x,
              const float* wt, const float* bias, float* y,
              ThreadPool* pool) {
  STAGE_DCHECK(rows >= 0 && out_dim > 0 && in_dim > 0);
  const bool tiled = UseForwardTile();
  ForEachRowBlock(rows, pool, [&](int block) {
    const int row0 = block * kRowBlock;
    const int block_rows = std::min(kRowBlock, rows - row0);
    int r = 0;
#if defined(__x86_64__)
    if (tiled) {
      for (; r + kRowTile <= block_rows; r += kRowTile) {
        ForwardTile4Avx2(out_dim, in_dim,
                         x + static_cast<size_t>(row0 + r) * in_dim, wt, bias,
                         y + static_cast<size_t>(row0 + r) * out_dim);
      }
    }
#else
    (void)tiled;
#endif
    for (; r < block_rows; ++r) {
      ForwardRow(out_dim, in_dim,
                 x + static_cast<size_t>(row0 + r) * in_dim, wt, bias,
                 y + static_cast<size_t>(row0 + r) * out_dim);
    }
  });
}

void GemmGradInput(int rows, int out_dim, int in_dim, const float* dy,
                   const float* w, float* dx, ThreadPool* pool) {
  STAGE_DCHECK(rows >= 0 && out_dim > 0 && in_dim > 0);
  ForEachRowBlock(rows, pool, [&](int block) {
    const int row0 = block * kRowBlock;
    const int block_rows = std::min(kRowBlock, rows - row0);
    GradInputBlock(block_rows, out_dim, in_dim,
                   dy + static_cast<size_t>(row0) * out_dim, w,
                   dx + static_cast<size_t>(row0) * in_dim);
  });
}

void GemmGradParams(int rows, int out_dim, int in_dim, const float* x,
                    const float* dy, float* dw, float* db, ThreadPool* pool) {
  STAGE_DCHECK(rows >= 0 && out_dim > 0 && in_dim > 0);
  // Fan out over output slots (disjoint dw rows / db entries). Layers here
  // are narrow (out_dim <= 64), so tasks take small slot groups — each one
  // still owns its dw rows outright, it just re-streams the shared x/dy.
  constexpr int kSlotBlock = 8;
  const int blocks = (out_dim + kSlotBlock - 1) / kSlotBlock;
  const auto run = [&](int block) {
    const int o0 = block * kSlotBlock;
    const int o1 = std::min(out_dim, o0 + kSlotBlock);
    GradParamsRange(o0, o1, rows, out_dim, in_dim, x, dy, dw, db);
  };
  if (pool != nullptr && blocks > 1) {
    pool->ParallelFor(static_cast<size_t>(blocks),
                      [&run](size_t block) { run(static_cast<int>(block)); });
  } else {
    for (int block = 0; block < blocks; ++block) run(block);
  }
}

}  // namespace stage::nn
