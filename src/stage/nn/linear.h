#ifndef STAGE_NN_LINEAR_H_
#define STAGE_NN_LINEAR_H_

#include <istream>
#include <ostream>
#include <vector>

#include "stage/common/rng.h"
#include "stage/common/thread_pool.h"
#include "stage/nn/param.h"

namespace stage::nn {

// A fully connected layer y = W x + b with manual backward. Gradients are
// accumulated into the Params; callers drive ZeroGrad/Step around batches.
//
// Forward/Backward are the naive single-example reference loops;
// ForwardBatch/BackwardBatch run the blocked GEMM kernels (nn/gemm.h) over
// whole batches and are bit-for-bit identical per row (the kernels keep
// each output element's naive accumulation order — see gemm.h).
class Linear {
 public:
  Linear() = default;

  void Init(int in_dim, int out_dim, Rng& rng);

  int in_dim() const { return in_dim_; }
  int out_dim() const { return out_dim_; }

  // y (out_dim) = W x (in_dim) + b.
  void Forward(const float* x, float* y) const;

  // y [rows x out_dim] = x [rows x in_dim] W^T + b. Row blocks fan out on
  // `pool` when provided; results never depend on it.
  void ForwardBatch(const float* x, int rows, float* y,
                    ThreadPool* pool = nullptr) const;

  // Accumulates parameter gradients from (x, dy) and, when dx != nullptr,
  // adds W^T dy into dx (dx must be pre-initialized by the caller).
  void Backward(const float* x, const float* dy, float* dx);

  // Batched Backward over rows examples (x [rows x in_dim], dy
  // [rows x out_dim], dx [rows x in_dim] or null). Gradient accumulation is
  // tiled so bytes are identical for any pool width, including none.
  void BackwardBatch(const float* x, const float* dy, int rows, float* dx,
                     ThreadPool* pool = nullptr);

  void ZeroGrad();
  void Step(const AdamConfig& config, double grad_divisor);
  void Save(std::ostream& out) const;
  bool Load(std::istream& in);
  size_t MemoryBytes() const { return w_.MemoryBytes() + b_.MemoryBytes(); }

 private:
  // Rebuilds wt_ from w_. Called from every mutation point (Init / Load /
  // Step) so const Forward paths can read wt_ concurrently without locks.
  void RefreshTransposed();

  int in_dim_ = 0;
  int out_dim_ = 0;
  Param w_;  // Row-major [out_dim x in_dim].
  Param b_;  // [out_dim].
  // W pre-transposed to [in_dim x out_dim]: the forward GEMM broadcasts
  // x[k] against contiguous output columns (see gemm.h). Derived cache —
  // never serialized, refreshed whenever w_ changes.
  std::vector<float> wt_;
};

}  // namespace stage::nn

#endif  // STAGE_NN_LINEAR_H_
