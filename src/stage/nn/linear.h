#ifndef STAGE_NN_LINEAR_H_
#define STAGE_NN_LINEAR_H_

#include <istream>
#include <ostream>
#include <vector>

#include "stage/common/rng.h"
#include "stage/nn/param.h"

namespace stage::nn {

// A fully connected layer y = W x + b with manual backward. Gradients are
// accumulated into the Params; callers drive ZeroGrad/Step around batches.
class Linear {
 public:
  Linear() = default;

  void Init(int in_dim, int out_dim, Rng& rng);

  int in_dim() const { return in_dim_; }
  int out_dim() const { return out_dim_; }

  // y (out_dim) = W x (in_dim) + b.
  void Forward(const float* x, float* y) const;

  // Accumulates parameter gradients from (x, dy) and, when dx != nullptr,
  // adds W^T dy into dx (dx must be pre-initialized by the caller).
  void Backward(const float* x, const float* dy, float* dx);

  void ZeroGrad();
  void Step(const AdamConfig& config, double grad_divisor);
  void Save(std::ostream& out) const;
  bool Load(std::istream& in);
  size_t MemoryBytes() const { return w_.MemoryBytes() + b_.MemoryBytes(); }

 private:
  int in_dim_ = 0;
  int out_dim_ = 0;
  Param w_;  // Row-major [out_dim x in_dim].
  Param b_;  // [out_dim].
};

}  // namespace stage::nn

#endif  // STAGE_NN_LINEAR_H_
