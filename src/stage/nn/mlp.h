#ifndef STAGE_NN_MLP_H_
#define STAGE_NN_MLP_H_

#include <vector>

#include "stage/common/rng.h"
#include "stage/common/thread_pool.h"
#include "stage/nn/gemm.h"
#include "stage/nn/linear.h"

namespace stage::nn {

// A multi-layer perceptron with ReLU activations between layers (linear
// output) and optional dropout on hidden activations during training.
//
// All execution is batched over the GEMM kernels (nn/gemm.h); the
// single-example Forward/Backward are the rows == 1 case and produce
// bit-for-bit the same values as the naive per-element loops (the kernels
// preserve each element's accumulation order).
class Mlp {
 public:
  // Scratch for a forward pass and its matching backward, owned by the
  // caller so Mlp stays re-entrant. All buffers live in one Arena that is
  // rewound (not freed) every Forward, so repeated calls perform zero heap
  // allocations once the arena has warmed up to the largest batch seen.
  struct Workspace {
    Arena arena;
    // acts[0] is the input copy [rows x dims[0]]; acts[l+1] the output of
    // layer l (post ReLU/dropout for hidden layers), [rows x dims[l+1]].
    std::vector<float*> acts;
    // Dropout multipliers per hidden layer (nullptr in eval mode or when
    // dropout is off), [rows x dims[l+1]].
    std::vector<float*> masks;
    int rows = 0;

    // Heap floats retained across calls; stops growing once warm (asserted
    // by nn_test's allocation tests).
    size_t CapacityFloats() const { return arena.CapacityFloats(); }
  };

  Mlp() = default;

  // dims = {input, hidden..., output}; at least one layer (2 entries).
  void Init(const std::vector<int>& dims, Rng& rng);

  int in_dim() const { return dims_.front(); }
  int out_dim() const { return dims_.back(); }

  // Runs the network. In train mode, applies dropout with probability
  // `dropout` to hidden activations using `rng` (both may be omitted in
  // eval mode). Returns a pointer to the output inside `ws`.
  const float* Forward(const float* x, Workspace* ws, bool train = false,
                       float dropout = 0.0f, Rng* rng = nullptr) const;

  // Batched Forward over x [rows x in_dim]; returns the output matrix
  // [rows x out_dim] inside `ws`. Row r equals Forward on row r of x, bit
  // for bit, for every batch size. Dropout masks are drawn serially in row-
  // major order on the calling thread, so results are also independent of
  // `pool`, which only fans out the GEMMs.
  const float* ForwardBatch(const float* x, int rows, Workspace* ws,
                            bool train = false, float dropout = 0.0f,
                            Rng* rng = nullptr,
                            ThreadPool* pool = nullptr) const;

  // Accumulates parameter gradients given dL/d(output); requires the `ws`
  // from the matching Forward call. If dx != nullptr, adds dL/d(input).
  void Backward(const float* dout, Workspace& ws, float* dx);

  // Batched Backward: dout is [rows x out_dim] for the rows of the matching
  // ForwardBatch; dx (optional) is [rows x in_dim]. Gradient bytes are
  // identical for any pool width, including none.
  void BackwardBatch(const float* dout, Workspace& ws, float* dx,
                     ThreadPool* pool = nullptr);

  void ZeroGrad();
  void Step(const AdamConfig& config, double grad_divisor);
  size_t MemoryBytes() const;
  void Save(std::ostream& out) const;
  bool Load(std::istream& in);

 private:
  std::vector<int> dims_;
  std::vector<Linear> layers_;
};

}  // namespace stage::nn

#endif  // STAGE_NN_MLP_H_
