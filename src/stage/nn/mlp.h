#ifndef STAGE_NN_MLP_H_
#define STAGE_NN_MLP_H_

#include <vector>

#include "stage/common/rng.h"
#include "stage/nn/linear.h"

namespace stage::nn {

// A multi-layer perceptron with ReLU activations between layers (linear
// output) and optional dropout on hidden activations during training.
class Mlp {
 public:
  // Scratch space holding the forward activations one example needs for its
  // backward pass. Owned by the caller so Mlp stays re-entrant.
  struct Workspace {
    // acts[0] is the input copy; acts[l+1] the output of layer l (post
    // ReLU/dropout for hidden layers).
    std::vector<std::vector<float>> acts;
    // Dropout multipliers per hidden layer (empty in eval mode).
    std::vector<std::vector<float>> masks;
  };

  Mlp() = default;

  // dims = {input, hidden..., output}; at least one layer (2 entries).
  void Init(const std::vector<int>& dims, Rng& rng);

  int in_dim() const { return dims_.front(); }
  int out_dim() const { return dims_.back(); }

  // Runs the network. In train mode, applies dropout with probability
  // `dropout` to hidden activations using `rng` (both may be omitted in
  // eval mode). Returns a pointer to the output inside `ws`.
  const float* Forward(const float* x, Workspace* ws, bool train = false,
                       float dropout = 0.0f, Rng* rng = nullptr) const;

  // Accumulates parameter gradients given dL/d(output); requires the `ws`
  // from the matching Forward call. If dx != nullptr, adds dL/d(input).
  void Backward(const float* dout, Workspace& ws, float* dx);

  void ZeroGrad();
  void Step(const AdamConfig& config, double grad_divisor);
  size_t MemoryBytes() const;
  void Save(std::ostream& out) const;
  bool Load(std::istream& in);

 private:
  std::vector<int> dims_;
  std::vector<Linear> layers_;
};

}  // namespace stage::nn

#endif  // STAGE_NN_MLP_H_
