#include "stage/nn/linear.h"

#include <cmath>

#include "stage/common/macros.h"
#include "stage/common/serialize.h"
#include "stage/nn/gemm.h"

namespace stage::nn {

void Linear::Init(int in_dim, int out_dim, Rng& rng) {
  STAGE_CHECK(in_dim > 0 && out_dim > 0);
  in_dim_ = in_dim;
  out_dim_ = out_dim;
  // Kaiming-uniform-ish scale for ReLU networks.
  const float scale = std::sqrt(6.0f / static_cast<float>(in_dim));
  w_.Init(static_cast<size_t>(in_dim) * out_dim, scale, rng);
  b_.Init(out_dim, 0.0f, rng);
  RefreshTransposed();
}

void Linear::RefreshTransposed() {
  wt_.resize(static_cast<size_t>(in_dim_) * out_dim_);
  const float* w = w_.data();
  for (int o = 0; o < out_dim_; ++o) {
    for (int i = 0; i < in_dim_; ++i) {
      wt_[static_cast<size_t>(i) * out_dim_ + o] =
          w[static_cast<size_t>(o) * in_dim_ + i];
    }
  }
}

void Linear::Forward(const float* x, float* y) const {
  const float* w = w_.data();
  const float* b = b_.data();
  for (int o = 0; o < out_dim_; ++o) {
    const float* row = w + static_cast<size_t>(o) * in_dim_;
    float acc = b[o];
    for (int i = 0; i < in_dim_; ++i) acc += row[i] * x[i];
    y[o] = acc;
  }
}

void Linear::Backward(const float* x, const float* dy, float* dx) {
  float* wg = w_.grad();
  float* bg = b_.grad();
  const float* w = w_.data();
  for (int o = 0; o < out_dim_; ++o) {
    const float g = dy[o];
    if (g == 0.0f) continue;
    float* wg_row = wg + static_cast<size_t>(o) * in_dim_;
    const float* w_row = w + static_cast<size_t>(o) * in_dim_;
    bg[o] += g;
    for (int i = 0; i < in_dim_; ++i) {
      wg_row[i] += g * x[i];
      if (dx != nullptr) dx[i] += g * w_row[i];
    }
  }
}

void Linear::ForwardBatch(const float* x, int rows, float* y,
                          ThreadPool* pool) const {
  GemmBias(rows, out_dim_, in_dim_, x, wt_.data(), b_.data(), y, pool);
}

void Linear::BackwardBatch(const float* x, const float* dy, int rows,
                           float* dx, ThreadPool* pool) {
  GemmGradParams(rows, out_dim_, in_dim_, x, dy, w_.grad(), b_.grad(), pool);
  if (dx != nullptr) {
    GemmGradInput(rows, out_dim_, in_dim_, dy, w_.data(), dx, pool);
  }
}

void Linear::ZeroGrad() {
  w_.ZeroGrad();
  b_.ZeroGrad();
}

void Linear::Step(const AdamConfig& config, double grad_divisor) {
  w_.Step(config, grad_divisor);
  b_.Step(config, grad_divisor);
  RefreshTransposed();
}

void Linear::Save(std::ostream& out) const {
  WritePod<int32_t>(out, in_dim_);
  WritePod<int32_t>(out, out_dim_);
  w_.Save(out);
  b_.Save(out);
}

bool Linear::Load(std::istream& in) {
  int32_t in_dim = 0;
  int32_t out_dim = 0;
  if (!ReadPod(in, &in_dim) || !ReadPod(in, &out_dim)) return false;
  if (in_dim <= 0 || out_dim <= 0) return false;
  if (!w_.Load(in) || !b_.Load(in)) return false;
  if (w_.size() != static_cast<size_t>(in_dim) * out_dim ||
      b_.size() != static_cast<size_t>(out_dim)) {
    return false;
  }
  in_dim_ = in_dim;
  out_dim_ = out_dim;
  RefreshTransposed();
  return true;
}

}  // namespace stage::nn
