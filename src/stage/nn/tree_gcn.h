#ifndef STAGE_NN_TREE_GCN_H_
#define STAGE_NN_TREE_GCN_H_

#include <cstdint>
#include <vector>

#include "stage/common/rng.h"
#include "stage/nn/linear.h"

namespace stage::nn {

// A directed graph-convolution network over a tree, the architecture of the
// paper's global model (§4.4): at every layer each node combines its own
// features with the mean of its children's features through two learned
// linear maps, followed by ReLU (and dropout in training). After L layers
// the root's representation summarizes the whole plan.
class TreeGcn {
 public:
  struct Config {
    int input_dim = 0;
    int hidden_dim = 64;
    int num_layers = 3;
    float dropout = 0.2f;
  };

  // Per-example scratch: activations for every layer, dropout masks, and
  // child aggregates, kept for the backward pass.
  struct Workspace {
    // acts[l]: layer-l features, row-major [n x dim_l] where dim_0 =
    // input_dim and dim_{l>0} = hidden_dim.
    std::vector<std::vector<float>> acts;
    // aggs[l]: mean-of-children inputs to layer l, [n x dim_l].
    std::vector<std::vector<float>> aggs;
    // masks[l]: dropout multipliers for layer l outputs (empty in eval).
    std::vector<std::vector<float>> masks;
    int num_nodes = 0;
  };

  TreeGcn() = default;

  void Init(const Config& config, Rng& rng);

  int hidden_dim() const { return config_.hidden_dim; }

  // Runs message passing over a tree given per-node input features
  // (row-major [n x input_dim]) and each node's children indices.
  // Returns a pointer to the root (node 0) representation inside `ws`.
  const float* Forward(const float* node_features, int num_nodes,
                       const std::vector<std::vector<int32_t>>& children,
                       Workspace* ws, bool train = false,
                       Rng* rng = nullptr) const;

  // Accumulates parameter gradients given dL/d(root representation).
  void Backward(const float* droot,
                const std::vector<std::vector<int32_t>>& children,
                Workspace& ws);

  void ZeroGrad();
  void Step(const AdamConfig& config, double grad_divisor);
  size_t MemoryBytes() const;
  void Save(std::ostream& out) const;
  bool Load(std::istream& in);

 private:
  int LayerInDim(int layer) const {
    return layer == 0 ? config_.input_dim : config_.hidden_dim;
  }

  Config config_;
  std::vector<Linear> self_;   // One per layer: transforms the node itself.
  std::vector<Linear> child_;  // One per layer: transforms the child mean.
};

}  // namespace stage::nn

#endif  // STAGE_NN_TREE_GCN_H_
