#ifndef STAGE_NN_TREE_GCN_H_
#define STAGE_NN_TREE_GCN_H_

#include <cstdint>
#include <vector>

#include "stage/common/rng.h"
#include "stage/common/thread_pool.h"
#include "stage/nn/gemm.h"
#include "stage/nn/linear.h"
#include "stage/nn/tree_batch.h"

namespace stage::nn {

// A directed graph-convolution network over a tree, the architecture of the
// paper's global model (§4.4): at every layer each node combines its own
// features with the mean of its children's features through two learned
// linear maps, followed by ReLU (and dropout in training). After L layers
// the root's representation summarizes the whole plan.
//
// Execution is level-order batched (see tree_batch.h): because layer l+1
// activations depend only on layer-l activations, every layer runs as one
// child-aggregation sweep plus exactly two GEMMs (self and child
// transforms) over ALL nodes of ALL trees in the batch — instead of
// 2 * num_nodes matrix-vector products. Results are bit-for-bit identical
// to the naive per-node walk (the kernels keep each element's naive
// accumulation order; aggregation sums children in their original order).
class TreeGcn {
 public:
  struct Config {
    int input_dim = 0;
    int hidden_dim = 64;
    int num_layers = 3;
    float dropout = 0.2f;
  };

  // Scratch for a forward pass and its matching backward. Everything lives
  // in one Arena rewound (not freed) per Forward, so repeated calls make
  // zero heap allocations once warmed up to the largest batch seen.
  struct Workspace {
    Arena arena;
    // acts[l]: layer-l activations, row-major [num_nodes x dim_l] in batch
    // slot order, where dim_0 = input_dim and dim_{l>0} = hidden_dim.
    // acts[0] aliases the batch's feature matrix (never written).
    std::vector<float*> acts;
    // aggs[l]: mean-of-children inputs to layer l, [num_nodes x dim_l].
    std::vector<float*> aggs;
    // masks[l]: dropout multipliers for layer l outputs (nullptr in eval).
    std::vector<float*> masks;
    // Root representations, [num_trees x hidden_dim].
    float* roots = nullptr;
    int num_nodes = 0;

    // Single-tree convenience batch used by Forward/Backward.
    TreeBatch single;

    // Heap floats retained across calls; stops growing once warm.
    size_t CapacityFloats() const { return arena.CapacityFloats(); }
  };

  TreeGcn() = default;

  void Init(const Config& config, Rng& rng);

  int hidden_dim() const { return config_.hidden_dim; }
  int input_dim() const { return config_.input_dim; }

  // Runs message passing over a tree given per-node input features
  // (row-major [n x input_dim]) and each node's children indices.
  // Returns a pointer to the root (node 0) representation inside `ws`.
  const float* Forward(const float* node_features, int num_nodes,
                       const std::vector<std::vector<int32_t>>& children,
                       Workspace* ws, bool train = false,
                       Rng* rng = nullptr) const;

  // Level-order batched forward over a whole forest. Returns the root
  // representations, row-major [batch.num_trees() x hidden_dim], inside
  // `ws`. Each tree's root row is bit-for-bit identical to Forward on that
  // tree alone. Dropout masks are drawn serially on the calling thread in
  // slot-major order, so results are independent of `pool` (which only
  // fans out the GEMMs).
  const float* ForwardBatch(const TreeBatch& batch, Workspace* ws,
                            bool train = false, Rng* rng = nullptr,
                            ThreadPool* pool = nullptr) const;

  // Accumulates parameter gradients given dL/d(root representation).
  void Backward(const float* droot,
                const std::vector<std::vector<int32_t>>& children,
                Workspace& ws);

  // Batched backward: `droots` is [batch.num_trees() x hidden_dim] for the
  // batch of the matching ForwardBatch. Gradient bytes are identical for
  // any pool width, including none.
  void BackwardBatch(const float* droots, const TreeBatch& batch,
                     Workspace& ws, ThreadPool* pool = nullptr);

  void ZeroGrad();
  void Step(const AdamConfig& config, double grad_divisor);
  size_t MemoryBytes() const;
  void Save(std::ostream& out) const;
  bool Load(std::istream& in);

 private:
  int LayerInDim(int layer) const {
    return layer == 0 ? config_.input_dim : config_.hidden_dim;
  }

  Config config_;
  std::vector<Linear> self_;   // One per layer: transforms the node itself.
  std::vector<Linear> child_;  // One per layer: transforms the child mean.
};

}  // namespace stage::nn

#endif  // STAGE_NN_TREE_GCN_H_
