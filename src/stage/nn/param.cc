#include "stage/nn/param.h"

#include <cmath>

#include "stage/common/macros.h"
#include "stage/common/serialize.h"

namespace stage::nn {

void Param::Init(size_t size, float scale, Rng& rng) {
  value_.resize(size);
  grad_.assign(size, 0.0f);
  m_.assign(size, 0.0f);
  v_.assign(size, 0.0f);
  for (float& v : value_) {
    v = static_cast<float>(rng.NextUniform(-scale, scale));
  }
  step_count_ = 0;
}

void Param::ZeroGrad() {
  for (float& g : grad_) g = 0.0f;
}

void Param::Step(const AdamConfig& config, double grad_divisor) {
  STAGE_CHECK(grad_divisor > 0.0);
  ++step_count_;
  const float inv = static_cast<float>(1.0 / grad_divisor);
  const float bias1 =
      1.0f - std::pow(config.beta1, static_cast<float>(step_count_));
  const float bias2 =
      1.0f - std::pow(config.beta2, static_cast<float>(step_count_));
  for (size_t i = 0; i < value_.size(); ++i) {
    float g = grad_[i] * inv + config.weight_decay * value_[i];
    m_[i] = config.beta1 * m_[i] + (1.0f - config.beta1) * g;
    v_[i] = config.beta2 * v_[i] + (1.0f - config.beta2) * g * g;
    const float m_hat = m_[i] / bias1;
    const float v_hat = v_[i] / bias2;
    value_[i] -=
        config.learning_rate * m_hat / (std::sqrt(v_hat) + config.epsilon);
  }
}

void Param::Save(std::ostream& out) const { WriteVector(out, value_); }

bool Param::Load(std::istream& in) {
  if (!ReadVector(in, &value_)) return false;
  grad_.assign(value_.size(), 0.0f);
  m_.assign(value_.size(), 0.0f);
  v_.assign(value_.size(), 0.0f);
  step_count_ = 0;
  return true;
}

}  // namespace stage::nn
