#include "stage/nn/tree_gcn.h"

#include "stage/common/macros.h"
#include "stage/common/serialize.h"

namespace stage::nn {

void TreeGcn::Init(const Config& config, Rng& rng) {
  STAGE_CHECK(config.input_dim > 0);
  STAGE_CHECK(config.hidden_dim > 0);
  STAGE_CHECK(config.num_layers >= 1);
  STAGE_CHECK(config.dropout >= 0.0f && config.dropout < 1.0f);
  config_ = config;
  self_.resize(config.num_layers);
  child_.resize(config.num_layers);
  for (int l = 0; l < config.num_layers; ++l) {
    self_[l].Init(LayerInDim(l), config.hidden_dim, rng);
    child_[l].Init(LayerInDim(l), config.hidden_dim, rng);
  }
}

const float* TreeGcn::Forward(
    const float* node_features, int num_nodes,
    const std::vector<std::vector<int32_t>>& children, Workspace* ws,
    bool train, Rng* rng) const {
  STAGE_CHECK(ws != nullptr);
  STAGE_CHECK(num_nodes > 0);
  STAGE_CHECK(static_cast<int>(children.size()) == num_nodes);
  const int num_layers = config_.num_layers;
  const int h = config_.hidden_dim;

  ws->num_nodes = num_nodes;
  ws->acts.resize(num_layers + 1);
  ws->aggs.resize(num_layers);
  ws->masks.assign(num_layers, {});
  ws->acts[0].assign(node_features,
                     node_features + static_cast<size_t>(num_nodes) *
                                         config_.input_dim);

  std::vector<float> z(h);
  std::vector<float> child_part(h);
  for (int l = 0; l < num_layers; ++l) {
    const int in_dim = LayerInDim(l);
    const std::vector<float>& in = ws->acts[l];
    ws->aggs[l].assign(static_cast<size_t>(num_nodes) * in_dim, 0.0f);
    ws->acts[l + 1].resize(static_cast<size_t>(num_nodes) * h);
    if (train && config_.dropout > 0.0f) {
      STAGE_CHECK(rng != nullptr);
      ws->masks[l].resize(static_cast<size_t>(num_nodes) * h);
    }

    for (int i = 0; i < num_nodes; ++i) {
      // Mean of children features from the previous layer.
      float* agg = &ws->aggs[l][static_cast<size_t>(i) * in_dim];
      if (!children[i].empty()) {
        const float inv =
            1.0f / static_cast<float>(children[i].size());
        for (int32_t c : children[i]) {
          const float* cf = &in[static_cast<size_t>(c) * in_dim];
          for (int j = 0; j < in_dim; ++j) agg[j] += cf[j];
        }
        for (int j = 0; j < in_dim; ++j) agg[j] *= inv;
      }

      self_[l].Forward(&in[static_cast<size_t>(i) * in_dim], z.data());
      child_[l].Forward(agg, child_part.data());
      float* out = &ws->acts[l + 1][static_cast<size_t>(i) * h];
      for (int j = 0; j < h; ++j) {
        float v = z[j] + child_part[j];
        v = v > 0.0f ? v : 0.0f;  // ReLU.
        if (!ws->masks[l].empty()) {
          const float scale = 1.0f / (1.0f - config_.dropout);
          const float mask =
              rng->NextBernoulli(config_.dropout) ? 0.0f : scale;
          ws->masks[l][static_cast<size_t>(i) * h + j] = mask;
          v *= mask;
        }
        out[j] = v;
      }
    }
  }
  return &ws->acts[num_layers][0];  // Root is node 0.
}

void TreeGcn::Backward(const float* droot,
                       const std::vector<std::vector<int32_t>>& children,
                       Workspace& ws) {
  const int num_layers = config_.num_layers;
  const int h = config_.hidden_dim;
  const int n = ws.num_nodes;
  STAGE_CHECK(static_cast<int>(children.size()) == n);
  STAGE_CHECK(static_cast<int>(ws.acts.size()) == num_layers + 1);

  // dL/d acts[num_layers]: only the root receives an external gradient.
  std::vector<float> dcur(static_cast<size_t>(n) * h, 0.0f);
  for (int j = 0; j < h; ++j) dcur[j] = droot[j];

  std::vector<float> dz(h);
  std::vector<float> dagg;
  std::vector<float> dprev;
  for (int l = num_layers; l-- > 0;) {
    const int in_dim = LayerInDim(l);
    dprev.assign(static_cast<size_t>(n) * in_dim, 0.0f);
    const std::vector<float>& act_out = ws.acts[l + 1];
    const std::vector<float>& mask = ws.masks[l];
    for (int i = 0; i < n; ++i) {
      // Through dropout + ReLU.
      bool any = false;
      for (int j = 0; j < h; ++j) {
        const size_t idx = static_cast<size_t>(i) * h + j;
        float g = dcur[idx];
        if (act_out[idx] <= 0.0f) {
          g = 0.0f;  // ReLU cut it or dropout dropped it.
        } else if (!mask.empty()) {
          g *= mask[idx];
        }
        dz[j] = g;
        any = any || g != 0.0f;
      }
      if (!any) continue;

      float* dself = &dprev[static_cast<size_t>(i) * in_dim];
      self_[l].Backward(&ws.acts[l][static_cast<size_t>(i) * in_dim],
                        dz.data(), dself);
      dagg.assign(in_dim, 0.0f);
      child_[l].Backward(&ws.aggs[l][static_cast<size_t>(i) * in_dim],
                         dz.data(), dagg.data());
      if (!children[i].empty()) {
        const float inv = 1.0f / static_cast<float>(children[i].size());
        for (int32_t c : children[i]) {
          float* dchild = &dprev[static_cast<size_t>(c) * in_dim];
          for (int j = 0; j < in_dim; ++j) dchild[j] += dagg[j] * inv;
        }
      }
    }
    dcur = dprev;
  }
}

void TreeGcn::ZeroGrad() {
  for (Linear& layer : self_) layer.ZeroGrad();
  for (Linear& layer : child_) layer.ZeroGrad();
}

void TreeGcn::Step(const AdamConfig& config, double grad_divisor) {
  for (Linear& layer : self_) layer.Step(config, grad_divisor);
  for (Linear& layer : child_) layer.Step(config, grad_divisor);
}

size_t TreeGcn::MemoryBytes() const {
  size_t bytes = 0;
  for (const Linear& layer : self_) bytes += layer.MemoryBytes();
  for (const Linear& layer : child_) bytes += layer.MemoryBytes();
  return bytes;
}

void TreeGcn::Save(std::ostream& out) const {
  WritePod<int32_t>(out, config_.input_dim);
  WritePod<int32_t>(out, config_.hidden_dim);
  WritePod<int32_t>(out, config_.num_layers);
  WritePod<float>(out, config_.dropout);
  for (const Linear& layer : self_) layer.Save(out);
  for (const Linear& layer : child_) layer.Save(out);
}

bool TreeGcn::Load(std::istream& in) {
  Config config;
  int32_t input_dim = 0;
  int32_t hidden_dim = 0;
  int32_t num_layers = 0;
  if (!ReadPod(in, &input_dim) || !ReadPod(in, &hidden_dim) ||
      !ReadPod(in, &num_layers) || !ReadPod(in, &config.dropout)) {
    return false;
  }
  if (input_dim <= 0 || hidden_dim <= 0 || num_layers <= 0 ||
      num_layers > 256) {
    return false;
  }
  config.input_dim = input_dim;
  config.hidden_dim = hidden_dim;
  config.num_layers = num_layers;
  config_ = config;
  self_.assign(num_layers, Linear());
  child_.assign(num_layers, Linear());
  for (Linear& layer : self_) {
    if (!layer.Load(in)) return false;
  }
  for (Linear& layer : child_) {
    if (!layer.Load(in)) return false;
  }
  return true;
}

}  // namespace stage::nn
