#include "stage/nn/tree_gcn.h"

#include <algorithm>
#include <cmath>

#include "stage/common/macros.h"
#include "stage/common/serialize.h"

namespace stage::nn {

void TreeGcn::Init(const Config& config, Rng& rng) {
  STAGE_CHECK(config.input_dim > 0);
  STAGE_CHECK(config.hidden_dim > 0);
  STAGE_CHECK(config.num_layers >= 1);
  STAGE_CHECK(config.dropout >= 0.0f && config.dropout < 1.0f);
  config_ = config;
  self_.resize(config.num_layers);
  child_.resize(config.num_layers);
  for (int l = 0; l < config.num_layers; ++l) {
    self_[l].Init(LayerInDim(l), config.hidden_dim, rng);
    child_[l].Init(LayerInDim(l), config.hidden_dim, rng);
  }
}

const float* TreeGcn::Forward(
    const float* node_features, int num_nodes,
    const std::vector<std::vector<int32_t>>& children, Workspace* ws,
    bool train, Rng* rng) const {
  STAGE_CHECK(ws != nullptr);
  STAGE_CHECK(num_nodes > 0);
  ws->single.Clear(config_.input_dim);
  ws->single.AddTree(node_features, num_nodes, children);
  return ForwardBatch(ws->single, ws, train, rng);
}

void TreeGcn::Backward(const float* droot,
                       const std::vector<std::vector<int32_t>>& children,
                       Workspace& ws) {
  STAGE_CHECK(static_cast<int>(children.size()) == ws.single.num_nodes());
  BackwardBatch(droot, ws.single, ws);
}

const float* TreeGcn::ForwardBatch(const TreeBatch& batch, Workspace* ws,
                                   bool train, Rng* rng,
                                   ThreadPool* pool) const {
  STAGE_CHECK(ws != nullptr);
  STAGE_CHECK(batch.num_nodes() > 0);
  STAGE_CHECK(batch.feature_dim() == config_.input_dim);
  const int num_layers = config_.num_layers;
  const int h = config_.hidden_dim;
  const int n = batch.num_nodes();
  const bool masked = train && config_.dropout > 0.0f;
  if (masked) STAGE_CHECK(rng != nullptr);

  ws->arena.Reset();
  ws->num_nodes = n;
  ws->acts.assign(num_layers + 1, nullptr);
  ws->aggs.assign(num_layers, nullptr);
  ws->masks.assign(num_layers, nullptr);
  // The batch's gathered feature matrix IS layer 0 — read-only alias, no
  // copy. (The arena must not be reset between a batch build and Backward,
  // which Forward's structure guarantees.)
  ws->acts[0] = const_cast<float*>(batch.features());

  for (int l = 0; l < num_layers; ++l) {
    const int in_dim = LayerInDim(l);
    const float* in = ws->acts[l];
    // Child aggregation: one streaming sweep. Each node's children occupy a
    // contiguous slot range (tree_batch.h), appended in original child-list
    // order, so every node's sum matches the naive walk term for term.
    float* agg =
        ws->arena.AllocZeroed(static_cast<size_t>(n) * in_dim);
    ws->aggs[l] = agg;
    for (int s = 0; s < n; ++s) {
      const int32_t count = batch.child_count(s);
      if (count == 0) continue;
      const float inv = 1.0f / static_cast<float>(count);
      float* row = agg + static_cast<size_t>(s) * in_dim;
      const float* cf =
          in + static_cast<size_t>(batch.child_start(s)) * in_dim;
      for (int32_t c = 0; c < count; ++c, cf += in_dim) {
        for (int j = 0; j < in_dim; ++j) row[j] += cf[j];
      }
      for (int j = 0; j < in_dim; ++j) row[j] *= inv;
    }

    // One GEMM per transform over every node of every tree: out = self(in),
    // then out += child(agg) — the same z[j] + child_part[j] order as the
    // naive walk.
    float* out = ws->arena.Alloc(static_cast<size_t>(n) * h);
    float* child_out = ws->arena.Alloc(static_cast<size_t>(n) * h);
    ws->acts[l + 1] = out;
    self_[l].ForwardBatch(in, n, out, pool);
    child_[l].ForwardBatch(agg, n, child_out, pool);

    const size_t count = static_cast<size_t>(n) * h;
    if (masked) {
      const float scale = 1.0f / (1.0f - config_.dropout);
      float* mask = ws->arena.Alloc(count);
      ws->masks[l] = mask;
      // Mask draws happen here, serially, in slot-major order: the rng
      // stream — hence the trained model — never depends on the pool.
      for (size_t i = 0; i < count; ++i) {
        float v = out[i] + child_out[i];
        v = v > 0.0f ? v : 0.0f;  // ReLU.
        const float m = rng->NextBernoulli(config_.dropout) ? 0.0f : scale;
        mask[i] = m;
        out[i] = v * m;
      }
    } else {
      for (size_t i = 0; i < count; ++i) {
        const float v = out[i] + child_out[i];
        out[i] = v > 0.0f ? v : 0.0f;  // ReLU.
      }
    }
  }

  // Gather each tree's root row.
  const int num_trees = batch.num_trees();
  float* roots = ws->arena.Alloc(static_cast<size_t>(num_trees) * h);
  ws->roots = roots;
  const float* top = ws->acts[num_layers];
  for (int t = 0; t < num_trees; ++t) {
    const float* src = top + static_cast<size_t>(batch.root_slot(t)) * h;
    std::copy(src, src + h, roots + static_cast<size_t>(t) * h);
  }
  return roots;
}

void TreeGcn::BackwardBatch(const float* droots, const TreeBatch& batch,
                            Workspace& ws, ThreadPool* pool) {
  const int num_layers = config_.num_layers;
  const int h = config_.hidden_dim;
  const int n = ws.num_nodes;
  STAGE_CHECK(batch.num_nodes() == n);
  STAGE_CHECK(static_cast<int>(ws.acts.size()) == num_layers + 1);

  // dL/d acts[num_layers]: only root slots receive an external gradient.
  float* dcur = ws.arena.AllocZeroed(static_cast<size_t>(n) * h);
  for (int t = 0; t < batch.num_trees(); ++t) {
    const float* src = droots + static_cast<size_t>(t) * h;
    float* dst = dcur + static_cast<size_t>(batch.root_slot(t)) * h;
    std::copy(src, src + h, dst);
  }

  float* dz = ws.arena.Alloc(static_cast<size_t>(n) * h);
  for (int l = num_layers; l-- > 0;) {
    const int in_dim = LayerInDim(l);
    // Gate through dropout + ReLU into dz (dcur is reused below as the next
    // layer's gradient buffer only after dprev replaces it).
    const float* act_out = ws.acts[l + 1];
    const float* mask = ws.masks[l];
    const size_t count = static_cast<size_t>(n) * h;
    for (size_t i = 0; i < count; ++i) {
      float g = dcur[i];
      if (act_out[i] <= 0.0f) {
        g = 0.0f;  // ReLU cut it or dropout dropped it.
      } else if (mask != nullptr) {
        g *= mask[i];
      }
      dz[i] = g;
    }

    float* dprev =
        ws.arena.AllocZeroed(static_cast<size_t>(n) * in_dim);
    float* dagg =
        ws.arena.AllocZeroed(static_cast<size_t>(n) * in_dim);
    self_[l].BackwardBatch(ws.acts[l], dz, n, dprev, pool);
    child_[l].BackwardBatch(ws.aggs[l], dz, n, dagg, pool);

    // Fan the child-mean gradient out to the children. Every node has at
    // most one parent, so writes are disjoint; order is fixed (parent slots
    // ascending), so bytes never depend on scheduling.
    for (int s = 0; s < n; ++s) {
      const int32_t cnt = batch.child_count(s);
      if (cnt == 0) continue;
      const float inv = 1.0f / static_cast<float>(cnt);
      const float* da = dagg + static_cast<size_t>(s) * in_dim;
      float* dchild =
          dprev + static_cast<size_t>(batch.child_start(s)) * in_dim;
      for (int32_t c = 0; c < cnt; ++c, dchild += in_dim) {
        for (int j = 0; j < in_dim; ++j) dchild[j] += da[j] * inv;
      }
    }
    dcur = dprev;
  }
}

void TreeGcn::ZeroGrad() {
  for (Linear& layer : self_) layer.ZeroGrad();
  for (Linear& layer : child_) layer.ZeroGrad();
}

void TreeGcn::Step(const AdamConfig& config, double grad_divisor) {
  for (Linear& layer : self_) layer.Step(config, grad_divisor);
  for (Linear& layer : child_) layer.Step(config, grad_divisor);
}

size_t TreeGcn::MemoryBytes() const {
  size_t bytes = 0;
  for (const Linear& layer : self_) bytes += layer.MemoryBytes();
  for (const Linear& layer : child_) bytes += layer.MemoryBytes();
  return bytes;
}

void TreeGcn::Save(std::ostream& out) const {
  WritePod<int32_t>(out, config_.input_dim);
  WritePod<int32_t>(out, config_.hidden_dim);
  WritePod<int32_t>(out, config_.num_layers);
  WritePod<float>(out, config_.dropout);
  for (const Linear& layer : self_) layer.Save(out);
  for (const Linear& layer : child_) layer.Save(out);
}

bool TreeGcn::Load(std::istream& in) {
  Config config;
  int32_t input_dim = 0;
  int32_t hidden_dim = 0;
  int32_t num_layers = 0;
  if (!ReadPod(in, &input_dim) || !ReadPod(in, &hidden_dim) ||
      !ReadPod(in, &num_layers) || !ReadPod(in, &config.dropout)) {
    return false;
  }
  if (input_dim <= 0 || hidden_dim <= 0 || num_layers <= 0 ||
      num_layers > 256) {
    return false;
  }
  // Reject corrupted dropout exactly like Init does: training with a NaN or
  // out-of-range rate would silently poison every activation.
  if (!(config.dropout >= 0.0f && config.dropout < 1.0f)) return false;
  config.input_dim = input_dim;
  config.hidden_dim = hidden_dim;
  config.num_layers = num_layers;
  config_ = config;
  self_.assign(num_layers, Linear());
  child_.assign(num_layers, Linear());
  for (Linear& layer : self_) {
    if (!layer.Load(in)) return false;
  }
  for (Linear& layer : child_) {
    if (!layer.Load(in)) return false;
  }
  return true;
}

}  // namespace stage::nn
