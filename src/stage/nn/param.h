#ifndef STAGE_NN_PARAM_H_
#define STAGE_NN_PARAM_H_

#include <cstddef>
#include <istream>
#include <ostream>
#include <vector>

#include "stage/common/rng.h"

namespace stage::nn {

// Optimizer hyper-parameters (Adam).
struct AdamConfig {
  float learning_rate = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float epsilon = 1e-8f;
  float weight_decay = 0.0f;
};

// A learnable tensor with its gradient accumulator and Adam moments.
// Training protocol: ZeroGrad() -> accumulate into grad -> Step().
class Param {
 public:
  Param() = default;

  // Allocates `size` values initialized uniformly in [-scale, scale].
  void Init(size_t size, float scale, Rng& rng);

  void ZeroGrad();

  // One Adam update using the accumulated gradient divided by
  // `grad_divisor` (the mini-batch size).
  void Step(const AdamConfig& config, double grad_divisor);

  // Checkpointing: values only (optimizer moments reset on load, which is
  // sufficient for inference and a fresh fine-tune).
  void Save(std::ostream& out) const;
  bool Load(std::istream& in);

  float* data() { return value_.data(); }
  const float* data() const { return value_.data(); }
  float* grad() { return grad_.data(); }
  size_t size() const { return value_.size(); }
  size_t MemoryBytes() const { return value_.size() * sizeof(float); }

 private:
  std::vector<float> value_;
  std::vector<float> grad_;
  std::vector<float> m_;
  std::vector<float> v_;
  long step_count_ = 0;
};

}  // namespace stage::nn

#endif  // STAGE_NN_PARAM_H_
