#ifndef STAGE_NN_GEMM_H_
#define STAGE_NN_GEMM_H_

#include <cstddef>
#include <vector>

#include "stage/common/thread_pool.h"

namespace stage::nn {

// Dense kernels for the neural hot paths (the batched counterparts of
// Linear::Forward/Backward), plus the scratch arena every nn workspace is
// built on.
//
// Bit-exactness contract: for every output element, terms are accumulated
// in exactly the order the naive per-row loops use — the accumulator starts
// at the bias and products are added in ascending k — so results are
// bit-for-bit identical to Linear::Forward/Backward no matter the batch
// size, the row-block size, or how many pool threads execute. The kernels
// get their speed from vectorizing ACROSS independent output elements
// (rows/columns), never from reassociating a single element's reduction.
// That also makes parallel training deterministic for free: each output
// element is computed wholly by one claimer in a fixed order, so pool
// widths 1/2/8/serial produce identical bytes.

// A reusable bump allocator for forward/backward scratch. Allocations are
// served from a chunk list that only grows until the call pattern has been
// seen once; after that warm-up, Reset() + the same Alloc sequence touches
// the allocator's existing chunks and performs zero heap allocations.
// Chunks never move, so pointers handed out stay valid until Reset().
class Arena {
 public:
  // Returns an uninitialized buffer of `n` floats (nullptr when n == 0),
  // valid until the next Reset().
  float* Alloc(size_t n);
  // Returns a zero-filled buffer of `n` floats.
  float* AllocZeroed(size_t n);
  // Rewinds to empty, keeping every chunk's capacity.
  void Reset();

  size_t CapacityFloats() const;

 private:
  std::vector<std::vector<float>> chunks_;
  size_t chunk_index_ = 0;
  size_t used_ = 0;  // Floats consumed in chunks_[chunk_index_].
};

// y [rows x out_dim] = x [rows x in_dim] * wt + bias, with wt the
// PRE-TRANSPOSED weight panel [in_dim x out_dim] (Linear keeps it in sync
// with its row-major W) and bias [out_dim] (may be null for no bias). Each
// row of y equals Linear::Forward on the matching row of x, bit for bit:
// the kernel broadcasts x[k] and accumulates into a register block of
// output columns, so each output element still sums bias-first in
// ascending k while the contiguous wt row provides the SIMD axis — fast
// even for single-row (one plan) calls. On AVX2 machines, groups of four
// rows run through a row-tiled kernel that streams each weight row once
// for the whole tile (the batched-inference hot path behind the network
// micro-batcher); the tile uses separate multiply and add — never fused —
// so its outputs match the per-row kernel bit for bit and the contract
// above holds on every machine. Row blocks fan out on `pool` when
// provided.
void GemmBias(int rows, int out_dim, int in_dim, const float* x,
              const float* wt, const float* bias, float* y,
              ThreadPool* pool = nullptr);

// dx [rows x in_dim] += dy [rows x out_dim] * W, the input-gradient half of
// Linear::Backward. Skips zero dy elements like the naive loop; per-element
// contributions are added in ascending o. Row blocks fan out on `pool`.
void GemmGradInput(int rows, int out_dim, int in_dim, const float* dy,
                   const float* w, float* dx, ThreadPool* pool = nullptr);

// dw [out_dim x in_dim] += dy^T * x and db [out_dim] += column sums of dy,
// the parameter-gradient half of Linear::Backward. Contributions are added
// in ascending row order per element; output rows (one per out_dim slot)
// fan out on `pool`, so every dw/db element is owned by exactly one lane.
void GemmGradParams(int rows, int out_dim, int in_dim, const float* x,
                    const float* dy, float* dw, float* db,
                    ThreadPool* pool = nullptr);

}  // namespace stage::nn

#endif  // STAGE_NN_GEMM_H_
