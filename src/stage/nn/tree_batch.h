#ifndef STAGE_NN_TREE_BATCH_H_
#define STAGE_NN_TREE_BATCH_H_

#include <cstdint>
#include <vector>

#include "stage/common/macros.h"

namespace stage::nn {

// A forest of plan trees re-laid out for level-order batched GCN execution
// (TreeGcn::ForwardBatch / BackwardBatch).
//
// Each added tree's nodes are re-numbered into BFS order, which groups them
// by depth (root first, then every depth-1 node, ...). Two properties make
// the batched kernels simple and fast:
//   * Because a GCN layer's output for every node depends only on the
//     PREVIOUS layer's activations (a node aggregates its children's
//     layer-l features to compute layer l+1), there is no intra-layer
//     ordering constraint at all — one GEMM per (layer, transform) covers
//     every node of every tree at once.
//   * BFS appends each parent's children consecutively, so a node's
//     children occupy one contiguous slot range [child_start, child_start +
//     child_count) — the child-mean aggregation streams contiguous rows
//     instead of chasing indices.
// Children are appended in their original list order, so per-node
// aggregation sums terms in exactly the order the naive single-tree walk
// does (bit-for-bit identical results).
//
// The batch is reusable: Clear() keeps every buffer's capacity, so building
// the same-shaped batch again allocates nothing.
class TreeBatch {
 public:
  // Resets to an empty batch of `feature_dim`-wide nodes.
  void Clear(int feature_dim) {
    STAGE_CHECK(feature_dim > 0);
    feature_dim_ = feature_dim;
    features_.clear();
    child_start_.clear();
    child_count_.clear();
    roots_.clear();
  }

  // Adds one tree rooted at node 0. `features` is row-major
  // [num_nodes x feature_dim] in the tree's own node order; `children_of(i)`
  // returns node i's children as a const std::vector<int32_t>&. The nodes
  // must form a tree (every non-root reachable from the root exactly once).
  template <typename ChildrenOf>
  void AddTree(const float* features, int num_nodes,
               ChildrenOf&& children_of) {
    STAGE_CHECK(num_nodes > 0);
    const int32_t base = static_cast<int32_t>(child_start_.size());
    roots_.push_back(base);
    child_start_.resize(static_cast<size_t>(base) + num_nodes);
    child_count_.resize(static_cast<size_t>(base) + num_nodes);
    features_.resize((static_cast<size_t>(base) + num_nodes) * feature_dim_);
    bfs_.clear();
    bfs_.push_back(0);
    for (int32_t p = 0; p < num_nodes; ++p) {
      STAGE_CHECK_MSG(p < static_cast<int32_t>(bfs_.size()),
                      "disconnected tree");
      const int32_t old = bfs_[p];
      const std::vector<int32_t>& kids = children_of(old);
      child_start_[base + p] = base + static_cast<int32_t>(bfs_.size());
      child_count_[base + p] = static_cast<int32_t>(kids.size());
      for (int32_t c : kids) {
        STAGE_CHECK(c >= 0 && c < num_nodes);
        bfs_.push_back(c);
      }
      const float* src = features + static_cast<size_t>(old) * feature_dim_;
      float* dst =
          features_.data() + static_cast<size_t>(base + p) * feature_dim_;
      for (int j = 0; j < feature_dim_; ++j) dst[j] = src[j];
    }
    STAGE_CHECK_MSG(static_cast<int>(bfs_.size()) == num_nodes,
                    "node set is not a tree");
  }

  // Convenience overload for adjacency stored as vector-of-vectors.
  void AddTree(const float* features, int num_nodes,
               const std::vector<std::vector<int32_t>>& children) {
    STAGE_CHECK(static_cast<int>(children.size()) == num_nodes);
    AddTree(features, num_nodes,
            [&children](int32_t i) -> const std::vector<int32_t>& {
              return children[static_cast<size_t>(i)];
            });
  }

  int feature_dim() const { return feature_dim_; }
  int num_nodes() const { return static_cast<int>(child_start_.size()); }
  int num_trees() const { return static_cast<int>(roots_.size()); }

  // Node features, row-major [num_nodes x feature_dim], BFS slot order.
  const float* features() const { return features_.data(); }

  // Slot of tree t's root.
  int32_t root_slot(int t) const { return roots_[static_cast<size_t>(t)]; }

  // Node `slot`'s children are slots [child_start(slot),
  // child_start(slot) + child_count(slot)).
  int32_t child_start(int slot) const {
    return child_start_[static_cast<size_t>(slot)];
  }
  int32_t child_count(int slot) const {
    return child_count_[static_cast<size_t>(slot)];
  }

 private:
  int feature_dim_ = 0;
  std::vector<float> features_;
  std::vector<int32_t> child_start_;
  std::vector<int32_t> child_count_;
  std::vector<int32_t> roots_;
  std::vector<int32_t> bfs_;  // Per-AddTree scratch (old indices, BFS order).
};

}  // namespace stage::nn

#endif  // STAGE_NN_TREE_BATCH_H_
