#include "stage/nn/mlp.h"

#include <algorithm>

#include "stage/common/macros.h"
#include "stage/common/serialize.h"

namespace stage::nn {

void Mlp::Init(const std::vector<int>& dims, Rng& rng) {
  STAGE_CHECK(dims.size() >= 2);
  dims_ = dims;
  layers_.resize(dims.size() - 1);
  for (size_t l = 0; l < layers_.size(); ++l) {
    layers_[l].Init(dims[l], dims[l + 1], rng);
  }
}

const float* Mlp::Forward(const float* x, Workspace* ws, bool train,
                          float dropout, Rng* rng) const {
  return ForwardBatch(x, /*rows=*/1, ws, train, dropout, rng);
}

const float* Mlp::ForwardBatch(const float* x, int rows, Workspace* ws,
                               bool train, float dropout, Rng* rng,
                               ThreadPool* pool) const {
  STAGE_CHECK(ws != nullptr);
  STAGE_CHECK(rows > 0);
  const size_t num_layers = layers_.size();
  const bool masked = train && dropout > 0.0f;
  if (masked) STAGE_CHECK(rng != nullptr);

  ws->arena.Reset();
  ws->rows = rows;
  ws->acts.assign(num_layers + 1, nullptr);
  ws->masks.assign(num_layers, nullptr);
  ws->acts[0] = ws->arena.Alloc(static_cast<size_t>(rows) * dims_[0]);
  std::copy(x, x + static_cast<size_t>(rows) * dims_[0], ws->acts[0]);

  for (size_t l = 0; l < num_layers; ++l) {
    const size_t count = static_cast<size_t>(rows) * dims_[l + 1];
    ws->acts[l + 1] = ws->arena.Alloc(count);
    layers_[l].ForwardBatch(ws->acts[l], rows, ws->acts[l + 1], pool);
    const bool hidden = l + 1 < num_layers;
    if (!hidden) break;
    float* act = ws->acts[l + 1];
    for (size_t i = 0; i < count; ++i) {
      if (act[i] < 0.0f) act[i] = 0.0f;  // ReLU.
    }
    if (masked) {
      // Masks are drawn on this thread in row-major element order: the rng
      // stream — hence the trained model — never depends on the pool.
      const float scale = 1.0f / (1.0f - dropout);
      float* mask = ws->arena.Alloc(count);
      ws->masks[l] = mask;
      for (size_t i = 0; i < count; ++i) {
        mask[i] = rng->NextBernoulli(dropout) ? 0.0f : scale;
        act[i] *= mask[i];
      }
    }
  }
  return ws->acts[num_layers];
}

void Mlp::Backward(const float* dout, Workspace& ws, float* dx) {
  BackwardBatch(dout, ws, dx);
}

void Mlp::BackwardBatch(const float* dout, Workspace& ws, float* dx,
                        ThreadPool* pool) {
  const size_t num_layers = layers_.size();
  STAGE_CHECK(ws.acts.size() == num_layers + 1);
  const int rows = ws.rows;
  STAGE_CHECK(rows > 0);

  // Backward scratch comes from the same arena, *after* the forward's
  // buffers; the arena is rewound by the next Forward.
  float* delta = ws.arena.Alloc(static_cast<size_t>(rows) * dims_.back());
  std::copy(dout, dout + static_cast<size_t>(rows) * dims_.back(), delta);
  for (size_t l = num_layers; l-- > 0;) {
    float* dprev = ws.arena.AllocZeroed(static_cast<size_t>(rows) * dims_[l]);
    layers_[l].BackwardBatch(ws.acts[l], delta, rows, dprev, pool);
    if (l > 0) {
      // Backprop through the hidden ReLU (+ dropout) of layer l-1. A zero
      // activation means either ReLU cut it or dropout dropped it; both
      // zero the gradient. A surviving dropout unit re-applies its scale.
      const float* act = ws.acts[l];
      const float* mask = ws.masks[l - 1];
      const size_t count = static_cast<size_t>(rows) * dims_[l];
      for (size_t i = 0; i < count; ++i) {
        if (act[i] <= 0.0f) {
          dprev[i] = 0.0f;
        } else if (mask != nullptr) {
          dprev[i] *= mask[i];  // mask holds 0 or the inverted-dropout scale.
        }
      }
    }
    delta = dprev;
  }
  if (dx != nullptr) {
    const size_t count = static_cast<size_t>(rows) * dims_[0];
    for (size_t i = 0; i < count; ++i) dx[i] += delta[i];
  }
}

void Mlp::ZeroGrad() {
  for (Linear& layer : layers_) layer.ZeroGrad();
}

void Mlp::Step(const AdamConfig& config, double grad_divisor) {
  for (Linear& layer : layers_) layer.Step(config, grad_divisor);
}

size_t Mlp::MemoryBytes() const {
  size_t bytes = 0;
  for (const Linear& layer : layers_) bytes += layer.MemoryBytes();
  return bytes;
}

void Mlp::Save(std::ostream& out) const {
  WriteVector(out, std::vector<int32_t>(dims_.begin(), dims_.end()));
  for (const Linear& layer : layers_) layer.Save(out);
}

bool Mlp::Load(std::istream& in) {
  std::vector<int32_t> dims;
  if (!ReadVector(in, &dims) || dims.size() < 2) return false;
  for (int32_t d : dims) {
    if (d <= 0) return false;
  }
  dims_.assign(dims.begin(), dims.end());
  layers_.assign(dims_.size() - 1, Linear());
  for (Linear& layer : layers_) {
    if (!layer.Load(in)) return false;
  }
  for (size_t l = 0; l < layers_.size(); ++l) {
    if (layers_[l].in_dim() != dims_[l] ||
        layers_[l].out_dim() != dims_[l + 1]) {
      return false;
    }
  }
  return true;
}

}  // namespace stage::nn
