#include "stage/nn/mlp.h"

#include "stage/common/macros.h"
#include "stage/common/serialize.h"

namespace stage::nn {

void Mlp::Init(const std::vector<int>& dims, Rng& rng) {
  STAGE_CHECK(dims.size() >= 2);
  dims_ = dims;
  layers_.resize(dims.size() - 1);
  for (size_t l = 0; l < layers_.size(); ++l) {
    layers_[l].Init(dims[l], dims[l + 1], rng);
  }
}

const float* Mlp::Forward(const float* x, Workspace* ws, bool train,
                          float dropout, Rng* rng) const {
  STAGE_CHECK(ws != nullptr);
  const size_t num_layers = layers_.size();
  ws->acts.resize(num_layers + 1);
  ws->masks.assign(num_layers, {});
  ws->acts[0].assign(x, x + dims_[0]);

  for (size_t l = 0; l < num_layers; ++l) {
    ws->acts[l + 1].resize(dims_[l + 1]);
    layers_[l].Forward(ws->acts[l].data(), ws->acts[l + 1].data());
    const bool hidden = l + 1 < num_layers;
    if (!hidden) break;
    std::vector<float>& act = ws->acts[l + 1];
    for (float& a : act) {
      if (a < 0.0f) a = 0.0f;  // ReLU.
    }
    if (train && dropout > 0.0f) {
      STAGE_CHECK(rng != nullptr);
      const float scale = 1.0f / (1.0f - dropout);
      std::vector<float>& mask = ws->masks[l];
      mask.resize(act.size());
      for (size_t i = 0; i < act.size(); ++i) {
        mask[i] = rng->NextBernoulli(dropout) ? 0.0f : scale;
        act[i] *= mask[i];
      }
    }
  }
  return ws->acts.back().data();
}

void Mlp::Backward(const float* dout, Workspace& ws, float* dx) {
  const size_t num_layers = layers_.size();
  STAGE_CHECK(ws.acts.size() == num_layers + 1);

  std::vector<float> delta(dout, dout + dims_.back());
  std::vector<float> dprev;
  for (size_t l = num_layers; l-- > 0;) {
    dprev.assign(dims_[l], 0.0f);
    layers_[l].Backward(ws.acts[l].data(), delta.data(), dprev.data());
    if (l > 0) {
      // Backprop through the hidden ReLU (+ dropout) of layer l-1. A zero
      // activation means either ReLU cut it or dropout dropped it; both
      // zero the gradient. A surviving dropout unit re-applies its scale.
      const std::vector<float>& act = ws.acts[l];
      const std::vector<float>& mask = ws.masks[l - 1];
      for (int i = 0; i < dims_[l]; ++i) {
        if (act[i] <= 0.0f) {
          dprev[i] = 0.0f;
        } else if (!mask.empty()) {
          dprev[i] *= mask[i];  // mask holds 0 or the inverted-dropout scale.
        }
      }
    }
    delta = dprev;
  }
  if (dx != nullptr) {
    for (int i = 0; i < dims_[0]; ++i) dx[i] += delta[i];
  }
}

void Mlp::ZeroGrad() {
  for (Linear& layer : layers_) layer.ZeroGrad();
}

void Mlp::Step(const AdamConfig& config, double grad_divisor) {
  for (Linear& layer : layers_) layer.Step(config, grad_divisor);
}

size_t Mlp::MemoryBytes() const {
  size_t bytes = 0;
  for (const Linear& layer : layers_) bytes += layer.MemoryBytes();
  return bytes;
}

void Mlp::Save(std::ostream& out) const {
  WriteVector(out, std::vector<int32_t>(dims_.begin(), dims_.end()));
  for (const Linear& layer : layers_) layer.Save(out);
}

bool Mlp::Load(std::istream& in) {
  std::vector<int32_t> dims;
  if (!ReadVector(in, &dims) || dims.size() < 2) return false;
  for (int32_t d : dims) {
    if (d <= 0) return false;
  }
  dims_.assign(dims.begin(), dims.end());
  layers_.assign(dims_.size() - 1, Linear());
  for (Linear& layer : layers_) {
    if (!layer.Load(in)) return false;
  }
  for (size_t l = 0; l < layers_.size(); ++l) {
    if (layers_[l].in_dim() != dims_[l] ||
        layers_[l].out_dim() != dims_[l + 1]) {
      return false;
    }
  }
  return true;
}

}  // namespace stage::nn
