#ifndef STAGE_GLOBAL_GLOBAL_MODEL_H_
#define STAGE_GLOBAL_GLOBAL_MODEL_H_

#include <cstdint>
#include <istream>
#include <ostream>
#include <vector>

#include "stage/common/rng.h"
#include "stage/fleet/instance.h"
#include "stage/nn/mlp.h"
#include "stage/nn/tree_gcn.h"
#include "stage/plan/featurizer.h"
#include "stage/plan/plan.h"

namespace stage::global {

// Width of the system feature vector concatenated with the GCN's root
// representation (§4.4): node-type one-hot, cluster shape, concurrency,
// and a summarization of the query plan.
inline constexpr int kSystemFeatureDim =
    static_cast<int>(fleet::NodeType::kNumNodeTypes) + 7;

// Builds the system vector from the *observable* instance properties plus
// the per-query concurrency. Never touches the hidden ground-truth fields.
std::vector<float> SystemFeatures(const fleet::InstanceConfig& instance,
                                  const plan::Plan& plan,
                                  int concurrent_queries);

// One prepared training example (featurized once, reused every epoch).
struct GlobalExample {
  std::vector<float> node_features;  // [n x kNodeFeatureDim].
  std::vector<std::vector<int32_t>> children;
  std::vector<float> system_features;  // [kSystemFeatureDim].
  double target = 0.0;                 // log1p(exec seconds).
};

GlobalExample MakeGlobalExample(const plan::Plan& plan,
                                const fleet::InstanceConfig& instance,
                                int concurrent_queries, double exec_seconds);

struct GlobalModelConfig {
  // Architecture. The paper trains hidden 512 x 8 layers on GPUs; the CPU
  // default here keeps fleet-scale training minutes-scale while preserving
  // the architecture (documented in DESIGN.md).
  int hidden_dim = 48;
  int num_layers = 3;
  float dropout = 0.2f;
  std::vector<int> head_hidden = {64, 32};

  // Optimization.
  nn::AdamConfig adam;
  int epochs = 8;
  int batch_size = 16;
  double huber_delta = 1.0;  // Huber loss on log1p targets.
  uint64_t seed = 7;
  // When > 0, hold out this fraction for a validation metric.
  double validation_fraction = 0.1;
};

// Stage 3 (§4.4): the fleet-trained, instance-independent graph
// convolutional network over physical plan trees.
class GlobalModel {
 public:
  GlobalModel() = default;

  // Trains on examples pooled across many instances. Returns the trained
  // model; `val_mae_log` (optional) receives the final held-out MAE in
  // log space.
  static GlobalModel Train(const std::vector<GlobalExample>& examples,
                           const GlobalModelConfig& config,
                           double* val_mae_log = nullptr);

  bool trained() const { return trained_; }

  // Predicted exec-time in seconds for a (plan, instance, load) triple.
  double PredictSeconds(const plan::Plan& plan,
                        const fleet::InstanceConfig& instance,
                        int concurrent_queries) const;

  // Prediction from a prepared example (no refeaturization).
  double PredictSecondsFromExample(const GlobalExample& example) const;

  size_t MemoryBytes() const;

  // Checkpointing: train once on the fleet, ship the file to every
  // instance (the paper deploys the global model as a shared service).
  // Save requires trained(); Load yields a trained, inference-ready model.
  void Save(std::ostream& out) const;
  bool Load(std::istream& in);

 private:
  double ForwardTarget(const GlobalExample& example) const;

  GlobalModelConfig config_;
  nn::TreeGcn gcn_;
  nn::Mlp head_;
  bool trained_ = false;
};

}  // namespace stage::global

#endif  // STAGE_GLOBAL_GLOBAL_MODEL_H_
