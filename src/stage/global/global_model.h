#ifndef STAGE_GLOBAL_GLOBAL_MODEL_H_
#define STAGE_GLOBAL_GLOBAL_MODEL_H_

#include <cstdint>
#include <istream>
#include <ostream>
#include <span>
#include <vector>

#include "stage/common/rng.h"
#include "stage/common/thread_pool.h"
#include "stage/fleet/instance.h"
#include "stage/nn/mlp.h"
#include "stage/nn/tree_gcn.h"
#include "stage/plan/featurizer.h"
#include "stage/plan/plan.h"

namespace stage::global {

// Width of the system feature vector concatenated with the GCN's root
// representation (§4.4): node-type one-hot, cluster shape, concurrency,
// and a summarization of the query plan.
inline constexpr int kSystemFeatureDim =
    static_cast<int>(fleet::NodeType::kNumNodeTypes) + 7;

// Builds the system vector from the *observable* instance properties plus
// the per-query concurrency. Never touches the hidden ground-truth fields.
std::vector<float> SystemFeatures(const fleet::InstanceConfig& instance,
                                  const plan::Plan& plan,
                                  int concurrent_queries);

// Same, written into `out` (exactly kSystemFeatureDim floats) — the
// allocation-free form the serving path uses.
void SystemFeaturesInto(const fleet::InstanceConfig& instance,
                        const plan::Plan& plan, int concurrent_queries,
                        float* out);

// One prepared training example (featurized once, reused every epoch).
struct GlobalExample {
  std::vector<float> node_features;  // [n x kNodeFeatureDim].
  std::vector<std::vector<int32_t>> children;
  std::vector<float> system_features;  // [kSystemFeatureDim].
  double target = 0.0;                 // log1p(exec seconds).
};

GlobalExample MakeGlobalExample(const plan::Plan& plan,
                                const fleet::InstanceConfig& instance,
                                int concurrent_queries, double exec_seconds);

// One inference request for PredictBatch: the (plan, concurrency) pair of
// PredictSeconds, featurized inside the batch call.
struct GlobalQuery {
  const plan::Plan* plan = nullptr;
  int concurrent_queries = 0;
};

struct GlobalModelConfig {
  // Architecture. The paper trains hidden 512 x 8 layers on GPUs; the CPU
  // default here keeps fleet-scale training minutes-scale while preserving
  // the architecture (documented in DESIGN.md).
  int hidden_dim = 48;
  int num_layers = 3;
  float dropout = 0.2f;
  std::vector<int> head_hidden = {64, 32};

  // Optimization.
  nn::AdamConfig adam;
  int epochs = 8;
  int batch_size = 16;
  double huber_delta = 1.0;  // Huber loss on log1p targets.
  uint64_t seed = 7;
  // When > 0, hold out this fraction for a validation metric.
  double validation_fraction = 0.1;

  // Fan each minibatch's GEMMs out across a thread pool (the `pool`
  // argument of Train, ThreadPool::Shared() when unset). Gradient
  // accumulation is tiled per output element, so trained bytes are
  // IDENTICAL for every pool width and for the serial path (this flag
  // off) — the flag is a scheduling choice, never a results choice.
  bool parallel_train = true;
};

// Stage 3 (§4.4): the fleet-trained, instance-independent graph
// convolutional network over physical plan trees.
//
// Thread-safety: all Predict* methods are const and keep their scratch in
// thread-local arenas, so concurrent calls from any number of threads are
// safe (and allocation-free once each thread's scratch has warmed up).
class GlobalModel {
 public:
  GlobalModel() = default;

  // Trains on examples pooled across many instances. Returns the trained
  // model; `val_mae_log` (optional) receives the final held-out MAE in
  // log space. Minibatches run level-order batched over the whole forest
  // (one GEMM per layer per transform); with config.parallel_train the
  // GEMMs fan out on `pool` (ThreadPool::Shared() when null) with bytes
  // identical to the serial path.
  static GlobalModel Train(const std::vector<GlobalExample>& examples,
                           const GlobalModelConfig& config,
                           double* val_mae_log = nullptr,
                           ThreadPool* pool = nullptr);

  bool trained() const { return trained_; }

  // Predicted exec-time in seconds for a (plan, instance, load) triple.
  // Allocation-free once this thread's scratch is warm.
  double PredictSeconds(const plan::Plan& plan,
                        const fleet::InstanceConfig& instance,
                        int concurrent_queries) const;

  // Prediction from a prepared example (no refeaturization).
  double PredictSecondsFromExample(const GlobalExample& example) const;

  // Batched PredictSeconds: featurizes every query once, then runs ONE
  // level-order GCN pass over the whole forest and one batched head pass.
  // out_seconds[i] is bit-for-bit identical to
  // PredictSeconds(*queries[i].plan, instance, queries[i].concurrent_queries)
  // for every batch size; `pool` only fans out the GEMMs. Requires
  // out_seconds.size() == queries.size().
  void PredictBatch(std::span<const GlobalQuery> queries,
                    const fleet::InstanceConfig& instance,
                    std::span<double> out_seconds,
                    ThreadPool* pool = nullptr) const;

  size_t MemoryBytes() const;

  // Checkpointing: train once on the fleet, ship the file to every
  // instance (the paper deploys the global model as a shared service).
  // Save requires trained(); Load yields a trained, inference-ready model.
  void Save(std::ostream& out) const;
  bool Load(std::istream& in);

 private:
  struct Scratch;  // Per-thread inference scratch (global_model.cc).
  static Scratch& TlsScratch();

  double ForwardTarget(const GlobalExample& example) const;
  // Shared tail of every predict path: with scratch.batch built, runs the
  // batched GCN + head in eval mode and returns the head output
  // [num_trees x 1] inside scratch. `system_rows` is
  // [num_trees x kSystemFeatureDim].
  const float* ForwardPrepared(Scratch& scratch, const float* system_rows,
                               ThreadPool* pool) const;

  GlobalModelConfig config_;
  nn::TreeGcn gcn_;
  nn::Mlp head_;
  bool trained_ = false;
};

}  // namespace stage::global

#endif  // STAGE_GLOBAL_GLOBAL_MODEL_H_
