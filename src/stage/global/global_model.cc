#include "stage/global/global_model.h"

#include <algorithm>
#include <cmath>

#include "stage/common/macros.h"
#include "stage/common/serialize.h"
#include "stage/nn/tree_batch.h"

namespace stage::global {

namespace {

float Log1p(double v) { return static_cast<float>(std::log1p(v < 0 ? 0 : v)); }

// Huber loss derivative w.r.t. the residual r = pred - target.
double HuberGrad(double r, double delta) {
  if (r > delta) return delta;
  if (r < -delta) return -delta;
  return r;
}

// log-space model output -> seconds (clamped to keep expm1 sane).
double TargetToSeconds(double target) {
  return std::max(0.0, std::expm1(std::clamp(target, 0.0, 14.0)));
}

}  // namespace

void SystemFeaturesInto(const fleet::InstanceConfig& instance,
                        const plan::Plan& plan, int concurrent_queries,
                        float* out) {
  std::fill(out, out + kSystemFeatureDim, 0.0f);
  const int type_slot = static_cast<int>(instance.node_type);
  STAGE_CHECK(type_slot <
              static_cast<int>(fleet::NodeType::kNumNodeTypes));
  out[type_slot] = 1.0f;
  int i = static_cast<int>(fleet::NodeType::kNumNodeTypes);
  out[i++] = Log1p(instance.num_nodes);
  out[i++] = Log1p(instance.memory_gb);
  out[i++] = Log1p(concurrent_queries);
  // Plan summarization (§4.4: "a summarization of the query plan").
  out[i++] = Log1p(plan.node_count());
  out[i++] = Log1p(plan.Depth());
  out[i++] = Log1p(plan.TotalEstimatedCost());
  out[i++] = Log1p(plan.node(plan.root()).estimated_cardinality);
  STAGE_CHECK(i == kSystemFeatureDim);
}

std::vector<float> SystemFeatures(const fleet::InstanceConfig& instance,
                                  const plan::Plan& plan,
                                  int concurrent_queries) {
  std::vector<float> features(kSystemFeatureDim, 0.0f);
  SystemFeaturesInto(instance, plan, concurrent_queries, features.data());
  return features;
}

GlobalExample MakeGlobalExample(const plan::Plan& plan,
                                const fleet::InstanceConfig& instance,
                                int concurrent_queries, double exec_seconds) {
  GlobalExample example;
  example.node_features = plan::NodeFeatures(plan);
  example.children.reserve(plan.node_count());
  for (const plan::PlanNode& node : plan.nodes()) {
    example.children.push_back(node.children);
  }
  example.system_features =
      SystemFeatures(instance, plan, concurrent_queries);
  example.target = std::log1p(std::max(0.0, exec_seconds));
  return example;
}

GlobalModel GlobalModel::Train(const std::vector<GlobalExample>& examples,
                               const GlobalModelConfig& config,
                               double* val_mae_log, ThreadPool* pool) {
  STAGE_CHECK(!examples.empty());
  GlobalModel model;
  model.config_ = config;
  // The pool only distributes GEMM tiles; every gradient element is
  // accumulated by one owner in a fixed order (nn/gemm.h), and all dropout
  // draws happen on this thread, so trained bytes are identical for every
  // pool width and for the serial path.
  ThreadPool* gemm_pool =
      config.parallel_train ? (pool != nullptr ? pool : &ThreadPool::Shared())
                            : nullptr;

  Rng rng(config.seed);
  nn::TreeGcn::Config gcn_config;
  gcn_config.input_dim = plan::kNodeFeatureDim;
  gcn_config.hidden_dim = config.hidden_dim;
  gcn_config.num_layers = config.num_layers;
  gcn_config.dropout = config.dropout;
  model.gcn_.Init(gcn_config, rng);

  std::vector<int> head_dims;
  head_dims.push_back(config.hidden_dim + kSystemFeatureDim);
  for (int h : config.head_hidden) head_dims.push_back(h);
  head_dims.push_back(1);
  model.head_.Init(head_dims, rng);

  // Train/validation split.
  std::vector<size_t> order = rng.Permutation(examples.size());
  size_t num_val = 0;
  if (config.validation_fraction > 0.0 && examples.size() >= 20) {
    num_val = static_cast<size_t>(config.validation_fraction *
                                  static_cast<double>(examples.size()));
  }
  std::vector<size_t> val_rows(order.begin(), order.begin() + num_val);
  std::vector<size_t> train_rows(order.begin() + num_val, order.end());
  STAGE_CHECK(!train_rows.empty());

  const int h = config.hidden_dim;
  const int concat_dim = h + kSystemFeatureDim;
  // Each minibatch runs as ONE forest: every example's plan tree goes into
  // a shared TreeBatch and the whole batch moves through the GCN + head as
  // two handfuls of GEMMs. All scratch below is reused across batches.
  nn::TreeBatch batch;
  nn::TreeGcn::Workspace gcn_ws;
  nn::Mlp::Workspace head_ws;
  std::vector<float> concat;
  std::vector<float> douts;
  std::vector<float> dconcat;
  std::vector<float> droots;

  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    train_rows = [&] {
      // Reshuffle each epoch.
      std::vector<size_t> shuffled;
      shuffled.reserve(train_rows.size());
      for (size_t i : rng.Permutation(train_rows.size())) {
        shuffled.push_back(train_rows[i]);
      }
      return shuffled;
    }();

    size_t index = 0;
    while (index < train_rows.size()) {
      const size_t batch_end = std::min(
          index + static_cast<size_t>(config.batch_size), train_rows.size());
      const int b = static_cast<int>(batch_end - index);
      model.gcn_.ZeroGrad();
      model.head_.ZeroGrad();

      batch.Clear(plan::kNodeFeatureDim);
      for (size_t r = index; r < batch_end; ++r) {
        const GlobalExample& example = examples[train_rows[r]];
        batch.AddTree(example.node_features.data(),
                      static_cast<int>(example.children.size()),
                      example.children);
      }
      const float* roots =
          model.gcn_.ForwardBatch(batch, &gcn_ws, /*train=*/true, &rng,
                                  gemm_pool);
      concat.resize(static_cast<size_t>(b) * concat_dim);
      for (int r = 0; r < b; ++r) {
        float* row = concat.data() + static_cast<size_t>(r) * concat_dim;
        std::copy(roots + static_cast<size_t>(r) * h,
                  roots + static_cast<size_t>(r + 1) * h, row);
        const GlobalExample& example = examples[train_rows[index + r]];
        std::copy(example.system_features.begin(),
                  example.system_features.end(), row + h);
      }
      const float* out =
          model.head_.ForwardBatch(concat.data(), b, &head_ws, /*train=*/true,
                                   config.dropout, &rng, gemm_pool);

      douts.resize(b);
      for (int r = 0; r < b; ++r) {
        const GlobalExample& example = examples[train_rows[index + r]];
        const double residual =
            static_cast<double>(out[r]) - example.target;
        douts[r] =
            static_cast<float>(HuberGrad(residual, config.huber_delta));
      }

      dconcat.assign(static_cast<size_t>(b) * concat_dim, 0.0f);
      model.head_.BackwardBatch(douts.data(), head_ws, dconcat.data(),
                                gemm_pool);
      // Only the first h columns flow back into the GCN; the system slice
      // is input, its gradient is discarded.
      droots.resize(static_cast<size_t>(b) * h);
      for (int r = 0; r < b; ++r) {
        const float* src = dconcat.data() + static_cast<size_t>(r) * concat_dim;
        std::copy(src, src + h, droots.data() + static_cast<size_t>(r) * h);
      }
      model.gcn_.BackwardBatch(droots.data(), batch, gcn_ws, gemm_pool);

      model.gcn_.Step(config.adam,
                      static_cast<double>(batch_end - index));
      model.head_.Step(config.adam,
                       static_cast<double>(batch_end - index));
      index = batch_end;
    }
  }
  model.trained_ = true;

  if (val_mae_log != nullptr) {
    double total = 0.0;
    const std::vector<size_t>& rows = num_val > 0 ? val_rows : train_rows;
    for (size_t row : rows) {
      total += std::abs(model.ForwardTarget(examples[row]) -
                        examples[row].target);
    }
    *val_mae_log = rows.empty() ? 0.0
                                : total / static_cast<double>(rows.size());
  }
  return model;
}

// Per-thread inference scratch: every Predict* path builds its forest and
// runs the workspaces in here, so const concurrent prediction is safe and
// allocation-free once a thread has seen its largest batch.
struct GlobalModel::Scratch {
  nn::TreeBatch batch;
  nn::TreeGcn::Workspace gcn_ws;
  nn::Mlp::Workspace head_ws;
  std::vector<float> node_features;
  std::vector<float> system;  // [num_trees x kSystemFeatureDim].
  std::vector<float> concat;  // [num_trees x (hidden + system)].
};

GlobalModel::Scratch& GlobalModel::TlsScratch() {
  thread_local Scratch scratch;
  return scratch;
}

const float* GlobalModel::ForwardPrepared(Scratch& scratch,
                                          const float* system_rows,
                                          ThreadPool* pool) const {
  const int num_trees = scratch.batch.num_trees();
  const int h = config_.hidden_dim;
  const int concat_dim = h + kSystemFeatureDim;
  const float* roots =
      gcn_.ForwardBatch(scratch.batch, &scratch.gcn_ws, /*train=*/false,
                        nullptr, pool);
  scratch.concat.resize(static_cast<size_t>(num_trees) * concat_dim);
  for (int t = 0; t < num_trees; ++t) {
    float* row = scratch.concat.data() + static_cast<size_t>(t) * concat_dim;
    std::copy(roots + static_cast<size_t>(t) * h,
              roots + static_cast<size_t>(t + 1) * h, row);
    std::copy(system_rows + static_cast<size_t>(t) * kSystemFeatureDim,
              system_rows + static_cast<size_t>(t + 1) * kSystemFeatureDim,
              row + h);
  }
  return head_.ForwardBatch(scratch.concat.data(), num_trees,
                            &scratch.head_ws, /*train=*/false, 0.0f, nullptr,
                            pool);
}

double GlobalModel::ForwardTarget(const GlobalExample& example) const {
  Scratch& scratch = TlsScratch();
  scratch.batch.Clear(plan::kNodeFeatureDim);
  scratch.batch.AddTree(example.node_features.data(),
                        static_cast<int>(example.children.size()),
                        example.children);
  STAGE_DCHECK(example.system_features.size() ==
               static_cast<size_t>(kSystemFeatureDim));
  const float* out =
      ForwardPrepared(scratch, example.system_features.data(), nullptr);
  return static_cast<double>(out[0]);
}

double GlobalModel::PredictSecondsFromExample(
    const GlobalExample& example) const {
  STAGE_CHECK(trained_);
  return TargetToSeconds(ForwardTarget(example));
}

double GlobalModel::PredictSeconds(const plan::Plan& plan,
                                   const fleet::InstanceConfig& instance,
                                   int concurrent_queries) const {
  STAGE_CHECK(trained_);
  Scratch& scratch = TlsScratch();
  scratch.batch.Clear(plan::kNodeFeatureDim);
  plan::NodeFeaturesInto(plan, &scratch.node_features);
  scratch.batch.AddTree(
      scratch.node_features.data(), plan.node_count(),
      [&plan](int32_t i) -> const std::vector<int32_t>& {
        return plan.node(i).children;
      });
  scratch.system.resize(kSystemFeatureDim);
  SystemFeaturesInto(instance, plan, concurrent_queries,
                     scratch.system.data());
  const float* out = ForwardPrepared(scratch, scratch.system.data(), nullptr);
  return TargetToSeconds(static_cast<double>(out[0]));
}

void GlobalModel::PredictBatch(std::span<const GlobalQuery> queries,
                               const fleet::InstanceConfig& instance,
                               std::span<double> out_seconds,
                               ThreadPool* pool) const {
  STAGE_CHECK(trained_);
  STAGE_CHECK(queries.size() == out_seconds.size());
  if (queries.empty()) return;
  Scratch& scratch = TlsScratch();
  scratch.batch.Clear(plan::kNodeFeatureDim);
  scratch.system.resize(queries.size() *
                        static_cast<size_t>(kSystemFeatureDim));
  for (size_t q = 0; q < queries.size(); ++q) {
    const plan::Plan* plan = queries[q].plan;
    STAGE_CHECK(plan != nullptr);
    plan::NodeFeaturesInto(*plan, &scratch.node_features);
    scratch.batch.AddTree(
        scratch.node_features.data(), plan->node_count(),
        [plan](int32_t i) -> const std::vector<int32_t>& {
          return plan->node(i).children;
        });
    SystemFeaturesInto(instance, *plan, queries[q].concurrent_queries,
                       scratch.system.data() +
                           q * static_cast<size_t>(kSystemFeatureDim));
  }
  const float* out = ForwardPrepared(scratch, scratch.system.data(), pool);
  for (size_t q = 0; q < queries.size(); ++q) {
    out_seconds[q] = TargetToSeconds(static_cast<double>(out[q]));
  }
}

size_t GlobalModel::MemoryBytes() const {
  return gcn_.MemoryBytes() + head_.MemoryBytes();
}

namespace {
constexpr uint32_t kGlobalMagic = 0x53474d4c;  // "SGML".
constexpr uint32_t kGlobalVersion = 1;
}  // namespace

void GlobalModel::Save(std::ostream& out) const {
  STAGE_CHECK_MSG(trained_, "cannot save an untrained global model");
  WriteHeader(out, kGlobalMagic, kGlobalVersion);
  gcn_.Save(out);
  head_.Save(out);
}

bool GlobalModel::Load(std::istream& in) {
  if (!ReadHeader(in, kGlobalMagic, kGlobalVersion)) return false;
  if (!gcn_.Load(in) || !head_.Load(in)) return false;
  // The head must accept [gcn hidden + system features].
  if (head_.in_dim() != gcn_.hidden_dim() + kSystemFeatureDim) return false;
  config_.hidden_dim = gcn_.hidden_dim();
  trained_ = true;
  return true;
}

}  // namespace stage::global
