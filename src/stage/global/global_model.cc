#include "stage/global/global_model.h"

#include <algorithm>
#include <cmath>

#include "stage/common/macros.h"
#include "stage/common/serialize.h"

namespace stage::global {

namespace {

float Log1p(double v) { return static_cast<float>(std::log1p(v < 0 ? 0 : v)); }

// Huber loss derivative w.r.t. the residual r = pred - target.
double HuberGrad(double r, double delta) {
  if (r > delta) return delta;
  if (r < -delta) return -delta;
  return r;
}

}  // namespace

std::vector<float> SystemFeatures(const fleet::InstanceConfig& instance,
                                  const plan::Plan& plan,
                                  int concurrent_queries) {
  std::vector<float> features(kSystemFeatureDim, 0.0f);
  const int type_slot = static_cast<int>(instance.node_type);
  STAGE_CHECK(type_slot <
              static_cast<int>(fleet::NodeType::kNumNodeTypes));
  features[type_slot] = 1.0f;
  int i = static_cast<int>(fleet::NodeType::kNumNodeTypes);
  features[i++] = Log1p(instance.num_nodes);
  features[i++] = Log1p(instance.memory_gb);
  features[i++] = Log1p(concurrent_queries);
  // Plan summarization (§4.4: "a summarization of the query plan").
  features[i++] = Log1p(plan.node_count());
  features[i++] = Log1p(plan.Depth());
  features[i++] = Log1p(plan.TotalEstimatedCost());
  features[i++] = Log1p(plan.node(plan.root()).estimated_cardinality);
  STAGE_CHECK(i == kSystemFeatureDim);
  return features;
}

GlobalExample MakeGlobalExample(const plan::Plan& plan,
                                const fleet::InstanceConfig& instance,
                                int concurrent_queries, double exec_seconds) {
  GlobalExample example;
  example.node_features = plan::NodeFeatures(plan);
  example.children.reserve(plan.node_count());
  for (const plan::PlanNode& node : plan.nodes()) {
    example.children.push_back(node.children);
  }
  example.system_features =
      SystemFeatures(instance, plan, concurrent_queries);
  example.target = std::log1p(std::max(0.0, exec_seconds));
  return example;
}

GlobalModel GlobalModel::Train(const std::vector<GlobalExample>& examples,
                               const GlobalModelConfig& config,
                               double* val_mae_log) {
  STAGE_CHECK(!examples.empty());
  GlobalModel model;
  model.config_ = config;

  Rng rng(config.seed);
  nn::TreeGcn::Config gcn_config;
  gcn_config.input_dim = plan::kNodeFeatureDim;
  gcn_config.hidden_dim = config.hidden_dim;
  gcn_config.num_layers = config.num_layers;
  gcn_config.dropout = config.dropout;
  model.gcn_.Init(gcn_config, rng);

  std::vector<int> head_dims;
  head_dims.push_back(config.hidden_dim + kSystemFeatureDim);
  for (int h : config.head_hidden) head_dims.push_back(h);
  head_dims.push_back(1);
  model.head_.Init(head_dims, rng);

  // Train/validation split.
  std::vector<size_t> order = rng.Permutation(examples.size());
  size_t num_val = 0;
  if (config.validation_fraction > 0.0 && examples.size() >= 20) {
    num_val = static_cast<size_t>(config.validation_fraction *
                                  static_cast<double>(examples.size()));
  }
  std::vector<size_t> val_rows(order.begin(), order.begin() + num_val);
  std::vector<size_t> train_rows(order.begin() + num_val, order.end());
  STAGE_CHECK(!train_rows.empty());

  const int concat_dim = config.hidden_dim + kSystemFeatureDim;
  std::vector<float> concat(concat_dim);
  std::vector<float> dconcat(concat_dim);
  nn::TreeGcn::Workspace gcn_ws;
  nn::Mlp::Workspace head_ws;

  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    train_rows = [&] {
      // Reshuffle each epoch.
      std::vector<size_t> shuffled;
      shuffled.reserve(train_rows.size());
      for (size_t i : rng.Permutation(train_rows.size())) {
        shuffled.push_back(train_rows[i]);
      }
      return shuffled;
    }();

    size_t index = 0;
    while (index < train_rows.size()) {
      const size_t batch_end = std::min(
          index + static_cast<size_t>(config.batch_size), train_rows.size());
      const double batch_size = static_cast<double>(batch_end - index);
      model.gcn_.ZeroGrad();
      model.head_.ZeroGrad();
      for (; index < batch_end; ++index) {
        const GlobalExample& example = examples[train_rows[index]];
        const int n = static_cast<int>(example.children.size());
        const float* root = model.gcn_.Forward(
            example.node_features.data(), n, example.children, &gcn_ws,
            /*train=*/true, &rng);
        std::copy(root, root + config.hidden_dim, concat.begin());
        std::copy(example.system_features.begin(),
                  example.system_features.end(),
                  concat.begin() + config.hidden_dim);
        const float* out =
            model.head_.Forward(concat.data(), &head_ws, /*train=*/true,
                                config.dropout, &rng);
        const double residual = static_cast<double>(out[0]) - example.target;
        const float dout =
            static_cast<float>(HuberGrad(residual, config.huber_delta));

        std::fill(dconcat.begin(), dconcat.end(), 0.0f);
        model.head_.Backward(&dout, head_ws, dconcat.data());
        model.gcn_.Backward(dconcat.data(), example.children, gcn_ws);
      }
      model.gcn_.Step(config.adam, batch_size);
      model.head_.Step(config.adam, batch_size);
    }
  }
  model.trained_ = true;

  if (val_mae_log != nullptr) {
    double total = 0.0;
    const std::vector<size_t>& rows = num_val > 0 ? val_rows : train_rows;
    for (size_t row : rows) {
      total += std::abs(model.ForwardTarget(examples[row]) -
                        examples[row].target);
    }
    *val_mae_log = rows.empty() ? 0.0
                                : total / static_cast<double>(rows.size());
  }
  return model;
}

double GlobalModel::ForwardTarget(const GlobalExample& example) const {
  nn::TreeGcn::Workspace gcn_ws;
  nn::Mlp::Workspace head_ws;
  std::vector<float> concat(config_.hidden_dim + kSystemFeatureDim);
  const int n = static_cast<int>(example.children.size());
  const float* root = gcn_.Forward(example.node_features.data(), n,
                                   example.children, &gcn_ws);
  std::copy(root, root + config_.hidden_dim, concat.begin());
  std::copy(example.system_features.begin(), example.system_features.end(),
            concat.begin() + config_.hidden_dim);
  const float* out = head_.Forward(concat.data(), &head_ws);
  return static_cast<double>(out[0]);
}

double GlobalModel::PredictSecondsFromExample(
    const GlobalExample& example) const {
  STAGE_CHECK(trained_);
  const double target = std::clamp(ForwardTarget(example), 0.0, 14.0);
  return std::max(0.0, std::expm1(target));
}

double GlobalModel::PredictSeconds(const plan::Plan& plan,
                                   const fleet::InstanceConfig& instance,
                                   int concurrent_queries) const {
  const GlobalExample example =
      MakeGlobalExample(plan, instance, concurrent_queries, 0.0);
  return PredictSecondsFromExample(example);
}

size_t GlobalModel::MemoryBytes() const {
  return gcn_.MemoryBytes() + head_.MemoryBytes();
}

namespace {
constexpr uint32_t kGlobalMagic = 0x53474d4c;  // "SGML".
constexpr uint32_t kGlobalVersion = 1;
}  // namespace

void GlobalModel::Save(std::ostream& out) const {
  STAGE_CHECK_MSG(trained_, "cannot save an untrained global model");
  WriteHeader(out, kGlobalMagic, kGlobalVersion);
  gcn_.Save(out);
  head_.Save(out);
}

bool GlobalModel::Load(std::istream& in) {
  if (!ReadHeader(in, kGlobalMagic, kGlobalVersion)) return false;
  if (!gcn_.Load(in) || !head_.Load(in)) return false;
  // The head must accept [gcn hidden + system features].
  if (head_.in_dim() != gcn_.hidden_dim() + kSystemFeatureDim) return false;
  config_.hidden_dim = gcn_.hidden_dim();
  trained_ = true;
  return true;
}

}  // namespace stage::global
