#ifndef STAGE_METRICS_LATENCY_RECORDER_H_
#define STAGE_METRICS_LATENCY_RECORDER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "stage/obs/metrics.h"

namespace stage::metrics {

// Lock-free per-slot latency/QPS accumulator for serving-path telemetry
// (§4.5 overhead accounting at runtime rather than in a bench). Slots are
// opaque indices; the serving layer maps one slot per PredictionSource so
// cache hits, local-model predictions, and global escalations report
// separate latency distributions. All methods are thread-safe; Record is a
// handful of relaxed atomic RMWs and never blocks.
//
// Each slot is backed by an obs::Histogram (the single histogram
// implementation in the tree), so beyond count/mean/max every slot also
// reports interpolated percentiles and can be exposed on a MetricsRegistry
// via histogram_snapshot.
class LatencyRecorder {
 public:
  explicit LatencyRecorder(size_t num_slots);

  void Record(size_t slot, uint64_t nanos);

  struct SlotSnapshot {
    uint64_t count = 0;
    uint64_t total_nanos = 0;
    uint64_t max_nanos = 0;
    double p50_nanos = 0.0;  // Interpolated from histogram buckets.
    double p99_nanos = 0.0;
    double mean_micros() const {
      return count == 0 ? 0.0 : 1e-3 * static_cast<double>(total_nanos) /
                                    static_cast<double>(count);
    }
    double max_micros() const { return 1e-3 * static_cast<double>(max_nanos); }
  };

  SlotSnapshot slot(size_t slot_index) const;
  // The raw histogram state of one slot (for MetricsRegistry histogram
  // callbacks and percentile queries beyond p50/p99).
  obs::Histogram::Snapshot histogram_snapshot(size_t slot_index) const;
  size_t num_slots() const { return num_slots_; }
  uint64_t total_count() const;

  // Requests per second given a caller-measured wall-clock window.
  static double Qps(uint64_t count, double elapsed_seconds) {
    return elapsed_seconds <= 0.0 ? 0.0
                                  : static_cast<double>(count) / elapsed_seconds;
  }

  // Fixed-width table of per-slot count / QPS / mean / p50 / p99 / max, one
  // row per named slot (unnamed slots render by index), for CLI diagnostics.
  std::string RenderTable(const std::vector<std::string>& slot_names,
                          double elapsed_seconds) const;

 private:
  size_t num_slots_;
  std::vector<std::unique_ptr<obs::Histogram>> slots_;
};

}  // namespace stage::metrics

#endif  // STAGE_METRICS_LATENCY_RECORDER_H_
