#include "stage/metrics/report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace stage::metrics {

void TextTable::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string TextTable::Render() const {
  // Column widths over header + rows.
  std::vector<size_t> widths;
  auto grow = [&](const std::vector<std::string>& row) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  };
  grow(header_);
  for (const auto& row : rows_) grow(row);

  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    out << "|";
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : "";
      out << " " << cell << std::string(widths[c] - cell.size(), ' ')
          << " |";
    }
    out << "\n";
  };
  if (!header_.empty()) {
    emit(header_);
    out << "|";
    for (size_t c = 0; c < widths.size(); ++c) {
      out << std::string(widths[c] + 2, '-') << "|";
    }
    out << "\n";
  }
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string FormatValue(double value) {
  char buffer[64];
  const double mag = std::abs(value);
  if (mag >= 1000.0) {
    std::snprintf(buffer, sizeof(buffer), "%.0f", value);
  } else if (mag >= 100.0) {
    std::snprintf(buffer, sizeof(buffer), "%.1f", value);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.2f", value);
  }
  return buffer;
}

std::string FormatPercent(double fraction) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.1f%%", fraction * 100.0);
  return buffer;
}

}  // namespace stage::metrics
