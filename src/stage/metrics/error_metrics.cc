#include "stage/metrics/error_metrics.h"

#include <algorithm>
#include <cmath>

#include "stage/common/macros.h"
#include "stage/common/stats.h"

namespace stage::metrics {

std::vector<double> AbsoluteErrors(const std::vector<double>& actual,
                                   const std::vector<double>& predicted) {
  STAGE_CHECK(actual.size() == predicted.size());
  std::vector<double> errors(actual.size());
  for (size_t i = 0; i < actual.size(); ++i) {
    errors[i] = std::abs(actual[i] - predicted[i]);
  }
  return errors;
}

std::vector<double> QErrors(const std::vector<double>& actual,
                            const std::vector<double>& predicted,
                            double floor_seconds) {
  STAGE_CHECK(actual.size() == predicted.size());
  STAGE_CHECK(floor_seconds > 0.0);
  std::vector<double> errors(actual.size());
  for (size_t i = 0; i < actual.size(); ++i) {
    const double a = std::max(actual[i], floor_seconds);
    const double p = std::max(predicted[i], floor_seconds);
    errors[i] = std::max(a / p, p / a);
  }
  return errors;
}

ErrorSummary Summarize(const std::vector<double>& errors) {
  ErrorSummary summary;
  summary.count = errors.size();
  if (errors.empty()) return summary;
  std::vector<double> sorted = errors;
  std::sort(sorted.begin(), sorted.end());
  summary.mean = Mean(errors);
  summary.p50 = SortedQuantile(sorted, 0.5);
  summary.p90 = SortedQuantile(sorted, 0.9);
  return summary;
}

std::string BucketName(int bucket) {
  switch (bucket) {
    case 0: return "0s - 10s";
    case 1: return "10s - 60s";
    case 2: return "60s - 120s";
    case 3: return "120s - 300s";
    case 4: return "300s+";
    default: break;
  }
  STAGE_CHECK_MSG(false, "invalid bucket");
  return "";
}

int BucketOf(double actual_seconds) {
  if (actual_seconds < 10.0) return 0;
  if (actual_seconds < 60.0) return 1;
  if (actual_seconds < 120.0) return 2;
  if (actual_seconds < 300.0) return 3;
  return 4;
}

BucketedSummary SummarizeByBucket(const std::vector<double>& actual,
                                  const std::vector<double>& errors) {
  STAGE_CHECK(actual.size() == errors.size());
  BucketedSummary out;
  out.overall = Summarize(errors);
  std::vector<double> per_bucket[kNumExecTimeBuckets];
  for (size_t i = 0; i < actual.size(); ++i) {
    per_bucket[BucketOf(actual[i])].push_back(errors[i]);
  }
  for (int b = 0; b < kNumExecTimeBuckets; ++b) {
    out.bucket[b] = Summarize(per_bucket[b]);
  }
  return out;
}

}  // namespace stage::metrics
