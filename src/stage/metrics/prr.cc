#include "stage/metrics/prr.h"

#include <algorithm>
#include <numeric>

#include "stage/common/macros.h"

namespace stage::metrics {

namespace {

// Cumulative fraction of total error covered when rejecting queries in the
// order given by `ranking` (indices into abs_errors). curve[k] = fraction
// covered after rejecting k+1 queries.
std::vector<double> CumulativeCurve(const std::vector<double>& abs_errors,
                                    const std::vector<size_t>& ranking,
                                    double total_error) {
  std::vector<double> curve(ranking.size());
  double covered = 0.0;
  for (size_t k = 0; k < ranking.size(); ++k) {
    covered += abs_errors[ranking[k]];
    curve[k] = total_error > 0.0 ? covered / total_error : 0.0;
  }
  return curve;
}

double Auc(const std::vector<double>& curve) {
  double total = 0.0;
  for (double v : curve) total += v;
  return curve.empty() ? 0.0 : total / static_cast<double>(curve.size());
}

}  // namespace

PrrCurves ComputePrrCurves(const std::vector<double>& abs_errors,
                           const std::vector<double>& uncertainties) {
  STAGE_CHECK(!abs_errors.empty());
  STAGE_CHECK(abs_errors.size() == uncertainties.size());
  const size_t n = abs_errors.size();
  const double total =
      std::accumulate(abs_errors.begin(), abs_errors.end(), 0.0);

  std::vector<size_t> by_error(n);
  std::iota(by_error.begin(), by_error.end(), 0);
  std::stable_sort(by_error.begin(), by_error.end(), [&](size_t a, size_t b) {
    return abs_errors[a] > abs_errors[b];
  });

  std::vector<size_t> by_uncertainty(n);
  std::iota(by_uncertainty.begin(), by_uncertainty.end(), 0);
  std::stable_sort(by_uncertainty.begin(), by_uncertainty.end(),
                   [&](size_t a, size_t b) {
                     return uncertainties[a] > uncertainties[b];
                   });

  PrrCurves curves;
  curves.oracle = CumulativeCurve(abs_errors, by_error, total);
  curves.uncertainty = CumulativeCurve(abs_errors, by_uncertainty, total);
  curves.random.resize(n);
  for (size_t k = 0; k < n; ++k) {
    curves.random[k] = static_cast<double>(k + 1) / static_cast<double>(n);
  }
  return curves;
}

double PredictionRejectionRatio(const std::vector<double>& abs_errors,
                                const std::vector<double>& uncertainties) {
  const PrrCurves curves = ComputePrrCurves(abs_errors, uncertainties);
  const double auc_oracle = Auc(curves.oracle) - Auc(curves.random);
  const double auc_model = Auc(curves.uncertainty) - Auc(curves.random);
  if (auc_oracle <= 1e-12) return 0.0;
  return auc_model / auc_oracle;
}

}  // namespace stage::metrics
