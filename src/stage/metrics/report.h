#ifndef STAGE_METRICS_REPORT_H_
#define STAGE_METRICS_REPORT_H_

#include <string>
#include <vector>

namespace stage::metrics {

// Minimal fixed-width text table used by the bench binaries to print the
// paper's tables.
class TextTable {
 public:
  void SetHeader(std::vector<std::string> header);
  void AddRow(std::vector<std::string> row);
  std::string Render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats a double with the paper's 4-significant-digit style (e.g. 7.76,
// 126.4, 1496).
std::string FormatValue(double value);

// Formats a percentage like "20.3%".
std::string FormatPercent(double fraction);

}  // namespace stage::metrics

#endif  // STAGE_METRICS_REPORT_H_
