#include "stage/metrics/latency_recorder.h"

#include "stage/common/macros.h"
#include "stage/metrics/report.h"

namespace stage::metrics {

LatencyRecorder::LatencyRecorder(size_t num_slots)
    : num_slots_(num_slots), slots_(new Slot[num_slots]) {
  STAGE_CHECK(num_slots > 0);
}

void LatencyRecorder::Record(size_t slot, uint64_t nanos) {
  STAGE_DCHECK(slot < num_slots_);
  Slot& s = slots_[slot];
  s.count.fetch_add(1, std::memory_order_relaxed);
  s.total_nanos.fetch_add(nanos, std::memory_order_relaxed);
  uint64_t seen = s.max_nanos.load(std::memory_order_relaxed);
  while (nanos > seen && !s.max_nanos.compare_exchange_weak(
                             seen, nanos, std::memory_order_relaxed)) {
  }
}

LatencyRecorder::SlotSnapshot LatencyRecorder::slot(size_t slot_index) const {
  STAGE_DCHECK(slot_index < num_slots_);
  const Slot& s = slots_[slot_index];
  SlotSnapshot out;
  out.count = s.count.load(std::memory_order_relaxed);
  out.total_nanos = s.total_nanos.load(std::memory_order_relaxed);
  out.max_nanos = s.max_nanos.load(std::memory_order_relaxed);
  return out;
}

uint64_t LatencyRecorder::total_count() const {
  uint64_t total = 0;
  for (size_t i = 0; i < num_slots_; ++i) {
    total += slots_[i].count.load(std::memory_order_relaxed);
  }
  return total;
}

std::string LatencyRecorder::RenderTable(
    const std::vector<std::string>& slot_names, double elapsed_seconds) const {
  TextTable table;
  table.SetHeader({"Slot", "Count", "QPS", "Mean (us)", "Max (us)"});
  for (size_t i = 0; i < num_slots_; ++i) {
    const SlotSnapshot snapshot = slot(i);
    const std::string name =
        i < slot_names.size() ? slot_names[i] : std::to_string(i);
    table.AddRow({name, std::to_string(snapshot.count),
                  FormatValue(Qps(snapshot.count, elapsed_seconds)),
                  FormatValue(snapshot.mean_micros()),
                  FormatValue(snapshot.max_micros())});
  }
  return table.Render();
}

}  // namespace stage::metrics
