#include "stage/metrics/latency_recorder.h"

#include <cmath>

#include "stage/common/macros.h"
#include "stage/metrics/report.h"

namespace stage::metrics {

LatencyRecorder::LatencyRecorder(size_t num_slots) : num_slots_(num_slots) {
  STAGE_CHECK(num_slots > 0);
  slots_.reserve(num_slots);
  for (size_t i = 0; i < num_slots; ++i) {
    slots_.push_back(std::make_unique<obs::Histogram>(
        obs::Histogram::LatencyBucketsNanos()));
  }
}

void LatencyRecorder::Record(size_t slot, uint64_t nanos) {
  STAGE_DCHECK(slot < num_slots_);
  slots_[slot]->Record(static_cast<double>(nanos));
}

LatencyRecorder::SlotSnapshot LatencyRecorder::slot(size_t slot_index) const {
  STAGE_DCHECK(slot_index < num_slots_);
  const obs::Histogram::Snapshot histogram = slots_[slot_index]->TakeSnapshot();
  SlotSnapshot out;
  out.count = histogram.count;
  // Nanosecond sums stay exact in a double well past 2^52 total nanos
  // (~52 days of accumulated latency); llround recovers the integer.
  out.total_nanos = static_cast<uint64_t>(std::llround(histogram.sum));
  out.max_nanos = static_cast<uint64_t>(std::llround(histogram.max));
  out.p50_nanos = histogram.Quantile(0.50);
  out.p99_nanos = histogram.Quantile(0.99);
  return out;
}

obs::Histogram::Snapshot LatencyRecorder::histogram_snapshot(
    size_t slot_index) const {
  STAGE_DCHECK(slot_index < num_slots_);
  return slots_[slot_index]->TakeSnapshot();
}

uint64_t LatencyRecorder::total_count() const {
  uint64_t total = 0;
  for (size_t i = 0; i < num_slots_; ++i) total += slots_[i]->count();
  return total;
}

std::string LatencyRecorder::RenderTable(
    const std::vector<std::string>& slot_names, double elapsed_seconds) const {
  TextTable table;
  table.SetHeader(
      {"Slot", "Count", "QPS", "Mean (us)", "p50 (us)", "p99 (us)",
       "Max (us)"});
  for (size_t i = 0; i < num_slots_; ++i) {
    const SlotSnapshot snapshot = slot(i);
    const std::string name =
        i < slot_names.size() ? slot_names[i] : std::to_string(i);
    table.AddRow({name, std::to_string(snapshot.count),
                  FormatValue(Qps(snapshot.count, elapsed_seconds)),
                  FormatValue(snapshot.mean_micros()),
                  FormatValue(1e-3 * snapshot.p50_nanos),
                  FormatValue(1e-3 * snapshot.p99_nanos),
                  FormatValue(snapshot.max_micros())});
  }
  return table.Render();
}

}  // namespace stage::metrics
