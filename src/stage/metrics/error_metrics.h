#ifndef STAGE_METRICS_ERROR_METRICS_H_
#define STAGE_METRICS_ERROR_METRICS_H_

#include <cstddef>
#include <string>
#include <vector>

namespace stage::metrics {

// Mean / median / tail summary of a per-query error series; the shape of
// every accuracy table in the paper (MAE, P50-AE, P90-AE and the Q-error
// analogues).
struct ErrorSummary {
  size_t count = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
};

// |actual - predicted| per query, in seconds (paper Tables 1, 3-6).
std::vector<double> AbsoluteErrors(const std::vector<double>& actual,
                                   const std::vector<double>& predicted);

// Q-error = max(pred/actual, actual/pred), with both sides clamped to a
// small positive floor so sub-millisecond times do not blow up the ratio
// (paper Table 2, metric of [40]).
std::vector<double> QErrors(const std::vector<double>& actual,
                            const std::vector<double>& predicted,
                            double floor_seconds = 1e-3);

// Aggregates a raw error series.
ErrorSummary Summarize(const std::vector<double>& errors);

// The paper's exec-time buckets: 0-10s, 10-60s, 60-120s, 120-300s, 300s+.
inline constexpr int kNumExecTimeBuckets = 5;
std::string BucketName(int bucket);
// Bucket index of an actual exec-time (seconds).
int BucketOf(double actual_seconds);

// One table row per bucket plus an "Overall" row, for a given error series
// bucketed by the *actual* exec time.
struct BucketedSummary {
  ErrorSummary overall;
  ErrorSummary bucket[kNumExecTimeBuckets];
};
BucketedSummary SummarizeByBucket(const std::vector<double>& actual,
                                  const std::vector<double>& errors);

}  // namespace stage::metrics

#endif  // STAGE_METRICS_ERROR_METRICS_H_
