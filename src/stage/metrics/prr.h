#ifndef STAGE_METRICS_PRR_H_
#define STAGE_METRICS_PRR_H_

#include <vector>

namespace stage::metrics {

// The three cumulative-error curves behind the prediction-rejection ratio
// plot (Fig. 10): at position k (fraction of queries rejected), the fraction
// of total absolute error covered when rejecting the top-k queries ranked
// by the oracle (true error), by the model's uncertainty, and at random
// (the diagonal).
struct PrrCurves {
  std::vector<double> oracle;       // Ranked by true error, descending.
  std::vector<double> uncertainty;  // Ranked by predicted uncertainty.
  std::vector<double> random;       // Diagonal k/n.
};

// Builds the curves for a set of queries with observed absolute errors and
// predicted uncertainties. Requires equal, non-zero lengths.
PrrCurves ComputePrrCurves(const std::vector<double>& abs_errors,
                           const std::vector<double>& uncertainties);

// Prediction-rejection ratio ([30, 31], §5.4):
//   PRR = AUC(uncertainty - random) / AUC(oracle - random).
// 1.0 means uncertainty ranks queries exactly like true error; ~0 means no
// better than random (can be slightly negative for adversarial rankings).
// Returns 0 when the oracle AUC is degenerate (e.g. all-equal errors).
double PredictionRejectionRatio(const std::vector<double>& abs_errors,
                                const std::vector<double>& uncertainties);

}  // namespace stage::metrics

#endif  // STAGE_METRICS_PRR_H_
