#ifndef STAGE_CACHE_EXEC_TIME_CACHE_H_
#define STAGE_CACHE_EXEC_TIME_CACHE_H_

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <unordered_map>

#include "stage/common/p2_quantile.h"
#include "stage/common/stats.h"

namespace stage::cache {

// How a cache entry's observation history is summarized into a prediction
// (§4.2 notes the design freedom of computing "any summary statistic").
enum class CachePredictionMode : uint8_t {
  kBlend = 0,  // alpha * running_mean + (1 - alpha) * last (paper default).
  kMean,       // Running mean only.
  kMedian,     // Streaming median (P-square sketch): robust to spikes.
  kLast,       // Most recent observation only (max freshness).
};

struct ExecTimeCacheConfig {
  // Maximum number of unique queries kept (the paper uses 2,000; §5.1).
  size_t capacity = 2000;
  // Prediction blend: alpha * running_mean + (1 - alpha) * last_observed.
  // alpha = 0.8 "works well for the Redshift fleet" (§4.2).
  double alpha = 0.8;
  CachePredictionMode prediction_mode = CachePredictionMode::kBlend;
};

// Stage 1 of the Stage predictor (§4.2): a memo of recently executed
// queries. Keys are 64-bit hashes of the 33-dim flattened plan vector
// (Optimization 1); values are Welford running mean/variance plus the most
// recent exec-time (Optimization 2), so each entry stores O(1) values
// instead of the full latency history. Eviction removes the entry whose
// latest observation is oldest ("least updated", not least *used*).
class ExecTimeCache {
 public:
  explicit ExecTimeCache(const ExecTimeCacheConfig& config);

  // Cached per-query statistics.
  struct Entry {
    Welford stats;
    P2Quantile median;  // Streaming median sketch (kMedian mode).
    double last_exec_time = 0.0;
    uint64_t last_update_tick = 0;
  };

  // Predicted exec-time for a key, or nullopt on a miss. Logically const:
  // the hit/miss counters it updates are atomics, so concurrent Predict
  // calls are safe with each other. Predict racing Observe still needs
  // external synchronization (the entry map is not lock-free); the sharded
  // serving cache (stage::serve) provides that.
  std::optional<double> Predict(uint64_t key) const;

  // True if the key is cached (no counter side effects); used by the local
  // model's training-pool deduplication (§4.3).
  bool Contains(uint64_t key) const;

  // Read-only view of an entry, or nullptr on a miss.
  const Entry* Lookup(uint64_t key) const;

  // Records an observed execution. `tick` is a monotonically non-decreasing
  // logical timestamp (e.g. the query's completion time); it drives the
  // eviction order. Evicts the least-recently-updated entry when a new key
  // would exceed capacity.
  void Observe(uint64_t key, double exec_time, uint64_t tick);

  size_t size() const { return entries_.size(); }
  size_t capacity() const { return config_.capacity; }
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }

  // Approximate resident size (Fig. 9 accounting).
  size_t MemoryBytes() const;

  // Checkpointing. Save writes every entry in eviction order (deterministic
  // across runs and hash-map layouts); Load replaces the entry set
  // transactionally and rebuilds the eviction index, so a restored cache
  // predicts and evicts bit-for-bit like the original. Telemetry counters
  // (hits/misses/evictions) are deliberately not persisted and restart at
  // zero. Load returns false — leaving the cache untouched — on a
  // malformed stream or when the snapshot exceeds the configured capacity.
  void Save(std::ostream& out) const;
  bool Load(std::istream& in);

 private:
  ExecTimeCacheConfig config_;
  std::unordered_map<uint64_t, Entry> entries_;
  // Eviction index ordered by (last_update_tick, key); the begin() element
  // is the least-recently-updated query.
  std::map<std::pair<uint64_t, uint64_t>, uint64_t> by_update_time_;
  // Mutable + atomic so the const read path can count without a writer
  // lock; evictions_ is written only by Observe but atomic as well so a
  // metrics scrape may read it while an Observe is in flight.
  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace stage::cache

#endif  // STAGE_CACHE_EXEC_TIME_CACHE_H_
