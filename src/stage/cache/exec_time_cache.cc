#include "stage/cache/exec_time_cache.h"

#include "stage/common/macros.h"

namespace stage::cache {

ExecTimeCache::ExecTimeCache(const ExecTimeCacheConfig& config)
    : config_(config) {
  STAGE_CHECK(config.capacity > 0);
  STAGE_CHECK(config.alpha >= 0.0 && config.alpha <= 1.0);
}

std::optional<double> ExecTimeCache::Predict(uint64_t key) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  const Entry& entry = it->second;
  switch (config_.prediction_mode) {
    case CachePredictionMode::kMean:
      return entry.stats.mean();
    case CachePredictionMode::kMedian:
      return entry.median.Value();
    case CachePredictionMode::kLast:
      return entry.last_exec_time;
    case CachePredictionMode::kBlend:
      break;
  }
  // mu * alpha + t_k * (1 - alpha): the running mean captures robustness to
  // load variance, the last observation captures data freshness (§4.2).
  return entry.stats.mean() * config_.alpha +
         entry.last_exec_time * (1.0 - config_.alpha);
}

bool ExecTimeCache::Contains(uint64_t key) const {
  return entries_.find(key) != entries_.end();
}

const ExecTimeCache::Entry* ExecTimeCache::Lookup(uint64_t key) const {
  const auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : &it->second;
}

void ExecTimeCache::Observe(uint64_t key, double exec_time, uint64_t tick) {
  STAGE_CHECK(exec_time >= 0.0);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    by_update_time_.erase({it->second.last_update_tick, key});
  } else {
    if (entries_.size() >= config_.capacity) {
      // Evict the entry whose most recent observation is oldest.
      const auto victim = by_update_time_.begin();
      entries_.erase(victim->second);
      by_update_time_.erase(victim);
      ++evictions_;
    }
    it = entries_.emplace(key, Entry{}).first;
  }
  Entry& entry = it->second;
  entry.stats.Add(exec_time);
  entry.median.Add(exec_time);
  entry.last_exec_time = exec_time;
  entry.last_update_tick = tick;
  by_update_time_.emplace(std::make_pair(tick, key), key);
}

size_t ExecTimeCache::MemoryBytes() const {
  // Hash-map node: key + Entry + bucket overhead; tree node: key pair +
  // value + red-black overhead. Approximate with struct sizes + 2 pointers.
  const size_t map_node =
      sizeof(uint64_t) + sizeof(Entry) + 2 * sizeof(void*);
  const size_t tree_node = sizeof(std::pair<std::pair<uint64_t, uint64_t>,
                                            uint64_t>) +
                           3 * sizeof(void*);
  return entries_.size() * map_node + by_update_time_.size() * tree_node;
}

}  // namespace stage::cache
