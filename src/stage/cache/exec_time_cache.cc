#include "stage/cache/exec_time_cache.h"

#include <cmath>
#include <utility>

#include "stage/common/macros.h"
#include "stage/common/serialize.h"

namespace stage::cache {

ExecTimeCache::ExecTimeCache(const ExecTimeCacheConfig& config)
    : config_(config) {
  STAGE_CHECK(config.capacity > 0);
  STAGE_CHECK(config.alpha >= 0.0 && config.alpha <= 1.0);
}

std::optional<double> ExecTimeCache::Predict(uint64_t key) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  const Entry& entry = it->second;
  switch (config_.prediction_mode) {
    case CachePredictionMode::kMean:
      return entry.stats.mean();
    case CachePredictionMode::kMedian:
      return entry.median.Value();
    case CachePredictionMode::kLast:
      return entry.last_exec_time;
    case CachePredictionMode::kBlend:
      break;
  }
  // mu * alpha + t_k * (1 - alpha): the running mean captures robustness to
  // load variance, the last observation captures data freshness (§4.2).
  return entry.stats.mean() * config_.alpha +
         entry.last_exec_time * (1.0 - config_.alpha);
}

bool ExecTimeCache::Contains(uint64_t key) const {
  return entries_.find(key) != entries_.end();
}

const ExecTimeCache::Entry* ExecTimeCache::Lookup(uint64_t key) const {
  const auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : &it->second;
}

void ExecTimeCache::Observe(uint64_t key, double exec_time, uint64_t tick) {
  STAGE_CHECK(exec_time >= 0.0);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    by_update_time_.erase({it->second.last_update_tick, key});
  } else {
    if (entries_.size() >= config_.capacity) {
      // Evict the entry whose most recent observation is oldest.
      const auto victim = by_update_time_.begin();
      entries_.erase(victim->second);
      by_update_time_.erase(victim);
      evictions_.fetch_add(1, std::memory_order_relaxed);
    }
    it = entries_.emplace(key, Entry{}).first;
  }
  Entry& entry = it->second;
  entry.stats.Add(exec_time);
  entry.median.Add(exec_time);
  entry.last_exec_time = exec_time;
  entry.last_update_tick = tick;
  by_update_time_.emplace(std::make_pair(tick, key), key);
}

namespace {
constexpr uint32_t kCacheMagic = 0x53434348;  // "SCCH".
constexpr uint32_t kCacheVersion = 1;
}  // namespace

void ExecTimeCache::Save(std::ostream& out) const {
  WriteHeader(out, kCacheMagic, kCacheVersion);
  WritePod<uint64_t>(out, entries_.size());
  // Walk the eviction index, not the hash map: the on-disk order is then
  // deterministic (ascending last-update tick) regardless of hash-map
  // layout, so identical cache states produce identical snapshot bytes.
  for (const auto& [tick_key, key] : by_update_time_) {
    const auto it = entries_.find(key);
    STAGE_CHECK(it != entries_.end());
    const Entry& entry = it->second;
    WritePod(out, key);
    entry.stats.Save(out);
    entry.median.Save(out);
    WritePod(out, entry.last_exec_time);
    WritePod(out, entry.last_update_tick);
  }
}

bool ExecTimeCache::Load(std::istream& in) {
  if (!ReadHeader(in, kCacheMagic, kCacheVersion)) return false;
  uint64_t count = 0;
  if (!ReadPod(in, &count)) return false;
  if (count > config_.capacity) return false;  // Config mismatch.
  // Each entry needs at least key + last_exec_time + tick on the wire;
  // bound the loop by the remaining stream so a corrupt count fails fast.
  const std::optional<uint64_t> remaining = RemainingBytes(in);
  if (remaining && count > *remaining / (3 * sizeof(uint64_t))) return false;
  std::unordered_map<uint64_t, Entry> entries;
  std::map<std::pair<uint64_t, uint64_t>, uint64_t> by_update_time;
  entries.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t key = 0;
    Entry entry;
    if (!ReadPod(in, &key) || !entry.stats.Load(in) ||
        !entry.median.Load(in) || !ReadPod(in, &entry.last_exec_time) ||
        !ReadPod(in, &entry.last_update_tick)) {
      return false;
    }
    if (!std::isfinite(entry.last_exec_time) || entry.last_exec_time < 0.0) {
      return false;
    }
    if (!entries.emplace(key, entry).second) return false;  // Duplicate key.
    by_update_time.emplace(std::make_pair(entry.last_update_tick, key), key);
  }
  entries_ = std::move(entries);
  by_update_time_ = std::move(by_update_time);
  // Telemetry (hits/misses/evictions) intentionally restarts at zero: the
  // counters describe a process lifetime, not the cached state.
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
  return true;
}

size_t ExecTimeCache::MemoryBytes() const {
  // Hash-map node: key + Entry + bucket overhead; tree node: key pair +
  // value + red-black overhead. Approximate with struct sizes + 2 pointers.
  const size_t map_node =
      sizeof(uint64_t) + sizeof(Entry) + 2 * sizeof(void*);
  const size_t tree_node = sizeof(std::pair<std::pair<uint64_t, uint64_t>,
                                            uint64_t>) +
                           3 * sizeof(void*);
  return entries_.size() * map_node + by_update_time_.size() * tree_node;
}

}  // namespace stage::cache
