#ifndef STAGE_FLEET_WORKLOAD_H_
#define STAGE_FLEET_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "stage/fleet/ground_truth.h"
#include "stage/fleet/instance.h"
#include "stage/plan/generator.h"

namespace stage::fleet {

// One logged query execution: everything the paper's replay evaluation has
// access to. `exec_seconds` is the time the query actually took when the
// customer ran it; the workload-manager simulation replays these (§5.2).
struct QueryEvent {
  enum class Kind : uint8_t {
    kRepeat = 0,     // Exact re-execution of a template (same SQL + params).
    kParamVariant,   // Same template, different literal values.
    kAdHoc,          // Fresh one-off query.
  };

  int64_t arrival_ms = 0;  // Milliseconds since trace start.
  plan::Plan plan;
  double exec_seconds = 0.0;
  // Number of other queries running when this one executed; part of the
  // global model's system feature vector.
  int concurrent_queries = 0;
  uint64_t template_id = 0;  // 0 for ad-hoc queries.
  Kind kind = Kind::kAdHoc;
};

// Shape of one instance's query stream.
struct WorkloadConfig {
  int num_queries = 3000;
  int num_templates = 250;
  // Fraction of queries that exactly repeat a template (dashboards and
  // reports; Fig. 1a shows a fleet median around 60%).
  double repeat_fraction = 0.6;
  // Fraction that are parameter variants of a template.
  double variant_fraction = 0.2;
  // Zipf exponent for template popularity.
  double zipf_s = 1.1;
  // Templates are generated in clusters around structural archetypes
  // (dashboards differing in one predicate): every group of this many
  // templates shares an archetype, giving near-identical flattened
  // vectors with genuinely different runtime behavior.
  int templates_per_archetype = 6;
  int days = 14;
  double param_jitter_sigma = 0.5;
};

// Generates a query trace for one instance: a pool of recurring templates
// with Zipfian popularity plus ad-hoc queries, arrivals spread over
// `days` with a diurnal pattern, and execution times sampled from the
// hidden ground-truth model under per-query load and data drift.
class WorkloadGenerator {
 public:
  WorkloadGenerator(const InstanceConfig& instance,
                    const plan::GeneratorConfig& generator_config,
                    const WorkloadConfig& workload_config, uint64_t seed);

  // Generates the full trace, sorted by arrival time.
  std::vector<QueryEvent> GenerateTrace();

  const plan::PlanGenerator& plan_generator() const { return generator_; }

 private:
  const InstanceConfig& instance_;
  WorkloadConfig config_;
  plan::PlanGenerator generator_;
  GroundTruthModel ground_truth_;
  Rng rng_;
};

}  // namespace stage::fleet

#endif  // STAGE_FLEET_WORKLOAD_H_
