#include "stage/fleet/ground_truth.h"

#include <algorithm>
#include <cmath>

#include "stage/common/macros.h"

namespace stage::fleet {

namespace {

using plan::OperatorType;

// Fleet-wide per-row work coefficients (abstract work units per row). These
// are the transferable "physics" of the simulated engine.
constexpr double kScanLocalPerTableRow = 3.0e-7;
constexpr double kScanS3PerTableRow = 1.5e-6;
constexpr double kScanPerOutputRow = 1.0e-6;
constexpr double kHashPerRow = 1.75e-6;
constexpr double kJoinPerRow = 1.5e-6;
constexpr double kDistJoinFactor = 1.4;
constexpr double kNetworkPerRow = 1.25e-6;
constexpr double kBroadcastPerRow = 3.0e-6;
constexpr double kReturnPerRow = 6.0e-6;
constexpr double kAggPerRow = 1.6e-6;
constexpr double kSortPerRowLog = 1.25e-7;
constexpr double kWindowPerRow = 2.75e-6;
constexpr double kDmlPerRow = 1.0e-5;
constexpr double kMaterializePerRow = 2.25e-6;
constexpr double kDefaultPerRow = 5.0e-7;

// Fixed per-query overhead (parse/compile/leader work), seconds.
constexpr double kQueryOverheadSeconds = 0.015;
// Concurrency inflation per concurrently running query.
constexpr double kLoadFactorPerQuery = 0.12;
// Cluster scaling exponent: doubling nodes does not halve latency.
constexpr double kNodeScalingExponent = 0.75;
// Memory-spill inflation when the largest hash build outgrows its share of
// cluster memory.
constexpr double kSpillFactor = 2.2;

double SumChildActualRows(const plan::Plan& plan, int32_t index) {
  double total = 0.0;
  for (int32_t child : plan.node(index).children) {
    total += plan.node(child).actual_cardinality;
  }
  return total;
}

}  // namespace

double GroundTruthModel::NodeWork(const plan::Plan& plan, int32_t index,
                                  double actual_row_scale) const {
  const plan::PlanNode& node = plan.node(index);
  const double out = std::max(0.0, node.actual_cardinality);
  const double in = SumChildActualRows(plan, index);
  // Wider tuples cost more to move and materialize.
  const double width_factor = 1.0 + node.tuple_width / 400.0;

  switch (node.op) {
    case OperatorType::kSeqScanLocal:
    case OperatorType::kIndexScan:
      return (node.table_rows * actual_row_scale * kScanLocalPerTableRow +
              out * kScanPerOutputRow) *
             width_factor;
    case OperatorType::kSeqScanS3: {
      // External-format parsing costs differ sharply by format. The
      // optimizer's cost estimate does NOT model this (so the 33-dim
      // vector cannot see it), but the node-level format one-hot does —
      // one of the signals only the global model can learn.
      double format_factor = 1.0;
      switch (node.s3_format) {
        case plan::S3Format::kParquet: format_factor = 1.0; break;
        case plan::S3Format::kOpenCsv: format_factor = 2.5; break;
        case plan::S3Format::kText: format_factor = 4.0; break;
        default: break;
      }
      return (node.table_rows * actual_row_scale * kScanS3PerTableRow *
                  format_factor +
              out * kScanPerOutputRow) *
             width_factor;
    }
    case OperatorType::kHash:
      return in * kHashPerRow * width_factor;
    case OperatorType::kHashJoinLocal:
      return in * kJoinPerRow * width_factor;
    case OperatorType::kHashJoinDist:
      return in * kJoinPerRow * kDistJoinFactor * width_factor;
    case OperatorType::kMergeJoin:
      return in * kJoinPerRow * 0.8 * width_factor;
    case OperatorType::kNestedLoopJoin:
      return in * kJoinPerRow * 4.0 * width_factor;
    case OperatorType::kNetworkDistribute:
      return in * kNetworkPerRow * width_factor;
    case OperatorType::kNetworkBroadcast:
      return in * kBroadcastPerRow * width_factor;
    case OperatorType::kNetworkReturn:
      return out * kReturnPerRow * width_factor;
    case OperatorType::kAggregate:
    case OperatorType::kHashAggregate:
    case OperatorType::kGroupAggregate:
      return in * kAggPerRow * width_factor;
    case OperatorType::kSort:
    case OperatorType::kTopSort:
      return in * std::log2(in + 2.0) * kSortPerRowLog * width_factor;
    case OperatorType::kWindow:
      return in * kWindowPerRow * width_factor;
    case OperatorType::kMaterialize:
      return in * kMaterializePerRow * width_factor;
    case OperatorType::kInsert:
    case OperatorType::kDelete:
    case OperatorType::kUpdate:
    case OperatorType::kCopy:
      return in * kDmlPerRow * width_factor;
    default:
      return (in + out) * kDefaultPerRow * width_factor;
  }
}

double GroundTruthModel::ExpectedExecSeconds(const plan::Plan& plan,
                                             const InstanceConfig& instance,
                                             int concurrent_queries,
                                             double actual_row_scale) const {
  STAGE_CHECK(!plan.empty());
  STAGE_CHECK(concurrent_queries >= 0);

  double work = 0.0;
  double largest_build_bytes = 0.0;
  for (int32_t i = 0; i < plan.node_count(); ++i) {
    work += NodeWork(plan, i, actual_row_scale);
    const plan::PlanNode& node = plan.node(i);
    if (node.op == OperatorType::kHash) {
      largest_build_bytes =
          std::max(largest_build_bytes,
                   node.actual_cardinality * std::max(node.tuple_width, 8.0));
    }
  }

  const double throughput =
      NodeTypeSpeed(instance.node_type) *
      std::pow(static_cast<double>(instance.num_nodes),
               kNodeScalingExponent) *
      instance.latent_speed_factor;
  STAGE_CHECK(throughput > 0.0);

  double seconds = kQueryOverheadSeconds + work / throughput;
  seconds *= 1.0 + kLoadFactorPerQuery * concurrent_queries;

  // Hash builds that outgrow a slice's memory share spill to disk; the
  // penalty grows smoothly with the overflow ratio. The trigger depends on
  // the per-node build size and the cluster memory — node-level and
  // system-level information the flattened vector blurs away.
  const double memory_budget_bytes =
      instance.memory_gb * 1e9 * 0.25;  // Working-memory fraction.
  if (largest_build_bytes > memory_budget_bytes) {
    const double overflow = largest_build_bytes / memory_budget_bytes;
    seconds *= 1.0 + (kSpillFactor - 1.0) * std::min(overflow, 3.0) / 3.0 +
               (kSpillFactor - 1.0);
  }
  return seconds;
}

double GroundTruthModel::SampleExecSeconds(const plan::Plan& plan,
                                           const InstanceConfig& instance,
                                           int concurrent_queries,
                                           double actual_row_scale,
                                           Rng& rng) const {
  double seconds = ExpectedExecSeconds(plan, instance, concurrent_queries,
                                       actual_row_scale);
  seconds *= rng.NextLogNormal(0.0, instance.noise_sigma);
  if (rng.NextBernoulli(instance.spike_probability)) {
    // Transient slowdowns: cold storage, vacuum, commit queue, ...
    seconds *= rng.NextUniform(2.0, 6.0);
  }
  return seconds;
}

}  // namespace stage::fleet
