#ifndef STAGE_FLEET_INSTANCE_H_
#define STAGE_FLEET_INSTANCE_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "stage/plan/generator.h"

namespace stage::fleet {

// Redshift-like node types with relative per-node throughput.
enum class NodeType : uint8_t {
  kDc2Large = 0,
  kDc2XLarge,
  kRa3XlPlus,
  kRa3_4XLarge,
  kRa3_16XLarge,
  kServerless,
  kNumNodeTypes,
};

std::string_view NodeTypeName(NodeType type);

// Relative compute throughput of one node of this type (dc2.large = 1).
double NodeTypeSpeed(NodeType type);

// Memory per node in GB.
double NodeTypeMemoryGb(NodeType type);

// One customer's cluster. The observable part (type, node count, memory)
// feeds the global model's system feature vector (§4.4); the hidden part
// parameterizes the ground-truth latency model and is never exposed to any
// predictor — it models the "latent information hidden in each database
// instance" the paper blames for the global model's regressions (§5.4).
struct InstanceConfig {
  int32_t instance_id = 0;
  NodeType node_type = NodeType::kRa3_4XLarge;
  int num_nodes = 2;
  double memory_gb = 64.0;  // Total cluster memory.
  std::vector<plan::TableDef> schema;

  // ---- Hidden ground-truth parameters (predictors must not read) ----
  // Unobservable speed multiplier (tuning, data layout, skew, ...).
  double latent_speed_factor = 1.0;
  // Log-space std-dev of run-to-run execution noise.
  double noise_sigma = 0.2;
  // Probability a query hits a transient slowdown (cold cache, vacuum, ...).
  double spike_probability = 0.02;
  // Mean number of concurrently running queries (drives load inflation).
  double average_load = 2.0;
  // Daily relative growth of table data with stale statistics.
  double daily_data_growth = 0.0;
};

}  // namespace stage::fleet

#endif  // STAGE_FLEET_INSTANCE_H_
