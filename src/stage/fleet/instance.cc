#include "stage/fleet/instance.h"

#include "stage/common/macros.h"

namespace stage::fleet {

std::string_view NodeTypeName(NodeType type) {
  switch (type) {
    case NodeType::kDc2Large: return "dc2.large";
    case NodeType::kDc2XLarge: return "dc2.8xlarge";
    case NodeType::kRa3XlPlus: return "ra3.xlplus";
    case NodeType::kRa3_4XLarge: return "ra3.4xlarge";
    case NodeType::kRa3_16XLarge: return "ra3.16xlarge";
    case NodeType::kServerless: return "serverless";
    case NodeType::kNumNodeTypes: break;
  }
  STAGE_CHECK_MSG(false, "invalid NodeType");
  return "";
}

double NodeTypeSpeed(NodeType type) {
  switch (type) {
    case NodeType::kDc2Large: return 1.0;
    case NodeType::kDc2XLarge: return 6.0;
    case NodeType::kRa3XlPlus: return 2.5;
    case NodeType::kRa3_4XLarge: return 5.0;
    case NodeType::kRa3_16XLarge: return 16.0;
    case NodeType::kServerless: return 4.0;
    case NodeType::kNumNodeTypes: break;
  }
  STAGE_CHECK_MSG(false, "invalid NodeType");
  return 1.0;
}

double NodeTypeMemoryGb(NodeType type) {
  switch (type) {
    case NodeType::kDc2Large: return 15.0;
    case NodeType::kDc2XLarge: return 244.0;
    case NodeType::kRa3XlPlus: return 32.0;
    case NodeType::kRa3_4XLarge: return 96.0;
    case NodeType::kRa3_16XLarge: return 384.0;
    case NodeType::kServerless: return 128.0;
    case NodeType::kNumNodeTypes: break;
  }
  STAGE_CHECK_MSG(false, "invalid NodeType");
  return 0.0;
}

}  // namespace stage::fleet
