#ifndef STAGE_FLEET_GROUND_TRUTH_H_
#define STAGE_FLEET_GROUND_TRUTH_H_

#include "stage/common/rng.h"
#include "stage/fleet/instance.h"
#include "stage/plan/plan.h"

namespace stage::fleet {

// The hidden data-generating process for query execution times. Plays the
// role of the real Redshift executor: per-operator work terms over the
// ACTUAL cardinalities (not the optimizer's estimates), divided by cluster
// throughput, inflated by concurrency, memory spill, and run-to-run noise.
//
// The per-operator work coefficients are FLEET-WIDE constants — the
// transferable physics a global model can learn — while each instance
// contributes an unobservable latent speed factor and its own noise, the
// part no amount of cross-customer data can resolve (§5.4's "nearly
// identical plans with drastically different performance").
class GroundTruthModel {
 public:
  GroundTruthModel() = default;

  // Deterministic expected execution time (seconds) for the plan on this
  // instance, before noise. `concurrent_queries` is the number of other
  // queries running; `actual_row_scale` is the data-drift factor used when
  // the plan was instantiated.
  double ExpectedExecSeconds(const plan::Plan& plan,
                             const InstanceConfig& instance,
                             int concurrent_queries,
                             double actual_row_scale = 1.0) const;

  // Full sampled execution time: expected time with log-normal noise and
  // occasional spikes drawn from `rng`.
  double SampleExecSeconds(const plan::Plan& plan,
                           const InstanceConfig& instance,
                           int concurrent_queries, double actual_row_scale,
                           Rng& rng) const;

 private:
  // Work contributed by one operator node (abstract work units).
  double NodeWork(const plan::Plan& plan, int32_t index,
                  double actual_row_scale) const;
};

}  // namespace stage::fleet

#endif  // STAGE_FLEET_GROUND_TRUTH_H_
