#ifndef STAGE_FLEET_FLEET_H_
#define STAGE_FLEET_FLEET_H_

#include <cstdint>
#include <vector>

#include "stage/fleet/instance.h"
#include "stage/fleet/workload.h"

namespace stage::fleet {

// Knobs for generating a synthetic Redshift fleet: a population of
// customer instances with diverse hardware, schemas, workload mixes, and
// repetition rates (substituting for the paper's production query logs).
struct FleetConfig {
  int num_instances = 20;
  uint64_t seed = 42;
  WorkloadConfig workload;            // Base workload shape.
  plan::GeneratorConfig generator;    // Plan-shape knobs.

  // Per-instance fraction of daily-unique queries is drawn from a clipped
  // normal; Fig. 1a's fleet shows a wide spread with ~40% unique on
  // average.
  double unique_fraction_mean = 0.4;
  double unique_fraction_sigma = 0.22;
  double unique_fraction_min = 0.02;
  double unique_fraction_max = 0.95;

  // Schema diversity.
  int min_tables = 8;
  int max_tables = 60;
  double log_rows_mean = 14.5;   // ln(median table rows) ~ 2e6.
  double log_rows_sigma = 2.1;
  double max_table_rows = 1e10;
  double s3_table_fraction = 0.12;

  // Hidden-parameter diversity.
  double latent_speed_sigma = 0.7;
  double data_growth_probability = 0.3;
  double max_daily_growth = 0.03;
};

// One generated instance with its full query trace.
struct InstanceTrace {
  InstanceConfig config;
  WorkloadConfig workload;
  std::vector<QueryEvent> trace;
};

// Generates the synthetic fleet.
class FleetGenerator {
 public:
  explicit FleetGenerator(const FleetConfig& config);

  // A random instance (hardware + schema + hidden dynamics). Deterministic
  // in (config.seed, instance_id).
  InstanceConfig MakeInstance(int32_t instance_id);

  // An instance plus its generated query trace.
  InstanceTrace MakeInstanceTrace(int32_t instance_id);

  // num_instances instances with ids [0, n).
  std::vector<InstanceTrace> GenerateFleet();

  const FleetConfig& config() const { return config_; }

 private:
  FleetConfig config_;
};

}  // namespace stage::fleet

#endif  // STAGE_FLEET_FLEET_H_
