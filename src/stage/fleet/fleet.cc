#include "stage/fleet/fleet.h"

#include <algorithm>
#include <cmath>

#include "stage/common/macros.h"
#include "stage/common/rng.h"

namespace stage::fleet {

FleetGenerator::FleetGenerator(const FleetConfig& config) : config_(config) {
  STAGE_CHECK(config.num_instances > 0);
  STAGE_CHECK(config.min_tables >= 1 &&
              config.max_tables >= config.min_tables);
}

InstanceConfig FleetGenerator::MakeInstance(int32_t instance_id) {
  // Derive a per-instance RNG so instances are independent of each other
  // and stable under changes to num_instances.
  Rng rng(config_.seed * 0x9e3779b97f4a7c15ULL +
          static_cast<uint64_t>(instance_id) + 1);

  InstanceConfig instance;
  instance.instance_id = instance_id;
  instance.node_type = static_cast<NodeType>(
      rng.NextBelow(static_cast<uint64_t>(NodeType::kNumNodeTypes)));
  // Cluster sizes skew small: 2-4 nodes are common, 32 is rare.
  const int size_class = static_cast<int>(rng.NextWeighted(
      {0.35, 0.3, 0.2, 0.1, 0.05}));
  constexpr int kSizes[] = {2, 4, 8, 16, 32};
  instance.num_nodes = kSizes[size_class];
  instance.memory_gb =
      NodeTypeMemoryGb(instance.node_type) * instance.num_nodes;

  // Schema: bigger customers tend to hold bigger tables (per-instance data
  // scale shifts the whole size distribution).
  const int num_tables = config_.min_tables +
                         static_cast<int>(rng.NextBelow(static_cast<uint64_t>(
                             config_.max_tables - config_.min_tables + 1)));
  const double data_scale = rng.NextGaussian(0.0, 1.0);
  instance.schema.reserve(num_tables);
  for (int t = 0; t < num_tables; ++t) {
    plan::TableDef table;
    table.id = t;
    table.rows = std::clamp(
        std::exp(rng.NextGaussian(config_.log_rows_mean + data_scale,
                                  config_.log_rows_sigma)),
        1e3, config_.max_table_rows);
    table.width = std::clamp(std::exp(rng.NextGaussian(std::log(80.0), 0.7)),
                             16.0, 1000.0);
    if (rng.NextBernoulli(config_.s3_table_fraction)) {
      constexpr plan::S3Format kExternal[] = {plan::S3Format::kParquet,
                                              plan::S3Format::kOpenCsv,
                                              plan::S3Format::kText};
      table.format = kExternal[rng.NextBelow(3)];
    } else {
      table.format = plan::S3Format::kLocal;
    }
    instance.schema.push_back(table);
  }

  instance.latent_speed_factor =
      rng.NextLogNormal(0.0, config_.latent_speed_sigma);
  instance.noise_sigma = rng.NextUniform(0.12, 0.35);
  instance.spike_probability = rng.NextUniform(0.005, 0.04);
  instance.average_load = rng.NextUniform(0.5, 6.0);
  instance.daily_data_growth =
      rng.NextBernoulli(config_.data_growth_probability)
          ? rng.NextUniform(0.002, config_.max_daily_growth)
          : 0.0;
  return instance;
}

InstanceTrace FleetGenerator::MakeInstanceTrace(int32_t instance_id) {
  InstanceTrace out;
  out.config = MakeInstance(instance_id);

  Rng rng(config_.seed * 0x2545f4914f6cdd1dULL +
          static_cast<uint64_t>(instance_id) + 17);
  out.workload = config_.workload;
  const double unique_fraction =
      std::clamp(rng.NextGaussian(config_.unique_fraction_mean,
                                  config_.unique_fraction_sigma),
                 config_.unique_fraction_min, config_.unique_fraction_max);
  out.workload.repeat_fraction = 1.0 - unique_fraction;
  // Half of the unique queries are parameter variants of known templates,
  // half are genuinely ad-hoc.
  out.workload.variant_fraction = unique_fraction * 0.5;

  WorkloadGenerator generator(out.config, config_.generator, out.workload,
                              rng.NextUint64());
  out.trace = generator.GenerateTrace();
  return out;
}

std::vector<InstanceTrace> FleetGenerator::GenerateFleet() {
  std::vector<InstanceTrace> fleet;
  fleet.reserve(config_.num_instances);
  for (int32_t id = 0; id < config_.num_instances; ++id) {
    fleet.push_back(MakeInstanceTrace(id));
  }
  return fleet;
}

}  // namespace stage::fleet
