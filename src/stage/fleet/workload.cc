#include "stage/fleet/workload.h"

#include <algorithm>
#include <cmath>

#include "stage/common/macros.h"

namespace stage::fleet {

WorkloadGenerator::WorkloadGenerator(
    const InstanceConfig& instance,
    const plan::GeneratorConfig& generator_config,
    const WorkloadConfig& workload_config, uint64_t seed)
    : instance_(instance),
      config_(workload_config),
      generator_(instance.schema, generator_config),
      rng_(seed) {
  STAGE_CHECK(config_.num_queries > 0);
  STAGE_CHECK(config_.num_templates > 0);
  STAGE_CHECK(config_.days > 0);
  STAGE_CHECK(config_.repeat_fraction >= 0.0 &&
              config_.variant_fraction >= 0.0 &&
              config_.repeat_fraction + config_.variant_fraction <= 1.0);
}

std::vector<QueryEvent> WorkloadGenerator::GenerateTrace() {
  // Template pool with Zipfian popularity: template 1 is the hot dashboard.
  // Templates come in archetype clusters (same structure, different
  // predicates and different hidden estimation errors), so their 33-dim
  // vectors collide while their exec-times do not.
  std::vector<plan::PlanSpec> templates;
  std::vector<double> popularity;
  templates.reserve(config_.num_templates);
  const int per_archetype = std::max(1, config_.templates_per_archetype);
  plan::PlanSpec archetype;
  for (int t = 0; t < config_.num_templates; ++t) {
    if (t % per_archetype == 0) archetype = generator_.RandomSpec(rng_);
    templates.push_back(t % per_archetype == 0
                            ? archetype
                            : generator_.MutateTemplate(archetype, rng_));
    popularity.push_back(1.0 /
                         std::pow(static_cast<double>(t + 1), config_.zipf_s));
  }

  const int64_t span_ms =
      static_cast<int64_t>(config_.days) * 24 * 3600 * 1000;
  std::vector<QueryEvent> trace;
  trace.reserve(config_.num_queries);

  for (int q = 0; q < config_.num_queries; ++q) {
    QueryEvent event;

    // Arrival: uniform day, diurnal time-of-day (peak business hours).
    const int64_t day = rng_.NextBelow(config_.days);
    double hour;
    if (rng_.NextBernoulli(0.75)) {
      hour = std::clamp(rng_.NextGaussian(13.0, 3.0), 0.0, 23.999);
    } else {
      hour = rng_.NextUniform(0.0, 24.0);
    }
    event.arrival_ms =
        day * 24 * 3600 * 1000 + static_cast<int64_t>(hour * 3600.0 * 1000.0);
    STAGE_DCHECK(event.arrival_ms < span_ms);

    // Data drift: stale stats vs. grown tables.
    const double row_scale =
        std::pow(1.0 + instance_.daily_data_growth, static_cast<double>(day));

    // Query kind: repeat / variant / ad-hoc.
    const double roll = rng_.NextDouble();
    if (roll < config_.repeat_fraction) {
      const size_t t = rng_.NextWeighted(popularity);
      event.kind = QueryEvent::Kind::kRepeat;
      event.template_id = t + 1;
      event.plan = generator_.Instantiate(templates[t], row_scale);
    } else if (roll < config_.repeat_fraction + config_.variant_fraction) {
      const size_t t = rng_.NextWeighted(popularity);
      event.kind = QueryEvent::Kind::kParamVariant;
      event.template_id = t + 1;
      const plan::PlanSpec variant =
          generator_.JitterParams(templates[t], rng_, config_.param_jitter_sigma);
      event.plan = generator_.Instantiate(variant, row_scale);
    } else {
      event.kind = QueryEvent::Kind::kAdHoc;
      event.plan = generator_.Instantiate(generator_.RandomSpec(rng_),
                                          row_scale);
    }

    event.concurrent_queries = rng_.NextPoisson(instance_.average_load);
    event.exec_seconds = ground_truth_.SampleExecSeconds(
        event.plan, instance_, event.concurrent_queries, row_scale, rng_);
    trace.push_back(std::move(event));
  }

  std::stable_sort(trace.begin(), trace.end(),
                   [](const QueryEvent& a, const QueryEvent& b) {
                     return a.arrival_ms < b.arrival_ms;
                   });
  return trace;
}

}  // namespace stage::fleet
