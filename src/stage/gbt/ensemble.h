#ifndef STAGE_GBT_ENSEMBLE_H_
#define STAGE_GBT_ENSEMBLE_H_

#include <cstdint>
#include <istream>
#include <ostream>
#include <vector>

#include "stage/gbt/dataset.h"
#include "stage/gbt/gbdt.h"

namespace stage::gbt {

// Configuration of the Bayesian ensemble of GBT models ([31], §4.3).
struct EnsembleConfig {
  int num_members = 10;  // K in the paper.
  GbdtConfig member;     // Per-member hyper-parameters.
  bool parallel_train = true;
};

// A Bayesian ensemble of K independently trained Gaussian-NLL GBT models.
// Each member k outputs (mu_k, sigma_k^2); the ensemble combines them per
// the paper's Eq. 1 (mean prediction) and Eq. 2 (total uncertainty =
// model uncertainty + data uncertainty).
class BayesianGbtEnsemble {
 public:
  struct Prediction {
    double mean = 0.0;              // Eq. 1: average of member means.
    double model_variance = 0.0;    // Variance of member means.
    double data_variance = 0.0;     // Average of member sigma_k^2.
    double total_variance() const { return model_variance + data_variance; }
  };

  BayesianGbtEnsemble() = default;

  // Trains K members with distinct seeds (distinct bagging and distinct
  // validation splits provide the ensemble diversity).
  static BayesianGbtEnsemble Train(const Dataset& data,
                                   const EnsembleConfig& config);

  Prediction Predict(const float* row) const;

  int num_members() const { return static_cast<int>(members_.size()); }
  const std::vector<GbdtModel>& members() const { return members_; }
  size_t MemoryBytes() const;

  // Mean split-frequency feature importance over the members.
  std::vector<double> FeatureImportance() const;

  // Binary checkpointing of all members.
  void Save(std::ostream& out) const;
  bool Load(std::istream& in);

 private:
  std::vector<GbdtModel> members_;
};

}  // namespace stage::gbt

#endif  // STAGE_GBT_ENSEMBLE_H_
