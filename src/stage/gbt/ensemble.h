#ifndef STAGE_GBT_ENSEMBLE_H_
#define STAGE_GBT_ENSEMBLE_H_

#include <cstdint>
#include <istream>
#include <ostream>
#include <span>
#include <vector>

#include "stage/common/thread_pool.h"
#include "stage/gbt/dataset.h"
#include "stage/gbt/gbdt.h"

namespace stage::gbt {

// Configuration of the Bayesian ensemble of GBT models ([31], §4.3).
struct EnsembleConfig {
  int num_members = 10;  // K in the paper.
  GbdtConfig member;     // Per-member hyper-parameters.
  bool parallel_train = true;
};

// A Bayesian ensemble of K independently trained Gaussian-NLL GBT models.
// Each member k outputs (mu_k, sigma_k^2); the ensemble combines them per
// the paper's Eq. 1 (mean prediction) and Eq. 2 (total uncertainty =
// model uncertainty + data uncertainty).
class BayesianGbtEnsemble {
 public:
  struct Prediction {
    double mean = 0.0;              // Eq. 1: average of member means.
    double model_variance = 0.0;    // Variance of member means.
    double data_variance = 0.0;     // Average of member sigma_k^2.
    double total_variance() const { return model_variance + data_variance; }
  };

  BayesianGbtEnsemble() = default;

  // Trains K members with distinct seeds (distinct bagging and distinct
  // validation splits provide the ensemble diversity). When parallel_train
  // is set, members train on `pool` (the shared process pool when null) —
  // a bounded worker set instead of one raw thread per member. Each member
  // is seeded independently and written to its own slot, so the trained
  // bytes are identical for every pool width, including serial.
  static BayesianGbtEnsemble Train(const Dataset& data,
                                   const EnsembleConfig& config,
                                   ThreadPool* pool = nullptr);

  // Single-row ensemble prediction. Allocation-free: members predict into
  // stack storage via the compiled FlatForest path.
  Prediction Predict(const float* row) const;

  // Batched ensemble prediction over row-major rows (`row_stride` floats
  // apart). Members run their blocked FlatForest batch kernel over the
  // whole matrix (on `pool` when non-null), then the per-row moments are
  // combined exactly like Predict — results are bit-for-bit identical to
  // calling Predict per row.
  void PredictBatch(const float* rows, size_t num_rows, size_t row_stride,
                    std::span<Prediction> out, ThreadPool* pool = nullptr) const;

  int num_members() const { return static_cast<int>(members_.size()); }
  const std::vector<GbdtModel>& members() const { return members_; }
  size_t MemoryBytes() const;

  // Mean split-frequency feature importance over the members.
  std::vector<double> FeatureImportance() const;

  // Binary checkpointing of all members.
  void Save(std::ostream& out) const;
  bool Load(std::istream& in);

 private:
  std::vector<GbdtModel> members_;
};

}  // namespace stage::gbt

#endif  // STAGE_GBT_ENSEMBLE_H_
