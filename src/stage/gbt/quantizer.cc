#include "stage/gbt/quantizer.h"

#include <algorithm>

#include "stage/common/macros.h"

namespace stage::gbt {

FeatureQuantizer::FeatureQuantizer(const Dataset& data, int max_bins) {
  STAGE_CHECK(max_bins >= 2 && max_bins <= 256);
  STAGE_CHECK(!data.empty());
  const size_t n = data.num_rows();
  boundaries_.resize(data.num_features());

  std::vector<float> column(n);
  for (int f = 0; f < data.num_features(); ++f) {
    for (size_t r = 0; r < n; ++r) column[r] = data.feature(r, f);
    std::sort(column.begin(), column.end());

    // Distinct values in sorted order.
    std::vector<float> distinct;
    distinct.reserve(std::min<size_t>(n, 1024));
    for (size_t r = 0; r < n; ++r) {
      if (distinct.empty() || column[r] != distinct.back()) {
        distinct.push_back(column[r]);
      }
    }

    std::vector<float>& cuts = boundaries_[f];
    if (static_cast<int>(distinct.size()) <= max_bins) {
      // One bin per distinct value; cut at each value (except the last).
      for (size_t i = 0; i + 1 < distinct.size(); ++i) {
        cuts.push_back(distinct[i]);
      }
    } else {
      // Quantile cuts over the raw (duplicated) column so that populous
      // values get their own bins.
      cuts.reserve(max_bins - 1);
      for (int b = 1; b < max_bins; ++b) {
        const size_t index = n * static_cast<size_t>(b) / max_bins;
        const float cut = column[std::min(index, n - 1)];
        if (cuts.empty() || cut > cuts.back()) cuts.push_back(cut);
      }
      // A quantile cut at the global max would make the last bin empty.
      while (!cuts.empty() && cuts.back() >= distinct.back()) cuts.pop_back();
    }
  }
}

uint8_t FeatureQuantizer::BinOf(int feature, float value) const {
  const std::vector<float>& cuts = boundaries_[feature];
  // First bin b with value <= cuts[b]; otherwise the last bin.
  const auto it = std::lower_bound(cuts.begin(), cuts.end(), value);
  return static_cast<uint8_t>(it - cuts.begin());
}

float FeatureQuantizer::UpperBoundary(int feature, int bin) const {
  const std::vector<float>& cuts = boundaries_[feature];
  STAGE_CHECK(bin >= 0 && bin < static_cast<int>(cuts.size()));
  return cuts[bin];
}

std::vector<uint8_t> FeatureQuantizer::Transform(const Dataset& data) const {
  STAGE_CHECK(data.num_features() == num_features());
  const size_t n = data.num_rows();
  const int d = data.num_features();
  std::vector<uint8_t> binned(n * static_cast<size_t>(d));
  for (size_t r = 0; r < n; ++r) {
    for (int f = 0; f < d; ++f) {
      binned[r * d + f] = BinOf(f, data.feature(r, f));
    }
  }
  return binned;
}

}  // namespace stage::gbt
