#ifndef STAGE_GBT_QUANTIZER_H_
#define STAGE_GBT_QUANTIZER_H_

#include <cstdint>
#include <vector>

#include "stage/gbt/dataset.h"

namespace stage::gbt {

// Histogram feature quantizer: maps each float feature to a small bin index
// using per-feature quantile boundaries, as in LightGBM/XGBoost 'hist'.
// Split finding then scans at most max_bins buckets per feature instead of
// all distinct values.
class FeatureQuantizer {
 public:
  // Builds boundaries from the data. max_bins must be in [2, 256].
  FeatureQuantizer(const Dataset& data, int max_bins);

  int num_features() const { return static_cast<int>(boundaries_.size()); }

  // Number of bins actually used for a feature (<= max_bins).
  int NumBins(int feature) const {
    return static_cast<int>(boundaries_[feature].size()) + 1;
  }

  // Bin index of a raw value for a feature, in [0, NumBins(feature)).
  uint8_t BinOf(int feature, float value) const;

  // The raw-value threshold separating bin <= `bin` from bin+1 for use in
  // tree nodes (x <= threshold goes left). Requires bin < NumBins-1.
  float UpperBoundary(int feature, int bin) const;

  // Quantizes the whole dataset, row-major [num_rows x num_features].
  std::vector<uint8_t> Transform(const Dataset& data) const;

 private:
  // boundaries_[f] is an ascending list of cut values; value v falls in the
  // first bin b with v <= boundaries_[f][b], else the last bin.
  std::vector<std::vector<float>> boundaries_;
};

}  // namespace stage::gbt

#endif  // STAGE_GBT_QUANTIZER_H_
