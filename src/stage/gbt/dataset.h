#ifndef STAGE_GBT_DATASET_H_
#define STAGE_GBT_DATASET_H_

#include <cstddef>
#include <vector>

namespace stage::gbt {

// A dense row-major feature matrix with one regression label per row.
// This is the training-pool format the local model and the AutoWLM baseline
// consume (rows are 33-dim flattened plan vectors, labels are exec-times in
// the trainer's target space).
class Dataset {
 public:
  explicit Dataset(int num_features);

  int num_features() const { return num_features_; }
  size_t num_rows() const { return labels_.size(); }
  bool empty() const { return labels_.empty(); }

  // Appends one example. `row` must have exactly num_features() entries.
  void AddRow(const float* row, double label);
  void AddRow(const std::vector<float>& row, double label);

  float feature(size_t row, int col) const {
    return features_[row * num_features_ + col];
  }
  const float* row(size_t r) const { return &features_[r * num_features_]; }
  double label(size_t r) const { return labels_[r]; }
  const std::vector<double>& labels() const { return labels_; }

  void Reserve(size_t rows);

 private:
  int num_features_;
  std::vector<float> features_;
  std::vector<double> labels_;
};

}  // namespace stage::gbt

#endif  // STAGE_GBT_DATASET_H_
