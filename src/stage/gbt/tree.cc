#include "stage/gbt/tree.h"

#include "stage/common/macros.h"
#include "stage/common/serialize.h"

namespace stage::gbt {

RegressionTree RegressionTree::Constant(double value) {
  RegressionTree tree;
  tree.AddLeaf(value);
  return tree;
}

int32_t RegressionTree::AddLeaf(double value) {
  Node node;
  node.value = value;
  nodes_.push_back(node);
  return static_cast<int32_t>(nodes_.size() - 1);
}

std::pair<int32_t, int32_t> RegressionTree::SplitLeaf(int32_t node_index,
                                                      int32_t feature,
                                                      float threshold) {
  STAGE_CHECK(node_index >= 0 &&
              node_index < static_cast<int32_t>(nodes_.size()));
  STAGE_CHECK(nodes_[node_index].is_leaf());
  const int32_t left = AddLeaf(0.0);
  const int32_t right = AddLeaf(0.0);
  Node& node = nodes_[node_index];  // Re-fetch: AddLeaf may reallocate.
  node.feature = feature;
  node.threshold = threshold;
  node.left = left;
  node.right = right;
  return {left, right};
}

void RegressionTree::SetLeafValue(int32_t node, double value) {
  STAGE_CHECK(node >= 0 && node < static_cast<int32_t>(nodes_.size()));
  STAGE_CHECK(nodes_[node].is_leaf());
  nodes_[node].value = value;
}

double RegressionTree::Predict(const float* row) const {
  STAGE_DCHECK(!nodes_.empty());
  int32_t index = 0;
  while (!nodes_[index].is_leaf()) {
    const Node& node = nodes_[index];
    index = row[node.feature] <= node.threshold ? node.left : node.right;
  }
  return nodes_[index].value;
}

int RegressionTree::num_leaves() const {
  int leaves = 0;
  for (const Node& node : nodes_) leaves += node.is_leaf() ? 1 : 0;
  return leaves;
}

void RegressionTree::ScaleLeaves(double factor) {
  for (Node& node : nodes_) {
    if (node.is_leaf()) node.value *= factor;
  }
}

void RegressionTree::Save(std::ostream& out) const {
  WriteVector(out, nodes_);
}

bool RegressionTree::Load(std::istream& in) {
  if (!ReadVector(in, &nodes_)) return false;
  // Validate child indices so a corrupt file cannot cause out-of-bounds
  // traversal.
  for (const Node& node : nodes_) {
    if (node.is_leaf()) continue;
    if (node.left < 0 || node.right < 0 ||
        node.left >= static_cast<int32_t>(nodes_.size()) ||
        node.right >= static_cast<int32_t>(nodes_.size()) ||
        node.feature < 0) {
      return false;
    }
  }
  return !nodes_.empty();
}

}  // namespace stage::gbt
