#include "stage/gbt/loss.h"

#include <algorithm>
#include <cmath>

#include "stage/common/macros.h"
#include "stage/common/stats.h"

namespace stage::gbt {

namespace {

constexpr double kMinHessian = 1e-6;
// Clamp on s = log sigma^2 to keep exp() finite during training.
constexpr double kMinLogVar = -12.0;
constexpr double kMaxLogVar = 12.0;

class SquaredLoss final : public Loss {
 public:
  int num_outputs() const override { return 1; }

  std::vector<double> InitScores(
      const std::vector<double>& labels) const override {
    return {labels.empty() ? 0.0 : Mean(labels)};
  }

  void GradHess(const std::vector<double>& labels,
                const std::vector<double>& preds, int output,
                std::vector<double>* grad,
                std::vector<double>* hess) const override {
    STAGE_CHECK(output == 0);
    const size_t n = labels.size();
    grad->resize(n);
    hess->resize(n);
    for (size_t i = 0; i < n; ++i) {
      (*grad)[i] = preds[i] - labels[i];
      (*hess)[i] = 1.0;
    }
  }

  double Eval(const std::vector<double>& labels,
              const std::vector<double>& preds) const override {
    double total = 0.0;
    for (size_t i = 0; i < labels.size(); ++i) {
      const double diff = preds[i] - labels[i];
      total += 0.5 * diff * diff;
    }
    return labels.empty() ? 0.0 : total / static_cast<double>(labels.size());
  }
};

class AbsoluteLoss final : public Loss {
 public:
  int num_outputs() const override { return 1; }

  std::vector<double> InitScores(
      const std::vector<double>& labels) const override {
    if (labels.empty()) return {0.0};
    std::vector<double> sorted = labels;
    std::nth_element(sorted.begin(), sorted.begin() + sorted.size() / 2,
                     sorted.end());
    return {sorted[sorted.size() / 2]};  // Median minimizes |y - c|.
  }

  void GradHess(const std::vector<double>& labels,
                const std::vector<double>& preds, int output,
                std::vector<double>* grad,
                std::vector<double>* hess) const override {
    STAGE_CHECK(output == 0);
    const size_t n = labels.size();
    grad->resize(n);
    hess->resize(n);
    for (size_t i = 0; i < n; ++i) {
      (*grad)[i] = preds[i] > labels[i] ? 1.0 : -1.0;
      (*hess)[i] = 1.0;  // Unit Hessian: first-order (gradient) steps.
    }
  }

  double Eval(const std::vector<double>& labels,
              const std::vector<double>& preds) const override {
    double total = 0.0;
    for (size_t i = 0; i < labels.size(); ++i) {
      total += std::abs(preds[i] - labels[i]);
    }
    return labels.empty() ? 0.0 : total / static_cast<double>(labels.size());
  }
};

class QuantileLoss final : public Loss {
 public:
  explicit QuantileLoss(double quantile) : quantile_(quantile) {
    STAGE_CHECK(quantile > 0.0 && quantile < 1.0);
  }

  int num_outputs() const override { return 1; }

  std::vector<double> InitScores(
      const std::vector<double>& labels) const override {
    if (labels.empty()) return {0.0};
    std::vector<double> sorted = labels;
    std::sort(sorted.begin(), sorted.end());
    return {SortedQuantile(sorted, quantile_)};
  }

  void GradHess(const std::vector<double>& labels,
                const std::vector<double>& preds, int output,
                std::vector<double>* grad,
                std::vector<double>* hess) const override {
    STAGE_CHECK(output == 0);
    const size_t n = labels.size();
    grad->resize(n);
    hess->resize(n);
    for (size_t i = 0; i < n; ++i) {
      // d/dpred of pinball: q-1 when under-predicting, q when over.
      (*grad)[i] = preds[i] >= labels[i] ? quantile_ : quantile_ - 1.0;
      (*hess)[i] = 1.0;
    }
  }

  double Eval(const std::vector<double>& labels,
              const std::vector<double>& preds) const override {
    double total = 0.0;
    for (size_t i = 0; i < labels.size(); ++i) {
      const double diff = labels[i] - preds[i];
      total += diff >= 0.0 ? quantile_ * diff : (quantile_ - 1.0) * diff;
    }
    return labels.empty() ? 0.0 : total / static_cast<double>(labels.size());
  }

 private:
  double quantile_;
};

class GaussianNllLoss final : public Loss {
 public:
  int num_outputs() const override { return 2; }

  std::vector<double> InitScores(
      const std::vector<double>& labels) const override {
    if (labels.empty()) return {0.0, 0.0};
    Welford stats;
    for (double y : labels) stats.Add(y);
    const double var = std::max(stats.variance(), 1e-6);
    return {stats.mean(), std::clamp(std::log(var), kMinLogVar, kMaxLogVar)};
  }

  void GradHess(const std::vector<double>& labels,
                const std::vector<double>& preds, int output,
                std::vector<double>* grad,
                std::vector<double>* hess) const override {
    const size_t n = labels.size();
    grad->resize(n);
    hess->resize(n);
    for (size_t i = 0; i < n; ++i) {
      const double mu = preds[2 * i];
      const double s = std::clamp(preds[2 * i + 1], kMinLogVar, kMaxLogVar);
      const double inv_var = std::exp(-s);
      const double diff = labels[i] - mu;
      if (output == 0) {
        // d/dmu: -(y - mu) * exp(-s); d2/dmu2: exp(-s).
        (*grad)[i] = -diff * inv_var;
        (*hess)[i] = std::max(inv_var, kMinHessian);
      } else {
        // d/ds: 0.5 * (1 - (y - mu)^2 * exp(-s));
        // d2/ds2: 0.5 * (y - mu)^2 * exp(-s).
        const double scaled_sq = diff * diff * inv_var;
        (*grad)[i] = 0.5 * (1.0 - scaled_sq);
        (*hess)[i] = std::max(0.5 * scaled_sq, kMinHessian);
      }
    }
  }

  double Eval(const std::vector<double>& labels,
              const std::vector<double>& preds) const override {
    double total = 0.0;
    for (size_t i = 0; i < labels.size(); ++i) {
      const double mu = preds[2 * i];
      const double s = std::clamp(preds[2 * i + 1], kMinLogVar, kMaxLogVar);
      const double diff = labels[i] - mu;
      total += 0.5 * (s + diff * diff * std::exp(-s));
    }
    return labels.empty() ? 0.0 : total / static_cast<double>(labels.size());
  }
};

}  // namespace

std::unique_ptr<Loss> MakeSquaredLoss() {
  return std::make_unique<SquaredLoss>();
}

std::unique_ptr<Loss> MakeAbsoluteLoss() {
  return std::make_unique<AbsoluteLoss>();
}

std::unique_ptr<Loss> MakeQuantileLoss(double quantile) {
  return std::make_unique<QuantileLoss>(quantile);
}

std::unique_ptr<Loss> MakeGaussianNllLoss() {
  return std::make_unique<GaussianNllLoss>();
}

}  // namespace stage::gbt
