#include "stage/gbt/dataset.h"

#include "stage/common/macros.h"

namespace stage::gbt {

Dataset::Dataset(int num_features) : num_features_(num_features) {
  STAGE_CHECK(num_features > 0);
}

void Dataset::AddRow(const float* row, double label) {
  features_.insert(features_.end(), row, row + num_features_);
  labels_.push_back(label);
}

void Dataset::AddRow(const std::vector<float>& row, double label) {
  STAGE_CHECK(static_cast<int>(row.size()) == num_features_);
  AddRow(row.data(), label);
}

void Dataset::Reserve(size_t rows) {
  features_.reserve(rows * static_cast<size_t>(num_features_));
  labels_.reserve(rows);
}

}  // namespace stage::gbt
