#ifndef STAGE_GBT_GBDT_H_
#define STAGE_GBT_GBDT_H_

#include <cstdint>
#include <istream>
#include <ostream>
#include <span>
#include <vector>

#include "stage/common/thread_pool.h"
#include "stage/gbt/dataset.h"
#include "stage/gbt/flat_forest.h"
#include "stage/gbt/loss.h"
#include "stage/gbt/tree.h"

namespace stage::gbt {

// Hyper-parameters, defaulted to the paper's local-model settings (§5.1):
// 200 estimators, max depth 6, a random 20% validation split for early
// stopping.
struct GbdtConfig {
  int num_rounds = 200;
  int max_depth = 6;
  double learning_rate = 0.1;
  double lambda = 1.0;             // L2 regularization on leaf values.
  double min_child_hessian = 1.0;  // Min summed Hessian per child.
  int min_samples_leaf = 1;
  double subsample = 0.8;          // Row sampling per tree (bagging).
  double colsample = 1.0;          // Feature sampling per tree.
  int max_bins = 64;               // Histogram bins for split finding.
  double validation_fraction = 0.2;
  int early_stopping_rounds = 20;  // 0 disables early stopping.
  double max_leaf_delta = 10.0;    // Clip on the Newton leaf step.
  uint64_t seed = 0;
};

// A gradient-boosted decision tree model trained with per-leaf Newton steps
// (XGBoost-style second-order boosting) over histogram-quantized features.
// Supports multi-output losses: one tree per output per round.
//
// Two representations coexist: the node-vector trees (canonical — training
// builds them and Save/Load serializes them, so checkpoint bytes are
// independent of the inference layout) and a FlatForest compiled from them
// after Train/Load, which serves every Predict* call without heap
// allocation.
class GbdtModel {
 public:
  GbdtModel() = default;

  // Trains a model. An empty dataset yields a constant (base-score) model.
  static GbdtModel Train(const Dataset& data, const Loss& loss,
                         const GbdtConfig& config);

  // Predicts all outputs for one raw feature row. Thin wrapper over
  // PredictInto; hot paths should call PredictInto with reused storage.
  std::vector<double> Predict(const float* row) const;
  // Allocation-free predict into caller storage; out.size() must equal
  // num_outputs().
  void PredictInto(const float* row, std::span<double> out) const;
  // Convenience: output 0 only (single-output losses).
  double PredictScalar(const float* row) const;
  // Blocked batch predict over row-major rows (`row_stride` floats apart);
  // `out` is row-major [num_rows x num_outputs()]. See
  // FlatForest::PredictBatch.
  void PredictBatch(const float* rows, size_t num_rows, size_t row_stride,
                    std::span<double> out, ThreadPool* pool = nullptr) const;

  // Binary checkpointing; Load replaces the model and returns false on a
  // malformed stream.
  void Save(std::ostream& out) const;
  bool Load(std::istream& in);

  // Split-frequency feature importance ("weight" importance): the share
  // of internal splits that test each feature, normalized to sum to 1
  // (all-zero for a constant model). Useful for auditing what the local
  // model actually keys on.
  std::vector<double> FeatureImportance() const;
  // Out-parameter form: adds this model's raw split counts into `counts`
  // (size num_features()) and returns the total number of splits, letting
  // aggregating callers (ensembles) avoid per-member temporaries.
  double AddSplitCounts(std::span<double> counts) const;

  int num_outputs() const { return num_outputs_; }
  int num_features() const { return num_features_; }
  // Boosting rounds retained after early stopping.
  int rounds_used() const { return static_cast<int>(trees_.size()); }
  size_t MemoryBytes() const;

  // The canonical node-vector trees, trees()[round][output], and the
  // compiled inference form. Exposed for golden-equivalence tests and
  // benchmarks of the two layouts.
  const std::vector<std::vector<RegressionTree>>& trees() const {
    return trees_;
  }
  const std::vector<double>& base_scores() const { return base_scores_; }
  const FlatForest& flat() const { return flat_; }

 private:
  int num_features_ = 0;
  int num_outputs_ = 0;
  std::vector<double> base_scores_;
  // trees_[round][output].
  std::vector<std::vector<RegressionTree>> trees_;
  // Compiled from trees_ by Train/Load; never serialized.
  FlatForest flat_;
};

}  // namespace stage::gbt

#endif  // STAGE_GBT_GBDT_H_
