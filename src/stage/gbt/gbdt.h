#ifndef STAGE_GBT_GBDT_H_
#define STAGE_GBT_GBDT_H_

#include <cstdint>
#include <istream>
#include <ostream>
#include <vector>

#include "stage/gbt/dataset.h"
#include "stage/gbt/loss.h"
#include "stage/gbt/tree.h"

namespace stage::gbt {

// Hyper-parameters, defaulted to the paper's local-model settings (§5.1):
// 200 estimators, max depth 6, a random 20% validation split for early
// stopping.
struct GbdtConfig {
  int num_rounds = 200;
  int max_depth = 6;
  double learning_rate = 0.1;
  double lambda = 1.0;             // L2 regularization on leaf values.
  double min_child_hessian = 1.0;  // Min summed Hessian per child.
  int min_samples_leaf = 1;
  double subsample = 0.8;          // Row sampling per tree (bagging).
  double colsample = 1.0;          // Feature sampling per tree.
  int max_bins = 64;               // Histogram bins for split finding.
  double validation_fraction = 0.2;
  int early_stopping_rounds = 20;  // 0 disables early stopping.
  double max_leaf_delta = 10.0;    // Clip on the Newton leaf step.
  uint64_t seed = 0;
};

// A gradient-boosted decision tree model trained with per-leaf Newton steps
// (XGBoost-style second-order boosting) over histogram-quantized features.
// Supports multi-output losses: one tree per output per round.
class GbdtModel {
 public:
  GbdtModel() = default;

  // Trains a model. An empty dataset yields a constant (base-score) model.
  static GbdtModel Train(const Dataset& data, const Loss& loss,
                         const GbdtConfig& config);

  // Predicts all outputs for one raw feature row.
  std::vector<double> Predict(const float* row) const;
  // Convenience: output 0 only (single-output losses).
  double PredictScalar(const float* row) const;

  // Binary checkpointing; Load replaces the model and returns false on a
  // malformed stream.
  void Save(std::ostream& out) const;
  bool Load(std::istream& in);

  // Split-frequency feature importance ("weight" importance): the share
  // of internal splits that test each feature, normalized to sum to 1
  // (all-zero for a constant model). Useful for auditing what the local
  // model actually keys on.
  std::vector<double> FeatureImportance() const;

  int num_outputs() const { return num_outputs_; }
  int num_features() const { return num_features_; }
  // Boosting rounds retained after early stopping.
  int rounds_used() const { return static_cast<int>(trees_.size()); }
  size_t MemoryBytes() const;

 private:
  int num_features_ = 0;
  int num_outputs_ = 0;
  std::vector<double> base_scores_;
  // trees_[round][output].
  std::vector<std::vector<RegressionTree>> trees_;
};

}  // namespace stage::gbt

#endif  // STAGE_GBT_GBDT_H_
