#include "stage/gbt/gbdt.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "stage/common/macros.h"
#include "stage/common/rng.h"
#include "stage/common/serialize.h"
#include "stage/gbt/quantizer.h"

namespace stage::gbt {

namespace {

constexpr double kMinGain = 1e-12;

struct SplitCandidate {
  double gain = 0.0;
  int feature = -1;
  int bin = -1;  // Rows with binned value <= bin go left.
  bool valid() const { return feature >= 0; }
};

// One tree-fitting pass over a sampled row set. Rows are partitioned in
// place within `order` as nodes split.
class TreeFitter {
 public:
  TreeFitter(const Dataset& data, const FeatureQuantizer& quantizer,
             const std::vector<uint8_t>& binned, const GbdtConfig& config)
      : data_(data),
        quantizer_(quantizer),
        binned_(binned),
        config_(config),
        d_(data.num_features()) {}

  RegressionTree Fit(std::vector<size_t>& order,
                     const std::vector<double>& grad,
                     const std::vector<double>& hess,
                     const std::vector<int>& features) {
    RegressionTree tree;
    double g_total = 0.0;
    double h_total = 0.0;
    for (size_t row : order) {
      g_total += grad[row];
      h_total += hess[row];
    }
    const int32_t root = tree.AddLeaf(0.0);
    struct Work {
      int32_t node;
      size_t begin, end;
      int depth;
      double gsum, hsum;
    };
    std::vector<Work> stack = {
        {root, 0, order.size(), 1, g_total, h_total}};

    while (!stack.empty()) {
      const Work work = stack.back();
      stack.pop_back();
      const size_t count = work.end - work.begin;

      SplitCandidate best;
      if (work.depth <= config_.max_depth &&
          count >= 2 * static_cast<size_t>(config_.min_samples_leaf)) {
        best = FindBestSplit(order, work.begin, work.end, grad, hess,
                             features, work.gsum, work.hsum);
      }
      if (!best.valid()) {
        MakeLeaf(&tree, work.node, work.gsum, work.hsum);
        continue;
      }

      // Partition rows: binned value <= bin goes left.
      double g_left = 0.0;
      double h_left = 0.0;
      size_t mid = work.begin;
      for (size_t i = work.begin; i < work.end; ++i) {
        const size_t row = order[i];
        if (binned_[row * d_ + best.feature] <= best.bin) {
          g_left += grad[row];
          h_left += hess[row];
          std::swap(order[i], order[mid]);
          ++mid;
        }
      }
      STAGE_DCHECK(mid > work.begin && mid < work.end);

      const float threshold = quantizer_.UpperBoundary(best.feature, best.bin);
      const auto [left, right] =
          tree.SplitLeaf(work.node, best.feature, threshold);
      stack.push_back({right, mid, work.end, work.depth + 1,
                       work.gsum - g_left, work.hsum - h_left});
      stack.push_back({left, work.begin, mid, work.depth + 1, g_left, h_left});
    }
    return tree;
  }

 private:
  void MakeLeaf(RegressionTree* tree, int32_t node, double gsum, double hsum) {
    double value = -gsum / (hsum + config_.lambda);
    value = std::clamp(value, -config_.max_leaf_delta, config_.max_leaf_delta);
    // Store the learning-rate-scaled step so Predict needs no extra state.
    tree->SetLeafValue(node, value * config_.learning_rate);
  }

  SplitCandidate FindBestSplit(const std::vector<size_t>& order, size_t begin,
                               size_t end, const std::vector<double>& grad,
                               const std::vector<double>& hess,
                               const std::vector<int>& features, double gsum,
                               double hsum) {
    // Accumulate per-(feature, bin) gradient histograms in one row pass.
    const int kBins = 256;
    hist_g_.assign(static_cast<size_t>(d_) * kBins, 0.0);
    hist_h_.assign(static_cast<size_t>(d_) * kBins, 0.0);
    hist_c_.assign(static_cast<size_t>(d_) * kBins, 0);
    for (size_t i = begin; i < end; ++i) {
      const size_t row = order[i];
      const uint8_t* bins = &binned_[row * d_];
      const double g = grad[row];
      const double h = hess[row];
      for (int f : features) {
        const size_t slot = static_cast<size_t>(f) * kBins + bins[f];
        hist_g_[slot] += g;
        hist_h_[slot] += h;
        ++hist_c_[slot];
      }
    }

    const size_t count = end - begin;
    const double parent_score = gsum * gsum / (hsum + config_.lambda);
    SplitCandidate best;
    for (int f : features) {
      const int num_bins = quantizer_.NumBins(f);
      double g_left = 0.0;
      double h_left = 0.0;
      size_t c_left = 0;
      // The last bin has no upper boundary, so stop one short.
      for (int b = 0; b + 1 < num_bins; ++b) {
        const size_t slot = static_cast<size_t>(f) * kBins + b;
        g_left += hist_g_[slot];
        h_left += hist_h_[slot];
        c_left += hist_c_[slot];
        if (c_left < static_cast<size_t>(config_.min_samples_leaf)) continue;
        const size_t c_right = count - c_left;
        if (c_right < static_cast<size_t>(config_.min_samples_leaf)) break;
        const double h_right = hsum - h_left;
        if (h_left < config_.min_child_hessian ||
            h_right < config_.min_child_hessian) {
          continue;
        }
        const double g_right = gsum - g_left;
        const double gain = g_left * g_left / (h_left + config_.lambda) +
                            g_right * g_right / (h_right + config_.lambda) -
                            parent_score;
        if (gain > best.gain + kMinGain) {
          best.gain = gain;
          best.feature = f;
          best.bin = b;
        }
      }
    }
    return best;
  }

  const Dataset& data_;
  const FeatureQuantizer& quantizer_;
  const std::vector<uint8_t>& binned_;
  const GbdtConfig& config_;
  const int d_;
  std::vector<double> hist_g_;
  std::vector<double> hist_h_;
  std::vector<int> hist_c_;
};

}  // namespace

GbdtModel GbdtModel::Train(const Dataset& data, const Loss& loss,
                           const GbdtConfig& config) {
  STAGE_CHECK(config.num_rounds >= 0);
  STAGE_CHECK(config.max_depth >= 1);
  STAGE_CHECK(config.subsample > 0.0 && config.subsample <= 1.0);
  STAGE_CHECK(config.colsample > 0.0 && config.colsample <= 1.0);

  GbdtModel model;
  model.num_features_ = data.num_features();
  model.num_outputs_ = loss.num_outputs();
  model.base_scores_ = loss.InitScores(data.labels());
  if (data.empty() || config.num_rounds == 0) return model;

  const size_t n = data.num_rows();
  const int num_outputs = loss.num_outputs();
  Rng rng(config.seed);

  // Random validation split for early stopping (the paper holds out 20%).
  std::vector<size_t> train_rows;
  std::vector<size_t> val_rows;
  const bool use_early_stopping =
      config.early_stopping_rounds > 0 && config.validation_fraction > 0.0 &&
      n >= 20;
  if (use_early_stopping) {
    const std::vector<size_t> perm = rng.Permutation(n);
    const size_t num_val = std::max<size_t>(
        1, static_cast<size_t>(config.validation_fraction *
                               static_cast<double>(n)));
    val_rows.assign(perm.begin(), perm.begin() + num_val);
    train_rows.assign(perm.begin() + num_val, perm.end());
  } else {
    train_rows.resize(n);
    for (size_t i = 0; i < n; ++i) train_rows[i] = i;
  }

  const FeatureQuantizer quantizer(data, config.max_bins);
  const std::vector<uint8_t> binned = quantizer.Transform(data);
  TreeFitter fitter(data, quantizer, binned, config);

  // Current predictions for every row (train + validation).
  std::vector<double> preds(n * static_cast<size_t>(num_outputs));
  for (size_t i = 0; i < n; ++i) {
    for (int p = 0; p < num_outputs; ++p) {
      preds[i * num_outputs + p] = model.base_scores_[p];
    }
  }

  std::vector<double> val_labels(val_rows.size());
  for (size_t i = 0; i < val_rows.size(); ++i) {
    val_labels[i] = data.label(val_rows[i]);
  }
  std::vector<double> val_preds(val_rows.size() *
                                static_cast<size_t>(num_outputs));

  double best_val_loss = std::numeric_limits<double>::infinity();
  int best_round = -1;

  std::vector<double> grad;
  std::vector<double> hess;
  std::vector<size_t> sampled;
  std::vector<int> features;
  const int num_sampled_features = std::max(
      1, static_cast<int>(config.colsample * data.num_features()));

  for (int round = 0; round < config.num_rounds; ++round) {
    // Row bagging for this round (shared across the round's output trees).
    sampled.clear();
    if (config.subsample < 1.0) {
      for (size_t row : train_rows) {
        if (rng.NextBernoulli(config.subsample)) sampled.push_back(row);
      }
      if (sampled.empty()) sampled = train_rows;
    } else {
      sampled = train_rows;
    }
    // Feature sampling.
    features.clear();
    if (num_sampled_features < data.num_features()) {
      const std::vector<size_t> perm =
          rng.Permutation(static_cast<size_t>(data.num_features()));
      for (int i = 0; i < num_sampled_features; ++i) {
        features.push_back(static_cast<int>(perm[i]));
      }
      std::sort(features.begin(), features.end());
    } else {
      for (int f = 0; f < data.num_features(); ++f) features.push_back(f);
    }

    model.trees_.emplace_back();
    for (int p = 0; p < num_outputs; ++p) {
      loss.GradHess(data.labels(), preds, p, &grad, &hess);
      RegressionTree tree = fitter.Fit(sampled, grad, hess, features);
      for (size_t i = 0; i < n; ++i) {
        preds[i * num_outputs + p] += tree.Predict(data.row(i));
      }
      model.trees_.back().push_back(std::move(tree));
    }

    if (use_early_stopping) {
      for (size_t i = 0; i < val_rows.size(); ++i) {
        for (int p = 0; p < num_outputs; ++p) {
          val_preds[i * num_outputs + p] =
              preds[val_rows[i] * num_outputs + p];
        }
      }
      const double val_loss = loss.Eval(val_labels, val_preds);
      if (val_loss < best_val_loss - 1e-9) {
        best_val_loss = val_loss;
        best_round = round;
      } else if (round - best_round >= config.early_stopping_rounds) {
        break;
      }
    }
  }

  if (use_early_stopping && best_round >= 0) {
    model.trees_.resize(static_cast<size_t>(best_round) + 1);
  }
  return model;
}

std::vector<double> GbdtModel::Predict(const float* row) const {
  std::vector<double> out = base_scores_;
  for (const auto& round : trees_) {
    for (int p = 0; p < num_outputs_; ++p) {
      out[p] += round[p].Predict(row);
    }
  }
  return out;
}

double GbdtModel::PredictScalar(const float* row) const {
  STAGE_DCHECK(num_outputs_ >= 1);
  double out = base_scores_[0];
  for (const auto& round : trees_) out += round[0].Predict(row);
  return out;
}

std::vector<double> GbdtModel::FeatureImportance() const {
  std::vector<double> importance(num_features_, 0.0);
  double total = 0.0;
  for (const auto& round : trees_) {
    for (const auto& tree : round) {
      for (const auto& node : tree.nodes()) {
        if (node.is_leaf()) continue;
        STAGE_DCHECK(node.feature >= 0 && node.feature < num_features_);
        importance[node.feature] += 1.0;
        total += 1.0;
      }
    }
  }
  if (total > 0.0) {
    for (double& v : importance) v /= total;
  }
  return importance;
}

size_t GbdtModel::MemoryBytes() const {
  size_t bytes = base_scores_.size() * sizeof(double);
  for (const auto& round : trees_) {
    for (const auto& tree : round) bytes += tree.MemoryBytes();
  }
  return bytes;
}

namespace {
constexpr uint32_t kGbdtMagic = 0x53474254;  // "SGBT".
constexpr uint32_t kGbdtVersion = 1;
}  // namespace

void GbdtModel::Save(std::ostream& out) const {
  WriteHeader(out, kGbdtMagic, kGbdtVersion);
  WritePod<int32_t>(out, num_features_);
  WritePod<int32_t>(out, num_outputs_);
  WriteVector(out, base_scores_);
  WritePod<uint64_t>(out, trees_.size());
  for (const auto& round : trees_) {
    for (const auto& tree : round) tree.Save(out);
  }
}

bool GbdtModel::Load(std::istream& in) {
  if (!ReadHeader(in, kGbdtMagic, kGbdtVersion)) return false;
  int32_t num_features = 0;
  int32_t num_outputs = 0;
  if (!ReadPod(in, &num_features) || !ReadPod(in, &num_outputs)) return false;
  if (num_features < 0 || num_outputs < 1 || num_outputs > 64) return false;
  std::vector<double> base_scores;
  if (!ReadVector(in, &base_scores) ||
      base_scores.size() != static_cast<size_t>(num_outputs)) {
    return false;
  }
  uint64_t num_rounds = 0;
  if (!ReadPod(in, &num_rounds) || num_rounds > (1u << 24)) return false;
  std::vector<std::vector<RegressionTree>> trees(num_rounds);
  for (auto& round : trees) {
    round.resize(num_outputs);
    for (auto& tree : round) {
      if (!tree.Load(in)) return false;
    }
  }
  num_features_ = num_features;
  num_outputs_ = num_outputs;
  base_scores_ = std::move(base_scores);
  trees_ = std::move(trees);
  return true;
}

}  // namespace stage::gbt
