#include "stage/gbt/gbdt.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "stage/common/macros.h"
#include "stage/common/rng.h"
#include "stage/common/serialize.h"
#include "stage/gbt/quantizer.h"

namespace stage::gbt {

namespace {

constexpr double kMinGain = 1e-12;

struct SplitCandidate {
  double gain = 0.0;
  int feature = -1;
  int bin = -1;  // Rows with binned value <= bin go left.
  bool valid() const { return feature >= 0; }
};

// One tree-fitting pass over a sampled row set. Rows are partitioned in
// place within `order` as nodes split.
//
// Histogram strategy (the LightGBM trick): per-node (feature, bin)
// gradient histograms live in an arena of reusable buffers — acquired when
// a node may still split, released when it becomes a leaf — and only the
// smaller child of a split is built with a row pass; the larger child's
// histogram is derived in place by subtracting the smaller child from the
// parent's buffer. Bin counts are integers, so subtraction keeps every
// min_samples_leaf decision exact; the summed gradients are derived in a
// different floating-point order than a direct build, which can move a
// gain by ~1 ulp (the kMinGain slack already absorbs ties). The arena is
// owned by the fitter and reused across every node of every tree it fits.
class TreeFitter {
 public:
  TreeFitter(const Dataset& data, const FeatureQuantizer& quantizer,
             const std::vector<uint8_t>& binned, const GbdtConfig& config)
      : data_(data),
        quantizer_(quantizer),
        binned_(binned),
        config_(config),
        d_(data.num_features()) {}

  RegressionTree Fit(std::vector<size_t>& order,
                     const std::vector<double>& grad,
                     const std::vector<double>& hess,
                     const std::vector<int>& features) {
    RegressionTree tree;
    double g_total = 0.0;
    double h_total = 0.0;
    for (size_t row : order) {
      g_total += grad[row];
      h_total += hess[row];
    }
    const int32_t root = tree.AddLeaf(0.0);
    struct Work {
      int32_t node;
      size_t begin, end;
      int depth;
      double gsum, hsum;
      int hist;  // Arena buffer id, -1 when the node is a guaranteed leaf.
    };
    int root_hist = -1;
    if (MaySplit(order.size(), 1)) {
      root_hist = AcquireHistogram(features);
      BuildHistogram(root_hist, order, 0, order.size(), grad, hess, features);
    }
    std::vector<Work> stack = {
        {root, 0, order.size(), 1, g_total, h_total, root_hist}};

    while (!stack.empty()) {
      const Work work = stack.back();
      stack.pop_back();

      SplitCandidate best;
      if (work.hist >= 0) {
        STAGE_DCHECK(MaySplit(work.end - work.begin, work.depth));
        best = FindBestSplit(work.hist, work.end - work.begin, features,
                             work.gsum, work.hsum);
      }
      if (!best.valid()) {
        MakeLeaf(&tree, work.node, work.gsum, work.hsum);
        if (work.hist >= 0) ReleaseHistogram(work.hist);
        continue;
      }

      // Partition rows: binned value <= bin goes left.
      double g_left = 0.0;
      double h_left = 0.0;
      size_t mid = work.begin;
      for (size_t i = work.begin; i < work.end; ++i) {
        const size_t row = order[i];
        if (binned_[row * d_ + best.feature] <= best.bin) {
          g_left += grad[row];
          h_left += hess[row];
          std::swap(order[i], order[mid]);
          ++mid;
        }
      }
      STAGE_DCHECK(mid > work.begin && mid < work.end);

      // Child histograms: build the smaller child with a row pass, derive
      // the larger one by subtracting it from the parent's buffer (which
      // the larger child then owns). Children that can never split skip
      // their histogram entirely.
      const size_t left_count = mid - work.begin;
      const size_t right_count = work.end - mid;
      const int child_depth = work.depth + 1;
      const bool left_smaller = left_count <= right_count;
      const bool need_left = MaySplit(left_count, child_depth);
      const bool need_right = MaySplit(right_count, child_depth);
      const bool need_smaller = left_smaller ? need_left : need_right;
      const bool need_larger = left_smaller ? need_right : need_left;
      int smaller_hist = -1;
      int larger_hist = -1;
      if (need_smaller || need_larger) {
        smaller_hist = AcquireHistogram(features);
        BuildHistogram(smaller_hist, order, left_smaller ? work.begin : mid,
                       left_smaller ? mid : work.end, grad, hess, features);
      }
      if (need_larger) {
        SubtractHistogram(work.hist, smaller_hist, features);
        larger_hist = work.hist;
      } else {
        ReleaseHistogram(work.hist);
      }
      if (!need_smaller && smaller_hist >= 0) {
        ReleaseHistogram(smaller_hist);
        smaller_hist = -1;
      }
      const int left_hist = left_smaller ? smaller_hist : larger_hist;
      const int right_hist = left_smaller ? larger_hist : smaller_hist;

      const float threshold = quantizer_.UpperBoundary(best.feature, best.bin);
      const auto [left, right] =
          tree.SplitLeaf(work.node, best.feature, threshold);
      stack.push_back({right, mid, work.end, child_depth,
                       work.gsum - g_left, work.hsum - h_left, right_hist});
      stack.push_back({left, work.begin, mid, child_depth, g_left, h_left,
                       left_hist});
    }
    STAGE_DCHECK(free_hists_.size() == hists_.size());
    return tree;
  }

 private:
  static constexpr int kBins = 256;

  struct Histogram {
    std::vector<double> g;
    std::vector<double> h;
    std::vector<int32_t> c;
  };

  bool MaySplit(size_t count, int depth) const {
    return depth <= config_.max_depth &&
           count >= 2 * static_cast<size_t>(config_.min_samples_leaf);
  }

  // Returns a buffer with the sampled features' bin rows zeroed. Buffers
  // come from a free list, so steady-state fitting allocates nothing.
  int AcquireHistogram(const std::vector<int>& features) {
    int id;
    if (free_hists_.empty()) {
      id = static_cast<int>(hists_.size());
      hists_.emplace_back();
      const size_t slots = static_cast<size_t>(d_) * kBins;
      hists_[id].g.assign(slots, 0.0);
      hists_[id].h.assign(slots, 0.0);
      hists_[id].c.assign(slots, 0);
      return id;
    }
    id = free_hists_.back();
    free_hists_.pop_back();
    Histogram& hist = hists_[id];
    for (int f : features) {
      const size_t base = static_cast<size_t>(f) * kBins;
      const size_t bins = static_cast<size_t>(quantizer_.NumBins(f));
      std::fill_n(hist.g.begin() + base, bins, 0.0);
      std::fill_n(hist.h.begin() + base, bins, 0.0);
      std::fill_n(hist.c.begin() + base, bins, 0);
    }
    return id;
  }

  void ReleaseHistogram(int id) { free_hists_.push_back(id); }

  void BuildHistogram(int id, const std::vector<size_t>& order, size_t begin,
                      size_t end, const std::vector<double>& grad,
                      const std::vector<double>& hess,
                      const std::vector<int>& features) {
    Histogram& hist = hists_[id];
    for (size_t i = begin; i < end; ++i) {
      const size_t row = order[i];
      const uint8_t* bins = &binned_[row * d_];
      const double g = grad[row];
      const double h = hess[row];
      for (int f : features) {
        const size_t slot = static_cast<size_t>(f) * kBins + bins[f];
        hist.g[slot] += g;
        hist.h[slot] += h;
        ++hist.c[slot];
      }
    }
  }

  // parent -= child over the sampled features; the parent buffer then
  // holds the sibling's histogram.
  void SubtractHistogram(int parent, int child, const std::vector<int>& features) {
    Histogram& into = hists_[parent];
    const Histogram& sub = hists_[child];
    for (int f : features) {
      const size_t base = static_cast<size_t>(f) * kBins;
      const size_t bins = static_cast<size_t>(quantizer_.NumBins(f));
      for (size_t b = base; b < base + bins; ++b) {
        into.g[b] -= sub.g[b];
        into.h[b] -= sub.h[b];
        into.c[b] -= sub.c[b];
      }
    }
  }

  void MakeLeaf(RegressionTree* tree, int32_t node, double gsum, double hsum) {
    double value = -gsum / (hsum + config_.lambda);
    value = std::clamp(value, -config_.max_leaf_delta, config_.max_leaf_delta);
    // Store the learning-rate-scaled step so Predict needs no extra state.
    tree->SetLeafValue(node, value * config_.learning_rate);
  }

  SplitCandidate FindBestSplit(int hist_id, size_t count,
                               const std::vector<int>& features, double gsum,
                               double hsum) {
    const Histogram& hist = hists_[hist_id];
    const double parent_score = gsum * gsum / (hsum + config_.lambda);
    SplitCandidate best;
    for (int f : features) {
      const int num_bins = quantizer_.NumBins(f);
      double g_left = 0.0;
      double h_left = 0.0;
      size_t c_left = 0;
      // The last bin has no upper boundary, so stop one short.
      for (int b = 0; b + 1 < num_bins; ++b) {
        const size_t slot = static_cast<size_t>(f) * kBins + b;
        g_left += hist.g[slot];
        h_left += hist.h[slot];
        c_left += static_cast<size_t>(hist.c[slot]);
        if (c_left < static_cast<size_t>(config_.min_samples_leaf)) continue;
        const size_t c_right = count - c_left;
        if (c_right < static_cast<size_t>(config_.min_samples_leaf)) break;
        const double h_right = hsum - h_left;
        if (h_left < config_.min_child_hessian ||
            h_right < config_.min_child_hessian) {
          continue;
        }
        const double g_right = gsum - g_left;
        const double gain = g_left * g_left / (h_left + config_.lambda) +
                            g_right * g_right / (h_right + config_.lambda) -
                            parent_score;
        if (gain > best.gain + kMinGain) {
          best.gain = gain;
          best.feature = f;
          best.bin = b;
        }
      }
    }
    return best;
  }

  const Dataset& data_;
  const FeatureQuantizer& quantizer_;
  const std::vector<uint8_t>& binned_;
  const GbdtConfig& config_;
  const int d_;
  // Histogram arena + free list; see the class comment.
  std::vector<Histogram> hists_;
  std::vector<int> free_hists_;
};

}  // namespace

GbdtModel GbdtModel::Train(const Dataset& data, const Loss& loss,
                           const GbdtConfig& config) {
  STAGE_CHECK(config.num_rounds >= 0);
  STAGE_CHECK(config.max_depth >= 1);
  STAGE_CHECK(config.subsample > 0.0 && config.subsample <= 1.0);
  STAGE_CHECK(config.colsample > 0.0 && config.colsample <= 1.0);

  GbdtModel model;
  model.num_features_ = data.num_features();
  model.num_outputs_ = loss.num_outputs();
  model.base_scores_ = loss.InitScores(data.labels());
  if (data.empty() || config.num_rounds == 0) {
    model.flat_ = FlatForest::Compile(model.base_scores_, model.trees_);
    return model;
  }

  const size_t n = data.num_rows();
  const int num_outputs = loss.num_outputs();
  Rng rng(config.seed);

  // Random validation split for early stopping (the paper holds out 20%).
  std::vector<size_t> train_rows;
  std::vector<size_t> val_rows;
  const bool use_early_stopping =
      config.early_stopping_rounds > 0 && config.validation_fraction > 0.0 &&
      n >= 20;
  if (use_early_stopping) {
    const std::vector<size_t> perm = rng.Permutation(n);
    const size_t num_val = std::max<size_t>(
        1, static_cast<size_t>(config.validation_fraction *
                               static_cast<double>(n)));
    val_rows.assign(perm.begin(), perm.begin() + num_val);
    train_rows.assign(perm.begin() + num_val, perm.end());
  } else {
    train_rows.resize(n);
    for (size_t i = 0; i < n; ++i) train_rows[i] = i;
  }

  const FeatureQuantizer quantizer(data, config.max_bins);
  const std::vector<uint8_t> binned = quantizer.Transform(data);
  TreeFitter fitter(data, quantizer, binned, config);

  // Current predictions for every row (train + validation).
  std::vector<double> preds(n * static_cast<size_t>(num_outputs));
  for (size_t i = 0; i < n; ++i) {
    for (int p = 0; p < num_outputs; ++p) {
      preds[i * num_outputs + p] = model.base_scores_[p];
    }
  }

  std::vector<double> val_labels(val_rows.size());
  for (size_t i = 0; i < val_rows.size(); ++i) {
    val_labels[i] = data.label(val_rows[i]);
  }
  std::vector<double> val_preds(val_rows.size() *
                                static_cast<size_t>(num_outputs));

  double best_val_loss = std::numeric_limits<double>::infinity();
  int best_round = -1;

  std::vector<double> grad;
  std::vector<double> hess;
  std::vector<size_t> sampled;
  std::vector<int> features;
  const int num_sampled_features = std::max(
      1, static_cast<int>(config.colsample * data.num_features()));

  for (int round = 0; round < config.num_rounds; ++round) {
    // Row bagging for this round (shared across the round's output trees).
    sampled.clear();
    if (config.subsample < 1.0) {
      for (size_t row : train_rows) {
        if (rng.NextBernoulli(config.subsample)) sampled.push_back(row);
      }
      if (sampled.empty()) sampled = train_rows;
    } else {
      sampled = train_rows;
    }
    // Feature sampling.
    features.clear();
    if (num_sampled_features < data.num_features()) {
      const std::vector<size_t> perm =
          rng.Permutation(static_cast<size_t>(data.num_features()));
      for (int i = 0; i < num_sampled_features; ++i) {
        features.push_back(static_cast<int>(perm[i]));
      }
      std::sort(features.begin(), features.end());
    } else {
      for (int f = 0; f < data.num_features(); ++f) features.push_back(f);
    }

    model.trees_.emplace_back();
    for (int p = 0; p < num_outputs; ++p) {
      loss.GradHess(data.labels(), preds, p, &grad, &hess);
      RegressionTree tree = fitter.Fit(sampled, grad, hess, features);
      for (size_t i = 0; i < n; ++i) {
        preds[i * num_outputs + p] += tree.Predict(data.row(i));
      }
      model.trees_.back().push_back(std::move(tree));
    }

    if (use_early_stopping) {
      for (size_t i = 0; i < val_rows.size(); ++i) {
        for (int p = 0; p < num_outputs; ++p) {
          val_preds[i * num_outputs + p] =
              preds[val_rows[i] * num_outputs + p];
        }
      }
      const double val_loss = loss.Eval(val_labels, val_preds);
      if (val_loss < best_val_loss - 1e-9) {
        best_val_loss = val_loss;
        best_round = round;
      } else if (round - best_round >= config.early_stopping_rounds) {
        break;
      }
    }
  }

  if (use_early_stopping && best_round >= 0) {
    model.trees_.resize(static_cast<size_t>(best_round) + 1);
  }
  model.flat_ = FlatForest::Compile(model.base_scores_, model.trees_);
  return model;
}

std::vector<double> GbdtModel::Predict(const float* row) const {
  std::vector<double> out(static_cast<size_t>(num_outputs_));
  flat_.PredictInto(row, out);
  return out;
}

void GbdtModel::PredictInto(const float* row, std::span<double> out) const {
  flat_.PredictInto(row, out);
}

double GbdtModel::PredictScalar(const float* row) const {
  STAGE_DCHECK(num_outputs_ >= 1);
  return flat_.PredictScalar(row);
}

void GbdtModel::PredictBatch(const float* rows, size_t num_rows,
                             size_t row_stride, std::span<double> out,
                             ThreadPool* pool) const {
  flat_.PredictBatch(rows, num_rows, row_stride, out, pool);
}

double GbdtModel::AddSplitCounts(std::span<double> counts) const {
  STAGE_DCHECK(counts.size() == static_cast<size_t>(num_features_));
  double total = 0.0;
  for (const auto& round : trees_) {
    for (const auto& tree : round) {
      for (const auto& node : tree.nodes()) {
        if (node.is_leaf()) continue;
        STAGE_DCHECK(node.feature >= 0 && node.feature < num_features_);
        counts[node.feature] += 1.0;
        total += 1.0;
      }
    }
  }
  return total;
}

std::vector<double> GbdtModel::FeatureImportance() const {
  std::vector<double> importance(num_features_, 0.0);
  const double total = AddSplitCounts(importance);
  if (total > 0.0) {
    for (double& v : importance) v /= total;
  }
  return importance;
}

size_t GbdtModel::MemoryBytes() const {
  size_t bytes = base_scores_.size() * sizeof(double);
  for (const auto& round : trees_) {
    for (const auto& tree : round) bytes += tree.MemoryBytes();
  }
  // The compiled inference layout is a second copy of the forest and is
  // part of the model's real serving footprint (Fig. 9 accounting).
  bytes += flat_.MemoryBytes();
  return bytes;
}

namespace {
constexpr uint32_t kGbdtMagic = 0x53474254;  // "SGBT".
constexpr uint32_t kGbdtVersion = 1;
}  // namespace

void GbdtModel::Save(std::ostream& out) const {
  WriteHeader(out, kGbdtMagic, kGbdtVersion);
  WritePod<int32_t>(out, num_features_);
  WritePod<int32_t>(out, num_outputs_);
  WriteVector(out, base_scores_);
  WritePod<uint64_t>(out, trees_.size());
  for (const auto& round : trees_) {
    for (const auto& tree : round) tree.Save(out);
  }
}

bool GbdtModel::Load(std::istream& in) {
  if (!ReadHeader(in, kGbdtMagic, kGbdtVersion)) return false;
  int32_t num_features = 0;
  int32_t num_outputs = 0;
  if (!ReadPod(in, &num_features) || !ReadPod(in, &num_outputs)) return false;
  if (num_features < 0 || num_outputs < 1 || num_outputs > 64) return false;
  std::vector<double> base_scores;
  if (!ReadVector(in, &base_scores) ||
      base_scores.size() != static_cast<size_t>(num_outputs)) {
    return false;
  }
  uint64_t num_rounds = 0;
  if (!ReadPod(in, &num_rounds) || num_rounds > (1u << 24)) return false;
  std::vector<std::vector<RegressionTree>> trees(num_rounds);
  for (auto& round : trees) {
    round.resize(num_outputs);
    for (auto& tree : round) {
      if (!tree.Load(in)) return false;
    }
  }
  num_features_ = num_features;
  num_outputs_ = num_outputs;
  base_scores_ = std::move(base_scores);
  trees_ = std::move(trees);
  flat_ = FlatForest::Compile(base_scores_, trees_);
  return true;
}

}  // namespace stage::gbt
