#ifndef STAGE_GBT_FLAT_FOREST_H_
#define STAGE_GBT_FLAT_FOREST_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "stage/common/thread_pool.h"
#include "stage/gbt/tree.h"

namespace stage::gbt {

// Inference-only compiled form of a trained GBT model: every tree of every
// round flattened into four contiguous SoA arrays (feature / threshold /
// child index / leaf value). Compiled once from the node-vector
// representation after training or loading; the node vectors remain the
// canonical training and Save/Load format.
//
// Why it is faster than walking RegressionTree nodes:
//  * no per-call heap allocation (PredictInto writes caller storage);
//  * one flat buffer instead of one heap allocation per tree behind two
//    levels of vector indirection, so consecutive trees prefetch;
//  * nodes are re-laid out so a split's children are adjacent
//    (right == left + 1), and the three fields a descent step reads are
//    packed into one 12-byte record — one cache-line touch per node,
//    branchless step. Leaf values stay in a separate array, read once
//    per tree.
// Predictions are bit-for-bit identical to RegressionTree::Predict: same
// thresholds, same leaf values, same `x <= t` comparison (including the
// NaN-goes-right convention).
class FlatForest {
 public:
  FlatForest() = default;

  // Compiles trees[round][output] plus per-output base scores. Tree t
  // contributes to output t % num_outputs, matching GbdtModel's
  // round-major, output-interleaved accumulation order.
  static FlatForest Compile(
      const std::vector<double>& base_scores,
      const std::vector<std::vector<RegressionTree>>& trees);

  int num_outputs() const { return num_outputs_; }
  size_t num_trees() const { return roots_.size(); }
  size_t num_nodes() const { return nodes_.size(); }
  bool empty() const { return num_outputs_ == 0; }

  // Allocation-free single-row predict; out.size() must equal
  // num_outputs().
  void PredictInto(const float* row, std::span<double> out) const;

  // Output 0 only, walking only that output's trees.
  double PredictScalar(const float* row) const;

  // Blocked multi-row predict: rows are row-major with `row_stride` floats
  // per row; `out` is row-major [num_rows x num_outputs()]. Rows are
  // processed in cache-sized blocks with trees as the outer loop inside
  // each block, so the node arrays stream once per block instead of once
  // per row. When `pool` is non-null, blocks run on it in parallel
  // (per-row results are independent, so the output is identical either
  // way).
  void PredictBatch(const float* rows, size_t num_rows, size_t row_stride,
                    std::span<double> out, ThreadPool* pool = nullptr) const;

  size_t MemoryBytes() const;

 private:
  // The hot per-node state: everything one descent step reads, in 12
  // bytes. feature is -1 for leaves; left is the absolute index of the
  // left child and the right child is left + 1.
  struct Node {
    int32_t feature;
    float threshold;
    int32_t left;
  };
  static_assert(sizeof(Node) == 12, "descent state must stay 12 bytes");

  void AppendTree(const RegressionTree& tree);

  // Leaf index reached by `row` in the tree rooted at `root`.
  inline int32_t Descend(int32_t root, const float* row) const {
    const Node* nodes = nodes_.data();
    int32_t idx = root;
    int32_t feature = nodes[idx].feature;
    while (feature >= 0) {
      // `!(x <= t)` rather than `x > t` so NaN takes the right child,
      // exactly like RegressionTree::Predict's `x <= t ? left : right`.
      idx = nodes[idx].left +
            static_cast<int32_t>(!(row[feature] <= nodes[idx].threshold));
      feature = nodes[idx].feature;
    }
    return idx;
  }

  // kLanes independent tree descents over one row in lockstep. Each lane
  // takes exactly the steps Descend would (same leaves, same bits); the
  // point is throughput: a lone descent is a chain of dependent loads, so
  // it pays the full cache latency per level, while several trees in
  // flight let the out-of-order core overlap those misses. idx[] holds
  // the roots on entry and the leaves on return.
  template <int kLanes>
  inline void DescendLanes(const float* row, int32_t* idx) const {
    const Node* nodes = nodes_.data();
    for (;;) {
      int32_t features[kLanes];
      int32_t all = -1;
      for (int k = 0; k < kLanes; ++k) {
        features[k] = nodes[idx[k]].feature;
        all &= features[k];
      }
      // The sign bit survives the AND only if every lane sits on a leaf.
      if (all < 0) return;
      for (int k = 0; k < kLanes; ++k) {
        if (features[k] >= 0) {
          idx[k] = nodes[idx[k]].left +
                   static_cast<int32_t>(
                       !(row[features[k]] <= nodes[idx[k]].threshold));
        }
      }
    }
  }

  // Four independent descents in lockstep (four trees over one row, or one
  // tree over four rows). A single descent is a chain of dependent loads
  // (each step's node address comes from the previous load), so a serial
  // walk pays the full cache latency per level; four lanes in flight let
  // the out-of-order core overlap those misses. Each lane takes exactly
  // the steps Descend would, so the reached leaves are identical.
  // i0..i3 hold the roots on entry and the leaves on return.
  inline void Descend4(const float* row0, const float* row1,
                       const float* row2, const float* row3, int32_t& i0,
                       int32_t& i1, int32_t& i2, int32_t& i3) const {
    const Node* nodes = nodes_.data();
    for (;;) {
      const int32_t f0 = nodes[i0].feature;
      const int32_t f1 = nodes[i1].feature;
      const int32_t f2 = nodes[i2].feature;
      const int32_t f3 = nodes[i3].feature;
      // All four sign bits set means every lane sits on a leaf.
      if ((f0 & f1 & f2 & f3) < 0) return;
      if (f0 >= 0) {
        i0 = nodes[i0].left +
             static_cast<int32_t>(!(row0[f0] <= nodes[i0].threshold));
      }
      if (f1 >= 0) {
        i1 = nodes[i1].left +
             static_cast<int32_t>(!(row1[f1] <= nodes[i1].threshold));
      }
      if (f2 >= 0) {
        i2 = nodes[i2].left +
             static_cast<int32_t>(!(row2[f2] <= nodes[i2].threshold));
      }
      if (f3 >= 0) {
        i3 = nodes[i3].left +
             static_cast<int32_t>(!(row3[f3] <= nodes[i3].threshold));
      }
    }
  }

  int num_outputs_ = 0;
  std::vector<double> base_scores_;
  std::vector<int32_t> roots_;  // One entry per tree, round-major.
  std::vector<Node> nodes_;
  std::vector<double> value_;  // Leaf values (0 for internal nodes).
};

}  // namespace stage::gbt

#endif  // STAGE_GBT_FLAT_FOREST_H_
