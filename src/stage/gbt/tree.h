#ifndef STAGE_GBT_TREE_H_
#define STAGE_GBT_TREE_H_

#include <cstddef>
#include <cstdint>
#include <istream>
#include <ostream>
#include <utility>
#include <vector>

namespace stage::gbt {

// A single binary regression tree with axis-aligned float-threshold splits.
// Built by the GBDT trainer over quantized features; prediction runs on raw
// float rows (the thresholds are de-quantized bin boundaries).
class RegressionTree {
 public:
  struct Node {
    // Internal nodes: split on features[feature] <= threshold -> left.
    int32_t feature = -1;
    float threshold = 0.0f;
    int32_t left = -1;
    int32_t right = -1;
    // Leaves: the (already learning-rate-scaled) additive value.
    double value = 0.0;
    bool is_leaf() const { return left < 0; }
  };

  RegressionTree() = default;

  // Single-leaf tree with a constant value.
  static RegressionTree Constant(double value);

  // Builder API used by the trainer. Returns the new node index.
  int32_t AddLeaf(double value);
  // Converts a leaf into an internal node with two fresh leaves; returns
  // {left_index, right_index}.
  std::pair<int32_t, int32_t> SplitLeaf(int32_t node, int32_t feature,
                                        float threshold);

  // Sets the value of an existing leaf node.
  void SetLeafValue(int32_t node, double value);

  double Predict(const float* row) const;

  const std::vector<Node>& nodes() const { return nodes_; }
  int num_leaves() const;

  // Scales every leaf value (used to apply the learning rate once).
  void ScaleLeaves(double factor);

  // Rough memory footprint in bytes (Fig. 9 accounting).
  size_t MemoryBytes() const { return nodes_.size() * sizeof(Node); }

  // Binary checkpointing (see stage/common/serialize.h).
  void Save(std::ostream& out) const;
  bool Load(std::istream& in);

 private:
  std::vector<Node> nodes_;
};

}  // namespace stage::gbt

#endif  // STAGE_GBT_TREE_H_
