#include "stage/gbt/flat_forest.h"

#include <algorithm>
#include <utility>

#include "stage/common/macros.h"

namespace stage::gbt {

namespace {
// Rows per batch block: small enough that a block's outputs stay in L1
// while the tree arrays stream through, large enough to amortize each
// tree's root-to-leaf cold start across many rows.
constexpr size_t kRowBlock = 64;
}  // namespace

FlatForest FlatForest::Compile(
    const std::vector<double>& base_scores,
    const std::vector<std::vector<RegressionTree>>& trees) {
  FlatForest flat;
  flat.num_outputs_ = static_cast<int>(base_scores.size());
  flat.base_scores_ = base_scores;

  size_t total_nodes = 0;
  size_t total_trees = 0;
  for (const auto& round : trees) {
    for (const RegressionTree& tree : round) {
      total_nodes += tree.nodes().size();
      ++total_trees;
    }
  }
  flat.roots_.reserve(total_trees);
  flat.nodes_.reserve(total_nodes);
  flat.value_.reserve(total_nodes);
  for (const auto& round : trees) {
    for (const RegressionTree& tree : round) flat.AppendTree(tree);
  }
  return flat;
}

void FlatForest::AppendTree(const RegressionTree& tree) {
  const std::vector<RegressionTree::Node>& nodes = tree.nodes();
  STAGE_CHECK(!nodes.empty());
  const int32_t root = static_cast<int32_t>(nodes_.size());
  roots_.push_back(root);

  // Breadth-first re-layout with both children of a split emitted
  // adjacently, so only the left index is stored (right == left + 1) and
  // the top levels of the tree share cache lines.
  const auto emit_slot = [this] {
    nodes_.push_back(Node{-1, 0.0f, -1});
    value_.push_back(0.0);
  };
  emit_slot();  // Root slot.
  std::vector<std::pair<int32_t, int32_t>> pending;  // (old index, new index)
  pending.reserve(nodes.size());
  pending.emplace_back(0, root);
  for (size_t q = 0; q < pending.size(); ++q) {
    const auto [old_idx, new_idx] = pending[q];
    const RegressionTree::Node& node = nodes[old_idx];
    if (node.is_leaf()) {
      value_[new_idx] = node.value;
      continue;
    }
    const int32_t new_left = static_cast<int32_t>(nodes_.size());
    emit_slot();
    emit_slot();
    nodes_[new_idx] = Node{node.feature, node.threshold, new_left};
    pending.emplace_back(node.left, new_left);
    pending.emplace_back(node.right, new_left + 1);
  }
}

void FlatForest::PredictInto(const float* row, std::span<double> out) const {
  STAGE_DCHECK(out.size() == static_cast<size_t>(num_outputs_));
  for (int p = 0; p < num_outputs_; ++p) out[p] = base_scores_[p];
  const size_t n = roots_.size();
  int p = 0;
  size_t t = 0;
  // Trees descend in lockstep lanes; their leaf values are then added in
  // plain tree order, so the accumulation (and hence every result bit)
  // matches the serial walk.
  constexpr int kLanes = 8;
  for (; t + kLanes <= n; t += kLanes) {
    int32_t idx[kLanes];
    for (int k = 0; k < kLanes; ++k) idx[k] = roots_[t + k];
    DescendLanes<kLanes>(row, idx);
    for (int k = 0; k < kLanes; ++k) {
      out[p] += value_[idx[k]];
      if (++p == num_outputs_) p = 0;
    }
  }
  for (; t < n; ++t) {
    out[p] += value_[Descend(roots_[t], row)];
    if (++p == num_outputs_) p = 0;
  }
}

double FlatForest::PredictScalar(const float* row) const {
  STAGE_DCHECK(num_outputs_ >= 1);
  const size_t stride = static_cast<size_t>(num_outputs_);
  const size_t n = roots_.size();
  double out = base_scores_[0];
  size_t t = 0;
  constexpr int kLanes = 8;
  for (; t + (kLanes - 1) * stride < n; t += kLanes * stride) {
    int32_t idx[kLanes];
    for (int k = 0; k < kLanes; ++k) {
      idx[k] = roots_[t + static_cast<size_t>(k) * stride];
    }
    DescendLanes<kLanes>(row, idx);
    // One addition per statement: the order must match the serial walk.
    for (int k = 0; k < kLanes; ++k) out += value_[idx[k]];
  }
  for (; t < n; t += stride) {
    out += value_[Descend(roots_[t], row)];
  }
  return out;
}

void FlatForest::PredictBatch(const float* rows, size_t num_rows,
                              size_t row_stride, std::span<double> out,
                              ThreadPool* pool) const {
  STAGE_DCHECK(out.size() == num_rows * static_cast<size_t>(num_outputs_));
  if (num_rows == 0 || num_outputs_ == 0) return;

  const auto run_block = [&](size_t block) {
    const size_t begin = block * kRowBlock;
    const size_t end = std::min(num_rows, begin + kRowBlock);
    for (size_t r = begin; r < end; ++r) {
      for (int p = 0; p < num_outputs_; ++p) {
        out[r * num_outputs_ + p] = base_scores_[p];
      }
    }
    // Trees outer, rows inner: each tree's nodes are touched once per
    // block, not once per row. Rows descend four abreast — independent
    // lanes over the same tree — to overlap the per-level load latency.
    int p = 0;
    for (const int32_t root : roots_) {
      size_t r = begin;
      for (; r + 4 <= end; r += 4) {
        int32_t i0 = root;
        int32_t i1 = root;
        int32_t i2 = root;
        int32_t i3 = root;
        Descend4(rows + r * row_stride, rows + (r + 1) * row_stride,
                 rows + (r + 2) * row_stride, rows + (r + 3) * row_stride,
                 i0, i1, i2, i3);
        out[r * num_outputs_ + p] += value_[i0];
        out[(r + 1) * num_outputs_ + p] += value_[i1];
        out[(r + 2) * num_outputs_ + p] += value_[i2];
        out[(r + 3) * num_outputs_ + p] += value_[i3];
      }
      for (; r < end; ++r) {
        out[r * num_outputs_ + p] +=
            value_[Descend(root, rows + r * row_stride)];
      }
      if (++p == num_outputs_) p = 0;
    }
  };

  const size_t num_blocks = (num_rows + kRowBlock - 1) / kRowBlock;
  if (pool != nullptr && num_blocks > 1) {
    pool->ParallelFor(num_blocks, run_block);
  } else {
    for (size_t block = 0; block < num_blocks; ++block) run_block(block);
  }
}

size_t FlatForest::MemoryBytes() const {
  return base_scores_.size() * sizeof(double) +
         roots_.size() * sizeof(int32_t) + nodes_.size() * sizeof(Node) +
         value_.size() * sizeof(double);
}

}  // namespace stage::gbt
