#include "stage/gbt/ensemble.h"

#include <algorithm>
#include <cmath>
#include <thread>

#include "stage/common/macros.h"
#include "stage/common/serialize.h"
#include "stage/gbt/loss.h"

namespace stage::gbt {

BayesianGbtEnsemble BayesianGbtEnsemble::Train(const Dataset& data,
                                               const EnsembleConfig& config) {
  STAGE_CHECK(config.num_members >= 1);
  BayesianGbtEnsemble ensemble;
  ensemble.members_.resize(config.num_members);

  auto train_member = [&](int k) {
    GbdtConfig member_config = config.member;
    // Distinct seeds give each member its own bagging draws and its own
    // early-stopping split; that independence is what makes the variance of
    // member means a usable model-uncertainty signal.
    member_config.seed = config.member.seed + 0x9e3779b97f4a7c15ULL *
                                                  static_cast<uint64_t>(k + 1);
    const auto loss = MakeGaussianNllLoss();
    ensemble.members_[k] = GbdtModel::Train(data, *loss, member_config);
  };

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  if (config.parallel_train && config.num_members > 1 && hw > 1) {
    std::vector<std::thread> workers;
    workers.reserve(config.num_members);
    for (int k = 0; k < config.num_members; ++k) {
      workers.emplace_back(train_member, k);
    }
    for (auto& worker : workers) worker.join();
  } else {
    for (int k = 0; k < config.num_members; ++k) train_member(k);
  }
  return ensemble;
}

BayesianGbtEnsemble::Prediction BayesianGbtEnsemble::Predict(
    const float* row) const {
  STAGE_CHECK(!members_.empty());
  const double k = static_cast<double>(members_.size());

  Prediction out;
  double sum_mu = 0.0;
  double sum_mu_sq = 0.0;
  double sum_var = 0.0;
  for (const GbdtModel& member : members_) {
    const std::vector<double> pred = member.Predict(row);
    const double mu = pred[0];
    const double sigma_sq = std::exp(std::clamp(pred[1], -12.0, 12.0));
    sum_mu += mu;
    sum_mu_sq += mu * mu;
    sum_var += sigma_sq;
  }
  out.mean = sum_mu / k;                                       // Eq. 1.
  out.model_variance = std::max(0.0, sum_mu_sq / k - out.mean * out.mean);
  out.data_variance = sum_var / k;                             // Eq. 2.
  return out;
}

size_t BayesianGbtEnsemble::MemoryBytes() const {
  size_t bytes = 0;
  for (const GbdtModel& member : members_) bytes += member.MemoryBytes();
  return bytes;
}

std::vector<double> BayesianGbtEnsemble::FeatureImportance() const {
  STAGE_CHECK(!members_.empty());
  std::vector<double> importance(members_[0].num_features(), 0.0);
  for (const GbdtModel& member : members_) {
    const std::vector<double> member_importance = member.FeatureImportance();
    for (size_t f = 0; f < importance.size(); ++f) {
      importance[f] += member_importance[f];
    }
  }
  for (double& v : importance) v /= static_cast<double>(members_.size());
  return importance;
}

void BayesianGbtEnsemble::Save(std::ostream& out) const {
  WritePod<uint64_t>(out, members_.size());
  for (const GbdtModel& member : members_) member.Save(out);
}

bool BayesianGbtEnsemble::Load(std::istream& in) {
  uint64_t count = 0;
  if (!ReadPod(in, &count) || count == 0 || count > 1024) return false;
  std::vector<GbdtModel> members(count);
  for (GbdtModel& member : members) {
    if (!member.Load(in)) return false;
  }
  members_ = std::move(members);
  return true;
}

}  // namespace stage::gbt
