#include "stage/gbt/ensemble.h"

#include <algorithm>
#include <cmath>

#include "stage/common/macros.h"
#include "stage/common/serialize.h"
#include "stage/gbt/loss.h"

namespace stage::gbt {

namespace {

// Member outputs are (mu, log sigma^2) from the Gaussian-NLL loss.
constexpr int kMemberOutputs = 2;

double ClampedVariance(double log_variance) {
  return std::exp(std::clamp(log_variance, -12.0, 12.0));
}

}  // namespace

BayesianGbtEnsemble BayesianGbtEnsemble::Train(const Dataset& data,
                                               const EnsembleConfig& config,
                                               ThreadPool* pool) {
  STAGE_CHECK(config.num_members >= 1);
  BayesianGbtEnsemble ensemble;
  ensemble.members_.resize(config.num_members);

  auto train_member = [&](size_t k) {
    GbdtConfig member_config = config.member;
    // Distinct seeds give each member its own bagging draws and its own
    // early-stopping split; that independence is what makes the variance of
    // member means a usable model-uncertainty signal.
    member_config.seed = config.member.seed + 0x9e3779b97f4a7c15ULL *
                                                  static_cast<uint64_t>(k + 1);
    const auto loss = MakeGaussianNllLoss();
    ensemble.members_[k] = GbdtModel::Train(data, *loss, member_config);
  };

  if (config.parallel_train && config.num_members > 1) {
    // Bounded, reusable workers instead of num_members raw std::threads:
    // several ensembles training at once (background retrains across
    // instances) share one pool sized to the hardware.
    ThreadPool& workers = pool != nullptr ? *pool : ThreadPool::Shared();
    workers.ParallelFor(static_cast<size_t>(config.num_members), train_member);
  } else {
    for (int k = 0; k < config.num_members; ++k) {
      train_member(static_cast<size_t>(k));
    }
  }
  return ensemble;
}

BayesianGbtEnsemble::Prediction BayesianGbtEnsemble::Predict(
    const float* row) const {
  STAGE_CHECK(!members_.empty());
  const double k = static_cast<double>(members_.size());

  Prediction out;
  double sum_mu = 0.0;
  double sum_mu_sq = 0.0;
  double sum_var = 0.0;
  double pred[kMemberOutputs];
  for (const GbdtModel& member : members_) {
    STAGE_DCHECK(member.num_outputs() == kMemberOutputs);
    member.PredictInto(row, pred);
    const double mu = pred[0];
    const double sigma_sq = ClampedVariance(pred[1]);
    sum_mu += mu;
    sum_mu_sq += mu * mu;
    sum_var += sigma_sq;
  }
  out.mean = sum_mu / k;                                       // Eq. 1.
  out.model_variance = std::max(0.0, sum_mu_sq / k - out.mean * out.mean);
  out.data_variance = sum_var / k;                             // Eq. 2.
  return out;
}

void BayesianGbtEnsemble::PredictBatch(const float* rows, size_t num_rows,
                                       size_t row_stride,
                                       std::span<Prediction> out,
                                       ThreadPool* pool) const {
  STAGE_CHECK(!members_.empty());
  STAGE_DCHECK(out.size() == num_rows);
  if (num_rows == 0) return;
  const double k = static_cast<double>(members_.size());

  // Accumulate the member moments in the output slots (mean holds the mu
  // sum, model_variance the mu^2 sum, data_variance the sigma^2 sum) and
  // finalize once. Members are visited in order, so every per-row
  // accumulation happens in exactly Predict's order.
  for (size_t r = 0; r < num_rows; ++r) out[r] = Prediction{};
  std::vector<double> scratch(num_rows * kMemberOutputs);
  for (const GbdtModel& member : members_) {
    STAGE_DCHECK(member.num_outputs() == kMemberOutputs);
    member.PredictBatch(rows, num_rows, row_stride, scratch, pool);
    for (size_t r = 0; r < num_rows; ++r) {
      const double mu = scratch[r * kMemberOutputs];
      const double sigma_sq = ClampedVariance(scratch[r * kMemberOutputs + 1]);
      out[r].mean += mu;
      out[r].model_variance += mu * mu;
      out[r].data_variance += sigma_sq;
    }
  }
  for (size_t r = 0; r < num_rows; ++r) {
    const double mean = out[r].mean / k;
    out[r].mean = mean;
    out[r].model_variance =
        std::max(0.0, out[r].model_variance / k - mean * mean);
    out[r].data_variance /= k;
  }
}

size_t BayesianGbtEnsemble::MemoryBytes() const {
  size_t bytes = 0;
  for (const GbdtModel& member : members_) bytes += member.MemoryBytes();
  return bytes;
}

std::vector<double> BayesianGbtEnsemble::FeatureImportance() const {
  STAGE_CHECK(!members_.empty());
  const size_t num_features =
      static_cast<size_t>(members_[0].num_features());
  std::vector<double> importance(num_features, 0.0);
  // One reused counts buffer instead of a temporary vector per member; the
  // result is the same mean of per-member normalized importances.
  std::vector<double> member_counts(num_features);
  for (const GbdtModel& member : members_) {
    std::fill(member_counts.begin(), member_counts.end(), 0.0);
    const double total = member.AddSplitCounts(member_counts);
    if (total <= 0.0) continue;
    for (size_t f = 0; f < num_features; ++f) {
      importance[f] += member_counts[f] / total;
    }
  }
  for (double& v : importance) v /= static_cast<double>(members_.size());
  return importance;
}

void BayesianGbtEnsemble::Save(std::ostream& out) const {
  WritePod<uint64_t>(out, members_.size());
  for (const GbdtModel& member : members_) member.Save(out);
}

bool BayesianGbtEnsemble::Load(std::istream& in) {
  uint64_t count = 0;
  if (!ReadPod(in, &count) || count == 0 || count > 1024) return false;
  std::vector<GbdtModel> members(count);
  for (GbdtModel& member : members) {
    if (!member.Load(in)) return false;
  }
  members_ = std::move(members);
  return true;
}

}  // namespace stage::gbt
