#ifndef STAGE_GBT_LOSS_H_
#define STAGE_GBT_LOSS_H_

#include <memory>
#include <vector>

namespace stage::gbt {

// A twice-differentiable training objective for Newton boosting. A loss may
// parameterize several outputs per example (the Gaussian NLL drives both a
// mean and a log-variance ensemble); the trainer fits one tree per output
// per boosting round.
class Loss {
 public:
  virtual ~Loss() = default;

  // Number of model outputs per example.
  virtual int num_outputs() const = 0;

  // Initial scores F_0 (length num_outputs) from the raw labels.
  virtual std::vector<double> InitScores(
      const std::vector<double>& labels) const = 0;

  // First/second derivatives of the per-example loss w.r.t. output `output`,
  // evaluated at predictions `preds` (row-major [n x num_outputs]).
  // grad/hess have length n. Hessians must be positive (clamp if needed).
  virtual void GradHess(const std::vector<double>& labels,
                        const std::vector<double>& preds, int output,
                        std::vector<double>* grad,
                        std::vector<double>* hess) const = 0;

  // Mean per-example loss (early-stopping / validation metric).
  virtual double Eval(const std::vector<double>& labels,
                      const std::vector<double>& preds) const = 0;
};

// 0.5 * (y - mu)^2. One output.
std::unique_ptr<Loss> MakeSquaredLoss();

// |y - mu|, the AutoWLM baseline objective (§5.1: the baseline "is trained
// with the mean absolute error"). One output; uses unit Hessians, so leaf
// values take gradient (sign) steps damped by the learning rate.
std::unique_ptr<Loss> MakeAbsoluteLoss();

// Pinball (quantile) loss for a target quantile q in (0, 1): predicting
// the q-quantile of the conditional exec-time distribution instead of its
// center. Useful for worst-case-aware scheduling (admit by the P90
// prediction rather than the mean). One output; unit Hessians.
std::unique_ptr<Loss> MakeQuantileLoss(double quantile);

// Gaussian negative log-likelihood over (mu, s = log sigma^2):
//   NLL = 0.5 * (s + (y - mu)^2 * exp(-s)) + const.
// Two outputs; this is the per-member objective of the Bayesian ensemble
// ([31], §4.3), equivalent to CatBoost's RMSEWithUncertainty.
std::unique_ptr<Loss> MakeGaussianNllLoss();

}  // namespace stage::gbt

#endif  // STAGE_GBT_LOSS_H_
