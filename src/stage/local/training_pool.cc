#include "stage/local/training_pool.h"

#include <cmath>

#include "stage/common/macros.h"

namespace stage::local {

TrainingPool::TrainingPool(const TrainingPoolConfig& config)
    : config_(config) {
  STAGE_CHECK(config.capacity > 0);
  double total_fraction = 0.0;
  for (double f : config.bucket_fractions) {
    STAGE_CHECK(f > 0.0);
    total_fraction += f;
  }
  STAGE_CHECK(std::abs(total_fraction - 1.0) < 1e-6);
  STAGE_CHECK(config.bucket_bounds_seconds[0] <
              config.bucket_bounds_seconds[1]);
}

int TrainingPool::BucketOf(double exec_seconds) const {
  if (!config_.duration_buckets) return 0;
  if (exec_seconds < config_.bucket_bounds_seconds[0]) return 0;
  if (exec_seconds < config_.bucket_bounds_seconds[1]) return 1;
  return 2;
}

size_t TrainingPool::BucketCap(int bucket) const {
  if (!config_.duration_buckets) return config_.capacity;
  const double cap = config_.bucket_fractions[bucket] *
                     static_cast<double>(config_.capacity);
  return static_cast<size_t>(cap) > 0 ? static_cast<size_t>(cap) : 1;
}

void TrainingPool::Add(const plan::PlanFeatures& features,
                       double exec_seconds) {
  STAGE_CHECK(exec_seconds >= 0.0);
  ++total_added_;
  const int bucket = BucketOf(exec_seconds);
  auto& queue = buckets_[bucket];
  queue.push_back({features, exec_seconds});
  if (!config_.unbounded && queue.size() > BucketCap(bucket)) {
    queue.pop_front();  // Evict the oldest observation in this bucket.
  }
}

size_t TrainingPool::size() const {
  return buckets_[0].size() + buckets_[1].size() + buckets_[2].size();
}

size_t TrainingPool::bucket_size(int bucket) const {
  STAGE_CHECK(bucket >= 0 && bucket < 3);
  return buckets_[bucket].size();
}

size_t TrainingPool::CountAtLeast(double exec_seconds) const {
  size_t count = 0;
  for (const auto& queue : buckets_) {
    for (const Example& example : queue) {
      count += example.exec_seconds >= exec_seconds ? 1 : 0;
    }
  }
  return count;
}

gbt::Dataset TrainingPool::BuildDataset(bool log_target) const {
  gbt::Dataset data(plan::kPlanFeatureDim);
  data.Reserve(size());
  for (const auto& queue : buckets_) {
    for (const Example& example : queue) {
      const double label =
          log_target ? std::log1p(example.exec_seconds) : example.exec_seconds;
      data.AddRow(example.features.data(), label);
    }
  }
  return data;
}

}  // namespace stage::local
