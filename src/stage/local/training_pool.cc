#include "stage/local/training_pool.h"

#include <cmath>
#include <utility>

#include "stage/common/macros.h"
#include "stage/common/serialize.h"

namespace stage::local {

TrainingPool::TrainingPool(const TrainingPoolConfig& config)
    : config_(config) {
  STAGE_CHECK(config.capacity > 0);
  double total_fraction = 0.0;
  for (double f : config.bucket_fractions) {
    STAGE_CHECK(f > 0.0);
    total_fraction += f;
  }
  STAGE_CHECK(std::abs(total_fraction - 1.0) < 1e-6);
  STAGE_CHECK(config.bucket_bounds_seconds[0] <
              config.bucket_bounds_seconds[1]);
}

int TrainingPool::BucketOf(double exec_seconds) const {
  if (!config_.duration_buckets) return 0;
  if (exec_seconds < config_.bucket_bounds_seconds[0]) return 0;
  if (exec_seconds < config_.bucket_bounds_seconds[1]) return 1;
  return 2;
}

size_t TrainingPool::BucketCap(int bucket) const {
  if (!config_.duration_buckets) return config_.capacity;
  const double cap = config_.bucket_fractions[bucket] *
                     static_cast<double>(config_.capacity);
  return static_cast<size_t>(cap) > 0 ? static_cast<size_t>(cap) : 1;
}

void TrainingPool::Add(const plan::PlanFeatures& features,
                       double exec_seconds) {
  STAGE_CHECK(exec_seconds >= 0.0);
  ++total_added_;
  const int bucket = BucketOf(exec_seconds);
  auto& queue = buckets_[bucket];
  queue.push_back({features, exec_seconds});
  if (!config_.unbounded && queue.size() > BucketCap(bucket)) {
    queue.pop_front();  // Evict the oldest observation in this bucket.
  }
}

size_t TrainingPool::size() const {
  return buckets_[0].size() + buckets_[1].size() + buckets_[2].size();
}

size_t TrainingPool::MemoryBytes() const {
  return size() * sizeof(Example);
}

size_t TrainingPool::bucket_size(int bucket) const {
  STAGE_CHECK(bucket >= 0 && bucket < 3);
  return buckets_[bucket].size();
}

size_t TrainingPool::CountAtLeast(double exec_seconds) const {
  size_t count = 0;
  for (const auto& queue : buckets_) {
    for (const Example& example : queue) {
      count += example.exec_seconds >= exec_seconds ? 1 : 0;
    }
  }
  return count;
}

namespace {
constexpr uint32_t kPoolMagic = 0x53504f4c;  // "SPOL".
constexpr uint32_t kPoolVersion = 1;
}  // namespace

void TrainingPool::Save(std::ostream& out) const {
  WriteHeader(out, kPoolMagic, kPoolVersion);
  WritePod(out, total_added_);
  for (const auto& queue : buckets_) {
    WritePod<uint64_t>(out, queue.size());
    for (const Example& example : queue) {
      out.write(reinterpret_cast<const char*>(example.features.data()),
                sizeof(float) * example.features.size());
      WritePod(out, example.exec_seconds);
    }
  }
}

bool TrainingPool::Load(std::istream& in) {
  if (!ReadHeader(in, kPoolMagic, kPoolVersion)) return false;
  uint64_t total_added = 0;
  if (!ReadPod(in, &total_added)) return false;
  constexpr uint64_t kExampleBytes =
      sizeof(float) * plan::kPlanFeatureDim + sizeof(double);
  std::array<std::deque<Example>, 3> buckets;
  for (auto& queue : buckets) {
    uint64_t count = 0;
    if (!ReadPod(in, &count)) return false;
    const std::optional<uint64_t> remaining = RemainingBytes(in);
    if (remaining && count > *remaining / kExampleBytes) return false;
    for (uint64_t i = 0; i < count; ++i) {
      Example example;
      in.read(reinterpret_cast<char*>(example.features.data()),
              sizeof(float) * example.features.size());
      if (!in || !ReadPod(in, &example.exec_seconds)) return false;
      if (!std::isfinite(example.exec_seconds) || example.exec_seconds < 0.0) {
        return false;
      }
      queue.push_back(std::move(example));
    }
  }
  buckets_ = std::move(buckets);
  total_added_ = total_added;
  return true;
}

gbt::Dataset TrainingPool::BuildDataset(bool log_target) const {
  gbt::Dataset data(plan::kPlanFeatureDim);
  data.Reserve(size());
  for (const auto& queue : buckets_) {
    for (const Example& example : queue) {
      const double label =
          log_target ? std::log1p(example.exec_seconds) : example.exec_seconds;
      data.AddRow(example.features.data(), label);
    }
  }
  return data;
}

}  // namespace stage::local
