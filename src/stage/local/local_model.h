#ifndef STAGE_LOCAL_LOCAL_MODEL_H_
#define STAGE_LOCAL_LOCAL_MODEL_H_

#include <cstddef>
#include <istream>
#include <ostream>
#include <span>

#include "stage/common/thread_pool.h"
#include "stage/gbt/ensemble.h"
#include "stage/local/training_pool.h"
#include "stage/plan/featurizer.h"

namespace stage::local {

struct LocalModelConfig {
  // K = 10 members, 200 estimators, depth 6, 20% validation split (§5.1).
  gbt::EnsembleConfig ensemble;
  // Targets are log1p(exec seconds); raw seconds under a Gaussian
  // likelihood would be dominated by the 300s+ tail and the uncertainty
  // would not be scale-free.
  bool log_target = true;
  // The paper's stated future work for closing Table 4's gap: "adding an
  // XGBoost model trained with absolute error into the Bayesian ensemble"
  // (§5.4). When enabled, one extra GBT member is trained with the MAE
  // objective and its output is blended into the point prediction (the
  // uncertainty decomposition still comes from the NLL ensemble alone).
  bool include_mae_member = false;
  double mae_member_weight = 0.5;  // Blend weight in target space.
};

// Stage 2 of the Stage predictor (§4.3): the instance-optimized "fuzzy
// cache" — a Bayesian ensemble of GBT models over the 33-dim plan vector
// with a calibrated prediction uncertainty (Eq. 1-2).
class LocalModel {
 public:
  explicit LocalModel(const LocalModelConfig& config);

  struct Output {
    double exec_seconds = 0.0;   // Point prediction in seconds.
    // Ensemble mean/uncertainty in target (log) space. log_std is the
    // routing signal: a multiplicative error bar on the prediction.
    double mean_target = 0.0;
    double model_variance = 0.0;
    double data_variance = 0.0;
    bool log_space = true;       // Target space of the fields above.
    double total_variance() const { return model_variance + data_variance; }
    double log_std() const;

    // Two-sided confidence interval on the exec-time in seconds, from the
    // Gaussian predictive distribution in target space. Downstream tasks
    // (materialized-view advisor, cluster scaling) consume these bounds
    // rather than the point estimate (paper §2.1, §3 "High-confidence
    // predictions"). `confidence` in (0, 1), e.g. 0.9.
    struct Interval {
      double lo_seconds = 0.0;
      double hi_seconds = 0.0;
    };
    Interval ConfidenceInterval(double confidence) const;
  };

  // (Re)trains the ensemble from the pool. No-op when the pool is empty.
  void Train(const TrainingPool& pool);

  bool trained() const { return trained_; }
  int trainings() const { return trainings_; }

  // Requires trained().
  Output Predict(const plan::PlanFeatures& features) const;

  // Batched form over contiguous feature rows; out.size() must equal
  // rows.size(). Runs the ensemble's blocked FlatForest kernel across the
  // whole batch (on `pool` when non-null) and produces bit-for-bit the
  // same outputs as calling Predict per row.
  void PredictBatch(std::span<const plan::PlanFeatures> rows,
                    std::span<Output> out, ThreadPool* pool = nullptr) const;

  size_t MemoryBytes() const { return ensemble_.MemoryBytes(); }

  // Checkpointing of a trained local model (ensemble + target space).
  void Save(std::ostream& out) const;
  bool Load(std::istream& in);

 private:
  // Shared tail of Predict/PredictBatch: applies the optional MAE blend and
  // maps the target-space mean back to seconds. `mae_prediction` is ignored
  // unless include_mae_member is set.
  Output FinalizeOutput(const gbt::BayesianGbtEnsemble::Prediction& pred,
                        double mae_prediction) const;

  LocalModelConfig config_;
  gbt::BayesianGbtEnsemble ensemble_;
  gbt::GbdtModel mae_member_;  // Only used when include_mae_member.
  bool trained_ = false;
  int trainings_ = 0;
};

}  // namespace stage::local

#endif  // STAGE_LOCAL_LOCAL_MODEL_H_
