#ifndef STAGE_LOCAL_TRAINING_POOL_H_
#define STAGE_LOCAL_TRAINING_POOL_H_

#include <array>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <vector>

#include "stage/gbt/dataset.h"
#include "stage/plan/featurizer.h"

namespace stage::local {

// Pool knobs (§4.3 "Local model training optimization"). The booleans exist
// for the ablation benches; production behaviour is all-on.
struct TrainingPoolConfig {
  size_t capacity = 2000;
  // Duration-diversity buckets over observed exec-time with per-bucket
  // caps, so short queries cannot crowd out the (rarer, more important)
  // long ones. Paper example buckets: 0-10s, 10-60s, 60s+.
  std::array<double, 2> bucket_bounds_seconds = {10.0, 60.0};
  std::array<double, 3> bucket_fractions = {0.6, 0.25, 0.15};
  bool duration_buckets = true;
  // Deduplication of repeats is driven by the exec-time cache: the caller
  // only Adds queries that MISSED the cache. This flag is only consulted by
  // ablation code paths that bypass that protocol.
  bool unbounded = false;  // Ablation: no eviction at all (issue 1).
};

// The bounded, duration-diverse pool of executed queries that feeds the
// local model. Eviction is oldest-first within each duration bucket.
class TrainingPool {
 public:
  explicit TrainingPool(const TrainingPoolConfig& config);

  // Records one executed query (feature vector + observed exec-time).
  void Add(const plan::PlanFeatures& features, double exec_seconds);

  size_t size() const;
  size_t bucket_size(int bucket) const;
  // Number of pooled examples with exec-time >= threshold (diagnostics).
  size_t CountAtLeast(double exec_seconds) const;

  // Materializes a GBT dataset; `labels` are produced by applying
  // log-space compression when `log_target` is true (log1p seconds).
  gbt::Dataset BuildDataset(bool log_target = true) const;

  // Total observations ever offered (including later-evicted ones).
  uint64_t total_added() const { return total_added_; }

  // Approximate heap footprint of the pooled examples (fleet eviction
  // accounting). Deque block overhead is ignored; the dominant term is the
  // per-example feature vector.
  size_t MemoryBytes() const;

  // Checkpointing: writes every bucket's examples in arrival order plus
  // total_added_, so a restored pool builds the identical dataset and
  // continues the identical oldest-first eviction. Load is transactional —
  // on a malformed stream it returns false and leaves the pool untouched.
  void Save(std::ostream& out) const;
  bool Load(std::istream& in);

 private:
  struct Example {
    plan::PlanFeatures features;
    double exec_seconds;
  };

  int BucketOf(double exec_seconds) const;
  size_t BucketCap(int bucket) const;

  TrainingPoolConfig config_;
  std::array<std::deque<Example>, 3> buckets_;
  uint64_t total_added_ = 0;
};

}  // namespace stage::local

#endif  // STAGE_LOCAL_TRAINING_POOL_H_
