#include "stage/local/local_model.h"

#include <algorithm>
#include <cmath>

#include "stage/common/macros.h"
#include "stage/common/serialize.h"
#include "stage/common/stats.h"
#include "stage/gbt/loss.h"

namespace stage::local {

LocalModel::LocalModel(const LocalModelConfig& config) : config_(config) {}

double LocalModel::Output::log_std() const {
  return std::sqrt(std::max(0.0, total_variance()));
}

LocalModel::Output::Interval LocalModel::Output::ConfidenceInterval(
    double confidence) const {
  STAGE_CHECK(confidence > 0.0 && confidence < 1.0);
  const double z = NormalQuantile(0.5 + confidence / 2.0);
  const double spread = z * std::sqrt(std::max(0.0, total_variance()));
  Interval interval;
  if (log_space) {
    interval.lo_seconds =
        std::max(0.0, std::expm1(std::clamp(mean_target - spread, 0.0, 14.0)));
    interval.hi_seconds =
        std::max(0.0, std::expm1(std::clamp(mean_target + spread, 0.0, 14.0)));
  } else {
    interval.lo_seconds = std::max(0.0, mean_target - spread);
    interval.hi_seconds = std::max(0.0, mean_target + spread);
  }
  return interval;
}

void LocalModel::Train(const TrainingPool& pool) {
  if (pool.size() == 0) return;
  const gbt::Dataset data = pool.BuildDataset(config_.log_target);
  ensemble_ = gbt::BayesianGbtEnsemble::Train(data, config_.ensemble);
  if (config_.include_mae_member) {
    const auto mae_loss = gbt::MakeAbsoluteLoss();
    gbt::GbdtConfig mae_config = config_.ensemble.member;
    mae_config.seed ^= 0xABCDEF12345ULL;
    mae_member_ = gbt::GbdtModel::Train(data, *mae_loss, mae_config);
  }
  trained_ = true;
  ++trainings_;
}

LocalModel::Output LocalModel::FinalizeOutput(
    const gbt::BayesianGbtEnsemble::Prediction& pred,
    double mae_prediction) const {
  Output out;
  out.mean_target = pred.mean;
  if (config_.include_mae_member) {
    // Blend the MAE-trained member's point estimate into the mean; the
    // uncertainty decomposition stays with the NLL ensemble (Eq. 2).
    const double w = config_.mae_member_weight;
    out.mean_target = (1.0 - w) * pred.mean + w * mae_prediction;
  }
  out.model_variance = pred.model_variance;
  out.data_variance = pred.data_variance;
  out.log_space = config_.log_target;
  if (config_.log_target) {
    out.exec_seconds =
        std::max(0.0, std::expm1(std::clamp(out.mean_target, 0.0, 14.0)));
  } else {
    out.exec_seconds = std::max(0.0, out.mean_target);
  }
  return out;
}

LocalModel::Output LocalModel::Predict(
    const plan::PlanFeatures& features) const {
  STAGE_CHECK(trained_);
  const gbt::BayesianGbtEnsemble::Prediction pred =
      ensemble_.Predict(features.data());
  const double mae_prediction =
      config_.include_mae_member ? mae_member_.PredictScalar(features.data())
                                 : 0.0;
  return FinalizeOutput(pred, mae_prediction);
}

void LocalModel::PredictBatch(std::span<const plan::PlanFeatures> rows,
                              std::span<Output> out, ThreadPool* pool) const {
  STAGE_CHECK(trained_);
  STAGE_CHECK(out.size() == rows.size());
  if (rows.empty()) return;
  const size_t n = rows.size();
  // std::array rows are contiguous: stride is exactly the feature dim.
  const float* features = rows[0].data();
  std::vector<gbt::BayesianGbtEnsemble::Prediction> preds(n);
  ensemble_.PredictBatch(features, n, plan::kPlanFeatureDim, preds, pool);
  std::vector<double> mae_predictions;
  if (config_.include_mae_member) {
    // Single-output model: the batch kernel walks the same trees in the
    // same order as PredictScalar, so the blend input is identical.
    mae_predictions.resize(n);
    mae_member_.PredictBatch(features, n, plan::kPlanFeatureDim,
                             mae_predictions, pool);
  }
  for (size_t r = 0; r < n; ++r) {
    out[r] = FinalizeOutput(
        preds[r], config_.include_mae_member ? mae_predictions[r] : 0.0);
  }
}

namespace {
constexpr uint32_t kLocalMagic = 0x534c434c;  // "SLCL".
// v1 never serialized the MAE member, so a v1 file of a model trained with
// include_mae_member=true silently blended a default-constructed GbdtModel
// into every prediction after load. v2 persists the member (and its blend
// weight); v1 files remain loadable with the member disabled.
constexpr uint32_t kLocalVersion = 2;
}  // namespace

void LocalModel::Save(std::ostream& out) const {
  STAGE_CHECK_MSG(trained_, "cannot save an untrained local model");
  WriteHeader(out, kLocalMagic, kLocalVersion);
  WritePod<uint8_t>(out, config_.log_target ? 1 : 0);
  WritePod<uint8_t>(out, config_.include_mae_member ? 1 : 0);
  WritePod(out, config_.mae_member_weight);
  ensemble_.Save(out);
  if (config_.include_mae_member) mae_member_.Save(out);
}

bool LocalModel::Load(std::istream& in) {
  uint32_t version = 0;
  if (!ReadHeaderVersion(in, kLocalMagic, &version)) return false;
  if (version < 1 || version > kLocalVersion) return false;
  uint8_t log_target = 0;
  if (!ReadPod(in, &log_target)) return false;
  uint8_t include_mae = 0;
  double mae_weight = config_.mae_member_weight;
  if (version >= 2) {
    if (!ReadPod(in, &include_mae)) return false;
    if (!ReadPod(in, &mae_weight)) return false;
    if (!(mae_weight >= 0.0 && mae_weight <= 1.0)) return false;
  }
  // Load into locals and commit only on full success: a failed Load must
  // never leave a half-replaced (yet still trained()) model behind.
  gbt::BayesianGbtEnsemble ensemble;
  if (!ensemble.Load(in)) return false;
  gbt::GbdtModel mae_member;
  if (include_mae != 0 && !mae_member.Load(in)) return false;
  ensemble_ = std::move(ensemble);
  mae_member_ = std::move(mae_member);
  config_.log_target = log_target != 0;
  config_.include_mae_member = include_mae != 0;
  config_.mae_member_weight = mae_weight;
  trained_ = true;
  return true;
}

}  // namespace stage::local
