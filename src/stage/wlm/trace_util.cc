#include "stage/wlm/trace_util.h"

#include <algorithm>

#include "stage/common/macros.h"

namespace stage::wlm {

double TraceUtilization(const std::vector<fleet::QueryEvent>& trace,
                        int total_slots) {
  STAGE_CHECK(total_slots > 0);
  if (trace.size() < 2) return 0.0;
  double total_exec = 0.0;
  for (const fleet::QueryEvent& event : trace) {
    total_exec += event.exec_seconds;
  }
  const double span_seconds =
      static_cast<double>(trace.back().arrival_ms - trace.front().arrival_ms) /
      1000.0;
  if (span_seconds <= 0.0) return 1e9;
  return total_exec / (span_seconds * total_slots);
}

std::vector<fleet::QueryEvent> CompressArrivals(
    const std::vector<fleet::QueryEvent>& trace, double factor) {
  STAGE_CHECK(factor > 0.0);
  std::vector<fleet::QueryEvent> compressed = trace;
  for (fleet::QueryEvent& event : compressed) {
    event.arrival_ms = static_cast<int64_t>(
        static_cast<double>(event.arrival_ms) / factor);
  }
  return compressed;
}

std::vector<fleet::QueryEvent> CompressToUtilization(
    const std::vector<fleet::QueryEvent>& trace, int total_slots,
    double target_utilization) {
  STAGE_CHECK(target_utilization > 0.0);
  const double current = TraceUtilization(trace, total_slots);
  // Degenerate traces (fewer than 2 queries, or zero total exec-time)
  // report utilization 0; dividing by it would hand CompressArrivals an
  // infinite factor and collapse every arrival to t=0. There is no
  // timeline to compress — return them unchanged.
  if (current <= 0.0) return trace;
  if (current >= target_utilization) return trace;
  return CompressArrivals(trace, target_utilization / current);
}

}  // namespace stage::wlm
