#ifndef STAGE_WLM_CLOSED_LOOP_H_
#define STAGE_WLM_CLOSED_LOOP_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "stage/core/predictor.h"
#include "stage/fleet/workload.h"
#include "stage/obs/metrics.h"
#include "stage/wlm/workload_manager.h"

namespace stage::wlm {

// Knobs of one closed-loop WLM simulation run.
struct ClosedLoopConfig {
  WlmConfig wlm;

  // Per-query latency SLO: a query's deadline is slo_factor x its true
  // exec-time (a wait budget proportional to the work, the shape AutoWLM's
  // queueing targets take — a 100 ms dashboard query blowing through 10x
  // its runtime is a violation; an hour-long ETL waiting a minute is not).
  // <= 0 disables SLO accounting.
  double slo_factor = 10.0;

  // Optional observability sink. When set, the run maintains
  //   <prefix>admissions_total, <prefix>completions_total,
  //   <prefix>scaling_offloads_total, <prefix>slo_misses_total (counters),
  //   <prefix>queue_depth, <prefix>max_queue_depth (gauges, in simulated
  //   event time).
  // Counters are owned registry metrics, so repeated runs against one
  // registry accumulate.
  obs::MetricsRegistry* metrics = nullptr;
  std::string metrics_prefix = "wlm_";
};

// Outcome of a closed-loop run: the queueing result plus what the live
// predictor said at each admission and how often the SLO was blown.
struct ClosedLoopResult {
  WlmResult wlm;

  // Per-query, in trace order: the prediction sampled at admission (as the
  // predictor reported it, before the engine's negative-clamp) and the
  // stage that served it.
  std::vector<double> predicted_seconds;
  std::vector<core::PredictionSource> sources;
  // Admission counts per stage: the routing-source mix. All zero under the
  // oracle (no predictor consulted).
  std::array<uint64_t, core::kNumPredictionSources> source_counts{};

  uint64_t slo_violations = 0;
  // Largest number of queries simultaneously queued (admitted, not yet
  // started) at any event instant.
  uint64_t max_queue_depth = 0;
  double slo_factor = 0.0;  // Echoed from the config.

  // slo_violations / completed queries; 0 on an empty run or when SLO
  // accounting is disabled.
  double SloViolationRate() const;
};

// Closed-loop WLM simulation (ROADMAP item 2; the paper's §1/§5.2 claim
// made operational): `predictor` is consulted live inside the event loop —
// Predict at each admission decides the short/long split and the SJF key,
// and each completion calls Observe with the measured exec-time, so the
// exec-time cache and local model adapt *during* the run. Queries admitted
// after a completion see the updated predictor; that mid-run adaptation is
// exactly what the open-loop SimulateWlm (predictions precomputed on an
// arrival-order replay) cannot express.
//
// A null `predictor` runs the oracle policy: scheduling sees the true
// exec-times (source counts stay zero). With a predictor that never learns
// from Observe, the result is bit-for-bit identical to SimulateWlm over
// the same per-admission predictions — both run the same engine.
//
// Uses the predictor's sequential interface (Predict then Observe from one
// thread), matching StagePredictor / AutoWlmPredictor / PredictionService.
// For deterministic runs, configure services with inline retrain and one
// cache shard.
ClosedLoopResult SimulateClosedLoop(
    const std::vector<fleet::QueryEvent>& trace,
    core::ExecTimePredictor* predictor, const ClosedLoopConfig& config);

}  // namespace stage::wlm

#endif  // STAGE_WLM_CLOSED_LOOP_H_
