#include "stage/wlm/sim_engine.h"

#include <cmath>
#include <deque>
#include <limits>
#include <queue>
#include <utility>

#include "stage/common/macros.h"

namespace stage::wlm {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

enum class QueryState : uint8_t {
  kQueuedShort,
  kQueuedLong,
  kQueuedScaling,
  kRunning,
  kDone,
};

enum Pool { kShort = 0, kLong = 1, kScaling = 2, kNumPools = 3 };

struct Simulation {
  Simulation(const std::vector<fleet::QueryEvent>& trace_in,
             const WlmConfig& config_in, const SimHooks& hooks_in)
      : trace(trace_in), config(config_in), hooks(hooks_in) {}

  const std::vector<fleet::QueryEvent>& trace;
  const WlmConfig& config;
  const SimHooks& hooks;
  WlmResult result;

  std::vector<QueryState> state;
  std::vector<int8_t> run_pool;  // Pool each running query occupies.
  std::vector<double> arrival;
  // Sanitized admission-time prediction per query (the SJF key).
  std::vector<double> predicted;
  int busy[kNumPools] = {0, 0, 0};

  // Min-heaps on (predicted exec-time, arrival order): shortest-job-first.
  std::priority_queue<std::pair<double, int>,
                      std::vector<std::pair<double, int>>,
                      std::greater<>>
      short_queue_sjf;
  std::deque<int> short_queue_fifo;
  std::priority_queue<std::pair<double, int>,
                      std::vector<std::pair<double, int>>,
                      std::greater<>>
      long_queue_sjf;
  std::deque<int> long_queue_fifo;
  // The scaling cluster applies the same shortest-job-first policy as the
  // long queue: offload exists to rescue queries stuck behind a clog, so
  // rescued short-predicted queries must not re-queue behind off-loaded
  // monsters.
  std::priority_queue<std::pair<double, int>,
                      std::vector<std::pair<double, int>>,
                      std::greater<>>
      scaling_queue;

  // Min-heap of (completion time, query).
  std::priority_queue<std::pair<double, int>,
                      std::vector<std::pair<double, int>>, std::greater<>>
      completions;
  // Min-heap of (scaling deadline, query).
  std::priority_queue<std::pair<double, int>,
                      std::vector<std::pair<double, int>>, std::greater<>>
      deadlines;

  int PoolSlots(int pool) const {
    switch (pool) {
      case kShort: return config.short_slots;
      case kLong: return config.long_slots;
      case kScaling: return config.scaling_slots;
      default: STAGE_CHECK_MSG(false, "invalid pool"); return 0;
    }
  }

  void Start(int query, int pool, double now) {
    state[query] = QueryState::kRunning;
    run_pool[query] = static_cast<int8_t>(pool);
    result.pool[query] = static_cast<WlmResult::Pool>(pool);
    ++busy[pool];
    const double wait = now - arrival[query];
    STAGE_DCHECK(wait >= -1e-9);
    result.wait_seconds[query] = wait < 0.0 ? 0.0 : wait;
    completions.emplace(now + trace[query].exec_seconds, query);
    if (hooks.on_start) hooks.on_start(query, pool, now);
  }

  void Dispatch(int pool, double now) {
    while (busy[pool] < PoolSlots(pool)) {
      int query = -1;
      if (pool == kShort) {
        if (config.sjf_short_queue) {
          while (!short_queue_sjf.empty()) {
            const int candidate = short_queue_sjf.top().second;
            short_queue_sjf.pop();
            if (state[candidate] == QueryState::kQueuedShort) {
              query = candidate;
              break;
            }
          }
        } else {
          while (!short_queue_fifo.empty()) {
            const int candidate = short_queue_fifo.front();
            short_queue_fifo.pop_front();
            if (state[candidate] == QueryState::kQueuedShort) {
              query = candidate;
              break;
            }
          }
        }
      } else if (pool == kLong) {
        if (config.sjf_long_queue) {
          while (!long_queue_sjf.empty()) {
            const int candidate = long_queue_sjf.top().second;
            long_queue_sjf.pop();
            if (state[candidate] == QueryState::kQueuedLong) {
              query = candidate;
              break;
            }
          }
        } else {
          while (!long_queue_fifo.empty()) {
            const int candidate = long_queue_fifo.front();
            long_queue_fifo.pop_front();
            if (state[candidate] == QueryState::kQueuedLong) {
              query = candidate;
              break;
            }
          }
        }
      } else {
        while (!scaling_queue.empty()) {
          const int candidate = scaling_queue.top().second;
          scaling_queue.pop();
          if (state[candidate] == QueryState::kQueuedScaling) {
            query = candidate;
            break;
          }
        }
      }
      if (query < 0) return;
      Start(query, pool, now);
    }
  }

  void DispatchAll(double now) {
    Dispatch(kShort, now);
    Dispatch(kLong, now);
    if (config.enable_concurrency_scaling) Dispatch(kScaling, now);
  }

  void Admit(int query, double now) {
    double seconds = hooks.predict(query, now);
    // NaN never compares, so a NaN key silently breaks the SJF heap's
    // ordering invariant (and `NaN < threshold` would misroute the query);
    // fail loudly instead. Negative predictions carry no scheduling
    // meaning beyond "very short" — clamp to 0.
    STAGE_CHECK_MSG(!std::isnan(seconds), "NaN predicted exec-time");
    if (seconds < 0.0) seconds = 0.0;
    predicted[query] = seconds;
    if (seconds < config.short_threshold_seconds) {
      state[query] = QueryState::kQueuedShort;
      if (config.sjf_short_queue) {
        short_queue_sjf.emplace(seconds, query);
      } else {
        short_queue_fifo.push_back(query);
      }
      ++result.short_queue_admissions;
    } else {
      state[query] = QueryState::kQueuedLong;
      if (config.sjf_long_queue) {
        long_queue_sjf.emplace(seconds, query);
      } else {
        long_queue_fifo.push_back(query);
      }
      ++result.long_queue_admissions;
    }
    if (config.enable_concurrency_scaling) {
      deadlines.emplace(now + config.scaling_wait_threshold_seconds, query);
    }
    DispatchAll(now);
  }

  void Run() {
    const size_t n = trace.size();
    size_t next_arrival = 0;
    size_t completed = 0;
    while (completed < n) {
      const double t_arrival =
          next_arrival < n ? arrival[next_arrival] : kInf;
      const double t_completion =
          completions.empty() ? kInf : completions.top().first;
      const double t_deadline =
          deadlines.empty() ? kInf : deadlines.top().first;

      if (t_completion <= t_arrival && t_completion <= t_deadline) {
        const auto [now, query] = completions.top();
        completions.pop();
        state[query] = QueryState::kDone;
        result.latency_seconds[query] = now - arrival[query];
        ++completed;
        --busy[run_pool[query]];
        if (hooks.on_complete) hooks.on_complete(query, now);
        DispatchAll(now);
      } else if (t_deadline < t_arrival) {
        const auto [now, query] = deadlines.top();
        deadlines.pop();
        if (state[query] == QueryState::kQueuedShort ||
            state[query] == QueryState::kQueuedLong) {
          state[query] = QueryState::kQueuedScaling;
          scaling_queue.emplace(predicted[query], query);
          ++result.scaling_offloads;
          Dispatch(kScaling, now);
        }
      } else {
        STAGE_CHECK(next_arrival < n);
        Admit(static_cast<int>(next_arrival), t_arrival);
        ++next_arrival;
      }
    }
  }
};

}  // namespace

WlmResult RunWlmSimulation(const std::vector<fleet::QueryEvent>& trace,
                           const WlmConfig& config, const SimHooks& hooks) {
  STAGE_CHECK(hooks.predict != nullptr);
  STAGE_CHECK(config.short_slots > 0 && config.long_slots > 0);
  STAGE_CHECK(!config.enable_concurrency_scaling || config.scaling_slots > 0);

  Simulation sim(trace, config, hooks);
  const size_t n = trace.size();
  sim.result.latency_seconds.assign(n, 0.0);
  sim.result.wait_seconds.assign(n, 0.0);
  sim.result.pool.assign(n, WlmResult::Pool::kShort);
  sim.state.assign(n, QueryState::kQueuedShort);
  sim.run_pool.assign(n, -1);
  sim.predicted.assign(n, 0.0);
  sim.arrival.resize(n);
  for (size_t i = 0; i < n; ++i) {
    sim.arrival[i] = static_cast<double>(trace[i].arrival_ms) / 1000.0;
    if (i > 0) STAGE_CHECK(trace[i].arrival_ms >= trace[i - 1].arrival_ms);
  }
  sim.Run();
  return sim.result;
}

}  // namespace stage::wlm
