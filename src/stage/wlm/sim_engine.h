#ifndef STAGE_WLM_SIM_ENGINE_H_
#define STAGE_WLM_SIM_ENGINE_H_

#include <functional>
#include <vector>

#include "stage/fleet/workload.h"
#include "stage/wlm/workload_manager.h"

namespace stage::wlm {

// Hooks that parameterize one event-driven WLM simulation run. This engine
// is the single scheduling core shared by the open-loop SimulateWlm
// (predictions precomputed before the run) and the closed-loop simulator
// (predictions sampled from a live predictor at admission, observed back on
// completion) — sharing it is what makes "closed loop with a frozen
// predictor == open loop, bit for bit" a structural property instead of a
// test hope.
struct SimHooks {
  // Required. Called exactly once per query, at its admission instant, in
  // arrival order. Returns the predicted exec-time that drives queue
  // routing (short/long split) and SJF ordering. The engine sanitizes the
  // returned value: NaN is a fatal error (a NaN SJF key would break the
  // priority queue's strict-weak-ordering invariant and silently corrupt
  // dispatch order), negative values clamp to 0.
  std::function<double(int query, double now)> predict;

  // Optional. Called when a query leaves its queue and starts executing on
  // `pool` (a WlmResult::Pool value), after the slot is taken and the wait
  // recorded.
  std::function<void(int query, int pool, double now)> on_start;

  // Optional. Called when a query completes — after its latency is
  // recorded and its slot freed, before the freed slot is re-dispatched.
  // This is the closed-loop hook point where the measured exec-time is
  // observed back into the predictor, so queries admitted later in
  // simulated time see the updated model.
  std::function<void(int query, double now)> on_complete;
};

// Runs the event-driven WLM queue simulation (§5.2 discipline: dedicated
// FIFO short pool, SJF long pool, optional concurrency-scaling offload)
// over `trace`, which must be sorted by arrival. Scheduling decisions use
// only hook-provided predictions; execution durations always come from the
// logged exec_seconds (predictions change queueing, never work, exactly as
// in the paper's counterfactual replay).
WlmResult RunWlmSimulation(const std::vector<fleet::QueryEvent>& trace,
                           const WlmConfig& config, const SimHooks& hooks);

}  // namespace stage::wlm

#endif  // STAGE_WLM_SIM_ENGINE_H_
