#ifndef STAGE_WLM_TRACE_UTIL_H_
#define STAGE_WLM_TRACE_UTIL_H_

#include <vector>

#include "stage/fleet/workload.h"

namespace stage::wlm {

// Offered load of a trace: total execution seconds divided by
// (trace span * total_slots). Values near or above 1 mean heavy queueing.
double TraceUtilization(const std::vector<fleet::QueryEvent>& trace,
                        int total_slots);

// Returns a copy of the trace with arrival times divided by `factor`
// (factor > 1 compresses the timeline and raises contention). Execution
// times are untouched.
std::vector<fleet::QueryEvent> CompressArrivals(
    const std::vector<fleet::QueryEvent>& trace, double factor);

// Compresses the trace so its utilization on `total_slots` slots hits
// `target_utilization` (no-op if it is already at least that loaded).
// Degenerate traces — fewer than 2 queries, or zero total exec-time, i.e.
// TraceUtilization() == 0 — are returned unchanged: there is no timeline
// to compress.
std::vector<fleet::QueryEvent> CompressToUtilization(
    const std::vector<fleet::QueryEvent>& trace, int total_slots,
    double target_utilization);

}  // namespace stage::wlm

#endif  // STAGE_WLM_TRACE_UTIL_H_
