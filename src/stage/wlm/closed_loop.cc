#include "stage/wlm/closed_loop.h"

#include <algorithm>

#include "stage/common/macros.h"
#include "stage/wlm/sim_engine.h"

namespace stage::wlm {

double ClosedLoopResult::SloViolationRate() const {
  if (wlm.latency_seconds.empty()) return 0.0;
  return static_cast<double>(slo_violations) /
         static_cast<double>(wlm.latency_seconds.size());
}

ClosedLoopResult SimulateClosedLoop(
    const std::vector<fleet::QueryEvent>& trace,
    core::ExecTimePredictor* predictor, const ClosedLoopConfig& config) {
  const size_t n = trace.size();
  ClosedLoopResult result;
  result.slo_factor = config.slo_factor;
  result.predicted_seconds.assign(n, 0.0);
  result.sources.assign(n, core::PredictionSource::kDefault);

  // Featurize once: the same context object is used for the admission-time
  // Predict and the completion-time Observe, exactly like the production
  // predict/execute/observe flow.
  std::vector<core::QueryContext> contexts;
  contexts.reserve(n);
  for (const fleet::QueryEvent& event : trace) {
    contexts.push_back(core::MakeQueryContext(
        event.plan, event.concurrent_queries,
        static_cast<uint64_t>(event.arrival_ms)));
  }

  obs::Counter* admissions = nullptr;
  obs::Counter* completions = nullptr;
  obs::Counter* offloads = nullptr;
  obs::Counter* slo_misses = nullptr;
  obs::Gauge* queue_depth = nullptr;
  obs::Gauge* max_depth_gauge = nullptr;
  if (config.metrics != nullptr) {
    const std::string& p = config.metrics_prefix;
    admissions = &config.metrics->GetCounter(p + "admissions_total");
    completions = &config.metrics->GetCounter(p + "completions_total");
    offloads = &config.metrics->GetCounter(p + "scaling_offloads_total");
    slo_misses = &config.metrics->GetCounter(p + "slo_misses_total");
    queue_depth = &config.metrics->GetGauge(p + "queue_depth");
    max_depth_gauge = &config.metrics->GetGauge(p + "max_queue_depth");
  }

  uint64_t admitted = 0;
  uint64_t started = 0;
  const auto update_depth = [&] {
    const uint64_t depth = admitted - started;
    result.max_queue_depth = std::max(result.max_queue_depth, depth);
    if (queue_depth != nullptr) {
      queue_depth->Set(static_cast<double>(depth));
    }
  };

  SimHooks hooks;
  hooks.predict = [&](int query, double /*now*/) {
    double seconds;
    if (predictor == nullptr) {
      seconds = trace[query].exec_seconds;  // Oracle: schedule on truth.
    } else {
      const core::Prediction prediction = predictor->Predict(contexts[query]);
      seconds = prediction.seconds;
      result.sources[query] = prediction.source;
      ++result.source_counts[static_cast<int>(prediction.source)];
    }
    result.predicted_seconds[query] = seconds;
    ++admitted;
    if (admissions != nullptr) admissions->Increment();
    update_depth();
    return seconds;
  };
  hooks.on_start = [&](int /*query*/, int /*pool*/, double /*now*/) {
    ++started;
    update_depth();
  };
  hooks.on_complete = [&](int query, double now) {
    // Observe-on-completion: the cache and local model see the measured
    // exec-time the instant the query finishes, mid-run.
    if (predictor != nullptr) {
      predictor->Observe(contexts[query], trace[query].exec_seconds);
    }
    if (completions != nullptr) completions->Increment();
    if (config.slo_factor > 0.0) {
      const double latency =
          now - static_cast<double>(trace[query].arrival_ms) / 1000.0;
      if (latency > config.slo_factor * trace[query].exec_seconds) {
        ++result.slo_violations;
        if (slo_misses != nullptr) slo_misses->Increment();
      }
    }
  };

  result.wlm = RunWlmSimulation(trace, config.wlm, hooks);
  STAGE_CHECK(admitted == n && started == n);

  if (offloads != nullptr && result.wlm.scaling_offloads > 0) {
    offloads->Increment(static_cast<uint64_t>(result.wlm.scaling_offloads));
  }
  if (max_depth_gauge != nullptr) {
    max_depth_gauge->Set(static_cast<double>(result.max_queue_depth));
  }
  return result;
}

}  // namespace stage::wlm
