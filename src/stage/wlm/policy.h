#ifndef STAGE_WLM_POLICY_H_
#define STAGE_WLM_POLICY_H_

#include <string_view>
#include <vector>

#include "stage/core/autowlm.h"
#include "stage/core/stage_predictor.h"
#include "stage/fleet/workload.h"
#include "stage/global/global_model.h"
#include "stage/wlm/closed_loop.h"

namespace stage::wlm {

// The policies the closed-loop benchmark compares end-to-end (§1, §5.2:
// better predictions -> better scheduling, as a measured property):
//  * kOracle    — scheduling sees the true exec-times; the lower bound any
//                 predictor chases.
//  * kStage     — the Stage stack (exec-time cache -> local model ->
//                 optional global model) driven live in the loop, observing
//                 every completion: the paper's deployment shape.
//  * kAutoWlm   — the prior single-GBT AutoWLM predictor ([50]) driven live
//                 in the same loop: the baseline.
//  * kOpenLoop  — the pre-closed-loop pipeline: Stage predictions
//                 precomputed on an arrival-order replay, then fed to the
//                 simulator as a fixed vector (predictor never adapts to
//                 completion order or queueing). The ablation that isolates
//                 what closing the loop buys.
enum class WlmPolicy { kOracle = 0, kStage, kAutoWlm, kOpenLoop };

inline constexpr int kNumWlmPolicies = 4;

std::string_view WlmPolicyName(WlmPolicy policy);

// Parses "oracle" / "stage" / "autowlm" / "open_loop"; false on anything
// else.
bool ParseWlmPolicy(std::string_view name, WlmPolicy* out);

// Everything needed to build a policy's predictor and run it.
struct PolicyRunConfig {
  ClosedLoopConfig loop;
  // Predictor stacks are built fresh per run (each run is one instance's
  // cold-start-to-warm trajectory, like the paper's per-instance replays).
  core::StagePredictorConfig stage;    // kStage / kOpenLoop.
  core::AutoWlmConfig autowlm;         // kAutoWlm.
  // Optional borrowed collaborators for the Stage policies.
  const global::GlobalModel* global_model = nullptr;
  const fleet::InstanceConfig* instance = nullptr;
};

// Runs `policy` over `trace` and returns the closed-loop result. Stage
// policies run deterministically (inline retrain, single cache shard), so
// repeated runs are bit-for-bit reproducible.
ClosedLoopResult RunWlmPolicy(const std::vector<fleet::QueryEvent>& trace,
                              WlmPolicy policy,
                              const PolicyRunConfig& config);

}  // namespace stage::wlm

#endif  // STAGE_WLM_POLICY_H_
