#ifndef STAGE_WLM_WORKLOAD_MANAGER_H_
#define STAGE_WLM_WORKLOAD_MANAGER_H_

#include <vector>

#include "stage/fleet/workload.h"

namespace stage::wlm {

// Queue discipline of the simulated Redshift workload manager ([50]):
// short-predicted queries get a dedicated slot pool, FIFO by default;
// everything else enters the long queue ordered by predicted exec-time
// (shortest-job-first). Optionally, long-waiting queries burst onto a
// concurrency-scaling cluster.
struct WlmConfig {
  int short_slots = 2;
  int long_slots = 3;
  // Predicted exec-time below this routes a query to the short queue.
  double short_threshold_seconds = 5.0;
  bool sjf_long_queue = true;
  // Order the short queue by predicted exec-time as well. Redshift's SQA
  // queue is FIFO, which is fine when predictions are noisy; with an
  // accurate predictor SJF lets the accuracy pay off in the pool where
  // most queries live. Off by default to preserve the paper's discipline.
  bool sjf_short_queue = false;

  bool enable_concurrency_scaling = false;
  // A queued query that has waited this long is off-loaded to a scaling
  // cluster (modeled as an extra slot pool of `scaling_slots`).
  double scaling_wait_threshold_seconds = 120.0;
  int scaling_slots = 4;
};

// Per-trace outcome of a WLM simulation.
struct WlmResult {
  enum class Pool : int8_t { kShort = 0, kLong = 1, kScaling = 2 };

  // Per-query, in trace order.
  std::vector<double> latency_seconds;  // wait + execution.
  std::vector<double> wait_seconds;
  std::vector<Pool> pool;               // Where each query executed.

  int short_queue_admissions = 0;
  int long_queue_admissions = 0;
  int scaling_offloads = 0;

  // Both return 0 on an empty result.
  double AverageLatency() const;
  double LatencyQuantile(double q) const;
};

// Event-driven replay (§5.2): execution durations come from the logged
// `exec_seconds` (predictions only change queueing/scheduling, exactly as
// in the paper's counterfactual simulation), while queue routing and
// ordering are driven by `predicted_seconds`.
//
// `trace` must be sorted by arrival; `predicted_seconds` is parallel to it.
// Predictions are validated at entry: a NaN is a fatal error (it would
// break the SJF heap's ordering invariant), negatives clamp to 0.
WlmResult SimulateWlm(const std::vector<fleet::QueryEvent>& trace,
                      const std::vector<double>& predicted_seconds,
                      const WlmConfig& config);

}  // namespace stage::wlm

#endif  // STAGE_WLM_WORKLOAD_MANAGER_H_
