#include "stage/wlm/policy.h"

#include "stage/common/macros.h"
#include "stage/core/replay.h"
#include "stage/serve/prediction_service.h"

namespace stage::wlm {

namespace {

// Open loop has no completion hook, so its SLO accounting happens after the
// fact — same definition as the closed-loop path (deadline = slo_factor x
// true exec-time).
uint64_t CountSloViolations(const std::vector<fleet::QueryEvent>& trace,
                            const WlmResult& wlm, double slo_factor) {
  if (slo_factor <= 0.0) return 0;
  uint64_t violations = 0;
  for (size_t i = 0; i < trace.size(); ++i) {
    if (wlm.latency_seconds[i] > slo_factor * trace[i].exec_seconds) {
      ++violations;
    }
  }
  return violations;
}

ClosedLoopResult RunOpenLoopStage(const std::vector<fleet::QueryEvent>& trace,
                                  const PolicyRunConfig& config) {
  core::StagePredictorOptions options;
  options.global_model = config.global_model;
  options.instance = config.instance;
  core::StagePredictor predictor(config.stage, options);
  // The pre-PR pipeline: predictions fixed by an arrival-order replay
  // (predict, then observe, per event) before any queueing is simulated.
  const core::ReplayResult replay = core::ReplayTrace(trace, predictor);

  ClosedLoopResult result;
  result.slo_factor = config.loop.slo_factor;
  result.predicted_seconds = replay.Predictions();
  result.sources.reserve(trace.size());
  for (const core::ReplayRecord& record : replay.records) {
    result.sources.push_back(record.source);
    ++result.source_counts[static_cast<int>(record.source)];
  }
  result.wlm = SimulateWlm(trace, result.predicted_seconds, config.loop.wlm);
  result.slo_violations =
      CountSloViolations(trace, result.wlm, config.loop.slo_factor);
  return result;
}

}  // namespace

std::string_view WlmPolicyName(WlmPolicy policy) {
  switch (policy) {
    case WlmPolicy::kOracle: return "oracle";
    case WlmPolicy::kStage: return "stage";
    case WlmPolicy::kAutoWlm: return "autowlm";
    case WlmPolicy::kOpenLoop: return "open_loop";
  }
  STAGE_CHECK_MSG(false, "invalid policy");
  return "";
}

bool ParseWlmPolicy(std::string_view name, WlmPolicy* out) {
  for (const WlmPolicy policy :
       {WlmPolicy::kOracle, WlmPolicy::kStage, WlmPolicy::kAutoWlm,
        WlmPolicy::kOpenLoop}) {
    if (name == WlmPolicyName(policy)) {
      *out = policy;
      return true;
    }
  }
  return false;
}

ClosedLoopResult RunWlmPolicy(const std::vector<fleet::QueryEvent>& trace,
                              WlmPolicy policy,
                              const PolicyRunConfig& config) {
  switch (policy) {
    case WlmPolicy::kOracle:
      return SimulateClosedLoop(trace, nullptr, config.loop);
    case WlmPolicy::kStage: {
      // The full serving stack in the loop (the §4.5 deployment shape),
      // pinned deterministic: inline retrain and one cache shard make a
      // single-threaded closed-loop run bit-for-bit reproducible.
      serve::PredictionServiceConfig service_config;
      service_config.predictor = config.stage;
      service_config.cache_shards = 1;
      service_config.async_retrain = false;
      core::StagePredictorOptions options;
      options.global_model = config.global_model;
      options.instance = config.instance;
      serve::PredictionService service(service_config, options);
      return SimulateClosedLoop(trace, &service, config.loop);
    }
    case WlmPolicy::kAutoWlm: {
      core::AutoWlmPredictor autowlm(config.autowlm);
      return SimulateClosedLoop(trace, &autowlm, config.loop);
    }
    case WlmPolicy::kOpenLoop:
      return RunOpenLoopStage(trace, config);
  }
  STAGE_CHECK_MSG(false, "invalid policy");
  return {};
}

}  // namespace stage::wlm
