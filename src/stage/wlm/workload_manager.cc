#include "stage/wlm/workload_manager.h"

#include "stage/common/macros.h"
#include "stage/common/stats.h"
#include "stage/wlm/sim_engine.h"

namespace stage::wlm {

double WlmResult::AverageLatency() const {
  return latency_seconds.empty() ? 0.0 : Mean(latency_seconds);
}

double WlmResult::LatencyQuantile(double q) const {
  return latency_seconds.empty() ? 0.0 : Quantile(latency_seconds, q);
}

WlmResult SimulateWlm(const std::vector<fleet::QueryEvent>& trace,
                      const std::vector<double>& predicted_seconds,
                      const WlmConfig& config) {
  STAGE_CHECK(trace.size() == predicted_seconds.size());
  SimHooks hooks;
  // The engine sanitizes each prediction at admission (NaN is fatal,
  // negatives clamp to 0), so open loop and closed loop validate at the
  // same entry point.
  hooks.predict = [&predicted_seconds](int query, double /*now*/) {
    return predicted_seconds[query];
  };
  return RunWlmSimulation(trace, config, hooks);
}

}  // namespace stage::wlm
