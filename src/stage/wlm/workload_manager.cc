#include "stage/wlm/workload_manager.h"

#include <deque>
#include <limits>
#include <queue>

#include "stage/common/macros.h"
#include "stage/common/stats.h"

namespace stage::wlm {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

enum class QueryState : uint8_t {
  kQueuedShort,
  kQueuedLong,
  kQueuedScaling,
  kRunning,
  kDone,
};

enum Pool { kShort = 0, kLong = 1, kScaling = 2, kNumPools = 3 };

struct Simulation {
  Simulation(const std::vector<fleet::QueryEvent>& trace_in,
             const std::vector<double>& predicted_in,
             const WlmConfig& config_in)
      : trace(trace_in), predicted(predicted_in), config(config_in) {}

  const std::vector<fleet::QueryEvent>& trace;
  const std::vector<double>& predicted;
  const WlmConfig& config;
  WlmResult result;

  std::vector<QueryState> state;
  std::vector<int8_t> run_pool;  // Pool each running query occupies.
  std::vector<double> arrival;
  int busy[kNumPools] = {0, 0, 0};

  std::deque<int> short_queue;
  // Min-heap on (predicted exec-time, arrival order): shortest-job-first.
  std::priority_queue<std::pair<double, int>,
                      std::vector<std::pair<double, int>>,
                      std::greater<>>
      long_queue_sjf;
  std::deque<int> long_queue_fifo;
  std::deque<int> scaling_queue;

  // Min-heap of (completion time, query).
  std::priority_queue<std::pair<double, int>,
                      std::vector<std::pair<double, int>>, std::greater<>>
      completions;
  // Min-heap of (scaling deadline, query).
  std::priority_queue<std::pair<double, int>,
                      std::vector<std::pair<double, int>>, std::greater<>>
      deadlines;

  int PoolSlots(int pool) const {
    switch (pool) {
      case kShort: return config.short_slots;
      case kLong: return config.long_slots;
      case kScaling: return config.scaling_slots;
      default: STAGE_CHECK_MSG(false, "invalid pool"); return 0;
    }
  }

  void Start(int query, int pool, double now) {
    state[query] = QueryState::kRunning;
    run_pool[query] = static_cast<int8_t>(pool);
    result.pool[query] = static_cast<WlmResult::Pool>(pool);
    ++busy[pool];
    const double wait = now - arrival[query];
    STAGE_DCHECK(wait >= -1e-9);
    result.wait_seconds[query] = wait < 0.0 ? 0.0 : wait;
    completions.emplace(now + trace[query].exec_seconds, query);
  }

  void Dispatch(int pool, double now) {
    while (busy[pool] < PoolSlots(pool)) {
      int query = -1;
      if (pool == kShort) {
        while (!short_queue.empty()) {
          const int candidate = short_queue.front();
          short_queue.pop_front();
          if (state[candidate] == QueryState::kQueuedShort) {
            query = candidate;
            break;
          }
        }
      } else if (pool == kLong) {
        if (config.sjf_long_queue) {
          while (!long_queue_sjf.empty()) {
            const int candidate = long_queue_sjf.top().second;
            long_queue_sjf.pop();
            if (state[candidate] == QueryState::kQueuedLong) {
              query = candidate;
              break;
            }
          }
        } else {
          while (!long_queue_fifo.empty()) {
            const int candidate = long_queue_fifo.front();
            long_queue_fifo.pop_front();
            if (state[candidate] == QueryState::kQueuedLong) {
              query = candidate;
              break;
            }
          }
        }
      } else {
        while (!scaling_queue.empty()) {
          const int candidate = scaling_queue.front();
          scaling_queue.pop_front();
          if (state[candidate] == QueryState::kQueuedScaling) {
            query = candidate;
            break;
          }
        }
      }
      if (query < 0) return;
      Start(query, pool, now);
    }
  }

  void DispatchAll(double now) {
    Dispatch(kShort, now);
    Dispatch(kLong, now);
    if (config.enable_concurrency_scaling) Dispatch(kScaling, now);
  }

  void Admit(int query, double now) {
    if (predicted[query] < config.short_threshold_seconds) {
      state[query] = QueryState::kQueuedShort;
      short_queue.push_back(query);
      ++result.short_queue_admissions;
    } else {
      state[query] = QueryState::kQueuedLong;
      if (config.sjf_long_queue) {
        long_queue_sjf.emplace(predicted[query], query);
      } else {
        long_queue_fifo.push_back(query);
      }
      ++result.long_queue_admissions;
    }
    if (config.enable_concurrency_scaling) {
      deadlines.emplace(now + config.scaling_wait_threshold_seconds, query);
    }
    DispatchAll(now);
  }

  void Run() {
    const size_t n = trace.size();
    size_t next_arrival = 0;
    size_t completed = 0;
    while (completed < n) {
      const double t_arrival =
          next_arrival < n ? arrival[next_arrival] : kInf;
      const double t_completion =
          completions.empty() ? kInf : completions.top().first;
      const double t_deadline =
          deadlines.empty() ? kInf : deadlines.top().first;

      if (t_completion <= t_arrival && t_completion <= t_deadline) {
        const auto [now, query] = completions.top();
        completions.pop();
        state[query] = QueryState::kDone;
        result.latency_seconds[query] = now - arrival[query];
        ++completed;
        --busy[run_pool[query]];
        DispatchAll(now);
      } else if (t_deadline < t_arrival) {
        const auto [now, query] = deadlines.top();
        deadlines.pop();
        if (state[query] == QueryState::kQueuedShort ||
            state[query] == QueryState::kQueuedLong) {
          state[query] = QueryState::kQueuedScaling;
          scaling_queue.push_back(query);
          ++result.scaling_offloads;
          Dispatch(kScaling, now);
        }
      } else {
        STAGE_CHECK(next_arrival < n);
        Admit(static_cast<int>(next_arrival), t_arrival);
        ++next_arrival;
      }
    }
  }
};

}  // namespace

double WlmResult::AverageLatency() const {
  return latency_seconds.empty() ? 0.0 : Mean(latency_seconds);
}

double WlmResult::LatencyQuantile(double q) const {
  return Quantile(latency_seconds, q);
}

WlmResult SimulateWlm(const std::vector<fleet::QueryEvent>& trace,
                      const std::vector<double>& predicted_seconds,
                      const WlmConfig& config) {
  STAGE_CHECK(trace.size() == predicted_seconds.size());
  STAGE_CHECK(config.short_slots > 0 && config.long_slots > 0);

  Simulation sim(trace, predicted_seconds, config);
  const size_t n = trace.size();
  sim.result.latency_seconds.assign(n, 0.0);
  sim.result.wait_seconds.assign(n, 0.0);
  sim.result.pool.assign(n, WlmResult::Pool::kShort);
  sim.state.assign(n, QueryState::kQueuedShort);
  sim.run_pool.assign(n, -1);
  sim.arrival.resize(n);
  for (size_t i = 0; i < n; ++i) {
    sim.arrival[i] = static_cast<double>(trace[i].arrival_ms) / 1000.0;
    if (i > 0) STAGE_CHECK(trace[i].arrival_ms >= trace[i - 1].arrival_ms);
  }
  sim.Run();
  return sim.result;
}

}  // namespace stage::wlm
