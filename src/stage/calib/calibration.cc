#include "stage/calib/calibration.h"

#include <cmath>
#include <cstdio>
#include <limits>
#include <utility>

#include "stage/common/macros.h"
#include "stage/common/stats.h"

namespace stage::calib {

bool UsableLogStd(double log_std) {
  return std::isfinite(log_std) && log_std > 0.0;
}

double NormalizedResidual(double predicted_seconds, double log_std,
                          double actual_seconds) {
  if (!UsableLogStd(log_std)) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  if (!std::isfinite(predicted_seconds) || predicted_seconds < 0.0 ||
      !std::isfinite(actual_seconds) || actual_seconds < 0.0) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  return std::abs(std::log1p(actual_seconds) - std::log1p(predicted_seconds)) /
         log_std;
}

std::string CalibrationConfig::Validate() const {
  if (levels.empty()) return "calibration.levels must be non-empty";
  for (double level : levels) {
    if (!std::isfinite(level) || level <= 0.0 || level >= 1.0) {
      return "calibration.levels must be in (0, 1)";
    }
  }
  if (num_sources <= 0) return "calibration.num_sources must be positive";
  return "";
}

CalibrationHarness::CalibrationHarness(CalibrationConfig config)
    : config_(std::move(config)) {
  const std::string error = config_.Validate();
  STAGE_CHECK_MSG(error.empty(), error.c_str());
  level_z_.reserve(config_.levels.size());
  for (double level : config_.levels) {
    level_z_.push_back(NormalQuantile(0.5 + level / 2.0));
  }
  const size_t slots =
      static_cast<size_t>(config_.num_sources) * config_.levels.size();
  covered_ = std::make_unique<std::atomic<uint64_t>[]>(slots);
  usable_by_source_ = std::make_unique<std::atomic<uint64_t>[]>(
      static_cast<size_t>(config_.num_sources));
}

CalibrationHarness::~CalibrationHarness() {
  if (registry_ != nullptr) registry_->UnregisterAll(this);
}

void CalibrationHarness::Add(const CalibrationSample& sample) {
  total_.fetch_add(1, std::memory_order_relaxed);
  const double z = NormalizedResidual(sample.predicted_seconds, sample.log_std,
                                      sample.actual_seconds);
  if (!std::isfinite(z)) {
    excluded_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  usable_.fetch_add(1, std::memory_order_relaxed);
  const size_t source =
      (sample.source >= 0 && sample.source < config_.num_sources)
          ? static_cast<size_t>(sample.source)
          : 0;
  usable_by_source_[source].fetch_add(1, std::memory_order_relaxed);
  const size_t base = source * config_.levels.size();
  for (size_t i = 0; i < level_z_.size(); ++i) {
    if (z < level_z_[i]) {
      covered_[base + i].fetch_add(1, std::memory_order_relaxed);
    }
  }
}

CalibrationReport CalibrationHarness::Report() const {
  CalibrationReport report;
  report.total = total();
  report.usable = usable();
  report.excluded = excluded();
  report.levels = config_.levels;
  const size_t num_levels = config_.levels.size();
  const size_t num_sources = static_cast<size_t>(config_.num_sources);
  report.covered.assign(num_levels, 0);
  report.observed.assign(num_levels, 0.0);
  report.usable_by_source.assign(num_sources, 0);
  report.covered_by_source.assign(num_sources,
                                  std::vector<uint64_t>(num_levels, 0));
  for (size_t s = 0; s < num_sources; ++s) {
    report.usable_by_source[s] =
        usable_by_source_[s].load(std::memory_order_relaxed);
    for (size_t i = 0; i < num_levels; ++i) {
      const uint64_t count =
          covered_[s * num_levels + i].load(std::memory_order_relaxed);
      report.covered_by_source[s][i] = count;
      report.covered[i] += count;
    }
  }
  double error_sum = 0.0;
  for (size_t i = 0; i < num_levels; ++i) {
    report.observed[i] =
        report.usable > 0
            ? static_cast<double>(report.covered[i]) /
                  static_cast<double>(report.usable)
            : 0.0;
    if (report.usable > 0) {
      error_sum += std::abs(report.observed[i] - report.levels[i]);
    }
  }
  report.ece =
      report.usable > 0 ? error_sum / static_cast<double>(num_levels) : 0.0;
  return report;
}

double CalibrationReport::CoverageErrorAt(double nominal) const {
  if (usable == 0 || levels.empty()) return 0.0;
  size_t best = 0;
  for (size_t i = 1; i < levels.size(); ++i) {
    if (std::abs(levels[i] - nominal) < std::abs(levels[best] - nominal)) {
      best = i;
    }
  }
  return std::abs(observed[best] - levels[best]);
}

namespace {

void AppendDouble(std::string* out, double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.6f", value);
  *out += buffer;
}

}  // namespace

std::string CalibrationReport::ToJson() const {
  std::string out = "{\n";
  out += "  \"total\": " + std::to_string(total) + ",\n";
  out += "  \"usable\": " + std::to_string(usable) + ",\n";
  out += "  \"excluded\": " + std::to_string(excluded) + ",\n";
  out += "  \"ece\": ";
  AppendDouble(&out, ece);
  out += ",\n  \"levels\": [\n";
  for (size_t i = 0; i < levels.size(); ++i) {
    out += "    {\"nominal\": ";
    AppendDouble(&out, levels[i]);
    out += ", \"observed\": ";
    AppendDouble(&out, observed[i]);
    out += ", \"covered\": " + std::to_string(covered[i]) + "}";
    out += (i + 1 < levels.size()) ? ",\n" : "\n";
  }
  out += "  ],\n  \"usable_by_source\": [";
  for (size_t s = 0; s < usable_by_source.size(); ++s) {
    out += std::to_string(usable_by_source[s]);
    if (s + 1 < usable_by_source.size()) out += ", ";
  }
  out += "]\n}\n";
  return out;
}

void CalibrationHarness::RegisterMetrics(obs::MetricsRegistry* registry,
                                         std::string prefix) {
  STAGE_CHECK(registry != nullptr);
  STAGE_CHECK(registry_ == nullptr);  // Register once.
  registry_ = registry;
  registry->RegisterCounterCallback(this, prefix + "samples_total",
                                    [this] { return total(); });
  registry->RegisterCounterCallback(this, prefix + "samples_usable_total",
                                    [this] { return usable(); });
  registry->RegisterCounterCallback(this, prefix + "samples_excluded_total",
                                    [this] { return excluded(); });
  registry->RegisterGaugeCallback(this, prefix + "ece",
                                  [this] { return Report().ece; });
  for (size_t i = 0; i < config_.levels.size(); ++i) {
    char label[64];
    std::snprintf(label, sizeof(label), "coverage_ratio{level=\"%.2f\"}",
                  config_.levels[i]);
    registry->RegisterGaugeCallback(this, prefix + label, [this, i] {
      const uint64_t usable = usable_.load(std::memory_order_relaxed);
      if (usable == 0) return 0.0;
      uint64_t covered = 0;
      const size_t num_levels = config_.levels.size();
      for (int s = 0; s < config_.num_sources; ++s) {
        covered += covered_[static_cast<size_t>(s) * num_levels + i].load(
            std::memory_order_relaxed);
      }
      return static_cast<double>(covered) / static_cast<double>(usable);
    });
  }
}

}  // namespace stage::calib
