#ifndef STAGE_CALIB_CALIBRATION_H_
#define STAGE_CALIB_CALIBRATION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "stage/obs/metrics.h"

namespace stage::calib {

// Whether a reported log-space standard deviation is usable for interval
// math. The predictor stack uses -1.0 as the "no uncertainty available"
// sentinel (cache hits, global predictions, cold-start default); that
// sentinel — and any other non-positive or non-finite value — must be
// excluded from calibration, never treated as sigma = -1.
bool UsableLogStd(double log_std);

// Normalized residual of one prediction in log space:
//   z = |log1p(actual) - log1p(predicted)| / log_std.
// Returns NaN when the triple is unusable (sentinel/non-positive/non-finite
// log_std, negative or non-finite seconds) so callers can exclude it; the
// ConformalRecalibrator ignores NaN inputs.
double NormalizedResidual(double predicted_seconds, double log_std,
                          double actual_seconds);

// One (prediction, ground truth) pair fed to the harness. `source` is a
// caller-defined attribution slot (the predictor stack passes its
// PredictionSource index); out-of-range values fall into slot 0.
struct CalibrationSample {
  double predicted_seconds = 0.0;
  double log_std = -1.0;
  double actual_seconds = 0.0;
  int source = 0;
};

struct CalibrationConfig {
  // Nominal central-interval confidence levels to measure coverage at.
  std::vector<double> levels = {0.5, 0.8, 0.9, 0.95};
  // Attribution slots tracked by the per-source breakdown.
  int num_sources = 8;
  // Empty when usable, else a description of the first problem found.
  std::string Validate() const;
};

// Aggregated calibration measurement, produced by CalibrationHarness.
struct CalibrationReport {
  uint64_t total = 0;     // Samples fed to Add.
  uint64_t usable = 0;    // Samples with a usable sigma.
  uint64_t excluded = 0;  // Sentinel / unusable samples (total - usable).
  std::vector<double> levels;      // Nominal confidence levels.
  std::vector<double> observed;    // Observed coverage, aligned to levels.
  std::vector<uint64_t> covered;   // Raw covered counts, aligned to levels.
  // Per-source slices: usable counts and covered counts per level.
  std::vector<uint64_t> usable_by_source;
  std::vector<std::vector<uint64_t>> covered_by_source;  // [source][level].
  // Expected calibration error: mean over levels of |observed - nominal|.
  double ece = 0.0;

  // |observed - nominal| at the level closest to `nominal` (0 when no
  // usable samples were seen).
  double CoverageErrorAt(double nominal) const;

  // Machine-readable rendering (keys: total/usable/excluded/ece/levels,
  // per-level nominal/observed/covered, per-source usable counts).
  std::string ToJson() const;
};

// Streaming interval-calibration harness: feed (mu, sigma, y) triples,
// read observed coverage of the centered log-space Gaussian intervals at a
// ladder of nominal levels plus expected calibration error and per-source
// breakdowns. A prediction at confidence c is "covered" when
// |log1p(y) - log1p(mu)| < Phi^-1((1+c)/2) * sigma.
//
// Thread-safety: Add is safe against concurrent Add/Report/metric scrapes
// (all counters are relaxed atomics); the harness itself is a fixed-shape
// counter array, so Add never allocates.
class CalibrationHarness {
 public:
  explicit CalibrationHarness(CalibrationConfig config = {});
  ~CalibrationHarness();

  CalibrationHarness(const CalibrationHarness&) = delete;
  CalibrationHarness& operator=(const CalibrationHarness&) = delete;

  // Scores one sample against every nominal level. Unusable samples
  // (sentinel sigma, negative/non-finite inputs) count as excluded.
  void Add(const CalibrationSample& sample);

  CalibrationReport Report() const;

  uint64_t total() const { return total_.load(std::memory_order_relaxed); }
  uint64_t usable() const { return usable_.load(std::memory_order_relaxed); }
  uint64_t excluded() const {
    return excluded_.load(std::memory_order_relaxed);
  }

  const CalibrationConfig& config() const { return config_; }

  // Exposes coverage_ratio{level=...} gauges, calibration_ece, and
  // samples_{total,usable,excluded} counters under `prefix` as render-time
  // callbacks (owner-tagged; unregistered in the destructor). The registry
  // must outlive the harness. Callbacks only read the atomic counters.
  void RegisterMetrics(obs::MetricsRegistry* registry, std::string prefix);

 private:
  CalibrationConfig config_;
  std::vector<double> level_z_;  // Phi^-1((1+c)/2) per level, precomputed.
  std::atomic<uint64_t> total_{0};
  std::atomic<uint64_t> usable_{0};
  std::atomic<uint64_t> excluded_{0};
  // Flat [source][level] covered counts plus per-source usable counts.
  std::unique_ptr<std::atomic<uint64_t>[]> covered_;
  std::unique_ptr<std::atomic<uint64_t>[]> usable_by_source_;
  obs::MetricsRegistry* registry_ = nullptr;  // Set by RegisterMetrics.
};

}  // namespace stage::calib

#endif  // STAGE_CALIB_CALIBRATION_H_
