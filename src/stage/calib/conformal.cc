#include "stage/calib/conformal.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>

#include "stage/common/macros.h"
#include "stage/common/serialize.h"
#include "stage/common/stats.h"

namespace stage::calib {

std::string ConformalConfig::Validate() const {
  if (window_capacity == 0) return "conformal.window_capacity must be positive";
  if (min_window == 0) return "conformal.min_window must be positive";
  if (min_window > window_capacity) {
    return "conformal.min_window must not exceed window_capacity";
  }
  if (!std::isfinite(anchor_confidence) || anchor_confidence <= 0.0 ||
      anchor_confidence >= 1.0) {
    return "conformal.anchor_confidence must be in (0, 1)";
  }
  if (refresh_interval == 0) return "conformal.refresh_interval must be positive";
  if (!std::isfinite(min_scale) || min_scale <= 0.0) {
    return "conformal.min_scale must be finite and positive";
  }
  if (!std::isfinite(max_scale) || max_scale < min_scale) {
    return "conformal.max_scale must be finite and >= min_scale";
  }
  return "";
}

ConformalRecalibrator::ConformalRecalibrator(const ConformalConfig& config)
    : config_(config) {
  const std::string error = config.Validate();
  STAGE_CHECK_MSG(error.empty(), error.c_str());
  // Central interval at confidence c covers |z| < Phi^-1((1+c)/2).
  anchor_z_ = NormalQuantile(0.5 + config_.anchor_confidence / 2.0);
  ring_.resize(config_.window_capacity, 0.0);
  scratch_.resize(config_.window_capacity, 0.0);
}

void ConformalRecalibrator::Observe(double normalized_residual) {
  // The NormalizedResidual sentinel (NaN) and any negative input mean
  // "sigma was unavailable for this observation" — skip, never poison.
  if (!std::isfinite(normalized_residual) || normalized_residual < 0.0) return;
  ring_[head_] = normalized_residual;
  head_ = (head_ + 1) % config_.window_capacity;
  const size_t size = size_.load(std::memory_order_relaxed);
  if (size < config_.window_capacity) {
    size_.store(size + 1, std::memory_order_relaxed);
  }
  observations_.fetch_add(1, std::memory_order_relaxed);
  ++since_refresh_;
  if (size_.load(std::memory_order_relaxed) >= config_.min_window &&
      (refreshes_ == 0 || since_refresh_ >= config_.refresh_interval)) {
    RefreshScale();
    since_refresh_ = 0;
    ++refreshes_;
  }
}

void ConformalRecalibrator::RefreshScale() {
  const size_t n = size_.load(std::memory_order_relaxed);
  std::copy_n(ring_.begin(), n, scratch_.begin());
  // Split-conformal rank at level p over n scores: the ceil((n+1)p)-th
  // order statistic, clamped into range (the finite-sample correction that
  // guarantees >= p coverage on exchangeable data).
  const double raw_rank =
      std::ceil(static_cast<double>(n + 1) * config_.anchor_confidence);
  const size_t rank = static_cast<size_t>(
      std::clamp(raw_rank, 1.0, static_cast<double>(n)));
  std::nth_element(scratch_.begin(),
                   scratch_.begin() + static_cast<std::ptrdiff_t>(rank - 1),
                   scratch_.begin() + static_cast<std::ptrdiff_t>(n));
  const double quantile = scratch_[rank - 1];
  const double scale =
      std::clamp(quantile / anchor_z_, config_.min_scale, config_.max_scale);
  scale_.store(scale, std::memory_order_relaxed);
}

namespace {
constexpr uint32_t kConformalMagic = 0x53434e46;  // "SCNF".
constexpr uint32_t kConformalVersion = 1;
}  // namespace

void ConformalRecalibrator::Save(std::ostream& out) const {
  WriteHeader(out, kConformalMagic, kConformalVersion);
  WritePod<uint64_t>(out, config_.window_capacity);
  WritePod<uint64_t>(out, head_);
  WritePod<uint64_t>(out, size_.load(std::memory_order_relaxed));
  WritePod<uint64_t>(out, since_refresh_);
  WritePod<uint64_t>(out, refreshes_);
  WritePod<uint64_t>(out, observations_.load(std::memory_order_relaxed));
  WritePod<double>(out, scale_.load(std::memory_order_relaxed));
  WriteVector(out, ring_);
}

bool ConformalRecalibrator::Load(std::istream& in) {
  if (!ReadHeader(in, kConformalMagic, kConformalVersion)) return false;
  uint64_t capacity = 0, head = 0, size = 0, since_refresh = 0;
  uint64_t refreshes = 0, observations = 0;
  double scale = 1.0;
  std::vector<double> ring;
  if (!ReadPod(in, &capacity) || !ReadPod(in, &head) || !ReadPod(in, &size) ||
      !ReadPod(in, &since_refresh) || !ReadPod(in, &refreshes) ||
      !ReadPod(in, &observations) || !ReadPod(in, &scale) ||
      !ReadVector(in, &ring)) {
    return false;
  }
  // Structural validity: the stream must describe a window of exactly this
  // recalibrator's shape, with in-range cursors, a clamped finite scale,
  // and usable residuals. Anything else is corruption — reject without
  // touching state.
  if (capacity != config_.window_capacity || ring.size() != capacity ||
      head >= capacity || size > capacity) {
    return false;
  }
  const bool scale_ok =
      scale == 1.0 ||  // Identity: the pre-min_window state.
      (std::isfinite(scale) && scale >= config_.min_scale &&
       scale <= config_.max_scale);
  if (!scale_ok) return false;
  for (double value : ring) {
    if (!std::isfinite(value) || value < 0.0) return false;
  }
  ring_ = std::move(ring);
  head_ = static_cast<size_t>(head);
  since_refresh_ = static_cast<size_t>(since_refresh);
  refreshes_ = refreshes;
  size_.store(static_cast<size_t>(size), std::memory_order_relaxed);
  observations_.store(observations, std::memory_order_relaxed);
  scale_.store(scale, std::memory_order_relaxed);
  return true;
}

}  // namespace stage::calib
