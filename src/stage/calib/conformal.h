#ifndef STAGE_CALIB_CONFORMAL_H_
#define STAGE_CALIB_CONFORMAL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace stage::calib {

// Knobs of the online conformal recalibrator below. Defaults follow the
// split-conformal literature: a window large enough that the empirical
// 90% quantile is stable (~50 samples per tail point), refreshed often
// enough to track drift within one retrain interval.
struct ConformalConfig {
  // Sliding window of the most recent normalized residuals.
  size_t window_capacity = 512;

  // Observations required before the recalibrator starts rescaling; the
  // scale stays 1.0 (identity) until the window holds this many residuals.
  size_t min_window = 32;

  // The nominal central-interval confidence level the window quantile is
  // anchored at. 0.9 targets the 90% interval the routing threshold is
  // judged on.
  double anchor_confidence = 0.9;

  // Recompute the scale every this many accepted residuals (after the
  // window has min_window entries). The recompute is an O(window)
  // nth_element on a preallocated scratch, so Observe stays O(1) amortized
  // and allocation-free.
  size_t refresh_interval = 16;

  // Clamp on the published scale: guards against a degenerate window (all
  // residuals ~0, or a burst of outliers) collapsing or exploding sigma.
  double min_scale = 0.125;
  double max_scale = 8.0;

  // Empty when usable, else a description of the first problem found.
  std::string Validate() const;
};

// Online conformal recalibrator (Wu et al., "Uncertainty Aware Query
// Execution Time Prediction"): maintains a sliding window of normalized
// residuals z = |log1p(y) - log1p(mu)| / sigma and publishes a
// multiplicative correction for sigma,
//
//   scale = window_quantile(anchor_confidence) / gaussian_z(anchor),
//
// so that, after rescaling, the centered anchor-level interval has
// empirical coverage ~= anchor_confidence on recent data regardless of how
// miscalibrated the raw ensemble sigma is.
//
// Thread-safety contract (mirrors the predictor stack): scale(),
// window_size(), and observations() are lock-free atomic reads, safe
// against a concurrent Observe. Observe mutates the window and must be
// serialized by the owner (StagePredictor's Observe contract /
// TenantStack's observe_mutex_). Save/Load follow the same rules as
// Observe.
class ConformalRecalibrator {
 public:
  explicit ConformalRecalibrator(const ConformalConfig& config);

  // Feeds one normalized residual. Non-finite or negative values (the
  // NormalizedResidual sentinel for "sigma unavailable") are ignored, so
  // cache/global-sourced observations can never poison the window. O(1)
  // amortized, zero allocations.
  void Observe(double normalized_residual);

  // Current multiplicative sigma correction; 1.0 until min_window residuals
  // have been observed. Lock-free, hot-path safe.
  double scale() const { return scale_.load(std::memory_order_relaxed); }

  // Residuals currently held (saturates at window_capacity).
  size_t window_size() const {
    return size_.load(std::memory_order_relaxed);
  }

  // Residuals accepted over the recalibrator's lifetime (ignored
  // sentinel/NaN inputs are not counted).
  uint64_t observations() const {
    return observations_.load(std::memory_order_relaxed);
  }

  // Completed scale recomputations.
  uint64_t refreshes() const { return refreshes_; }

  const ConformalConfig& config() const { return config_; }

  // Bit-for-bit state serialization ("SCNF" stream: ring contents, head,
  // fill, refresh phase, counters, published scale). A recalibrator
  // restored by Load continues exactly as one that never stopped. Load is
  // transactional: on a malformed stream it returns false and leaves the
  // target untouched. The stream's window_capacity must match config()'s.
  void Save(std::ostream& out) const;
  bool Load(std::istream& in);

 private:
  void RefreshScale();

  ConformalConfig config_;
  double anchor_z_ = 1.0;  // Gaussian z for the anchor level, precomputed.
  std::vector<double> ring_;     // window_capacity slots, storage order.
  std::vector<double> scratch_;  // Preallocated for the quantile select.
  size_t head_ = 0;              // Next ring slot to overwrite.
  size_t since_refresh_ = 0;
  uint64_t refreshes_ = 0;
  std::atomic<size_t> size_{0};
  std::atomic<uint64_t> observations_{0};
  std::atomic<double> scale_{1.0};
};

}  // namespace stage::calib

#endif  // STAGE_CALIB_CONFORMAL_H_
