#ifndef STAGE_NET_WIRE_H_
#define STAGE_NET_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "stage/common/framing.h"
#include "stage/core/predictor.h"
#include "stage/plan/plan.h"

namespace stage::net {

// The prediction wire protocol: length-prefixed binary frames sharing the
// 24-byte envelope vocabulary with the checkpoint subsystem
// (stage/common/framing.h) — magic "SNET" instead of "SSNP", MessageType
// instead of SnapshotKind, CRC32 over every payload. A connection may
// instead speak line-delimited JSON (see json.h); the server auto-detects
// the mode from the first byte ('{' = JSON).
inline constexpr uint32_t kWireMagic = 0x54454e53;  // "SNET" little-endian.
inline constexpr uint32_t kWireVersion = 1;

// Upper bound a well-formed frame may declare; anything larger is treated
// as a corrupt length field (the server additionally enforces its own
// configured cap, which must not exceed this).
inline constexpr uint64_t kMaxWirePayloadBytes = 8ull << 20;

// Largest plan the wire accepts. The generator tops out around dozens of
// nodes; the cap exists so a hostile node_count cannot drive allocation.
inline constexpr uint32_t kMaxWirePlanNodes = 1u << 16;

enum class MessageType : uint32_t {
  kPredictRequest = 1,
  kPredictResponse = 2,
  kObserveRequest = 3,
  kObserveAck = 4,
  kError = 5,
  // Server -> client, sent to every open connection during graceful
  // shutdown after all in-flight work has drained. Carries no payload.
  kShutdown = 6,
};

std::string_view MessageTypeName(MessageType type);

enum class WireError : uint32_t {
  kMalformed = 1,      // Frame decoded but the payload did not parse.
  kOverloaded = 2,     // Batch queue full; retry later (backpressure).
  kUnknownTenant = 3,  // Tenant id not registered with the fleet.
  kShuttingDown = 4,   // Server is draining; no new work accepted.
  kBadFrame = 5,       // Envelope-level corruption; connection closes.
};

std::string_view WireErrorName(WireError error);

// A predict call crossing the wire. The plan carries only the observable
// optimizer estimates (operator, cost, cardinality, width, storage format,
// table rows, tree shape) — the hidden ground-truth fields (table_id,
// actual_cardinality) never have an encoding, so a client physically
// cannot leak them to the predictor. The server rebuilds the QueryContext
// (features + hash) from the decoded plan with core::MakeQueryContext,
// which is deterministic, so served predictions are bit-for-bit identical
// to in-process calls on the same plan.
struct PredictRequest {
  uint64_t request_id = 0;  // Client-chosen, echoed in the response.
  uint64_t tenant = 0;
  int32_t concurrent_queries = 0;
  uint64_t tick = 0;
  plan::Plan plan;
};

struct PredictResponse {
  uint64_t request_id = 0;
  // Raw IEEE-754 bits of the prediction cross the wire, so "bit-for-bit
  // identical to in-process" is literal.
  double seconds = 0.0;
  core::PredictionSource source = core::PredictionSource::kDefault;
  double uncertainty_log_std = -1.0;
};

struct ObserveRequest {
  uint64_t request_id = 0;
  uint64_t tenant = 0;
  int32_t concurrent_queries = 0;
  uint64_t tick = 0;
  double exec_seconds = 0.0;
  plan::Plan plan;
};

struct ObserveAck {
  uint64_t request_id = 0;
};

struct ErrorReply {
  uint64_t request_id = 0;  // 0 when the request id could not be parsed.
  WireError code = WireError::kMalformed;
  std::string message;
};

// ---- Plan (de)serialization -------------------------------------------

// Appends the wire form of `plan`: u8 query_type, u32 node_count, then per
// node u8 op, f64 cost, f64 cardinality, f64 width, u8 s3_format, f64
// table_rows, u32 child_count, i32 children[].
void AppendPlan(std::string* out, const plan::Plan& plan);

// Parses and validates a wire plan. Validation happens BEFORE the Plan is
// constructed (the Plan constructor aborts on a malformed tree — a fatal a
// network peer must never be able to trigger): enums in range, node count
// within kMaxWirePlanNodes, children strictly pre-order, every non-root
// node with exactly one parent. Returns false on any violation.
bool ParsePlan(ByteReader* in, plan::Plan* plan);

// The structural half of that validation, shared by the binary and JSON
// decoders: node count in [1, kMaxWirePlanNodes], query_type in range,
// children strictly after their parent (pre-order), exactly one parent per
// non-root node, node 0 the unparented root. Callers must already have
// range-checked the per-node enums. Constructs *plan only when everything
// holds.
bool BuildWirePlan(uint8_t query_type, std::vector<plan::PlanNode> nodes,
                   plan::Plan* plan);

// ---- Payload encode/parse ---------------------------------------------
// Encoders append the payload to a caller-reused buffer; frame wrapping is
// AppendMessage / framing's WriteFrame. Parsers consume the whole payload
// (trailing bytes are a parse error — a frame says exactly one thing).

void AppendPredictRequest(std::string* out, const PredictRequest& request);
bool ParsePredictRequest(std::string_view payload, PredictRequest* request);

void AppendPredictResponse(std::string* out, const PredictResponse& response);
bool ParsePredictResponse(std::string_view payload, PredictResponse* response);

void AppendObserveRequest(std::string* out, const ObserveRequest& request);
bool ParseObserveRequest(std::string_view payload, ObserveRequest* request);

void AppendObserveAck(std::string* out, const ObserveAck& ack);
bool ParseObserveAck(std::string_view payload, ObserveAck* ack);

void AppendErrorReply(std::string* out, const ErrorReply& error);
bool ParseErrorReply(std::string_view payload, ErrorReply* error);

// Wraps an already-encoded payload in a wire frame.
void AppendMessage(std::string* out, MessageType type,
                   std::string_view payload);

// ---- JSON mode ----------------------------------------------------------
// Line-delimited JSON with the same semantics as the binary frames, for
// debug clients (`nc`-able). A connection whose first byte is '{' speaks
// this mode. Requests:
//
//   {"type":"predict","id":1,"tenant":0,"concurrent":4,"tick":12,
//    "plan":{"query_type":0,"nodes":[{"op":2,"cost":10.5,"card":100,
//            "width":8,"s3":0,"rows":1e6,"children":[1]}, ...]}}
//   {"type":"observe", ...same head..., "exec_seconds":1.25, "plan":{...}}
//
// Responses (one line each): {"type":"predict","id":..,"seconds":..,
// "source":"global","uncertainty_log_std":..}, {"type":"observe_ack",
// "id":..}, {"type":"error","id":..,"code":"overloaded","message":".."},
// {"type":"shutdown"}.

// Parses one request line, applying the same validation as the binary
// parsers (enum ranges, tree structure, exec_seconds >= 0). On failure
// fills `error` with a short reason.
bool ParseJsonRequest(std::string_view line, bool* is_predict,
                      PredictRequest* predict, ObserveRequest* observe,
                      std::string* error);

// Each appends one newline-terminated JSON line.
void AppendJsonPredictResponse(std::string* out, const PredictResponse& r);
void AppendJsonObserveAck(std::string* out, const ObserveAck& ack);
void AppendJsonError(std::string* out, const ErrorReply& error);
void AppendJsonShutdown(std::string* out);

}  // namespace stage::net

#endif  // STAGE_NET_WIRE_H_
