#include "stage/net/batcher.h"

#include <algorithm>
#include <utility>

#include "stage/common/macros.h"

namespace stage::net {

std::string_view FlushReasonName(FlushReason reason) {
  switch (reason) {
    case FlushReason::kFull:
      return "full";
    case FlushReason::kTimeout:
      return "timeout";
    case FlushReason::kDrain:
      return "drain";
  }
  return "unknown";
}

std::string MicroBatcherConfig::Validate() const {
  if (window_us == 0) {
    return "window_us must be >= 1 (window 0 means no batcher; the serve "
           "layer handles that by predicting inline)";
  }
  if (max_batch == 0) return "max_batch must be >= 1";
  if (queue_bound < max_batch) {
    return "queue_bound must be >= max_batch (a full batch must fit)";
  }
  return "";
}

MicroBatcher::MicroBatcher(const MicroBatcherConfig& config, FlushFn flush)
    : config_(config),
      window_floor_us_(std::max<uint64_t>(1, config.window_us / 8)),
      flush_(std::move(flush)),
      effective_window_us_(config.window_us) {
  const std::string error = config_.Validate();
  STAGE_CHECK_MSG(error.empty(), error.c_str());
  STAGE_CHECK(flush_ != nullptr);
  thread_ = std::thread([this] { Loop(); });
}

MicroBatcher::~MicroBatcher() { Drain(); }

SubmitResult MicroBatcher::Submit(BatchItem item) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return SubmitResult::kStopped;
    if (queue_.size() >= config_.queue_bound) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return SubmitResult::kOverloaded;
    }
    item.enqueue_time = std::chrono::steady_clock::now();
    queue_.push_back(std::move(item));
    queue_depth_.store(queue_.size(), std::memory_order_relaxed);
    submitted_.fetch_add(1, std::memory_order_relaxed);
  }
  // Wake the loop: the first item of a window arms the deadline, a full
  // batch flushes immediately. Intermediate items need no wakeup, but
  // notifying unconditionally is cheap and keeps the logic obvious.
  cv_.notify_one();
  return SubmitResult::kAccepted;
}

void MicroBatcher::Drain() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_ && !thread_.joinable()) return;
    stopping_ = true;
  }
  cv_.notify_one();
  if (thread_.joinable()) thread_.join();
}

void MicroBatcher::Loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) break;  // stopping_ with nothing left to drain.

    if (!stopping_) {
      // A batch is forming. Sleep until the oldest item's window expires,
      // waking early on kFull or drain.
      const auto window = std::chrono::microseconds(
          effective_window_us_.load(std::memory_order_relaxed));
      const auto deadline = queue_.front().enqueue_time + window;
      cv_.wait_until(lock, deadline, [this, deadline] {
        return stopping_ || queue_.size() >= config_.max_batch ||
               std::chrono::steady_clock::now() >= deadline;
      });
    }

    const size_t take = std::min(queue_.size(), config_.max_batch);
    const FlushReason reason = stopping_              ? FlushReason::kDrain
                               : take >= config_.max_batch
                                   ? FlushReason::kFull
                                   : FlushReason::kTimeout;
    std::vector<BatchItem> batch;
    batch.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    const bool backlog = !queue_.empty();
    queue_depth_.store(queue_.size(), std::memory_order_relaxed);
    flushes_[static_cast<int>(reason)].fetch_add(1,
                                                 std::memory_order_relaxed);

    // Adapt the window (drain flushes don't count: shutdown timing says
    // nothing about arrival density).
    if (reason != FlushReason::kDrain) {
      const uint64_t window =
          effective_window_us_.load(std::memory_order_relaxed);
      if (reason == FlushReason::kFull || backlog) {
        effective_window_us_.store(std::max(window_floor_us_, window / 2),
                                   std::memory_order_relaxed);
      } else if (batch.size() * 4 <= config_.max_batch) {
        effective_window_us_.store(std::min(config_.window_us, window * 2),
                                   std::memory_order_relaxed);
      }
    }

    lock.unlock();
    flush_(std::move(batch), reason);
    lock.lock();
  }
}

}  // namespace stage::net
