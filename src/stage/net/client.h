#ifndef STAGE_NET_CLIENT_H_
#define STAGE_NET_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "stage/net/wire.h"

namespace stage::net {

// A simple blocking binary-mode client: one request in flight at a time,
// framed exactly like the server expects. Tests, the stage_sim CLI, and
// tenant setup use this; the load generator (loadgen.h) speaks the same
// frames over its own nonblocking pipelined sockets instead.
class Client {
 public:
  // What the server said in response to an RPC.
  enum class RpcStatus {
    kOk = 0,     // The expected response arrived.
    kError,      // The server replied with an error frame (see *error_reply).
    kShutdown,   // The server announced shutdown instead of answering.
    kTransport,  // Socket/framing failure; *transport_error describes it.
  };

  // Connects (blocking) to host:port. Null + filled error on failure.
  static std::unique_ptr<Client> Connect(const std::string& host, int port,
                                         std::string* error);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  RpcStatus Predict(const PredictRequest& request, PredictResponse* response,
                    ErrorReply* error_reply, std::string* transport_error);
  RpcStatus Observe(const ObserveRequest& request, ObserveAck* ack,
                    ErrorReply* error_reply, std::string* transport_error);

  // Raw frame I/O (fuzz and protocol tests).
  bool SendMessage(MessageType type, std::string_view payload,
                   std::string* error);
  // Sends raw bytes with no framing at all (corruption injection).
  bool SendRaw(std::string_view bytes, std::string* error);
  // Blocks until one well-formed frame arrives.
  bool ReceiveMessage(MessageType* type, std::string* payload,
                      std::string* error);

  int fd() const { return fd_; }

 private:
  explicit Client(int fd) : fd_(fd) {}

  int fd_ = -1;
  std::string recv_buf_;
  size_t recv_pos_ = 0;
  std::string scratch_;
};

}  // namespace stage::net

#endif  // STAGE_NET_CLIENT_H_
