#include "stage/net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace stage::net {

namespace {

void SetClientError(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
}

}  // namespace

std::unique_ptr<Client> Client::Connect(const std::string& host, int port,
                                        std::string* error) {
  if (port <= 0 || port > 65535) {
    SetClientError(error, "port out of range");
    return nullptr;
  }
  const int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    SetClientError(error, std::string("socket: ") + std::strerror(errno));
    return nullptr;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    SetClientError(error, "host must be an IPv4 address literal");
    return nullptr;
  }
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    SetClientError(error, std::string("connect: ") + std::strerror(errno));
    close(fd);
    return nullptr;
  }
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::unique_ptr<Client>(new Client(fd));
}

Client::~Client() {
  if (fd_ >= 0) close(fd_);
}

bool Client::SendMessage(MessageType type, std::string_view payload,
                         std::string* error) {
  scratch_.clear();
  AppendMessage(&scratch_, type, payload);
  return SendRaw(scratch_, error);
}

bool Client::SendRaw(std::string_view bytes, std::string* error) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    // MSG_NOSIGNAL: a server-side close must surface as EPIPE, not kill
    // the process with SIGPIPE.
    const ssize_t n =
        send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    SetClientError(error, std::string("write: ") + std::strerror(errno));
    return false;
  }
  return true;
}

bool Client::ReceiveMessage(MessageType* type, std::string* payload,
                            std::string* error) {
  while (true) {
    FrameHeader header;
    std::string_view payload_view;
    size_t frame_bytes = 0;
    const FrameStatus status = DecodeFrame(
        std::string_view(recv_buf_).substr(recv_pos_), kWireMagic,
        kWireVersion, kMaxWirePayloadBytes, &header, &payload_view,
        &frame_bytes);
    if (status == FrameStatus::kOk) {
      *type = static_cast<MessageType>(header.type);
      payload->assign(payload_view);
      recv_pos_ += frame_bytes;
      if (recv_pos_ == recv_buf_.size()) {
        recv_buf_.clear();
        recv_pos_ = 0;
      }
      return true;
    }
    if (status != FrameStatus::kNeedMore) {
      SetClientError(error, std::string("bad frame from server: ") +
                                std::string(FrameStatusName(status)));
      return false;
    }
    char chunk[16 * 1024];
    const ssize_t n = read(fd_, chunk, sizeof(chunk));
    if (n > 0) {
      recv_buf_.append(chunk, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    SetClientError(error, n == 0 ? "server closed the connection"
                                 : std::string("read: ") +
                                       std::strerror(errno));
    return false;
  }
}

Client::RpcStatus Client::Predict(const PredictRequest& request,
                                  PredictResponse* response,
                                  ErrorReply* error_reply,
                                  std::string* transport_error) {
  std::string payload;
  AppendPredictRequest(&payload, request);
  if (!SendMessage(MessageType::kPredictRequest, payload, transport_error)) {
    return RpcStatus::kTransport;
  }
  MessageType type;
  std::string reply;
  if (!ReceiveMessage(&type, &reply, transport_error)) {
    return RpcStatus::kTransport;
  }
  switch (type) {
    case MessageType::kPredictResponse:
      if (!ParsePredictResponse(reply, response)) {
        SetClientError(transport_error, "predict response did not parse");
        return RpcStatus::kTransport;
      }
      return RpcStatus::kOk;
    case MessageType::kError: {
      ErrorReply parsed;
      if (!ParseErrorReply(reply, &parsed)) {
        SetClientError(transport_error, "error reply did not parse");
        return RpcStatus::kTransport;
      }
      if (error_reply != nullptr) *error_reply = std::move(parsed);
      return RpcStatus::kError;
    }
    case MessageType::kShutdown:
      return RpcStatus::kShutdown;
    default:
      SetClientError(transport_error, "unexpected reply type");
      return RpcStatus::kTransport;
  }
}

Client::RpcStatus Client::Observe(const ObserveRequest& request,
                                  ObserveAck* ack, ErrorReply* error_reply,
                                  std::string* transport_error) {
  std::string payload;
  AppendObserveRequest(&payload, request);
  if (!SendMessage(MessageType::kObserveRequest, payload, transport_error)) {
    return RpcStatus::kTransport;
  }
  MessageType type;
  std::string reply;
  if (!ReceiveMessage(&type, &reply, transport_error)) {
    return RpcStatus::kTransport;
  }
  switch (type) {
    case MessageType::kObserveAck:
      if (!ParseObserveAck(reply, ack)) {
        SetClientError(transport_error, "observe ack did not parse");
        return RpcStatus::kTransport;
      }
      return RpcStatus::kOk;
    case MessageType::kError: {
      ErrorReply parsed;
      if (!ParseErrorReply(reply, &parsed)) {
        SetClientError(transport_error, "error reply did not parse");
        return RpcStatus::kTransport;
      }
      if (error_reply != nullptr) *error_reply = std::move(parsed);
      return RpcStatus::kError;
    }
    case MessageType::kShutdown:
      return RpcStatus::kShutdown;
    default:
      SetClientError(transport_error, "unexpected reply type");
      return RpcStatus::kTransport;
  }
}

}  // namespace stage::net
