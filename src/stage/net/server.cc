#include "stage/net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "stage/common/macros.h"
#include "stage/core/predictor.h"

namespace stage::net {

std::string ServerConfig::Validate() const {
  if (host.empty()) return "host must not be empty";
  if (port < 0 || port > 65535) return "port must be in [0, 65535]";
  if (num_workers < 1 || num_workers > 256) {
    return "num_workers must be in [1, 256]";
  }
  if (batch_window_us < 0) {
    return "batch_window_us must be >= 0 (0 disables batching)";
  }
  if (batch_window_us > 10'000'000) {
    return "batch_window_us above 10s is a config error, not a batch window";
  }
  if (max_batch < 1) return "max_batch must be >= 1";
  if (queue_bound < max_batch) {
    return "queue_bound must be >= max_batch (a full batch must fit)";
  }
  if (max_connections < 1) return "max_connections must be >= 1";
  if (max_frame_payload_bytes < 1 ||
      max_frame_payload_bytes > static_cast<int64_t>(kMaxWirePayloadBytes)) {
    return "max_frame_payload_bytes must be in [1, kMaxWirePayloadBytes]";
  }
  if (max_json_line_bytes < 2) return "max_json_line_bytes must be >= 2";
  return "";
}

namespace {

using Clock = std::chrono::steady_clock;

// Read chunk per read(2) call; the loop drains until EAGAIN regardless.
constexpr size_t kReadChunkBytes = 64 * 1024;
// A connection whose peer stops reading gets closed once this much
// response data is stuck in its write buffer (slow-consumer protection).
constexpr size_t kMaxWriteBufferBytes = 16u << 20;
// Compact the consumed prefix of a read buffer beyond this.
constexpr size_t kCompactThresholdBytes = 64 * 1024;
// epoll user-data value reserved for the worker's mailbox eventfd.
constexpr uint64_t kEventFdTag = 0;

uint64_t NowNanosSince(Clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           start)
          .count());
}

struct Connection {
  int fd = -1;
  uint64_t id = 0;
  enum class Mode { kUnknown, kBinary, kJson };
  Mode mode = Mode::kUnknown;
  std::string read_buf;
  size_t read_pos = 0;
  std::string write_buf;
  size_t write_pos = 0;
  bool want_write = false;   // EPOLLOUT currently armed.
  bool peer_closed = false;  // EPOLLRDHUP seen; close once writes drain.
  bool close_after_write = false;  // Fatal protocol error already queued.
};

// A finished batched prediction routed back to the worker that owns the
// connection.
struct Completion {
  uint64_t conn_id = 0;
  uint64_t request_id = 0;
  core::Prediction prediction;
  Clock::time_point enqueue_time{};
};

}  // namespace

struct Server::Impl {
  fleet_serve::FleetService* fleet = nullptr;
  ServerConfig config;
  ServerOptions options;

  int listen_fd = -1;
  int bound_port = 0;
  int listener_event_fd = -1;
  int listener_epoll_fd = -1;
  std::thread listener_thread;

  struct Worker {
    int index = 0;
    int epoll_fd = -1;
    int event_fd = -1;
    std::thread thread;

    // Mailbox: cross-thread input, signaled via event_fd.
    std::mutex mutex;
    std::vector<int> pending_fds;
    std::vector<Completion> pending_completions;
    bool stop_requested = false;

    // Worker-thread-private state.
    std::unordered_map<uint64_t, Connection> conns;
    std::string scratch;  // Reused payload-encoding buffer.
  };
  std::vector<std::unique_ptr<Worker>> workers;

  std::unique_ptr<MicroBatcher> batcher;  // Null when batching is disabled.

  std::atomic<bool> stopping{false};
  std::mutex shutdown_mutex;
  bool shutdown_done = false;

  uint64_t next_conn_id = 1;  // Listener thread only; round-robin counter.
  // Connection ids start at 1 (0 is kEventFdTag). Workers assign from a
  // shared atomic so ids are unique across the whole server.
  std::atomic<uint64_t> conn_id_source{1};

  // ---- Telemetry ----
  std::atomic<uint64_t> connections_accepted{0};
  std::atomic<uint64_t> connections_rejected{0};
  std::atomic<uint64_t> connections_active{0};
  std::atomic<uint64_t> frames_in{0};
  std::atomic<uint64_t> frames_out{0};
  std::atomic<uint64_t> json_lines_in{0};
  std::atomic<uint64_t> json_lines_out{0};
  std::atomic<uint64_t> predictions_batched{0};
  std::atomic<uint64_t> predictions_inline{0};
  std::atomic<uint64_t> observes{0};
  std::atomic<uint64_t> errors_by_code[6] = {};
  obs::Histogram batch_size_hist{
      std::vector<double>{1, 2, 4, 8, 16, 32, 64, 128, 256}};
  metrics::LatencyRecorder frame_latency{2};

  // ---- Setup ----
  void Start();
  void OpenListener();
  void RegisterMetrics();

  // ---- Listener thread ----
  void ListenerLoop();
  void AcceptPending();

  // ---- Worker thread ----
  void WorkerLoop(Worker& w);
  // Returns true when a stop request was consumed.
  bool DrainMailbox(Worker& w);
  void AddConnection(Worker& w, int fd);
  void CloseConnection(Worker& w, Connection& conn);
  void HandleReadable(Worker& w, Connection& conn);
  void HandleWritable(Worker& w, Connection& conn);
  void ProcessReadBuffer(Worker& w, Connection& conn);
  void HandleBinaryFrame(Worker& w, Connection& conn, uint32_t type,
                         std::string_view payload);
  void HandleJsonLine(Worker& w, Connection& conn, std::string_view line);
  void HandlePredict(Worker& w, Connection& conn, PredictRequest request);
  void HandleObserve(Worker& w, Connection& conn, ObserveRequest request);
  void SendError(Worker& w, Connection& conn, uint64_t request_id,
                 WireError code, std::string_view message);
  void SendMessage(Connection& conn, MessageType type,
                   std::string_view payload);
  void CompleteRequest(Worker& w, const Completion& completion);
  // Flushes as much of conn.write_buf as the socket accepts; arms or
  // disarms EPOLLOUT to match. Closes the connection on write errors or a
  // drained buffer with close_after_write/peer_closed set.
  void FlushWrite(Worker& w, Connection& conn);
  void UpdateEpollInterest(Worker& w, Connection& conn, bool want_write);
  void FinishWorkerShutdown(Worker& w);

  // ---- Batcher thread ----
  void OnBatchFlush(std::vector<BatchItem> batch, FlushReason reason);

  void CountError(WireError code) {
    errors_by_code[static_cast<size_t>(code)].fetch_add(
        1, std::memory_order_relaxed);
  }
};

// ---- Setup ---------------------------------------------------------------

Server::Server(fleet_serve::FleetService* fleet, const ServerConfig& config,
               const ServerOptions& options)
    : impl_(std::make_unique<Impl>()) {
  STAGE_CHECK(fleet != nullptr);
  const std::string error = config.Validate();
  STAGE_CHECK_MSG(error.empty(), error.c_str());
  impl_->fleet = fleet;
  impl_->config = config;
  impl_->options = options;
  impl_->Start();
}

Server::~Server() {
  Shutdown();
  if (impl_->options.metrics != nullptr) {
    impl_->options.metrics->UnregisterAll(impl_.get());
  }
}

int Server::port() const { return impl_->bound_port; }

ServerStats Server::Stats() const {
  const Impl& impl = *impl_;
  ServerStats stats;
  stats.connections_accepted =
      impl.connections_accepted.load(std::memory_order_relaxed);
  stats.connections_rejected =
      impl.connections_rejected.load(std::memory_order_relaxed);
  stats.frames_in = impl.frames_in.load(std::memory_order_relaxed);
  stats.frames_out = impl.frames_out.load(std::memory_order_relaxed);
  stats.json_lines_in = impl.json_lines_in.load(std::memory_order_relaxed);
  stats.json_lines_out = impl.json_lines_out.load(std::memory_order_relaxed);
  stats.predictions_batched =
      impl.predictions_batched.load(std::memory_order_relaxed);
  stats.predictions_inline =
      impl.predictions_inline.load(std::memory_order_relaxed);
  stats.observes = impl.observes.load(std::memory_order_relaxed);
  for (size_t i = 0; i < stats.errors_by_code.size(); ++i) {
    stats.errors_by_code[i] =
        impl.errors_by_code[i].load(std::memory_order_relaxed);
  }
  if (impl.batcher != nullptr) {
    for (int r = 0; r < kNumFlushReasons; ++r) {
      stats.batch_flushes[r] =
          impl.batcher->flushes(static_cast<FlushReason>(r));
    }
    stats.batch_submitted = impl.batcher->submitted();
    stats.batch_rejected = impl.batcher->rejected();
    stats.batch_queue_depth = impl.batcher->queue_depth();
    stats.effective_window_us = impl.batcher->effective_window_us();
  }
  stats.connections_active =
      impl.connections_active.load(std::memory_order_relaxed);
  return stats;
}

obs::Histogram::Snapshot Server::batch_size_histogram() const {
  return impl_->batch_size_hist.TakeSnapshot();
}

const metrics::LatencyRecorder& Server::frame_latency() const {
  return impl_->frame_latency;
}

void Server::Impl::Start() {
  OpenListener();

  if (config.batch_window_us > 0) {
    MicroBatcherConfig batcher_config;
    batcher_config.window_us = static_cast<uint64_t>(config.batch_window_us);
    batcher_config.max_batch = static_cast<size_t>(config.max_batch);
    batcher_config.queue_bound = static_cast<size_t>(config.queue_bound);
    batcher = std::make_unique<MicroBatcher>(
        batcher_config, [this](std::vector<BatchItem> batch,
                               FlushReason reason) {
          OnBatchFlush(std::move(batch), reason);
        });
  }

  workers.reserve(static_cast<size_t>(config.num_workers));
  for (int i = 0; i < config.num_workers; ++i) {
    auto worker = std::make_unique<Worker>();
    worker->index = i;
    worker->epoll_fd = epoll_create1(EPOLL_CLOEXEC);
    STAGE_CHECK(worker->epoll_fd >= 0);
    worker->event_fd = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    STAGE_CHECK(worker->event_fd >= 0);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kEventFdTag;
    STAGE_CHECK(epoll_ctl(worker->epoll_fd, EPOLL_CTL_ADD, worker->event_fd,
                          &ev) == 0);
    workers.push_back(std::move(worker));
  }
  for (auto& worker : workers) {
    Worker* w = worker.get();
    w->thread = std::thread([this, w] { WorkerLoop(*w); });
  }

  listener_epoll_fd = epoll_create1(EPOLL_CLOEXEC);
  STAGE_CHECK(listener_epoll_fd >= 0);
  listener_event_fd = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  STAGE_CHECK(listener_event_fd >= 0);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kEventFdTag;
  STAGE_CHECK(epoll_ctl(listener_epoll_fd, EPOLL_CTL_ADD, listener_event_fd,
                        &ev) == 0);
  ev.events = EPOLLIN;
  ev.data.u64 = 1;  // The listen socket.
  STAGE_CHECK(epoll_ctl(listener_epoll_fd, EPOLL_CTL_ADD, listen_fd, &ev) ==
              0);
  listener_thread = std::thread([this] { ListenerLoop(); });

  RegisterMetrics();
}

void Server::Impl::OpenListener() {
  listen_fd = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  STAGE_CHECK(listen_fd >= 0);
  const int one = 1;
  setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(config.port));
  STAGE_CHECK_MSG(
      inet_pton(AF_INET, config.host.c_str(), &addr.sin_addr) == 1,
      "server host must be an IPv4 address literal");
  STAGE_CHECK_MSG(bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                       sizeof(addr)) == 0,
                  "bind failed");
  STAGE_CHECK(listen(listen_fd, 128) == 0);
  socklen_t len = sizeof(addr);
  STAGE_CHECK(getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                          &len) == 0);
  bound_port = ntohs(addr.sin_port);
}

void Server::Impl::RegisterMetrics() {
  obs::MetricsRegistry* registry = options.metrics;
  if (registry == nullptr) return;
  const std::string& p = options.metrics_prefix;
  const void* owner = this;
  auto counter = [&](const std::string& name, std::atomic<uint64_t>* value) {
    registry->RegisterCounterCallback(owner, p + name, [value] {
      return value->load(std::memory_order_relaxed);
    });
  };
  counter("connections_total", &connections_accepted);
  counter("connections_rejected_total", &connections_rejected);
  counter("frames_in_total", &frames_in);
  counter("frames_out_total", &frames_out);
  counter("json_lines_in_total", &json_lines_in);
  counter("json_lines_out_total", &json_lines_out);
  counter("predictions_total{mode=\"batched\"}", &predictions_batched);
  counter("predictions_total{mode=\"inline\"}", &predictions_inline);
  counter("observes_total", &observes);
  for (uint32_t code = 1; code <= 5; ++code) {
    counter("errors_total{code=\"" +
                std::string(WireErrorName(static_cast<WireError>(code))) +
                "\"}",
            &errors_by_code[code]);
  }
  registry->RegisterGaugeCallback(owner, p + "connections_active", [this] {
    return static_cast<double>(
        connections_active.load(std::memory_order_relaxed));
  });
  registry->RegisterHistogramCallback(owner, p + "batch_size", [this] {
    return batch_size_hist.TakeSnapshot();
  });
  registry->RegisterHistogramCallback(
      owner, p + "frame_latency_nanos{op=\"predict\"}", [this] {
        return frame_latency.histogram_snapshot(Server::kLatencyPredict);
      });
  registry->RegisterHistogramCallback(
      owner, p + "frame_latency_nanos{op=\"observe\"}", [this] {
        return frame_latency.histogram_snapshot(Server::kLatencyObserve);
      });
  if (batcher != nullptr) {
    MicroBatcher* b = batcher.get();
    for (int r = 0; r < kNumFlushReasons; ++r) {
      registry->RegisterCounterCallback(
          owner,
          p + "batch_flushes_total{reason=\"" +
              std::string(FlushReasonName(static_cast<FlushReason>(r))) +
              "\"}",
          [b, r] { return b->flushes(static_cast<FlushReason>(r)); });
    }
    registry->RegisterCounterCallback(owner, p + "batch_rejected_total",
                                      [b] { return b->rejected(); });
    registry->RegisterGaugeCallback(owner, p + "batch_queue_depth", [b] {
      return static_cast<double>(b->queue_depth());
    });
    registry->RegisterGaugeCallback(
        owner, p + "batch_window_effective_us",
        [b] { return static_cast<double>(b->effective_window_us()); });
  }
}

// ---- Shutdown ------------------------------------------------------------

void Server::Shutdown() {
  Impl& impl = *impl_;
  {
    std::lock_guard<std::mutex> lock(impl.shutdown_mutex);
    if (impl.shutdown_done) return;
    impl.shutdown_done = true;
  }
  // 1. Stop the intake: no new connections, workers start refusing new
  //    work with kShuttingDown.
  impl.stopping.store(true, std::memory_order_release);
  uint64_t one = 1;
  (void)!write(impl.listener_event_fd, &one, sizeof(one));
  impl.listener_thread.join();
  close(impl.listen_fd);
  close(impl.listener_epoll_fd);
  close(impl.listener_event_fd);

  // 2. Drain the aggregator: every accepted request is flushed through
  //    PredictBatch and its completion lands in a worker mailbox before
  //    Drain returns.
  if (impl.batcher != nullptr) impl.batcher->Drain();

  // 3. Stop the workers. Each drains its mailbox (delivering the step-2
  //    completions), then writes a shutdown frame to every open connection
  //    and closes it.
  for (auto& worker : impl.workers) {
    {
      std::lock_guard<std::mutex> lock(worker->mutex);
      worker->stop_requested = true;
    }
    (void)!write(worker->event_fd, &one, sizeof(one));
  }
  for (auto& worker : impl.workers) {
    worker->thread.join();
    close(worker->epoll_fd);
    close(worker->event_fd);
  }
}

// ---- Listener thread -----------------------------------------------------

void Server::Impl::ListenerLoop() {
  epoll_event events[8];
  while (true) {
    const int n = epoll_wait(listener_epoll_fd, events, 8, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      if (events[i].data.u64 == kEventFdTag) {
        uint64_t drained = 0;
        (void)!read(listener_event_fd, &drained, sizeof(drained));
      } else {
        AcceptPending();
      }
    }
    if (stopping.load(std::memory_order_acquire)) return;
  }
}

void Server::Impl::AcceptPending() {
  while (true) {
    const int fd =
        accept4(listen_fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or a transient accept error: wait for epoll.
    }
    if (connections_active.load(std::memory_order_relaxed) >=
        static_cast<uint64_t>(config.max_connections)) {
      connections_rejected.fetch_add(1, std::memory_order_relaxed);
      close(fd);
      continue;
    }
    const int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    Worker& w = *workers[next_conn_id % workers.size()];
    ++next_conn_id;
    {
      std::lock_guard<std::mutex> lock(w.mutex);
      w.pending_fds.push_back(fd);
    }
    uint64_t wake = 1;
    (void)!write(w.event_fd, &wake, sizeof(wake));
  }
}

// ---- Worker thread -------------------------------------------------------

void Server::Impl::WorkerLoop(Worker& w) {
  epoll_event events[64];
  while (true) {
    const int n = epoll_wait(w.epoll_fd, events, 64, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    bool stop = false;
    for (int i = 0; i < n; ++i) {
      if (events[i].data.u64 == kEventFdTag) {
        uint64_t drained = 0;
        (void)!read(w.event_fd, &drained, sizeof(drained));
        stop = DrainMailbox(w) || stop;
        continue;
      }
      const auto it = w.conns.find(events[i].data.u64);
      if (it == w.conns.end()) continue;  // Closed earlier this wakeup.
      Connection& conn = it->second;
      const uint32_t ev = events[i].events;
      if ((ev & (EPOLLHUP | EPOLLERR)) != 0) {
        CloseConnection(w, conn);
        continue;
      }
      if ((ev & EPOLLRDHUP) != 0) conn.peer_closed = true;
      if ((ev & EPOLLIN) != 0) {
        HandleReadable(w, conn);
        if (w.conns.find(events[i].data.u64) == w.conns.end()) continue;
      }
      if ((ev & EPOLLOUT) != 0) HandleWritable(w, conn);
    }
    if (stop) {
      FinishWorkerShutdown(w);
      return;
    }
  }
}

bool Server::Impl::DrainMailbox(Worker& w) {
  std::vector<int> fds;
  std::vector<Completion> completions;
  bool stop = false;
  {
    std::lock_guard<std::mutex> lock(w.mutex);
    fds.swap(w.pending_fds);
    completions.swap(w.pending_completions);
    stop = w.stop_requested;
  }
  // Completions first: on a stop request they are the drained in-flight
  // batches and must reach their connections before the shutdown frames.
  for (const Completion& completion : completions) {
    CompleteRequest(w, completion);
  }
  for (const int fd : fds) {
    if (stop) {
      // Accepted before the listener stopped but never registered; there
      // is nothing half-done on it.
      close(fd);
      continue;
    }
    AddConnection(w, fd);
  }
  return stop;
}

void Server::Impl::AddConnection(Worker& w, int fd) {
  const uint64_t id = conn_id_source.fetch_add(1, std::memory_order_relaxed);
  Connection conn;
  conn.fd = fd;
  conn.id = id;
  auto [it, inserted] = w.conns.emplace(id, std::move(conn));
  STAGE_CHECK(inserted);
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLRDHUP | EPOLLET;
  ev.data.u64 = id;
  if (epoll_ctl(w.epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
    close(fd);
    w.conns.erase(it);
    return;
  }
  connections_accepted.fetch_add(1, std::memory_order_relaxed);
  connections_active.fetch_add(1, std::memory_order_relaxed);
}

void Server::Impl::CloseConnection(Worker& w, Connection& conn) {
  epoll_ctl(w.epoll_fd, EPOLL_CTL_DEL, conn.fd, nullptr);
  close(conn.fd);
  connections_active.fetch_sub(1, std::memory_order_relaxed);
  w.conns.erase(conn.id);  // `conn` is dangling after this line.
}

void Server::Impl::HandleReadable(Worker& w, Connection& conn) {
  const uint64_t conn_id = conn.id;
  // Edge-triggered: read until EAGAIN or the kernel reports EOF.
  bool eof = false;
  while (true) {
    const size_t old_size = conn.read_buf.size();
    conn.read_buf.resize(old_size + kReadChunkBytes);
    const ssize_t n =
        read(conn.fd, conn.read_buf.data() + old_size, kReadChunkBytes);
    if (n > 0) {
      conn.read_buf.resize(old_size + static_cast<size_t>(n));
      continue;
    }
    conn.read_buf.resize(old_size);
    if (n == 0) {
      eof = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    CloseConnection(w, conn);
    return;
  }
  ProcessReadBuffer(w, conn);
  // `conn` may have been closed (and erased) inside the processing above;
  // only a fresh lookup may be dereferenced.
  const auto it = w.conns.find(conn_id);
  if (it == w.conns.end()) return;
  Connection& live = it->second;
  if (eof) {
    live.peer_closed = true;
    // Half-close: finish writing queued responses, then close.
    if (live.write_pos >= live.write_buf.size()) CloseConnection(w, live);
  }
}

void Server::Impl::HandleWritable(Worker& w, Connection& conn) {
  FlushWrite(w, conn);
}

void Server::Impl::ProcessReadBuffer(Worker& w, Connection& conn) {
  // Request handlers can close the connection (write error, slow
  // consumer), which erases it from the map and leaves the reference
  // dangling — so after every handler call the connection is re-looked-up
  // by id before being touched again.
  const uint64_t conn_id = conn.id;
  const auto live = [&]() -> Connection* {
    const auto it = w.conns.find(conn_id);
    return it == w.conns.end() ? nullptr : &it->second;
  };
  if (conn.close_after_write) {
    // Already poisoned; drop further input.
    conn.read_pos = 0;
    conn.read_buf.clear();
    return;
  }
  if (conn.mode == Connection::Mode::kUnknown &&
      conn.read_pos < conn.read_buf.size()) {
    conn.mode = conn.read_buf[conn.read_pos] == '{'
                    ? Connection::Mode::kJson
                    : Connection::Mode::kBinary;
  }
  if (conn.mode == Connection::Mode::kBinary) {
    while (true) {
      const std::string_view buffered =
          std::string_view(conn.read_buf).substr(conn.read_pos);
      FrameHeader header;
      std::string_view payload;
      size_t frame_bytes = 0;
      const FrameStatus status = DecodeFrame(
          buffered, kWireMagic, kWireVersion,
          static_cast<uint64_t>(config.max_frame_payload_bytes), &header,
          &payload, &frame_bytes);
      if (status == FrameStatus::kNeedMore) break;
      if (status != FrameStatus::kOk) {
        // The stream is unsynchronized (bad magic/version/CRC/length) —
        // there is no way to find the next frame boundary, so report and
        // close.
        SendError(w, conn, 0, WireError::kBadFrame, FrameStatusName(status));
        Connection* c = live();
        if (c != nullptr) {
          c->close_after_write = true;
          FlushWrite(w, *c);
        }
        return;
      }
      frames_in.fetch_add(1, std::memory_order_relaxed);
      conn.read_pos += frame_bytes;
      HandleBinaryFrame(w, conn, header.type, payload);
      if (live() == nullptr) return;
      if (conn.close_after_write) break;
    }
  } else if (conn.mode == Connection::Mode::kJson) {
    while (true) {
      const size_t nl = conn.read_buf.find('\n', conn.read_pos);
      if (nl == std::string::npos) {
        if (conn.read_buf.size() - conn.read_pos >
            static_cast<size_t>(config.max_json_line_bytes)) {
          SendError(w, conn, 0, WireError::kMalformed,
                    "JSON line exceeds the line-length cap");
          Connection* c = live();
          if (c != nullptr) {
            c->close_after_write = true;
            FlushWrite(w, *c);
          }
          return;
        }
        break;
      }
      std::string_view line =
          std::string_view(conn.read_buf).substr(conn.read_pos,
                                                 nl - conn.read_pos);
      if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
      conn.read_pos = nl + 1;
      if (line.empty()) continue;
      json_lines_in.fetch_add(1, std::memory_order_relaxed);
      HandleJsonLine(w, conn, line);
      if (live() == nullptr) return;
      if (conn.close_after_write) break;
    }
  }
  // Compact the consumed prefix.
  if (conn.read_pos == conn.read_buf.size()) {
    conn.read_buf.clear();
    conn.read_pos = 0;
  } else if (conn.read_pos > kCompactThresholdBytes) {
    conn.read_buf.erase(0, conn.read_pos);
    conn.read_pos = 0;
  }
}

void Server::Impl::HandleBinaryFrame(Worker& w, Connection& conn,
                                     uint32_t type,
                                     std::string_view payload) {
  switch (static_cast<MessageType>(type)) {
    case MessageType::kPredictRequest: {
      PredictRequest request;
      if (!ParsePredictRequest(payload, &request)) {
        SendError(w, conn, 0, WireError::kMalformed,
                  "predict request payload did not parse");
        return;
      }
      HandlePredict(w, conn, std::move(request));
      return;
    }
    case MessageType::kObserveRequest: {
      ObserveRequest request;
      if (!ParseObserveRequest(payload, &request)) {
        SendError(w, conn, 0, WireError::kMalformed,
                  "observe request payload did not parse");
        return;
      }
      HandleObserve(w, conn, std::move(request));
      return;
    }
    default:
      SendError(w, conn, 0, WireError::kMalformed,
                "unexpected message type from a client");
      return;
  }
}

void Server::Impl::HandleJsonLine(Worker& w, Connection& conn,
                                  std::string_view line) {
  bool is_predict = false;
  PredictRequest predict;
  ObserveRequest observe;
  std::string error;
  if (!ParseJsonRequest(line, &is_predict, &predict, &observe, &error)) {
    SendError(w, conn, 0, WireError::kMalformed, error);
    return;
  }
  if (is_predict) {
    HandlePredict(w, conn, std::move(predict));
  } else {
    HandleObserve(w, conn, std::move(observe));
  }
}

void Server::Impl::HandlePredict(Worker& w, Connection& conn,
                                 PredictRequest request) {
  const Clock::time_point start = Clock::now();
  if (stopping.load(std::memory_order_acquire)) {
    SendError(w, conn, request.request_id, WireError::kShuttingDown,
              "server is draining");
    return;
  }
  // Admission control here, not in the batcher: FleetService treats an
  // unknown tenant as a caller bug (fatal), and tenants are never
  // unregistered, so a positive check stays true at flush time.
  if (!fleet->IsRegistered(request.tenant)) {
    SendError(w, conn, request.request_id, WireError::kUnknownTenant,
              "tenant is not registered");
    return;
  }
  if (batcher == nullptr) {
    // Batching disabled: predict inline on the worker thread.
    const core::QueryContext context = core::MakeQueryContext(
        request.plan, request.concurrent_queries,
        static_cast<uint64_t>(request.tick));
    const core::Prediction prediction =
        fleet->Predict(request.tenant, context);
    predictions_inline.fetch_add(1, std::memory_order_relaxed);
    PredictResponse response;
    response.request_id = request.request_id;
    response.seconds = prediction.seconds;
    response.source = prediction.source;
    response.uncertainty_log_std = prediction.uncertainty_log_std;
    if (conn.mode == Connection::Mode::kJson) {
      AppendJsonPredictResponse(&conn.write_buf, response);
      json_lines_out.fetch_add(1, std::memory_order_relaxed);
    } else {
      w.scratch.clear();
      AppendPredictResponse(&w.scratch, response);
      SendMessage(conn, MessageType::kPredictResponse, w.scratch);
    }
    frame_latency.Record(Server::kLatencyPredict, NowNanosSince(start));
    FlushWrite(w, conn);
    return;
  }
  BatchItem item;
  item.conn_id = conn.id;
  item.worker = w.index;
  item.request_id = request.request_id;
  item.tenant = request.tenant;
  item.plan = std::make_unique<plan::Plan>(std::move(request.plan));
  item.context = core::MakeQueryContext(*item.plan,
                                        request.concurrent_queries,
                                        static_cast<uint64_t>(request.tick));
  switch (batcher->Submit(std::move(item))) {
    case SubmitResult::kAccepted:
      return;  // The response arrives via the completion mailbox.
    case SubmitResult::kOverloaded:
      SendError(w, conn, request.request_id, WireError::kOverloaded,
                "batch queue is full; retry");
      return;
    case SubmitResult::kStopped:
      SendError(w, conn, request.request_id, WireError::kShuttingDown,
                "server is draining");
      return;
  }
}

void Server::Impl::HandleObserve(Worker& w, Connection& conn,
                                 ObserveRequest request) {
  const Clock::time_point start = Clock::now();
  if (stopping.load(std::memory_order_acquire)) {
    SendError(w, conn, request.request_id, WireError::kShuttingDown,
              "server is draining");
    return;
  }
  if (!fleet->IsRegistered(request.tenant)) {
    SendError(w, conn, request.request_id, WireError::kUnknownTenant,
              "tenant is not registered");
    return;
  }
  // Observations apply inline on the worker thread (only predictions
  // batch), so an acked observation is already in the tenant's cache and
  // training pool — the ack is never ahead of the state change.
  const core::QueryContext context = core::MakeQueryContext(
      request.plan, request.concurrent_queries,
      static_cast<uint64_t>(request.tick));
  fleet->Observe(request.tenant, context, request.exec_seconds);
  observes.fetch_add(1, std::memory_order_relaxed);
  ObserveAck ack;
  ack.request_id = request.request_id;
  if (conn.mode == Connection::Mode::kJson) {
    AppendJsonObserveAck(&conn.write_buf, ack);
    json_lines_out.fetch_add(1, std::memory_order_relaxed);
  } else {
    w.scratch.clear();
    AppendObserveAck(&w.scratch, ack);
    SendMessage(conn, MessageType::kObserveAck, w.scratch);
  }
  frame_latency.Record(Server::kLatencyObserve, NowNanosSince(start));
  FlushWrite(w, conn);
}

void Server::Impl::SendError(Worker& w, Connection& conn,
                             uint64_t request_id, WireError code,
                             std::string_view message) {
  CountError(code);
  ErrorReply error;
  error.request_id = request_id;
  error.code = code;
  error.message = std::string(message);
  if (conn.mode == Connection::Mode::kJson) {
    AppendJsonError(&conn.write_buf, error);
    json_lines_out.fetch_add(1, std::memory_order_relaxed);
  } else {
    w.scratch.clear();
    AppendErrorReply(&w.scratch, error);
    SendMessage(conn, MessageType::kError, w.scratch);
  }
  FlushWrite(w, conn);
}

void Server::Impl::SendMessage(Connection& conn, MessageType type,
                               std::string_view payload) {
  AppendMessage(&conn.write_buf, type, payload);
  frames_out.fetch_add(1, std::memory_order_relaxed);
}

void Server::Impl::CompleteRequest(Worker& w, const Completion& completion) {
  const auto it = w.conns.find(completion.conn_id);
  if (it == w.conns.end()) return;  // Connection closed while in flight.
  Connection& conn = it->second;
  PredictResponse response;
  response.request_id = completion.request_id;
  response.seconds = completion.prediction.seconds;
  response.source = completion.prediction.source;
  response.uncertainty_log_std = completion.prediction.uncertainty_log_std;
  if (conn.mode == Connection::Mode::kJson) {
    AppendJsonPredictResponse(&conn.write_buf, response);
    json_lines_out.fetch_add(1, std::memory_order_relaxed);
  } else {
    w.scratch.clear();
    AppendPredictResponse(&w.scratch, response);
    SendMessage(conn, MessageType::kPredictResponse, w.scratch);
  }
  frame_latency.Record(Server::kLatencyPredict,
                       NowNanosSince(completion.enqueue_time));
  FlushWrite(w, conn);
}

void Server::Impl::FlushWrite(Worker& w, Connection& conn) {
  while (conn.write_pos < conn.write_buf.size()) {
    // MSG_NOSIGNAL: a vanished peer must surface as EPIPE on this write,
    // not kill the whole process with SIGPIPE.
    const ssize_t n =
        send(conn.fd, conn.write_buf.data() + conn.write_pos,
             conn.write_buf.size() - conn.write_pos, MSG_NOSIGNAL);
    if (n > 0) {
      conn.write_pos += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (conn.write_buf.size() - conn.write_pos > kMaxWriteBufferBytes) {
        // Slow consumer: responses are piling up faster than the peer
        // reads them.
        CloseConnection(w, conn);
        return;
      }
      if (!conn.want_write) UpdateEpollInterest(w, conn, true);
      return;
    }
    CloseConnection(w, conn);  // EPIPE / ECONNRESET / anything else.
    return;
  }
  conn.write_buf.clear();
  conn.write_pos = 0;
  if (conn.want_write) UpdateEpollInterest(w, conn, false);
  if (conn.close_after_write || conn.peer_closed) CloseConnection(w, conn);
}

void Server::Impl::UpdateEpollInterest(Worker& w, Connection& conn,
                                       bool want_write) {
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLRDHUP | EPOLLET |
              (want_write ? EPOLLOUT : 0u);
  ev.data.u64 = conn.id;
  if (epoll_ctl(w.epoll_fd, EPOLL_CTL_MOD, conn.fd, &ev) == 0) {
    conn.want_write = want_write;
  }
}

void Server::Impl::FinishWorkerShutdown(Worker& w) {
  // Completions were already delivered (DrainMailbox runs them before
  // reporting the stop); what remains is telling every peer goodbye.
  std::vector<uint64_t> ids;
  ids.reserve(w.conns.size());
  for (const auto& [id, conn] : w.conns) ids.push_back(id);
  for (const uint64_t id : ids) {
    const auto it = w.conns.find(id);
    if (it == w.conns.end()) continue;
    Connection& conn = it->second;
    if (conn.mode == Connection::Mode::kJson) {
      AppendJsonShutdown(&conn.write_buf);
      json_lines_out.fetch_add(1, std::memory_order_relaxed);
    } else {
      // kUnknown peers never sent a byte; binary is the default farewell.
      SendMessage(conn, MessageType::kShutdown, {});
    }
    // Bounded blocking flush: the event loop is gone, so poll directly.
    const Clock::time_point deadline =
        Clock::now() + std::chrono::milliseconds(200);
    while (conn.write_pos < conn.write_buf.size()) {
      const ssize_t n =
          send(conn.fd, conn.write_buf.data() + conn.write_pos,
               conn.write_buf.size() - conn.write_pos, MSG_NOSIGNAL);
      if (n > 0) {
        conn.write_pos += static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK) &&
          Clock::now() < deadline) {
        pollfd pfd{conn.fd, POLLOUT, 0};
        poll(&pfd, 1, 10);
        continue;
      }
      break;  // Peer gone or deadline hit; close regardless.
    }
    CloseConnection(w, conn);
  }
}

// ---- Batcher thread ------------------------------------------------------

void Server::Impl::OnBatchFlush(std::vector<BatchItem> batch,
                                FlushReason reason) {
  (void)reason;
  batch_size_hist.Record(static_cast<double>(batch.size()));
  // Group by tenant, preserving submit order within each group, then push
  // each group through the batched read path (one registry acquisition +
  // one batched-GEMM global pass per tenant instead of per request).
  std::unordered_map<fleet_serve::TenantId, std::vector<size_t>> groups;
  for (size_t i = 0; i < batch.size(); ++i) {
    groups[batch[i].tenant].push_back(i);
  }
  std::vector<std::vector<Completion>> per_worker(workers.size());
  std::vector<core::QueryContext> contexts;
  for (const auto& [tenant, indices] : groups) {
    contexts.clear();
    contexts.reserve(indices.size());
    for (const size_t i : indices) contexts.push_back(batch[i].context);
    const std::vector<core::Prediction> predictions =
        fleet->PredictBatch(tenant, contexts);
    for (size_t k = 0; k < indices.size(); ++k) {
      const BatchItem& item = batch[indices[k]];
      Completion completion;
      completion.conn_id = item.conn_id;
      completion.request_id = item.request_id;
      completion.prediction = predictions[k];
      completion.enqueue_time = item.enqueue_time;
      per_worker[static_cast<size_t>(item.worker)].push_back(completion);
    }
  }
  predictions_batched.fetch_add(batch.size(), std::memory_order_relaxed);
  for (size_t i = 0; i < workers.size(); ++i) {
    if (per_worker[i].empty()) continue;
    Worker& w = *workers[i];
    {
      std::lock_guard<std::mutex> lock(w.mutex);
      w.pending_completions.insert(
          w.pending_completions.end(),
          std::make_move_iterator(per_worker[i].begin()),
          std::make_move_iterator(per_worker[i].end()));
    }
    uint64_t wake = 1;
    (void)!write(w.event_fd, &wake, sizeof(wake));
  }
}

}  // namespace stage::net
