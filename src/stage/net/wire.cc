#include "stage/net/wire.h"

#include <cmath>
#include <vector>

#include "stage/net/json.h"
#include "stage/plan/operator_type.h"

namespace stage::net {

namespace {

// A wire string is u32 length + bytes, capped so a corrupt length cannot
// drive allocation (error messages are short).
constexpr uint32_t kMaxWireStringBytes = 4096;

void AppendString(std::string* out, std::string_view s) {
  AppendPod<uint32_t>(out, static_cast<uint32_t>(s.size()));
  out->append(s.data(), s.size());
}

bool ParseString(ByteReader* in, std::string* s) {
  uint32_t size = 0;
  if (!in->Read(&size) || size > kMaxWireStringBytes) return false;
  std::string_view bytes;
  if (!in->ReadBytes(size, &bytes)) return false;
  s->assign(bytes);
  return true;
}

// Shared head of predict/observe requests.
void AppendRequestHead(std::string* out, uint64_t request_id, uint64_t tenant,
                       int32_t concurrent_queries, uint64_t tick) {
  AppendPod(out, request_id);
  AppendPod(out, tenant);
  AppendPod(out, concurrent_queries);
  AppendPod(out, tick);
}

bool ParseRequestHead(ByteReader* in, uint64_t* request_id, uint64_t* tenant,
                      int32_t* concurrent_queries, uint64_t* tick) {
  return in->Read(request_id) && in->Read(tenant) &&
         in->Read(concurrent_queries) && in->Read(tick);
}

}  // namespace

std::string_view MessageTypeName(MessageType type) {
  switch (type) {
    case MessageType::kPredictRequest:
      return "predict-request";
    case MessageType::kPredictResponse:
      return "predict-response";
    case MessageType::kObserveRequest:
      return "observe-request";
    case MessageType::kObserveAck:
      return "observe-ack";
    case MessageType::kError:
      return "error";
    case MessageType::kShutdown:
      return "shutdown";
  }
  return "unknown";
}

std::string_view WireErrorName(WireError error) {
  switch (error) {
    case WireError::kMalformed:
      return "malformed";
    case WireError::kOverloaded:
      return "overloaded";
    case WireError::kUnknownTenant:
      return "unknown-tenant";
    case WireError::kShuttingDown:
      return "shutting-down";
    case WireError::kBadFrame:
      return "bad-frame";
  }
  return "unknown";
}

void AppendPlan(std::string* out, const plan::Plan& plan) {
  AppendPod<uint8_t>(out, static_cast<uint8_t>(plan.query_type()));
  AppendPod<uint32_t>(out, static_cast<uint32_t>(plan.node_count()));
  for (const plan::PlanNode& node : plan.nodes()) {
    AppendPod<uint8_t>(out, static_cast<uint8_t>(node.op));
    AppendPod(out, node.estimated_cost);
    AppendPod(out, node.estimated_cardinality);
    AppendPod(out, node.tuple_width);
    AppendPod<uint8_t>(out, static_cast<uint8_t>(node.s3_format));
    AppendPod(out, node.table_rows);
    AppendPod<uint32_t>(out, static_cast<uint32_t>(node.children.size()));
    for (const int32_t child : node.children) AppendPod(out, child);
  }
}

bool ParsePlan(ByteReader* in, plan::Plan* plan) {
  uint8_t query_type = 0;
  uint32_t node_count = 0;
  if (!in->Read(&query_type) || !in->Read(&node_count)) return false;
  if (node_count == 0 || node_count > kMaxWirePlanNodes) return false;
  // Each node is at least 1+8+8+8+1+8+4 bytes; reject a node count the
  // remaining payload cannot possibly hold before reserving anything.
  if (in->remaining() / 38 < node_count) return false;
  std::vector<plan::PlanNode> nodes(node_count);
  for (uint32_t i = 0; i < node_count; ++i) {
    plan::PlanNode& node = nodes[i];
    uint8_t op = 0;
    uint8_t s3_format = 0;
    uint32_t child_count = 0;
    if (!in->Read(&op) || !in->Read(&node.estimated_cost) ||
        !in->Read(&node.estimated_cardinality) ||
        !in->Read(&node.tuple_width) || !in->Read(&s3_format) ||
        !in->Read(&node.table_rows) || !in->Read(&child_count)) {
      return false;
    }
    if (op >= static_cast<uint8_t>(plan::OperatorType::kNumOperators)) {
      return false;
    }
    if (s3_format >= static_cast<uint8_t>(plan::S3Format::kNumFormats)) {
      return false;
    }
    node.op = static_cast<plan::OperatorType>(op);
    node.s3_format = static_cast<plan::S3Format>(s3_format);
    if (child_count > node_count || in->remaining() / 4 < child_count) {
      return false;
    }
    node.children.resize(child_count);
    for (uint32_t c = 0; c < child_count; ++c) {
      if (!in->Read(&node.children[c])) return false;
    }
  }
  return BuildWirePlan(query_type, std::move(nodes), plan);
}

bool BuildWirePlan(uint8_t query_type, std::vector<plan::PlanNode> nodes,
                   plan::Plan* plan) {
  if (query_type >= static_cast<uint8_t>(plan::QueryType::kNumQueryTypes)) {
    return false;
  }
  const size_t node_count = nodes.size();
  if (node_count == 0 || node_count > kMaxWirePlanNodes) return false;
  // The Plan constructor aborts on a malformed tree, so every structural
  // invariant is enforced here first: children strictly after their parent
  // (pre-order), a single parent each, node 0 the unparented root.
  std::vector<int> parent_count(node_count, 0);
  for (size_t i = 0; i < node_count; ++i) {
    for (const int32_t child : nodes[i].children) {
      if (child <= static_cast<int32_t>(i) ||
          child >= static_cast<int32_t>(node_count)) {
        return false;
      }
      if (++parent_count[child] > 1) return false;
    }
  }
  for (size_t i = 1; i < node_count; ++i) {
    if (parent_count[i] != 1) return false;
  }
  if (parent_count[0] != 0) return false;
  *plan = plan::Plan(static_cast<plan::QueryType>(query_type),
                     std::move(nodes));
  return true;
}

void AppendPredictRequest(std::string* out, const PredictRequest& request) {
  AppendRequestHead(out, request.request_id, request.tenant,
                    request.concurrent_queries, request.tick);
  AppendPlan(out, request.plan);
}

bool ParsePredictRequest(std::string_view payload, PredictRequest* request) {
  ByteReader in(payload);
  return ParseRequestHead(&in, &request->request_id, &request->tenant,
                          &request->concurrent_queries, &request->tick) &&
         ParsePlan(&in, &request->plan) && in.empty();
}

void AppendPredictResponse(std::string* out, const PredictResponse& response) {
  AppendPod(out, response.request_id);
  AppendPod(out, response.seconds);
  AppendPod<uint8_t>(out, static_cast<uint8_t>(response.source));
  AppendPod(out, response.uncertainty_log_std);
}

bool ParsePredictResponse(std::string_view payload,
                          PredictResponse* response) {
  ByteReader in(payload);
  uint8_t source = 0;
  if (!in.Read(&response->request_id) || !in.Read(&response->seconds) ||
      !in.Read(&source) || !in.Read(&response->uncertainty_log_std) ||
      !in.empty()) {
    return false;
  }
  if (source >= core::kNumPredictionSources) return false;
  response->source = static_cast<core::PredictionSource>(source);
  return true;
}

void AppendObserveRequest(std::string* out, const ObserveRequest& request) {
  AppendRequestHead(out, request.request_id, request.tenant,
                    request.concurrent_queries, request.tick);
  AppendPod(out, request.exec_seconds);
  AppendPlan(out, request.plan);
}

bool ParseObserveRequest(std::string_view payload, ObserveRequest* request) {
  ByteReader in(payload);
  if (!ParseRequestHead(&in, &request->request_id, &request->tenant,
                        &request->concurrent_queries, &request->tick) ||
      !in.Read(&request->exec_seconds)) {
    return false;
  }
  // The fleet's Observe path CHECKs exec_seconds >= 0; a wire peer must
  // not be able to trip that (NaN fails this comparison too).
  if (!(request->exec_seconds >= 0.0)) return false;
  return ParsePlan(&in, &request->plan) && in.empty();
}

void AppendObserveAck(std::string* out, const ObserveAck& ack) {
  AppendPod(out, ack.request_id);
}

bool ParseObserveAck(std::string_view payload, ObserveAck* ack) {
  ByteReader in(payload);
  return in.Read(&ack->request_id) && in.empty();
}

void AppendErrorReply(std::string* out, const ErrorReply& error) {
  AppendPod(out, error.request_id);
  AppendPod<uint32_t>(out, static_cast<uint32_t>(error.code));
  AppendString(out, error.message);
}

bool ParseErrorReply(std::string_view payload, ErrorReply* error) {
  ByteReader in(payload);
  uint32_t code = 0;
  if (!in.Read(&error->request_id) || !in.Read(&code) ||
      !ParseString(&in, &error->message) || !in.empty()) {
    return false;
  }
  if (code < static_cast<uint32_t>(WireError::kMalformed) ||
      code > static_cast<uint32_t>(WireError::kBadFrame)) {
    return false;
  }
  error->code = static_cast<WireError>(code);
  return true;
}

void AppendMessage(std::string* out, MessageType type,
                   std::string_view payload) {
  AppendFrame(out, kWireMagic, kWireVersion, static_cast<uint32_t>(type),
              payload);
}

// ---- JSON mode ----------------------------------------------------------

namespace {

void SetJsonError(std::string* error, std::string_view message) {
  if (error != nullptr) error->assign(message);
}

// Numeric field extractors. JSON numbers arrive as doubles; every cast to
// a narrower integer is range-checked first (casting an out-of-range
// double is undefined behavior, which a network peer must not reach).
bool GetFiniteNumber(const JsonValue& object, std::string_view key,
                     double* out) {
  const JsonValue* value = object.Find(key);
  if (value == nullptr || !value->is_number() ||
      !std::isfinite(value->number)) {
    return false;
  }
  *out = value->number;
  return true;
}

bool GetU64(const JsonValue& object, std::string_view key, uint64_t* out) {
  double number = 0.0;
  if (!GetFiniteNumber(object, key, &number) || number < 0.0 ||
      number > 9.007199254740992e15) {  // 2^53: exactly representable.
    return false;
  }
  *out = static_cast<uint64_t>(number);
  return true;
}

bool GetI32(const JsonValue& object, std::string_view key, int32_t* out) {
  double number = 0.0;
  if (!GetFiniteNumber(object, key, &number) || number < -2147483648.0 ||
      number > 2147483647.0) {
    return false;
  }
  *out = static_cast<int32_t>(number);
  return true;
}

bool GetU8Below(const JsonValue& object, std::string_view key, uint8_t limit,
                uint8_t* out) {
  double number = 0.0;
  if (!GetFiniteNumber(object, key, &number) || number < 0.0 ||
      number >= static_cast<double>(limit)) {
    return false;
  }
  *out = static_cast<uint8_t>(number);
  return true;
}

bool ParseJsonPlan(const JsonValue& request, plan::Plan* plan,
                   std::string* error) {
  const JsonValue* plan_value = request.Find("plan");
  if (plan_value == nullptr || !plan_value->is_object()) {
    SetJsonError(error, "missing plan object");
    return false;
  }
  uint8_t query_type = 0;
  if (!GetU8Below(*plan_value, "query_type",
                  static_cast<uint8_t>(plan::QueryType::kNumQueryTypes),
                  &query_type)) {
    SetJsonError(error, "bad plan.query_type");
    return false;
  }
  const JsonValue* nodes_value = plan_value->Find("nodes");
  if (nodes_value == nullptr || !nodes_value->is_array() ||
      nodes_value->array.empty() ||
      nodes_value->array.size() > kMaxWirePlanNodes) {
    SetJsonError(error, "bad plan.nodes");
    return false;
  }
  std::vector<plan::PlanNode> nodes(nodes_value->array.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    const JsonValue& node_value = nodes_value->array[i];
    if (!node_value.is_object()) {
      SetJsonError(error, "plan node is not an object");
      return false;
    }
    plan::PlanNode& node = nodes[i];
    uint8_t op = 0;
    uint8_t s3 = 0;
    if (!GetU8Below(node_value, "op",
                    static_cast<uint8_t>(plan::OperatorType::kNumOperators),
                    &op) ||
        !GetU8Below(node_value, "s3",
                    static_cast<uint8_t>(plan::S3Format::kNumFormats), &s3) ||
        !GetFiniteNumber(node_value, "cost", &node.estimated_cost) ||
        !GetFiniteNumber(node_value, "card", &node.estimated_cardinality) ||
        !GetFiniteNumber(node_value, "width", &node.tuple_width) ||
        !GetFiniteNumber(node_value, "rows", &node.table_rows)) {
      SetJsonError(error, "bad plan node field");
      return false;
    }
    node.op = static_cast<plan::OperatorType>(op);
    node.s3_format = static_cast<plan::S3Format>(s3);
    const JsonValue* children = node_value.Find("children");
    if (children != nullptr) {
      if (!children->is_array()) {
        SetJsonError(error, "plan node children is not an array");
        return false;
      }
      node.children.reserve(children->array.size());
      for (const JsonValue& child : children->array) {
        if (!child.is_number() || !std::isfinite(child.number) ||
            child.number < 0.0 ||
            child.number >= static_cast<double>(nodes.size())) {
          SetJsonError(error, "plan node child out of range");
          return false;
        }
        node.children.push_back(static_cast<int32_t>(child.number));
      }
    }
  }
  if (!BuildWirePlan(query_type, std::move(nodes), plan)) {
    SetJsonError(error, "plan tree is not a valid pre-order tree");
    return false;
  }
  return true;
}

bool ParseJsonRequestHead(const JsonValue& request, uint64_t* request_id,
                          uint64_t* tenant, int32_t* concurrent,
                          uint64_t* tick, std::string* error) {
  // `id` is optional (defaults to 0) so a one-off `nc` probe stays terse;
  // the rest of the head is mandatory.
  *request_id = 0;
  if (request.Find("id") != nullptr && !GetU64(request, "id", request_id)) {
    SetJsonError(error, "bad id");
    return false;
  }
  if (!GetU64(request, "tenant", tenant)) {
    SetJsonError(error, "bad tenant");
    return false;
  }
  if (!GetI32(request, "concurrent", concurrent)) {
    SetJsonError(error, "bad concurrent");
    return false;
  }
  *tick = 0;
  if (request.Find("tick") != nullptr && !GetU64(request, "tick", tick)) {
    SetJsonError(error, "bad tick");
    return false;
  }
  return true;
}

}  // namespace

bool ParseJsonRequest(std::string_view line, bool* is_predict,
                      PredictRequest* predict, ObserveRequest* observe,
                      std::string* error) {
  JsonValue request;
  if (!ParseJson(line, &request) || !request.is_object()) {
    SetJsonError(error, "line is not a JSON object");
    return false;
  }
  const JsonValue* type = request.Find("type");
  if (type == nullptr || !type->is_string()) {
    SetJsonError(error, "missing type");
    return false;
  }
  if (type->string_value == "predict") {
    *is_predict = true;
    return ParseJsonRequestHead(request, &predict->request_id,
                                &predict->tenant,
                                &predict->concurrent_queries, &predict->tick,
                                error) &&
           ParseJsonPlan(request, &predict->plan, error);
  }
  if (type->string_value == "observe") {
    *is_predict = false;
    if (!ParseJsonRequestHead(request, &observe->request_id,
                              &observe->tenant,
                              &observe->concurrent_queries, &observe->tick,
                              error)) {
      return false;
    }
    // Same guard as the binary parser: the fleet CHECKs exec_seconds >= 0,
    // and NaN fails this comparison too.
    if (!GetFiniteNumber(request, "exec_seconds", &observe->exec_seconds) ||
        !(observe->exec_seconds >= 0.0)) {
      SetJsonError(error, "bad exec_seconds");
      return false;
    }
    return ParseJsonPlan(request, &observe->plan, error);
  }
  SetJsonError(error, "unknown type (want predict|observe)");
  return false;
}

void AppendJsonPredictResponse(std::string* out, const PredictResponse& r) {
  JsonWriter writer(out);
  writer.BeginObject();
  writer.Key("type").String("predict");
  writer.Key("id").UInt(r.request_id);
  writer.Key("seconds").Double(r.seconds);
  writer.Key("source").String(core::PredictionSourceName(r.source));
  writer.Key("uncertainty_log_std").Double(r.uncertainty_log_std);
  writer.EndObject();
  out->push_back('\n');
}

void AppendJsonObserveAck(std::string* out, const ObserveAck& ack) {
  JsonWriter writer(out);
  writer.BeginObject();
  writer.Key("type").String("observe_ack");
  writer.Key("id").UInt(ack.request_id);
  writer.EndObject();
  out->push_back('\n');
}

void AppendJsonError(std::string* out, const ErrorReply& error) {
  JsonWriter writer(out);
  writer.BeginObject();
  writer.Key("type").String("error");
  writer.Key("id").UInt(error.request_id);
  writer.Key("code").String(WireErrorName(error.code));
  writer.Key("message").String(error.message);
  writer.EndObject();
  out->push_back('\n');
}

void AppendJsonShutdown(std::string* out) {
  JsonWriter writer(out);
  writer.BeginObject();
  writer.Key("type").String("shutdown");
  writer.EndObject();
  out->push_back('\n');
}

}  // namespace stage::net
