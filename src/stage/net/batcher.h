#ifndef STAGE_NET_BATCHER_H_
#define STAGE_NET_BATCHER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string_view>
#include <thread>
#include <vector>

#include "stage/core/predictor.h"
#include "stage/fleet_serve/fleet_snapshot.h"
#include "stage/plan/plan.h"

namespace stage::net {

// One decoded predict request waiting for a batch slot. The plan lives on
// the heap so the QueryContext's interior pointer survives moves.
struct BatchItem {
  uint64_t conn_id = 0;     // Connection the response routes back to.
  int worker = 0;           // Worker index owning that connection.
  uint64_t request_id = 0;  // Echoed to the client.
  fleet_serve::TenantId tenant = 0;
  std::unique_ptr<plan::Plan> plan;
  core::QueryContext context{};
  std::chrono::steady_clock::time_point enqueue_time{};
};

enum class SubmitResult {
  kAccepted = 0,
  kOverloaded,  // Bounded queue full — caller replies kOverloaded.
  kStopped,     // Drain started — caller replies kShuttingDown.
};

enum class FlushReason {
  kFull = 0,  // max_batch items were waiting.
  kTimeout,   // The adaptive window expired with a partial batch.
  kDrain,     // Shutdown drain of whatever remained queued.
};

inline constexpr int kNumFlushReasons = 3;

std::string_view FlushReasonName(FlushReason reason);

struct MicroBatcherConfig {
  // Maximum time a request may wait for co-batched company, in
  // microseconds. This is the ceiling of the ADAPTIVE window: under load
  // the effective window shrinks (see below) so a hot queue never sits on
  // latency it does not need. Must be >= 1 here — the serve layer maps its
  // user-facing batch_window_us == 0 to "no batcher at all".
  uint64_t window_us = 200;

  // Flush as soon as this many items are queued, window or not.
  size_t max_batch = 64;

  // Bounded-queue backpressure: Submit returns kOverloaded beyond this.
  size_t queue_bound = 1024;

  // Empty when usable, else a description of the first problem.
  std::string Validate() const;
};

// The adaptive micro-batching aggregator between the network edge and
// FleetService::PredictBatch. Single consumer thread; producers (the
// server's worker threads) call Submit.
//
// Flush policy — a batch leaves the queue when the first of these fires:
//   * kFull:    max_batch items are waiting (checked on every Submit, so a
//               burst flushes immediately, not at the next timer tick);
//   * kTimeout: the oldest queued item has waited effective_window_us;
//   * kDrain:   Drain() was called.
//
// The effective window adapts to load between a floor of window_us / 8
// (at least 1us) and the configured ceiling:
//   * hot  — a flush that fills max_batch, or that leaves a backlog
//            behind, halves the window: arrivals are dense enough that
//            batches fill without waiting, so waiting only buys latency;
//   * cold — a timeout flush carrying <= max_batch / 4 items doubles it:
//            sparse traffic needs the longer window to find company.
//
// The flush callback runs on the batcher thread with no locks held, so it
// may do real work (grouped PredictBatch + completion delivery). Items are
// handed over in Submit order.
class MicroBatcher {
 public:
  using FlushFn = std::function<void(std::vector<BatchItem>, FlushReason)>;

  // Aborts via STAGE_CHECK when `config` fails Validate().
  MicroBatcher(const MicroBatcherConfig& config, FlushFn flush);
  ~MicroBatcher();  // Implies Drain().

  MicroBatcher(const MicroBatcher&) = delete;
  MicroBatcher& operator=(const MicroBatcher&) = delete;

  SubmitResult Submit(BatchItem item);

  // Stops accepting work, flushes everything still queued (as kDrain
  // batches, in order), and joins the batcher thread. Idempotent. After
  // Drain returns, every accepted item has been handed to the callback.
  void Drain();

  // ---- Telemetry (safe from any thread) ----
  uint64_t submitted() const {
    return submitted_.load(std::memory_order_relaxed);
  }
  uint64_t rejected() const {
    return rejected_.load(std::memory_order_relaxed);
  }
  uint64_t flushes(FlushReason reason) const {
    return flushes_[static_cast<int>(reason)].load(std::memory_order_relaxed);
  }
  uint64_t effective_window_us() const {
    return effective_window_us_.load(std::memory_order_relaxed);
  }
  size_t queue_depth() const {
    return queue_depth_.load(std::memory_order_relaxed);
  }

 private:
  void Loop();

  const MicroBatcherConfig config_;
  const uint64_t window_floor_us_;
  const FlushFn flush_;

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<BatchItem> queue_;
  bool stopping_ = false;

  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> flushes_[kNumFlushReasons] = {};
  std::atomic<uint64_t> effective_window_us_;
  std::atomic<size_t> queue_depth_{0};

  std::thread thread_;
};

}  // namespace stage::net

#endif  // STAGE_NET_BATCHER_H_
