#ifndef STAGE_NET_SERVER_H_
#define STAGE_NET_SERVER_H_

#include <array>
#include <cstdint>
#include <memory>
#include <string>

#include "stage/fleet_serve/fleet_service.h"
#include "stage/metrics/latency_recorder.h"
#include "stage/net/batcher.h"
#include "stage/net/wire.h"
#include "stage/obs/metrics.h"

namespace stage::net {

// Knobs for the prediction server. Integer knobs are deliberately signed:
// a CLI flag or config file can hand us a negative value, and Validate must
// be able to say so instead of the unsigned cast silently turning it into
// a huge positive one.
struct ServerConfig {
  std::string host = "127.0.0.1";
  // 0 binds a kernel-assigned ephemeral port; read it back via port().
  int port = 0;

  // Event-loop worker threads (each owns an epoll instance and a shard of
  // the connections).
  int num_workers = 2;

  // Adaptive micro-batching ceiling in microseconds. 0 disables the
  // aggregator entirely: every predict runs inline on its worker thread
  // (the bench baseline). See MicroBatcherConfig for the adaptive policy.
  int64_t batch_window_us = 200;
  int64_t max_batch = 64;     // Flush threshold; also the GEMM batch size.
  int64_t queue_bound = 1024;  // Aggregator backpressure bound.

  int64_t max_connections = 256;

  // Per-frame payload cap; a peer declaring more gets kBadFrame and a
  // close. Must not exceed kMaxWirePayloadBytes.
  int64_t max_frame_payload_bytes = 1 << 20;
  // JSON-mode line cap (a line longer than this is malformed).
  int64_t max_json_line_bytes = 1 << 20;

  // Empty when usable, else a description of the first problem.
  std::string Validate() const;
};

struct ServerOptions {
  // When set, the server registers its telemetry (owner-tagged callbacks,
  // unregistered in the destructor).
  obs::MetricsRegistry* metrics = nullptr;
  std::string metrics_prefix = "stage_net_";
};

// Sampled aggregate counters (tests, CLI dumps). All monotone except the
// gauges at the bottom.
struct ServerStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_rejected = 0;  // Closed at accept: at capacity.
  uint64_t frames_in = 0;             // Binary frames decoded.
  uint64_t frames_out = 0;            // Binary frames written.
  uint64_t json_lines_in = 0;
  uint64_t json_lines_out = 0;
  uint64_t predictions_batched = 0;
  uint64_t predictions_inline = 0;
  uint64_t observes = 0;
  // Indexed by WireError value (slot 0 unused).
  std::array<uint64_t, 6> errors_by_code{};
  std::array<uint64_t, kNumFlushReasons> batch_flushes{};
  uint64_t batch_submitted = 0;
  uint64_t batch_rejected = 0;
  // Gauges.
  uint64_t connections_active = 0;
  uint64_t batch_queue_depth = 0;
  uint64_t effective_window_us = 0;  // 0 when batching is disabled.
};

// The epoll-based async prediction server (ROADMAP item 3): FleetService
// behind a socket. Self-owned — no framework; plain epoll, eventfd, and
// nonblocking sockets.
//
// Thread model:
//   * one listener thread: accepts, round-robins connections to workers;
//   * num_workers worker threads: each runs an edge-triggered epoll loop
//     over its shard of connections plus an eventfd-signaled mailbox of
//     {new connections, batch completions, stop}. Workers own all
//     connection state — no connection is ever touched by two threads;
//   * one MicroBatcher thread (absent when batch_window_us == 0): flushes
//     aggregated predict requests through FleetService::PredictBatch and
//     routes completions back to the owning workers' mailboxes.
//
// Protocol: length-prefixed binary frames (wire.h) or line-delimited JSON
// (auto-detected from the first byte, '{' = JSON). Predictions served over
// either mode are bit-for-bit identical to in-process
// FleetService::Predict — the server rebuilds the QueryContext from the
// decoded plan with the same deterministic featurizer.
//
// Graceful shutdown (Shutdown / destructor): stop accepting, drain the
// batcher (every accepted request gets its response), then each worker
// delivers remaining completions, writes a shutdown frame to every open
// connection, and closes it.
class Server {
 public:
  // Binds and starts serving immediately. Aborts via STAGE_CHECK on an
  // invalid config; fails (STAGE_CHECK) if the socket cannot bind.
  Server(fleet_serve::FleetService* fleet, const ServerConfig& config,
         const ServerOptions& options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // The bound port (== config.port unless that was 0).
  int port() const;

  // Graceful shutdown; idempotent, thread-safe against itself.
  void Shutdown();

  ServerStats Stats() const;

  // Batch-size distribution (one Record per flush).
  obs::Histogram::Snapshot batch_size_histogram() const;

  // Per-frame serving latency, decode to response/completion. Slots:
  static constexpr size_t kLatencyPredict = 0;
  static constexpr size_t kLatencyObserve = 1;
  const metrics::LatencyRecorder& frame_latency() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace stage::net

#endif  // STAGE_NET_SERVER_H_
