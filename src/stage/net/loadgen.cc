#include "stage/net/loadgen.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

namespace stage::net {

namespace {

using Clock = std::chrono::steady_clock;

void SetLoadgenError(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
}

struct Conn {
  int fd = -1;
  bool connected = false;  // connect() completion pending until POLLOUT.
  bool dead = false;
  std::string out;
  size_t out_pos = 0;
  std::string in;
  size_t in_pos = 0;
  int64_t sent = 0;
  int64_t done = 0;
  std::vector<Clock::time_point> send_times;  // Indexed by sequence number.
};

// Request ids carry the connection index in the high 32 bits so a response
// routes back to its send timestamp without a map.
uint64_t MakeRequestId(size_t conn_index, int64_t seq) {
  return (static_cast<uint64_t>(conn_index) << 32) |
         static_cast<uint64_t>(seq);
}

}  // namespace

std::string LoadgenConfig::Validate() const {
  if (host.empty()) return "host must not be empty";
  if (port <= 0 || port > 65535) return "port must be in [1, 65535]";
  if (connections < 1 || connections > 4096) {
    return "connections must be in [1, 4096]";
  }
  if (pipeline < 1) return "pipeline must be >= 1";
  if (requests_per_connection < 1) {
    return "requests_per_connection must be >= 1";
  }
  if (tenants < 1) return "tenants must be >= 1";
  if (concurrent_queries < 0) return "concurrent_queries must be >= 0";
  return "";
}

bool RunLoadgen(const LoadgenConfig& config,
                const std::vector<plan::Plan>& plans, LoadgenResult* result,
                std::string* error) {
  {
    const std::string problem = config.Validate();
    if (!problem.empty()) {
      SetLoadgenError(error, problem);
      return false;
    }
  }
  if (plans.empty()) {
    SetLoadgenError(error, "plan pool must not be empty");
    return false;
  }
  *result = LoadgenResult{};

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(config.port));
  if (inet_pton(AF_INET, config.host.c_str(), &addr.sin_addr) != 1) {
    SetLoadgenError(error, "host must be an IPv4 address literal");
    return false;
  }

  std::vector<Conn> conns(static_cast<size_t>(config.connections));
  for (size_t i = 0; i < conns.size(); ++i) {
    Conn& conn = conns[i];
    conn.fd = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (conn.fd < 0) {
      SetLoadgenError(error, std::string("socket: ") + std::strerror(errno));
      for (Conn& c : conns) {
        if (c.fd >= 0) close(c.fd);
      }
      return false;
    }
    const int one = 1;
    setsockopt(conn.fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (connect(conn.fd, reinterpret_cast<sockaddr*>(&addr),
                sizeof(addr)) == 0) {
      conn.connected = true;
    } else if (errno != EINPROGRESS) {
      SetLoadgenError(error,
                      std::string("connect: ") + std::strerror(errno));
      for (Conn& c : conns) {
        if (c.fd >= 0) close(c.fd);
      }
      return false;
    }
    conn.send_times.resize(
        static_cast<size_t>(config.requests_per_connection));
  }

  std::vector<double> latencies_ms;
  latencies_ms.reserve(conns.size() *
                       static_cast<size_t>(config.requests_per_connection));
  std::string payload_scratch;

  const auto refill = [&](size_t conn_index) {
    Conn& conn = conns[conn_index];
    while (!conn.dead && conn.sent < config.requests_per_connection &&
           conn.sent - conn.done < config.pipeline) {
      PredictRequest request;
      request.request_id = MakeRequestId(conn_index, conn.sent);
      request.tenant = static_cast<uint64_t>(
          conn_index % static_cast<size_t>(config.tenants));
      request.concurrent_queries = config.concurrent_queries;
      request.tick = static_cast<uint64_t>(conn.sent);
      request.plan =
          plans[(conn_index + static_cast<size_t>(conn.sent)) %
                plans.size()];
      payload_scratch.clear();
      AppendPredictRequest(&payload_scratch, request);
      conn.send_times[static_cast<size_t>(conn.sent)] = Clock::now();
      AppendMessage(&conn.out, MessageType::kPredictRequest,
                    payload_scratch);
      ++conn.sent;
    }
  };

  const auto flush_out = [&](Conn& conn) {
    while (conn.out_pos < conn.out.size()) {
      const ssize_t n = send(conn.fd, conn.out.data() + conn.out_pos,
                             conn.out.size() - conn.out_pos, MSG_NOSIGNAL);
      if (n > 0) {
        conn.out_pos += static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
      return false;
    }
    conn.out.clear();
    conn.out_pos = 0;
    return true;
  };

  const Clock::time_point start = Clock::now();
  for (size_t i = 0; i < conns.size(); ++i) {
    refill(i);
    if (conns[i].connected && !flush_out(conns[i])) conns[i].dead = true;
  }

  std::vector<pollfd> pfds;
  std::vector<size_t> pfd_conn;
  while (true) {
    int64_t remaining = 0;
    pfds.clear();
    pfd_conn.clear();
    for (size_t i = 0; i < conns.size(); ++i) {
      Conn& conn = conns[i];
      if (conn.dead) continue;
      if (conn.done >= config.requests_per_connection) continue;
      remaining += config.requests_per_connection - conn.done;
      pollfd pfd{};
      pfd.fd = conn.fd;
      pfd.events = POLLIN;
      if (!conn.connected || conn.out_pos < conn.out.size()) {
        pfd.events |= POLLOUT;
      }
      pfds.push_back(pfd);
      pfd_conn.push_back(i);
    }
    if (remaining == 0 || pfds.empty()) break;

    const int ready = poll(pfds.data(), pfds.size(), 10'000);
    if (ready < 0) {
      if (errno == EINTR) continue;
      SetLoadgenError(error, std::string("poll: ") + std::strerror(errno));
      break;
    }
    if (ready == 0) {
      SetLoadgenError(error, "loadgen stalled: no socket progress in 10s");
      break;
    }

    for (size_t p = 0; p < pfds.size(); ++p) {
      if (pfds[p].revents == 0) continue;
      Conn& conn = conns[pfd_conn[p]];
      if ((pfds[p].revents & (POLLERR | POLLHUP | POLLNVAL)) != 0 &&
          (pfds[p].revents & POLLIN) == 0) {
        conn.dead = true;
        continue;
      }
      if ((pfds[p].revents & POLLOUT) != 0) {
        if (!conn.connected) {
          int so_error = 0;
          socklen_t len = sizeof(so_error);
          getsockopt(conn.fd, SOL_SOCKET, SO_ERROR, &so_error, &len);
          if (so_error != 0) {
            conn.dead = true;
            continue;
          }
          conn.connected = true;
        }
        if (!flush_out(conn)) {
          conn.dead = true;
          continue;
        }
      }
      if ((pfds[p].revents & POLLIN) != 0) {
        // Drain the socket.
        char chunk[64 * 1024];
        bool closed = false;
        while (true) {
          const ssize_t n = read(conn.fd, chunk, sizeof(chunk));
          if (n > 0) {
            conn.in.append(chunk, static_cast<size_t>(n));
            continue;
          }
          if (n < 0 && errno == EINTR) continue;
          if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          closed = true;
          break;
        }
        // Decode complete frames.
        while (true) {
          FrameHeader header;
          std::string_view frame_payload;
          size_t frame_bytes = 0;
          const FrameStatus status = DecodeFrame(
              std::string_view(conn.in).substr(conn.in_pos), kWireMagic,
              kWireVersion, kMaxWirePayloadBytes, &header, &frame_payload,
              &frame_bytes);
          if (status == FrameStatus::kNeedMore) break;
          if (status != FrameStatus::kOk) {
            conn.dead = true;
            break;
          }
          conn.in_pos += frame_bytes;
          const auto type = static_cast<MessageType>(header.type);
          if (type == MessageType::kPredictResponse) {
            PredictResponse response;
            if (ParsePredictResponse(frame_payload, &response)) {
              const size_t conn_index = response.request_id >> 32;
              const auto seq =
                  static_cast<int64_t>(response.request_id & 0xffffffffu);
              if (conn_index == pfd_conn[p] && seq >= 0 &&
                  seq < config.requests_per_connection) {
                const double ms =
                    std::chrono::duration<double, std::milli>(
                        Clock::now() -
                        conn.send_times[static_cast<size_t>(seq)])
                        .count();
                latencies_ms.push_back(ms);
                result->source_counts[static_cast<size_t>(
                    response.source)] += 1;
              }
              ++result->completed;
              ++conn.done;
            } else {
              conn.dead = true;
              break;
            }
          } else if (type == MessageType::kError) {
            ++result->errors;
            ++conn.done;  // The request is finished, just unhappily.
          } else if (type == MessageType::kShutdown) {
            conn.dead = true;
            break;
          }  // Anything else: ignore.
        }
        if (conn.in_pos == conn.in.size()) {
          conn.in.clear();
          conn.in_pos = 0;
        }
        if (!conn.dead && conn.done < config.requests_per_connection) {
          refill(pfd_conn[p]);
          if (!flush_out(conn)) conn.dead = true;
        }
        if (closed) conn.dead = true;
      }
    }
  }

  result->elapsed_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  for (Conn& conn : conns) {
    if (conn.fd >= 0) close(conn.fd);
  }

  if (result->completed == 0) {
    if (error != nullptr && error->empty()) {
      SetLoadgenError(error, "no responses received");
    }
    return false;
  }
  result->qps = result->elapsed_seconds > 0.0
                    ? static_cast<double>(result->completed) /
                          result->elapsed_seconds
                    : 0.0;
  if (!latencies_ms.empty()) {
    std::sort(latencies_ms.begin(), latencies_ms.end());
    double sum = 0.0;
    for (const double v : latencies_ms) sum += v;
    result->mean_ms = sum / static_cast<double>(latencies_ms.size());
    const auto quantile = [&](double q) {
      const size_t index = std::min(
          latencies_ms.size() - 1,
          static_cast<size_t>(q * static_cast<double>(latencies_ms.size())));
      return latencies_ms[index];
    };
    result->p50_ms = quantile(0.50);
    result->p99_ms = quantile(0.99);
  }
  // Dead connections before finishing their quota mean lost requests; the
  // caller decides whether partial completion is acceptable.
  return true;
}

}  // namespace stage::net
