#ifndef STAGE_NET_LOADGEN_H_
#define STAGE_NET_LOADGEN_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "stage/core/predictor.h"
#include "stage/net/wire.h"
#include "stage/plan/plan.h"

namespace stage::net {

// Workload shape for the pipelined load generator: `connections`
// nonblocking sockets, each keeping `pipeline` predict requests in flight
// until it has sent `requests_per_connection`. Tenant ids round-robin over
// [0, tenants) by connection, so with connections >= tenants every tenant
// stays busy. Single-threaded by design — one poll() loop drives all
// sockets, so client-side cost stays flat while the server's batching is
// what's under test.
struct LoadgenConfig {
  std::string host = "127.0.0.1";
  int port = 0;
  int connections = 16;
  int pipeline = 8;
  int64_t requests_per_connection = 500;
  int tenants = 4;
  int concurrent_queries = 8;  // Reported load in every request head.

  // Empty when usable, else a description of the first problem.
  std::string Validate() const;
};

struct LoadgenResult {
  uint64_t completed = 0;  // Predict responses received.
  uint64_t errors = 0;     // Error frames received (count as completed work).
  double elapsed_seconds = 0.0;
  double qps = 0.0;
  // Client-observed per-request latency (send to response).
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  // Which predictor stage served the responses (sanity: a batched-GEMM
  // workload should be dominated by kGlobal).
  std::array<uint64_t, core::kNumPredictionSources> source_counts{};
};

// Runs the workload against a serve-net endpoint, drawing plans
// round-robin from `plans` (must be non-empty; tenants [0, config.tenants)
// must be registered on the server). Returns false + `error` on transport
// or stall failures.
bool RunLoadgen(const LoadgenConfig& config,
                const std::vector<plan::Plan>& plans, LoadgenResult* result,
                std::string* error);

}  // namespace stage::net

#endif  // STAGE_NET_LOADGEN_H_
