#include "stage/net/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "stage/common/macros.h"

namespace stage::net {

// ---- Writer ------------------------------------------------------------

void JsonWriter::BeforeValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // The key already emitted the separator bookkeeping.
  }
  if (depth_ > 0 && has_element_[depth_]) out_->push_back(',');
  if (depth_ > 0) has_element_[depth_] = true;
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  STAGE_CHECK(depth_ < kMaxDepth);
  out_->push_back('{');
  has_element_[++depth_] = false;
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  STAGE_CHECK(depth_ > 0);
  --depth_;
  out_->push_back('}');
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  STAGE_CHECK(depth_ < kMaxDepth);
  out_->push_back('[');
  has_element_[++depth_] = false;
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  STAGE_CHECK(depth_ > 0);
  --depth_;
  out_->push_back(']');
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  if (has_element_[depth_]) out_->push_back(',');
  has_element_[depth_] = true;
  AppendEscaped(key);
  out_->push_back(':');
  // The value that follows must not emit its own separator.
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  BeforeValue();
  AppendEscaped(value);
  return *this;
}

void JsonWriter::AppendEscaped(std::string_view value) {
  out_->push_back('"');
  for (const char c : value) {
    switch (c) {
      case '"':
        out_->append("\\\"");
        break;
      case '\\':
        out_->append("\\\\");
        break;
      case '\n':
        out_->append("\\n");
        break;
      case '\r':
        out_->append("\\r");
        break;
      case '\t':
        out_->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out_->append(buf);
        } else {
          out_->push_back(c);
        }
    }
  }
  out_->push_back('"');
}

JsonWriter& JsonWriter::Double(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    // JSON has no NaN/Inf; null is the conventional stand-in.
    out_->append("null");
    return *this;
  }
  char buf[32];
  const int n = std::snprintf(buf, sizeof(buf), "%.17g", value);
  out_->append(buf, static_cast<size_t>(n));
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  BeforeValue();
  char buf[24];
  const int n = std::snprintf(buf, sizeof(buf), "%lld",
                              static_cast<long long>(value));
  out_->append(buf, static_cast<size_t>(n));
  return *this;
}

JsonWriter& JsonWriter::UInt(uint64_t value) {
  BeforeValue();
  char buf[24];
  const int n = std::snprintf(buf, sizeof(buf), "%llu",
                              static_cast<unsigned long long>(value));
  out_->append(buf, static_cast<size_t>(n));
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  out_->append(value ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_->append("null");
  return *this;
}

// ---- Parser ------------------------------------------------------------

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (type != Type::kObject) return nullptr;
  const auto it = object.find(std::string(key));
  return it == object.end() ? nullptr : &it->second;
}

namespace {

constexpr int kMaxParseDepth = 32;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  bool Parse(JsonValue* value) {
    SkipWhitespace();
    if (!ParseValue(value, 0)) return false;
    SkipWhitespace();
    return pos_ == text_.size();  // Trailing garbage is an error.
  }

 private:
  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  bool ParseValue(JsonValue* value, int depth) {
    if (depth > kMaxParseDepth || pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return ParseObject(value, depth);
      case '[':
        return ParseArray(value, depth);
      case '"':
        value->type = JsonValue::Type::kString;
        return ParseString(&value->string_value);
      case 't':
        value->type = JsonValue::Type::kBool;
        value->bool_value = true;
        return ConsumeLiteral("true");
      case 'f':
        value->type = JsonValue::Type::kBool;
        value->bool_value = false;
        return ConsumeLiteral("false");
      case 'n':
        value->type = JsonValue::Type::kNull;
        return ConsumeLiteral("null");
      default:
        return ParseNumber(value);
    }
  }

  bool ParseObject(JsonValue* value, int depth) {
    value->type = JsonValue::Type::kObject;
    if (!Consume('{')) return false;
    SkipWhitespace();
    if (Consume('}')) return true;
    while (true) {
      SkipWhitespace();
      std::string key;
      if (!ParseString(&key)) return false;
      SkipWhitespace();
      if (!Consume(':')) return false;
      SkipWhitespace();
      JsonValue member;
      if (!ParseValue(&member, depth + 1)) return false;
      value->object[std::move(key)] = std::move(member);
      SkipWhitespace();
      if (Consume('}')) return true;
      if (!Consume(',')) return false;
    }
  }

  bool ParseArray(JsonValue* value, int depth) {
    value->type = JsonValue::Type::kArray;
    if (!Consume('[')) return false;
    SkipWhitespace();
    if (Consume(']')) return true;
    while (true) {
      SkipWhitespace();
      JsonValue element;
      if (!ParseValue(&element, depth + 1)) return false;
      value->array.push_back(std::move(element));
      SkipWhitespace();
      if (Consume(']')) return true;
      if (!Consume(',')) return false;
    }
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return false;
      const char escape = text_[pos_++];
      switch (escape) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return false;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return false;
            }
          }
          // ASCII only; anything wider is replaced (request fields that
          // matter are numeric).
          out->push_back(code < 0x80 ? static_cast<char>(code) : '?');
          break;
        }
        default:
          return false;
      }
    }
    return false;  // Unterminated.
  }

  bool ParseNumber(JsonValue* value) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double parsed = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0' || !std::isfinite(parsed)) {
      return false;
    }
    value->type = JsonValue::Type::kNumber;
    value->number = parsed;
    return true;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

bool ParseJson(std::string_view text, JsonValue* value) {
  return Parser(text).Parse(value);
}

}  // namespace stage::net
