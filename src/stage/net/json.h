#ifndef STAGE_NET_JSON_H_
#define STAGE_NET_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace stage::net {

// ---- Writer ------------------------------------------------------------
//
// A small allocation-light JSON writer in the spirit of reflection-style
// serializers (getml's rfl/json Writer): values append straight into a
// caller-owned, reused std::string — no DOM, no intermediate
// stringstreams, no per-value allocation once the output buffer is warm.
// Comma/nesting state lives in a fixed-depth stack, so emitting a response
// line is pure byte appends. Doubles print with %.17g, which round-trips
// IEEE-754 exactly.
//
//   JsonWriter w(&buf);
//   w.BeginObject();
//   w.Key("id").UInt(7);
//   w.Key("seconds").Double(0.25);
//   w.EndObject();   // buf == {"id":7,"seconds":0.25}
class JsonWriter {
 public:
  explicit JsonWriter(std::string* out) : out_(out) {}

  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  JsonWriter& Key(std::string_view key);
  JsonWriter& String(std::string_view value);
  JsonWriter& Double(double value);
  JsonWriter& Int(int64_t value);
  JsonWriter& UInt(uint64_t value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();

 private:
  static constexpr int kMaxDepth = 16;
  void BeforeValue();
  void AppendEscaped(std::string_view value);

  std::string* out_;
  // Per-depth flag: has the current scope emitted its first element yet?
  bool has_element_[kMaxDepth + 1] = {};
  int depth_ = 0;
  bool pending_key_ = false;
};

// ---- Parser ------------------------------------------------------------
//
// Minimal DOM for inbound JSON-mode request lines. Strict enough for a
// network edge: depth-capped, size comes pre-bounded by the server's line
// limit, tolerates whitespace, rejects trailing garbage. Numbers parse as
// double (ids up to 2^53 are exact, plenty for a line-mode debug client).
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool bool_value = false;
  double number = 0.0;
  std::string string_value;
  std::vector<JsonValue> array;
  // Duplicate keys: last wins (the usual lenient behavior).
  std::map<std::string, JsonValue> object;

  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }
  bool is_array() const { return type == Type::kArray; }
  bool is_object() const { return type == Type::kObject; }
  // Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;
};

// Parses exactly one JSON value spanning the whole input (modulo
// whitespace). Returns false on any syntax error, depth beyond 32, or
// trailing bytes.
bool ParseJson(std::string_view text, JsonValue* value);

}  // namespace stage::net

#endif  // STAGE_NET_JSON_H_
