#include "stage/mview/advisor.h"

#include <algorithm>
#include <cmath>

#include "stage/common/macros.h"

namespace stage::mview {

namespace {

// Replays the generator's cardinality recurrence over the join prefix to
// size the materialized result (both the optimizer's view and the hidden
// truth, so ground-truth exec-times of rewritten plans stay consistent).
struct PrefixCardinality {
  double estimated = 0.0;
  double actual = 0.0;
  double width = 0.0;
};

PrefixCardinality ComputePrefix(const plan::PlanSpec& spec,
                                const std::vector<plan::TableDef>& schema,
                                int prefix_scans) {
  PrefixCardinality prefix;
  const auto& first = spec.scans[0];
  prefix.estimated = schema[first.table_index].rows * first.selectivity;
  prefix.actual = prefix.estimated * first.cardinality_error;
  prefix.width = schema[first.table_index].width * 0.7;
  for (int i = 1; i < prefix_scans; ++i) {
    const auto& scan = spec.scans[i];
    const double scan_estimated =
        schema[scan.table_index].rows * scan.selectivity;
    const double scan_actual = scan_estimated * scan.cardinality_error;
    const double sel = spec.join_selectivity[i - 1];
    prefix.estimated = std::max(prefix.estimated, scan_estimated) * sel;
    prefix.actual = std::max(prefix.actual, scan_actual) * sel *
                    spec.join_cardinality_error[i - 1];
    prefix.width = std::min(
        prefix.width + schema[scan.table_index].width * 0.7, 4000.0);
  }
  return prefix;
}

}  // namespace

std::optional<RewrittenQuery> MaterializePrefix(
    const ViewDefinition& view, const plan::PlanGenerator& generator,
    int32_t view_table_id) {
  const plan::PlanSpec& spec = view.source;
  const int total_scans = static_cast<int>(spec.scans.size());
  if (view.prefix_scans < 2 || view.prefix_scans > total_scans) {
    return std::nullopt;
  }
  const PrefixCardinality prefix =
      ComputePrefix(spec, generator.schema(), view.prefix_scans);

  RewrittenQuery out;
  out.view_table.id = view_table_id;
  out.view_table.rows = std::max(1.0, prefix.estimated);
  out.view_table.width = std::max(16.0, prefix.width / 0.7);
  out.view_table.format = plan::S3Format::kLocal;

  // Rewritten spec: one scan of the view replaces the prefix; the join
  // suffix attaches the remaining scans as before.
  plan::PlanSpec rewritten = spec;
  plan::PlanSpec::ScanSpec view_scan;
  // The view table slots in right after the original schema.
  view_scan.table_index = static_cast<int32_t>(generator.schema().size());
  view_scan.selectivity = 1.0;  // The view holds exactly the prefix result.
  // Keep the hidden truth consistent: the prefix's compounded estimation
  // error becomes the view scan's error.
  view_scan.cardinality_error =
      prefix.estimated > 0.0 ? prefix.actual / prefix.estimated : 1.0;

  rewritten.scans.assign(spec.scans.begin() + view.prefix_scans,
                         spec.scans.end());
  rewritten.scans.insert(rewritten.scans.begin(), view_scan);
  const int drop = view.prefix_scans - 1;  // Joins folded into the view.
  rewritten.join_selectivity.assign(spec.join_selectivity.begin() + drop,
                                    spec.join_selectivity.end());
  rewritten.join_cardinality_error.assign(
      spec.join_cardinality_error.begin() + drop,
      spec.join_cardinality_error.end());
  rewritten.join_strategy.assign(spec.join_strategy.begin() + drop,
                                 spec.join_strategy.end());
  rewritten.join_materialized.assign(spec.join_materialized.begin() + drop,
                                     spec.join_materialized.end());
  out.rewritten = std::move(rewritten);
  return out;
}

ViewRecommendation ScoreView(const ViewDefinition& view,
                             const plan::PlanGenerator& generator,
                             const global::GlobalModel& model,
                             const fleet::InstanceConfig& instance,
                             double executions_per_day,
                             const AdvisorConfig& config) {
  ViewRecommendation recommendation;
  recommendation.view = view;
  recommendation.executions_per_day = executions_per_day;

  const auto rewritten = MaterializePrefix(
      view, generator, static_cast<int32_t>(generator.schema().size()));
  STAGE_CHECK_MSG(rewritten.has_value(), "invalid view prefix");

  // Hypothetical plans have no execution history, so only the global model
  // can price them (§2.1's "as if the view exists" evaluation).
  const plan::Plan before = generator.Instantiate(view.source);
  recommendation.predicted_seconds_before =
      model.PredictSeconds(before, instance, 0);

  // Instantiate the rewritten spec against the schema extended with the
  // view table.
  std::vector<plan::TableDef> extended = generator.schema();
  extended.push_back(rewritten->view_table);
  const plan::PlanGenerator extended_generator(std::move(extended),
                                               generator.config());
  const plan::Plan after = extended_generator.Instantiate(rewritten->rewritten);
  recommendation.predicted_seconds_after =
      model.PredictSeconds(after, instance, 0);

  const double saving_per_execution =
      recommendation.predicted_seconds_before -
      recommendation.predicted_seconds_after;
  recommendation.predicted_daily_benefit_seconds =
      saving_per_execution * executions_per_day * config.safety_margin;
  return recommendation;
}

std::vector<ViewRecommendation> RecommendViews(
    const std::vector<plan::PlanSpec>& templates,
    const std::vector<double>& executions_per_day,
    const plan::PlanGenerator& generator, const global::GlobalModel& model,
    const fleet::InstanceConfig& instance, const AdvisorConfig& config) {
  STAGE_CHECK(templates.size() == executions_per_day.size());
  std::vector<ViewRecommendation> recommendations;
  for (size_t t = 0; t < templates.size(); ++t) {
    const int scans = static_cast<int>(templates[t].scans.size());
    if (scans < config.min_prefix_scans) continue;
    ViewDefinition view;
    view.source = templates[t];
    view.prefix_scans = scans;  // Maximal prefix: the whole join tree.
    const ViewRecommendation recommendation = ScoreView(
        view, generator, model, instance, executions_per_day[t], config);
    if (recommendation.predicted_daily_benefit_seconds > 0.0) {
      recommendations.push_back(recommendation);
    }
  }
  std::sort(recommendations.begin(), recommendations.end(),
            [](const ViewRecommendation& a, const ViewRecommendation& b) {
              return a.predicted_daily_benefit_seconds >
                     b.predicted_daily_benefit_seconds;
            });
  return recommendations;
}

}  // namespace stage::mview
