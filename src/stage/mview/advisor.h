#ifndef STAGE_MVIEW_ADVISOR_H_
#define STAGE_MVIEW_ADVISOR_H_

#include <optional>
#include <vector>

#include "stage/fleet/instance.h"
#include "stage/global/global_model.h"
#include "stage/plan/generator.h"

namespace stage::mview {

// Automatic materialized-view creation is the paper's flagship non-critical
// downstream task (§2.1): "regenerate queries' execution plans as if a
// certain materialized view exists and then use the exec-time predictor to
// estimate the performance of these plans to determine the benefit of
// building such a view". This module implements that loop against the
// synthetic substrate: candidate views are join prefixes of recurring
// query templates, hypothetical plans are built by rewriting specs to scan
// the materialized result, and the (never-executed) hypothetical plans are
// priced by the global model — the only stage that can score plans with no
// execution history.

// A candidate view: the first `prefix_scans` scans (and the joins between
// them) of a template.
struct ViewDefinition {
  plan::PlanSpec source;   // The template the prefix is cut from.
  int prefix_scans = 2;    // >= 2 (a 1-scan prefix is just the base table).
};

// The materialized result as a table, plus the template rewritten to scan
// it instead of recomputing the join prefix.
struct RewrittenQuery {
  plan::TableDef view_table;
  plan::PlanSpec rewritten;
};

// Builds the materialized table (row count = the optimizer's estimate of
// the prefix join's output, width = combined tuple width) and rewrites the
// spec. Returns nullopt when the prefix is out of range.
std::optional<RewrittenQuery> MaterializePrefix(const ViewDefinition& view,
                                                const plan::PlanGenerator& generator,
                                                int32_t view_table_id);

// One scored recommendation.
struct ViewRecommendation {
  ViewDefinition view;
  double predicted_seconds_before = 0.0;
  double predicted_seconds_after = 0.0;
  double executions_per_day = 0.0;
  // Predicted saving per day of workload, discounted by `safety_margin`
  // for worst-case behavior (the paper's motivation for confidence-aware
  // decisions).
  double predicted_daily_benefit_seconds = 0.0;
};

struct AdvisorConfig {
  int min_prefix_scans = 2;
  // Fraction of the predicted per-execution saving credited (a crude
  // worst-case discount standing in for a full confidence interval on the
  // hypothetical plan).
  double safety_margin = 0.7;
};

// Scores a view candidate for one template: prices the original and the
// rewritten plan with the global model on the given instance and
// extrapolates by the template's execution frequency.
ViewRecommendation ScoreView(const ViewDefinition& view,
                             const plan::PlanGenerator& generator,
                             const global::GlobalModel& model,
                             const fleet::InstanceConfig& instance,
                             double executions_per_day,
                             const AdvisorConfig& config);

// Full advisor pass: tries the maximal join prefix of every template and
// returns recommendations with positive predicted benefit, best first.
std::vector<ViewRecommendation> RecommendViews(
    const std::vector<plan::PlanSpec>& templates,
    const std::vector<double>& executions_per_day,
    const plan::PlanGenerator& generator, const global::GlobalModel& model,
    const fleet::InstanceConfig& instance, const AdvisorConfig& config);

}  // namespace stage::mview

#endif  // STAGE_MVIEW_ADVISOR_H_
