// Calibration bench (§4.8 acceptance): measures what the online conformal
// recalibrator buys on the paper workload, four ways:
//
//   1. Interval coverage, prequential: one flag-off replay per instance;
//      each local prediction is scored TWICE — once with the raw ensemble
//      log_std ("pre") and once with log_std scaled by a shadow
//      recalibrator's current scale ("post") — then its normalized
//      residual feeds the shadow. Pre and post therefore see the exact
//      same prediction stream, and "post" is an honest online estimate
//      (every sample scored with a scale fit on strictly earlier data).
//      GATE: |coverage@90 - 0.90| must shrink post-recalibration.
//   2. Routing-mix shift: flag-off vs flag-on replays side by side —
//      how many predictions each stage serves once the confidence check
//      sees calibrated uncertainty.
//   3. Tail MAE: absolute error on long-running queries (true exec-time
//      >= short_running_seconds), flag-off vs flag-on. Reported, not
//      gated — the paper's claim is about interval honesty, not point
//      accuracy.
//   4. Hot-path overhead: warm-service single-prediction p50, flag-off vs
//      flag-on (one extra relaxed atomic load + multiply on the local
//      path). GATE: p50 delta <= 3%.
//
// Results land in BENCH_calibration.json (with a "gates" object, same
// shape as BENCH_wlm_closed_loop.json). STAGE_BENCH_FAST=1 shrinks the
// workload for the tools/check.sh smoke lane.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_common.h"
#include "stage/calib/calibration.h"
#include "stage/calib/conformal.h"
#include "stage/common/stats.h"
#include "stage/metrics/report.h"
#include "stage/obs/trace.h"
#include "stage/serve/prediction_service.h"

using namespace stage;

namespace {

calib::ConformalConfig BenchConformalConfig() {
  calib::ConformalConfig config;
  config.window_capacity = 512;
  config.min_window = 32;
  config.refresh_interval = 16;
  config.anchor_confidence = 0.9;
  return config;
}

core::StagePredictorConfig CalibratedConfig() {
  core::StagePredictorConfig config = bench::PaperStageConfig();
  config.calibrate_uncertainty = true;
  config.conformal = BenchConformalConfig();
  return config;
}

std::vector<core::QueryContext> MakeContexts(
    const fleet::InstanceTrace& instance) {
  std::vector<core::QueryContext> contexts;
  contexts.reserve(instance.trace.size());
  for (const fleet::QueryEvent& event : instance.trace) {
    contexts.push_back(core::MakeQueryContext(
        event.plan, event.concurrent_queries,
        static_cast<uint64_t>(event.arrival_ms)));
  }
  return contexts;
}

// Flag-off vs flag-on replay outcome for one config (phases 2 + 3).
struct ReplayOutcome {
  uint64_t source_counts[core::kNumPredictionSources] = {};
  uint64_t escalations = 0;
  std::vector<double> tail_abs_errors;  // Long-running queries only.
};

ReplayOutcome ReplayWithConfig(const core::StagePredictorConfig& config,
                               const fleet::InstanceTrace& instance,
                               const std::vector<core::QueryContext>& contexts,
                               const global::GlobalModel* global_model) {
  core::StagePredictorOptions options;
  options.global_model = global_model;
  options.instance = &instance.config;
  core::StagePredictor predictor(config, options);
  ReplayOutcome outcome;
  for (size_t i = 0; i < contexts.size(); ++i) {
    obs::PredictionTrace trace;
    const core::Prediction prediction =
        predictor.PredictTraced(contexts[i], &trace);
    const double actual = instance.trace[i].exec_seconds;
    predictor.Observe(contexts[i], actual);
    if (trace.escalated) ++outcome.escalations;
    if (actual >= config.short_running_seconds) {
      outcome.tail_abs_errors.push_back(
          std::fabs(prediction.seconds - actual));
    }
  }
  for (int s = 0; s < core::kNumPredictionSources; ++s) {
    outcome.source_counts[s] = predictor.predictions_from(
        static_cast<core::PredictionSource>(s));
  }
  return outcome;
}

// Warm-service single-prediction latencies (phase 4), bench_serve_overhead
// pattern: replay once to train/fill, then time bare Predicts.
std::vector<double> PredictNanos(const core::StagePredictorConfig& config,
                                 const fleet::InstanceTrace& instance,
                                 const std::vector<core::QueryContext>& contexts,
                                 const global::GlobalModel* global_model) {
  serve::PredictionServiceConfig service_config;
  service_config.predictor = config;
  service_config.cache_shards = 8;
  service_config.async_retrain = false;
  core::StagePredictorOptions options;
  options.global_model = global_model;
  options.instance = &instance.config;
  serve::PredictionService service(service_config, options);
  for (size_t i = 0; i < contexts.size(); ++i) {
    service.Predict(contexts[i]);
    service.Observe(contexts[i], instance.trace[i].exec_seconds);
  }
  std::vector<double> nanos;
  nanos.reserve(contexts.size());
  for (const core::QueryContext& context : contexts) {
    const auto start = std::chrono::steady_clock::now();
    service.Predict(context);
    nanos.push_back(std::chrono::duration<double, std::nano>(
                        std::chrono::steady_clock::now() - start)
                        .count());
  }
  return nanos;
}

void PrintCoverageTable(const calib::CalibrationReport& pre,
                        const calib::CalibrationReport& post) {
  metrics::TextTable table;
  table.SetHeader({"Nominal", "Pre cov", "Post cov", "Pre |err|",
                   "Post |err|"});
  for (size_t i = 0; i < pre.levels.size(); ++i) {
    char nominal[16];
    std::snprintf(nominal, sizeof(nominal), "%.0f%%", 100.0 * pre.levels[i]);
    table.AddRow({nominal, metrics::FormatValue(pre.observed[i]),
                  metrics::FormatValue(post.observed[i]),
                  metrics::FormatValue(std::fabs(pre.observed[i] -
                                                 pre.levels[i])),
                  metrics::FormatValue(std::fabs(post.observed[i] -
                                                 post.levels[i]))});
  }
  std::printf("%s", table.Render().c_str());
}

void PrintJsonCoverage(std::FILE* json, const char* name,
                       const calib::CalibrationReport& report) {
  std::fprintf(json, "    \"%s\": {\"usable\": %llu, \"ece\": %.6f, "
                     "\"levels\": [",
               name, static_cast<unsigned long long>(report.usable),
               report.ece);
  for (size_t i = 0; i < report.levels.size(); ++i) {
    std::fprintf(json,
                 "%s{\"nominal\": %.2f, \"observed\": %.6f}",
                 i > 0 ? ", " : "", report.levels[i], report.observed[i]);
  }
  std::fprintf(json, "]}");
}

void PrintJsonMix(std::FILE* json, const char* name,
                  const ReplayOutcome& outcome) {
  std::fprintf(
      json,
      "    \"%s\": {\"cache\": %llu, \"local\": %llu, \"global\": %llu, "
      "\"baseline\": %llu, \"default\": %llu, \"escalations\": %llu, "
      "\"tail_queries\": %zu, \"tail_mae_s\": %.4f}",
      name, static_cast<unsigned long long>(outcome.source_counts[0]),
      static_cast<unsigned long long>(outcome.source_counts[1]),
      static_cast<unsigned long long>(outcome.source_counts[2]),
      static_cast<unsigned long long>(outcome.source_counts[3]),
      static_cast<unsigned long long>(outcome.source_counts[4]),
      static_cast<unsigned long long>(outcome.escalations),
      outcome.tail_abs_errors.size(), Mean(outcome.tail_abs_errors));
}

}  // namespace

int main() {
  const bench::SuiteConfig suite = bench::MakeSuiteConfig();
  std::printf("calibration bench: %d instances x %d queries\n",
              suite.num_eval_instances, suite.queries_per_instance);

  const global::GlobalModel global_model = bench::TrainGlobalModel(suite);
  fleet::FleetGenerator generator(bench::EvalFleetConfig(suite));
  std::vector<fleet::InstanceTrace> instances;
  instances.reserve(static_cast<size_t>(suite.num_eval_instances));
  for (int i = 0; i < suite.num_eval_instances; ++i) {
    instances.push_back(generator.MakeInstanceTrace(i));
  }

  // -- Phase 1: prequential coverage, pre vs post, pooled across instances.
  calib::CalibrationHarness pre_harness;
  calib::CalibrationHarness post_harness;
  const core::StagePredictorConfig flag_off = bench::PaperStageConfig();
  for (int i = 0; i < suite.num_eval_instances; ++i) {
    const fleet::InstanceTrace& instance = instances[static_cast<size_t>(i)];
    const std::vector<core::QueryContext> contexts = MakeContexts(instance);
    core::StagePredictorOptions options;
    options.global_model = &global_model;
    options.instance = &instance.config;
    core::StagePredictor predictor(flag_off, options);
    calib::ConformalRecalibrator shadow(BenchConformalConfig());
    for (size_t q = 0; q < contexts.size(); ++q) {
      obs::PredictionTrace trace;
      predictor.PredictTraced(contexts[q], &trace);
      const double actual = instance.trace[q].exec_seconds;
      if (calib::UsableLogStd(trace.uncertainty_log_std)) {
        const int source = static_cast<int>(trace.stage);
        pre_harness.Add({trace.predicted_seconds, trace.uncertainty_log_std,
                         actual, source});
        post_harness.Add({trace.predicted_seconds,
                          trace.uncertainty_log_std * shadow.scale(), actual,
                          source});
        shadow.Observe(calib::NormalizedResidual(
            trace.predicted_seconds, trace.uncertainty_log_std, actual));
      }
      predictor.Observe(contexts[q], actual);
    }
    std::fprintf(stderr, "[bench_calibration] coverage instance %d/%d "
                         "(shadow scale %.3f)\n",
                 i + 1, suite.num_eval_instances, shadow.scale());
  }
  const calib::CalibrationReport pre = pre_harness.Report();
  const calib::CalibrationReport post = post_harness.Report();
  const double err90_pre = pre.CoverageErrorAt(0.9);
  const double err90_post = post.CoverageErrorAt(0.9);
  const bool coverage_gate = err90_post < err90_pre;

  std::printf("\n== Interval coverage, prequential (%llu scored "
              "predictions) ==\n",
              static_cast<unsigned long long>(pre.usable));
  PrintCoverageTable(pre, post);
  std::printf("ECE: pre %.4f -> post %.4f; coverage@90 error: %.4f -> %.4f "
              "(gate: must shrink -> %s)\n",
              pre.ece, post.ece, err90_pre, err90_post,
              coverage_gate ? "OK" : "FAIL");

  // -- Phases 2 + 3: routing mix and tail MAE, flag-off vs flag-on.
  ReplayOutcome off_outcome;
  ReplayOutcome on_outcome;
  for (int i = 0; i < suite.num_eval_instances; ++i) {
    const fleet::InstanceTrace& instance = instances[static_cast<size_t>(i)];
    const std::vector<core::QueryContext> contexts = MakeContexts(instance);
    const ReplayOutcome off =
        ReplayWithConfig(flag_off, instance, contexts, &global_model);
    const ReplayOutcome on =
        ReplayWithConfig(CalibratedConfig(), instance, contexts,
                         &global_model);
    for (int s = 0; s < core::kNumPredictionSources; ++s) {
      off_outcome.source_counts[s] += off.source_counts[s];
      on_outcome.source_counts[s] += on.source_counts[s];
    }
    off_outcome.escalations += off.escalations;
    on_outcome.escalations += on.escalations;
    off_outcome.tail_abs_errors.insert(off_outcome.tail_abs_errors.end(),
                                       off.tail_abs_errors.begin(),
                                       off.tail_abs_errors.end());
    on_outcome.tail_abs_errors.insert(on_outcome.tail_abs_errors.end(),
                                      on.tail_abs_errors.begin(),
                                      on.tail_abs_errors.end());
    std::fprintf(stderr, "[bench_calibration] routing instance %d/%d\n",
                 i + 1, suite.num_eval_instances);
  }
  std::printf("\n== Routing mix + tail MAE (flag-off vs flag-on) ==\n");
  metrics::TextTable mix;
  mix.SetHeader({"Config", "Cache", "Local", "Global", "Default",
                 "Escalations", "Tail MAE (s)"});
  const auto add_mix = [&](const char* name, const ReplayOutcome& outcome) {
    mix.AddRow({name, std::to_string(outcome.source_counts[0]),
                std::to_string(outcome.source_counts[1]),
                std::to_string(outcome.source_counts[2]),
                std::to_string(outcome.source_counts[4]),
                std::to_string(outcome.escalations),
                metrics::FormatValue(Mean(outcome.tail_abs_errors))});
  };
  add_mix("flag-off", off_outcome);
  add_mix("flag-on", on_outcome);
  std::printf("%s", mix.Render().c_str());

  // -- Phase 4: warm hot-path p50, flag-off vs flag-on. Three repetitions,
  // best p50 of each side, to keep the 3% gate out of scheduler-noise
  // territory.
  double p50_off = 0.0;
  double p50_on = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    std::vector<double> off_nanos = PredictNanos(
        flag_off, instances[0], MakeContexts(instances[0]), &global_model);
    std::vector<double> on_nanos =
        PredictNanos(CalibratedConfig(), instances[0],
                     MakeContexts(instances[0]), &global_model);
    const double off_p50 = Quantile(off_nanos, 0.5);
    const double on_p50 = Quantile(on_nanos, 0.5);
    p50_off = rep == 0 ? off_p50 : std::min(p50_off, off_p50);
    p50_on = rep == 0 ? on_p50 : std::min(p50_on, on_p50);
  }
  const double p50_delta_pct = 100.0 * (p50_on - p50_off) / p50_off;
  const bool overhead_gate = p50_on <= 1.03 * p50_off;
  std::printf("\n== Warm predict p50: %.0f ns off, %.0f ns on "
              "(%+.2f%%, budget +3%% -> %s) ==\n",
              p50_off, p50_on, p50_delta_pct, overhead_gate ? "OK" : "FAIL");

  std::FILE* json = std::fopen("BENCH_calibration.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_calibration.json for write\n");
    return 1;
  }
  std::fprintf(json,
               "{\n"
               "  \"config\": {\"num_instances\": %d, "
               "\"queries_per_instance\": %d, \"window_capacity\": %zu, "
               "\"anchor_confidence\": %.2f},\n"
               "  \"coverage\": {\n",
               suite.num_eval_instances, suite.queries_per_instance,
               BenchConformalConfig().window_capacity,
               BenchConformalConfig().anchor_confidence);
  PrintJsonCoverage(json, "pre", pre);
  std::fprintf(json, ",\n");
  PrintJsonCoverage(json, "post", post);
  std::fprintf(json,
               ",\n    \"err90_pre\": %.6f, \"err90_post\": %.6f\n  },\n"
               "  \"routing\": {\n",
               err90_pre, err90_post);
  PrintJsonMix(json, "flag_off", off_outcome);
  std::fprintf(json, ",\n");
  PrintJsonMix(json, "flag_on", on_outcome);
  std::fprintf(json,
               "\n  },\n"
               "  \"overhead\": {\"predict_p50_ns_off\": %.1f, "
               "\"predict_p50_ns_on\": %.1f, \"p50_delta_pct\": %.3f},\n"
               "  \"gates\": {\"calibrated_coverage_better\": %s, "
               "\"p50_overhead_within_budget\": %s}\n"
               "}\n",
               p50_off, p50_on, p50_delta_pct,
               coverage_gate ? "true" : "false",
               overhead_gate ? "true" : "false");
  std::fclose(json);
  std::printf("\nwrote BENCH_calibration.json (gates %s)\n",
              coverage_gate && overhead_gate ? "pass" : "FAILED");
  return 0;
}
