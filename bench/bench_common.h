#ifndef STAGE_BENCH_BENCH_COMMON_H_
#define STAGE_BENCH_BENCH_COMMON_H_

#include <memory>
#include <string>
#include <vector>

#include "stage/core/autowlm.h"
#include "stage/core/replay.h"
#include "stage/core/stage_predictor.h"
#include "stage/fleet/fleet.h"
#include "stage/global/global_model.h"
#include "stage/metrics/error_metrics.h"

namespace stage::bench {

// Shared experiment scale. The paper evaluates 300 instances x ~100k
// queries on production hardware; the defaults here reproduce every
// experiment's *shape* in minutes on one machine. Set STAGE_BENCH_FAST=1
// for a quick smoke-scale run.
struct SuiteConfig {
  int num_eval_instances = 10;
  int queries_per_instance = 3000;
  int num_train_instances = 16;   // Global-model training fleet.
  int train_queries_per_instance = 1500;
  uint64_t eval_seed = 2024;
  uint64_t train_seed = 777;
};

// Reads STAGE_BENCH_FAST and scales the suite down when set.
SuiteConfig MakeSuiteConfig();

fleet::FleetConfig EvalFleetConfig(const SuiteConfig& suite);
fleet::FleetConfig TrainFleetConfig(const SuiteConfig& suite);

// The paper's hyper-parameters (§5.1), with boosting rounds trimmed from
// 200 to 100 (early stopping fires well before that on pool-sized data;
// documented in EXPERIMENTS.md).
core::StagePredictorConfig PaperStageConfig();
core::AutoWlmConfig PaperAutoWlmConfig();
global::GlobalModelConfig PaperGlobalConfig();

// Trains the fleet-level global model on the (disjoint) training fleet.
global::GlobalModel TrainGlobalModel(const SuiteConfig& suite);

// Replay of one instance with both predictors (+ attribution counters).
struct InstanceEval {
  fleet::InstanceTrace instance;
  core::ReplayResult stage;
  core::ReplayResult autowlm;
  uint64_t stage_cache_predictions = 0;
  uint64_t stage_local_predictions = 0;
  uint64_t stage_global_predictions = 0;
  uint64_t stage_default_predictions = 0;
};

// Generates the evaluation fleet and replays every instance with a fresh
// Stage predictor (optionally wired to `global_model`) and a fresh AutoWLM
// baseline. Prints one progress line per instance to stderr.
std::vector<InstanceEval> RunSuite(const SuiteConfig& suite,
                                   const global::GlobalModel* global_model);

// Concatenated (actual, predicted) across all instances.
struct PooledSeries {
  std::vector<double> actual;
  std::vector<double> stage_predicted;
  std::vector<double> autowlm_predicted;
};
PooledSeries PoolRecords(const std::vector<InstanceEval>& evals);

// Renders one of the paper's bucketed accuracy tables (MAE / P50 / P90 per
// exec-time bucket) side by side for two methods.
// `metric` is "AE" for absolute error or "QE" for Q-error; it only changes
// the column headers.
std::string RenderBucketTable(const std::string& caption,
                              const std::string& metric,
                              const std::string& left_name,
                              const metrics::BucketedSummary& left,
                              const std::string& right_name,
                              const metrics::BucketedSummary& right);

// Per-query dual evaluation used by Tables 5-6: replay an instance with the
// deployed configuration (cache + local, no global) while also computing
// the global model's prediction for every cache miss.
struct DualRecord {
  double actual = 0.0;
  double local_seconds = 0.0;   // What the local model predicted.
  double global_seconds = 0.0;  // What the global model would have said.
  double log_std = -1.0;        // Local uncertainty.
  // True when the §4.1 routing would escalate this query to the global
  // model (local uncertain AND predicted long-running).
  bool escalate = false;
};
std::vector<DualRecord> ReplayDual(const fleet::InstanceTrace& instance,
                                   const global::GlobalModel& global_model,
                                   const core::StagePredictorConfig& config);

}  // namespace stage::bench

#endif  // STAGE_BENCH_BENCH_COMMON_H_
