// Table 5: accuracy of the global model vs the local model on ALL queries
// that miss the exec-time cache. The paper's surprise: the local model's
// in-distribution data beats the global model's bigger data.
#include <cstdio>

#include "bench_common.h"

using namespace stage;

int main() {
  const bench::SuiteConfig suite = bench::MakeSuiteConfig();
  const global::GlobalModel global_model = bench::TrainGlobalModel(suite);
  fleet::FleetGenerator generator(bench::EvalFleetConfig(suite));

  std::vector<double> actual;
  std::vector<double> local_pred;
  std::vector<double> global_pred;
  for (int i = 0; i < suite.num_eval_instances; ++i) {
    const fleet::InstanceTrace instance = generator.MakeInstanceTrace(i);
    const auto records =
        bench::ReplayDual(instance, global_model, bench::PaperStageConfig());
    for (const auto& record : records) {
      actual.push_back(record.actual);
      local_pred.push_back(record.local_seconds);
      global_pred.push_back(record.global_seconds);
    }
    std::fprintf(stderr, "[bench] instance %d/%d dual-replayed\n", i + 1,
                 suite.num_eval_instances);
  }

  const auto global_summary = metrics::SummarizeByBucket(
      actual, metrics::AbsoluteErrors(actual, global_pred));
  const auto local_summary = metrics::SummarizeByBucket(
      actual, metrics::AbsoluteErrors(actual, local_pred));
  std::printf("%s\n",
              bench::RenderBucketTable(
                  "=== Table 5: global model vs local model on all "
                  "cache-miss queries ===\n(paper shape: the local model "
                  "wins overall — better data beats bigger data; the "
                  "instance-latent factors are invisible to the global "
                  "model)",
                  "AE", "Global", global_summary, "Local", local_summary)
                  .c_str());
  return 0;
}
