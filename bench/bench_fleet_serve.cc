// Fleet serving bench (ROADMAP item 1 acceptance): replays a mixed
// workload across a 1k+-tenant FleetService and reports
//   * warm replay throughput (acceptance bar: >= 100k predictions/s),
//   * warm vs cold per-call latency p50/p99 (parked reactivation and
//     snapshot-file activation both exercised),
//   * resident memory unbounded vs under a tight byte budget.
// Results land in BENCH_fleet_serve.json in the working directory.
//
// STAGE_BENCH_FAST=1 shrinks the workload for CI smoke runs. Local
// training is disabled (min_train_size above the per-tenant event count)
// so the replay is deterministic and the measured path is pure serving.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "stage/common/stats.h"
#include "stage/core/stage_predictor.h"
#include "stage/fleet/fleet.h"
#include "stage/fleet_serve/fleet_service.h"

using namespace stage;

namespace {

struct BenchConfig {
  bool fast = false;
  size_t num_tenants = 1024;
  // Distinct generated traces; tenants map onto them round-robin. Each
  // tenant still owns an independent predictor stack — sharing the input
  // streams just bounds generation time.
  size_t num_traces = 32;
  int events_per_tenant = 192;
  size_t replay_passes = 4;  // Warm throughput passes over the fleet.
};

BenchConfig MakeConfig() {
  BenchConfig config;
  const char* fast = std::getenv("STAGE_BENCH_FAST");
  if (fast != nullptr && fast[0] == '1') {
    config.fast = true;
    config.num_tenants = 96;
    config.num_traces = 8;
    config.events_per_tenant = 48;
    config.replay_passes = 2;
  }
  return config;
}

struct Workload {
  std::vector<fleet::InstanceTrace> traces;
  std::vector<std::vector<core::QueryContext>> contexts;  // Per trace.
  const fleet::InstanceTrace& TraceFor(fleet_serve::TenantId tenant) const {
    return traces[tenant % traces.size()];
  }
  const std::vector<core::QueryContext>& ContextsFor(
      fleet_serve::TenantId tenant) const {
    return contexts[tenant % contexts.size()];
  }
};

Workload MakeWorkload(const BenchConfig& config) {
  fleet::FleetConfig fleet_config;
  fleet_config.num_instances = static_cast<int>(config.num_traces);
  fleet_config.workload.num_queries = config.events_per_tenant;
  fleet_config.seed = 2024;
  fleet::FleetGenerator generator(fleet_config);
  Workload workload;
  workload.traces.reserve(config.num_traces);
  workload.contexts.reserve(config.num_traces);
  for (size_t i = 0; i < config.num_traces; ++i) {
    workload.traces.push_back(
        generator.MakeInstanceTrace(static_cast<int>(i)));
    const fleet::InstanceTrace& instance = workload.traces.back();
    std::vector<core::QueryContext> contexts;
    contexts.reserve(instance.trace.size());
    for (const fleet::QueryEvent& event : instance.trace) {
      contexts.push_back(core::MakeQueryContext(
          event.plan, event.concurrent_queries,
          static_cast<uint64_t>(event.arrival_ms)));
    }
    workload.contexts.push_back(std::move(contexts));
  }
  return workload;
}

fleet_serve::FleetServiceConfig ServingFleetConfig(const BenchConfig& config) {
  fleet_serve::FleetServiceConfig fleet;
  fleet.stack.cache_shards = 4;
  fleet.async_retrain = false;
  // Serving-only replay: the pool never reaches the training threshold.
  fleet.stack.predictor.min_train_size = 1 << 30;
  (void)config;
  return fleet;
}

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct LatencySplit {
  std::vector<double> warm_ns;
  std::vector<double> cold_ns;
};

// One timed pass over every tenant (one context each), splitting samples by
// whether the call paid a cold activation. Single-threaded: the point is
// per-call latency, not throughput.
LatencySplit TimedPass(fleet_serve::FleetService& fleet,
                       const Workload& workload, size_t num_tenants,
                       size_t context_index) {
  LatencySplit split;
  for (size_t t = 0; t < num_tenants; ++t) {
    const auto& contexts = workload.ContextsFor(t);
    const core::QueryContext& context =
        contexts[context_index % contexts.size()];
    bool cold = false;
    const auto start = std::chrono::steady_clock::now();
    fleet.Predict(t, context, &cold);
    const double ns = std::chrono::duration<double, std::nano>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    (cold ? split.cold_ns : split.warm_ns).push_back(ns);
  }
  return split;
}

void Append(LatencySplit& into, LatencySplit&& from) {
  into.warm_ns.insert(into.warm_ns.end(), from.warm_ns.begin(),
                      from.warm_ns.end());
  into.cold_ns.insert(into.cold_ns.end(), from.cold_ns.begin(),
                      from.cold_ns.end());
}

}  // namespace

int main() {
  const BenchConfig config = MakeConfig();
  std::printf("fleet_serve bench: %zu tenants, %d events/tenant%s\n",
              config.num_tenants, config.events_per_tenant,
              config.fast ? " (fast)" : "");
  const Workload workload = MakeWorkload(config);

  fleet_serve::FleetService fleet(ServingFleetConfig(config));
  for (size_t t = 0; t < config.num_tenants; ++t) {
    fleet.RegisterTenant(t, {.instance = &workload.TraceFor(t).config});
  }

  // -- Seed: observe every tenant's trace (fills caches + pools) --------
  const auto seed_start = std::chrono::steady_clock::now();
  for (size_t t = 0; t < config.num_tenants; ++t) {
    const auto& contexts = workload.ContextsFor(t);
    const auto& trace = workload.TraceFor(t).trace;
    for (size_t i = 0; i < contexts.size(); ++i) {
      fleet.Observe(t, contexts[i], trace[i].exec_seconds);
    }
  }
  const double seed_seconds = Seconds(seed_start);
  const size_t unbounded_resident_bytes = fleet.ResidentBytes();
  std::printf("seeded %zu warm tenants in %.2fs, resident %.1f MiB\n",
              fleet.WarmCount(), seed_seconds,
              static_cast<double>(unbounded_resident_bytes) / (1024 * 1024));

  // -- Warm replay throughput (the 100k predictions/s acceptance bar) ---
  const unsigned hw = std::thread::hardware_concurrency();
  const size_t num_threads =
      std::min<size_t>(config.num_tenants, hw == 0 ? 4 : hw);
  std::atomic<uint64_t> predictions{0};
  const auto replay_start = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> workers;
    workers.reserve(num_threads);
    for (size_t w = 0; w < num_threads; ++w) {
      workers.emplace_back([&, w] {
        uint64_t made = 0;
        // Disjoint tenant stripes: thread w serves tenants w, w+T, ...
        for (size_t pass = 0; pass < config.replay_passes; ++pass) {
          for (size_t t = w; t < config.num_tenants; t += num_threads) {
            const auto& contexts = workload.ContextsFor(t);
            for (const core::QueryContext& context : contexts) {
              fleet.Predict(t, context);
              ++made;
            }
          }
        }
        predictions.fetch_add(made, std::memory_order_relaxed);
      });
    }
    for (std::thread& worker : workers) worker.join();
  }
  const double replay_seconds = Seconds(replay_start);
  const double predictions_per_sec =
      static_cast<double>(predictions.load()) / replay_seconds;
  std::printf("warm replay: %llu predictions on %zu threads in %.2fs "
              "= %.0f predictions/s\n",
              static_cast<unsigned long long>(predictions.load()),
              num_threads, replay_seconds, predictions_per_sec);

  // -- Warm per-call latency (everything resident, no churn) ------------
  LatencySplit warm_split = TimedPass(fleet, workload, config.num_tenants, 0);
  if (!warm_split.cold_ns.empty()) {
    std::fprintf(stderr, "unexpected cold activation in the warm pass\n");
    return 1;
  }

  // -- Churn under a tight budget: parked-cold latency ------------------
  const size_t budget_bytes = unbounded_resident_bytes / 4;
  fleet.SetResidentBytesBudget(budget_bytes);
  LatencySplit parked;
  // Scanning tenants in id order against an LRU evictor is the worst case:
  // essentially every touch evicts the oldest stack and pays a parked cold
  // activation (serialize the victim, deserialize the newcomer).
  for (size_t pass = 0; pass < 2; ++pass) {
    Append(parked, TimedPass(fleet, workload, config.num_tenants, pass));
  }
  if (parked.cold_ns.empty()) {
    std::fprintf(stderr, "budget churn produced no cold activations\n");
    return 1;
  }
  const size_t churn_resident_bytes = fleet.ResidentBytes();
  const uint64_t churn_evictions = fleet.evictions();
  const uint64_t churn_cold_activations = fleet.cold_activations();
  std::printf("churn @ %.1f MiB budget: %zu warm, %llu evictions, "
              "%llu cold activations, resident %.1f MiB\n",
              static_cast<double>(budget_bytes) / (1024 * 1024),
              fleet.WarmCount(),
              static_cast<unsigned long long>(churn_evictions),
              static_cast<unsigned long long>(churn_cold_activations),
              static_cast<double>(churn_resident_bytes) / (1024 * 1024));

  // -- Snapshot round trip: file size + cold-from-file latency ----------
  const std::string snapshot_path = "bench_fleet_serve_snapshot.sflt";
  fleet.SetResidentBytesBudget(0);
  const auto save_start = std::chrono::steady_clock::now();
  std::string error;
  if (!fleet.SaveSnapshot(snapshot_path, &error)) {
    std::fprintf(stderr, "SaveSnapshot failed: %s\n", error.c_str());
    return 1;
  }
  const double save_seconds = Seconds(save_start);

  fleet_serve::FleetService restored(ServingFleetConfig(config));
  for (size_t t = 0; t < config.num_tenants; ++t) {
    restored.RegisterTenant(t, {.instance = &workload.TraceFor(t).config});
  }
  if (!restored.AttachSnapshot(snapshot_path, &error)) {
    std::fprintf(stderr, "AttachSnapshot failed: %s\n", error.c_str());
    return 1;
  }
  // Every first touch cold-activates from the indexed file: one seek + one
  // payload read per tenant, never a whole-fleet deserialize.
  LatencySplit from_file = TimedPass(restored, workload,
                                     config.num_tenants, 0);
  std::remove(snapshot_path.c_str());
  if (from_file.cold_ns.size() != config.num_tenants) {
    std::fprintf(stderr, "expected every first touch to cold-activate\n");
    return 1;
  }

  const double warm_p50 = Quantile(warm_split.warm_ns, 0.5);
  const double warm_p99 = Quantile(warm_split.warm_ns, 0.99);
  const double parked_p50 = Quantile(parked.cold_ns, 0.5);
  const double parked_p99 = Quantile(parked.cold_ns, 0.99);
  const double file_p50 = Quantile(from_file.cold_ns, 0.5);
  const double file_p99 = Quantile(from_file.cold_ns, 0.99);
  std::printf("latency ns: warm p50 %.0f p99 %.0f | cold(parked) p50 %.0f "
              "p99 %.0f | cold(file) p50 %.0f p99 %.0f\n",
              warm_p50, warm_p99, parked_p50, parked_p99, file_p50, file_p99);

  std::FILE* json = std::fopen("BENCH_fleet_serve.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_fleet_serve.json for write\n");
    return 1;
  }
  std::fprintf(
      json,
      "{\n"
      "  \"config\": {\"fast\": %s, \"num_tenants\": %zu, "
      "\"events_per_tenant\": %d, \"replay_threads\": %zu},\n"
      "  \"replay\": {\"predictions\": %llu, \"seconds\": %.3f, "
      "\"predictions_per_sec\": %.1f},\n"
      "  \"latency_ns\": {\n"
      "    \"warm_p50\": %.1f, \"warm_p99\": %.1f,\n"
      "    \"cold_parked_p50\": %.1f, \"cold_parked_p99\": %.1f,\n"
      "    \"cold_file_p50\": %.1f, \"cold_file_p99\": %.1f\n"
      "  },\n"
      "  \"memory\": {\"unbounded_resident_bytes\": %zu, "
      "\"budget_bytes\": %zu, \"churn_resident_bytes\": %zu},\n"
      "  \"churn\": {\"evictions\": %llu, \"cold_activations\": %llu},\n"
      "  \"snapshot\": {\"save_seconds\": %.3f, "
      "\"file_activations\": %zu}\n"
      "}\n",
      config.fast ? "true" : "false", config.num_tenants,
      config.events_per_tenant, num_threads,
      static_cast<unsigned long long>(predictions.load()), replay_seconds,
      predictions_per_sec, warm_p50, warm_p99, parked_p50, parked_p99,
      file_p50, file_p99, unbounded_resident_bytes, budget_bytes,
      churn_resident_bytes, static_cast<unsigned long long>(churn_evictions),
      static_cast<unsigned long long>(churn_cold_activations), save_seconds,
      from_file.cold_ns.size());
  std::fclose(json);
  std::printf("wrote BENCH_fleet_serve.json\n");
  return 0;
}
