// Closed-loop WLM benchmark (ROADMAP item 2 acceptance; the paper's §1 and
// §5.2 motivating claim as a measured end-to-end property): drive the WLM
// queue simulator with a live predictor in the loop — Predict at admission
// routes and orders, Observe at completion adapts the exec-time cache and
// local model mid-run — and compare four policies at multiple target
// utilizations:
//   * oracle     — scheduling on ground-truth exec-times (lower bound),
//   * stage      — the Stage stack closed-loop (cache -> local model),
//   * autowlm    — the prior single-GBT AutoWLM baseline closed-loop,
//   * open_loop  — Stage predictions precomputed on an arrival-order
//                  replay, then fed as a fixed vector (the pre-closed-loop
//                  pipeline; isolates what closing the loop buys).
// Reported per policy: average/p50/p99 queueing latency, SLO-violation
// rate (deadline = slo_factor x true exec-time), scaling offloads, and the
// routing-source mix. Results land in BENCH_wlm_closed_loop.json.
//
// STAGE_BENCH_FAST=1 shrinks the workload for CI smoke runs.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "stage/common/stats.h"
#include "stage/wlm/policy.h"
#include "stage/wlm/trace_util.h"

using namespace stage;

namespace {

constexpr wlm::WlmPolicy kPolicies[] = {
    wlm::WlmPolicy::kOracle, wlm::WlmPolicy::kStage,
    wlm::WlmPolicy::kAutoWlm, wlm::WlmPolicy::kOpenLoop};

struct BenchConfig {
  bool fast = false;
  std::vector<double> utilizations = {0.8, 0.95};
  double slo_factor = 10.0;
};

BenchConfig MakeConfig() {
  BenchConfig config;
  const char* fast = std::getenv("STAGE_BENCH_FAST");
  if (fast != nullptr && fast[0] != '\0' && fast[0] != '0') {
    config.fast = true;
  }
  // STAGE_WLM_UTILIZATIONS="0.8,0.95" overrides the target-utilization
  // sweep (exploration aid; the gates always run on whatever levels are
  // active).
  if (const char* env = std::getenv("STAGE_WLM_UTILIZATIONS");
      env != nullptr && env[0] != '\0') {
    config.utilizations.clear();
    for (const char* p = env; *p != '\0';) {
      char* end = nullptr;
      const double u = std::strtod(p, &end);
      if (end == p) break;
      if (u > 0.0) config.utilizations.push_back(u);
      p = *end == ',' ? end + 1 : end;
    }
    if (config.utilizations.empty()) config.utilizations = {0.8, 0.95};
  }
  return config;
}

// Pooled per-policy outcome at one utilization level. Gate metrics are on
// queueing latency (wait time): that is what the predictor-driven scheduler
// controls — total latency additionally carries the irreducible exec-time
// of each query, which drowns the tail comparison at low utilization.
struct PolicyStats {
  std::vector<double> waits;       // Queueing latency per query.
  std::vector<double> latencies;   // Total latency (wait + exec).
  std::vector<double> abs_errors;  // |predicted - true| per query.
  uint64_t correct_routes = 0;     // Predicted short/long side == true side.
  uint64_t slo_violations = 0;
  uint64_t scaling_offloads = 0;
  uint64_t source_counts[core::kNumPredictionSources] = {};

  double Avg() const { return Mean(waits); }
  double P50() const { return Quantile(waits, 0.5); }
  double P99() const { return Quantile(waits, 0.99); }
  double AvgTotal() const { return Mean(latencies); }
  double Mae() const { return Mean(abs_errors); }
  double RouteAccuracy() const {
    return abs_errors.empty() ? 0.0
                              : static_cast<double>(correct_routes) /
                                    static_cast<double>(abs_errors.size());
  }
  double SloRate() const {
    return latencies.empty() ? 0.0
                             : static_cast<double>(slo_violations) /
                                   static_cast<double>(latencies.size());
  }
};

void Accumulate(PolicyStats& stats,
                const std::vector<fleet::QueryEvent>& trace,
                double short_threshold_seconds,
                const wlm::ClosedLoopResult& result) {
  stats.waits.insert(stats.waits.end(), result.wlm.wait_seconds.begin(),
                     result.wlm.wait_seconds.end());
  stats.latencies.insert(stats.latencies.end(),
                         result.wlm.latency_seconds.begin(),
                         result.wlm.latency_seconds.end());
  for (size_t i = 0; i < trace.size(); ++i) {
    stats.abs_errors.push_back(
        std::fabs(result.predicted_seconds[i] - trace[i].exec_seconds));
    if ((result.predicted_seconds[i] < short_threshold_seconds) ==
        (trace[i].exec_seconds < short_threshold_seconds)) {
      ++stats.correct_routes;
    }
  }
  stats.slo_violations += result.slo_violations;
  stats.scaling_offloads +=
      static_cast<uint64_t>(result.wlm.scaling_offloads);
  for (int s = 0; s < core::kNumPredictionSources; ++s) {
    stats.source_counts[s] += result.source_counts[s];
  }
}

void PrintSourceMix(std::string* out, const PolicyStats& stats) {
  uint64_t total = 0;
  for (const uint64_t count : stats.source_counts) total += count;
  if (total == 0) {
    *out = "-";
    return;
  }
  char buffer[128];
  std::snprintf(
      buffer, sizeof(buffer), "%.0f/%.0f/%.0f/%.0f/%.0f",
      100.0 * stats.source_counts[0] / total,
      100.0 * stats.source_counts[1] / total,
      100.0 * stats.source_counts[2] / total,
      100.0 * stats.source_counts[3] / total,
      100.0 * stats.source_counts[4] / total);
  *out = buffer;
}

}  // namespace

int main() {
  const BenchConfig config = MakeConfig();
  const bench::SuiteConfig suite = bench::MakeSuiteConfig();
  std::printf("wlm closed-loop bench: %d instances x %d queries, "
              "utilizations {", suite.num_eval_instances,
              suite.queries_per_instance);
  for (size_t u = 0; u < config.utilizations.size(); ++u) {
    std::printf("%s%.2f", u > 0 ? ", " : "", config.utilizations[u]);
  }
  std::printf("}%s\n", config.fast ? " (fast)" : "");

  // The Stage hierarchy's fleet-trained fallback (trained on a disjoint
  // training fleet, as in fig6) — this is exactly what the AutoWLM
  // baseline lacks on cold starts.
  const global::GlobalModel global_model = bench::TrainGlobalModel(suite);

  fleet::FleetGenerator generator(bench::EvalFleetConfig(suite));
  std::vector<fleet::InstanceTrace> instances;
  instances.reserve(static_cast<size_t>(suite.num_eval_instances));
  for (int i = 0; i < suite.num_eval_instances; ++i) {
    instances.push_back(generator.MakeInstanceTrace(i));
  }

  wlm::PolicyRunConfig policy_config;
  policy_config.loop.slo_factor = config.slo_factor;
  // Production shape: long-waiting queries burst onto a concurrency-scaling
  // cluster, so mispredictions cost offloads (and bounded waits) instead of
  // unbounded queue collapse.
  policy_config.loop.wlm.enable_concurrency_scaling = true;
  // All four policies schedule shortest-predicted-first in every pool, so
  // the comparison isolates prediction quality: a better predictor yields
  // a better schedule, a worse one pays for its own errors.
  policy_config.loop.wlm.sjf_short_queue = true;
  policy_config.stage = bench::PaperStageConfig();
  policy_config.autowlm = bench::PaperAutoWlmConfig();
  policy_config.global_model = &global_model;
  const int total_slots = policy_config.loop.wlm.short_slots +
                          policy_config.loop.wlm.long_slots;

  std::FILE* json = std::fopen("BENCH_wlm_closed_loop.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr,
                 "cannot open BENCH_wlm_closed_loop.json for write\n");
    return 1;
  }
  std::fprintf(json,
               "{\n"
               "  \"config\": {\"fast\": %s, \"num_instances\": %d, "
               "\"queries_per_instance\": %d, \"short_slots\": %d, "
               "\"long_slots\": %d, \"slo_factor\": %.1f},\n"
               "  \"utilization_levels\": [\n",
               config.fast ? "true" : "false", suite.num_eval_instances,
               suite.queries_per_instance,
               policy_config.loop.wlm.short_slots,
               policy_config.loop.wlm.long_slots, config.slo_factor);

  bool all_gates_pass = true;
  for (size_t u = 0; u < config.utilizations.size(); ++u) {
    const double utilization = config.utilizations[u];
    PolicyStats stats[wlm::kNumWlmPolicies];
    for (int i = 0; i < suite.num_eval_instances; ++i) {
      const auto trace = wlm::CompressToUtilization(
          instances[static_cast<size_t>(i)].trace, total_slots, utilization);
      policy_config.instance = &instances[static_cast<size_t>(i)].config;
      for (const wlm::WlmPolicy policy : kPolicies) {
        Accumulate(stats[static_cast<int>(policy)], trace,
                   policy_config.loop.wlm.short_threshold_seconds,
                   wlm::RunWlmPolicy(trace, policy, policy_config));
      }
      std::fprintf(stderr, "[bench_wlm_closed_loop] u=%.2f instance %d/%d\n",
                   utilization, i + 1, suite.num_eval_instances);
    }

    const PolicyStats& oracle =
        stats[static_cast<int>(wlm::WlmPolicy::kOracle)];
    const PolicyStats& stage_stats =
        stats[static_cast<int>(wlm::WlmPolicy::kStage)];
    const PolicyStats& autowlm =
        stats[static_cast<int>(wlm::WlmPolicy::kAutoWlm)];
    const bool stage_beats_autowlm_avg = stage_stats.Avg() < autowlm.Avg();
    const bool stage_beats_autowlm_p99 = stage_stats.P99() < autowlm.P99();
    const bool oracle_bounds_avg = oracle.Avg() <= stage_stats.Avg() &&
                                   oracle.Avg() <= autowlm.Avg();
    const bool oracle_bounds_p99 = oracle.P99() <= stage_stats.P99() &&
                                   oracle.P99() <= autowlm.P99();
    all_gates_pass = all_gates_pass && stage_beats_autowlm_avg &&
                     stage_beats_autowlm_p99 && oracle_bounds_avg &&
                     oracle_bounds_p99;

    std::printf("\n== target utilization %.2f ==\n", utilization);
    std::printf("%-10s %9s %9s %9s %9s %8s %8s %7s %9s  %s\n", "policy",
                "wait avg", "wait p50", "wait p99", "lat avg", "SLO miss",
                "MAE (s)", "route%", "offloads",
                "mix cache/local/global/baseline/default %");
    for (const wlm::WlmPolicy policy : kPolicies) {
      const PolicyStats& s = stats[static_cast<int>(policy)];
      std::string mix;
      PrintSourceMix(&mix, s);
      std::printf(
          "%-10s %9.2f %9.2f %9.2f %9.2f %7.2f%% %8.2f %6.1f%% %9llu  %s\n",
          std::string(wlm::WlmPolicyName(policy)).c_str(), s.Avg(), s.P50(),
          s.P99(), s.AvgTotal(), 100.0 * s.SloRate(), s.Mae(),
          100.0 * s.RouteAccuracy(),
          static_cast<unsigned long long>(s.scaling_offloads), mix.c_str());
    }
    std::printf("gates: stage<autowlm avg %s, p99 %s; oracle bounds avg %s, "
                "p99 %s\n",
                stage_beats_autowlm_avg ? "OK" : "FAIL",
                stage_beats_autowlm_p99 ? "OK" : "FAIL",
                oracle_bounds_avg ? "OK" : "FAIL",
                oracle_bounds_p99 ? "OK" : "FAIL");

    std::fprintf(json, "    {\"target_utilization\": %.2f,\n"
                       "     \"policies\": {\n",
                 utilization);
    for (size_t p = 0; p < std::size(kPolicies); ++p) {
      const PolicyStats& s = stats[static_cast<int>(kPolicies[p])];
      std::fprintf(
          json,
          "      \"%s\": {\"queries\": %zu, \"avg_queueing_s\": %.4f, "
          "\"p50_queueing_s\": %.4f, \"p99_queueing_s\": %.4f, "
          "\"avg_total_latency_s\": %.4f, "
          "\"slo_violation_rate\": %.4f, \"prediction_mae_s\": %.4f, "
          "\"routing_accuracy\": %.4f, \"scaling_offloads\": %llu, "
          "\"source_mix\": {\"cache\": %llu, \"local\": %llu, "
          "\"global\": %llu, \"baseline\": %llu, \"default\": %llu}}%s\n",
          std::string(wlm::WlmPolicyName(kPolicies[p])).c_str(),
          s.latencies.size(), s.Avg(), s.P50(), s.P99(), s.AvgTotal(),
          s.SloRate(), s.Mae(), s.RouteAccuracy(),
          static_cast<unsigned long long>(s.scaling_offloads),
          static_cast<unsigned long long>(s.source_counts[0]),
          static_cast<unsigned long long>(s.source_counts[1]),
          static_cast<unsigned long long>(s.source_counts[2]),
          static_cast<unsigned long long>(s.source_counts[3]),
          static_cast<unsigned long long>(s.source_counts[4]),
          p + 1 < std::size(kPolicies) ? "," : "");
    }
    std::fprintf(
        json,
        "     },\n"
        "     \"gates\": {\"stage_beats_autowlm_avg\": %s, "
        "\"stage_beats_autowlm_p99\": %s, \"oracle_bounds_avg\": %s, "
        "\"oracle_bounds_p99\": %s}}%s\n",
        stage_beats_autowlm_avg ? "true" : "false",
        stage_beats_autowlm_p99 ? "true" : "false",
        oracle_bounds_avg ? "true" : "false",
        oracle_bounds_p99 ? "true" : "false",
        u + 1 < config.utilizations.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("\nwrote BENCH_wlm_closed_loop.json (all gates %s)\n",
              all_gates_pass ? "pass" : "FAILED");
  return 0;
}
