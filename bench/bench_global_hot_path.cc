// Global-model hot-path microbenchmark: quantifies the level-batched GEMM
// inference rewrite and the minibatched parallel trainer against the
// original per-node matvec walk. The Naive* structs below replicate the
// pre-rewrite code exactly (fresh workspace vectors per predict, one
// matvec per node per transform, per-example forward/backward training);
// the batched path is the production PredictSeconds/PredictBatch/Train
// code. The naive inference baseline loads the SAME checkpoint bytes as
// the production model, so the bench also acts as a bit-equivalence gate:
// it exits non-zero if any prediction differs. Emits machine-readable
// BENCH_global_hot_path.json in the working directory.
//
// STAGE_BENCH_FAST=1 shrinks the workload for CI smoke runs.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <sstream>
#include <vector>

#include "stage/common/rng.h"
#include "stage/common/serialize.h"
#include "stage/common/stats.h"
#include "stage/common/thread_pool.h"
#include "stage/fleet/fleet.h"
#include "stage/global/global_model.h"
#include "stage/plan/featurizer.h"

namespace {

std::atomic<bool> g_count_allocations{false};
std::atomic<uint64_t> g_allocations{0};

}  // namespace

// Counting overrides: the default operator new[] / delete[] forward here,
// so replacing this pair is enough to see every heap allocation. GCC
// falsely pairs the replaced scalar forms with the untouched array/aligned
// forms, so silence that diagnostic for this file.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void* operator new(std::size_t size) {
  if (g_count_allocations.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  if (size == 0) size = 1;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace stage;

struct BenchConfig {
  bool fast = false;
  int num_instances = 6;     // Last one is held out for eval plans.
  int queries_per_instance = 400;
  int epochs = 4;
  int hidden_dim = 48;
  int num_layers = 3;
  std::vector<int> head_hidden = {64, 32};
  int single_plan_iters = 2000;
  int batch_plans = 2048;
  int batch_iters = 6;
  int alloc_probe_iters = 256;
};

BenchConfig MakeBenchConfig() {
  BenchConfig config;
  const char* fast = std::getenv("STAGE_BENCH_FAST");
  if (fast != nullptr && fast[0] != '\0' && fast[0] != '0') {
    config.fast = true;
    config.num_instances = 3;
    config.queries_per_instance = 120;
    config.epochs = 1;
    config.hidden_dim = 24;
    config.num_layers = 2;
    config.head_hidden = {24};
    config.single_plan_iters = 300;
    config.batch_plans = 256;
    config.batch_iters = 2;
    config.alloc_probe_iters = 64;
  }
  return config;
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// ----------------------------------------------------------------------
// Pre-rewrite reference, replicated verbatim: per-node matvecs, fresh
// workspace vectors every call, per-example training. Loads the SAME
// checkpoint bytes the production model saves.
// ----------------------------------------------------------------------

struct NaiveParam {
  std::vector<float> value, grad, m, v;
  int64_t step_count = 0;

  void Init(size_t size, float scale, Rng& rng) {
    value.resize(size);
    grad.assign(size, 0.0f);
    m.assign(size, 0.0f);
    v.assign(size, 0.0f);
    for (float& x : value) {
      x = static_cast<float>(rng.NextUniform(-scale, scale));
    }
    step_count = 0;
  }

  void ZeroGrad() {
    for (float& g : grad) g = 0.0f;
  }

  void Step(const nn::AdamConfig& config, double grad_divisor) {
    ++step_count;
    const float inv = static_cast<float>(1.0 / grad_divisor);
    const float bias1 =
        1.0f - std::pow(config.beta1, static_cast<float>(step_count));
    const float bias2 =
        1.0f - std::pow(config.beta2, static_cast<float>(step_count));
    for (size_t i = 0; i < value.size(); ++i) {
      float g = grad[i] * inv + config.weight_decay * value[i];
      m[i] = config.beta1 * m[i] + (1.0f - config.beta1) * g;
      v[i] = config.beta2 * v[i] + (1.0f - config.beta2) * g * g;
      const float m_hat = m[i] / bias1;
      const float v_hat = v[i] / bias2;
      value[i] -=
          config.learning_rate * m_hat / (std::sqrt(v_hat) + config.epsilon);
    }
  }

  bool Load(std::istream& in) {
    if (!ReadVector(in, &value)) return false;
    grad.assign(value.size(), 0.0f);
    m.assign(value.size(), 0.0f);
    v.assign(value.size(), 0.0f);
    step_count = 0;
    return true;
  }
};

struct NaiveLinear {
  int in_dim = 0;
  int out_dim = 0;
  NaiveParam w, b;

  void Init(int in, int out, Rng& rng) {
    in_dim = in;
    out_dim = out;
    const float scale = std::sqrt(6.0f / static_cast<float>(in));
    w.Init(static_cast<size_t>(in) * out, scale, rng);
    b.Init(static_cast<size_t>(out), 0.0f, rng);
  }

  void Forward(const float* x, float* y) const {
    for (int o = 0; o < out_dim; ++o) {
      const float* row = w.value.data() + static_cast<size_t>(o) * in_dim;
      float acc = b.value[o];
      for (int i = 0; i < in_dim; ++i) acc += row[i] * x[i];
      y[o] = acc;
    }
  }

  void Backward(const float* x, const float* dy, float* dx) {
    for (int o = 0; o < out_dim; ++o) {
      const float g = dy[o];
      if (g == 0.0f) continue;
      float* wg_row = w.grad.data() + static_cast<size_t>(o) * in_dim;
      const float* w_row = w.value.data() + static_cast<size_t>(o) * in_dim;
      b.grad[o] += g;
      for (int i = 0; i < in_dim; ++i) {
        wg_row[i] += g * x[i];
        if (dx != nullptr) dx[i] += g * w_row[i];
      }
    }
  }

  void ZeroGrad() {
    w.ZeroGrad();
    b.ZeroGrad();
  }

  void Step(const nn::AdamConfig& config, double grad_divisor) {
    w.Step(config, grad_divisor);
    b.Step(config, grad_divisor);
  }

  bool Load(std::istream& in) {
    int32_t in32 = 0;
    int32_t out32 = 0;
    if (!ReadPod(in, &in32) || !ReadPod(in, &out32)) return false;
    if (in32 <= 0 || out32 <= 0) return false;
    if (!w.Load(in) || !b.Load(in)) return false;
    in_dim = in32;
    out_dim = out32;
    return true;
  }
};

struct NaiveMlpWs {
  std::vector<std::vector<float>> acts;
  std::vector<std::vector<float>> masks;
};

struct NaiveMlp {
  std::vector<int> dims;
  std::vector<NaiveLinear> layers;

  void Init(const std::vector<int>& d, Rng& rng) {
    dims = d;
    layers.resize(dims.size() - 1);
    for (size_t l = 0; l < layers.size(); ++l) {
      layers[l].Init(dims[l], dims[l + 1], rng);
    }
  }

  const float* Forward(const float* x, NaiveMlpWs* ws, bool train = false,
                       float dropout = 0.0f, Rng* rng = nullptr) const {
    const size_t num_layers = layers.size();
    ws->acts.resize(num_layers + 1);
    ws->masks.assign(num_layers, {});
    ws->acts[0].assign(x, x + dims[0]);
    for (size_t l = 0; l < num_layers; ++l) {
      ws->acts[l + 1].resize(dims[l + 1]);
      layers[l].Forward(ws->acts[l].data(), ws->acts[l + 1].data());
      if (l + 1 >= num_layers) break;
      std::vector<float>& act = ws->acts[l + 1];
      for (float& a : act) {
        if (a < 0.0f) a = 0.0f;  // ReLU.
      }
      if (train && dropout > 0.0f) {
        const float scale = 1.0f / (1.0f - dropout);
        std::vector<float>& mask = ws->masks[l];
        mask.resize(act.size());
        for (size_t i = 0; i < act.size(); ++i) {
          mask[i] = rng->NextBernoulli(dropout) ? 0.0f : scale;
          act[i] *= mask[i];
        }
      }
    }
    return ws->acts.back().data();
  }

  void Backward(const float* dout, NaiveMlpWs& ws, float* dx) {
    const size_t num_layers = layers.size();
    std::vector<float> delta(dout, dout + dims.back());
    std::vector<float> dprev;
    for (size_t l = num_layers; l-- > 0;) {
      dprev.assign(dims[l], 0.0f);
      layers[l].Backward(ws.acts[l].data(), delta.data(), dprev.data());
      if (l > 0) {
        const std::vector<float>& act = ws.acts[l];
        const std::vector<float>& mask = ws.masks[l - 1];
        for (int i = 0; i < dims[l]; ++i) {
          if (act[i] <= 0.0f) {
            dprev[i] = 0.0f;
          } else if (!mask.empty()) {
            dprev[i] *= mask[i];
          }
        }
      }
      delta = dprev;
    }
    if (dx != nullptr) {
      for (int i = 0; i < dims[0]; ++i) dx[i] += delta[i];
    }
  }

  void ZeroGrad() {
    for (NaiveLinear& layer : layers) layer.ZeroGrad();
  }

  void Step(const nn::AdamConfig& config, double grad_divisor) {
    for (NaiveLinear& layer : layers) layer.Step(config, grad_divisor);
  }

  bool Load(std::istream& in) {
    std::vector<int32_t> d32;
    if (!ReadVector(in, &d32) || d32.size() < 2) return false;
    dims.assign(d32.begin(), d32.end());
    layers.assign(dims.size() - 1, NaiveLinear());
    for (NaiveLinear& layer : layers) {
      if (!layer.Load(in)) return false;
    }
    return true;
  }
};

struct NaiveGcnWs {
  int num_nodes = 0;
  std::vector<std::vector<float>> acts;
  std::vector<std::vector<float>> aggs;
  std::vector<std::vector<float>> masks;
};

struct NaiveTreeGcn {
  int input_dim = 0;
  int hidden_dim = 0;
  int num_layers = 0;
  float dropout = 0.0f;
  std::vector<NaiveLinear> self;
  std::vector<NaiveLinear> child;

  int LayerInDim(int l) const { return l == 0 ? input_dim : hidden_dim; }

  void Init(int in, int hidden, int layers, float drop, Rng& rng) {
    input_dim = in;
    hidden_dim = hidden;
    num_layers = layers;
    dropout = drop;
    self.resize(layers);
    child.resize(layers);
    for (int l = 0; l < layers; ++l) {
      self[l].Init(LayerInDim(l), hidden, rng);
      child[l].Init(LayerInDim(l), hidden, rng);
    }
  }

  const float* Forward(const float* node_features, int num_nodes,
                       const std::vector<std::vector<int32_t>>& children,
                       NaiveGcnWs* ws, bool train = false,
                       Rng* rng = nullptr) const {
    const int h = hidden_dim;
    ws->num_nodes = num_nodes;
    ws->acts.resize(num_layers + 1);
    ws->aggs.resize(num_layers);
    ws->masks.assign(num_layers, {});
    ws->acts[0].assign(node_features,
                       node_features +
                           static_cast<size_t>(num_nodes) * input_dim);
    std::vector<float> z(h);
    std::vector<float> child_part(h);
    for (int l = 0; l < num_layers; ++l) {
      const int in_dim = LayerInDim(l);
      const std::vector<float>& in = ws->acts[l];
      ws->aggs[l].assign(static_cast<size_t>(num_nodes) * in_dim, 0.0f);
      ws->acts[l + 1].resize(static_cast<size_t>(num_nodes) * h);
      if (train && dropout > 0.0f) {
        ws->masks[l].resize(static_cast<size_t>(num_nodes) * h);
      }
      for (int i = 0; i < num_nodes; ++i) {
        float* agg = &ws->aggs[l][static_cast<size_t>(i) * in_dim];
        if (!children[i].empty()) {
          const float inv = 1.0f / static_cast<float>(children[i].size());
          for (int32_t c : children[i]) {
            const float* cf = &in[static_cast<size_t>(c) * in_dim];
            for (int j = 0; j < in_dim; ++j) agg[j] += cf[j];
          }
          for (int j = 0; j < in_dim; ++j) agg[j] *= inv;
        }
        self[l].Forward(&in[static_cast<size_t>(i) * in_dim], z.data());
        child[l].Forward(agg, child_part.data());
        float* out = &ws->acts[l + 1][static_cast<size_t>(i) * h];
        for (int j = 0; j < h; ++j) {
          float v = z[j] + child_part[j];
          v = v > 0.0f ? v : 0.0f;  // ReLU.
          if (!ws->masks[l].empty() && rng != nullptr) {
            const float scale = 1.0f / (1.0f - dropout);
            const float mask = rng->NextBernoulli(dropout) ? 0.0f : scale;
            ws->masks[l][static_cast<size_t>(i) * h + j] = mask;
            v *= mask;
          }
          out[j] = v;
        }
      }
    }
    return &ws->acts[num_layers][0];  // Root is node 0.
  }

  void Backward(const float* droot,
                const std::vector<std::vector<int32_t>>& children,
                NaiveGcnWs& ws) {
    const int h = hidden_dim;
    const int n = ws.num_nodes;
    std::vector<float> dcur(static_cast<size_t>(n) * h, 0.0f);
    for (int j = 0; j < h; ++j) dcur[j] = droot[j];
    std::vector<float> dz(h);
    std::vector<float> dagg;
    std::vector<float> dprev;
    for (int l = num_layers; l-- > 0;) {
      const int in_dim = LayerInDim(l);
      dprev.assign(static_cast<size_t>(n) * in_dim, 0.0f);
      const std::vector<float>& act_out = ws.acts[l + 1];
      const std::vector<float>& mask = ws.masks[l];
      for (int i = 0; i < n; ++i) {
        bool any = false;
        for (int j = 0; j < h; ++j) {
          const size_t idx = static_cast<size_t>(i) * h + j;
          float g = dcur[idx];
          if (act_out[idx] <= 0.0f) {
            g = 0.0f;
          } else if (!mask.empty()) {
            g *= mask[idx];
          }
          dz[j] = g;
          any = any || g != 0.0f;
        }
        if (!any) continue;
        float* dself = &dprev[static_cast<size_t>(i) * in_dim];
        self[l].Backward(&ws.acts[l][static_cast<size_t>(i) * in_dim],
                         dz.data(), dself);
        dagg.assign(in_dim, 0.0f);
        child[l].Backward(&ws.aggs[l][static_cast<size_t>(i) * in_dim],
                          dz.data(), dagg.data());
        if (!children[i].empty()) {
          const float inv = 1.0f / static_cast<float>(children[i].size());
          for (int32_t c : children[i]) {
            float* dchild = &dprev[static_cast<size_t>(c) * in_dim];
            for (int j = 0; j < in_dim; ++j) dchild[j] += dagg[j] * inv;
          }
        }
      }
      dcur = dprev;
    }
  }

  void ZeroGrad() {
    for (NaiveLinear& layer : self) layer.ZeroGrad();
    for (NaiveLinear& layer : child) layer.ZeroGrad();
  }

  void Step(const nn::AdamConfig& config, double grad_divisor) {
    for (NaiveLinear& layer : self) layer.Step(config, grad_divisor);
    for (NaiveLinear& layer : child) layer.Step(config, grad_divisor);
  }

  bool Load(std::istream& in) {
    int32_t in32 = 0;
    int32_t hidden32 = 0;
    int32_t layers32 = 0;
    if (!ReadPod(in, &in32) || !ReadPod(in, &hidden32) ||
        !ReadPod(in, &layers32) || !ReadPod(in, &dropout)) {
      return false;
    }
    input_dim = in32;
    hidden_dim = hidden32;
    num_layers = layers32;
    self.assign(num_layers, NaiveLinear());
    child.assign(num_layers, NaiveLinear());
    for (NaiveLinear& layer : self) {
      if (!layer.Load(in)) return false;
    }
    for (NaiveLinear& layer : child) {
      if (!layer.Load(in)) return false;
    }
    return true;
  }
};

double HuberGrad(double r, double delta) {
  if (r > delta) return delta;
  if (r < -delta) return -delta;
  return r;
}

struct NaiveGlobalModel {
  NaiveTreeGcn gcn;
  NaiveMlp head;

  // The production Save() stream: header, gcn, head.
  bool Load(std::istream& in) {
    if (!ReadHeader(in, 0x53474d4c, 1)) return false;
    return gcn.Load(in) && head.Load(in);
  }

  double ForwardTarget(const global::GlobalExample& example) const {
    NaiveGcnWs gcn_ws;
    NaiveMlpWs head_ws;
    std::vector<float> concat(gcn.hidden_dim + global::kSystemFeatureDim);
    const int n = static_cast<int>(example.children.size());
    const float* root = gcn.Forward(example.node_features.data(), n,
                                    example.children, &gcn_ws);
    std::copy(root, root + gcn.hidden_dim, concat.begin());
    std::copy(example.system_features.begin(), example.system_features.end(),
              concat.begin() + gcn.hidden_dim);
    const float* out = head.Forward(concat.data(), &head_ws);
    return static_cast<double>(out[0]);
  }

  double PredictSeconds(const plan::Plan& plan,
                        const fleet::InstanceConfig& instance,
                        int concurrent_queries) const {
    const global::GlobalExample example =
        global::MakeGlobalExample(plan, instance, concurrent_queries, 0.0);
    const double target = std::clamp(ForwardTarget(example), 0.0, 14.0);
    return std::max(0.0, std::expm1(target));
  }

  // The pre-rewrite trainer: per-example forward/backward, one tree at a
  // time, fresh shuffles per epoch. Used only for the wall-clock baseline.
  static NaiveGlobalModel Train(
      const std::vector<global::GlobalExample>& examples,
      const global::GlobalModelConfig& config) {
    NaiveGlobalModel model;
    Rng rng(config.seed);
    model.gcn.Init(plan::kNodeFeatureDim, config.hidden_dim,
                   config.num_layers, config.dropout, rng);
    std::vector<int> head_dims;
    head_dims.push_back(config.hidden_dim + global::kSystemFeatureDim);
    for (int h : config.head_hidden) head_dims.push_back(h);
    head_dims.push_back(1);
    model.head.Init(head_dims, rng);

    std::vector<size_t> order = rng.Permutation(examples.size());
    size_t num_val = 0;
    if (config.validation_fraction > 0.0 && examples.size() >= 20) {
      num_val = static_cast<size_t>(config.validation_fraction *
                                    static_cast<double>(examples.size()));
    }
    std::vector<size_t> train_rows(order.begin() + num_val, order.end());

    const int concat_dim = config.hidden_dim + global::kSystemFeatureDim;
    std::vector<float> concat(concat_dim);
    std::vector<float> dconcat(concat_dim);
    NaiveGcnWs gcn_ws;
    NaiveMlpWs head_ws;
    for (int epoch = 0; epoch < config.epochs; ++epoch) {
      std::vector<size_t> shuffled;
      shuffled.reserve(train_rows.size());
      for (size_t i : rng.Permutation(train_rows.size())) {
        shuffled.push_back(train_rows[i]);
      }
      train_rows = shuffled;

      size_t index = 0;
      while (index < train_rows.size()) {
        const size_t batch_end =
            std::min(index + static_cast<size_t>(config.batch_size),
                     train_rows.size());
        const double batch_size = static_cast<double>(batch_end - index);
        model.gcn.ZeroGrad();
        model.head.ZeroGrad();
        for (; index < batch_end; ++index) {
          const global::GlobalExample& example = examples[train_rows[index]];
          const int n = static_cast<int>(example.children.size());
          const float* root =
              model.gcn.Forward(example.node_features.data(), n,
                                example.children, &gcn_ws, true, &rng);
          std::copy(root, root + config.hidden_dim, concat.begin());
          std::copy(example.system_features.begin(),
                    example.system_features.end(),
                    concat.begin() + config.hidden_dim);
          const float* out = model.head.Forward(concat.data(), &head_ws, true,
                                                config.dropout, &rng);
          const double residual =
              static_cast<double>(out[0]) - example.target;
          const float dout =
              static_cast<float>(HuberGrad(residual, config.huber_delta));
          std::fill(dconcat.begin(), dconcat.end(), 0.0f);
          model.head.Backward(&dout, head_ws, dconcat.data());
          model.gcn.Backward(dconcat.data(), example.children, gcn_ws);
        }
        model.gcn.Step(config.adam, batch_size);
        model.head.Step(config.adam, batch_size);
      }
    }
    return model;
  }
};

struct LatencyStats {
  double p50_ns = 0.0;
  double p99_ns = 0.0;
  double mean_ns = 0.0;
};

template <typename Fn>
LatencyStats MeasureSinglePlan(const BenchConfig& config,
                               const std::vector<const plan::Plan*>& plans,
                               Fn&& predict, double* checksum) {
  std::vector<double> nanos;
  nanos.reserve(static_cast<size_t>(config.single_plan_iters));
  double sum = 0.0;
  for (int i = 0; i < config.single_plan_iters; ++i) {
    const plan::Plan* plan =
        plans[static_cast<size_t>(i) % plans.size()];
    const auto start = std::chrono::steady_clock::now();
    sum += predict(*plan);
    nanos.push_back(SecondsSince(start) * 1e9);
  }
  *checksum += sum;
  LatencyStats stats;
  stats.p50_ns = Quantile(nanos, 0.5);
  stats.p99_ns = Quantile(nanos, 0.99);
  double total = 0.0;
  for (double v : nanos) total += v;
  stats.mean_ns = total / static_cast<double>(nanos.size());
  return stats;
}

// Best-of-N plans/sec for one full pass over the batch.
template <typename Fn>
double MeasureBatch(const BenchConfig& config, size_t num_plans, Fn&& run) {
  double best = 0.0;
  for (int i = 0; i < config.batch_iters; ++i) {
    const auto start = std::chrono::steady_clock::now();
    run();
    const double seconds = SecondsSince(start);
    best = std::max(best, static_cast<double>(num_plans) / seconds);
  }
  return best;
}

template <typename Fn>
double AllocationsPerCall(int iters, Fn&& call) {
  g_allocations.store(0, std::memory_order_relaxed);
  g_count_allocations.store(true, std::memory_order_relaxed);
  for (int i = 0; i < iters; ++i) call();
  g_count_allocations.store(false, std::memory_order_relaxed);
  return static_cast<double>(g_allocations.load(std::memory_order_relaxed)) /
         static_cast<double>(iters);
}

}  // namespace

int main() {
  const BenchConfig config = MakeBenchConfig();

  fleet::FleetConfig fleet_config;
  fleet_config.num_instances = config.num_instances;
  fleet_config.workload.num_queries = config.queries_per_instance;
  fleet_config.seed = 7;
  fleet::FleetGenerator generator(fleet_config);
  const auto fleet = generator.GenerateFleet();

  std::vector<global::GlobalExample> examples;
  for (size_t i = 0; i + 1 < fleet.size(); ++i) {
    for (const auto& event : fleet[i].trace) {
      examples.push_back(global::MakeGlobalExample(
          event.plan, fleet[i].config, event.concurrent_queries,
          event.exec_seconds));
    }
  }
  const auto& eval_instance = fleet.back();
  std::vector<const plan::Plan*> eval_plans;
  for (const auto& event : eval_instance.trace) {
    eval_plans.push_back(&event.plan);
  }

  global::GlobalModelConfig model_config;
  model_config.hidden_dim = config.hidden_dim;
  model_config.num_layers = config.num_layers;
  model_config.head_hidden = config.head_hidden;
  model_config.epochs = config.epochs;

  // -- Training --------------------------------------------------------
  const auto naive_train_start = std::chrono::steady_clock::now();
  const NaiveGlobalModel naive_trained =
      NaiveGlobalModel::Train(examples, model_config);
  const double naive_train_seconds = SecondsSince(naive_train_start);

  const auto train_start = std::chrono::steady_clock::now();
  double val_mae = -1.0;
  const global::GlobalModel model =
      global::GlobalModel::Train(examples, model_config, &val_mae);
  const double train_seconds = SecondsSince(train_start);
  const double train_speedup =
      train_seconds > 0.0 ? naive_train_seconds / train_seconds : 0.0;
  std::printf("train (%zu examples, %d epochs): naive %.3fs, batched %.3fs "
              "(%.2fx), val MAE(log) %.4f\n",
              examples.size(), config.epochs, naive_train_seconds,
              train_seconds, train_speedup, val_mae);

  // Keep the naive-trained model's weights alive as a sanity checksum so
  // the baseline trainer cannot be dead-code eliminated.
  double checksum = naive_trained.PredictSeconds(
      *eval_plans[0], eval_instance.config, 1);

  // -- Bit-equivalence gate -------------------------------------------
  // The naive inference path loads the production checkpoint bytes and
  // must reproduce every prediction exactly.
  std::stringstream checkpoint;
  model.Save(checkpoint);
  NaiveGlobalModel naive;
  if (!naive.Load(checkpoint)) {
    std::fprintf(stderr, "naive baseline failed to parse checkpoint\n");
    return 1;
  }
  size_t mismatches = 0;
  for (size_t i = 0; i < eval_plans.size(); ++i) {
    const int concurrency = static_cast<int>(i % 7);
    const double a =
        naive.PredictSeconds(*eval_plans[i], eval_instance.config,
                             concurrency);
    const double b = model.PredictSeconds(*eval_plans[i],
                                          eval_instance.config, concurrency);
    if (std::memcmp(&a, &b, sizeof(double)) != 0) ++mismatches;
  }
  if (mismatches > 0) {
    std::fprintf(stderr,
                 "FAIL: %zu/%zu batched predictions differ from the naive "
                 "reference\n",
                 mismatches, eval_plans.size());
    return 1;
  }
  std::printf("bit-equivalence: %zu/%zu predictions identical to the naive "
              "reference\n",
              eval_plans.size(), eval_plans.size());

  // -- Single-plan latency --------------------------------------------
  const LatencyStats baseline = MeasureSinglePlan(
      config, eval_plans,
      [&](const plan::Plan& plan) {
        return naive.PredictSeconds(plan, eval_instance.config, 2);
      },
      &checksum);
  const LatencyStats batched = MeasureSinglePlan(
      config, eval_plans,
      [&](const plan::Plan& plan) {
        return model.PredictSeconds(plan, eval_instance.config, 2);
      },
      &checksum);
  const double single_plan_speedup =
      batched.p50_ns > 0.0 ? baseline.p50_ns / batched.p50_ns : 0.0;
  std::printf("single-plan p50: naive %.0fns, batched %.0fns (%.2fx); "
              "p99: naive %.0fns, batched %.0fns\n",
              baseline.p50_ns, batched.p50_ns, single_plan_speedup,
              baseline.p99_ns, batched.p99_ns);

  // -- Batch throughput ------------------------------------------------
  std::vector<global::GlobalQuery> queries;
  queries.reserve(static_cast<size_t>(config.batch_plans));
  for (int i = 0; i < config.batch_plans; ++i) {
    queries.push_back({eval_plans[static_cast<size_t>(i) % eval_plans.size()],
                       i % 7});
  }
  std::vector<double> batch_out(queries.size(), 0.0);
  const double naive_plans_per_sec =
      MeasureBatch(config, queries.size(), [&] {
        for (size_t i = 0; i < queries.size(); ++i) {
          batch_out[i] = naive.PredictSeconds(*queries[i].plan,
                                              eval_instance.config,
                                              queries[i].concurrent_queries);
        }
      });
  checksum += batch_out[queries.size() / 2];
  const double batched_plans_per_sec =
      MeasureBatch(config, queries.size(), [&] {
        model.PredictBatch(queries, eval_instance.config, batch_out,
                           &ThreadPool::Shared());
      });
  checksum += batch_out[queries.size() / 2];
  const double batch_speedup =
      naive_plans_per_sec > 0.0 ? batched_plans_per_sec / naive_plans_per_sec
                                : 0.0;
  std::printf("batch (%zu plans): naive %.0f plans/s, batched %.0f plans/s "
              "(%.2fx, pool of %zu)\n",
              queries.size(), naive_plans_per_sec, batched_plans_per_sec,
              batch_speedup, ThreadPool::Shared().num_threads());

  // -- Allocations per predict ----------------------------------------
  const plan::Plan* probe_plan = eval_plans[0];
  // Warm the thread-local scratch before counting.
  checksum += model.PredictSeconds(*probe_plan, eval_instance.config, 2);
  const double naive_allocs =
      AllocationsPerCall(config.alloc_probe_iters, [&] {
        checksum +=
            naive.PredictSeconds(*probe_plan, eval_instance.config, 2);
      });
  const double batched_allocs =
      AllocationsPerCall(config.alloc_probe_iters, [&] {
        checksum +=
            model.PredictSeconds(*probe_plan, eval_instance.config, 2);
      });
  std::printf("allocations/predict: naive %.1f, batched %.1f "
              "(checksum %.6f)\n",
              naive_allocs, batched_allocs, checksum);

  // -- JSON ------------------------------------------------------------
  std::FILE* json = std::fopen("BENCH_global_hot_path.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr,
                 "cannot open BENCH_global_hot_path.json for write\n");
    return 1;
  }
  std::fprintf(json,
               "{\n"
               "  \"config\": {\"fast\": %s, \"num_examples\": %zu, "
               "\"epochs\": %d, \"hidden_dim\": %d, \"num_layers\": %d, "
               "\"pool_threads\": %zu},\n"
               "  \"train\": {\"naive_seconds\": %.6f, "
               "\"batched_seconds\": %.6f, \"speedup\": %.3f, "
               "\"val_mae_log\": %.6f},\n"
               "  \"bit_identical\": true,\n"
               "  \"single_plan\": {\n"
               "    \"naive_p50_ns\": %.1f, \"naive_p99_ns\": %.1f, "
               "\"naive_mean_ns\": %.1f,\n"
               "    \"batched_p50_ns\": %.1f, \"batched_p99_ns\": %.1f, "
               "\"batched_mean_ns\": %.1f,\n"
               "    \"speedup_p50\": %.3f\n"
               "  },\n"
               "  \"batch\": {\"plans\": %zu, "
               "\"naive_plans_per_sec\": %.1f, "
               "\"batched_plans_per_sec\": %.1f, \"speedup\": %.3f},\n"
               "  \"allocations_per_predict\": "
               "{\"naive\": %.2f, \"batched\": %.2f}\n"
               "}\n",
               config.fast ? "true" : "false", examples.size(), config.epochs,
               config.hidden_dim, config.num_layers,
               ThreadPool::Shared().num_threads(), naive_train_seconds,
               train_seconds, train_speedup, val_mae, baseline.p50_ns,
               baseline.p99_ns, baseline.mean_ns, batched.p50_ns,
               batched.p99_ns, batched.mean_ns, single_plan_speedup,
               queries.size(), naive_plans_per_sec, batched_plans_per_sec,
               batch_speedup, naive_allocs, batched_allocs);
  std::fclose(json);
  std::printf("wrote BENCH_global_hot_path.json\n");
  return 0;
}
