// Figure 11: distribution of the local model's prediction-rejection ratio
// (PRR) across all evaluation instances.
#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "stage/common/stats.h"
#include "stage/common/stats.h"
#include "stage/metrics/prr.h"
#include "stage/metrics/report.h"

using namespace stage;

int main() {
  bench::SuiteConfig suite = bench::MakeSuiteConfig();
  suite.num_eval_instances = std::max(suite.num_eval_instances, 10);
  fleet::FleetGenerator generator(bench::EvalFleetConfig(suite));

  std::vector<double> prr_scores;
  for (int i = 0; i < suite.num_eval_instances; ++i) {
    const fleet::InstanceTrace instance = generator.MakeInstanceTrace(i);
    core::StagePredictor stage(bench::PaperStageConfig(),
                               {.instance = &instance.config});
    const auto result = core::ReplayTrace(instance.trace, stage);

    std::vector<double> errors;
    std::vector<double> uncertainties;
    for (const auto& record : result.records) {
      if (record.source == core::PredictionSource::kLocal &&
          record.uncertainty_log_std >= 0.0) {
        errors.push_back(
            std::abs(record.actual_seconds - record.predicted_seconds));
        uncertainties.push_back(record.uncertainty_log_std);
      }
    }
    if (errors.size() < 50) continue;  // Not enough signal to score.
    prr_scores.push_back(
        metrics::PredictionRejectionRatio(errors, uncertainties));
    std::fprintf(stderr, "[bench] instance %d PRR = %.3f (%zu queries)\n", i,
                 prr_scores.back(), errors.size());
  }

  std::printf("=== Figure 11: PRR distribution across instances ===\n"
              "(paper shape: median ~0.9, a cluster near 1.0, a low tail "
              "for instances with too little training data)\n\n");
  metrics::TextTable histogram;
  histogram.SetHeader({"PRR bucket", "# instances", "bar"});
  for (int b = 0; b < 10; ++b) {
    const double lo = b * 0.1;
    const double hi = lo + 0.1;
    int count = 0;
    for (double score : prr_scores) {
      if (score >= lo && (score < hi || (b == 9 && score <= 1.0))) ++count;
    }
    char label[32];
    std::snprintf(label, sizeof(label), "%.1f - %.1f", lo, hi);
    histogram.AddRow({label, std::to_string(count), std::string(count, '#')});
  }
  std::printf("%s\n", histogram.Render().c_str());
  std::printf("median PRR: %.3f over %zu instances (paper: 0.9)\n",
              Quantile(prr_scores, 0.5), prr_scores.size());
  return 0;
}
