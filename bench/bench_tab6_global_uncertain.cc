// Table 6: accuracy of the global model vs the local model on the queries
// the local model is UNCERTAIN about (the subset the §4.1 routing actually
// sends to the global model).
#include <cstdio>

#include "bench_common.h"
#include "stage/metrics/report.h"

using namespace stage;

int main() {
  const bench::SuiteConfig suite = bench::MakeSuiteConfig();
  const global::GlobalModel global_model = bench::TrainGlobalModel(suite);
  fleet::FleetGenerator generator(bench::EvalFleetConfig(suite));

  std::vector<double> actual;
  std::vector<double> local_pred;
  std::vector<double> global_pred;
  size_t local_served = 0;
  for (int i = 0; i < suite.num_eval_instances; ++i) {
    const fleet::InstanceTrace instance = generator.MakeInstanceTrace(i);
    const auto records =
        bench::ReplayDual(instance, global_model, bench::PaperStageConfig());
    local_served += records.size();
    for (const auto& record : records) {
      if (!record.escalate) continue;
      actual.push_back(record.actual);
      local_pred.push_back(record.local_seconds);
      global_pred.push_back(record.global_seconds);
    }
    std::fprintf(stderr, "[bench] instance %d/%d dual-replayed\n", i + 1,
                 suite.num_eval_instances);
  }

  std::printf("uncertain-and-long subset: %zu of %zu local-served queries "
              "(%s; the paper reports the global model firing ~3%% of the "
              "time overall)\n\n",
              actual.size(), local_served,
              metrics::FormatPercent(static_cast<double>(actual.size()) /
                                     static_cast<double>(local_served))
                  .c_str());
  const auto global_summary = metrics::SummarizeByBucket(
      actual, metrics::AbsoluteErrors(actual, global_pred));
  const auto local_summary = metrics::SummarizeByBucket(
      actual, metrics::AbsoluteErrors(actual, local_pred));
  std::printf("%s\n",
              bench::RenderBucketTable(
                  "=== Table 6: global vs local on UNCERTAIN queries ===\n"
                  "(paper shape: here the ordering flips — the global "
                  "model wins overall where the local model knows it is "
                  "lost, which is exactly why the routing works)",
                  "AE", "Global", global_summary, "Local", local_summary)
                  .c_str());
  return 0;
}
