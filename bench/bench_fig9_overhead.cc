// Figure 9: average inference latency and memory overhead of every
// predictor component (exec-time cache, local model, global model, the
// full Stage predictor, and the AutoWLM baseline). Latency is actually
// measured with google-benchmark; memory is the components' resident
// structure sizes.
#include <cstdio>

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "stage/wlm/workload_manager.h"

using namespace stage;

namespace {

// Shared trained state (built once; google-benchmark runs each timing loop
// against it).
struct Harness {
  fleet::InstanceTrace instance;
  std::unique_ptr<core::StagePredictor> stage;
  std::unique_ptr<core::AutoWlmPredictor> autowlm;
  std::unique_ptr<global::GlobalModel> global_model;
  core::QueryContext repeat_context;   // A context that hits the cache.
  core::QueryContext miss_context;     // A context that misses it.

  static Harness& Get() {
    static Harness* harness = new Harness();
    return *harness;
  }

 private:
  Harness() {
    bench::SuiteConfig suite = bench::MakeSuiteConfig();
    suite.num_eval_instances = 1;
    global_model =
        std::make_unique<global::GlobalModel>(bench::TrainGlobalModel(suite));

    fleet::FleetGenerator generator(bench::EvalFleetConfig(suite));
    instance = generator.MakeInstanceTrace(0);
    stage = std::make_unique<core::StagePredictor>(
        bench::PaperStageConfig(),
        core::StagePredictorOptions{global_model.get(), &instance.config});
    autowlm =
        std::make_unique<core::AutoWlmPredictor>(bench::PaperAutoWlmConfig());
    core::ReplayTrace(instance.trace, *stage);
    core::ReplayTrace(instance.trace, *autowlm);

    // A repeated query (cache hit) and a fresh one (miss).
    const auto& last = instance.trace.back();
    repeat_context = core::MakeQueryContext(last.plan, 1, 1u << 30);
    stage->Observe(repeat_context, last.exec_seconds);
    miss_context = repeat_context;
    miss_context.feature_hash ^= 0xdeadbeefULL;  // Forced miss.
  }
};

void BM_ExecTimeCacheHit(benchmark::State& state) {
  Harness& harness = Harness::Get();
  for (auto _ : state) {
    benchmark::DoNotOptimize(harness.stage->Predict(harness.repeat_context));
  }
}
BENCHMARK(BM_ExecTimeCacheHit);

void BM_LocalModelPredict(benchmark::State& state) {
  Harness& harness = Harness::Get();
  const auto& local = harness.stage->local_model();
  for (auto _ : state) {
    benchmark::DoNotOptimize(local.Predict(harness.miss_context.features));
  }
}
BENCHMARK(BM_LocalModelPredict);

void BM_GlobalModelPredict(benchmark::State& state) {
  Harness& harness = Harness::Get();
  const auto& event = harness.instance.trace.back();
  for (auto _ : state) {
    benchmark::DoNotOptimize(harness.global_model->PredictSeconds(
        event.plan, harness.instance.config, event.concurrent_queries));
  }
}
BENCHMARK(BM_GlobalModelPredict);

void BM_StagePredictorMiss(benchmark::State& state) {
  Harness& harness = Harness::Get();
  for (auto _ : state) {
    benchmark::DoNotOptimize(harness.stage->Predict(harness.miss_context));
  }
}
BENCHMARK(BM_StagePredictorMiss);

void BM_AutoWlmPredict(benchmark::State& state) {
  Harness& harness = Harness::Get();
  for (auto _ : state) {
    benchmark::DoNotOptimize(harness.autowlm->Predict(harness.miss_context));
  }
}
BENCHMARK(BM_AutoWlmPredict);

void BM_Featurization(benchmark::State& state) {
  Harness& harness = Harness::Get();
  const auto& event = harness.instance.trace.back();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::MakeQueryContext(event.plan, 1, 0));
  }
}
BENCHMARK(BM_Featurization);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  Harness& harness = Harness::Get();
  std::printf("\n=== Figure 9: memory overhead (resident structures) ===\n");
  std::printf("(paper shape: cache < AutoWLM < local (10x AutoWLM) << "
              "global, with the global model excluded from the per-cluster "
              "footprint — it deploys as a shared service)\n\n");
  std::printf("exec-time cache : %10zu bytes\n",
              harness.stage->exec_time_cache().MemoryBytes());
  std::printf("local model     : %10zu bytes\n",
              harness.stage->local_model().MemoryBytes());
  std::printf("AutoWLM model   : %10zu bytes\n", harness.autowlm->MemoryBytes());
  std::printf("global model    : %10zu bytes\n",
              harness.global_model->MemoryBytes());
  std::printf("Stage (local)   : %10zu bytes (cache + local model)\n",
              harness.stage->LocalMemoryBytes());
  return 0;
}
