// GBT hot-path microbenchmark: quantifies the FlatForest inference rewrite
// and the histogram-subtraction trainer against the original node-vector
// walk. The baseline below replicates the pre-rewrite predict path exactly
// (one heap-allocated result vector per member per call, two levels of
// vector indirection per tree); the flat path is the production
// PredictInto/PredictBatch code. Emits machine-readable
// BENCH_gbt_hot_path.json in the working directory.
//
// STAGE_BENCH_FAST=1 shrinks the workload for CI smoke runs.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <vector>

#include "stage/common/rng.h"
#include "stage/common/stats.h"
#include "stage/common/thread_pool.h"
#include "stage/gbt/dataset.h"
#include "stage/gbt/ensemble.h"
#include "stage/gbt/gbdt.h"
#include "stage/gbt/loss.h"

namespace {

std::atomic<bool> g_count_allocations{false};
std::atomic<uint64_t> g_allocations{0};

}  // namespace

// Counting overrides: the default operator new[] / delete[] forward here,
// so replacing this pair is enough to see every heap allocation.
void* operator new(std::size_t size) {
  if (g_count_allocations.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  if (size == 0) size = 1;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace stage;

struct BenchConfig {
  bool fast = false;
  int num_rows = 8000;
  int num_features = 33;
  int num_members = 10;
  int num_rounds = 200;
  int single_row_iters = 3000;
  int batch_rows = 8192;
  int batch_iters = 8;
  int alloc_probe_iters = 256;
};

BenchConfig MakeBenchConfig() {
  BenchConfig config;
  const char* fast = std::getenv("STAGE_BENCH_FAST");
  if (fast != nullptr && fast[0] != '\0' && fast[0] != '0') {
    config.fast = true;
    config.num_rows = 1200;
    config.num_members = 4;
    config.num_rounds = 30;
    config.single_row_iters = 300;
    config.batch_rows = 1024;
    config.batch_iters = 2;
    config.alloc_probe_iters = 64;
  }
  return config;
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// Synthetic regression task shaped like the plan-vector workload: a few
// strong features, interactions, and multiplicative noise.
gbt::Dataset MakeData(const BenchConfig& config, std::vector<float>* rows) {
  Rng rng(7);
  gbt::Dataset data(config.num_features);
  data.Reserve(static_cast<size_t>(config.num_rows));
  rows->assign(
      static_cast<size_t>(config.num_rows) * config.num_features, 0.0f);
  for (int r = 0; r < config.num_rows; ++r) {
    float* row = rows->data() +
                 static_cast<size_t>(r) * config.num_features;
    for (int f = 0; f < config.num_features; ++f) {
      row[f] = static_cast<float>(rng.NextUniform(0.0, 4.0));
    }
    const double label = 0.8 * row[0] + 0.5 * row[1] * row[2] +
                         std::sin(row[3]) + rng.NextGaussian(0.0, 0.2);
    data.AddRow(row, label);
  }
  return data;
}

gbt::EnsembleConfig MakeEnsembleConfig(const BenchConfig& config) {
  gbt::EnsembleConfig ensemble;
  ensemble.num_members = config.num_members;
  ensemble.member.num_rounds = config.num_rounds;
  ensemble.member.seed = 42;
  return ensemble;
}

// The pre-rewrite GbdtModel::Predict, verbatim semantics: allocate the
// result vector, then walk the per-round node-vector trees.
std::vector<double> BaselineMemberPredict(const gbt::GbdtModel& member,
                                          const float* row) {
  std::vector<double> out = member.base_scores();
  for (const auto& round : member.trees()) {
    for (size_t j = 0; j < round.size(); ++j) {
      out[j] += round[j].Predict(row);
    }
  }
  return out;
}

// The pre-rewrite BayesianGbtEnsemble::Predict on top of it.
gbt::BayesianGbtEnsemble::Prediction BaselineEnsemblePredict(
    const gbt::BayesianGbtEnsemble& ensemble, const float* row) {
  const double k = static_cast<double>(ensemble.num_members());
  double sum_mu = 0.0;
  double sum_mu_sq = 0.0;
  double sum_var = 0.0;
  for (const gbt::GbdtModel& member : ensemble.members()) {
    const std::vector<double> pred = BaselineMemberPredict(member, row);
    const double mu = pred[0];
    const double sigma_sq = std::exp(std::clamp(pred[1], -12.0, 12.0));
    sum_mu += mu;
    sum_mu_sq += mu * mu;
    sum_var += sigma_sq;
  }
  gbt::BayesianGbtEnsemble::Prediction out;
  out.mean = sum_mu / k;
  out.model_variance = std::max(0.0, sum_mu_sq / k - out.mean * out.mean);
  out.data_variance = sum_var / k;
  return out;
}

struct LatencyStats {
  double p50_ns = 0.0;
  double p99_ns = 0.0;
  double mean_ns = 0.0;
};

template <typename Fn>
LatencyStats MeasureSingleRow(const BenchConfig& config,
                              const std::vector<float>& rows, Fn&& predict,
                              double* checksum) {
  const size_t num_rows = rows.size() / config.num_features;
  std::vector<double> nanos;
  nanos.reserve(static_cast<size_t>(config.single_row_iters));
  double sum = 0.0;
  for (int i = 0; i < config.single_row_iters; ++i) {
    const float* row = rows.data() + (static_cast<size_t>(i) % num_rows) *
                                         config.num_features;
    const auto start = std::chrono::steady_clock::now();
    sum += predict(row);
    nanos.push_back(SecondsSince(start) * 1e9);
  }
  *checksum += sum;
  LatencyStats stats;
  stats.p50_ns = Quantile(nanos, 0.5);
  stats.p99_ns = Quantile(nanos, 0.99);
  double total = 0.0;
  for (double v : nanos) total += v;
  stats.mean_ns = total / static_cast<double>(nanos.size());
  return stats;
}

// Best-of-N rows/sec for one full pass over the batch matrix.
template <typename Fn>
double MeasureBatch(const BenchConfig& config, size_t num_rows, Fn&& run) {
  double best = 0.0;
  for (int i = 0; i < config.batch_iters; ++i) {
    const auto start = std::chrono::steady_clock::now();
    run();
    const double seconds = SecondsSince(start);
    best = std::max(best, static_cast<double>(num_rows) / seconds);
  }
  return best;
}

template <typename Fn>
double AllocationsPerCall(int iters, Fn&& call) {
  g_allocations.store(0, std::memory_order_relaxed);
  g_count_allocations.store(true, std::memory_order_relaxed);
  for (int i = 0; i < iters; ++i) call();
  g_count_allocations.store(false, std::memory_order_relaxed);
  return static_cast<double>(g_allocations.load(std::memory_order_relaxed)) /
         static_cast<double>(iters);
}

}  // namespace

int main() {
  const BenchConfig config = MakeBenchConfig();
  std::vector<float> rows;
  const gbt::Dataset data = MakeData(config, &rows);
  const gbt::EnsembleConfig ensemble_config = MakeEnsembleConfig(config);

  // -- Training --------------------------------------------------------
  const auto member_start = std::chrono::steady_clock::now();
  const auto nll_loss = gbt::MakeGaussianNllLoss();
  const gbt::GbdtModel member =
      gbt::GbdtModel::Train(data, *nll_loss, ensemble_config.member);
  const double member_train_seconds = SecondsSince(member_start);

  const auto ensemble_start = std::chrono::steady_clock::now();
  const gbt::BayesianGbtEnsemble ensemble =
      gbt::BayesianGbtEnsemble::Train(data, ensemble_config);
  const double ensemble_train_seconds = SecondsSince(ensemble_start);
  std::printf("trained: member %.3fs, ensemble (%d members) %.3fs, "
              "member rounds used %d\n",
              member_train_seconds, ensemble.num_members(),
              ensemble_train_seconds, member.rounds_used());

  // -- Single-row latency ---------------------------------------------
  double checksum = 0.0;
  const LatencyStats baseline = MeasureSingleRow(
      config, rows,
      [&](const float* row) {
        return BaselineEnsemblePredict(ensemble, row).mean;
      },
      &checksum);
  const LatencyStats flat = MeasureSingleRow(
      config, rows,
      [&](const float* row) { return ensemble.Predict(row).mean; },
      &checksum);
  const double single_row_speedup =
      flat.p50_ns > 0.0 ? baseline.p50_ns / flat.p50_ns : 0.0;
  std::printf("single-row p50: baseline %.0fns, flat %.0fns (%.2fx); "
              "p99: baseline %.0fns, flat %.0fns\n",
              baseline.p50_ns, flat.p50_ns, single_row_speedup,
              baseline.p99_ns, flat.p99_ns);

  // -- Batch throughput ------------------------------------------------
  const size_t batch_rows =
      std::min(static_cast<size_t>(config.batch_rows),
               rows.size() / config.num_features);
  std::vector<gbt::BayesianGbtEnsemble::Prediction> batch_out(batch_rows);
  const double baseline_rows_per_sec =
      MeasureBatch(config, batch_rows, [&] {
        for (size_t r = 0; r < batch_rows; ++r) {
          batch_out[r] = BaselineEnsemblePredict(
              ensemble, rows.data() + r * config.num_features);
        }
      });
  checksum += batch_out[batch_rows / 2].mean;
  const double flat_rows_per_sec = MeasureBatch(config, batch_rows, [&] {
    ensemble.PredictBatch(rows.data(), batch_rows,
                          static_cast<size_t>(config.num_features), batch_out,
                          &ThreadPool::Shared());
  });
  checksum += batch_out[batch_rows / 2].mean;
  const double batch_speedup =
      baseline_rows_per_sec > 0.0 ? flat_rows_per_sec / baseline_rows_per_sec
                                  : 0.0;
  std::printf("batch (%zu rows): baseline %.0f rows/s, flat %.0f rows/s "
              "(%.2fx, pool of %zu)\n",
              batch_rows, baseline_rows_per_sec, flat_rows_per_sec,
              batch_speedup, ThreadPool::Shared().num_threads());

  // -- Allocations per predict ----------------------------------------
  const float* probe_row = rows.data();
  const double baseline_allocs =
      AllocationsPerCall(config.alloc_probe_iters, [&] {
        checksum += BaselineEnsemblePredict(ensemble, probe_row).mean;
      });
  const double flat_allocs = AllocationsPerCall(config.alloc_probe_iters, [&] {
    checksum += ensemble.Predict(probe_row).mean;
  });
  std::printf("allocations/predict: baseline %.1f, flat %.1f "
              "(checksum %.6f)\n",
              baseline_allocs, flat_allocs, checksum);

  // -- JSON ------------------------------------------------------------
  std::FILE* json = std::fopen("BENCH_gbt_hot_path.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_gbt_hot_path.json for write\n");
    return 1;
  }
  std::fprintf(json,
               "{\n"
               "  \"config\": {\"fast\": %s, \"num_rows\": %d, "
               "\"num_features\": %d, \"num_members\": %d, "
               "\"num_rounds\": %d, \"pool_threads\": %zu},\n"
               "  \"train\": {\"member_seconds\": %.6f, "
               "\"ensemble_seconds\": %.6f, \"member_rounds_used\": %d},\n"
               "  \"single_row\": {\n"
               "    \"baseline_p50_ns\": %.1f, \"baseline_p99_ns\": %.1f, "
               "\"baseline_mean_ns\": %.1f,\n"
               "    \"flat_p50_ns\": %.1f, \"flat_p99_ns\": %.1f, "
               "\"flat_mean_ns\": %.1f,\n"
               "    \"speedup_p50\": %.3f\n"
               "  },\n"
               "  \"batch\": {\"rows\": %zu, "
               "\"baseline_rows_per_sec\": %.1f, "
               "\"flat_rows_per_sec\": %.1f, \"speedup\": %.3f},\n"
               "  \"allocations_per_predict\": "
               "{\"baseline\": %.2f, \"flat\": %.2f}\n"
               "}\n",
               config.fast ? "true" : "false", config.num_rows,
               config.num_features, config.num_members, config.num_rounds,
               ThreadPool::Shared().num_threads(), member_train_seconds,
               ensemble_train_seconds, member.rounds_used(), baseline.p50_ns,
               baseline.p99_ns, baseline.mean_ns, flat.p50_ns, flat.p99_ns,
               flat.mean_ns, single_row_speedup, batch_rows,
               baseline_rows_per_sec, flat_rows_per_sec, batch_speedup,
               baseline_allocs, flat_allocs);
  std::fclose(json);
  std::printf("wrote BENCH_gbt_hot_path.json\n");
  return 0;
}
